/**
 * @file
 * Unit tests for the snoop filter (§4.4 enhancement a) and the BIAS
 * invalidation filter (§2.3).
 */

#include <gtest/gtest.h>

#include "cache/bias_filter.hh"
#include "cache/snoop_filter.hh"

namespace dir2b
{
namespace
{

TEST(SnoopFilter, AbsentBlocksAreFiltered)
{
    SnoopFilter f;
    EXPECT_FALSE(f.check(100));
    EXPECT_EQ(f.filtered(), 1u);
    EXPECT_EQ(f.forwarded(), 0u);
}

TEST(SnoopFilter, ResidentBlocksAreForwarded)
{
    SnoopFilter f;
    f.insert(100);
    EXPECT_TRUE(f.check(100));
    EXPECT_EQ(f.forwarded(), 1u);
    EXPECT_EQ(f.filtered(), 0u);
}

TEST(SnoopFilter, EraseTracksEvictions)
{
    SnoopFilter f;
    f.insert(1);
    f.insert(2);
    f.erase(1);
    EXPECT_FALSE(f.check(1));
    EXPECT_TRUE(f.check(2));
    EXPECT_EQ(f.size(), 1u);
}

TEST(BiasFilter, RepeatedInvalidationAbsorbed)
{
    BiasFilter f(8);
    // First invalidation cycles the directory, second is absorbed.
    EXPECT_FALSE(f.onInvalidate(42));
    EXPECT_TRUE(f.onInvalidate(42));
    EXPECT_TRUE(f.onInvalidate(42));
    EXPECT_EQ(f.absorbed(), 2u);
    EXPECT_EQ(f.passed(), 1u);
}

TEST(BiasFilter, LocalReferenceClearsEntry)
{
    BiasFilter f(8);
    EXPECT_FALSE(f.onInvalidate(42));
    f.onLocalReference(42); // block may be re-cached now
    EXPECT_FALSE(f.onInvalidate(42));
    EXPECT_EQ(f.passed(), 2u);
}

TEST(BiasFilter, CapacityEvictsLru)
{
    BiasFilter f(2);
    EXPECT_FALSE(f.onInvalidate(1));
    EXPECT_FALSE(f.onInvalidate(2));
    EXPECT_FALSE(f.onInvalidate(3)); // evicts 1
    EXPECT_FALSE(f.onInvalidate(1)); // 1 was forgotten
    EXPECT_EQ(f.size(), 2u);
}

TEST(BiasFilter, ZeroCapacityDisables)
{
    BiasFilter f(0);
    EXPECT_FALSE(f.onInvalidate(7));
    EXPECT_FALSE(f.onInvalidate(7));
    EXPECT_EQ(f.absorbed(), 0u);
}

TEST(BiasFilter, TouchKeepsHotEntriesResident)
{
    BiasFilter f(2);
    EXPECT_FALSE(f.onInvalidate(1));
    EXPECT_FALSE(f.onInvalidate(2));
    EXPECT_TRUE(f.onInvalidate(1));  // touch 1: now 2 is LRU
    EXPECT_FALSE(f.onInvalidate(3)); // evicts 2
    EXPECT_TRUE(f.onInvalidate(1));  // 1 still remembered
}

} // namespace
} // namespace dir2b
