/**
 * @file
 * Unit tests for reference streams: synthetic generator statistics,
 * structured workload shapes, and trace round-tripping.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/synthetic.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

namespace dir2b
{
namespace
{

TEST(SyntheticStream, RoundRobinAcrossProcessors)
{
    SyntheticConfig cfg;
    cfg.numProcs = 4;
    SyntheticStream s(cfg);
    for (int i = 0; i < 20; ++i) {
        auto r = s.next();
        ASSERT_TRUE(r.has_value());
        EXPECT_EQ(r->proc, static_cast<ProcId>(i % 4));
    }
}

TEST(SyntheticStream, SharedFractionMatchesQ)
{
    SyntheticConfig cfg;
    cfg.numProcs = 8;
    cfg.q = 0.1;
    SyntheticStream s(cfg);
    std::uint64_t shared = 0;
    const int total = 50000;
    for (int i = 0; i < total; ++i) {
        auto r = s.next();
        if (r->addr >= sharedRegionBase)
            ++shared;
    }
    EXPECT_NEAR(static_cast<double>(shared) / total, 0.1, 0.01);
    EXPECT_NEAR(s.measuredSharedFraction(), 0.1, 0.01);
}

TEST(SyntheticStream, SharedWritesMatchW)
{
    SyntheticConfig cfg;
    cfg.numProcs = 4;
    cfg.q = 0.5;
    cfg.w = 0.3;
    SyntheticStream s(cfg);
    std::uint64_t sharedRefs = 0;
    std::uint64_t sharedWrites = 0;
    for (int i = 0; i < 50000; ++i) {
        auto r = s.next();
        if (r->addr >= sharedRegionBase) {
            ++sharedRefs;
            if (r->write)
                ++sharedWrites;
        }
    }
    EXPECT_NEAR(static_cast<double>(sharedWrites) / sharedRefs, 0.3,
                0.02);
}

TEST(SyntheticStream, SharedBlocksStayInRange)
{
    SyntheticConfig cfg;
    cfg.sharedBlocks = 16;
    cfg.q = 1.0;
    SyntheticStream s(cfg);
    for (int i = 0; i < 1000; ++i) {
        auto r = s.next();
        EXPECT_GE(r->addr, sharedRegionBase);
        EXPECT_LT(r->addr, sharedRegionBase + 16);
    }
}

TEST(SyntheticStream, PrivateRegionsAreDisjointPerProcessor)
{
    SyntheticConfig cfg;
    cfg.numProcs = 4;
    cfg.q = 0.0;
    SyntheticStream s(cfg);
    for (int i = 0; i < 4000; ++i) {
        auto r = s.next();
        EXPECT_GE(r->addr, privateRegionBase(r->proc));
        EXPECT_LT(r->addr, privateRegionBase(r->proc + 1));
    }
}

TEST(SyntheticStream, DeterministicForSameSeed)
{
    SyntheticConfig cfg;
    cfg.seed = 99;
    SyntheticStream a(cfg);
    SyntheticStream b(cfg);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(*a.next(), *b.next());
}

TEST(Workload, ProducerConsumerRoles)
{
    WorkloadConfig cfg;
    cfg.numProcs = 4;
    cfg.privateFraction = 0.0; // shared pattern only
    ProducerConsumerWorkload w(cfg);
    for (int i = 0; i < 400; ++i) {
        auto r = w.next();
        if (r->proc == 0)
            EXPECT_TRUE(r->write) << "producer must write";
        else
            EXPECT_FALSE(r->write) << "consumers must read";
        EXPECT_GE(r->addr, sharedRegionBase);
    }
}

TEST(Workload, LockContentionAlternatesReadWrite)
{
    WorkloadConfig cfg;
    cfg.numProcs = 2;
    cfg.privateFraction = 0.0;
    LockContentionWorkload w(cfg, 1);
    // Per processor: read lock, then write the same lock block.
    std::vector<MemRef> p0;
    for (int i = 0; i < 40; ++i) {
        auto r = w.next();
        if (r->proc == 0)
            p0.push_back(*r);
    }
    for (std::size_t i = 0; i + 1 < p0.size(); i += 2) {
        EXPECT_FALSE(p0[i].write);
        EXPECT_TRUE(p0[i + 1].write);
        EXPECT_EQ(p0[i].addr, p0[i + 1].addr);
    }
}

TEST(Workload, MigratoryRotatesBlockOwnership)
{
    WorkloadConfig cfg;
    cfg.numProcs = 4;
    cfg.sharedBlocks = 4;
    cfg.privateFraction = 0.0;
    MigratoryWorkload w(cfg, 2);
    // Each reference stays in the shared region and mixes reads and
    // writes roughly half and half.
    int writes = 0;
    const int total = 400;
    for (int i = 0; i < total; ++i) {
        auto r = w.next();
        EXPECT_GE(r->addr, sharedRegionBase);
        if (r->write)
            ++writes;
    }
    EXPECT_NEAR(static_cast<double>(writes) / total, 0.5, 0.1);
}

TEST(Workload, ReadMostlyWriteFractionIsLow)
{
    WorkloadConfig cfg;
    cfg.numProcs = 4;
    cfg.privateFraction = 0.0;
    ReadMostlyWorkload w(cfg, 0.02);
    int writes = 0;
    const int total = 20000;
    for (int i = 0; i < total; ++i) {
        if (w.next()->write)
            ++writes;
    }
    EXPECT_NEAR(static_cast<double>(writes) / total, 0.02, 0.01);
}

TEST(Workload, TaskMigrationMovesIssuer)
{
    WorkloadConfig cfg;
    cfg.numProcs = 4;
    cfg.privateBlocks = 8;
    TaskMigrationWorkload w(cfg, 100);
    // Before the first migration, task t runs on processor t.
    for (int i = 0; i < 50; ++i) {
        auto r = w.next();
        const auto task = static_cast<ProcId>(
            (r->addr - privateRegionBase(0)) / (1ULL << 20));
        EXPECT_EQ(r->proc, task) << "task should be on its home proc";
    }
    // Run past a migration: issuers must shift by one.
    for (int i = 50; i < 150; ++i)
        w.next();
    EXPECT_GE(w.migrations(), 1u);
}

TEST(TraceIo, RoundTrip)
{
    std::vector<MemRef> refs = {
        {0, 0x10, false}, {1, 0x20, true}, {3, sharedRegionBase, true}};
    std::ostringstream os;
    writeTrace(os, refs);
    std::istringstream is(os.str());
    const auto back = readTrace(is);
    EXPECT_EQ(back, refs);
}

TEST(TraceIo, SkipsCommentsAndBlanks)
{
    std::istringstream is("# comment\n\n0 R 1f\n  \n1 W ff\n");
    const auto refs = readTrace(is);
    ASSERT_EQ(refs.size(), 2u);
    EXPECT_EQ(refs[0], (MemRef{0, 0x1f, false}));
    EXPECT_EQ(refs[1], (MemRef{1, 0xff, true}));
}

TEST(TraceIo, RecordAndReplayMatchesSource)
{
    SyntheticConfig cfg;
    cfg.seed = 7;
    SyntheticStream src(cfg);
    const auto recorded = recordStream(src, 100);
    ASSERT_EQ(recorded.size(), 100u);

    SyntheticStream src2(cfg);
    VectorStream replay(recorded);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(*replay.next(), *src2.next());
    EXPECT_FALSE(replay.next().has_value());
    replay.rewind();
    EXPECT_TRUE(replay.next().has_value());
}

TEST(MemRefToString, Format)
{
    EXPECT_EQ(toString(MemRef{3, 0x2a, true}), "P3 W 0x2a");
    EXPECT_EQ(toString(MemRef{0, 0xff, false}), "P0 R 0xff");
}

} // namespace
} // namespace dir2b
