/**
 * @file
 * Unit tests for the set-associative cache array and replacement
 * policies.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/cache_array.hh"

namespace dir2b
{
namespace
{

CacheGeometry
geom(std::size_t sets, std::size_t ways,
     ReplPolicyKind repl = ReplPolicyKind::Lru)
{
    CacheGeometry g;
    g.sets = sets;
    g.ways = ways;
    g.repl = repl;
    return g;
}

TEST(CacheArray, MissThenFillThenHit)
{
    CacheArray c(geom(4, 2));
    EXPECT_EQ(c.lookup(100), nullptr);
    c.fill(100, LineState::Shared, 7);
    CacheLine *l = c.lookup(100);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->value, 7u);
    EXPECT_EQ(l->state, LineState::Shared);
    EXPECT_EQ(c.validCount(), 1u);
}

TEST(CacheArray, DistinctSetsDoNotConflict)
{
    CacheArray c(geom(4, 1));
    c.fill(0, LineState::Shared, 1); // set 0
    c.fill(1, LineState::Shared, 2); // set 1
    c.fill(2, LineState::Shared, 3); // set 2
    EXPECT_EQ(c.validCount(), 3u);
    EXPECT_NE(c.lookup(0), nullptr);
    EXPECT_NE(c.lookup(1), nullptr);
    EXPECT_NE(c.lookup(2), nullptr);
}

TEST(CacheArray, VictimPrefersInvalidWay)
{
    CacheArray c(geom(1, 4));
    c.fill(0, LineState::Shared, 0);
    c.fill(1, LineState::Shared, 0);
    CacheLine &v = c.victimFor(2);
    EXPECT_FALSE(v.valid());
}

TEST(CacheArray, LruEvictsLeastRecentlyUsed)
{
    CacheArray c(geom(1, 2));
    c.fill(10, LineState::Shared, 0);
    c.fill(20, LineState::Shared, 0);
    c.lookup(10); // touch 10; 20 is now LRU
    CacheLine &v = c.victimFor(30);
    EXPECT_TRUE(v.valid());
    EXPECT_EQ(v.addr, 20u);
}

TEST(CacheArray, FifoIgnoresTouches)
{
    CacheArray c(geom(1, 2, ReplPolicyKind::Fifo));
    c.fill(10, LineState::Shared, 0);
    c.fill(20, LineState::Shared, 0);
    c.lookup(10); // FIFO must still evict 10 (inserted first)
    CacheLine &v = c.victimFor(30);
    EXPECT_TRUE(v.valid());
    EXPECT_EQ(v.addr, 10u);
}

TEST(CacheArray, RandomVictimIsValidWay)
{
    CacheArray c(geom(1, 4, ReplPolicyKind::Random));
    for (Addr a = 0; a < 4; ++a)
        c.fill(a * 1, LineState::Shared, 0);
    // All ways full; victim must be one of the four resident blocks.
    std::set<Addr> resident = {0, 1, 2, 3};
    CacheLine &v = c.victimFor(100);
    EXPECT_TRUE(resident.count(v.addr));
}

TEST(CacheArray, FillAfterEvictionReplacesVictim)
{
    CacheArray c(geom(1, 1));
    c.fill(10, LineState::Modified, 5);
    CacheLine &v = c.victimFor(20);
    EXPECT_EQ(v.addr, 10u);
    EXPECT_TRUE(v.dirty());
    c.invalidate(v.addr);
    c.fill(20, LineState::Shared, 6);
    EXPECT_EQ(c.lookup(10), nullptr);
    ASSERT_NE(c.lookup(20), nullptr);
    EXPECT_EQ(c.validCount(), 1u);
}

TEST(CacheArray, UpgradeFillKeepsSingleCopy)
{
    CacheArray c(geom(2, 2));
    c.fill(42, LineState::Shared, 1);
    c.fill(42, LineState::Modified, 2);
    EXPECT_EQ(c.validCount(), 1u);
    CacheLine *l = c.lookup(42);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->state, LineState::Modified);
    EXPECT_EQ(l->value, 2u);
}

TEST(CacheArray, InvalidateIsIdempotent)
{
    CacheArray c(geom(2, 2));
    c.fill(9, LineState::Shared, 0);
    EXPECT_TRUE(c.invalidate(9));
    EXPECT_FALSE(c.invalidate(9));
    EXPECT_EQ(c.validCount(), 0u);
}

TEST(CacheArray, FlushDropsEverything)
{
    CacheArray c(geom(4, 2));
    for (Addr a = 0; a < 8; ++a)
        c.fill(a, LineState::Shared, a);
    EXPECT_GT(c.validCount(), 0u);
    c.flush();
    EXPECT_EQ(c.validCount(), 0u);
}

TEST(CacheArray, ForEachValidSeesAllResidents)
{
    CacheArray c(geom(4, 2));
    std::set<Addr> want = {1, 2, 3, 7};
    for (Addr a : want)
        c.fill(a, LineState::Shared, a);
    std::set<Addr> got;
    c.forEachValid([&](const CacheLine &l) { got.insert(l.addr); });
    EXPECT_EQ(got, want);
}

TEST(CacheArray, PeekDoesNotPerturbLru)
{
    CacheArray c(geom(1, 2));
    c.fill(10, LineState::Shared, 0);
    c.fill(20, LineState::Shared, 0);
    // peek(10) must not promote 10.
    EXPECT_NE(c.peek(10), nullptr);
    CacheLine &v = c.victimFor(30);
    EXPECT_EQ(v.addr, 10u);
}

TEST(CacheArray, GeometryBlocksProduct)
{
    CacheGeometry g = geom(32, 4);
    EXPECT_EQ(g.blocks(), 128u);
}

TEST(ReplacementPolicy, ParseNames)
{
    EXPECT_EQ(parseReplPolicy("lru"), ReplPolicyKind::Lru);
    EXPECT_EQ(parseReplPolicy("fifo"), ReplPolicyKind::Fifo);
    EXPECT_EQ(parseReplPolicy("random"), ReplPolicyKind::Random);
}

TEST(LineState, ToStringCoversAll)
{
    EXPECT_EQ(toString(LineState::Invalid), "Invalid");
    EXPECT_EQ(toString(LineState::Shared), "Shared");
    EXPECT_EQ(toString(LineState::Exclusive), "Exclusive");
    EXPECT_EQ(toString(LineState::Reserved), "Reserved");
    EXPECT_EQ(toString(LineState::Modified), "Modified");
}

} // namespace
} // namespace dir2b
