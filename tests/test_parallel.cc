/**
 * @file
 * Unit tests for the parallel sweep runner: pool lifecycle, bounded
 * submission, exception propagation, nested-parallelism rejection,
 * per-task RNG determinism, and the headline property — a sweep's
 * JSON artifact is byte-identical at any thread count.
 */

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "proto/protocol_factory.hh"
#include "report/report.hh"
#include "system/func_system.hh"
#include "trace/synthetic.hh"
#include "util/parallel.hh"

namespace dir2b
{
namespace
{

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4, 8);
    std::atomic<int> sum{0};
    for (int i = 1; i <= 100; ++i)
        pool.submit([&sum, i] { sum += i; });
    pool.wait();
    EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, WaitRethrowsFirstTaskException)
{
    ThreadPool pool(2, 4);
    for (int i = 0; i < 8; ++i)
        pool.submit([] { throw std::runtime_error("task boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is consumed: the pool stays usable afterwards.
    std::atomic<bool> ran{false};
    pool.submit([&ran] { ran = true; });
    pool.wait();
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DestructionAfterExceptionIsClean)
{
    // No wait(): destruction alone must drain and join without
    // terminating, even though a task threw.
    ThreadPool pool(2, 2);
    for (int i = 0; i < 4; ++i)
        pool.submit([] { throw std::runtime_error("unobserved"); });
    // Destructor runs at scope exit; reaching the next line of the
    // test afterwards is the assertion.
}

TEST(ThreadPool, BoundedQueueAcceptsMoreTasksThanBound)
{
    // 64 tasks through a queue bounded at 2: submit() must block and
    // resume rather than drop or deadlock.
    ThreadPool pool(2, 2);
    std::atomic<int> count{0};
    for (int i = 0; i < 64; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 64);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    std::vector<int> hits(1000, 0);
    parallelFor(0, hits.size(), [&](std::size_t i) { ++hits[i]; }, 4);
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ParallelFor, EmptyAndSingleRanges)
{
    int calls = 0;
    parallelFor(5, 5, [&](std::size_t) { ++calls; }, 4);
    EXPECT_EQ(calls, 0);
    parallelFor(7, 8, [&](std::size_t i) {
        ++calls;
        EXPECT_EQ(i, 7u);
    }, 4);
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesBodyException)
{
    EXPECT_THROW(
        parallelFor(0, 100,
                    [](std::size_t i) {
                        if (i == 37)
                            throw std::runtime_error("cell failed");
                    },
                    4),
        std::runtime_error);
}

TEST(ParallelFor, SerialFallbackPropagatesException)
{
    EXPECT_THROW(parallelFor(0, 10,
                             [](std::size_t) {
                                 throw std::runtime_error("boom");
                             },
                             1),
                 std::runtime_error);
}

TEST(ParallelFor, NestedCallRejected)
{
    // From a parallel body...
    EXPECT_THROW(
        parallelFor(0, 4,
                    [](std::size_t) {
                        parallelFor(0, 2, [](std::size_t) {}, 2);
                    },
                    2),
        std::logic_error);
    // ...and from the serial fallback: same rule.
    EXPECT_THROW(
        parallelFor(0, 1,
                    [](std::size_t) {
                        parallelFor(0, 1, [](std::size_t) {}, 1);
                    },
                    1),
        std::logic_error);
    // After the rejection the flag is cleared: a fresh sweep works.
    int calls = 0;
    parallelFor(0, 3, [&](std::size_t) { ++calls; }, 2);
    EXPECT_EQ(calls, 3);
}

TEST(TaskRng, PureFunctionOfSeedAndTask)
{
    Rng a = taskRng(42, 7);
    Rng b = taskRng(42, 7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());

    Rng c = taskRng(42, 8);
    Rng d = taskRng(43, 7);
    // Neighbouring tasks/seeds land in different streams.
    EXPECT_NE(taskRng(42, 7).next(), c.next());
    EXPECT_NE(taskRng(42, 7).next(), d.next());
}

TEST(DefaultThreadCount, OverrideWinsAndClears)
{
    const unsigned before = defaultThreadCount();
    EXPECT_GE(before, 1u);
    setDefaultThreadCount(3);
    EXPECT_EQ(defaultThreadCount(), 3u);
    setDefaultThreadCount(0);
    EXPECT_EQ(defaultThreadCount(), before);
}

/** A miniature sweep: (protocol, n) cells through real simulations. */
Json
miniSweep(unsigned threads)
{
    struct Spec
    {
        const char *protocol;
        ProcId n;
    };
    const Spec specs[] = {{"two_bit", 4},  {"two_bit", 8},
                          {"full_map", 4}, {"full_map", 8},
                          {"classical", 4}, {"illinois", 4}};
    const std::size_t numCells = std::size(specs);

    std::vector<Json> results(numCells);
    parallelFor(
        0, numCells,
        [&](std::size_t i) {
            ProtoConfig cfg;
            cfg.numProcs = specs[i].n;
            cfg.cacheGeom.sets = 16;
            cfg.cacheGeom.ways = 2;
            cfg.numModules = 2;
            cfg.nonCacheableBase = sharedRegionBase;
            auto proto = makeProtocol(specs[i].protocol, cfg);

            SyntheticConfig scfg;
            scfg.numProcs = specs[i].n;
            scfg.q = 0.05;
            scfg.w = 0.3;
            scfg.sharedBlocks = 8;
            scfg.privateBlocks = 32;
            scfg.hotBlocks = 8;
            scfg.seed = 5;
            SyntheticStream stream(scfg);

            RunOptions opts;
            opts.numRefs = 5000;
            const RunResult r = runFunctional(*proto, stream, opts);

            Json cell = Json::object();
            cell.set("section", "mini");
            cell.set("protocol", specs[i].protocol);
            cell.set("n", specs[i].n);
            cell.set("result", runResultToJson(r));
            results[i] = std::move(cell);
        },
        threads);

    Json cells = Json::array();
    for (auto &r : results)
        cells.push(std::move(r));
    return makeSweepArtifact("mini_sweep", Json(), std::move(cells));
}

TEST(Determinism, SweepArtifactIdenticalAtAnyThreadCount)
{
    const Json serial = miniSweep(1);
    const Json fourWide = miniSweep(4);
    // Payloads equal structurally...
    EXPECT_TRUE(sameArtifactPayload(serial, fourWide));
    // ...and byte-identical as serialized (no meta stamped here).
    EXPECT_EQ(serial.dump(2), fourWide.dump(2));
}

} // namespace
} // namespace dir2b
