/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace dir2b
{
namespace
{

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&] { order.push_back(3); });
    eq.scheduleAt(10, [&] { order.push_back(1); });
    eq.scheduleAt(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.scheduleAt(5, [&order, i] { order.push_back(i); });
    EXPECT_TRUE(eq.run());
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RelativeSchedulingUsesNow)
{
    EventQueue eq;
    Tick seen = 0;
    eq.scheduleAt(100, [&] {
        eq.schedule(5, [&] { seen = eq.now(); });
    });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(seen, 105u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 100)
            eq.schedule(1, chain);
    };
    eq.schedule(0, chain);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 100);
    EXPECT_EQ(eq.executed(), 100u);
}

TEST(EventQueue, BudgetDetectsLivelock)
{
    EventQueue eq;
    std::function<void()> forever = [&] { eq.schedule(1, forever); };
    eq.schedule(0, forever);
    EXPECT_FALSE(eq.run(1000));
}

TEST(EventQueue, ResetRestoresPristineState)
{
    EventQueue eq;
    eq.scheduleAt(50, [] {});
    eq.run();
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.executed(), 0u);
    // Scheduling at a tick earlier than the old now() must work again.
    bool ran = false;
    eq.scheduleAt(1, [&] { ran = true; });
    eq.run();
    EXPECT_TRUE(ran);
}

} // namespace
} // namespace dir2b
