/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "util/random.hh"

namespace dir2b
{
namespace
{

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&] { order.push_back(3); });
    eq.scheduleAt(10, [&] { order.push_back(1); });
    eq.scheduleAt(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.scheduleAt(5, [&order, i] { order.push_back(i); });
    EXPECT_TRUE(eq.run());
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RelativeSchedulingUsesNow)
{
    EventQueue eq;
    Tick seen = 0;
    eq.scheduleAt(100, [&] {
        eq.schedule(5, [&] { seen = eq.now(); });
    });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(seen, 105u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 100)
            eq.schedule(1, chain);
    };
    eq.schedule(0, chain);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 100);
    EXPECT_EQ(eq.executed(), 100u);
}

TEST(EventQueue, BudgetDetectsLivelock)
{
    EventQueue eq;
    std::function<void()> forever = [&] { eq.schedule(1, forever); };
    eq.schedule(0, forever);
    EXPECT_FALSE(eq.run(1000));
}

TEST(EventQueue, ResetRestoresPristineState)
{
    EventQueue eq;
    eq.scheduleAt(50, [] {});
    eq.run();
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.executed(), 0u);
    // Scheduling at a tick earlier than the old now() must work again.
    bool ran = false;
    eq.scheduleAt(1, [&] { ran = true; });
    eq.run();
    EXPECT_TRUE(ran);
}

/** Callable that counts copies, moves, and live instances. */
struct CountingCallback
{
    int *copies;
    int *alive;
    int *fired;

    CountingCallback(int *c, int *a, int *f)
        : copies(c), alive(a), fired(f)
    {
        ++*alive;
    }
    CountingCallback(const CountingCallback &o)
        : copies(o.copies), alive(o.alive), fired(o.fired)
    {
        ++*copies;
        ++*alive;
    }
    CountingCallback(CountingCallback &&o) noexcept
        : copies(o.copies), alive(o.alive), fired(o.fired)
    {
        ++*alive;
    }
    ~CountingCallback() { --*alive; }
    void operator()() { ++*fired; }
};

TEST(EventQueue, RunNeverCopiesTheCallback)
{
    // The pre-rewrite kernel copied the whole heap entry (and with it
    // the std::function) on every pop; the arena kernel must only
    // ever move callbacks.
    int copies = 0;
    int alive = 0;
    int fired = 0;
    EventQueue eq;
    for (int i = 0; i < 100; ++i)
        eq.schedule(static_cast<Tick>(i % 11),
                    CountingCallback(&copies, &alive, &fired));
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 100);
    EXPECT_EQ(copies, 0);
    EXPECT_EQ(alive, 0);
}

TEST(EventQueue, AcceptsMoveOnlyCallbacks)
{
    // Compile-time proof there is no copy path at all: a capture
    // holding unique_ptr would reject the old std::function storage.
    EventQueue eq;
    auto payload = std::make_unique<int>(42);
    int seen = 0;
    eq.schedule(3, [p = std::move(payload), &seen] { seen = *p; });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(seen, 42);
}

TEST(EventQueue, CascadeRestoresFifoAgainstDirectInserts)
{
    // Event A is scheduled far ahead (lands in a level>=1 bucket);
    // event B is scheduled later for the SAME tick from close range
    // (direct level-0 insert).  When A's bucket cascades it appends
    // behind B, so the kernel must re-sort the slot by sequence
    // number: A was scheduled first and must fire first.
    EventQueue eq;
    std::vector<char> order;
    eq.scheduleAt(5000, [&] { order.push_back('A'); });
    eq.scheduleAt(4990, [&] {
        eq.scheduleAt(5000, [&] { order.push_back('B'); });
    });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<char>{'A', 'B'}));
}

TEST(EventQueue, StaticDifferentialAgainstStableSort)
{
    // Random times spanning every wheel level and the overflow tier;
    // the kernel must fire them exactly in stable (when, seq) order.
    EventQueue eq;
    Rng rng(0xeafe11);
    std::vector<std::pair<Tick, int>> expect;
    std::vector<int> got;
    const Tick spans[] = {1,    7,      63,     64,      100,
                          4095, 4096,   262143, 262144,  999999,
                          (Tick{1} << 24) - 1, Tick{1} << 24,
                          (Tick{1} << 24) + 12345, Tick{1} << 30};
    for (int i = 0; i < 2000; ++i) {
        const Tick when = rng.range(spans[rng.range(14)]);
        expect.emplace_back(when, i);
        eq.scheduleAt(when, [&got, i] { got.push_back(i); });
    }
    std::stable_sort(expect.begin(), expect.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    EXPECT_TRUE(eq.run());
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], expect[i].second) << "position " << i;
    EXPECT_EQ(eq.executed(), 2000u);
}

TEST(EventQueue, DynamicChainsAcrossAllLevels)
{
    // Self-rescheduling chains with pseudo-random delays: time must
    // never go backwards and every event must be accounted for.
    EventQueue eq;
    Rng rng(0xc4a1);
    Tick last = 0;
    std::uint64_t fired = 0;
    bool monotonic = true;
    std::function<void()> hop = [&] {
        if (eq.now() < last)
            monotonic = false;
        last = eq.now();
        ++fired;
        if (fired < 5000) {
            const Tick delays[] = {0, 1, 5, 63, 64, 700, 4096, 50000,
                                   262144, Tick{1} << 24};
            eq.schedule(delays[rng.range(10)], hop);
        }
    };
    for (int c = 0; c < 4; ++c)
        eq.schedule(static_cast<Tick>(c), hop);
    EXPECT_TRUE(eq.run());
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(fired, 5003u);
}

TEST(EventQueue, ZeroDelayDuringDrainRunsSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(10, [&] {
        order.push_back(1);
        eq.schedule(0, [&] {
            order.push_back(2);
            eq.schedule(0, [&] { order.push_back(3); });
        });
    });
    eq.scheduleAt(11, [&] { order.push_back(4); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, BudgetExpiryMidTickPreservesOrder)
{
    // Ten same-tick events, budget for three: the remaining seven
    // must survive and still fire in FIFO order on the next run().
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.scheduleAt(5, [&order, i] { order.push_back(i); });
    EXPECT_FALSE(eq.run(3));
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(eq.pending(), 7u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order,
              (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(EventQueue, ResetDestroysPendingCallbacks)
{
    int copies = 0;
    int alive = 0;
    int fired = 0;
    EventQueue eq;
    for (int i = 0; i < 8; ++i)
        eq.schedule(static_cast<Tick>(1 + i * 1000),
                    CountingCallback(&copies, &alive, &fired));
    eq.reset();
    EXPECT_EQ(alive, 0);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, HotPathCapturesStayInline)
{
    const std::uint64_t before = EventQueue::Callback::heapFallbacks();
    EventQueue eq;
    struct
    {
        void *self;
        unsigned src, dst;
        unsigned char msg[40];
    } payload = {};
    int hits = 0;
    eq.schedule(1, [payload, &hits] {
        ++hits;
        (void)payload;
    });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(EventQueue::Callback::heapFallbacks(), before);
}

} // namespace
} // namespace dir2b
