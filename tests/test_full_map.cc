/**
 * @file
 * Directed tests of the full-map baseline (Censier-Feautrier) and the
 * Yen-Fu local-state extension: exact presence-vector maintenance and
 * the defining property that no command is ever useless.
 */

#include <gtest/gtest.h>

#include "proto/full_map.hh"
#include "proto/full_map_local.hh"

namespace dir2b
{
namespace
{

ProtoConfig
config(ProcId n = 4, std::size_t sets = 64, std::size_t ways = 4)
{
    ProtoConfig cfg;
    cfg.numProcs = n;
    cfg.cacheGeom.sets = sets;
    cfg.cacheGeom.ways = ways;
    cfg.numModules = 2;
    return cfg;
}

TEST(FullMap, PresenceBitsTrackReaders)
{
    FullMapProtocol p(config());
    const Addr a = 100;
    p.access(0, a, false);
    p.access(2, a, false);
    const FullMapEntry *e = p.entry(a);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->present.test(0));
    EXPECT_FALSE(e->present.test(1));
    EXPECT_TRUE(e->present.test(2));
    EXPECT_FALSE(e->modified);
}

TEST(FullMap, WriteMissSendsExactlyHolderCountInvalidations)
{
    FullMapProtocol p(config(8));
    const Addr a = 5;
    p.access(0, a, false);
    p.access(1, a, false);
    p.access(2, a, false);
    p.access(7, a, true, 1);

    const AccessCounts &d = p.lastDelta();
    EXPECT_EQ(d.directedCmds, 3u);
    EXPECT_EQ(d.invalidations, 3u);
    EXPECT_EQ(d.broadcasts, 0u);
    EXPECT_EQ(d.uselessCmds, 0u);
    const FullMapEntry *e = p.entry(a);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->present.count(), 1u);
    EXPECT_TRUE(e->present.test(7));
    EXPECT_TRUE(e->modified);
}

TEST(FullMap, ReadMissOnModifiedPurgesExactlyOwner)
{
    FullMapProtocol p(config(8));
    const Addr a = 6;
    p.access(3, a, true, 42);
    p.access(5, a, false);

    const AccessCounts &d = p.lastDelta();
    EXPECT_EQ(d.directedCmds, 1u);
    EXPECT_EQ(d.purges, 1u);
    EXPECT_EQ(d.writebacks, 1u);
    EXPECT_EQ(d.uselessCmds, 0u);
    EXPECT_EQ(p.access(5, a, false), 42u);
    const FullMapEntry *e = p.entry(a);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->present.count(), 2u);
    EXPECT_FALSE(e->modified);
}

TEST(FullMap, WriteHitWithSoleCopyNeedsNoInvalidation)
{
    FullMapProtocol p(config());
    const Addr a = 7;
    p.access(0, a, false);
    p.access(0, a, true, 9);
    EXPECT_EQ(p.lastDelta().directedCmds, 0u);
    EXPECT_EQ(p.lastDelta().invalidations, 0u);
    EXPECT_TRUE(p.entry(a)->modified);
}

TEST(FullMap, CleanEjectClearsPresenceBitExactly)
{
    FullMapProtocol p(config(4, 1, 1));
    const Addr a = 20;
    const Addr b = 21;
    p.access(0, a, false);
    p.access(1, a, false);
    p.access(0, b, false); // cache 0 ejects a
    const FullMapEntry *e = p.entry(a);
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(e->present.test(0));
    EXPECT_TRUE(e->present.test(1));
    // Unlike the two-bit map, a later write sends exactly one command.
    p.access(2, a, true, 1);
    EXPECT_EQ(p.lastDelta().directedCmds, 1u);
    EXPECT_EQ(p.lastDelta().uselessCmds, 0u);
}

TEST(FullMap, NeverAnyUselessCommand)
{
    FullMapProtocol p(config(4, 2, 2));
    // A busy mixed sequence with evictions and ownership migration.
    for (int i = 0; i < 500; ++i) {
        const auto proc = static_cast<ProcId>(i % 4);
        const Addr a = static_cast<Addr>(i % 12);
        p.access(proc, a, i % 3 == 0, 10000u + i);
        p.checkInvariants();
    }
    EXPECT_EQ(p.counts().uselessCmds, 0u);
    EXPECT_EQ(p.counts().broadcasts, 0u);
}

TEST(FullMap, DirectoryCostGrowsWithN)
{
    EXPECT_EQ(FullMapProtocol(config(4)).directoryBitsPerBlock(), 5u);
    EXPECT_EQ(FullMapProtocol(config(16)).directoryBitsPerBlock(), 17u);
    EXPECT_EQ(FullMapProtocol(config(64)).directoryBitsPerBlock(), 65u);
}

TEST(FullMapLocal, FirstReaderGetsExclusiveCleanCopy)
{
    FullMapLocalProtocol p(config());
    const Addr a = 30;
    p.access(0, a, false);
    EXPECT_EQ(p.cache(0).peek(a)->state, LineState::Exclusive);
}

TEST(FullMapLocal, SilentUpgradeCostsNoMessages)
{
    FullMapLocalProtocol p(config());
    const Addr a = 31;
    p.access(0, a, false); // Exclusive
    const AccessCounts before = p.counts();
    p.access(0, a, true, 5);
    const AccessCounts d = p.counts() - before;
    EXPECT_EQ(d.netMessages, 0u);
    EXPECT_EQ(d.mrequests, 0u);
    EXPECT_EQ(p.silentUpgrades(), 1u);
}

TEST(FullMapLocal, RemoteReadAfterSilentUpgradeRecoversData)
{
    FullMapLocalProtocol p(config());
    const Addr a = 32;
    p.access(0, a, false);
    p.access(0, a, true, 77); // silent upgrade: directory thinks clean
    p.access(1, a, false);    // must still see 77
    EXPECT_EQ(p.access(1, a, false), 77u);
    EXPECT_EQ(p.memValue(a), 77u); // write-back happened on the query
}

TEST(FullMapLocal, SecondReaderDowngradesExclusive)
{
    FullMapLocalProtocol p(config());
    const Addr a = 33;
    p.access(0, a, false);
    p.access(1, a, false);
    EXPECT_EQ(p.cache(0).peek(a)->state, LineState::Shared);
    EXPECT_EQ(p.cache(1).peek(a)->state, LineState::Shared);
}

TEST(FullMapLocal, SharedWriteHitStillNeedsInvalidations)
{
    FullMapLocalProtocol p(config());
    const Addr a = 34;
    p.access(0, a, false);
    p.access(1, a, false); // both Shared
    p.access(0, a, true, 5);
    EXPECT_EQ(p.lastDelta().mrequests, 1u);
    EXPECT_EQ(p.lastDelta().invalidations, 1u);
    EXPECT_EQ(p.holders(a), std::vector<ProcId>{0});
}

TEST(FullMapLocal, InvariantsUnderMigration)
{
    FullMapLocalProtocol p(config(4, 2, 2));
    for (int i = 0; i < 500; ++i) {
        const auto proc = static_cast<ProcId>((i * 7) % 4);
        const Addr a = static_cast<Addr>(i % 10);
        p.access(proc, a, i % 4 == 0, 20000u + i);
        p.checkInvariants();
    }
    EXPECT_EQ(p.counts().uselessCmds, 0u);
}

} // namespace
} // namespace dir2b
