/**
 * @file
 * Tests for the timed Yen-Fu tier: exclusive-clean fills, silent
 * upgrades, the purge-answers-clean-or-dirty rule, the clean-eject
 * race unique to this scheme, and randomized coherence sweeps — the
 * synchronization problems the paper says were "not fully resolved in
 * [10]", resolved and verified.
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "timed/timed_system.hh"
#include "timed/yf_cache_ctrl.hh"
#include "trace/synthetic.hh"
#include "util/random.hh"

namespace dir2b
{
namespace
{

class Script
{
  public:
    explicit Script(std::vector<std::vector<MemRef>> perProc)
        : perProc_(std::move(perProc)), pos_(perProc_.size(), 0)
    {}

    ProcSource
    source()
    {
        return [this](ProcId p) -> std::optional<MemRef> {
            auto &q = perProc_.at(p);
            if (pos_[p] >= q.size())
                return std::nullopt;
            return q[pos_[p]++];
        };
    }

  private:
    std::vector<std::vector<MemRef>> perProc_;
    std::vector<std::size_t> pos_;
};

TimedConfig
config(ProcId n = 3, std::size_t sets = 16, std::size_t ways = 2)
{
    TimedConfig cfg;
    cfg.protocol = TimedProto::YenFu;
    cfg.numProcs = n;
    cfg.numModules = 1;
    cfg.cacheGeom.sets = sets;
    cfg.cacheGeom.ways = ways;
    return cfg;
}

const YfCacheCtrl &
yf(const TimedSystem &sys, ProcId p)
{
    return static_cast<const YfCacheCtrl &>(sys.cacheCtrl(p));
}

TEST(YfTimed, SilentUpgradeCostsNoMessages)
{
    TimedSystem sys(config(2));
    // P0: read (exclusive-clean fill), then write (silent upgrade).
    Script script({{{0, 5, false}, {0, 5, true}}, {}});
    const auto r = sys.run(script.source(), 100);
    EXPECT_EQ(r.refsCompleted, 2u);
    EXPECT_EQ(yf(sys, 0).silentUpgrades(), 1u);
    EXPECT_EQ(sys.dirCtrl(0).stats().mrequests.value(), 0u);
    // Traffic: one REQUEST + one get and nothing else.
    EXPECT_EQ(r.netMessages, 2u);
}

TEST(YfTimed, SilentlyModifiedDataRecoveredByRemoteRead)
{
    TimedSystem sys(config(2));
    Script script({
        {{0, 5, false}, {0, 5, true}}, // exclusive, silent dirty
        {{1, 5, false}, {1, 5, false}},
    });
    const auto r = sys.run(script.source(), 100);
    EXPECT_EQ(r.refsCompleted, 4u);
    // The controller purged the sole holder not knowing it was dirty;
    // the oracle verified P1 read the silently written value.
    EXPECT_GE(sys.dirCtrl(0).stats().purges.value(), 1u);
}

TEST(YfTimed, CleanSoleHolderAnswersPurgeToo)
{
    TimedSystem sys(config(2));
    Script script({
        {{0, 5, false}}, // exclusive-clean, never written
        {{1, 5, false}},
    });
    const auto r = sys.run(script.source(), 100);
    EXPECT_EQ(r.refsCompleted, 2u);
    // Depending on arrival order the second read either found two
    // holders (no purge) or purged the clean exclusive owner; both
    // quiesce and verify.
    EXPECT_LE(sys.dirCtrl(0).stats().purges.value(), 1u);
}

TEST(YfTimed, CleanEjectRaceAnswersPurge)
{
    // Unique to Yen-Fu: the queried sole holder may CLEAN-eject its
    // exclusive copy while the purge is in flight; the controller
    // must accept the EJECT(read) as the answer (ejectReadAnswersWait).
    TimedConfig cfg = config(2, 1, 1); // 1-block cache
    TimedSystem sys(cfg);
    Script script({
        {{0, 4, false}, {0, 12, false}}, // exclusive 4, then evict it
        {{1, 4, false}},
    });
    const auto r = sys.run(script.source(), 100);
    EXPECT_EQ(r.refsCompleted, 3u);
}

TEST(YfTimed, DirtyEjectOfSilentUpgradeWritesBack)
{
    TimedConfig cfg = config(1, 1, 1);
    TimedSystem sys(cfg);
    Script script({{{0, 4, false}, // exclusive
                    {0, 4, true},  // silent upgrade
                    {0, 12, false}, // evicts dirty 4
                    {0, 4, false}}});
    const auto r = sys.run(script.source(), 100);
    EXPECT_EQ(r.refsCompleted, 4u);
    // The final read sees the silently written value via memory
    // (oracle-checked); the write-back was an EJECT(write).
    EXPECT_GE(sys.dirCtrl(0).stats().ejectsData.value(), 1u);
}

TEST(YfTimed, ConcurrentUpgradeRaceSerialises)
{
    TimedConfig cfg = config(3, 16, 2);
    cfg.dirLatency = 8;
    TimedSystem sys(cfg);
    const Addr a = 7;
    Script script({
        {{0, a, false}, {0, a, true}},
        {{1, a, false}, {1, a, true}},
        {{2, 9, false}, {2, 11, false}, {2, 13, false}},
    });
    const auto r = sys.run(script.source(), 100);
    EXPECT_EQ(r.refsCompleted, 7u);
    // Both stores completed through some serialisation: either
    // MREQUEST grant + conversion, or purge-mediated write misses.
    EXPECT_GE(sys.dirCtrl(0).stats().grantsTrue.value() +
                  sys.dirCtrl(0).stats().purges.value(),
              1u);
}

struct YfParam
{
    bool perBlock;
    NetKind net;
    std::uint64_t seed;
};

class YfProperty : public ::testing::TestWithParam<YfParam>
{
};

TEST_P(YfProperty, RandomTrafficStaysCoherent)
{
    const auto prm = GetParam();
    TimedConfig cfg = config(4, 4, 2);
    cfg.numModules = 3;
    cfg.perBlockConcurrency = prm.perBlock;
    cfg.network = prm.net;
    TimedSystem sys(cfg);

    SyntheticConfig scfg;
    scfg.numProcs = 4;
    scfg.q = 0.3;
    scfg.w = 0.45;
    scfg.sharedBlocks = 10;
    scfg.privateBlocks = 16;
    scfg.hotBlocks = 8;
    scfg.seed = prm.seed;
    SyntheticStream stream(scfg);
    auto src = [&stream](ProcId p) -> std::optional<MemRef> {
        return stream.nextFor(p);
    };

    const auto r = sys.run(src, 2500);
    EXPECT_EQ(r.refsCompleted, 10000u);
    EXPECT_EQ(r.broadcasts, 0u); // directed scheme

    // Silent upgrades must actually occur for the test to mean much.
    std::uint64_t silent = 0;
    for (ProcId p = 0; p < 4; ++p)
        silent += yf(sys, p).silentUpgrades();
    EXPECT_GT(silent, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Designs, YfProperty,
    ::testing::Values(YfParam{false, NetKind::Ideal, 1},
                      YfParam{true, NetKind::Ideal, 2},
                      YfParam{true, NetKind::Crossbar, 3},
                      YfParam{false, NetKind::Bus, 4},
                      YfParam{true, NetKind::Ideal, 5},
                      YfParam{false, NetKind::Ideal, 6}),
    [](const ::testing::TestParamInfo<YfParam> &info) {
        const auto &p = info.param;
        std::string name = p.perBlock ? "perblock" : "serial";
        if (p.net == NetKind::Crossbar)
            name += "_xbar";
        else if (p.net == NetKind::Bus)
            name += "_bus";
        return name + "_s" + std::to_string(p.seed);
    });

TEST(YfTimed, FewerUpgradeTransactionsThanFullMap)
{
    // The scheme's raison d'etre: private read-then-write patterns
    // cost zero upgrade transactions.
    auto run = [](TimedProto proto) {
        TimedConfig cfg;
        cfg.protocol = proto;
        cfg.numProcs = 4;
        cfg.numModules = 2;
        cfg.cacheGeom.sets = 16;
        cfg.cacheGeom.ways = 2;
        TimedSystem sys(cfg);
        SyntheticConfig scfg;
        scfg.numProcs = 4;
        scfg.q = 0.02; // almost all private
        scfg.w = 0.3;
        scfg.privateBlocks = 20;
        scfg.hotBlocks = 10;
        scfg.privateWriteFrac = 0.4;
        scfg.seed = 9;
        SyntheticStream stream(scfg);
        auto src = [&stream](ProcId p) -> std::optional<MemRef> {
            return stream.nextFor(p);
        };
        const auto r = sys.run(src, 3000);
        std::uint64_t mreqs = 0;
        for (ModuleId m = 0; m < 2; ++m)
            mreqs += sys.dirCtrl(m).stats().mrequests.value();
        (void)r;
        return mreqs;
    };
    const auto yfMreqs = run(TimedProto::YenFu);
    const auto fmMreqs = run(TimedProto::FullMap);
    EXPECT_LT(yfMreqs * 3, fmMreqs)
        << "yf " << yfMreqs << " vs fm " << fmMreqs;
}

} // namespace
} // namespace dir2b
