/**
 * @file
 * Unit tests for the shared command-line value parsers
 * (util/parse_args.hh): the K/M/G byte-size grammar shared by
 * --dir-ram-budget / --trace-buffer, and the interval variant used by
 * --series-interval (same grammar, zero rejected).
 */

#include <gtest/gtest.h>

#include "util/parse_args.hh"

namespace dir2b
{
namespace
{

TEST(ParseByteSize, AcceptsPlainAndSuffixedCounts)
{
    EXPECT_EQ(parseByteSize("0", "--x"), 0u);
    EXPECT_EQ(parseByteSize("4096", "--x"), 4096u);
    EXPECT_EQ(parseByteSize("2K", "--x"), 2048u);
    EXPECT_EQ(parseByteSize("2k", "--x"), 2048u);
    EXPECT_EQ(parseByteSize("3M", "--x"), 3ull << 20);
    EXPECT_EQ(parseByteSize("3m", "--x"), 3ull << 20);
    EXPECT_EQ(parseByteSize("1G", "--x"), 1ull << 30);
    EXPECT_EQ(parseByteSize("1g", "--x"), 1ull << 30);
}

TEST(ParseByteSizeDeath, RejectsGarbageAndTrailingJunk)
{
    EXPECT_DEATH(parseByteSize("fast", "--x"),
                 "not a valid byte count");
    EXPECT_DEATH(parseByteSize("", "--x"), "not a valid byte count");
    EXPECT_DEATH(parseByteSize("12q", "--x"), "trailing junk");
    EXPECT_DEATH(parseByteSize("12kb", "--x"), "trailing junk");
}

TEST(ParseByteSizeDeath, RejectsNegativeCounts)
{
    // strtoull would silently wrap "-1" to ULLONG_MAX.
    EXPECT_DEATH(parseByteSize("-1", "--x"),
                 "not an unsigned byte count");
    EXPECT_DEATH(parseByteSize("  -5k", "--x"),
                 "not an unsigned byte count");
}

TEST(ParseByteSizeDeath, RejectsOverflow)
{
    // More digits than 64 bits hold: strtoull clamps with ERANGE.
    EXPECT_DEATH(parseByteSize("99999999999999999999999", "--x"),
                 "overflows a 64-bit byte count");
    // Fits in 64 bits before the suffix multiply, overflows after.
    EXPECT_DEATH(parseByteSize("18446744073709551615k", "--x"),
                 "overflows size_t");
    EXPECT_DEATH(parseByteSize("18014398509481984g", "--x"),
                 "overflows size_t");
}

TEST(ParseInterval, SharesTheByteSizeGrammar)
{
    EXPECT_EQ(parseInterval("1", "--x"), 1u);
    EXPECT_EQ(parseInterval("4096", "--x"), 4096u);
    EXPECT_EQ(parseInterval("64k", "--x"), 64u << 10);
    EXPECT_EQ(parseInterval("2M", "--x"), 2ull << 20);
}

TEST(ParseIntervalDeath, RejectsZeroAndGarbage)
{
    // A sampler cannot advance by zero references or ticks.
    EXPECT_DEATH(parseInterval("0", "--x"),
                 "interval must be at least 1");
    EXPECT_DEATH(parseInterval("soon", "--x"),
                 "not a valid interval");
    EXPECT_DEATH(parseInterval("-2", "--x"),
                 "not an unsigned interval");
    EXPECT_DEATH(parseInterval("5s", "--x"), "trailing junk");
}

} // namespace
} // namespace dir2b
