/**
 * @file
 * CoherenceOracle diagnostics and trace round-trip properties.
 *
 * The oracle is the arbiter every checking engine leans on, so its
 * failure mode matters as much as its happy path: a stale read or a
 * cross-block mixup must die loudly with a diagnostic naming the
 * block and both values.  The trace half pins the seed-file contract:
 * writeTrace/readTrace must round-trip any reference stream exactly,
 * because minimized fuzzer counterexamples travel through that format.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "check/oracle.hh"
#include "trace/trace_io.hh"
#include "util/random.hh"

namespace dir2b
{
namespace
{

TEST(Oracle, TracksLastWriter)
{
    CoherenceOracle o;
    EXPECT_EQ(o.expected(5), initialValue(5));
    o.onWrite(5, 111);
    o.onWrite(5, 222);
    o.onWrite(9, 333);
    EXPECT_EQ(o.expected(5), 222);
    EXPECT_EQ(o.expected(9), 333);
    o.onRead(5, 222);
    o.onRead(9, 333);
    EXPECT_EQ(o.readsChecked(), 2u);
    EXPECT_EQ(o.writesRecorded(), 3u);
}

TEST(Oracle, FreshValuesNeverRepeat)
{
    CoherenceOracle o;
    std::unordered_map<Value, int> seen;
    for (int i = 0; i < 1000; ++i)
        ++seen[o.freshValue()];
    EXPECT_EQ(seen.size(), 1000u);
}

using OracleDeathTest = ::testing::Test;

TEST(OracleDeathTest, StaleReadDiesWithDiagnostic)
{
    CoherenceOracle o;
    o.onWrite(7, 100);
    o.onWrite(7, 200);
    // A read returning the overwritten value must die naming the
    // block and the expected value.
    EXPECT_DEATH(o.onRead(7, 100), "coherence violation on block 7");
}

TEST(OracleDeathTest, CrossBlockReadDiesWithDiagnostic)
{
    CoherenceOracle o;
    o.onWrite(3, 100);
    o.onWrite(4, 200);
    // Block 4's value surfacing on a read of block 3 is the classic
    // tag-mixup bug; the diagnostic must point at block 3.
    EXPECT_DEATH(o.onRead(3, 200), "coherence violation on block 3");
}

TEST(OracleDeathTest, UnwrittenBlockReadDies)
{
    CoherenceOracle o;
    EXPECT_DEATH(o.onRead(12, 999), "coherence violation on block 12");
}

std::vector<MemRef>
randomTrace(Rng &rng, std::size_t n)
{
    std::vector<MemRef> t;
    t.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        MemRef r;
        r.proc = static_cast<ProcId>(rng.range(8));
        // Mix small addresses with the shared/private region bases so
        // the hex round-trip covers wide values too.
        switch (rng.range(3)) {
        case 0: r.addr = rng.range(64); break;
        case 1: r.addr = sharedRegionBase + rng.range(1024); break;
        default:
            r.addr = privateRegionBase(r.proc) + rng.range(1024);
        }
        r.write = rng.chance(0.4);
        t.push_back(r);
    }
    return t;
}

TEST(TraceIo, RoundTripsRandomTraces)
{
    Rng rng(0xfeedULL);
    for (int round = 0; round < 50; ++round) {
        const auto trace = randomTrace(rng, rng.range(200));
        std::stringstream ss;
        writeTrace(ss, trace);
        const auto back = readTrace(ss);
        ASSERT_EQ(back.size(), trace.size());
        for (std::size_t i = 0; i < trace.size(); ++i)
            EXPECT_EQ(back[i], trace[i]) << "round " << round
                                         << " index " << i;
    }
}

TEST(TraceIo, RoundTripSurvivesInterleavedComments)
{
    Rng rng(0xabcULL);
    const auto trace = randomTrace(rng, 40);
    std::stringstream ss;
    writeTrace(ss, trace);
    // Splice comment and blank lines between records; the parser must
    // skip them without disturbing the stream.
    std::stringstream spliced;
    std::string line;
    while (std::getline(ss, line)) {
        spliced << line << "\n";
        spliced << "# interleaved comment\n\n";
    }
    const auto back = readTrace(spliced);
    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(back[i], trace[i]);
}

} // namespace
} // namespace dir2b
