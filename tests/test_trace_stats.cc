/**
 * @file
 * Tests for the trace analyser: realised q/w, sharing classification,
 * per-processor balance and block popularity.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/synthetic.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"

namespace dir2b
{
namespace
{

TEST(TraceStats, EmptyTrace)
{
    const TraceStats s = analyzeTrace(std::vector<MemRef>{});
    EXPECT_EQ(s.refs, 0u);
    EXPECT_DOUBLE_EQ(s.q(), 0.0);
    EXPECT_DOUBLE_EQ(s.w(), 0.0);
}

TEST(TraceStats, CountsBasics)
{
    const std::vector<MemRef> t = {
        {0, 1, false},
        {0, 1, true},
        {1, 2, false},
        {1, sharedRegionBase, true},
        {2, sharedRegionBase, false},
    };
    const TraceStats s = analyzeTrace(t);
    EXPECT_EQ(s.refs, 5u);
    EXPECT_EQ(s.writes, 2u);
    EXPECT_EQ(s.sharedRefs, 2u);
    EXPECT_EQ(s.sharedWrites, 1u);
    EXPECT_EQ(s.distinctBlocks, 3u);
    EXPECT_NEAR(s.q(), 0.4, 1e-12);
    EXPECT_NEAR(s.w(), 0.5, 1e-12);
    ASSERT_EQ(s.perProc.size(), 3u);
    EXPECT_EQ(s.perProc[0], 2u);
}

TEST(TraceStats, SharingClassification)
{
    const std::vector<MemRef> t = {
        {0, 10, false}, {1, 10, false}, // read-shared only
        {0, 20, true},  {1, 20, false}, // write-shared (write + remote)
        {0, 30, true},  {0, 30, false}, // private (one proc)
        {2, 40, false},                 // private read
    };
    const TraceStats s = analyzeTrace(t);
    EXPECT_EQ(s.readSharedBlocks, 2u); // blocks 10 and 20
    EXPECT_EQ(s.writeSharedBlocks, 1u); // only block 20
}

TEST(TraceStats, HottestBlockFraction)
{
    std::vector<MemRef> t;
    for (int i = 0; i < 9; ++i)
        t.push_back({0, 7, false});
    t.push_back({0, 8, false});
    const TraceStats s = analyzeTrace(t);
    EXPECT_NEAR(s.hottestBlockFrac, 0.9, 1e-12);
}

TEST(TraceStats, RealisedParametersMatchGenerator)
{
    SyntheticConfig cfg;
    cfg.numProcs = 4;
    cfg.q = 0.15;
    cfg.w = 0.3;
    cfg.seed = 8;
    SyntheticStream stream(cfg);
    const auto refs = recordStream(stream, 40000);
    const TraceStats s = analyzeTrace(refs);
    EXPECT_NEAR(s.q(), 0.15, 0.01);
    EXPECT_NEAR(s.w(), 0.3, 0.03);
    // Round-robin issue: perfectly balanced processors.
    for (auto c : s.perProc)
        EXPECT_EQ(c, 10000u);
}

TEST(TraceStats, PrintedReportContainsKeyLines)
{
    const std::vector<MemRef> t = {{0, 1, true},
                                   {1, sharedRegionBase, false}};
    std::ostringstream os;
    printTraceStats(os, analyzeTrace(t));
    const std::string out = os.str();
    EXPECT_NE(out.find("references"), std::string::npos);
    EXPECT_NE(out.find("shared refs (q)"), std::string::npos);
    EXPECT_NE(out.find("P0=1"), std::string::npos);
    EXPECT_NE(out.find("P1=1"), std::string::npos);
}

} // namespace
} // namespace dir2b
