/**
 * @file
 * Unit tests for util: PRNG, bit operations, dynamic bitset, tables.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/bitops.hh"
#include "util/bitset.hh"
#include "util/random.hh"
#include "util/table.hh"
#include "util/types.hh"

namespace dir2b
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DistinctSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, RangeRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.range(13), 13u);
}

TEST(Rng, RangeCoversAllResidues)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.range(10));
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0.0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(11);
    int hits = 0;
    const int trials = 50000;
    for (int i = 0; i < trials; ++i) {
        if (rng.chance(0.3))
            ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(13);
    const double p = 0.25;
    double sum = 0.0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        sum += static_cast<double>(rng.geometric(p));
    // Mean failures before success = (1-p)/p = 3.
    EXPECT_NEAR(sum / trials, 3.0, 0.15);
}

TEST(Rng, SplitStreamsIndependent)
{
    Rng parent(17);
    Rng a = parent.split();
    Rng b = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(BitOps, PowerOf2)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_TRUE(isPowerOf2(1024));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(1023));
}

TEST(BitOps, Log2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(DynBitset, SetResetTest)
{
    DynBitset bs(100);
    EXPECT_TRUE(bs.none());
    bs.set(0);
    bs.set(63);
    bs.set(64);
    bs.set(99);
    EXPECT_TRUE(bs.test(0));
    EXPECT_TRUE(bs.test(63));
    EXPECT_TRUE(bs.test(64));
    EXPECT_TRUE(bs.test(99));
    EXPECT_FALSE(bs.test(1));
    EXPECT_EQ(bs.count(), 4u);
    bs.reset(63);
    EXPECT_FALSE(bs.test(63));
    EXPECT_EQ(bs.count(), 3u);
}

TEST(DynBitset, FindFirstAndNext)
{
    DynBitset bs(130);
    EXPECT_EQ(bs.findFirst(), 130u);
    bs.set(5);
    bs.set(64);
    bs.set(129);
    EXPECT_EQ(bs.findFirst(), 5u);
    EXPECT_EQ(bs.findNext(5), 64u);
    EXPECT_EQ(bs.findNext(64), 129u);
    EXPECT_EQ(bs.findNext(129), 130u);
}

TEST(DynBitset, IterationVisitsExactlySetBits)
{
    DynBitset bs(200);
    std::set<std::size_t> want = {0, 1, 63, 64, 65, 127, 128, 199};
    for (auto i : want)
        bs.set(i);
    std::set<std::size_t> got;
    for (std::size_t i = bs.findFirst(); i < bs.size();
         i = bs.findNext(i)) {
        got.insert(i);
    }
    EXPECT_EQ(got, want);
}

TEST(DynBitset, ClearEmptiesEverything)
{
    DynBitset bs(70);
    bs.set(3);
    bs.set(69);
    bs.clear();
    EXPECT_TRUE(bs.none());
    EXPECT_EQ(bs.count(), 0u);
}

TEST(InitialValue, DeterministicAndDistinct)
{
    EXPECT_EQ(initialValue(42), initialValue(42));
    std::set<Value> values;
    for (Addr a = 0; a < 1000; ++a)
        values.insert(initialValue(a));
    EXPECT_EQ(values.size(), 1000u);
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({"n:", "4", "8"});
    t.addRow({"w = 0.1", "0.000", "0.005"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("w = 0.1"), std::string::npos);
    EXPECT_NE(out.find("0.005"), std::string::npos);
}

TEST(TextTable, NumFormatsThreeDecimals)
{
    EXPECT_EQ(TextTable::num(0.9695), "0.970");
    EXPECT_EQ(TextTable::num(57.3301), "57.330");
    EXPECT_EQ(TextTable::num(0.0004), "0.000");
}

} // namespace
} // namespace dir2b
