/**
 * @file
 * Observational-equivalence properties between schemes — the strongest
 * form of several of the paper's claims.
 *
 *  1. Two-bit + an infinite translation buffer is *count-for-count*
 *     identical to the full map on any trace: same invalidations,
 *     purges, write-backs, memory traffic and directed commands, and
 *     zero broadcasts/useless commands.  This is §4.4's limiting claim
 *     ("can achieve any desired approximation of the full bit map
 *     approach") taken to its limit.
 *
 *  2. The two-bit scheme differs from the full map ONLY in command
 *     delivery: the "forced" work (invalidations applied, write-backs,
 *     purges, memory traffic, hit/miss classification) is identical on
 *     any trace — §4.2's premise that "the number of 'forced'
 *     write-backs and invalidations are independent of the mapping
 *     method", which the whole overhead derivation rests on.
 */

#include <gtest/gtest.h>

#include <memory>

#include "proto/protocol_factory.hh"
#include "system/func_system.hh"
#include "trace/synthetic.hh"
#include "trace/trace_io.hh"

namespace dir2b
{
namespace
{

std::vector<MemRef>
makeTrace(std::uint64_t seed, std::size_t n)
{
    SyntheticConfig scfg;
    scfg.numProcs = 4;
    scfg.q = 0.3;
    scfg.w = 0.4;
    scfg.sharedBlocks = 12;
    scfg.privateBlocks = 24;
    scfg.hotBlocks = 8;
    scfg.seed = seed;
    SyntheticStream src(scfg);
    return recordStream(src, n);
}

AccessCounts
replayThrough(const std::string &proto, const std::vector<MemRef> &t,
              std::size_t tbCapacity)
{
    ProtoConfig cfg;
    cfg.numProcs = 4;
    cfg.cacheGeom.sets = 8;
    cfg.cacheGeom.ways = 2;
    cfg.numModules = 2;
    cfg.tbCapacity = tbCapacity;
    auto p = makeProtocol(proto, cfg);
    VectorStream replay(t);
    RunOptions opts;
    opts.numRefs = t.size();
    opts.invariantEvery = 512;
    runFunctional(*p, replay, opts);
    return p->counts();
}

TEST(Equivalence, InfiniteTranslationBufferEqualsFullMapExactly)
{
    for (std::uint64_t seed : {42u, 7u, 99u}) {
        const auto trace = makeTrace(seed, 30000);
        const AccessCounts tb =
            replayThrough("two_bit_tb", trace, 1u << 20);
        const AccessCounts fm = replayThrough("full_map", trace, 0);

        EXPECT_EQ(tb.invalidations, fm.invalidations) << seed;
        EXPECT_EQ(tb.purges, fm.purges) << seed;
        EXPECT_EQ(tb.writebacks, fm.writebacks) << seed;
        EXPECT_EQ(tb.memReads, fm.memReads) << seed;
        EXPECT_EQ(tb.memWrites, fm.memWrites) << seed;
        EXPECT_EQ(tb.directedCmds, fm.directedCmds) << seed;
        EXPECT_EQ(tb.broadcasts, 0u) << seed;
        EXPECT_EQ(tb.uselessCmds, 0u) << seed;
        EXPECT_EQ(tb.missRatio(), fm.missRatio()) << seed;
    }
}

TEST(Equivalence, ForcedWorkIsMappingIndependent)
{
    // §4.2: "the number of 'forced' write-backs and invalidations are
    // independent of the mapping method" — the two-bit scheme and the
    // full map must agree on everything except command delivery.
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        const auto trace = makeTrace(seed, 30000);
        const AccessCounts tb = replayThrough("two_bit", trace, 0);
        const AccessCounts fm = replayThrough("full_map", trace, 0);

        EXPECT_EQ(tb.invalidations, fm.invalidations) << seed;
        EXPECT_EQ(tb.purges, fm.purges) << seed;
        EXPECT_EQ(tb.writebacks, fm.writebacks) << seed;
        EXPECT_EQ(tb.memWrites, fm.memWrites) << seed;
        EXPECT_EQ(tb.readHits, fm.readHits) << seed;
        EXPECT_EQ(tb.writeHits, fm.writeHits) << seed;
        EXPECT_EQ(tb.mrequests, fm.mrequests) << seed;
        // ...and the ONLY difference is the broadcast overhead.
        EXPECT_GT(tb.uselessCmds, 0u) << seed;
        EXPECT_EQ(fm.uselessCmds, 0u) << seed;
    }
}

TEST(Equivalence, Nop1AblationForcesIdenticalDataMovement)
{
    // Dropping Present1 changes commands, never data movement.
    for (std::uint64_t seed : {5u}) {
        const auto trace = makeTrace(seed, 30000);
        const AccessCounts base = replayThrough("two_bit", trace, 0);
        const AccessCounts ablated =
            replayThrough("two_bit_nop1", trace, 0);
        EXPECT_EQ(base.invalidations, ablated.invalidations);
        EXPECT_EQ(base.writebacks, ablated.writebacks);
        EXPECT_EQ(base.memWrites, ablated.memWrites);
        EXPECT_EQ(base.missRatio(), ablated.missRatio());
        EXPECT_LT(base.broadcasts, ablated.broadcasts);
    }
}

} // namespace
} // namespace dir2b
