/**
 * @file
 * Unit suite for the table-driven protocol engine (proto/table_engine):
 * table validation (row-numbered rejection messages), first-match guard
 * evaluation order, stall/retry replay, and the metadata the rest of
 * the system derives from tables (flush support, directory cost,
 * directory store counters).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "proto/table_defs.hh"
#include "proto/table_engine.hh"
#include "proto/protocol_factory.hh"
#include "util/random.hh"

namespace dir2b
{
namespace
{

TableAction
bump(TableCounter c)
{
    return {ActionOp::Bump, static_cast<std::uint8_t>(c)};
}

TableAction
act(ActionOp op, std::uint8_t arg = 0)
{
    return {op, arg};
}

/** Smallest valid table: one state, a self-loop read-miss fill, a hit
 *  row, and eviction rows so flush works. */
TransitionTable
tinyTable()
{
    TransitionTable t;
    t.name = "tiny";
    t.stateNames = {"Only"};
    t.constraints = {{0, SIZE_MAX, 0, 1}};
    t.rows = {
        {0, EventClass::ReadHit, TableGuard::Always, {}, 0},
        {0, EventClass::WriteHitDirty, TableGuard::Always,
         {act(ActionOp::WriteLine)}, 0},
        {0, EventClass::WriteHitClean, TableGuard::Always,
         {act(ActionOp::SetLine,
              static_cast<std::uint8_t>(LineState::Modified)),
          act(ActionOp::WriteLine)}, 0},
        {0, EventClass::ReadMiss, TableGuard::Always,
         {act(ActionOp::ReadMem),
          act(ActionOp::FillLine,
              static_cast<std::uint8_t>(LineState::Shared))}, 0},
        {0, EventClass::WriteMiss, TableGuard::Always,
         {act(ActionOp::ReadMem),
          act(ActionOp::FillLine,
              static_cast<std::uint8_t>(LineState::Modified))}, 0},
        {0, EventClass::EvictClean, TableGuard::Always,
         {act(ActionOp::DropLine)}, 0},
        {0, EventClass::EvictDirty, TableGuard::Always,
         {act(ActionOp::WritebackLine), act(ActionOp::DropLine)}, 0},
    };
    return t;
}

ProtoConfig
smallConfig(ProcId procs = 2)
{
    ProtoConfig pc;
    pc.numProcs = procs;
    pc.numModules = 1;
    pc.cacheGeom.sets = 2;
    pc.cacheGeom.ways = 2;
    return pc;
}

/** True iff some validation message contains both fragments. */
bool
rejectsWith(const TransitionTable &t, const std::string &a,
            const std::string &b = "")
{
    for (const std::string &m : t.validate()) {
        if (m.find(a) != std::string::npos &&
            (b.empty() || m.find(b) != std::string::npos))
            return true;
    }
    return false;
}

TEST(TableValidate, ShippedTablesAreValid)
{
    EXPECT_TRUE(twoBitTable().validate().empty());
    EXPECT_TRUE(fullMapTable().validate().empty());
    EXPECT_TRUE(moesiTable().validate().empty());
}

TEST(TableValidate, ShippedTableShapes)
{
    EXPECT_EQ(twoBitTable().rows.size(), 17u);
    EXPECT_EQ(fullMapTable().rows.size(), 13u);
    EXPECT_EQ(moesiTable().rows.size(), 26u);
    EXPECT_TRUE(twoBitTable().handlesEvict());
    EXPECT_TRUE(moesiTable().handlesEvict());
}

TEST(TableValidate, DuplicateRowRejectedWithRowNumber)
{
    TransitionTable t = tinyTable();
    t.rows.push_back(t.rows[0]); // duplicate (Only, ReadHit, Always)
    EXPECT_TRUE(rejectsWith(t, "row 7", "duplicate of row 0"));
}

TEST(TableValidate, GuardRowShadowedByEarlierAlwaysRejected)
{
    TransitionTable t = tinyTable();
    // Guarded variant AFTER the Always row: first-match order makes
    // it dead, and validate() must say so by row number.
    t.rows.push_back({0, EventClass::ReadHit,
                      TableGuard::OtherHoldersNone, {}, 0});
    EXPECT_TRUE(rejectsWith(t, "row 7", "matches Always first"));
}

TEST(TableValidate, UndefinedStatesRejected)
{
    TransitionTable t = tinyTable();
    t.rows.push_back({3, EventClass::ReadHit, TableGuard::Always,
                      {}, 0});
    EXPECT_TRUE(rejectsWith(t, "undefined state 3"));

    TransitionTable u = tinyTable();
    u.rows[0].next = 2;
    EXPECT_TRUE(rejectsWith(u, "undefined next-state 2"));
}

TEST(TableValidate, ActionVocabularyViolationsRejected)
{
    TransitionTable t = tinyTable();
    t.rows[0].actions = {bump(static_cast<TableCounter>(99))};
    EXPECT_TRUE(rejectsWith(t, "row 0", "unknown counter 99"));

    TransitionTable u = tinyTable();
    u.rows[3].actions = {act(ActionOp::FillLine,
                             static_cast<std::uint8_t>(
                                 LineState::Invalid))};
    EXPECT_TRUE(rejectsWith(u, "FillLine(Invalid)"));

    TransitionTable v = tinyTable();
    v.rows[3].actions = {act(ActionOp::FillLine, 42)};
    EXPECT_TRUE(rejectsWith(v, "unknown line state 42"));

    TransitionTable w = tinyTable();
    w.rows[0].actions = {act(ActionOp::SetDirState, 3)};
    EXPECT_TRUE(rejectsWith(w, "undefined target state 3"));
}

TEST(TableValidate, StallMustBeLastAction)
{
    TransitionTable t = tinyTable();
    t.rows[0].actions = {act(ActionOp::Stall),
                         bump(TableCounter::Requests)};
    EXPECT_TRUE(rejectsWith(t, "Stall must be the last"));
}

TEST(TableValidate, NextStateMustMatchDirectoryEffect)
{
    // Two states so a state change is expressible.
    TransitionTable t = tinyTable();
    t.stateNames = {"A", "B"};
    t.constraints = {{0, SIZE_MAX, 0, 1}, {0, SIZE_MAX, 0, 1}};

    // Declared next B, but no SetDirState: silently wrong.
    TransitionTable u = t;
    u.rows[0].next = 1;
    EXPECT_TRUE(rejectsWith(u, "changes state without a SetDirState"));

    // SetDirState writes B but the row declares next A.
    TransitionTable v = t;
    v.rows[0].actions = {act(ActionOp::SetDirState, 1)};
    EXPECT_TRUE(
        rejectsWith(v, "declares next state 'A'", "writes 'B'"));
}

TEST(TableValidate, StateCountAndConstraintArityChecked)
{
    TransitionTable t = tinyTable();
    t.stateNames = {"A", "B", "C", "D", "E"};
    EXPECT_TRUE(rejectsWith(t, "5 states"));

    TransitionTable u = tinyTable();
    u.constraints.clear();
    EXPECT_TRUE(rejectsWith(u, "0 state constraints"));
}

#if GTEST_HAS_DEATH_TEST
TEST(TableProtocolDeath, ConstructingFromInvalidTableFatals)
{
    TransitionTable t = tinyTable();
    t.rows.push_back(t.rows[0]);
    EXPECT_DEATH(TableProtocol(t, smallConfig()), "duplicate of row");
}

TEST(TableProtocolDeath, MissingRowFatalsWithIncompleteTable)
{
    TransitionTable t = tinyTable();
    // Remove the WriteMiss row: the first write from a cold cache has
    // no matching (state, event) row.
    t.rows.erase(t.rows.begin() + 4);
    TableProtocol proto(t, smallConfig());
    EXPECT_DEATH(proto.access(0, 0, true, 7), "incomplete table");
}
#endif

TEST(TableGuards, FirstMatchingRowWinsInDeclarationOrder)
{
    // full_map's clean-evict pair: the OtherHoldersNone row precedes
    // the Always fallback, so the LAST holder reclaims the directory
    // entry and an earlier evict (with another holder live) does not.
    TableProtocol proto(fullMapTable(), smallConfig());
    proto.access(0, 0, false);
    proto.access(1, 0, false);
    EXPECT_EQ(proto.dirStateOf(0), 1u); // Shared

    proto.flushCache(0); // other holder remains -> Always row, stays S
    EXPECT_EQ(proto.dirStateOf(0), 1u);
    proto.flushCache(1); // last holder -> OtherHoldersNone row, to U
    EXPECT_EQ(proto.dirStateOf(0), 0u);
}

TEST(TableGuards, GuardsSelectOnRemoteOwnerDirtiness)
{
    // MOESI (EM, ReadMiss): OwnerDirty row -> Owned; Always (clean
    // Exclusive owner) row -> Shared.
    TableProtocol dirty(moesiTable(), smallConfig());
    dirty.access(0, 0, true, 11); // P0 Modified, dir EM
    dirty.access(1, 0, false);    // dirty owner supplies -> dir Owned
    EXPECT_EQ(dirty.dirStateOf(0), 3u);

    TableProtocol clean(moesiTable(), smallConfig());
    clean.access(0, 0, false); // P0 Exclusive (clean), dir EM
    clean.access(1, 0, false); // clean owner downgrades -> dir Shared
    EXPECT_EQ(clean.dirStateOf(0), 1u);
}

TEST(TableStall, StallReplaysAfterStateChange)
{
    // (Cold, ReadMiss) primes the directory and stalls; the retry
    // re-classifies and completes through the (Warm, ReadMiss) row.
    TransitionTable t;
    t.name = "staller";
    t.stateNames = {"Cold", "Warm"};
    t.constraints = {{0, 0, 0, 0}, {0, SIZE_MAX, 0, 0}};
    t.rows = {
        {0, EventClass::ReadMiss, TableGuard::Always,
         {bump(TableCounter::Requests), act(ActionOp::SetDirState, 1),
          act(ActionOp::Stall)}, 1},
        {1, EventClass::ReadMiss, TableGuard::Always,
         {act(ActionOp::ReadMem),
          act(ActionOp::FillLine,
              static_cast<std::uint8_t>(LineState::Shared))}, 1},
        {1, EventClass::ReadHit, TableGuard::Always, {}, 1},
        {1, EventClass::EvictClean, TableGuard::Always,
         {act(ActionOp::DropLine)}, 1},
    };
    ASSERT_TRUE(t.validate().empty());

    TableProtocol proto(t, smallConfig());
    proto.access(0, 0, false);

    // One reference, classified once, replayed through two rows.
    EXPECT_EQ(proto.counts().readMisses, 1u);
    EXPECT_EQ(proto.counts().requests, 1u);
    EXPECT_EQ(proto.counts().memReads, 1u);
    EXPECT_EQ(proto.rowHits()[0], 1u);
    EXPECT_EQ(proto.rowHits()[1], 1u);

    // Second read is a plain hit: no replay, no stall.
    proto.access(0, 0, false);
    EXPECT_EQ(proto.counts().readHits, 1u);
    EXPECT_EQ(proto.rowHits()[2], 1u);
}

#if GTEST_HAS_DEATH_TEST
TEST(TableStall, UnproductiveStallLoopIsALivelockFatal)
{
    TransitionTable t;
    t.name = "livelock";
    t.stateNames = {"Spin"};
    t.constraints = {{0, SIZE_MAX, 0, 1}};
    t.rows = {
        {0, EventClass::ReadMiss, TableGuard::Always,
         {act(ActionOp::Stall)}, 0},
    };
    ASSERT_TRUE(t.validate().empty());
    TableProtocol proto(t, smallConfig());
    EXPECT_DEATH(proto.access(0, 0, false), "livelock");
}
#endif

TEST(TableMetadata, FlushSupportComesFromEvictRows)
{
    EXPECT_TRUE(TableProtocol(twoBitTable(), smallConfig())
                    .supportsFlush());

    TransitionTable t = tinyTable();
    t.rows.resize(5); // drop both eviction rows
    EXPECT_FALSE(TableProtocol(t, smallConfig()).supportsFlush());
}

TEST(TableMetadata, DirectoryCostComesFromTableBits)
{
    ProtoConfig pc = smallConfig(16);
    EXPECT_EQ(TableProtocol(twoBitTable(), pc).directoryBitsPerBlock(),
              2u);
    EXPECT_EQ(
        TableProtocol(fullMapTable(), pc).directoryBitsPerBlock(),
        17u);
    EXPECT_EQ(TableProtocol(moesiTable(), pc).directoryBitsPerBlock(),
              18u);
}

TEST(TableMetadata, DirStoreCountersComposeWithRamBudget)
{
    // A tiny directory RAM budget forces the tiered store onto its
    // compress/evict path; the aggregated counters must show it and
    // the protocol must still be coherent.
    ProtoConfig pc = smallConfig();
    pc.dirRamBudget = 2048;
    TableProtocol proto(twoBitTable(), pc);
    for (Addr a = 0; a < 4096; ++a)
        proto.access(a % 2, a, a % 3 == 0, 100 + a);
    const DirStoreCounters c = proto.dirStoreCounters();
    EXPECT_EQ(c.ramBudgetBytes, 2048u);
    EXPECT_GT(c.hotPages + c.coldPages + c.diskPages, 0u);
    proto.checkInvariants();
}

TEST(TableDispatch, IndexedAndLinearDispatchAreEquivalent)
{
    // The dense (state x event-class) index may only skip rows that
    // could never match; every query must land on the same
    // declaration-ordered first match as the linear scan.  Drive each
    // shipped table through an identical mixed workload with the
    // index on and off and require bit-identical observable state:
    // returned values, counters, row coverage, directory states.
    for (const TransitionTable &t :
         {twoBitTable(), fullMapTable(), moesiTable()}) {
        ProtoConfig pc = smallConfig(4);
        TableProtocol indexed(t, pc);
        TableProtocol linear(t, pc);
        linear.useLinearDispatch(true);

        Rng rng(0x9e3779b97f4a7c15ULL);
        Value nonce = 0;
        for (int i = 0; i < 4000; ++i) {
            const ProcId p = static_cast<ProcId>(rng.range(4));
            const Addr a = rng.range(48);
            const bool w = rng.chance(0.3);
            const Value v = w ? ++nonce : 0;
            ASSERT_EQ(indexed.access(p, a, w, v),
                      linear.access(p, a, w, v))
                << t.name << " diverged at ref " << i;
            if (i % 500 == 499) {
                indexed.flushCache(p);
                linear.flushCache(p);
            }
        }
        EXPECT_EQ(indexed.rowHits(), linear.rowHits()) << t.name;
        std::vector<std::uint64_t> vi, vl;
        AccessCounts::forEachField(
            indexed.counts(),
            [&](const char *, std::uint64_t v) { vi.push_back(v); });
        AccessCounts::forEachField(
            linear.counts(),
            [&](const char *, std::uint64_t v) { vl.push_back(v); });
        EXPECT_EQ(vi, vl) << t.name;
        for (Addr a = 0; a < 48; ++a)
            ASSERT_EQ(indexed.dirStateOf(a), linear.dirStateOf(a))
                << t.name << " dir state differs at block " << a;
        indexed.checkInvariants();
        linear.checkInvariants();
    }
}

TEST(TableFactory, TableProtocolsAreRegistered)
{
    const auto names = protocolNames();
    for (const char *want :
         {"two_bit_table", "full_map_table", "moesi"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), want),
                  names.end())
            << want << " missing from protocolNames()";
    }
    // The fuzz tier assumes the hand-written reference stays first.
    EXPECT_EQ(names.front(), "two_bit");
}

TEST(TableFactory, DescribeRowReadsLikeTheDocs)
{
    EXPECT_EQ(describeRow(twoBitTable(), 0),
              "(Present1, ReadHit, Always) -> Present1");
}

} // namespace
} // namespace dir2b
