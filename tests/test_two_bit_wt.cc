/**
 * @file
 * Directed tests for the write-through two-bit variant: the directory
 * as an invalidation *filter* over the classical broadcast scheme
 * (§2.4's framing), with no PresentM state and no write-backs.
 */

#include <gtest/gtest.h>

#include "core/two_bit_wt_protocol.hh"
#include "proto/classical.hh"
#include "util/random.hh"

namespace dir2b
{
namespace
{

ProtoConfig
config(ProcId n = 4, std::size_t sets = 16, std::size_t ways = 2)
{
    ProtoConfig cfg;
    cfg.numProcs = n;
    cfg.cacheGeom.sets = sets;
    cfg.cacheGeom.ways = ways;
    cfg.numModules = 2;
    return cfg;
}

TEST(TwoBitWt, WriteHitOnSoleCopyNeedsNoBroadcast)
{
    TwoBitWtProtocol p(config());
    p.access(0, 5, false); // Present1
    p.access(0, 5, true, 9);
    EXPECT_EQ(p.lastDelta().broadcasts, 0u);
    EXPECT_EQ(p.memValue(5), 9u); // written through
    EXPECT_EQ(p.globalState(5), GlobalState::Present1);
}

TEST(TwoBitWt, WriteHitOnSharedBlockFiltersBackToPresent1)
{
    const ProcId n = 4;
    TwoBitWtProtocol p(config(n));
    p.access(0, 5, false);
    p.access(1, 5, false); // Present*
    p.access(0, 5, true, 9);
    EXPECT_EQ(p.lastDelta().broadcasts, 1u);
    EXPECT_EQ(p.lastDelta().broadcastCmds, n - 1u);
    EXPECT_EQ(p.lastDelta().invalidations, 1u);
    // The invalidation restored exact knowledge.
    EXPECT_EQ(p.globalState(5), GlobalState::Present1);
    // So the next write is broadcast-free again.
    p.access(0, 5, true, 10);
    EXPECT_EQ(p.lastDelta().broadcasts, 0u);
}

TEST(TwoBitWt, WriteMissOnAbsentIsSilent)
{
    TwoBitWtProtocol p(config());
    p.access(0, 7, true, 1);
    EXPECT_EQ(p.lastDelta().broadcasts, 0u);
    EXPECT_EQ(p.lastDelta().memWrites, 1u);
    // No allocate: no copy anywhere.
    EXPECT_EQ(p.holders(7).size(), 0u);
    EXPECT_EQ(p.globalState(7), GlobalState::Absent);
}

TEST(TwoBitWt, WriteMissOnSharedReclaimsAbsent)
{
    TwoBitWtProtocol p(config());
    p.access(0, 7, false);
    p.access(1, 7, false);
    p.access(2, 7, true, 3);
    EXPECT_EQ(p.lastDelta().invalidations, 2u);
    EXPECT_EQ(p.globalState(7), GlobalState::Absent);
    EXPECT_EQ(p.access(0, 7, false), 3u);
}

TEST(TwoBitWt, NeverWritesBackAndNeverPresentM)
{
    TwoBitWtProtocol p(config(4, 2, 1)); // tiny: heavy eviction
    Rng rng(5);
    for (int i = 0; i < 4000; ++i) {
        p.access(static_cast<ProcId>(rng.range(4)), rng.range(12),
                 rng.chance(0.4), 100u + i);
        if (i % 64 == 0)
            p.checkInvariants();
    }
    EXPECT_EQ(p.counts().writebacks, 0u);
    EXPECT_EQ(p.counts().purges, 0u);
    EXPECT_EQ(p.counts().wordWrites, p.counts().writes);
}

TEST(TwoBitWt, FiltersClassicalBroadcastStorm)
{
    // The §2.4 claim made concrete: identical write-through policy,
    // but the 2-bit map suppresses broadcasts for unshared blocks.
    auto drive = [](Protocol &p) {
        Rng rng(6);
        for (int i = 0; i < 6000; ++i) {
            const auto proc = static_cast<ProcId>(rng.range(4));
            // Mostly private blocks, occasionally a shared one.
            const Addr a = rng.chance(0.1)
                               ? rng.range(4)
                               : 1000 + proc * 100 + rng.range(8);
            p.access(proc, a, rng.chance(0.4), 10u + i);
        }
    };
    TwoBitWtProtocol filtered(config());
    ClassicalProtocol classical(config());
    drive(filtered);
    drive(classical);
    // The classical scheme broadcasts every store; the map filters the
    // private-store majority out.
    EXPECT_LT(filtered.counts().broadcasts,
              classical.counts().broadcasts / 3);
    // Both deliver identical invalidation *effects* (same workload).
    EXPECT_EQ(filtered.counts().wordWrites,
              classical.counts().wordWrites);
}

TEST(TwoBitWt, FlushReclaimsPresent1)
{
    TwoBitWtProtocol p(config());
    p.access(0, 5, false);
    p.flushCache(0);
    EXPECT_EQ(p.globalState(5), GlobalState::Absent);
    EXPECT_EQ(p.cache(0).validCount(), 0u);
}

} // namespace
} // namespace dir2b
