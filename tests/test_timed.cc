/**
 * @file
 * Tests for the timed (discrete-event) tier: basic round trips, the
 * §3.2.5 synchronization scenario (E8), the eviction/query race, and
 * randomized coherence runs over both controller designs.
 */

#include <gtest/gtest.h>

#include <deque>
#include <sstream>
#include <vector>

#include "timed/timed_oracle.hh"
#include "timed/timed_system.hh"
#include "trace/synthetic.hh"

namespace dir2b
{
namespace
{

/** Scripted per-processor reference source. */
class Script
{
  public:
    explicit Script(std::vector<std::vector<MemRef>> perProc)
        : perProc_(std::move(perProc))
    {}

    ProcSource
    source()
    {
        return [this](ProcId p) -> std::optional<MemRef> {
            auto &q = perProc_.at(p);
            if (pos_.size() <= p)
                pos_.resize(p + 1, 0);
            if (pos_[p] >= q.size())
                return std::nullopt;
            return q[pos_[p]++];
        };
    }

  private:
    std::vector<std::vector<MemRef>> perProc_;
    std::vector<std::size_t> pos_;
};

TimedConfig
config(ProcId n = 4, std::size_t sets = 16, std::size_t ways = 2)
{
    TimedConfig cfg;
    cfg.numProcs = n;
    cfg.numModules = 2;
    cfg.cacheGeom.sets = sets;
    cfg.cacheGeom.ways = ways;
    return cfg;
}

TEST(TimedSystem, SingleProcessorReadWriteRoundTrip)
{
    TimedConfig cfg = config(1);
    TimedSystem sys(cfg);
    Script script({{
        {0, 100, false},
        {0, 100, true},
        {0, 100, false},
        {0, 200, false},
    }});
    const auto r = sys.run(script.source(), 100);
    EXPECT_EQ(r.refsCompleted, 4u);
    EXPECT_EQ(r.readsChecked, 3u);
    EXPECT_EQ(r.writesRecorded, 1u);
    EXPECT_GT(r.finalTick, 0u);
}

TEST(TimedSystem, LatencyOrderingHitVsMiss)
{
    // A hit costs ~cacheLatency; a miss costs at least two network
    // crossings plus the memory access.
    TimedConfig cfg = config(1);
    TimedSystem sys(cfg);
    Script script({{{0, 100, false}, {0, 100, false}}});
    sys.run(script.source(), 100);
    const auto &h = sys.cacheCtrl(0).stats().latency;
    EXPECT_EQ(h.samples(), 2u);
    EXPECT_GE(h.max(), 2 * cfg.netLatency + cfg.memLatency);
    EXPECT_LE(h.min(), cfg.cacheLatency + 1);
}

TEST(TimedSystem, ModifiedDataFlowsBetweenCaches)
{
    TimedConfig cfg = config(2);
    TimedSystem sys(cfg);
    // P0 writes block 5; P1 then reads it (PresentM -> BROADQUERY).
    Script script({
        {{0, 5, true}},
        {{1, 5, false}, {1, 5, false}},
    });
    const auto r = sys.run(script.source(), 100);
    EXPECT_EQ(r.refsCompleted, 3u);
    // The read must have triggered an owner query unless the write
    // had not completed yet; either way the oracle verified values.
    EXPECT_EQ(r.readsChecked, 2u);
}

TEST(TimedSystem, Mrequest351ScenarioWithQueueDeletion)
{
    // The §3.2.5 example, engineered so both MREQUESTs are queued
    // when the first is processed:
    //   - caches 0 and 1 both load block a (clean copies);
    //   - cache 2 occupies the (serial) controller with a miss to
    //     another block of the same module;
    //   - caches 0 and 1 then store to a back-to-back.
    // Expected: the controller grants one MREQUEST, deletes the other
    // from its queue while broadcasting BROADINV, and the losing cache
    // treats the BROADINV as MGRANTED(false), converting to a write
    // miss.
    TimedConfig cfg = config(3, 16, 2);
    cfg.numModules = 1;
    cfg.dirLatency = 8; // wide window so the second MREQUEST queues
    cfg.thinkTime = 1;
    TimedSystem sys(cfg);

    const Addr a = 7;
    const Addr b = 9; // same module (numModules == 1)
    Script script({
        {{0, a, false}, {0, a, true}},
        {{1, a, false}, {1, a, true}},
        {{2, b, false}, {2, b + 2, false}, {2, b + 4, false}},
    });
    const auto r = sys.run(script.source(), 100);
    EXPECT_EQ(r.refsCompleted, 7u);

    // Exactly one store won the MREQUEST; the other converted.
    EXPECT_EQ(r.mrequestConversions, 1u);
    EXPECT_EQ(r.mreqDeleted + r.grantsFalse, 1u);
    const auto &d = sys.dirCtrl(0).stats();
    EXPECT_EQ(d.grantsTrue.value(), 1u);
    EXPECT_GE(d.broadInvs.value(), 1u);
}

TEST(TimedSystem, EvictionRaceConsumesEjectAsPut)
{
    // Cache 0 dirties block a, then misses to a conflicting block so
    // the dirty line is ejected; cache 1 simultaneously read-misses a.
    // If the controller's BROADQUERY finds no owner, the in-flight
    // EJECT(write) must be consumed as the put() response.
    TimedConfig cfg = config(2, 1, 1); // 1-block caches: instant
                                       // conflict
    cfg.numModules = 1;
    TimedSystem sys(cfg);

    const Addr a = 4;
    const Addr conflict = 12; // same (only) set
    Script script({
        {{0, a, true}, {0, conflict, false}},
        {{1, a, false}},
    });
    const auto r = sys.run(script.source(), 100);
    EXPECT_EQ(r.refsCompleted, 3u);
    // Whichever interleaving occurred, the data arrived and values
    // checked out; at least one put path was exercised if the request
    // hit PresentM.
    const auto &d = sys.dirCtrl(0).stats();
    EXPECT_LE(d.putsConsumed.value() + d.putsAwaited.value(), 2u);
}

TEST(TimedSystem, SnoopFilterAbsorbsUselessBroadcasts)
{
    auto run = [](bool filter) {
        TimedConfig cfg = config(4);
        cfg.snoopFilter = filter;
        TimedSystem sys(cfg);
        SyntheticConfig scfg;
        scfg.numProcs = 4;
        scfg.q = 0.3;
        scfg.w = 0.5;
        scfg.sharedBlocks = 8;
        scfg.privateBlocks = 16;
        scfg.hotBlocks = 8;
        scfg.seed = 5;
        SyntheticStream stream(scfg);
        auto src = [&stream](ProcId p) -> std::optional<MemRef> {
            return stream.nextFor(p);
        };
        return sys.run(src, 800);
    };
    const auto noFilter = run(false);
    const auto withFilter = run(true);
    EXPECT_GT(noFilter.stolenCycles, withFilter.stolenCycles);
    EXPECT_GT(withFilter.filteredCmds, 0u);
    // Network traffic is NOT reduced (the paper's point).
    EXPECT_EQ(noFilter.netMessages, withFilter.netMessages);
}

struct TimedParam
{
    TimedProto proto;
    bool perBlock;
    bool snoop;
    NetKind net;
    std::uint64_t seed;
};

class TimedProperty : public ::testing::TestWithParam<TimedParam>
{
};

TEST_P(TimedProperty, RandomTrafficStaysCoherent)
{
    const auto prm = GetParam();
    TimedConfig cfg = config(4, 8, 2);
    cfg.numModules = 3;
    cfg.protocol = prm.proto;
    cfg.perBlockConcurrency = prm.perBlock;
    cfg.snoopFilter = prm.snoop;
    cfg.network = prm.net;
    TimedSystem sys(cfg);

    SyntheticConfig scfg;
    scfg.numProcs = 4;
    scfg.q = 0.15;
    scfg.w = 0.4;
    scfg.sharedBlocks = 12;
    scfg.privateBlocks = 24;
    scfg.hotBlocks = 8;
    scfg.seed = prm.seed;
    SyntheticStream stream(scfg);
    auto src = [&stream](ProcId p) -> std::optional<MemRef> {
        return stream.nextFor(p);
    };

    const auto r = sys.run(src, 2500);
    EXPECT_EQ(r.refsCompleted, 4u * 2500u);
    EXPECT_GT(r.readsChecked, 0u);
    EXPECT_GT(r.writesRecorded, 0u);
    // Races must actually have been exercised across the suite; here
    // just confirm the machinery is wired (non-negative by type,
    // reported for visibility).
    SUCCEED() << "conversions=" << r.mrequestConversions
              << " putsConsumed=" << r.putsConsumed
              << " putsAwaited=" << r.putsAwaited;
}

INSTANTIATE_TEST_SUITE_P(
    Designs, TimedProperty,
    ::testing::Values(
        TimedParam{TimedProto::TwoBit, false, false, NetKind::Ideal, 1},
        TimedParam{TimedProto::TwoBit, false, false, NetKind::Ideal, 2},
        TimedParam{TimedProto::TwoBit, true, false, NetKind::Ideal, 1},
        TimedParam{TimedProto::TwoBit, true, false, NetKind::Ideal, 2},
        TimedParam{TimedProto::TwoBit, false, true, NetKind::Ideal, 3},
        TimedParam{TimedProto::TwoBit, true, true, NetKind::Ideal, 3},
        TimedParam{TimedProto::TwoBit, true, false, NetKind::Crossbar,
                   4},
        TimedParam{TimedProto::TwoBit, false, false, NetKind::Crossbar,
                   4},
        TimedParam{TimedProto::TwoBit, true, false, NetKind::Bus, 6},
        TimedParam{TimedProto::TwoBit, false, false, NetKind::Bus, 6},
        TimedParam{TimedProto::FullMap, false, false, NetKind::Ideal,
                   1},
        TimedParam{TimedProto::FullMap, false, false, NetKind::Ideal,
                   2},
        TimedParam{TimedProto::FullMap, true, false, NetKind::Ideal, 1},
        TimedParam{TimedProto::FullMap, true, false, NetKind::Ideal, 2},
        TimedParam{TimedProto::FullMap, true, false, NetKind::Crossbar,
                   4},
        TimedParam{TimedProto::FullMap, true, false, NetKind::Bus, 6},
        TimedParam{TimedProto::FullMap, false, true, NetKind::Ideal,
                   5}),
    [](const ::testing::TestParamInfo<TimedParam> &info) {
        const auto &p = info.param;
        std::string name =
            p.proto == TimedProto::FullMap ? "fm_" : "twobit_";
        name += p.perBlock ? "perblock" : "serial";
        if (p.snoop)
            name += "_snoop";
        if (p.net == NetKind::Crossbar)
            name += "_xbar";
        else if (p.net == NetKind::Bus)
            name += "_bus";
        name += "_s" + std::to_string(p.seed);
        return name;
    });

TEST(TimedFullMap, DirectedCommandsOnly)
{
    TimedConfig cfg = config(4);
    cfg.protocol = TimedProto::FullMap;
    TimedSystem sys(cfg);
    SyntheticConfig scfg;
    scfg.numProcs = 4;
    scfg.q = 0.3;
    scfg.w = 0.4;
    scfg.sharedBlocks = 8;
    scfg.privateBlocks = 16;
    scfg.hotBlocks = 8;
    scfg.seed = 21;
    SyntheticStream stream(scfg);
    auto src = [&stream](ProcId p) -> std::optional<MemRef> {
        return stream.nextFor(p);
    };
    const auto r = sys.run(src, 1500);
    EXPECT_EQ(r.refsCompleted, 6000u);
    // No broadcast ever leaves a full-map controller.
    EXPECT_EQ(r.broadcasts, 0u);
    std::uint64_t directed = 0;
    std::uint64_t purges = 0;
    for (ModuleId m = 0; m < cfg.numModules; ++m) {
        directed += sys.dirCtrl(m).stats().directedInvs.value();
        purges += sys.dirCtrl(m).stats().purges.value();
    }
    EXPECT_GT(directed + purges, 0u);
}

TEST(TimedFullMap, LessTrafficThanTwoBitUnderSharing)
{
    auto run = [](TimedProto proto) {
        TimedConfig cfg = config(8);
        cfg.protocol = proto;
        TimedSystem sys(cfg);
        SyntheticConfig scfg;
        scfg.numProcs = 8;
        scfg.q = 0.2;
        scfg.w = 0.4;
        scfg.sharedBlocks = 8;
        scfg.privateBlocks = 16;
        scfg.hotBlocks = 8;
        scfg.seed = 22;
        SyntheticStream stream(scfg);
        auto src = [&stream](ProcId p) -> std::optional<MemRef> {
            return stream.nextFor(p);
        };
        return sys.run(src, 1500);
    };
    const auto tb = run(TimedProto::TwoBit);
    const auto fm = run(TimedProto::FullMap);
    // Identical workload: the broadcast scheme moves strictly more
    // messages and steals more cache cycles.
    EXPECT_GT(tb.netMessages, fm.netMessages);
    EXPECT_GT(tb.stolenCycles, fm.stolenCycles);
}

TEST(TimedSystem, StatsDumpCoversEveryComponent)
{
    TimedConfig cfg = config(3);
    TimedSystem sys(cfg);
    SyntheticConfig scfg;
    scfg.numProcs = 3;
    scfg.q = 0.2;
    scfg.w = 0.4;
    scfg.seed = 12;
    SyntheticStream stream(scfg);
    auto src = [&stream](ProcId p) -> std::optional<MemRef> {
        return stream.nextFor(p);
    };
    sys.run(src, 500);

    std::ostringstream os;
    sys.dumpStats(os);
    const std::string out = os.str();
    for (const char *want :
         {"cache0.read_hits", "cache1.stolen_cycles",
          "cache2.latency", "ctrl0.requests", "ctrl1.broad_invs",
          "ctrl0.queue_depth"}) {
        EXPECT_NE(out.find(want), std::string::npos) << want;
    }
}

TEST(TimedOracle, DetectsFabricatedValue)
{
    TimedOracle o;
    o.onWriteComplete(0, 10, 111);
    EXPECT_DEATH(o.onReadComplete(1, 10, 222), "never written");
}

TEST(TimedOracle, DetectsBackwardsTimeTravel)
{
    TimedOracle o;
    o.onWriteComplete(0, 10, 111);
    o.onWriteComplete(0, 10, 222);
    o.onReadComplete(1, 10, 222);
    // Having seen version 2, processor 1 may not observe version 1.
    EXPECT_DEATH(o.onReadComplete(1, 10, 111), "coherence violation");
}

TEST(TimedOracle, AllowsStaleReadBeforeObservingNewWrite)
{
    // The ack-free window: a processor that has not yet seen the new
    // version may still legally read the old one.
    TimedOracle o;
    o.onReadComplete(1, 10, initialValue(10));
    o.onWriteComplete(0, 10, 111);
    o.onReadComplete(1, 10, initialValue(10)); // stale but legal
    o.onReadComplete(1, 10, 111);
}

TEST(TimedOracle, FinalCheckCatchesLostWrite)
{
    TimedOracle o;
    o.onWriteComplete(0, 10, 111);
    o.onWriteComplete(1, 10, 222);
    EXPECT_DEATH(o.checkFinal(10, 111), "conservation violation");
    o.checkFinal(10, 222);
}

} // namespace
} // namespace dir2b
