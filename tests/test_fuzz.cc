/**
 * @file
 * Differential fuzzer, shrinker, and seed-file tests (ctest label:
 * fuzz_smoke).
 *
 * Three layers:
 *  - clean campaigns: every functional scheme plus the timed tier
 *    agree on seeded random traces, independent of worker-pool width;
 *  - the planted-mutation acceptance test: a two-bit variant with a
 *    known bug (it corrupts the data returned when ownership of a
 *    PresentM block transfers on a read miss) must be caught by the
 *    campaign, shrunk to a 1-minimal trace, archived as a seed file,
 *    and still fail when the seed is replayed;
 *  - ddmin unit tests on synthetic predicates, pinning 1-minimality
 *    and the attempt budget without any protocol in the loop.
 */

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/differ.hh"
#include "check/shrink.hh"
#include "core/two_bit_protocol.hh"
#include "proto/protocol_factory.hh"

namespace dir2b
{
namespace
{

// ---------------------------------------------------------------------
// Clean campaigns.

TEST(Fuzz, CleanCampaignFindsNothing)
{
    FuzzConfig fc;
    fc.numSeeds = 4;
    fc.refsPerSeed = 600;
    const FuzzResult r = fuzzMany(fc);
    EXPECT_EQ(r.seedsRun, 4u);
    EXPECT_EQ(r.refsReplayed, 4u * 600u);
    EXPECT_TRUE(r.failures.empty())
        << r.failures.front().failure.protocol << ": "
        << r.failures.front().failure.detail;
}

TEST(Fuzz, CampaignWithTimedTierFindsNothing)
{
    FuzzConfig fc;
    fc.numSeeds = 2;
    fc.refsPerSeed = 400;
    fc.diff.withTimed = true;
    const FuzzResult r = fuzzMany(fc);
    EXPECT_TRUE(r.failures.empty())
        << r.failures.front().failure.kind << ": "
        << r.failures.front().failure.detail;
}

TEST(Fuzz, VerdictIndependentOfThreadCount)
{
    FuzzConfig fc;
    fc.numSeeds = 3;
    fc.refsPerSeed = 300;
    const FuzzResult serial = fuzzMany(fc, 1);
    const FuzzResult wide = fuzzMany(fc, 4);
    EXPECT_EQ(serial.failures.size(), wide.failures.size());
    EXPECT_EQ(serial.refsReplayed, wide.refsReplayed);
}

TEST(Fuzz, TracesAreDeterministicPerIndex)
{
    FuzzConfig fc;
    fc.refsPerSeed = 200;
    const auto a = fuzzTrace(fc, 3);
    const auto b = fuzzTrace(fc, 3);
    const auto c = fuzzTrace(fc, 4);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    EXPECT_FALSE(c.size() == a.size() &&
                 std::equal(a.begin(), a.end(), c.begin()));
}

// ---------------------------------------------------------------------
// The planted mutation.

/**
 * A two-bit scheme with a deliberate, deterministic bug: when a read
 * miss transfers ownership of a PresentM block, the data handed to
 * the requester is corrupted (the structural protocol actions —
 * write-back, SETSTATE, invalidations — all still happen).  This
 * models a lost-update bug on the §3.2.2 case-3 path and is exactly
 * the class of error the differential fuzzer exists to catch; it
 * never trips the scheme's own internal assertions, so the failure
 * always comes back as data.
 */
class LossyQueryTwoBit : public TwoBitProtocol
{
  public:
    explicit LossyQueryTwoBit(const ProtoConfig &cfg)
        : TwoBitProtocol("two_bit", cfg)
    {}

  protected:
    Value
    sendRemoteQuery(Addr a, ProcId requester, RW rw) override
    {
        const Value v =
            TwoBitProtocol::sendRemoteQuery(a, requester, rw);
        // Reads get a corrupted word; write misses overwrite the
        // whole block anyway, so only the read path misbehaves.
        return rw == RW::Read ? v ^ 0x1 : v;
    }
};

ProtocolMaker
lossyMaker()
{
    return [](const std::string &name, const ProtoConfig &cfg)
               -> std::unique_ptr<Protocol> {
        if (name == "two_bit")
            return std::make_unique<LossyQueryTwoBit>(cfg);
        return makeProtocol(name, cfg);
    };
}

DiffConfig
lossyDiffConfig()
{
    DiffConfig cfg;
    // The healthy full_map runs alongside as the differential witness.
    cfg.protocols = {"two_bit", "full_map"};
    cfg.numProcs = 3;
    // The mutation corrupts values, never structure, so the native
    // invariant suite stays quiet either way; disabled here because a
    // replay of a known-broken scheme must never abort.
    cfg.nativeInvariants = false;
    return cfg;
}

TEST(PlantedMutation, DirectedTraceIsCaught)
{
    // P1 takes ownership, P0's read miss hits the lossy query path.
    const std::vector<MemRef> trace = {
        {1, sharedRegionBase, true},
        {0, sharedRegionBase, false},
    };
    const auto verdict = diffTrace(lossyDiffConfig(), trace,
                                   lossyMaker());
    ASSERT_TRUE(verdict.has_value());
    EXPECT_EQ(verdict->protocol, "two_bit");
    EXPECT_EQ(verdict->kind, "stale-read");
    EXPECT_EQ(verdict->step, 1u);

    // The identical trace through the real schemes is clean.
    EXPECT_FALSE(
        diffTrace(lossyDiffConfig(), trace).has_value());
}

/** The full acceptance pipeline: fuzz -> catch -> shrink -> archive
 *  -> replay. */
TEST(PlantedMutation, CampaignCatchesShrinksAndReplays)
{
    FuzzConfig fc;
    fc.diff = lossyDiffConfig();
    fc.numSeeds = 4;
    fc.refsPerSeed = 500;
    // Contended shape: shared reads after shared writes are common,
    // so the lossy ownership transfer fires in every seed.
    fc.q = 0.5;
    fc.w = 0.5;
    fc.sharedBlocks = 4;

    const FuzzResult r = fuzzMany(fc, 0, lossyMaker());
    ASSERT_FALSE(r.failures.empty());
    const FuzzFailure &f = r.failures.front();
    EXPECT_EQ(f.failure.protocol, "two_bit");
    ASSERT_FALSE(f.trace.empty());

    // Shrink under the same verdict function the fuzzer used.
    const auto fails = [&](const std::vector<MemRef> &t) {
        return diffTrace(fc.diff, t, lossyMaker()).has_value();
    };
    ShrinkStats stats;
    const auto minimal = shrinkTrace(f.trace, fails, 100000, &stats);
    EXPECT_EQ(stats.initialSize, f.trace.size());
    EXPECT_EQ(stats.finalSize, minimal.size());
    EXPECT_GT(stats.attempts, 0u);

    // The bug needs one writer (PresentM) and one remote reader: the
    // minimal reproducer is two references.
    ASSERT_FALSE(minimal.empty());
    EXPECT_TRUE(fails(minimal));
    EXPECT_LE(minimal.size(), 3u);

    // 1-minimality: removing any single reference loses the failure.
    for (std::size_t i = 0; i < minimal.size(); ++i) {
        std::vector<MemRef> sub = minimal;
        sub.erase(sub.begin() + static_cast<std::ptrdiff_t>(i));
        EXPECT_FALSE(fails(sub)) << "redundant reference " << i;
    }

    // Archive as a seed file and read it back.
    const std::string path =
        ::testing::TempDir() + "planted_mutation.seed";
    const ReplaySeed seed = makeSeed(fc.diff, minimal);
    writeSeedFile(path, seed);
    const ReplaySeed back = readSeedFile(path);
    EXPECT_EQ(back.numProcs, seed.numProcs);
    EXPECT_EQ(back.numModules, seed.numModules);
    EXPECT_EQ(back.sets, seed.sets);
    EXPECT_EQ(back.ways, seed.ways);
    EXPECT_EQ(back.protocols, seed.protocols);
    ASSERT_EQ(back.trace.size(), minimal.size());
    for (std::size_t i = 0; i < minimal.size(); ++i)
        EXPECT_EQ(back.trace[i], minimal[i]);

    // The replayed seed still reproduces the failure against the
    // broken scheme...
    DiffConfig replayCfg = fc.diff;
    EXPECT_TRUE(
        diffTrace(replayCfg, back.trace, lossyMaker()).has_value());
    // ...and is clean against the real schemes (the bug is in the
    // mutant, not the trace).
    EXPECT_FALSE(replaySeed(back).has_value());
}

TEST(SeedFile, DefaultSchemeListRoundTrips)
{
    // An empty scheme list ("check everything") must survive the
    // file format via the explicit `protocols default` sentinel.
    ReplaySeed seed;
    seed.numProcs = 4;
    seed.trace = {{0, 1, true}, {3, 1, false}};
    const std::string path =
        ::testing::TempDir() + "default_protocols.seed";
    writeSeedFile(path, seed);
    const ReplaySeed back = readSeedFile(path);
    EXPECT_TRUE(back.protocols.empty());
    EXPECT_EQ(back.numProcs, 4u);
    ASSERT_EQ(back.trace.size(), 2u);
    EXPECT_EQ(back.trace[1], seed.trace[1]);
}

// ---------------------------------------------------------------------
// ddmin in isolation.

MemRef
ref(ProcId p, Addr a, bool w)
{
    return {p, a, w};
}

TEST(Shrink, KeepsExactlyTheFailureCore)
{
    // Fails iff the trace contains both the write and the read of
    // block 42, in that order.
    const auto fails = [](const std::vector<MemRef> &t) {
        bool wrote = false;
        for (const MemRef &r : t) {
            if (r.addr == 42 && r.write)
                wrote = true;
            if (r.addr == 42 && !r.write && wrote)
                return true;
        }
        return false;
    };

    std::vector<MemRef> noisy;
    for (Addr a = 0; a < 20; ++a)
        noisy.push_back(ref(0, a, false));
    noisy.push_back(ref(1, 42, true));
    for (Addr a = 20; a < 40; ++a)
        noisy.push_back(ref(2, a, true));
    noisy.push_back(ref(0, 42, false));
    for (Addr a = 40; a < 50; ++a)
        noisy.push_back(ref(1, a, false));

    const auto minimal = shrinkTrace(noisy, fails);
    ASSERT_EQ(minimal.size(), 2u);
    EXPECT_EQ(minimal[0], ref(1, 42, true));
    EXPECT_EQ(minimal[1], ref(0, 42, false));
}

TEST(Shrink, AlreadyMinimalIsUntouched)
{
    const std::vector<MemRef> t = {ref(0, 1, true)};
    const auto fails = [](const std::vector<MemRef> &x) {
        return !x.empty();
    };
    const auto minimal = shrinkTrace(t, fails);
    ASSERT_EQ(minimal.size(), 1u);
    EXPECT_EQ(minimal[0], t[0]);
}

TEST(Shrink, BudgetBoundsAttempts)
{
    std::vector<MemRef> big;
    for (Addr a = 0; a < 400; ++a)
        big.push_back(ref(0, a, false));
    const auto fails = [](const std::vector<MemRef> &t) {
        // Only the full prefix structure fails: every element matters.
        return t.size() >= 2 && t.front().addr == 0;
    };
    ShrinkStats stats;
    const auto minimal = shrinkTrace(big, fails, 25, &stats);
    EXPECT_LE(stats.attempts, 25u);
    EXPECT_TRUE(fails(minimal));
}

TEST(Shrink, ResultIsOneMinimalOnParityPredicate)
{
    // Fails iff it contains an even number (>= 2) of writes; many
    // subsets fail, so this stresses the fixpoint loop.
    const auto fails = [](const std::vector<MemRef> &t) {
        std::size_t w = 0;
        for (const MemRef &r : t)
            w += r.write;
        return w >= 2 && w % 2 == 0;
    };
    std::vector<MemRef> t;
    for (Addr a = 0; a < 30; ++a)
        t.push_back(ref(0, a, a % 3 != 2));
    ASSERT_TRUE(fails(t));
    const auto minimal = shrinkTrace(t, fails);
    EXPECT_TRUE(fails(minimal));
    for (std::size_t i = 0; i < minimal.size(); ++i) {
        std::vector<MemRef> sub = minimal;
        sub.erase(sub.begin() + static_cast<std::ptrdiff_t>(i));
        EXPECT_FALSE(fails(sub)) << i;
    }
}

} // namespace
} // namespace dir2b
