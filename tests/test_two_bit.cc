/**
 * @file
 * Directed tests of the two-bit directory protocol: every case of
 * §3.2 (replacement, read miss, write miss, write hit on unmodified
 * block) with its exact state transition and broadcast-overhead
 * accounting from §4.2.
 */

#include <gtest/gtest.h>

#include "core/two_bit_protocol.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace dir2b
{
namespace
{

ProtoConfig
config(ProcId n = 4, std::size_t sets = 64, std::size_t ways = 4)
{
    ProtoConfig cfg;
    cfg.numProcs = n;
    cfg.cacheGeom.sets = sets;
    cfg.cacheGeom.ways = ways;
    cfg.numModules = 2;
    return cfg;
}

TEST(TwoBit, ReadMissAbsentBecomesPresent1)
{
    TwoBitProtocol p(config());
    const Addr a = 100;
    const Value v = p.access(0, a, false);
    EXPECT_EQ(v, initialValue(a));
    EXPECT_EQ(p.globalState(a), GlobalState::Present1);
    EXPECT_EQ(p.lastDelta().memReads, 1u);
    EXPECT_EQ(p.lastDelta().broadcasts, 0u);
    EXPECT_EQ(p.lastDelta().uselessCmds, 0u);
}

TEST(TwoBit, SecondReaderMakesPresentStar)
{
    TwoBitProtocol p(config());
    const Addr a = 100;
    p.access(0, a, false);
    p.access(1, a, false);
    EXPECT_EQ(p.globalState(a), GlobalState::PresentStar);
    EXPECT_EQ(p.lastDelta().broadcasts, 0u);
    EXPECT_EQ(p.holders(a).size(), 2u);
}

TEST(TwoBit, ReadHitIsLocal)
{
    TwoBitProtocol p(config());
    const Addr a = 7;
    p.access(0, a, false);
    const AccessCounts before = p.counts();
    p.access(0, a, false);
    const AccessCounts d = p.counts() - before;
    EXPECT_EQ(d.readHits, 1u);
    EXPECT_EQ(d.netMessages, 0u);
    EXPECT_EQ(d.requests, 0u);
}

TEST(TwoBit, WriteMissAbsentBecomesPresentM)
{
    TwoBitProtocol p(config());
    const Addr a = 200;
    p.access(0, a, true, 555);
    EXPECT_EQ(p.globalState(a), GlobalState::PresentM);
    EXPECT_EQ(p.lastDelta().broadcasts, 0u);
    EXPECT_EQ(p.lastDelta().uselessCmds, 0u);
    EXPECT_EQ(p.access(0, a, false), 555u);
}

TEST(TwoBit, ReadMissOnPresentMQueriesOwner)
{
    const ProcId n = 4;
    TwoBitProtocol p(config(n));
    const Addr a = 300;
    p.access(0, a, true, 111); // PresentM at cache 0
    p.access(1, a, false);     // read miss from cache 1

    // §3.2.2 case 2: BROADQUERY to all n-1 caches, one useful (owner),
    // n-2 useless; owner writes back and keeps a clean copy.
    const AccessCounts &d = p.lastDelta();
    EXPECT_EQ(d.broadcasts, 1u);
    EXPECT_EQ(d.broadcastCmds, n - 1u);
    EXPECT_EQ(d.uselessCmds, n - 2u);
    EXPECT_EQ(d.writebacks, 1u);
    EXPECT_EQ(d.purges, 1u);
    EXPECT_EQ(p.globalState(a), GlobalState::PresentStar);
    EXPECT_EQ(p.holders(a).size(), 2u);
    // The read must observe the modified data.
    EXPECT_EQ(p.access(1, a, false), 111u);
    // Memory was brought current by the write-back.
    EXPECT_EQ(p.memValue(a), 111u);
}

TEST(TwoBit, WriteMissOnPresent1Broadcasts)
{
    const ProcId n = 4;
    TwoBitProtocol p(config(n));
    const Addr a = 10;
    p.access(0, a, false); // Present1 at cache 0
    p.access(1, a, true, 9);

    // §3.2.3 case 2 with Present1: n-1 commands, one useful -> n-2.
    const AccessCounts &d = p.lastDelta();
    EXPECT_EQ(d.broadcasts, 1u);
    EXPECT_EQ(d.broadcastCmds, n - 1u);
    EXPECT_EQ(d.uselessCmds, n - 2u);
    EXPECT_EQ(d.invalidations, 1u);
    EXPECT_EQ(p.globalState(a), GlobalState::PresentM);
    EXPECT_EQ(p.holders(a), std::vector<ProcId>{1});
}

TEST(TwoBit, WriteMissOnPresentStarCountsActualHolders)
{
    const ProcId n = 8;
    TwoBitProtocol p(config(n));
    const Addr a = 11;
    p.access(0, a, false);
    p.access(1, a, false);
    p.access(2, a, false); // three holders, Present*
    p.access(3, a, true, 1);

    const AccessCounts &d = p.lastDelta();
    EXPECT_EQ(d.broadcastCmds, n - 1u);
    EXPECT_EQ(d.invalidations, 3u);
    EXPECT_EQ(d.uselessCmds, n - 1u - 3u);
    EXPECT_EQ(p.globalState(a), GlobalState::PresentM);
}

TEST(TwoBit, WriteMissOnPresentMPurgesOwner)
{
    const ProcId n = 4;
    TwoBitProtocol p(config(n));
    const Addr a = 12;
    p.access(0, a, true, 77);
    p.access(1, a, true, 88);

    const AccessCounts &d = p.lastDelta();
    EXPECT_EQ(d.broadcasts, 1u);
    EXPECT_EQ(d.uselessCmds, n - 2u);
    EXPECT_EQ(d.writebacks, 1u);
    EXPECT_EQ(d.invalidations, 1u);
    EXPECT_EQ(p.globalState(a), GlobalState::PresentM);
    EXPECT_EQ(p.holders(a), std::vector<ProcId>{1});
    EXPECT_EQ(p.access(1, a, false), 88u);
}

TEST(TwoBit, WriteHitOnPresent1GrantsWithoutBroadcast)
{
    TwoBitProtocol p(config());
    const Addr a = 13;
    p.access(0, a, false); // Present1
    p.access(0, a, true, 5);

    // §3.2.4 case 1: MGRANTED(k,true), no broadcast at all — the
    // payoff for encoding Present1 separately.
    const AccessCounts &d = p.lastDelta();
    EXPECT_EQ(d.mrequests, 1u);
    EXPECT_EQ(d.broadcasts, 0u);
    EXPECT_EQ(d.uselessCmds, 0u);
    EXPECT_EQ(p.globalState(a), GlobalState::PresentM);
}

TEST(TwoBit, WriteHitOnPresentStarBroadcasts)
{
    const ProcId n = 4;
    TwoBitProtocol p(config(n));
    const Addr a = 14;
    p.access(0, a, false);
    p.access(1, a, false); // Present*, two holders
    p.access(0, a, true, 5);

    // §3.2.4 case 2: broadcast reaches n-1 caches; the other holder is
    // useful; n - holders are useless.
    const AccessCounts &d = p.lastDelta();
    EXPECT_EQ(d.mrequests, 1u);
    EXPECT_EQ(d.broadcasts, 1u);
    EXPECT_EQ(d.broadcastCmds, n - 1u);
    EXPECT_EQ(d.invalidations, 1u);
    EXPECT_EQ(d.uselessCmds, n - 2u);
    EXPECT_EQ(p.globalState(a), GlobalState::PresentM);
    EXPECT_EQ(p.holders(a), std::vector<ProcId>{0});
}

TEST(TwoBit, WriteHitOnModifiedIsPurelyLocal)
{
    TwoBitProtocol p(config());
    const Addr a = 15;
    p.access(0, a, true, 1);
    const AccessCounts before = p.counts();
    p.access(0, a, true, 2);
    const AccessCounts d = p.counts() - before;
    EXPECT_EQ(d.netMessages, 0u);
    EXPECT_EQ(d.writeHits, 1u);
    EXPECT_EQ(p.access(0, a, false), 2u);
}

TEST(TwoBit, CleanEjectOfPresent1ReclaimsAbsent)
{
    // 1-set, 1-way cache: the second fill evicts the first.
    TwoBitProtocol p(config(4, 1, 1));
    const Addr a = 20;
    const Addr b = 21;
    p.access(0, a, false);
    EXPECT_EQ(p.globalState(a), GlobalState::Present1);
    p.access(0, b, false); // evicts a
    EXPECT_EQ(p.globalState(a), GlobalState::Absent);
    EXPECT_EQ(p.holders(a).size(), 0u);
}

TEST(TwoBit, CleanEjectFromPresentStarStaysStar)
{
    TwoBitProtocol p(config(4, 1, 1));
    const Addr a = 20;
    const Addr b = 21;
    p.access(0, a, false);
    p.access(1, a, false); // Present*
    p.access(0, b, false); // cache 0 ejects a
    p.access(1, b, false); // cache 1 ejects a too
    // The anomaly of §3.1: zero cached copies, state still Present*.
    EXPECT_EQ(p.globalState(a), GlobalState::PresentStar);
    EXPECT_EQ(p.holders(a).size(), 0u);

    // A later write miss must now broadcast to everyone uselessly
    // (the n-1 worst case of T_WM).
    p.access(2, a, true, 3);
    EXPECT_EQ(p.lastDelta().uselessCmds, 3u);
    EXPECT_EQ(p.lastDelta().invalidations, 0u);
}

TEST(TwoBit, DirtyEjectWritesBackAndReclaims)
{
    TwoBitProtocol p(config(4, 1, 1));
    const Addr a = 20;
    const Addr b = 21;
    p.access(0, a, true, 99);
    p.access(0, b, false); // evicts dirty a
    EXPECT_EQ(p.lastDelta().writebacks, 1u);
    EXPECT_EQ(p.globalState(a), GlobalState::Absent);
    EXPECT_EQ(p.memValue(a), 99u);
    // The value survives the round trip through memory.
    EXPECT_EQ(p.access(1, a, false), 99u);
}

TEST(TwoBit, DirectoryCostIsTwoBitsIndependentOfN)
{
    TwoBitProtocol p4(config(4));
    TwoBitProtocol p64(config(64));
    EXPECT_EQ(p4.directoryBitsPerBlock(), 2u);
    EXPECT_EQ(p64.directoryBitsPerBlock(), 2u);
}

TEST(TwoBit, InvariantsHoldAfterMixedSequence)
{
    TwoBitProtocol p(config(4, 2, 2));
    const Addr addrs[] = {1, 2, 3, 4, 5, 6, 7, 8};
    int i = 0;
    for (Addr a : addrs) {
        p.access(static_cast<ProcId>(i % 4), a, i % 3 == 0, 1000u + i);
        p.checkInvariants();
        ++i;
    }
}

TEST(TwoBitAblation, NoPresent1FoldsIntoPresentStar)
{
    ProtoConfig cfg = config();
    cfg.noPresent1 = true;
    TwoBitProtocol p("two_bit_nop1", cfg);
    const Addr a = 50;
    p.access(0, a, false);
    // First reader lands in Present* directly.
    EXPECT_EQ(p.globalState(a), GlobalState::PresentStar);
    // A write hit on the sole copy now needs a broadcast (no free
    // MGRANTED) — the cost the paper's Present1 encoding avoids.
    p.access(0, a, true, 1);
    EXPECT_EQ(p.lastDelta().broadcasts, 1u);
    EXPECT_EQ(p.lastDelta().uselessCmds, 3u);
    p.checkInvariants();
}

TEST(TwoBitAblation, NoPresent1NeverReclaimsOnCleanEject)
{
    ProtoConfig cfg = config(4, 1, 1);
    cfg.noPresent1 = true;
    TwoBitProtocol p("two_bit_nop1", cfg);
    const Addr a = 20;
    p.access(0, a, false);
    p.access(0, 21, false); // evicts a
    // Present* cannot count down to Absent.
    EXPECT_EQ(p.globalState(a), GlobalState::PresentStar);
}

TEST(TwoBitAblation, MoreBroadcastsThanBaseline)
{
    auto run = [](bool ablated) {
        ProtoConfig cfg = config(8, 8, 2);
        cfg.noPresent1 = ablated;
        TwoBitProtocol p(ablated ? "two_bit_nop1" : "two_bit", cfg);
        Rng rng(3);
        for (int i = 0; i < 5000; ++i) {
            p.access(static_cast<ProcId>(rng.range(8)),
                     rng.range(32), rng.chance(0.3), 1000u + i);
        }
        return p.counts().broadcasts;
    };
    EXPECT_GT(run(true), run(false));
}

TEST(TwoBitDirectory, PackedStorageRoundTrips)
{
    TwoBitDirectory dir;
    EXPECT_EQ(dir.get(12345), GlobalState::Absent);
    dir.set(12345, GlobalState::PresentM);
    dir.set(12346, GlobalState::Present1);
    dir.set(12347, GlobalState::PresentStar);
    EXPECT_EQ(dir.get(12345), GlobalState::PresentM);
    EXPECT_EQ(dir.get(12346), GlobalState::Present1);
    EXPECT_EQ(dir.get(12347), GlobalState::PresentStar);
    dir.set(12345, GlobalState::Absent);
    EXPECT_EQ(dir.get(12345), GlobalState::Absent);
    EXPECT_EQ(dir.setstateCount(), 4u);
}

TEST(TwoBitDirectory, NeighbouringBlocksDoNotInterfere)
{
    TwoBitDirectory dir;
    for (Addr a = 0; a < 256; ++a)
        dir.set(a, static_cast<GlobalState>(a % 4));
    for (Addr a = 0; a < 256; ++a)
        EXPECT_EQ(dir.get(a), static_cast<GlobalState>(a % 4));
}

} // namespace
} // namespace dir2b
