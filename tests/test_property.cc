/**
 * @file
 * Property tests: every protocol of the spectrum, driven by every
 * workload class over multiple seeds, must satisfy
 *
 *  1. the paper's coherence definition (§1): every read returns the
 *     most recently written value (checked by the oracle on every
 *     single read);
 *  2. its own structural invariants (directory/cache agreement),
 *     checked periodically;
 *  3. protocol-specific global properties (full-map never useless,
 *     two-bit broadcast arithmetic, write-through memory currency).
 *
 * Small caches are used deliberately so replacement traffic (EJECTs,
 * the Present* decay anomaly) is constantly exercised.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "proto/protocol_factory.hh"
#include "system/func_system.hh"
#include "trace/synthetic.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

namespace dir2b
{
namespace
{

std::unique_ptr<RefStream>
makeWorkload(const std::string &name, ProcId procs, std::uint64_t seed)
{
    if (name.rfind("synthetic_", 0) == 0) {
        SyntheticConfig cfg;
        cfg.numProcs = procs;
        cfg.seed = seed;
        cfg.privateBlocks = 48;
        cfg.hotBlocks = 12;
        if (name == "synthetic_low") {
            cfg.q = 0.01;
            cfg.w = 0.2;
        } else if (name == "synthetic_moderate") {
            cfg.q = 0.05;
            cfg.w = 0.2;
        } else {
            cfg.q = 0.10;
            cfg.w = 0.4;
        }
        return std::make_unique<SyntheticStream>(cfg);
    }

    WorkloadConfig cfg;
    cfg.numProcs = procs;
    cfg.seed = seed;
    cfg.privateBlocks = 24;
    cfg.privateFraction = 0.6;
    if (name == "producer_consumer")
        return std::make_unique<ProducerConsumerWorkload>(cfg);
    if (name == "migratory")
        return std::make_unique<MigratoryWorkload>(cfg);
    if (name == "lock")
        return std::make_unique<LockContentionWorkload>(cfg);
    if (name == "read_mostly")
        return std::make_unique<ReadMostlyWorkload>(cfg);
    if (name == "task_migration")
        return std::make_unique<TaskMigrationWorkload>(cfg, 500);
    ADD_FAILURE() << "unknown workload " << name;
    return nullptr;
}

using Param = std::tuple<std::string, std::string, std::uint64_t>;

class ProtocolProperty : public ::testing::TestWithParam<Param>
{
};

TEST_P(ProtocolProperty, CoherentUnderWorkload)
{
    const auto &[protoName, workloadName, seed] = GetParam();

    // The software scheme's classification contract cannot express
    // task migration (private data touched from two processors).
    if (protoName == "software" && workloadName == "task_migration")
        GTEST_SKIP() << "software scheme forbids task migration";

    ProtoConfig cfg;
    cfg.numProcs = 4;
    cfg.cacheGeom.sets = 8;
    cfg.cacheGeom.ways = 2;
    cfg.cacheGeom.seed = seed;
    cfg.numModules = 3;
    cfg.tbCapacity = 16;
    cfg.biasCapacity = 8;
    cfg.nonCacheableBase = sharedRegionBase;

    auto proto = makeProtocol(protoName, cfg);
    auto stream = makeWorkload(workloadName, cfg.numProcs, seed);
    ASSERT_NE(stream, nullptr);

    RunOptions opts;
    opts.numRefs = 10000;
    opts.checkCoherence = true;
    opts.invariantEvery = 64;

    const RunResult r = runFunctional(*proto, *stream, opts);

    // Bookkeeping identities that hold for every protocol.
    EXPECT_EQ(r.counts.refs(), opts.numRefs);
    EXPECT_EQ(r.counts.reads,
              r.counts.readHits + r.counts.readMisses);
    EXPECT_EQ(r.counts.writes,
              r.counts.writeHits + r.counts.writeMisses);
    EXPECT_LE(r.counts.uselessCmds, r.counts.broadcastCmds);

    // Directed schemes never send a useless command.
    if (protoName == "full_map" || protoName == "full_map_local" ||
        protoName == "dup_dir" || protoName == "software") {
        EXPECT_EQ(r.counts.uselessCmds, 0u);
        EXPECT_EQ(r.counts.broadcasts, 0u);
    }

    // Broadcast arithmetic: every two-bit broadcast reaches exactly
    // n-1 caches.
    if (protoName == "two_bit") {
        EXPECT_EQ(r.counts.broadcastCmds,
                  r.counts.broadcasts * (cfg.numProcs - 1));
    }

    proto->checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Spectrum, ProtocolProperty,
    ::testing::Combine(
        ::testing::Values("two_bit", "two_bit_tb", "two_bit_wt",
                          "full_map", "full_map_local", "dup_dir",
                          "classical", "write_once", "illinois",
                          "software"),
        ::testing::Values("synthetic_low", "synthetic_moderate",
                          "synthetic_high", "producer_consumer",
                          "migratory", "lock", "read_mostly",
                          "task_migration"),
        ::testing::Values(1u, 2u)),
    [](const ::testing::TestParamInfo<Param> &info) {
        return std::get<0>(info.param) + "_" + std::get<1>(info.param) +
               "_s" + std::to_string(std::get<2>(info.param));
    });

/**
 * Replaying one identical recorded trace through every protocol must
 * leave logically identical memory contents: for every block, the
 * "current value" (memory, or the unique dirty copy) agrees across
 * schemes.
 */
TEST(CrossProtocol, IdenticalTraceSameFinalValues)
{
    SyntheticConfig scfg;
    scfg.numProcs = 4;
    scfg.q = 0.2;
    scfg.w = 0.4;
    scfg.sharedBlocks = 8;
    scfg.privateBlocks = 24;
    scfg.hotBlocks = 8;
    scfg.seed = 123;
    SyntheticStream src(scfg);
    const auto trace = recordStream(src, 5000);

    ProtoConfig cfg;
    cfg.numProcs = 4;
    cfg.cacheGeom.sets = 8;
    cfg.cacheGeom.ways = 2;
    cfg.numModules = 2;
    cfg.tbCapacity = 16;
    cfg.nonCacheableBase = sharedRegionBase;

    // The oracle *is* the cross-protocol referee: runFunctional checks
    // every read of every protocol against the same last-write shadow,
    // so agreement with the oracle implies pairwise agreement.
    for (const auto &name : protocolNames()) {
        auto proto = makeProtocol(name, cfg);
        VectorStream replay(trace);
        RunOptions opts;
        opts.numRefs = trace.size();
        opts.invariantEvery = 256;
        runFunctional(*proto, replay, opts);
    }
}

} // namespace
} // namespace dir2b
