/**
 * @file
 * Unit tests for the observability subsystem (src/obs): the ring
 * recorder, the Chrome trace exporter + dir2b.trace validator, the
 * LogLevel::Debug routing, and the tentpole guarantee — attaching a
 * recorder never changes simulation results (golden digests are
 * bit-identical with tracing on or off).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/chrome_trace.hh"
#include "obs/trace_recorder.hh"
#include "report/report.hh"
#include "timed/timed_system.hh"
#include "trace/synthetic.hh"
#include "util/logging.hh"

#ifndef DIR2B_FIXTURES
#define DIR2B_FIXTURES "tests/fixtures"
#endif

namespace dir2b
{
namespace
{

// ---------------------------------------------------------------------
// Recorder core.
// ---------------------------------------------------------------------

TEST(TraceRecorder, RecordsInstantsAndCounters)
{
    TraceRecorder rec(16);
    const auto trk = rec.addTrack("t0");
    rec.instant(5, trk, "hello", 42, 1, 2);
    rec.counter(6, trk, "depth", 3);
    ASSERT_EQ(rec.size(), 2u);
    const auto &a = rec.at(0);
    EXPECT_EQ(a.start, 5u);
    EXPECT_STREQ(a.name, "hello");
    EXPECT_EQ(a.addr, 42u);
    EXPECT_EQ(a.arg0, 1u);
    EXPECT_EQ(a.arg1, 2u);
    EXPECT_EQ(a.type, TraceRecorder::Ev::Instant);
    const auto &b = rec.at(1);
    EXPECT_EQ(b.type, TraceRecorder::Ev::Counter);
    EXPECT_EQ(b.arg0, 3u);
}

TEST(TraceRecorder, RingWrapKeepsMostRecent)
{
    TraceRecorder rec(4);
    const auto trk = rec.addTrack("t0");
    for (Tick t = 0; t < 10; ++t)
        rec.instant(t, trk, "e");
    EXPECT_EQ(rec.size(), 4u);
    EXPECT_EQ(rec.capacity(), 4u);
    EXPECT_EQ(rec.recorded(), 10u);
    EXPECT_EQ(rec.dropped(), 6u);
    // Oldest survivor is tick 6; newest is tick 9.
    EXPECT_EQ(rec.at(0).start, 6u);
    EXPECT_EQ(rec.at(3).start, 9u);
}

TEST(TraceRecorder, SpansNestPerTrack)
{
    TraceRecorder rec(16);
    const auto trk = rec.addTrack("t0");
    rec.begin(10, trk, "outer", 7);
    rec.begin(12, trk, "inner");
    EXPECT_EQ(rec.openSpans(), 2u);
    EXPECT_TRUE(rec.end(14, trk, "inner"));
    EXPECT_TRUE(rec.end(20, trk, "outer"));
    EXPECT_EQ(rec.openSpans(), 0u);

    // Inner closes first, so it is emitted first.
    ASSERT_EQ(rec.size(), 2u);
    EXPECT_STREQ(rec.at(0).name, "inner");
    EXPECT_EQ(rec.at(0).start, 12u);
    EXPECT_EQ(rec.at(0).end, 14u);
    EXPECT_STREQ(rec.at(1).name, "outer");
    EXPECT_EQ(rec.at(1).start, 10u);
    EXPECT_EQ(rec.at(1).end, 20u);
    EXPECT_EQ(rec.at(1).addr, 7u);
    EXPECT_EQ(rec.mismatchedEnds(), 0u);
}

TEST(TraceRecorder, MismatchedEndIsFlaggedNotEmitted)
{
    TraceRecorder rec(16);
    const auto trk = rec.addTrack("t0");

    // end() with nothing open.
    EXPECT_FALSE(rec.end(5, trk, "ghost"));
    EXPECT_EQ(rec.mismatchedEnds(), 1u);
    EXPECT_EQ(rec.size(), 0u);

    // end() with the wrong name leaves the span open.
    rec.begin(10, trk, "real");
    EXPECT_FALSE(rec.end(11, trk, "wrong"));
    EXPECT_EQ(rec.mismatchedEnds(), 2u);
    EXPECT_EQ(rec.openSpans(), 1u);
    EXPECT_TRUE(rec.end(12, trk, "real"));
    EXPECT_EQ(rec.size(), 1u);
}

TEST(TraceRecorder, DepthOverflowIsCountedNotFatal)
{
    TraceRecorder rec(256);
    const auto trk = rec.addTrack("t0");
    for (std::size_t i = 0; i < TraceRecorder::maxDepth + 3; ++i)
        rec.begin(i, trk, "deep");
    EXPECT_EQ(rec.overflowedSpans(), 3u);
    EXPECT_EQ(rec.openSpans(), TraceRecorder::maxDepth);
}

TEST(TraceRecorder, TracksAreIndependent)
{
    TraceRecorder rec(16);
    const auto a = rec.addTrack("a");
    const auto b = rec.addTrack("b");
    rec.begin(1, a, "x");
    rec.begin(2, b, "y");
    EXPECT_TRUE(rec.end(3, b, "y"));
    EXPECT_TRUE(rec.end(4, a, "x"));
    EXPECT_EQ(rec.mismatchedEnds(), 0u);
    ASSERT_EQ(rec.tracks().size(), 2u);
    EXPECT_EQ(rec.tracks()[0], "a");
    EXPECT_EQ(rec.tracks()[1], "b");
}

// ---------------------------------------------------------------------
// Exporter + validator.
// ---------------------------------------------------------------------

Json
exportToJson(const TraceRecorder &rec)
{
    std::ostringstream os;
    writeTraceArtifact(os, rec, "test_obs", Json::object(),
                       Json::object(), Json::object());
    return Json::parse(os.str());
}

TEST(ChromeTrace, ExportValidatesAndRoundTrips)
{
    TraceRecorder rec(64);
    const auto trk = rec.addTrack("cache0");
    rec.instant(1, trk, "REQUEST", 9, 2, 3);
    rec.complete(2, 8, trk, "await_data", 9);
    rec.counter(3, trk, "queue_depth", 5);

    const Json doc = exportToJson(rec);
    EXPECT_EQ(validateTraceArtifact(doc), "");
    EXPECT_EQ(doc.at("schema").asString(), traceSchemaName);

    // 1 process_name + 2 per-track metadata + 3 events.
    const auto &ev = doc.at("traceEvents").elements();
    ASSERT_EQ(ev.size(), 6u);
    const Json &span = ev[4];
    EXPECT_EQ(span.at("ph").asString(), "X");
    EXPECT_EQ(span.at("ts").asInt(), 2);
    EXPECT_EQ(span.at("dur").asInt(), 6);
    EXPECT_EQ(span.at("args").at("addr").asInt(), 9);
}

TEST(ChromeTrace, EventFreeExportValidates)
{
    // A tracing-off build's trace_dump emits an artifact with no
    // tracks and no data events; it must still validate.
    TraceRecorder rec(4);
    const Json doc = exportToJson(rec);
    EXPECT_EQ(validateTraceArtifact(doc), "");
}

TEST(ChromeTrace, NoteNamesAreJsonEscaped)
{
    TraceRecorder rec(16);
    const auto trk = rec.addTrack("log");
    const std::string nasty = "a \"quoted\"\nback\\slash\ttab";
    rec.note(7, trk, nasty);

    const Json doc = exportToJson(rec);
    ASSERT_EQ(validateTraceArtifact(doc), "");
    const auto &ev = doc.at("traceEvents").elements();
    // Last event is the note; its name survives the round trip.
    EXPECT_EQ(ev.back().at("name").asString(), nasty);
}

TEST(ChromeTrace, ValidatorRejectsBrokenDocuments)
{
    TraceRecorder rec(16);
    rec.addTrack("t0");
    rec.instant(1, 0, "e");
    Json doc = exportToJson(rec);
    ASSERT_EQ(validateTraceArtifact(doc), "");

    Json noSchema = doc;
    noSchema.set("schema", "dir2b.not_a_trace");
    EXPECT_NE(validateTraceArtifact(noSchema), "");

    Json badVersion = doc;
    badVersion.set("schema_version", traceSchemaVersion + 1);
    EXPECT_NE(validateTraceArtifact(badVersion), "");

    Json badEvents = doc;
    badEvents.set("traceEvents", Json("not an array"));
    EXPECT_NE(validateTraceArtifact(badEvents), "");
}

TEST(Fixtures, TraceFixturesValidateAsExpected)
{
    const std::string dir = DIR2B_FIXTURES;
    const Json good = readArtifact(dir + "/trace_minimal_good.json");
    EXPECT_EQ(validateTraceArtifact(good), "");

    const Json bad =
        readArtifact(dir + "/trace_bad_unnamed_tracks.json");
    EXPECT_NE(validateTraceArtifact(bad), "");
}

TEST(Fixtures, SweepFixturesValidateAsExpected)
{
    const std::string dir = DIR2B_FIXTURES;
    // v1 artifacts never carried percentiles; still accepted.
    const Json v1 = readArtifact(dir + "/sweep_v1_minimal.json");
    EXPECT_EQ(validateSweepArtifact(v1), "");

    // A v2 artifact whose latency object lacks them is rejected.
    const Json v2 =
        readArtifact(dir + "/sweep_v2_missing_percentiles.json");
    const std::string err = validateSweepArtifact(v2);
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("p50"), std::string::npos) << err;

    // v3: a complete dirStore object (tiered directory counters)
    // passes; one missing tier-movement counters is rejected.
    const Json v3 =
        readArtifact(dir + "/sweep_v3_dirstore_good.json");
    EXPECT_EQ(validateSweepArtifact(v3), "");

    const Json v3bad =
        readArtifact(dir + "/sweep_v3_bad_dirstore.json");
    const std::string err3 = validateSweepArtifact(v3bad);
    EXPECT_NE(err3, "");
    EXPECT_NE(err3.find("dirStore"), std::string::npos) << err3;
}

// ---------------------------------------------------------------------
// Debug routing.
// ---------------------------------------------------------------------

TEST(DebugRouting, SinkReceivesMessagesRegardlessOfLogLevel)
{
    TraceRecorder rec(16);
    const auto trk = rec.addTrack("log");
    ASSERT_EQ(logLevel(), LogLevel::Warn); // default: Debug filtered

    DIR2B_DEBUG("invisible ", 1);
    EXPECT_EQ(rec.size(), 0u);

    setDebugSink([&rec, trk](const std::string &msg) {
        rec.note(3, trk, msg);
    });
    DIR2B_DEBUG("routed ", 42);
    setDebugSink(nullptr);
    DIR2B_DEBUG("after detach");

    ASSERT_EQ(rec.size(), 1u);
    EXPECT_STREQ(rec.at(0).name, "routed 42");
    EXPECT_EQ(rec.at(0).start, 3u);
}

// ---------------------------------------------------------------------
// Instrumented timed runs: content and the do-no-harm guarantee.
// ---------------------------------------------------------------------

std::uint64_t
fold(std::uint64_t h, std::uint64_t x)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (x >> (8 * i)) & 0xff;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Same fixed workload as the golden-digest test, with an optional
 *  recorder attached; digest over the same integer statistics. */
std::uint64_t
digestRun(TimedProto proto, TraceRecorder *tracer)
{
    TimedConfig cfg;
    cfg.protocol = proto;
    cfg.numProcs = 4;
    cfg.numModules = 2;
    cfg.cacheGeom.sets = 16;
    cfg.cacheGeom.ways = 2;
    cfg.perBlockConcurrency = true;
    cfg.network = NetKind::Crossbar;
    cfg.tracer = tracer;
    TimedSystem sys(cfg);

    SyntheticConfig scfg;
    scfg.numProcs = 4;
    scfg.q = 0.2;
    scfg.w = 0.3;
    scfg.sharedBlocks = 8;
    scfg.privateBlocks = 64;
    scfg.hotBlocks = 16;
    scfg.seed = 0xd16e57;
    SyntheticStream stream(scfg);

    const auto r = sys.run(
        [&](ProcId p) -> std::optional<MemRef> {
            return stream.nextFor(p);
        },
        400);

    std::uint64_t h = 0xcbf29ce484222325ULL;
    h = fold(h, r.finalTick);
    h = fold(h, r.refsCompleted);
    h = fold(h, r.eventsExecuted);
    h = fold(h, r.stolenCycles);
    h = fold(h, r.mrequestConversions);
    h = fold(h, r.netMessages);
    h = fold(h, r.broadcasts);
    h = fold(h, r.netWaitCycles);
    for (ProcId p = 0; p < cfg.numProcs; ++p) {
        const auto &s = sys.cacheCtrl(p).stats();
        h = fold(h, s.readHits.value());
        h = fold(h, s.writeHits.value());
        h = fold(h, s.readMisses.value());
        h = fold(h, s.writeMisses.value());
        h = fold(h, s.mrequests.value());
    }
    for (ModuleId m = 0; m < cfg.numModules; ++m) {
        const auto &s = sys.dirCtrl(m).stats();
        h = fold(h, s.requests.value());
        h = fold(h, s.mrequests.value());
        h = fold(h, s.broadInvs.value());
        h = fold(h, s.grantsTrue.value());
        h = fold(h, s.grantsFalse.value());
    }
    return h;
}

TEST(Instrumentation, TracingOnAndOffProduceIdenticalDigests)
{
    for (TimedProto proto : {TimedProto::TwoBit, TimedProto::FullMap,
                             TimedProto::YenFu}) {
        TraceRecorder rec;
        const auto off = digestRun(proto, nullptr);
        const auto on = digestRun(proto, &rec);
        EXPECT_EQ(on, off) << "recorder perturbed the simulation";
        if (traceCompiledIn)
            EXPECT_GT(rec.recorded(), 0u);
        else
            EXPECT_EQ(rec.recorded(), 0u);
    }
}

TEST(Instrumentation, TracedRunExportsPerControllerTracksAndPhases)
{
    if (!traceCompiledIn)
        GTEST_SKIP() << "built with DIR2B_TRACING=OFF";

    TraceRecorder rec;
    digestRun(TimedProto::TwoBit, &rec);

    // One track for the network (constructed first), one per cache,
    // two per controller.
    ASSERT_EQ(rec.tracks().size(), 1u + 4u + 2u * 2u);
    EXPECT_EQ(rec.tracks()[0], "net");
    EXPECT_EQ(rec.tracks()[1], "cache0");
    EXPECT_EQ(rec.tracks()[5], "ctrl0");
    EXPECT_EQ(rec.tracks()[6], "ctrl0.busy");
    EXPECT_EQ(rec.tracks().back(), "ctrl1.busy");
    EXPECT_EQ(rec.openSpans(), 0u);
    EXPECT_EQ(rec.mismatchedEnds(), 0u);
    EXPECT_EQ(rec.overflowedSpans(), 0u);

    // The artifact validates, and the run exercised >= 4 distinct
    // phase span types (the ISSUE acceptance bar).
    const Json doc = exportToJson(rec);
    ASSERT_EQ(validateTraceArtifact(doc), "");
    std::set<std::string> spanNames;
    for (const Json &e : doc.at("traceEvents").elements())
        if (e.at("ph").asString() == "X")
            spanNames.insert(e.at("name").asString());
    EXPECT_GE(spanNames.size(), 4u)
        << "expected transaction + sub-phase span vocabulary";
    EXPECT_TRUE(spanNames.count("await_data"));
    EXPECT_TRUE(spanNames.count("supply"));
}

} // namespace
} // namespace dir2b
