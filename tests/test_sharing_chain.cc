/**
 * @file
 * Tests for the linear solver and the single-block Markov chains
 * behind Table 4-2 and the sharing-state probabilities.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/linear.hh"
#include "model/sharing_chain.hh"

namespace dir2b
{
namespace
{

TEST(Linear, SolvesSmallSystem)
{
    // 2x + y = 5; x - y = 1  ->  x = 2, y = 1.
    Matrix a(2, 2);
    a.at(0, 0) = 2;
    a.at(0, 1) = 1;
    a.at(1, 0) = 1;
    a.at(1, 1) = -1;
    const auto x = solveLinear(a, {5, 1});
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(Linear, PivotingHandlesZeroDiagonal)
{
    // 0*x + y = 3; x + 0*y = 4.
    Matrix a(2, 2);
    a.at(0, 1) = 1;
    a.at(1, 0) = 1;
    const auto x = solveLinear(a, {3, 4});
    EXPECT_NEAR(x[0], 4.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Linear, StationaryOfTwoStateChain)
{
    // Rates: 0 -> 1 at 2.0, 1 -> 0 at 1.0: pi = (1/3, 2/3).
    Matrix q(2, 2);
    q.at(0, 1) = 2.0;
    q.at(1, 0) = 1.0;
    const auto pi = stationaryDistribution(q);
    EXPECT_NEAR(pi[0], 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(pi[1], 2.0 / 3.0, 1e-12);
}

TEST(Linear, StationaryOfCycle)
{
    // Symmetric 3-cycle: uniform stationary distribution.
    Matrix q(3, 3);
    q.at(0, 1) = 1.0;
    q.at(1, 2) = 1.0;
    q.at(2, 0) = 1.0;
    const auto pi = stationaryDistribution(q);
    for (const double p : pi)
        EXPECT_NEAR(p, 1.0 / 3.0, 1e-12);
}

ChainParams
params(unsigned n, double q, double w)
{
    ChainParams p;
    p.n = n;
    p.q = q;
    p.w = w;
    p.sharedBlocks = 16;
    p.evictRate = evictRateFromGeometry(n, 128);
    return p;
}

TEST(FullMapChain, ProbabilitiesAreWellFormed)
{
    const auto r = solveFullMapChain(params(8, 0.05, 0.2));
    EXPECT_GE(r.tR, 0.0);
    EXPECT_GE(r.meanCopies, 0.0);
    EXPECT_LE(r.meanCopies, 8.0);
    EXPECT_GE(r.pDirty, 0.0);
    EXPECT_LE(r.pDirty, 1.0);
    EXPECT_NEAR(r.perCache, 7.0 * r.tR, 1e-12);
}

TEST(FullMapChain, MoreWritesMeansMoreDirtyTime)
{
    const auto low = solveFullMapChain(params(8, 0.05, 0.1));
    const auto high = solveFullMapChain(params(8, 0.05, 0.4));
    EXPECT_GT(high.pDirty, low.pDirty);
    EXPECT_LT(high.meanCopies, low.meanCopies);
}

TEST(FullMapChain, OverheadGrowsWithSharingAndN)
{
    // The qualitative agreement the paper relies on: growth in q and n.
    EXPECT_GT(solveFullMapChain(params(8, 0.10, 0.2)).perCache,
              solveFullMapChain(params(8, 0.01, 0.2)).perCache);
    EXPECT_GT(solveFullMapChain(params(64, 0.05, 0.2)).perCache,
              solveFullMapChain(params(8, 0.05, 0.2)).perCache);
}

TEST(FullMapChain, MatchesPaperCornerMagnitudes)
{
    // Table 4-2 reference points (reconstruction; same order of
    // magnitude is the success criterion, see DESIGN.md §5):
    //   q=.01 w=.1 n=64 -> 0.599;  q=.10 w=.4 n=4 -> 0.228.
    const auto big = solveFullMapChain(params(64, 0.01, 0.1));
    EXPECT_GT(big.perCache, 0.15);
    EXPECT_LT(big.perCache, 2.4);
    const auto small = solveFullMapChain(params(4, 0.10, 0.4));
    EXPECT_GT(small.perCache, 0.05);
    EXPECT_LT(small.perCache, 0.9);
}

TEST(TwoBitChain, OccupanciesFormDistribution)
{
    const auto r = solveTwoBitChain(params(8, 0.05, 0.2));
    EXPECT_NEAR(r.pAbsent + r.pP1 + r.pPStar + r.pPM, 1.0, 1e-9);
    EXPECT_GE(r.pStarEmpty, 0.0);
    EXPECT_LE(r.pStarEmpty, r.pPStar);
}

TEST(TwoBitChain, HighWriteFractionRaisesPresentM)
{
    const auto low = solveTwoBitChain(params(8, 0.05, 0.05));
    const auto high = solveTwoBitChain(params(8, 0.05, 0.5));
    EXPECT_GT(high.pPM, low.pPM);
    EXPECT_LT(high.pPStar, low.pPStar);
}

TEST(TwoBitChain, PredictedTSumGrowsLikeTable41)
{
    // The first-principles T_SUM should reproduce the table's growth
    // pattern in n and w.
    double prev = -1.0;
    for (unsigned n : {4u, 8u, 16u, 32u, 64u}) {
        const auto r = solveTwoBitChain(params(n, 0.05, 0.2));
        EXPECT_GT(r.perCache, prev);
        prev = r.perCache;
    }
    EXPECT_GT(solveTwoBitChain(params(16, 0.05, 0.4)).perCache,
              solveTwoBitChain(params(16, 0.05, 0.1)).perCache);
}

TEST(TwoBitChain, ZeroWritesMeansZeroOverhead)
{
    // With no writes there are no BROADINVs and the block can never be
    // PresentM, so no BROADQUERYs either.
    const auto r = solveTwoBitChain(params(8, 0.05, 0.0));
    EXPECT_NEAR(r.tSum, 0.0, 1e-12);
    EXPECT_NEAR(r.pPM, 0.0, 1e-12);
}

TEST(EvictRate, GeometryScaling)
{
    // Twice the cache halves the rate; twice the processors halves the
    // per-reference chance the holder's processor issues.
    EXPECT_NEAR(evictRateFromGeometry(4, 128),
                2.0 * evictRateFromGeometry(8, 128), 1e-15);
    EXPECT_NEAR(evictRateFromGeometry(4, 128),
                2.0 * evictRateFromGeometry(4, 256), 1e-15);
}

} // namespace
} // namespace dir2b
