/**
 * @file
 * Replay identity: a recorded binary trace, replayed through the
 * zero-copy mmap frontends, must reproduce the simulator's pinned
 * digests bit for bit.
 *
 * Timed tier: the synthetic workload behind every golden digest in
 * test_golden_digest.cc is recorded once (round-robin, the order
 * SyntheticStream::next() emits), then fed back through
 * TraceProcSource — serial and at --shards=4 — and all seven
 * checked-in digests must come out unchanged.  Functional tier: the
 * fixed contended trace behind the pinned table-engine digests in
 * test_table_lockstep.cc is recorded and replayed per-record and
 * batched; same constants.  Finally runFunctional over the mmap
 * stream and runFunctionalBatched over block spans must agree on
 * every statistic for the same trace.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "check/differ.hh"
#include "proto/protocol_factory.hh"
#include "system/func_system.hh"
#include "timed/sharded_system.hh"
#include "timed/timed_system.hh"
#include "trace/synthetic.hh"
#include "trace/trace_binary.hh"

namespace dir2b
{
namespace
{

class TempTrace
{
  public:
    explicit TempTrace(const std::string &tag)
    {
        path_ = testing::TempDir() + "trace_replay_" + tag + ".d2t";
        std::remove(path_.c_str());
    }

    ~TempTrace() { std::remove(path_.c_str()); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::uint64_t
fold(std::uint64_t h, std::uint64_t x)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (x >> (8 * i)) & 0xff;
        h *= 0x100000001b3ULL;
    }
    return h;
}

// ------------------------------------------------- timed-tier replay

/** The synthetic workload behind test_golden_digest.cc's digests. */
SyntheticConfig
goldenWorkload()
{
    SyntheticConfig scfg;
    scfg.numProcs = 4;
    scfg.q = 0.2;
    scfg.w = 0.3;
    scfg.sharedBlocks = 8;
    scfg.privateBlocks = 64;
    scfg.hotBlocks = 16;
    scfg.seed = 0xd16e57;
    return scfg;
}

constexpr std::uint64_t goldenRefsPerProc = 400;

/** Record the golden workload as a binary trace, in the round-robin
 *  order next() emits: each processor's subsequence is then exactly
 *  its nextFor() sequence, so per-processor replay is the recorded
 *  run. */
void
recordGoldenWorkload(const std::string &path)
{
    SyntheticStream stream(goldenWorkload());
    TraceWriter w(path, /*blockRecords=*/128);
    for (std::uint64_t n = 0; n < 4 * goldenRefsPerProc; ++n)
        w.append(*stream.next());
    w.finish();
}

/** Identical statistics digest to test_golden_digest.cc. */
std::uint64_t
digestStats(const TimedRunResult &r,
            const TwoBitCacheCtrl *const *caches,
            const TimedDirCtrl *const *dirs, const TimedConfig &cfg)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    h = fold(h, r.finalTick);
    h = fold(h, r.refsCompleted);
    h = fold(h, r.eventsExecuted);
    h = fold(h, r.stolenCycles);
    h = fold(h, r.mrequestConversions);
    h = fold(h, r.mreqDeleted);
    h = fold(h, r.putsConsumed);
    h = fold(h, r.putsAwaited);
    h = fold(h, r.grantsFalse);
    h = fold(h, r.netMessages);
    h = fold(h, r.broadcasts);
    h = fold(h, r.netWaitCycles);
    h = fold(h, r.readsChecked);
    h = fold(h, r.writesRecorded);

    for (ProcId p = 0; p < cfg.numProcs; ++p) {
        const auto &s = caches[p]->stats();
        h = fold(h, s.readHits.value());
        h = fold(h, s.writeHits.value());
        h = fold(h, s.readMisses.value());
        h = fold(h, s.writeMisses.value());
        h = fold(h, s.mrequests.value());
        h = fold(h, s.staleGrantsIgnored.value());
        h = fold(h, s.invalidationsApplied.value());
        h = fold(h, s.queriesAnswered.value());
        h = fold(h, s.writebacksSent.value());
    }
    for (ModuleId m = 0; m < cfg.numModules; ++m) {
        const auto &s = dirs[m]->stats();
        h = fold(h, s.requests.value());
        h = fold(h, s.mrequests.value());
        h = fold(h, s.ejectsData.value());
        h = fold(h, s.ejectsIgnored.value());
        h = fold(h, s.ejectsApplied.value());
        h = fold(h, s.broadInvs.value());
        h = fold(h, s.broadQueries.value());
        h = fold(h, s.directedInvs.value());
        h = fold(h, s.purges.value());
        h = fold(h, s.grantsTrue.value());
        h = fold(h, s.grantsFalse.value());
    }
    return h;
}

/** digestRun from test_golden_digest.cc, fed from the mmap'ed trace
 *  instead of the live generator. */
std::uint64_t
digestReplay(const TraceReader &reader, TimedProto proto,
             bool perBlock, NetKind net, unsigned shards)
{
    TimedConfig cfg;
    cfg.protocol = proto;
    cfg.numProcs = 4;
    cfg.numModules = 2;
    cfg.cacheGeom.sets = 16;
    cfg.cacheGeom.ways = 2;
    cfg.perBlockConcurrency = perBlock;
    cfg.network = net;

    TraceProcSource procSrc(reader, cfg.numProcs);
    const ProcSource src = [&](ProcId p) -> std::optional<MemRef> {
        return procSrc.next(p);
    };

    TimedRunResult r;
    const TwoBitCacheCtrl *cacheTab[4] = {};
    const TimedDirCtrl *dirTab[2] = {};
    if (shards <= 1) {
        TimedSystem sys(cfg);
        r = sys.run(src, goldenRefsPerProc);
        for (ProcId p = 0; p < cfg.numProcs; ++p)
            cacheTab[p] = &sys.cacheCtrl(p);
        for (ModuleId m = 0; m < cfg.numModules; ++m)
            dirTab[m] = &sys.dirCtrl(m);
        return digestStats(r, cacheTab, dirTab, cfg);
    }
    ShardedTimedSystem sys(cfg, shards);
    r = sys.run(src, goldenRefsPerProc);
    for (ProcId p = 0; p < cfg.numProcs; ++p)
        cacheTab[p] = &sys.cacheCtrl(p);
    for (ModuleId m = 0; m < cfg.numModules; ++m)
        dirTab[m] = &sys.dirCtrl(m);
    return digestStats(r, cacheTab, dirTab, cfg);
}

struct TimedGoldenCase
{
    const char *name;
    TimedProto proto;
    bool perBlock;
    NetKind net;
    std::uint64_t digest;
};

// The same seven constants test_golden_digest.cc pins.
const TimedGoldenCase timedGoldenCases[] = {
    {"two_bit_serial_ideal", TimedProto::TwoBit, false, NetKind::Ideal,
     0x26d8969a443767abULL},
    {"two_bit_perblock_crossbar", TimedProto::TwoBit, true,
     NetKind::Crossbar, 0x51bb7ead2ab4e2e2ULL},
    {"two_bit_serial_bus", TimedProto::TwoBit, false, NetKind::Bus,
     0x9fc95fb8e06d85f1ULL},
    {"full_map_serial_ideal", TimedProto::FullMap, false,
     NetKind::Ideal, 0xffc915f80b00b7ccULL},
    {"full_map_perblock_crossbar", TimedProto::FullMap, true,
     NetKind::Crossbar, 0x5994774b5ae7d0dbULL},
    {"yen_fu_serial_ideal", TimedProto::YenFu, false, NetKind::Ideal,
     0xfe831cf225b0e715ULL},
    {"yen_fu_perblock_crossbar", TimedProto::YenFu, true,
     NetKind::Crossbar, 0x0d92ed141c55caf7ULL},
};

TEST(TraceReplay, TimedReplayMatchesAllGoldenDigests)
{
    TempTrace t("timed");
    recordGoldenWorkload(t.path());
    TraceReader reader(t.path());
    ASSERT_EQ(reader.totalRecords(), 4 * goldenRefsPerProc);
    for (const auto &c : timedGoldenCases) {
        const std::uint64_t got =
            digestReplay(reader, c.proto, c.perBlock, c.net, 1);
        EXPECT_EQ(got, c.digest)
            << c.name << " (replay): digest 0x" << std::hex << got
            << " != golden 0x" << c.digest;
    }
}

TEST(TraceReplay, ShardedTimedReplayMatchesAllGoldenDigests)
{
    TempTrace t("timed4");
    recordGoldenWorkload(t.path());
    TraceReader reader(t.path());
    for (const auto &c : timedGoldenCases) {
        const std::uint64_t got =
            digestReplay(reader, c.proto, c.perBlock, c.net, 4);
        EXPECT_EQ(got, c.digest)
            << c.name << " (replay, shards=4): digest 0x" << std::hex
            << got << " != golden 0x" << c.digest;
    }
}

// -------------------------------------------- functional-tier replay

/** The fixed contended trace behind test_table_lockstep.cc's pinned
 *  functional digests. */
std::vector<MemRef>
tableGoldenTrace(FuzzConfig &fc)
{
    fc.numSeeds = 1;
    fc.refsPerSeed = 5000;
    fc.baseSeed = 0xd16257;
    return fuzzTrace(fc, 0);
}

/** digestProtocol from test_table_lockstep.cc, with the access loop
 *  fed by `emit` instead of a vector walk. */
template <typename EmitRefs>
std::uint64_t
digestTableProtocol(const std::string &name, const FuzzConfig &fc,
                    const std::vector<MemRef> &trace, EmitRefs emit)
{
    ProtoConfig pc;
    pc.numProcs = fc.diff.numProcs;
    pc.numModules = fc.diff.numModules;
    pc.cacheGeom.sets = fc.diff.sets;
    pc.cacheGeom.ways = fc.diff.ways;
    const auto proto = makeProtocol(name, pc);

    Value nonce = 0;
    emit([&](ProcId p, Addr a, bool write) {
        proto->access(p, a, write, write ? ++nonce : 0);
    });

    std::uint64_t h = 0xcbf29ce484222325ULL;
    AccessCounts::forEachField(
        proto->counts(),
        [&](const char *, std::uint64_t v) { h = fold(h, v); });
    for (ProcId p = 0; p < pc.numProcs; ++p) {
        h = fold(h, proto->cmdsReceivedBy(p));
        h = fold(h, proto->uselessReceivedBy(p));
        h = fold(h, proto->refsIssuedBy(p));
    }
    std::set<Addr> blocks;
    for (const MemRef &r : trace)
        blocks.insert(r.addr);
    for (const Addr a : blocks) {
        Value v = proto->memValue(a);
        for (ProcId p = 0; p < pc.numProcs; ++p) {
            const CacheLine *l = proto->cache(p).peek(a);
            if (l && l->valid() && l->dirty())
                v = l->value;
        }
        h = fold(h, v);
    }
    return h;
}

struct TableGoldenCase
{
    const char *table;
    std::uint64_t digest;
};

// The same constants test_table_lockstep.cc pins.
const TableGoldenCase tableGoldenCases[] = {
    {"two_bit_table", 0xfeb02f0eedaad5cdULL},
    {"full_map_table", 0x694edcae1778aa2cULL},
    {"moesi", 0xc84e87d6891f3443ULL},
};

TEST(TraceReplay, FunctionalReplayMatchesPinnedTableDigests)
{
    FuzzConfig fc;
    const std::vector<MemRef> trace = tableGoldenTrace(fc);

    TempTrace t("table");
    {
        TraceWriter w(t.path(), /*blockRecords=*/256);
        w.append(trace.data(), trace.size());
        w.finish();
    }
    TraceReader reader(t.path());
    ASSERT_EQ(reader.totalRecords(), trace.size());

    for (const auto &c : tableGoldenCases) {
        // Per-record mmap replay.
        const std::uint64_t perRecord = digestTableProtocol(
            c.table, fc, trace, [&](auto &&access) {
                MmapTraceStream stream(reader);
                while (const auto r = stream.next())
                    access(r->proc, r->addr, r->write);
            });
        EXPECT_EQ(perRecord, c.digest)
            << c.table << " (mmap per-record): digest 0x" << std::hex
            << perRecord << " != golden 0x" << c.digest;

        // Batched span replay.
        const std::uint64_t batched = digestTableProtocol(
            c.table, fc, trace, [&](auto &&access) {
                TraceBatchStream batches(reader);
                for (AccessBatch b = batches.nextBatch(); !b.empty();
                     b = batches.nextBatch())
                    for (const TraceRecord &rec : b)
                        access(rec.proc, rec.addr, rec.write());
            });
        EXPECT_EQ(batched, c.digest)
            << c.table << " (mmap batched): digest 0x" << std::hex
            << batched << " != golden 0x" << c.digest;
    }
}

// ------------------------------------- scalar/batched runner parity

void
expectSameRunResult(const RunResult &a, const RunResult &b)
{
    std::vector<std::uint64_t> ca, cb;
    AccessCounts::forEachField(
        a.counts,
        [&](const char *, std::uint64_t v) { ca.push_back(v); });
    AccessCounts::forEachField(
        b.counts,
        [&](const char *, std::uint64_t v) { cb.push_back(v); });
    EXPECT_EQ(ca, cb);
    EXPECT_EQ(a.sharedRefs, b.sharedRefs);
    EXPECT_EQ(a.sharedWrites, b.sharedWrites);
    EXPECT_EQ(a.sharedHits, b.sharedHits);
    EXPECT_EQ(a.stateSamples, b.stateSamples);
    EXPECT_EQ(a.stateOccupancy, b.stateOccupancy);
    EXPECT_DOUBLE_EQ(a.perCacheUselessPerRef, b.perCacheUselessPerRef);
}

TEST(TraceReplay, BatchedRunnerMatchesScalarRunner)
{
    TempTrace t("parity");
    SyntheticConfig scfg;
    scfg.numProcs = 4;
    scfg.q = 0.15;
    scfg.w = 0.3;
    scfg.seed = 99;
    {
        SyntheticStream stream(scfg);
        TraceWriter w(t.path(), /*blockRecords=*/512);
        for (int n = 0; n < 20000; ++n)
            w.append(*stream.next());
        w.finish();
    }
    TraceReader reader(t.path());

    for (const char *name : {"two_bit", "full_map", "classical"}) {
        ProtoConfig pc;
        pc.numProcs = 4;
        pc.nonCacheableBase = sharedRegionBase;

        RunOptions opts;
        opts.numRefs = reader.totalRecords();
        opts.sampleEvery = 64;
        opts.sharedBlocks = 16;
        opts.invariantEvery = 1000;

        auto protoA = makeProtocol(name, pc);
        MmapTraceStream stream(reader);
        const RunResult a = runFunctional(*protoA, stream, opts);

        auto protoB = makeProtocol(name, pc);
        TraceBatchStream batches(reader);
        const RunResult b =
            runFunctionalBatched(*protoB, batches, opts);

        expectSameRunResult(a, b);
    }
}

TEST(TraceReplay, BatchedRunnerHonoursNumRefsCap)
{
    TempTrace t("cap");
    SyntheticConfig scfg;
    scfg.numProcs = 2;
    {
        SyntheticStream stream(scfg);
        TraceWriter w(t.path(), /*blockRecords=*/64);
        for (int n = 0; n < 1000; ++n)
            w.append(*stream.next());
        w.finish();
    }
    TraceReader reader(t.path());
    ProtoConfig pc;
    pc.numProcs = 2;
    pc.nonCacheableBase = sharedRegionBase;
    auto proto = makeProtocol("two_bit", pc);
    TraceBatchStream batches(reader);
    RunOptions opts;
    opts.numRefs = 333; // mid-block: the cap must clamp a span
    const RunResult r = runFunctionalBatched(*proto, batches, opts);
    EXPECT_EQ(r.counts.refs(), 333u);
}

} // namespace
} // namespace dir2b
