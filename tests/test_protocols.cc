/**
 * @file
 * Directed tests for the remaining baseline protocols of the paper's
 * spectrum: classical (§2.3), Tang duplicated directories (§2.4.1),
 * write-once (§2.5), Illinois (ref [5]) and the software scheme
 * (§2.2).
 */

#include <gtest/gtest.h>

#include "proto/classical.hh"
#include "proto/dup_dir.hh"
#include "proto/illinois.hh"
#include "proto/protocol_factory.hh"
#include "proto/software.hh"
#include "proto/write_once.hh"
#include "trace/reference.hh"

namespace dir2b
{
namespace
{

ProtoConfig
config(ProcId n = 4, std::size_t sets = 64, std::size_t ways = 4)
{
    ProtoConfig cfg;
    cfg.numProcs = n;
    cfg.cacheGeom.sets = sets;
    cfg.cacheGeom.ways = ways;
    cfg.numModules = 2;
    return cfg;
}

// ---------------------------------------------------------------- //
// Classical broadcast write-through (§2.3).
// ---------------------------------------------------------------- //

TEST(Classical, EveryWriteBroadcastsToAllOtherCaches)
{
    const ProcId n = 4;
    ClassicalProtocol p(config(n));
    p.access(0, 10, true, 1);
    EXPECT_EQ(p.lastDelta().broadcastCmds, n - 1u);
    EXPECT_EQ(p.lastDelta().memWrites, 1u);
    p.access(0, 10, true, 2);
    // Even repeated writes to the same block broadcast again.
    EXPECT_EQ(p.lastDelta().broadcastCmds, n - 1u);
}

TEST(Classical, RemoteCopiesInvalidatedOnWrite)
{
    ClassicalProtocol p(config());
    p.access(1, 10, false);
    p.access(2, 10, false);
    p.access(0, 10, true, 5);
    EXPECT_EQ(p.lastDelta().invalidations, 2u);
    EXPECT_EQ(p.holders(10).size(), 0u); // no write-allocate
    EXPECT_EQ(p.access(1, 10, false), 5u);
}

TEST(Classical, MemoryIsAlwaysCurrent)
{
    ClassicalProtocol p(config());
    p.access(0, 10, true, 5);
    EXPECT_EQ(p.memValue(10), 5u);
    p.access(0, 10, false);
    p.access(0, 10, true, 6);
    EXPECT_EQ(p.memValue(10), 6u);
    p.checkInvariants();
}

TEST(Classical, WriteAllocateFillsOnWriteMiss)
{
    ProtoConfig cfg = config();
    cfg.writeAllocate = true;
    ClassicalProtocol p(cfg);
    p.access(0, 10, true, 5);
    EXPECT_EQ(p.holders(10), std::vector<ProcId>{0});
    EXPECT_EQ(p.access(0, 10, false), 5u);
    EXPECT_EQ(p.lastDelta().readHits, 1u);
}

TEST(Classical, BiasFilterAbsorbsRepeatedInvalidations)
{
    ProtoConfig cfg = config();
    cfg.biasCapacity = 16;
    ClassicalProtocol p(cfg);
    // Processor 0 writes the same block repeatedly; caches 1..3 should
    // take one directory cycle each and then be shielded.
    for (int i = 0; i < 10; ++i)
        p.access(0, 10, true, 100u + i);
    EXPECT_GT(p.biasAbsorbed(), 0u);
    EXPECT_EQ(p.counts().filteredCmds, p.biasAbsorbed());
    // Stolen cycles: only the unfiltered deliveries.
    EXPECT_EQ(p.counts().stolenCycles + p.counts().filteredCmds,
              p.counts().broadcastCmds);
}

TEST(Classical, NoDirectoryStorage)
{
    ClassicalProtocol p(config());
    EXPECT_EQ(p.directoryBitsPerBlock(), 0u);
}

// ---------------------------------------------------------------- //
// Tang duplicated cache directories (§2.4.1).
// ---------------------------------------------------------------- //

TEST(DupDir, BehavesLikeFullMapOnCommands)
{
    DupDirProtocol p(config(8));
    const Addr a = 5;
    p.access(0, a, false);
    p.access(1, a, false);
    p.access(7, a, true, 1);
    EXPECT_EQ(p.lastDelta().directedCmds, 2u);
    EXPECT_EQ(p.lastDelta().uselessCmds, 0u);
}

TEST(DupDir, CentralControllerSearchesAllDuplicates)
{
    const ProcId n = 8;
    DupDirProtocol p(config(n));
    p.access(0, 5, false);
    // Each directory consultation scans all n duplicates.
    EXPECT_GE(p.lastDelta().dirSearches, static_cast<std::uint64_t>(n));
}

TEST(DupDir, EveryCacheChangeUpdatesCentralCopy)
{
    DupDirProtocol p(config());
    p.access(0, 5, false);
    const auto afterFill = p.counts().dirUpdates;
    EXPECT_GE(afterFill, 1u);
    p.access(1, 5, true, 9); // invalidation at 0 + fill at 1
    EXPECT_GE(p.counts().dirUpdates, afterFill + 2);
}

// ---------------------------------------------------------------- //
// Write-once (§2.5).
// ---------------------------------------------------------------- //

TEST(WriteOnce, FirstWriteGoesThroughAndReserves)
{
    WriteOnceProtocol p(config());
    p.access(0, 10, false);
    p.access(0, 10, true, 5);
    EXPECT_EQ(p.cache(0).peek(10)->state, LineState::Reserved);
    EXPECT_EQ(p.memValue(10), 5u); // written through
    EXPECT_EQ(p.lastDelta().wordWrites, 1u);
}

TEST(WriteOnce, SecondWriteGoesDirtyWithNoBusTraffic)
{
    WriteOnceProtocol p(config());
    p.access(0, 10, false);
    p.access(0, 10, true, 5);
    const AccessCounts before = p.counts();
    p.access(0, 10, true, 6);
    const AccessCounts d = p.counts() - before;
    EXPECT_EQ(d.netMessages, 0u);
    EXPECT_EQ(d.snoopChecks, 0u);
    EXPECT_EQ(p.cache(0).peek(10)->state, LineState::Modified);
    EXPECT_EQ(p.memValue(10), 5u); // memory now stale
}

TEST(WriteOnce, DirtyOwnerSuppliesAndWritesBackOnRead)
{
    WriteOnceProtocol p(config());
    p.access(0, 10, false);
    p.access(0, 10, true, 5);
    p.access(0, 10, true, 6); // Dirty
    p.access(1, 10, false);
    EXPECT_EQ(p.lastDelta().cacheTransfers, 1u);
    EXPECT_EQ(p.lastDelta().writebacks, 1u);
    EXPECT_EQ(p.access(1, 10, false), 6u);
    EXPECT_EQ(p.memValue(10), 6u);
    EXPECT_EQ(p.cache(0).peek(10)->state, LineState::Shared);
}

TEST(WriteOnce, EveryMissIsSnoopedByAllOtherCaches)
{
    const ProcId n = 8;
    WriteOnceProtocol p(config(n));
    p.access(0, 10, false);
    EXPECT_EQ(p.lastDelta().snoopChecks, n - 1u);
    p.access(1, 20, true, 1);
    EXPECT_EQ(p.lastDelta().snoopChecks, n - 1u);
}

TEST(WriteOnce, WriteMissInvalidatesAllCopies)
{
    WriteOnceProtocol p(config());
    p.access(0, 10, false);
    p.access(1, 10, false);
    p.access(2, 10, true, 7);
    EXPECT_EQ(p.lastDelta().invalidations, 2u);
    EXPECT_EQ(p.holders(10), std::vector<ProcId>{2});
    EXPECT_EQ(p.cache(2).peek(10)->state, LineState::Modified);
}

TEST(WriteOnce, InvariantsUnderMixedTraffic)
{
    WriteOnceProtocol p(config(4, 2, 2));
    for (int i = 0; i < 500; ++i) {
        p.access(static_cast<ProcId>(i % 4),
                 static_cast<Addr>((i * 3) % 10), i % 3 == 0,
                 40000u + i);
        p.checkInvariants();
    }
}

// ---------------------------------------------------------------- //
// Illinois / MESI (ref [5]).
// ---------------------------------------------------------------- //

TEST(Illinois, SoleReaderFillsExclusive)
{
    IllinoisProtocol p(config());
    p.access(0, 10, false);
    EXPECT_EQ(p.cache(0).peek(10)->state, LineState::Exclusive);
}

TEST(Illinois, ExclusiveWriteIsSilent)
{
    IllinoisProtocol p(config());
    p.access(0, 10, false);
    const AccessCounts before = p.counts();
    p.access(0, 10, true, 5);
    const AccessCounts d = p.counts() - before;
    EXPECT_EQ(d.netMessages, 0u);
    EXPECT_EQ(d.snoopChecks, 0u);
    EXPECT_EQ(p.cache(0).peek(10)->state, LineState::Modified);
}

TEST(Illinois, CacheToCacheSupplyOnSharedRead)
{
    IllinoisProtocol p(config());
    p.access(0, 10, false);
    p.access(1, 10, false);
    EXPECT_EQ(p.lastDelta().cacheTransfers, 1u);
    EXPECT_EQ(p.lastDelta().memReads, 0u);
    EXPECT_EQ(p.cache(0).peek(10)->state, LineState::Shared);
    EXPECT_EQ(p.cache(1).peek(10)->state, LineState::Shared);
}

TEST(Illinois, DirtyReadMissWritesBack)
{
    IllinoisProtocol p(config());
    p.access(0, 10, true, 9);
    p.access(1, 10, false);
    EXPECT_EQ(p.lastDelta().writebacks, 1u);
    EXPECT_EQ(p.access(1, 10, false), 9u);
    EXPECT_EQ(p.memValue(10), 9u);
}

TEST(Illinois, WriteMissTransfersOwnershipWithoutWriteback)
{
    IllinoisProtocol p(config());
    p.access(0, 10, true, 9);
    p.access(1, 10, true, 11);
    EXPECT_EQ(p.lastDelta().writebacks, 0u);
    EXPECT_EQ(p.lastDelta().invalidations, 1u);
    EXPECT_EQ(p.access(1, 10, false), 11u);
}

TEST(Illinois, SharedWriteHitInvalidatesOthers)
{
    IllinoisProtocol p(config());
    p.access(0, 10, false);
    p.access(1, 10, false);
    p.access(0, 10, true, 5);
    EXPECT_EQ(p.lastDelta().invalidations, 1u);
    EXPECT_EQ(p.holders(10), std::vector<ProcId>{0});
}

TEST(Illinois, InvariantsUnderMixedTraffic)
{
    IllinoisProtocol p(config(4, 2, 2));
    for (int i = 0; i < 500; ++i) {
        p.access(static_cast<ProcId>((i * 5) % 4),
                 static_cast<Addr>(i % 9), i % 4 == 1, 50000u + i);
        p.checkInvariants();
    }
}

// ---------------------------------------------------------------- //
// Software-enforced scheme (§2.2).
// ---------------------------------------------------------------- //

ProtoConfig
softwareConfig()
{
    ProtoConfig cfg = config();
    cfg.nonCacheableBase = sharedRegionBase;
    return cfg;
}

TEST(Software, PublicBlocksAreNeverCached)
{
    SoftwareProtocol p(softwareConfig());
    const Addr pub = sharedRegionBase + 3;
    p.access(0, pub, false);
    p.access(0, pub, false);
    EXPECT_EQ(p.holders(pub).size(), 0u);
    // Every access is a memory round trip.
    EXPECT_EQ(p.counts().memReads, 2u);
    p.checkInvariants();
}

TEST(Software, PublicWritesAreImmediatelyVisibleEverywhere)
{
    SoftwareProtocol p(softwareConfig());
    const Addr pub = sharedRegionBase;
    p.access(0, pub, true, 42);
    EXPECT_EQ(p.access(1, pub, false), 42u);
    EXPECT_EQ(p.access(2, pub, false), 42u);
    EXPECT_EQ(p.counts().broadcasts, 0u);
    EXPECT_EQ(p.counts().invalidations, 0u);
}

TEST(Software, PrivateBlocksAreCachedNormally)
{
    SoftwareProtocol p(softwareConfig());
    const Addr priv = privateRegionBase(0);
    p.access(0, priv, true, 7);
    p.access(0, priv, false);
    EXPECT_EQ(p.counts().readHits, 1u);
    EXPECT_EQ(p.access(0, priv, false), 7u);
}

TEST(Software, ContractViolationIsDetected)
{
    SoftwareProtocol p(softwareConfig());
    const Addr priv = privateRegionBase(0);
    p.access(0, priv, true, 7);
    EXPECT_DEATH(p.access(1, priv, true, 8), "contract violated");
}

TEST(Software, CrossReadOfWrittenPrivateBlockIsDetected)
{
    SoftwareProtocol p(softwareConfig());
    const Addr priv = privateRegionBase(0);
    p.access(0, priv, true, 7);
    EXPECT_DEATH(p.access(1, priv, false), "contract violated");
}

TEST(Software, ReadOnlySharingOfUnwrittenBlocksIsFine)
{
    SoftwareProtocol p(softwareConfig());
    const Addr ro = privateRegionBase(0) + 5;
    EXPECT_EQ(p.access(0, ro, false), initialValue(ro));
    EXPECT_EQ(p.access(1, ro, false), initialValue(ro));
    EXPECT_EQ(p.access(2, ro, false), initialValue(ro));
}

// ---------------------------------------------------------------- //
// Factory.
// ---------------------------------------------------------------- //

TEST(Factory, BuildsEveryRegisteredProtocol)
{
    ProtoConfig cfg = config();
    cfg.nonCacheableBase = sharedRegionBase;
    cfg.tbCapacity = 8;
    for (const auto &name : protocolNames()) {
        auto p = makeProtocol(name, cfg);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->name(), name);
        // Smoke: one access works and invariants hold.
        p->access(0, privateRegionBase(0), false);
        p->checkInvariants();
    }
}

TEST(Factory, DirectoryCostOrdering)
{
    // The economy claim: 2 bits vs n+1 bits, snoop/classical at zero.
    ProtoConfig cfg = config(16);
    EXPECT_EQ(makeProtocol("two_bit", cfg)->directoryBitsPerBlock(), 2u);
    EXPECT_EQ(makeProtocol("full_map", cfg)->directoryBitsPerBlock(),
              17u);
    EXPECT_EQ(makeProtocol("classical", cfg)->directoryBitsPerBlock(),
              0u);
}

} // namespace
} // namespace dir2b
