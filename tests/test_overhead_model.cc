/**
 * @file
 * The §4.2 closed form checked cell-by-cell against the paper's
 * printed Table 4-1 (all three sharing cases, w in {.1,.2,.3,.4},
 * n in {4,8,16,32,64}).
 *
 * Two cells get special treatment:
 *  - case 1, w=0.3, n=16 is printed as 0.970 in the paper but the
 *    formula gives 0.070; the column is otherwise monotone between
 *    0.047 and 0.092, so 0.970 is a typesetting error (dropped leading
 *    zero digit position).
 *  - case 1, w=0.1, n=4 is printed 0.000; the formula gives 0.00097,
 *    which rounds to 0.001 — the paper evidently truncated.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/overhead_model.hh"

namespace dir2b
{
namespace
{

struct Cell
{
    SharingLevel level;
    double w;
    unsigned n;
    double paper;
};

// Every printed cell of Table 4-1 (with the two flagged cells noted).
const Cell table41[] = {
    // Case 1: low sharing.
    {SharingLevel::Low, 0.1, 4, 0.000},  // paper truncates 0.00097
    {SharingLevel::Low, 0.1, 8, 0.005},
    {SharingLevel::Low, 0.1, 16, 0.025},
    {SharingLevel::Low, 0.1, 32, 0.109},
    {SharingLevel::Low, 0.1, 64, 0.449},
    {SharingLevel::Low, 0.2, 4, 0.002},
    {SharingLevel::Low, 0.2, 8, 0.010},
    {SharingLevel::Low, 0.2, 16, 0.047},
    {SharingLevel::Low, 0.2, 32, 0.203},
    {SharingLevel::Low, 0.2, 64, 0.840},
    {SharingLevel::Low, 0.3, 4, 0.003},
    {SharingLevel::Low, 0.3, 8, 0.015},
    {SharingLevel::Low, 0.3, 16, 0.070}, // paper prints 0.970 (typo)
    {SharingLevel::Low, 0.3, 32, 0.298},
    {SharingLevel::Low, 0.3, 64, 1.231},
    {SharingLevel::Low, 0.4, 4, 0.004},
    {SharingLevel::Low, 0.4, 8, 0.020},
    {SharingLevel::Low, 0.4, 16, 0.092},
    {SharingLevel::Low, 0.4, 32, 0.392},
    {SharingLevel::Low, 0.4, 64, 1.622},
    // Case 2: moderate sharing.
    {SharingLevel::Moderate, 0.1, 4, 0.009},
    {SharingLevel::Moderate, 0.1, 8, 0.055},
    {SharingLevel::Moderate, 0.1, 16, 0.263},
    {SharingLevel::Moderate, 0.1, 32, 1.146},
    {SharingLevel::Moderate, 0.1, 64, 4.773},
    {SharingLevel::Moderate, 0.2, 4, 0.015},
    {SharingLevel::Moderate, 0.2, 8, 0.089},
    {SharingLevel::Moderate, 0.2, 16, 0.422},
    {SharingLevel::Moderate, 0.2, 32, 1.827},
    {SharingLevel::Moderate, 0.2, 64, 7.593},
    {SharingLevel::Moderate, 0.3, 4, 0.021},
    {SharingLevel::Moderate, 0.3, 8, 0.123},
    {SharingLevel::Moderate, 0.3, 16, 0.580},
    {SharingLevel::Moderate, 0.3, 32, 2.508},
    {SharingLevel::Moderate, 0.3, 64, 10.413},
    {SharingLevel::Moderate, 0.4, 4, 0.027},
    {SharingLevel::Moderate, 0.4, 8, 0.157},
    {SharingLevel::Moderate, 0.4, 16, 0.739},
    {SharingLevel::Moderate, 0.4, 32, 3.188},
    {SharingLevel::Moderate, 0.4, 64, 13.233},
    // Case 3: high sharing.
    {SharingLevel::High, 0.1, 4, 0.057},
    {SharingLevel::High, 0.1, 8, 0.382},
    {SharingLevel::High, 0.1, 16, 1.887},
    {SharingLevel::High, 0.1, 32, 8.314},
    {SharingLevel::High, 0.1, 64, 34.839},
    {SharingLevel::High, 0.2, 4, 0.072},
    {SharingLevel::High, 0.2, 8, 0.470},
    {SharingLevel::High, 0.2, 16, 2.304},
    {SharingLevel::High, 0.2, 32, 10.118},
    {SharingLevel::High, 0.2, 64, 42.336},
    {SharingLevel::High, 0.3, 4, 0.087},
    {SharingLevel::High, 0.3, 8, 0.559},
    {SharingLevel::High, 0.3, 16, 2.721},
    {SharingLevel::High, 0.3, 32, 11.923},
    {SharingLevel::High, 0.3, 64, 49.833},
    {SharingLevel::High, 0.4, 4, 0.102},
    {SharingLevel::High, 0.4, 8, 0.647},
    {SharingLevel::High, 0.4, 16, 3.138},
    {SharingLevel::High, 0.4, 32, 13.727},
    {SharingLevel::High, 0.4, 64, 57.330},
};

TEST(OverheadModel, ReproducesEveryCellOfTable41)
{
    for (const Cell &cell : table41) {
        const auto b = overhead(sharingCase(cell.level, cell.n, cell.w));
        EXPECT_NEAR(b.perCache, cell.paper, 0.0015)
            << toString(cell.level) << " w=" << cell.w
            << " n=" << cell.n;
    }
}

TEST(OverheadModel, ComponentsSumToTotal)
{
    const auto b = overhead(sharingCase(SharingLevel::Moderate, 16, 0.2));
    EXPECT_NEAR(b.tSUM, b.tRM + b.tWM + b.tWH, 1e-12);
    EXPECT_NEAR(b.perCache, 15.0 * b.tSUM, 1e-12);
}

TEST(OverheadModel, HandComputedModerateCell)
{
    // Worked by hand in EXPERIMENTS.md: case 2, w=0.2, n=16.
    const auto b = overhead(sharingCase(SharingLevel::Moderate, 16, 0.2));
    EXPECT_NEAR(b.tRM, 0.0056, 1e-9);
    EXPECT_NEAR(b.tWM, 0.00565, 1e-9);
    EXPECT_NEAR(b.tWH, 0.016875, 1e-9);
    EXPECT_NEAR(b.perCache, 0.4219, 0.0005);
}

TEST(OverheadModel, MonotoneInNandW)
{
    // Overhead grows with processor count and write fraction in every
    // sharing case.
    for (auto level : {SharingLevel::Low, SharingLevel::Moderate,
                       SharingLevel::High}) {
        for (double w : table41WriteProbs()) {
            double prev = -1.0;
            for (unsigned n : table41ProcessorCounts()) {
                const double v = overhead(sharingCase(level, n, w))
                                     .perCache;
                EXPECT_GT(v, prev);
                prev = v;
            }
        }
        for (unsigned n : table41ProcessorCounts()) {
            double prev = -1.0;
            for (double w : table41WriteProbs()) {
                const double v = overhead(sharingCase(level, n, w))
                                     .perCache;
                EXPECT_GT(v, prev);
                prev = v;
            }
        }
    }
}

TEST(OverheadModel, PaperTypoCellIsInconsistentWithMonotonicity)
{
    // The printed 0.970 at (case 1, w=0.3, n=16) would break the
    // monotone trend its own column and row obey; the formula value
    // restores it.
    const double n8 = overhead(sharingCase(SharingLevel::Low, 8, 0.3))
                          .perCache;
    const double n16 = overhead(sharingCase(SharingLevel::Low, 16, 0.3))
                           .perCache;
    const double n32 = overhead(sharingCase(SharingLevel::Low, 32, 0.3))
                           .perCache;
    EXPECT_LT(n8, n16);
    EXPECT_LT(n16, n32);
    EXPECT_NEAR(n16, 0.070, 0.001);
    EXPECT_GT(std::abs(0.970 - n16), 0.5); // the printed cell is off
}

TEST(OverheadModel, AcceptabilityThresholds)
{
    // §4.3's conclusions, restated as threshold checks at w=0.2:
    // low sharing acceptable ((n-1)T_SUM < 1) through 64 processors,
    // moderate through 16, high only through 8.
    EXPECT_LT(overhead(sharingCase(SharingLevel::Low, 64, 0.2)).perCache,
              1.0);
    EXPECT_LT(
        overhead(sharingCase(SharingLevel::Moderate, 16, 0.2)).perCache,
        1.0);
    EXPECT_GT(
        overhead(sharingCase(SharingLevel::Moderate, 32, 0.2)).perCache,
        1.0);
    EXPECT_LT(overhead(sharingCase(SharingLevel::High, 8, 0.2)).perCache,
              1.0);
    EXPECT_GT(overhead(sharingCase(SharingLevel::High, 16, 0.2)).perCache,
              1.0);
}

TEST(OverheadModel, Table41RowHelperMatchesDirectEvaluation)
{
    const auto row = table41Row(SharingLevel::High, 0.4);
    ASSERT_EQ(row.size(), 5u);
    EXPECT_NEAR(row.back(), 57.330, 0.0015);
}

} // namespace
} // namespace dir2b
