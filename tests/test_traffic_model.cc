/**
 * @file
 * Tests for the network-saturation model (the paper's §4.3 future
 * work) and the §2.2 cache-flush operation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/two_bit_protocol.hh"
#include "model/traffic_model.hh"
#include "proto/full_map.hh"
#include "proto/protocol_factory.hh"
#include "trace/reference.hh"

namespace dir2b
{
namespace
{

TrafficParams
params(unsigned n, SharingLevel level = SharingLevel::Moderate,
       double w = 0.2)
{
    TrafficParams p;
    p.sharing = sharingCase(level, n, w);
    return p;
}

TEST(TrafficModel, UtilisationGrowsWithProcessors)
{
    double prev = 0.0;
    for (unsigned n : {2u, 4u, 8u, 16u, 32u}) {
        const auto r = networkLoad(params(n));
        EXPECT_GT(r.utilisation, prev);
        prev = r.utilisation;
    }
}

TEST(TrafficModel, BroadcastShareGrowsWithSharing)
{
    const auto low = networkLoad(params(16, SharingLevel::Low));
    const auto high = networkLoad(params(16, SharingLevel::High));
    EXPECT_GT(high.broadcastMsgsPerRef, low.broadcastMsgsPerRef);
    // The broadcast *share* of the load is what grows with sharing;
    // base traffic moves only via the MREQUEST term.
    const auto share = [](const TrafficResult &r) {
        return r.broadcastMsgsPerRef /
               (r.baseMsgsPerRef + r.broadcastMsgsPerRef);
    };
    EXPECT_GT(share(high), share(low));
}

TEST(TrafficModel, QueueDelayDivergesNearSaturation)
{
    TrafficParams p = params(8);
    p.portServiceRate = 10.0;
    const auto relaxed = networkLoad(p);
    EXPECT_FALSE(relaxed.saturated);
    EXPECT_GE(relaxed.queueDelay, 1.0 / p.portServiceRate);

    p.portServiceRate = relaxed.portLoad * 1.01; // rho ~ 0.99
    const auto tense = networkLoad(p);
    EXPECT_FALSE(tense.saturated);
    EXPECT_GT(tense.queueDelay, 10.0 * relaxed.queueDelay);

    p.portServiceRate = relaxed.portLoad * 0.5; // rho = 2
    const auto broken = networkLoad(p);
    EXPECT_TRUE(broken.saturated);
    EXPECT_TRUE(std::isinf(broken.queueDelay));
}

TEST(TrafficModel, MoreModulesRaiseTheSaturationPoint)
{
    TrafficParams few = params(4);
    few.modules = 2;
    TrafficParams many = params(4);
    many.modules = 16;
    EXPECT_GE(saturationProcessorCount(many),
              saturationProcessorCount(few));
}

TEST(TrafficModel, HighSharingSaturatesEarlier)
{
    TrafficParams low = params(4, SharingLevel::Low, 0.2);
    TrafficParams high = params(4, SharingLevel::High, 0.4);
    EXPECT_GE(saturationProcessorCount(low),
              saturationProcessorCount(high));
}

// ---------------------------------------------------------------- //
// flushCache (§2.2 context switch).
// ---------------------------------------------------------------- //

ProtoConfig
config()
{
    ProtoConfig cfg;
    cfg.numProcs = 4;
    cfg.cacheGeom.sets = 8;
    cfg.cacheGeom.ways = 2;
    cfg.numModules = 2;
    return cfg;
}

TEST(FlushCache, TwoBitWritesBackAndReclaims)
{
    TwoBitProtocol p(config());
    p.access(0, 1, true, 11);  // dirty
    p.access(0, 2, false);     // clean, Present1
    p.access(0, 3, false);
    p.access(1, 3, false);     // Present*, two holders

    p.flushCache(0);

    EXPECT_EQ(p.cache(0).validCount(), 0u);
    EXPECT_EQ(p.memValue(1), 11u);
    EXPECT_EQ(p.globalState(1), GlobalState::Absent);
    EXPECT_EQ(p.globalState(2), GlobalState::Absent);
    // Block 3 still held by cache 1: Present* (cannot count down).
    EXPECT_EQ(p.globalState(3), GlobalState::PresentStar);
    p.checkInvariants();

    // Post-flush accesses behave like a cold cache.
    EXPECT_EQ(p.access(0, 1, false), 11u);
}

TEST(FlushCache, FullMapClearsExactBits)
{
    FullMapProtocol p(config());
    p.access(0, 1, true, 7);
    p.access(0, 2, false);
    p.access(2, 2, false);

    p.flushCache(0);

    EXPECT_EQ(p.cache(0).validCount(), 0u);
    EXPECT_EQ(p.memValue(1), 7u);
    const FullMapEntry *e = p.entry(2);
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(e->present.test(0));
    EXPECT_TRUE(e->present.test(2));
    p.checkInvariants();
}

TEST(FlushCache, MigrationWithFlushKeepsSoftwareSchemeSound)
{
    // §2.2: "this software solution is not sufficient by itself if we
    // allow process migration" — unless caches are flushed at the
    // switch.  Simulate: proc 0 runs a task, flush, proc 1 resumes it.
    ProtoConfig cfg = config();
    auto p = makeProtocol("two_bit", cfg);
    const Addr a = privateRegionBase(0);
    p->access(0, a, true, 42);
    p->flushCache(0);
    // The migrated task reads its data from memory on processor 1.
    EXPECT_EQ(p->access(1, a, false), 42u);
    EXPECT_EQ(p->lastDelta().memReads, 1u);
    EXPECT_EQ(p->lastDelta().broadcasts, 0u);
}

TEST(FlushCache, UnsupportedProtocolsFatal)
{
    auto p = makeProtocol("illinois", config());
    EXPECT_DEATH(p->flushCache(0), "does not implement flushCache");
}

TEST(FlushCache, FlushOfEmptyCacheIsFree)
{
    TwoBitProtocol p(config());
    const AccessCounts before = p.counts();
    p.flushCache(2);
    const AccessCounts d = p.counts() - before;
    EXPECT_EQ(d.ejects, 0u);
    EXPECT_EQ(d.netMessages, 0u);
}

} // namespace
} // namespace dir2b
