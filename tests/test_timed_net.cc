/**
 * @file
 * Unit tests for the timed network: latency, per-(src,dst) FIFO
 * ordering (the property every protocol proof in timed/ relies on),
 * broadcast fan-out and destination-port contention.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "timed/timed_net.hh"

namespace dir2b
{
namespace
{

Message
msg(MsgKind kind, Addr a)
{
    Message m;
    m.kind = kind;
    m.addr = a;
    return m;
}

TEST(TimedNetwork, DeliversAfterLatency)
{
    EventQueue eq;
    TimedNetwork net(eq, 2, 7, NetKind::Ideal);
    Tick deliveredAt = 0;
    net.connect(1, [&](unsigned, const Message &) {
        deliveredAt = eq.now();
    });
    net.send(0, 1, msg(MsgKind::Request, 1));
    eq.run();
    EXPECT_EQ(deliveredAt, 7u);
    EXPECT_EQ(net.messagesSent(), 1u);
}

TEST(TimedNetwork, FifoPerSourceDestinationPair)
{
    EventQueue eq;
    TimedNetwork net(eq, 2, 4, NetKind::Ideal);
    std::vector<Addr> order;
    net.connect(1, [&](unsigned, const Message &m) {
        order.push_back(m.addr);
    });
    // Sent at the same tick and at staggered ticks: arrival order must
    // equal send order.
    for (Addr a = 0; a < 5; ++a)
        net.send(0, 1, msg(MsgKind::Request, a));
    eq.scheduleAt(2, [&] {
        for (Addr a = 5; a < 8; ++a)
            net.send(0, 1, msg(MsgKind::Request, a));
    });
    eq.run();
    ASSERT_EQ(order.size(), 8u);
    for (Addr a = 0; a < 8; ++a)
        EXPECT_EQ(order[static_cast<std::size_t>(a)], a);
}

TEST(TimedNetwork, FifoHoldsUnderPortContention)
{
    EventQueue eq;
    TimedNetwork net(eq, 3, 4, NetKind::Crossbar);
    std::vector<std::pair<unsigned, Addr>> order;
    std::vector<Tick> times;
    net.connect(2, [&](unsigned src, const Message &m) {
        order.emplace_back(src, m.addr);
        times.push_back(eq.now());
    });
    // Two sources blast the same destination at tick 0.
    for (Addr a = 0; a < 4; ++a) {
        net.send(0, 2, msg(MsgKind::Request, 100 + a));
        net.send(1, 2, msg(MsgKind::Request, 200 + a));
    }
    eq.run();
    ASSERT_EQ(order.size(), 8u);
    // One delivery per cycle at the port.
    for (std::size_t i = 1; i < times.size(); ++i)
        EXPECT_GT(times[i], times[i - 1]);
    // Per-source order preserved.
    Addr last0 = 99;
    Addr last1 = 199;
    for (const auto &[src, a] : order) {
        if (src == 0) {
            EXPECT_EQ(a, last0 + 1);
            last0 = a;
        } else {
            EXPECT_EQ(a, last1 + 1);
            last1 = a;
        }
    }
    EXPECT_GT(net.portWaitCycles(), 0u);
}

TEST(TimedNetwork, BroadcastFansOutToAllListed)
{
    EventQueue eq;
    TimedNetwork net(eq, 4, 3, NetKind::Ideal);
    std::vector<unsigned> hit;
    for (unsigned ep = 0; ep < 3; ++ep) {
        net.connect(ep, [&hit, ep](unsigned, const Message &m) {
            EXPECT_TRUE(m.broadcast);
            hit.push_back(ep);
        });
    }
    net.connect(3, [](unsigned, const Message &) { FAIL(); });
    net.broadcast(3, {0, 1, 2}, msg(MsgKind::BroadInv, 9));
    eq.run();
    EXPECT_EQ(hit.size(), 3u);
    EXPECT_EQ(net.broadcastsSent(), 1u);
    EXPECT_EQ(net.messagesSent(), 3u);
}

TEST(TimedNetwork, BusBroadcastIsOneTransaction)
{
    EventQueue eq;
    TimedNetwork net(eq, 4, 3, NetKind::Bus);
    std::vector<Tick> arrivals;
    for (unsigned ep = 0; ep < 3; ++ep) {
        net.connect(ep, [&](unsigned, const Message &) {
            arrivals.push_back(eq.now());
        });
    }
    net.connect(3, [](unsigned, const Message &) {});
    net.broadcast(3, {0, 1, 2}, msg(MsgKind::BroadInv, 9));
    eq.run();
    // Everyone hears the same bus slot.
    ASSERT_EQ(arrivals.size(), 3u);
    EXPECT_EQ(arrivals[0], arrivals[1]);
    EXPECT_EQ(arrivals[1], arrivals[2]);
    EXPECT_EQ(net.busBusyCycles(), 1u);
}

TEST(TimedNetwork, BusSerialisesEverything)
{
    EventQueue eq;
    TimedNetwork net(eq, 3, 2, NetKind::Bus);
    std::vector<Tick> arrivals;
    net.connect(2, [&](unsigned, const Message &) {
        arrivals.push_back(eq.now());
    });
    net.connect(0, [](unsigned, const Message &) {});
    net.connect(1, [](unsigned, const Message &) {});
    // Different sources, different destinations: still one shared
    // medium, so deliveries are strictly staggered.
    net.send(0, 2, msg(MsgKind::Request, 1));
    net.send(1, 2, msg(MsgKind::Request, 2));
    net.send(0, 2, msg(MsgKind::Request, 3));
    eq.run();
    ASSERT_EQ(arrivals.size(), 3u);
    EXPECT_LT(arrivals[0], arrivals[1]);
    EXPECT_LT(arrivals[1], arrivals[2]);
    EXPECT_GT(net.portWaitCycles(), 0u);
}

TEST(TimedNetwork, CountsDataMessagesSeparately)
{
    EventQueue eq;
    TimedNetwork net(eq, 2, 1, NetKind::Ideal);
    net.connect(1, [](unsigned, const Message &) {});
    net.send(0, 1, msg(MsgKind::Request, 1));
    net.send(0, 1, msg(MsgKind::GetData, 1));
    net.send(0, 1, msg(MsgKind::PutData, 1));
    eq.run();
    EXPECT_EQ(net.messagesSent(), 3u);
    EXPECT_EQ(net.dataMessages(), 2u);
}

TEST(MessageToString, CoversEveryKindAndPayload)
{
    Message m;
    m.kind = MsgKind::Request;
    m.proc = 3;
    m.addr = 42;
    m.rw = RW::Write;
    EXPECT_EQ(toString(m), "REQUEST(proc=3,a=42,write)");

    m.kind = MsgKind::MGranted;
    m.granted = true;
    EXPECT_NE(toString(m).find("yes"), std::string::npos);

    m.kind = MsgKind::GetData;
    m.data = 77;
    EXPECT_NE(toString(m).find("data=77"), std::string::npos);

    m.kind = MsgKind::BroadQuery;
    m.rw = RW::Read;
    m.broadcast = true;
    const std::string s = toString(m);
    EXPECT_NE(s.find("BROADQUERY"), std::string::npos);
    EXPECT_NE(s.find("read"), std::string::npos);
    EXPECT_NE(s.find("bcast"), std::string::npos);

    for (MsgKind kind :
         {MsgKind::Request, MsgKind::MRequest, MsgKind::Eject,
          MsgKind::BroadInv, MsgKind::BroadQuery, MsgKind::MGranted,
          MsgKind::GetData, MsgKind::PutData, MsgKind::Invalidate,
          MsgKind::Purge, MsgKind::InvAck}) {
        EXPECT_FALSE(toString(kind).empty());
    }
}

} // namespace
} // namespace dir2b
