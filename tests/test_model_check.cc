/**
 * @file
 * Exhaustive explorer acceptance tests (ctest label: model_check).
 *
 * The tentpole bar: every factory protocol (plus the no-Present1
 * ablation) explored to closure at (2 caches x 1 block) and (2 caches
 * x 2 blocks) with zero invariant violations.  On top of that the
 * suite pins the engine's own machinery — the search must close, the
 * per-access §4.2 command-count check must actually fire on the plain
 * two-bit scheme, and a grid run must be deterministic regardless of
 * worker-pool width.
 */

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/explorer.hh"
#include "proto/protocol_factory.hh"
#include "report/report.hh"

#ifndef DIR2B_FIXTURES
#define DIR2B_FIXTURES "tests/fixtures"
#endif

namespace dir2b
{
namespace
{

std::vector<std::string>
allCheckedProtocols()
{
    std::vector<std::string> names = protocolNames();
    names.push_back("two_bit_nop1");
    return names;
}

ExplorerConfig
cell(const std::string &proto, std::size_t blocks)
{
    ExplorerConfig cfg;
    cfg.protocol = proto;
    cfg.numProcs = 2;
    cfg.numBlocks = blocks;
    cfg.sets = 2;
    cfg.ways = 2; // capacity 4 >= blocks: no hidden replacement state
    return cfg;
}

TEST(ModelCheck, AllProtocolsTwoProcsOneBlock)
{
    for (const auto &name : allCheckedProtocols()) {
        const ExploreResult r = explore(cell(name, 1));
        EXPECT_TRUE(r.closed) << name;
        // The software scheme classifies the multi-writer explorer
        // blocks non-cacheable, so its reachable set is the single
        // memory-only state; every caching scheme must move.
        if (name == "software")
            EXPECT_EQ(r.statesVisited, 1u);
        else
            EXPECT_GT(r.statesVisited, 1u) << name;
        EXPECT_GT(r.transitionsChecked, 0u) << name;
        EXPECT_TRUE(r.violations.empty())
            << name << ": " << r.violations.front().kind << " — "
            << r.violations.front().detail;
    }
}

TEST(ModelCheck, AllProtocolsTwoProcsTwoBlocks)
{
    for (const auto &name : allCheckedProtocols()) {
        const ExploreResult r = explore(cell(name, 2));
        EXPECT_TRUE(r.closed) << name;
        EXPECT_TRUE(r.violations.empty())
            << name << ": " << r.violations.front().kind << " — "
            << r.violations.front().detail;
    }
}

TEST(ModelCheck, ThreeProcsOneBlockCoreSchemes)
{
    // A third processor is what makes Present* with two remote holders
    // reachable; run it for the paper's scheme and the two directory
    // baselines it is measured against.
    for (const std::string name :
         {"two_bit", "two_bit_nop1", "two_bit_wt", "full_map",
          "dup_dir"}) {
        ExplorerConfig cfg = cell(name, 1);
        cfg.numProcs = 3;
        const ExploreResult r = explore(cfg);
        EXPECT_TRUE(r.closed) << name;
        EXPECT_TRUE(r.violations.empty())
            << name << ": " << r.violations.front().detail;
    }
}

TEST(ModelCheck, ReplacementPressureCell)
{
    // One set, one way: every second block reference evicts the other
    // block, exercising the §3.2.1 replacement transitions.  ways == 1
    // keeps victim selection deterministic, so the signature search
    // stays sound.
    for (const auto &name : allCheckedProtocols()) {
        ExplorerConfig cfg = cell(name, 2);
        cfg.sets = 1;
        cfg.ways = 1;
        const ExploreResult r = explore(cfg);
        EXPECT_TRUE(r.closed) << name;
        EXPECT_TRUE(r.violations.empty())
            << name << ": " << r.violations.front().detail;
    }
}

TEST(ModelCheck, FlushActionCoversEject)
{
    // Schemes implementing flushCache get the §2.2 eject action in
    // their alphabet; the state count must strictly grow versus the
    // flush-free alphabet (flush reaches Absent-with-history states).
    ExplorerConfig with = cell("two_bit", 1);
    ExplorerConfig without = with;
    without.includeFlush = false;
    ASSERT_TRUE(protocolSupportsFlush("two_bit"));
    ASSERT_TRUE(protocolSupportsFlush("dup_dir"));     // inherited
    ASSERT_FALSE(protocolSupportsFlush("illinois"));
    ASSERT_FALSE(protocolSupportsFlush("software"));
    const ExploreResult rw = explore(with);
    const ExploreResult ro = explore(without);
    EXPECT_TRUE(rw.closed);
    EXPECT_TRUE(ro.closed);
    EXPECT_TRUE(rw.violations.empty());
    EXPECT_GE(rw.statesVisited, ro.statesVisited);
    EXPECT_GT(rw.transitionsChecked, ro.transitionsChecked);
}

TEST(ModelCheck, SearchClosesWellInsideBounds)
{
    // The abstraction is what keeps the reachable set finite; a bug
    // that leaks concrete values into the signature would blow these
    // numbers up.  Generous ceilings, but orders of magnitude below
    // the safety valves.
    ExplorerConfig cfg = cell("two_bit", 2);
    const ExploreResult r = explore(cfg);
    EXPECT_TRUE(r.closed);
    EXPECT_LT(r.statesVisited, 20000u);
    EXPECT_LE(r.depthReached, cfg.maxDepth);
}

TEST(ModelCheck, DepthBoundReportsUnclosed)
{
    ExplorerConfig cfg = cell("two_bit", 2);
    cfg.maxDepth = 1;
    const ExploreResult r = explore(cfg);
    EXPECT_FALSE(r.closed);
    EXPECT_TRUE(r.violations.empty());
    EXPECT_EQ(r.depthReached, 1u);
}

TEST(ModelCheck, DefaultGridMeetsAcceptanceBar)
{
    // The grid the model_check tool runs must include both acceptance
    // configurations for every checked protocol.
    const auto grid = defaultExplorerGrid();
    for (const auto &name : allCheckedProtocols()) {
        for (std::size_t blocks : {std::size_t{1}, std::size_t{2}}) {
            const bool present =
                std::any_of(grid.begin(), grid.end(),
                            [&](const ExplorerConfig &c) {
                                return c.protocol == name &&
                                       c.numProcs == 2 &&
                                       c.numBlocks == blocks;
                            });
            EXPECT_TRUE(present)
                << name << " x " << blocks << " block(s) missing";
        }
    }
}

/** The default-grid cells of one protocol: the two acceptance cells
 *  plus the direct-mapped replacement-pressure cell.  Row coverage is
 *  defined over their UNION — evict rows only fire in the tight
 *  cell. */
std::vector<ExplorerConfig>
tableGridFor(const std::string &name)
{
    ExplorerConfig tight = cell(name, 2);
    tight.sets = 1;
    tight.ways = 1;
    return {cell(name, 1), cell(name, 2), tight};
}

TEST(ModelCheck, TableProtocolsHaveNoUnreachableRows)
{
    // The coverage regression of the table engine: across the default
    // grid every row of every shipped table fires at least once.  A
    // row nothing can reach is either dead weight or a transition the
    // explorer's action alphabet can no longer provoke — both are
    // bugs.
    for (const std::string name :
         {"two_bit_table", "full_map_table", "moesi"}) {
        const auto grid = tableGridFor(name);
        const auto results = exploreGrid(grid);
        ASSERT_EQ(results.size(), grid.size());
        std::vector<std::uint64_t> fired;
        for (std::size_t i = 0; i < results.size(); ++i) {
            const ExploreResult &r = results[i];
            EXPECT_TRUE(r.closed) << name << " cell " << i;
            EXPECT_TRUE(r.violations.empty())
                << name << " cell " << i << ": "
                << r.violations.front().detail;
            ASSERT_GT(r.totalRows, 0u) << name;
            fired.resize(r.totalRows, 0);
            for (std::size_t row = 0; row < r.totalRows; ++row)
                fired[row] += r.rowsFired[row];
        }
        for (std::size_t row = 0; row < fired.size(); ++row)
            EXPECT_GT(fired[row], 0u)
                << name << ": row " << row
                << " never fired across the default grid";
    }
}

TEST(ModelCheck, HandWrittenProtocolsReportNoRowCoverage)
{
    const ExploreResult r = explore(cell("two_bit", 1));
    EXPECT_EQ(r.totalRows, 0u);
    EXPECT_TRUE(r.rowsFired.empty());
    EXPECT_TRUE(r.unreachableRows.empty());
}

TEST(ModelCheck, MoesiFixtureMatchesFreshExploration)
{
    // tests/fixtures/moesi.check is the committed model-check artifact
    // of the MOESI table (regenerate with
    //   model_check --protocol moesi --no-fuzz --json ...).
    // A fresh exploration must reproduce it cell for cell; drift means
    // the table, the explorer, or the abstraction changed and the
    // fixture needs a deliberate update.
    const Json fix = readArtifact(DIR2B_FIXTURES "/moesi.check");
    ASSERT_TRUE(fix.contains("cells"));
    ASSERT_TRUE(fix.contains("summary"));

    const Json &summary = fix.at("summary");
    EXPECT_TRUE(summary.at("ok").asBool());
    EXPECT_EQ(summary.at("explore_violations").asUint(), 0u);
    EXPECT_EQ(summary.at("table_dead_rows").asUint(), 0u);
    EXPECT_EQ(summary.at("table_coverage")
                  .at("moesi")
                  .at("unreachable_rows")
                  .asUint(),
              0u);

    const auto grid = tableGridFor("moesi");
    const auto fresh = exploreGrid(grid);
    const auto &cells = fix.at("cells").elements();
    ASSERT_EQ(cells.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const Json &c = cells[i];
        ASSERT_EQ(c.at("section").asString(), "explore");
        EXPECT_EQ(c.at("protocol").asString(), "moesi");
        EXPECT_EQ(c.at("states").asUint(), fresh[i].statesVisited)
            << "cell " << i;
        EXPECT_EQ(c.at("transitions").asUint(),
                  fresh[i].transitionsChecked)
            << "cell " << i;
        EXPECT_EQ(c.at("closed").asBool(), fresh[i].closed);
        EXPECT_EQ(c.at("violations").asUint(), 0u);
        EXPECT_EQ(c.at("total_rows").asUint(), fresh[i].totalRows);
        EXPECT_EQ(c.at("unreachable_rows").asUint(),
                  fresh[i].unreachableRows.size());
    }
}

TEST(ModelCheck, GridResultsIndependentOfThreadCount)
{
    // Grid dispatch goes through the shared pool; cells are
    // deterministic, so the per-cell numbers must be identical at any
    // width.
    std::vector<ExplorerConfig> grid = {
        cell("two_bit", 1), cell("two_bit", 2), cell("full_map", 1),
        cell("illinois", 2), cell("two_bit_wt", 2),
    };
    const auto serial = exploreGrid(grid, 1);
    const auto wide = exploreGrid(grid, 4);
    ASSERT_EQ(serial.size(), grid.size());
    ASSERT_EQ(wide.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(serial[i].statesVisited, wide[i].statesVisited) << i;
        EXPECT_EQ(serial[i].transitionsChecked,
                  wide[i].transitionsChecked)
            << i;
        EXPECT_EQ(serial[i].closed, wide[i].closed) << i;
        EXPECT_EQ(serial[i].violations.empty(),
                  wide[i].violations.empty())
            << i;
    }
}

TEST(ModelCheck, ActionToStringIsReadable)
{
    CheckAction a;
    a.kind = CheckAction::Kind::Store;
    a.proc = 1;
    a.addr = 3;
    EXPECT_EQ(toString(a), "P1 STORE 3");
    a.kind = CheckAction::Kind::Flush;
    EXPECT_EQ(toString(a), "P1 FLUSH");
}

} // namespace
} // namespace dir2b
