/**
 * @file
 * Tests for the hot-path storage primitives: FlatMap/FlatSet (open
 * addressing with backward-shift deletion), PagedArray, and the
 * InlineFunction event callback.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/flat_map.hh"
#include "util/inline_function.hh"
#include "util/paged_array.hh"
#include "util/random.hh"

namespace dir2b
{
namespace
{

TEST(FlatMap, InsertFindErase)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(7), m.end());

    m[7] = 70;
    m[8] = 80;
    EXPECT_EQ(m.size(), 2u);
    EXPECT_EQ(m.find(7)->second, 70);
    EXPECT_EQ(m.find(8)->second, 80);
    EXPECT_EQ(m.count(9), 0u);

    m[7] = 71;
    EXPECT_EQ(m.size(), 2u);
    EXPECT_EQ(m.find(7)->second, 71);

    EXPECT_TRUE(m.erase(7));
    EXPECT_FALSE(m.erase(7));
    EXPECT_EQ(m.find(7), m.end());
    EXPECT_EQ(m.find(8)->second, 80);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, TryEmplaceNonDefaultConstructible)
{
    struct NoDefault
    {
        explicit NoDefault(int x) : v(x) {}
        int v;
    };
    FlatMap<std::uint64_t, NoDefault> m;
    auto [it, fresh] = m.tryEmplace(3, 42);
    EXPECT_TRUE(fresh);
    EXPECT_EQ(it->second.v, 42);
    auto [it2, fresh2] = m.tryEmplace(3, 99);
    EXPECT_FALSE(fresh2);
    EXPECT_EQ(it2->second.v, 42);
}

TEST(FlatMap, EraseByIterator)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 10; ++k)
        m[k] = static_cast<int>(k);
    auto it = m.find(4);
    ASSERT_NE(it, m.end());
    m.erase(it);
    EXPECT_EQ(m.size(), 9u);
    EXPECT_EQ(m.find(4), m.end());
    for (std::uint64_t k = 0; k < 10; ++k) {
        if (k != 4)
            EXPECT_EQ(m.find(k)->second, static_cast<int>(k));
    }
}

TEST(FlatMap, IterationVisitsEveryEntryOnce)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    for (std::uint64_t k = 0; k < 100; ++k)
        m[k * 97 + 13] = k;
    std::uint64_t visited = 0;
    std::uint64_t keySum = 0;
    for (const auto &[k, v] : m) {
        ++visited;
        keySum += k;
        EXPECT_EQ((k - 13) / 97, v);
    }
    EXPECT_EQ(visited, 100u);
    std::uint64_t expect = 0;
    for (std::uint64_t k = 0; k < 100; ++k)
        expect += k * 97 + 13;
    EXPECT_EQ(keySum, expect);
}

TEST(FlatMap, DifferentialAgainstUnorderedMap)
{
    // Randomised insert/overwrite/erase mix over a small key space to
    // force dense clusters, wraparound probes, and backward shifts.
    FlatMap<std::uint64_t, std::uint64_t> m;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    Rng rng(0xf1a7f1a7ULL);
    for (int step = 0; step < 20000; ++step) {
        const std::uint64_t key = rng.range(256);
        switch (rng.range(3)) {
          case 0:
            m[key] = static_cast<std::uint64_t>(step);
            ref[key] = static_cast<std::uint64_t>(step);
            break;
          case 1:
            EXPECT_EQ(m.erase(key), ref.erase(key) > 0);
            break;
          case 2: {
            auto it = m.find(key);
            auto rit = ref.find(key);
            ASSERT_EQ(it == m.end(), rit == ref.end());
            if (rit != ref.end())
                EXPECT_EQ(it->second, rit->second);
            break;
          }
        }
        ASSERT_EQ(m.size(), ref.size());
    }
    for (const auto &[k, v] : ref)
        EXPECT_EQ(m.find(k)->second, v);
}

TEST(FlatMap, MoveSemantics)
{
    FlatMap<std::uint64_t, int> a;
    a[1] = 10;
    a[2] = 20;
    FlatMap<std::uint64_t, int> b(std::move(a));
    EXPECT_EQ(b.size(), 2u);
    EXPECT_EQ(b.find(1)->second, 10);
    EXPECT_TRUE(a.empty());

    FlatMap<std::uint64_t, int> c;
    c[9] = 90;
    c = std::move(b);
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c.find(2)->second, 20);
}

TEST(FlatMap, ClearAndReuse)
{
    FlatMap<std::uint64_t, std::string> m;
    for (std::uint64_t k = 0; k < 50; ++k)
        m.tryEmplace(k, "v" + std::to_string(k));
    m.clear();
    EXPECT_TRUE(m.empty());
    m.tryEmplace(3, "fresh");
    EXPECT_EQ(m.find(3)->second, "fresh");
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatSet, InsertEraseContains)
{
    FlatSet<std::uint64_t> s;
    s.insert(5);
    s.insert(5);
    s.insert(6);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_TRUE(s.contains(5));
    EXPECT_EQ(s.count(6), 1u);
    EXPECT_FALSE(s.contains(7));
    EXPECT_TRUE(s.erase(5));
    EXPECT_FALSE(s.contains(5));
    EXPECT_EQ(s.size(), 1u);
}

TEST(PagedArray, SparseDefaultAndMaterialisation)
{
    PagedArray<std::uint32_t, 8> arr; // 256 elements per page
    EXPECT_EQ(arr.get(12345), 0u);
    EXPECT_EQ(arr.pageCount(), 0u);

    arr.ref(12345) = 7;
    EXPECT_EQ(arr.get(12345), 7u);
    EXPECT_EQ(arr.pageCount(), 1u);

    // Same page: no new materialisation; neighbours still default.
    arr.ref(12346) = 8;
    EXPECT_EQ(arr.pageCount(), 1u);
    EXPECT_EQ(arr.get(12344), 0u);

    // Distant index: second page.
    arr.ref(1u << 20) = 9;
    EXPECT_EQ(arr.pageCount(), 2u);
    EXPECT_EQ(arr.get(12345), 7u);
    EXPECT_EQ(arr.get(1u << 20), 9u);
}

TEST(PagedArray, ManyPagesStress)
{
    PagedArray<std::uint64_t, 4> arr; // tiny 16-element pages
    for (std::uint64_t i = 0; i < 4096; i += 3)
        arr.ref(i) = i * 2 + 1;
    for (std::uint64_t i = 0; i < 4096; ++i) {
        if (i % 3 == 0)
            EXPECT_EQ(arr.get(i), i * 2 + 1);
        else
            EXPECT_EQ(arr.get(i), 0u);
    }
}

TEST(InlineFunction, InvokesAndMoves)
{
    int hits = 0;
    InlineFunction<64> f([&hits] { ++hits; });
    ASSERT_TRUE(static_cast<bool>(f));
    f();
    EXPECT_EQ(hits, 1);

    InlineFunction<64> g(std::move(f));
    EXPECT_FALSE(static_cast<bool>(f));
    g();
    EXPECT_EQ(hits, 2);

    g.reset();
    EXPECT_FALSE(static_cast<bool>(g));
}

/** Callable that counts copies and moves of itself. */
struct CopyCounter
{
    int *copies;
    int *moves;
    CopyCounter(int *c, int *m) : copies(c), moves(m) {}
    CopyCounter(const CopyCounter &o) : copies(o.copies), moves(o.moves)
    {
        ++*copies;
    }
    CopyCounter(CopyCounter &&o) noexcept
        : copies(o.copies), moves(o.moves)
    {
        ++*moves;
    }
    void operator()() {}
};

TEST(InlineFunction, NeverCopiesTheCallable)
{
    int copies = 0;
    int moves = 0;
    CopyCounter c(&copies, &moves);
    InlineFunction<64> f(std::move(c));
    InlineFunction<64> g(std::move(f));
    g();
    EXPECT_EQ(copies, 0);
    EXPECT_GE(moves, 1);
}

TEST(InlineFunction, HeapFallbackForOversizedCaptures)
{
    const std::uint64_t before = InlineFunction<32>::heapFallbacks();
    char big[128] = {1};
    int out = 0;
    InlineFunction<32> f([big, &out] { out = big[0]; });
    EXPECT_EQ(InlineFunction<32>::heapFallbacks(), before + 1);
    InlineFunction<32> g(std::move(f));
    g();
    EXPECT_EQ(out, 1);

    // Small captures stay inline.
    const std::uint64_t mid = InlineFunction<32>::heapFallbacks();
    InlineFunction<32> h([&out] { out = 2; });
    h();
    EXPECT_EQ(out, 2);
    EXPECT_EQ(InlineFunction<32>::heapFallbacks(), mid);
}

} // namespace
} // namespace dir2b
