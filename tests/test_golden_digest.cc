/**
 * @file
 * Golden-digest determinism regression for the timed tier.
 *
 * Every timed run must be bit-for-bit deterministic: same seed, same
 * config => same final tick, same event count, same per-component
 * statistics.  This test pins that property to checked-in digests so
 * that any rewrite of the event kernel, the network, or the
 * controllers that silently changes scheduling order (or event count)
 * fails loudly — the digests below were captured from the
 * priority-queue kernel that shipped before the timing-wheel rewrite
 * and must never drift.
 *
 * The digest folds only integer statistics (no floating point) via
 * FNV-1a, so it is stable across platforms and optimisation levels.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "timed/sharded_system.hh"
#include "timed/timed_system.hh"
#include "trace/synthetic.hh"

namespace dir2b
{
namespace
{

std::uint64_t
fold(std::uint64_t h, std::uint64_t x)
{
    // FNV-1a over the eight bytes of x.
    for (int i = 0; i < 8; ++i) {
        h ^= (x >> (8 * i)) & 0xff;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t digestStats(const TimedRunResult &r,
                          const TwoBitCacheCtrl *const *caches,
                          const TimedDirCtrl *const *dirs,
                          const TimedConfig &cfg);

/**
 * Run one fixed-seed timed configuration and digest its statistics.
 * shards == 1 runs the serial TimedSystem; shards > 1 runs the
 * ShardedTimedSystem, which must produce the SAME digest (the sharded
 * engine's determinism contract is bit-identity with serial).
 */
std::uint64_t
digestRun(TimedProto proto, bool perBlock, NetKind net,
          unsigned shards = 1, std::uint64_t dirRamBudget = 0,
          bool fastForward = true)
{
    TimedConfig cfg;
    cfg.protocol = proto;
    cfg.numProcs = 4;
    cfg.numModules = 2;
    cfg.cacheGeom.sets = 16;
    cfg.cacheGeom.ways = 2;
    cfg.perBlockConcurrency = perBlock;
    cfg.network = net;
    cfg.dirRamBudget = dirRamBudget;
    cfg.fastForward = fastForward;

    SyntheticConfig scfg;
    scfg.numProcs = 4;
    scfg.q = 0.2;
    scfg.w = 0.3;
    scfg.sharedBlocks = 8;
    scfg.privateBlocks = 64;
    scfg.hotBlocks = 16;
    scfg.seed = 0xd16e57;
    SyntheticStream stream(scfg);
    const ProcSource src = [&](ProcId p) -> std::optional<MemRef> {
        return stream.nextFor(p);
    };

    TimedRunResult r;
    const TwoBitCacheCtrl *cacheTab[4] = {};
    const TimedDirCtrl *dirTab[2] = {};
    if (shards <= 1) {
        TimedSystem sys(cfg);
        r = sys.run(src, 400);
        for (ProcId p = 0; p < cfg.numProcs; ++p)
            cacheTab[p] = &sys.cacheCtrl(p);
        for (ModuleId m = 0; m < cfg.numModules; ++m)
            dirTab[m] = &sys.dirCtrl(m);
        return digestStats(r, cacheTab, dirTab, cfg);
    }
    ShardedTimedSystem sys(cfg, shards);
    r = sys.run(src, 400);
    for (ProcId p = 0; p < cfg.numProcs; ++p)
        cacheTab[p] = &sys.cacheCtrl(p);
    for (ModuleId m = 0; m < cfg.numModules; ++m)
        dirTab[m] = &sys.dirCtrl(m);
    return digestStats(r, cacheTab, dirTab, cfg);
}

std::uint64_t
digestStats(const TimedRunResult &r, const TwoBitCacheCtrl *const *caches,
            const TimedDirCtrl *const *dirs, const TimedConfig &cfg)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    h = fold(h, r.finalTick);
    h = fold(h, r.refsCompleted);
    h = fold(h, r.eventsExecuted);
    h = fold(h, r.stolenCycles);
    h = fold(h, r.mrequestConversions);
    h = fold(h, r.mreqDeleted);
    h = fold(h, r.putsConsumed);
    h = fold(h, r.putsAwaited);
    h = fold(h, r.grantsFalse);
    h = fold(h, r.netMessages);
    h = fold(h, r.broadcasts);
    h = fold(h, r.netWaitCycles);
    h = fold(h, r.readsChecked);
    h = fold(h, r.writesRecorded);

    for (ProcId p = 0; p < cfg.numProcs; ++p) {
        const auto &s = caches[p]->stats();
        h = fold(h, s.readHits.value());
        h = fold(h, s.writeHits.value());
        h = fold(h, s.readMisses.value());
        h = fold(h, s.writeMisses.value());
        h = fold(h, s.mrequests.value());
        h = fold(h, s.staleGrantsIgnored.value());
        h = fold(h, s.invalidationsApplied.value());
        h = fold(h, s.queriesAnswered.value());
        h = fold(h, s.writebacksSent.value());
    }
    for (ModuleId m = 0; m < cfg.numModules; ++m) {
        const auto &s = dirs[m]->stats();
        h = fold(h, s.requests.value());
        h = fold(h, s.mrequests.value());
        h = fold(h, s.ejectsData.value());
        h = fold(h, s.ejectsIgnored.value());
        h = fold(h, s.ejectsApplied.value());
        h = fold(h, s.broadInvs.value());
        h = fold(h, s.broadQueries.value());
        h = fold(h, s.directedInvs.value());
        h = fold(h, s.purges.value());
        h = fold(h, s.grantsTrue.value());
        h = fold(h, s.grantsFalse.value());
    }
    return h;
}

struct GoldenCase
{
    const char *name;
    TimedProto proto;
    bool perBlock;
    NetKind net;
    std::uint64_t digest;
};

// Captured from the pre-rewrite (priority-queue) kernel; see file
// header.  Regenerate ONLY for an intentional protocol change, never
// for a kernel/storage optimisation.
const GoldenCase goldenCases[] = {
    {"two_bit_serial_ideal", TimedProto::TwoBit, false, NetKind::Ideal,
     0x26d8969a443767abULL},
    {"two_bit_perblock_crossbar", TimedProto::TwoBit, true,
     NetKind::Crossbar, 0x51bb7ead2ab4e2e2ULL},
    {"two_bit_serial_bus", TimedProto::TwoBit, false, NetKind::Bus,
     0x9fc95fb8e06d85f1ULL},
    {"full_map_serial_ideal", TimedProto::FullMap, false, NetKind::Ideal,
     0xffc915f80b00b7ccULL},
    {"full_map_perblock_crossbar", TimedProto::FullMap, true,
     NetKind::Crossbar, 0x5994774b5ae7d0dbULL},
    {"yen_fu_serial_ideal", TimedProto::YenFu, false, NetKind::Ideal,
     0xfe831cf225b0e715ULL},
    {"yen_fu_perblock_crossbar", TimedProto::YenFu, true,
     NetKind::Crossbar, 0x0d92ed141c55caf7ULL},
};

TEST(GoldenDigest, TimedTierMatchesCheckedInDigests)
{
    for (const auto &c : goldenCases) {
        const std::uint64_t got = digestRun(c.proto, c.perBlock, c.net);
        EXPECT_EQ(got, c.digest)
            << c.name << ": digest 0x" << std::hex << got
            << " != golden 0x" << c.digest;
    }
}

TEST(GoldenDigest, RepeatedRunsAreIdentical)
{
    const auto a =
        digestRun(TimedProto::TwoBit, true, NetKind::Crossbar);
    const auto b =
        digestRun(TimedProto::TwoBit, true, NetKind::Crossbar);
    EXPECT_EQ(a, b);
}

// The sharded engine's headline property: at --shards=4 every locked
// cross-scheme digest must still come out bit-identical — parallel
// decomposition is not allowed to perturb a single statistic.
TEST(GoldenDigest, ShardedRunsMatchCheckedInDigests)
{
    for (const auto &c : goldenCases) {
        const std::uint64_t got =
            digestRun(c.proto, c.perBlock, c.net, /*shards=*/4);
        EXPECT_EQ(got, c.digest)
            << c.name << " (shards=4): digest 0x" << std::hex << got
            << " != golden 0x" << c.digest;
    }
}

// The tiered directory store must be invisible to every statistic: a
// RAM budget of one 1 KiB page per module forces constant
// compress/evict/reload traffic through the cold (and, where
// available, disk) tiers, and every locked digest must still match —
// serial and sharded.
TEST(GoldenDigest, TinyDirBudgetMatchesCheckedInDigests)
{
    for (const auto &c : goldenCases) {
        const std::uint64_t serial = digestRun(
            c.proto, c.perBlock, c.net, 1, /*dirRamBudget=*/2048);
        EXPECT_EQ(serial, c.digest)
            << c.name << " (tiny budget): digest 0x" << std::hex
            << serial << " != golden 0x" << c.digest;
        const std::uint64_t sharded = digestRun(
            c.proto, c.perBlock, c.net, 4, /*dirRamBudget=*/2048);
        EXPECT_EQ(sharded, c.digest)
            << c.name << " (tiny budget, shards=4): digest 0x"
            << std::hex << sharded << " != golden 0x" << c.digest;
    }
}

// Quiescent-epoch fast-forward is a pure wall-clock optimisation of
// the sharded epoch loop; with it disabled the digests must be the
// same bits — this is the A/B knob BENCH_7 measures.
TEST(GoldenDigest, FastForwardOffMatchesCheckedInDigests)
{
    for (const auto &c : goldenCases) {
        const std::uint64_t got =
            digestRun(c.proto, c.perBlock, c.net, 4, 0,
                      /*fastForward=*/false);
        EXPECT_EQ(got, c.digest)
            << c.name << " (shards=4, no ff): digest 0x" << std::hex
            << got << " != golden 0x" << c.digest;
    }
}

} // namespace
} // namespace dir2b
