/**
 * @file
 * Cross-interpreter lockstep: the table-driven re-expressions of
 * two_bit and full_map must be bit-identical to the hand-written
 * originals — every access return value, every per-access counter
 * delta, the cumulative counters, per-processor received-command
 * counters, every cache line, and the final images.
 *
 * The pinned digests at the bottom freeze that behaviour the same way
 * test_golden_digest.cc freezes the timed tier: the functional-tier
 * digest of each table protocol on a fixed contended trace is a
 * checked-in constant, equal BY VALUE to the hand-written scheme's
 * digest for the two lockstep pairs.  Regenerate only for an
 * intentional protocol change.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "check/differ.hh"
#include "proto/protocol_factory.hh"

namespace dir2b
{
namespace
{

FuzzConfig
campaign()
{
    FuzzConfig fc;
    fc.numSeeds = 6;
    fc.refsPerSeed = 3000;
    fc.baseSeed = 0x7ab1e;
    return fc;
}

TEST(Lockstep, PairsCoverBothReexpressedSchemes)
{
    const auto pairs = lockstepPairs();
    ASSERT_EQ(pairs.size(), 2u);
    EXPECT_EQ(pairs[0].first, "two_bit");
    EXPECT_EQ(pairs[0].second, "two_bit_table");
    EXPECT_EQ(pairs[1].first, "full_map");
    EXPECT_EQ(pairs[1].second, "full_map_table");
}

TEST(Lockstep, TablesMatchHandWrittenOnFuzzTraces)
{
    const FuzzConfig fc = campaign();
    for (const auto &[ref, sub] : lockstepPairs()) {
        for (std::uint64_t seed = 0; seed < fc.numSeeds; ++seed) {
            LockstepConfig lc;
            lc.reference = ref;
            lc.subject = sub;
            const auto fail = lockstepTrace(lc, fuzzTrace(fc, seed));
            EXPECT_FALSE(fail)
                << sub << " seed " << seed << ": " << fail->kind
                << " at step " << fail->step << ": " << fail->detail;
        }
    }
}

TEST(Lockstep, FlushPathMatchesHandWrittenEvictions)
{
    const FuzzConfig fc = campaign();
    for (const auto &[ref, sub] : lockstepPairs()) {
        LockstepConfig lc;
        lc.reference = ref;
        lc.subject = sub;
        lc.flushEvery = 53;
        const auto fail = lockstepTrace(lc, fuzzTrace(fc, 0));
        EXPECT_FALSE(fail)
            << sub << " with flushes: " << fail->kind << " at step "
            << fail->step << ": " << fail->detail;
    }
}

TEST(Lockstep, CampaignEntryPointIsClean)
{
    const auto fail = lockstepFuzz(campaign());
    EXPECT_FALSE(fail) << fail->protocol << ": " << fail->kind << ": "
                       << fail->detail;
}

// Negative control: the comparator must actually detect divergence.
// two_bit broadcasts where full_map sends directed commands, so
// running them as a "pair" has to fail on a counter delta.
TEST(Lockstep, DetectsDivergingInterpreters)
{
    const FuzzConfig fc = campaign();
    LockstepConfig lc;
    lc.reference = "two_bit";
    lc.subject = "full_map";
    const auto fail = lockstepTrace(lc, fuzzTrace(fc, 0));
    ASSERT_TRUE(fail);
    EXPECT_EQ(fail->kind, "lockstep-delta");
}

std::uint64_t
fold(std::uint64_t h, std::uint64_t x)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (x >> (8 * i)) & 0xff;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Functional-tier digest: a fixed contended trace, FNV-1a over every
 *  counter field, the per-processor command counters, and the final
 *  per-block images. */
std::uint64_t
digestProtocol(const std::string &name)
{
    FuzzConfig fc;
    fc.numSeeds = 1;
    fc.refsPerSeed = 5000;
    fc.baseSeed = 0xd16257;
    const auto trace = fuzzTrace(fc, 0);

    ProtoConfig pc;
    pc.numProcs = fc.diff.numProcs;
    pc.numModules = fc.diff.numModules;
    pc.cacheGeom.sets = fc.diff.sets;
    pc.cacheGeom.ways = fc.diff.ways;
    const auto proto = makeProtocol(name, pc);

    Value nonce = 0;
    for (const MemRef &r : trace)
        proto->access(r.proc, r.addr, r.write, r.write ? ++nonce : 0);

    std::uint64_t h = 0xcbf29ce484222325ULL;
    AccessCounts::forEachField(
        proto->counts(),
        [&](const char *, std::uint64_t v) { h = fold(h, v); });
    for (ProcId p = 0; p < pc.numProcs; ++p) {
        h = fold(h, proto->cmdsReceivedBy(p));
        h = fold(h, proto->uselessReceivedBy(p));
        h = fold(h, proto->refsIssuedBy(p));
    }
    std::set<Addr> blocks;
    for (const MemRef &r : trace)
        blocks.insert(r.addr);
    for (const Addr a : blocks) {
        Value v = proto->memValue(a);
        for (ProcId p = 0; p < pc.numProcs; ++p) {
            const CacheLine *l = proto->cache(p).peek(a);
            if (l && l->valid() && l->dirty())
                v = l->value;
        }
        h = fold(h, v);
    }
    return h;
}

struct GoldenCase
{
    const char *table;      ///< table-driven scheme
    const char *reference;  ///< hand-written equal, or "" (moesi)
    std::uint64_t digest;
};

// Captured from the first table-engine build.  two_bit_table and
// full_map_table must also equal their hand-written references at
// runtime — the digest is pinned AND cross-checked.
const GoldenCase goldenCases[] = {
    {"two_bit_table", "two_bit", 0xfeb02f0eedaad5cdULL},
    {"full_map_table", "full_map", 0x694edcae1778aa2cULL},
    {"moesi", "", 0xc84e87d6891f3443ULL},
};

TEST(TableGoldenDigest, FunctionalDigestsMatchCheckedInValues)
{
    for (const auto &c : goldenCases) {
        const std::uint64_t got = digestProtocol(c.table);
        EXPECT_EQ(got, c.digest)
            << c.table << ": digest 0x" << std::hex << got
            << " != golden 0x" << c.digest;
        if (c.reference[0] != '\0') {
            EXPECT_EQ(digestProtocol(c.reference), got)
                << c.table << " diverged from " << c.reference;
        }
    }
}

} // namespace
} // namespace dir2b
