/**
 * @file
 * Directed regression for the §3.2.5 write-write race.
 *
 * Two caches hold clean copies of block a and both issue STORE(a) "at
 * the same time".  The paper's resolution: the controller grants one
 * MREQUEST, broadcasts BROADINV, and deletes the loser's queued
 * MREQUEST; the loser treats the incoming BROADINV as an implicit
 * MGRANTED(false) and retries as a write miss.  These tests pin each
 * observable piece of that mechanism in the timed tier so a scheduling
 * or queue-handling regression cannot silently reintroduce the lost-
 * store / double-grant hazards the scenario exists to prevent.
 */

#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "timed/timed_system.hh"

namespace dir2b
{
namespace
{

struct ScriptedRun
{
    TimedRunResult result;
    std::uint64_t grantsTrue = 0;
    std::uint64_t grantsFalse = 0;
    std::uint64_t mreqDeleted = 0;
    std::uint64_t mrequests = 0;
    std::uint64_t conversions = 0;
    std::size_t totalRefs = 0;
};

/** Drive the §3.2.5 scenario: P0/P1 read-then-store block a while P2
 *  keeps the single directory controller's queue busy so both
 *  MREQUESTs are in flight together. */
ScriptedRun
runRace(unsigned dirLatency)
{
    TimedConfig cfg;
    cfg.numProcs = 3;
    cfg.numModules = 1;
    cfg.cacheGeom.sets = 16;
    cfg.cacheGeom.ways = 2;
    cfg.dirLatency = dirLatency;

    TimedSystem sys(cfg);

    const Addr a = 7;
    std::vector<std::vector<MemRef>> scripts = {
        {{0, a, false}, {0, a, true}},
        {{1, a, false}, {1, a, true}},
        {{2, 9, false}, {2, 11, false}, {2, 13, false}},
    };
    std::vector<std::size_t> pos(scripts.size(), 0);
    auto src = [&](ProcId p) -> std::optional<MemRef> {
        if (pos[p] >= scripts[p].size())
            return std::nullopt;
        return scripts[p][pos[p]++];
    };

    ScriptedRun out;
    for (const auto &s : scripts)
        out.totalRefs += s.size();
    out.result = sys.run(src, 100);

    const auto &d = sys.dirCtrl(0).stats();
    out.grantsTrue = d.grantsTrue.value();
    out.grantsFalse = d.grantsFalse.value();
    out.mreqDeleted = d.mreqDeleted.value();
    for (ProcId p = 0; p < cfg.numProcs; ++p) {
        const auto &s = sys.cacheCtrl(p).stats();
        out.mrequests += s.mrequests.value();
        out.conversions += s.mrequestConversions.value();
    }
    return out;
}

TEST(Race325, ConcurrentStoresCollideAndResolve)
{
    // dirLatency 8 gives the controller a wide service window, so both
    // MREQUESTs are queued together and the race actually fires.
    const ScriptedRun r = runRace(8);

    // Every reference completed: the losing store was retried, not
    // dropped.
    EXPECT_EQ(r.result.refsCompleted, r.totalRefs);

    // Both writers asked for modification rights.
    EXPECT_GE(r.mrequests, 2u);

    // Exactly one writer won the first round.
    EXPECT_GE(r.grantsTrue, 1u);

    // The loser's queued MREQUEST was deleted by the winner's
    // BROADINV sweep (the delete-anywhere queue of §3.2.5)...
    EXPECT_GE(r.mreqDeleted, 1u);

    // ...and the loser saw that BROADINV as an implicit
    // MGRANTED(false), retrying as a write miss.
    EXPECT_GE(r.conversions, 1u);
    EXPECT_GE(r.grantsFalse + r.conversions, 1u);

    // The run's internal per-location oracle checked every read; the
    // run would have panicked on a lost store.
    EXPECT_GT(r.result.readsChecked, 0u);
}

TEST(Race325, FastControllerStillCoherent)
{
    // With a fast controller the MREQUESTs may serialize instead of
    // colliding; either way every store must land and the oracle must
    // stay silent.  The race-specific counters are allowed to be zero
    // here — this test pins the non-racy path of the same scenario.
    const ScriptedRun r = runRace(1);
    EXPECT_EQ(r.result.refsCompleted, r.totalRefs);
    EXPECT_GE(r.mrequests, 2u);
}

TEST(Race325, RaceCountersAreStableAcrossReruns)
{
    // The timed tier is deterministic: the same script and latencies
    // must reproduce the identical race resolution, which is what
    // makes this regression directed rather than flaky.
    const ScriptedRun r1 = runRace(8);
    const ScriptedRun r2 = runRace(8);
    EXPECT_EQ(r1.result.refsCompleted, r2.result.refsCompleted);
    EXPECT_EQ(r1.grantsTrue, r2.grantsTrue);
    EXPECT_EQ(r1.grantsFalse, r2.grantsFalse);
    EXPECT_EQ(r1.mreqDeleted, r2.mreqDeleted);
    EXPECT_EQ(r1.conversions, r2.conversions);
    EXPECT_EQ(r1.result.finalTick, r2.result.finalTick);
}

} // namespace
} // namespace dir2b
