/**
 * @file
 * The sharded timed engine: kernel-level epoch mechanics and the
 * serial-equivalence contract.
 *
 * The headline property (sharded == serial, bit for bit) is pinned on
 * the locked cross-scheme digests in test_golden_digest.cc; this file
 * drills the machinery those digests rest on:
 *
 *  - EventQueue epoch primitives: horizon-bounded draining, lower
 *    bounds, keyed injection, epoch logs, key rewriting;
 *  - the directed lookahead-tie case: with netLatency == 1 every
 *    cross-shard delivery lands EXACTLY on the next epoch's first
 *    tick, so injected deliveries constantly tie shard-local events
 *    and the merge's serial-key replay is what keeps drain order
 *    equal to the serial wheel's schedule order;
 *  - invariance across shard counts (including shards > modules) and
 *    worker counts, and across all three network models.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"
#include "timed/sharded_system.hh"
#include "timed/timed_system.hh"
#include "trace/synthetic.hh"

namespace dir2b
{
namespace
{

// ---------------------------------------------------------------------
// EventQueue epoch primitives.
// ---------------------------------------------------------------------

TEST(EpochKernel, RunUntilStopsStrictlyBelowHorizon)
{
    EventQueue eq;
    std::vector<Tick> fired;
    eq.scheduleAt(1, [&] { fired.push_back(1); });
    eq.scheduleAt(4, [&] { fired.push_back(4); });
    eq.scheduleAt(5, [&] { fired.push_back(5); });

    std::uint64_t budget = 100;
    EXPECT_TRUE(eq.runUntil(5, budget));
    EXPECT_EQ(fired, (std::vector<Tick>{1, 4}));
    // The tick-5 event is level-0 resident: the bound is exact.
    EXPECT_EQ(eq.nextTickLowerBound(), 5u);

    EXPECT_TRUE(eq.runUntil(6, budget));
    EXPECT_EQ(fired, (std::vector<Tick>{1, 4, 5}));
    EXPECT_EQ(eq.nextTickLowerBound(), maxTick);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EpochKernel, RunUntilReportsBudgetExhaustion)
{
    EventQueue eq;
    for (int i = 0; i < 4; ++i)
        eq.scheduleAt(1, [] {});
    std::uint64_t budget = 2;
    EXPECT_FALSE(eq.runUntil(10, budget));
    EXPECT_EQ(eq.executed(), 2u);
}

TEST(EpochKernel, LowerBoundNeverOvershootsAcrossEpochs)
{
    // An event far in the future sits in a coarse wheel level, so the
    // bound may be inexact (bucket start) — but it must never exceed
    // the true next tick, and repeated bounded advances must refine
    // it until the event fires.
    EventQueue eq;
    bool fired = false;
    const Tick when = 100000;
    eq.scheduleAt(when, [&] { fired = true; });
    std::uint64_t budget = 100;
    Tick bound = eq.nextTickLowerBound();
    while (!fired) {
        ASSERT_LE(bound, when);
        ASSERT_TRUE(eq.runUntil(bound + 1, budget));
        const Tick next = eq.nextTickLowerBound();
        if (!fired) {
            ASSERT_GT(next, bound) << "bound failed to refine";
        }
        bound = next;
    }
    EXPECT_EQ(eq.now(), when);
}

TEST(EpochKernel, KeyedInjectionOrdersAgainstNativeEvents)
{
    // Same-tick drain order is key order regardless of how events got
    // in: two native schedules (keys 0,1) bracketing an injected key
    // 100 and an injected key between them cannot happen — but an
    // injected 0x8000.. must fire after the natives.
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(3, [&] { order.push_back(0); });
    eq.scheduleAtKeyed(3, 0x8000000000000000ULL,
                       [&] { order.push_back(2); });
    eq.scheduleAt(3, [&] { order.push_back(1); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EpochKernel, EpochLogRecordsCallsAndRewriteReordersChild)
{
    // A parent at tick 1 schedules a child at tick 8 mid-epoch.  The
    // log must record the Schedule call with the child's wheel
    // coordinates; rewriting the child's provisional key below a
    // rival's key must flip their same-tick drain order.
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAtKeyed(8, 50, [&] { order.push_back(50); });
    eq.scheduleAtKeyed(1, 0, [&] {
        eq.schedule(7, [&] { order.push_back(99); });
    });

    EpochLog log;
    eq.beginEpoch(&log, /*keyBase=*/1000);
    std::uint64_t budget = 100;
    EXPECT_TRUE(eq.runUntil(2, budget));
    eq.endEpoch();

    ASSERT_EQ(log.execs.size(), 1u);
    EXPECT_EQ(log.execs[0].tick, 1u);
    EXPECT_EQ(log.execs[0].key, 0u);
    ASSERT_EQ(log.execs[0].numCalls, 1u);
    const EpochLog::Call &c = log.calls[log.execs[0].firstCall];
    ASSERT_EQ(c.kind, EpochLog::CallKind::Schedule);

    // Provisional key >= keyBase loses to 50; rewrite to 7 must win.
    EXPECT_TRUE(eq.rewriteKey(c.nodeIdx, c.childId, 7));
    eq.rebuildOverflowHeap();
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{99, 50}));
}

TEST(EpochKernel, RewriteKeyRejectsRecycledNode)
{
    // After the child fires, its arena slot may be reused; a rewrite
    // keyed to the dead child's id must be a refused no-op.
    EventQueue eq;
    EpochLog log;
    eq.beginEpoch(&log, 1000);
    eq.scheduleAtKeyed(1, 0, [&] { eq.schedule(1, [] {}); });
    std::uint64_t budget = 100;
    EXPECT_TRUE(eq.runUntil(3, budget)); // parent AND child fire
    eq.endEpoch();
    // Only the parent logs (the child makes no calls, so it never
    // enters the log — call-free events consume no serial keys).
    ASSERT_EQ(log.execs.size(), 1u);
    const EpochLog::Call &c = log.calls[log.execs[0].firstCall];
    EXPECT_FALSE(eq.rewriteKey(c.nodeIdx, c.childId, 5));
}

// ---------------------------------------------------------------------
// Serial-equivalence differentials.
// ---------------------------------------------------------------------

struct RunDigest
{
    TimedRunResult r;
    std::vector<std::uint64_t> perComponent;

    bool
    operator==(const RunDigest &o) const
    {
        return r.finalTick == o.r.finalTick &&
               r.refsCompleted == o.r.refsCompleted &&
               r.eventsExecuted == o.r.eventsExecuted &&
               std::bit_cast<std::uint64_t>(r.avgLatency) ==
                   std::bit_cast<std::uint64_t>(o.r.avgLatency) &&
               r.stolenCycles == o.r.stolenCycles &&
               r.filteredCmds == o.r.filteredCmds &&
               r.mrequestConversions == o.r.mrequestConversions &&
               r.mreqDeleted == o.r.mreqDeleted &&
               r.putsConsumed == o.r.putsConsumed &&
               r.putsAwaited == o.r.putsAwaited &&
               r.grantsFalse == o.r.grantsFalse &&
               r.netMessages == o.r.netMessages &&
               r.broadcasts == o.r.broadcasts &&
               r.netWaitCycles == o.r.netWaitCycles &&
               r.readsChecked == o.r.readsChecked &&
               r.writesRecorded == o.r.writesRecorded &&
               r.latencyP50 == o.r.latencyP50 &&
               r.latencyP95 == o.r.latencyP95 &&
               r.latencyP99 == o.r.latencyP99 &&
               perComponent == o.perComponent;
    }
};

void
foldCache(std::vector<std::uint64_t> &v, const CacheCtrlStats &s)
{
    v.push_back(s.readHits.value());
    v.push_back(s.writeHits.value());
    v.push_back(s.readMisses.value());
    v.push_back(s.writeMisses.value());
    v.push_back(s.mrequests.value());
    v.push_back(s.mrequestConversions.value());
    v.push_back(s.staleGrantsIgnored.value());
    v.push_back(s.stolenCycles.value());
    v.push_back(s.filteredCmds.value());
    v.push_back(s.invalidationsApplied.value());
    v.push_back(s.queriesAnswered.value());
    v.push_back(s.writebacksSent.value());
    v.push_back(s.latency.samples());
    v.push_back(s.grantWait.samples());
    v.push_back(s.dataWait.samples());
}

void
foldDir(std::vector<std::uint64_t> &v, const DirCtrlStats &s)
{
    v.push_back(s.requests.value());
    v.push_back(s.mrequests.value());
    v.push_back(s.ejectsData.value());
    v.push_back(s.ejectsIgnored.value());
    v.push_back(s.ejectsApplied.value());
    v.push_back(s.broadInvs.value());
    v.push_back(s.broadQueries.value());
    v.push_back(s.directedInvs.value());
    v.push_back(s.purges.value());
    v.push_back(s.grantsTrue.value());
    v.push_back(s.grantsFalse.value());
    v.push_back(s.mreqDeleted.value());
    v.push_back(s.putsConsumed.value());
    v.push_back(s.putsAwaited.value());
    v.push_back(s.queueWait.samples());
    v.push_back(s.ackWait.samples());
    v.push_back(s.putWait.samples());
}

struct Workload
{
    TimedConfig cfg;
    SyntheticConfig scfg;
    std::uint64_t refsPerProc = 400;
};

Workload
baseWorkload()
{
    Workload w;
    w.cfg.numProcs = 4;
    w.cfg.numModules = 2;
    w.cfg.cacheGeom.sets = 16;
    w.cfg.cacheGeom.ways = 2;
    w.scfg.numProcs = 4;
    w.scfg.q = 0.3;
    w.scfg.w = 0.3;
    w.scfg.sharedBlocks = 8;
    w.scfg.privateBlocks = 64;
    w.scfg.hotBlocks = 16;
    w.scfg.seed = 0x5ea1ed;
    return w;
}

RunDigest
runOnce(const Workload &w, unsigned shards, unsigned workers = 0)
{
    SyntheticStream stream(w.scfg);
    const ProcSource src = [&](ProcId p) -> std::optional<MemRef> {
        return stream.nextFor(p);
    };
    RunDigest d;
    if (shards <= 1) {
        TimedSystem sys(w.cfg);
        d.r = sys.run(src, w.refsPerProc);
        for (ProcId p = 0; p < w.cfg.numProcs; ++p)
            foldCache(d.perComponent, sys.cacheCtrl(p).stats());
        for (ModuleId m = 0; m < w.cfg.numModules; ++m)
            foldDir(d.perComponent, sys.dirCtrl(m).stats());
        return d;
    }
    ShardedTimedSystem sys(w.cfg, shards, {}, workers);
    d.r = sys.run(src, w.refsPerProc);
    for (ProcId p = 0; p < w.cfg.numProcs; ++p)
        foldCache(d.perComponent, sys.cacheCtrl(p).stats());
    for (ModuleId m = 0; m < w.cfg.numModules; ++m)
        foldDir(d.perComponent, sys.dirCtrl(m).stats());
    return d;
}

// The directed lookahead-tie case.  netLatency == 1 makes the horizon
// min+1: every epoch advances one occupied tick, and EVERY cross-shard
// delivery is injected exactly at the horizon — the first tick of the
// next epoch — where it ties shard-local events.  All-shared traffic
// (q = 1) over few blocks maximises cross-shard sends.  Any deviation
// from the serial wheel's key order at those ties shifts contention,
// latencies and event counts and fails the comparison.
TEST(ShardedDifferential, LookaheadHorizonTiesMatchSerial)
{
    Workload w = baseWorkload();
    w.cfg.netLatency = 1;
    w.scfg.q = 1.0;
    w.scfg.sharedBlocks = 4;
    w.refsPerProc = 300;
    const RunDigest serial = runOnce(w, 1);
    const RunDigest sharded = runOnce(w, 2, 2);
    EXPECT_TRUE(serial == sharded);
    EXPECT_GT(serial.r.netMessages, 0u);
}

TEST(ShardedDifferential, ShardCountInvariance)
{
    const Workload w = baseWorkload();
    const RunDigest serial = runOnce(w, 1);
    // 3 leaves a module-less shard; 5 exceeds procs AND modules,
    // leaving an entirely empty shard to idle through every epoch.
    for (unsigned shards : {2u, 3u, 4u, 5u}) {
        const RunDigest d = runOnce(w, shards);
        EXPECT_TRUE(serial == d) << "shards=" << shards;
    }
}

TEST(ShardedDifferential, WorkerCountInvariance)
{
    Workload w = baseWorkload();
    w.cfg.network = NetKind::Crossbar;
    const RunDigest one = runOnce(w, 4, 1);
    const RunDigest two = runOnce(w, 4, 2);
    const RunDigest four = runOnce(w, 4, 4);
    EXPECT_TRUE(one == two);
    EXPECT_TRUE(one == four);
}

TEST(ShardedDifferential, BusBroadcastFanOutMatchesSerial)
{
    // The bus serialises all traffic through one shared resource and
    // broadcasts fan out to every other endpoint: the merge must
    // replay ONE bus claim per broadcast, then key the per-listener
    // deliveries in the serial fan-out order.
    Workload w = baseWorkload();
    w.cfg.network = NetKind::Bus;
    w.scfg.q = 0.5;
    const RunDigest serial = runOnce(w, 1);
    const RunDigest sharded = runOnce(w, 2, 2);
    EXPECT_TRUE(serial == sharded);
    EXPECT_GT(serial.r.broadcasts, 0u);
}

TEST(ShardedDifferential, AllProtocolsAllNetsMatchSerial)
{
    for (TimedProto proto :
         {TimedProto::TwoBit, TimedProto::FullMap, TimedProto::YenFu}) {
        for (NetKind net :
             {NetKind::Ideal, NetKind::Crossbar, NetKind::Bus}) {
            Workload w = baseWorkload();
            w.cfg.protocol = proto;
            w.cfg.network = net;
            w.cfg.perBlockConcurrency = true;
            w.refsPerProc = 200;
            const RunDigest serial = runOnce(w, 1);
            const RunDigest sharded = runOnce(w, 3, 2);
            EXPECT_TRUE(serial == sharded)
                << "proto=" << static_cast<int>(proto)
                << " net=" << static_cast<int>(net);
        }
    }
}

TEST(ShardedDifferential, RunTimedWorkloadDispatches)
{
    const Workload w = baseWorkload();
    SyntheticStream s1(w.scfg);
    SyntheticStream s2(w.scfg);
    const auto serial = runTimedWorkload(
        w.cfg, 1, 1,
        [&](ProcId p) -> std::optional<MemRef> {
            return s1.nextFor(p);
        },
        w.refsPerProc);
    const auto sharded = runTimedWorkload(
        w.cfg, 4, 2,
        [&](ProcId p) -> std::optional<MemRef> {
            return s2.nextFor(p);
        },
        w.refsPerProc);
    EXPECT_EQ(serial.finalTick, sharded.finalTick);
    EXPECT_EQ(serial.eventsExecuted, sharded.eventsExecuted);
    EXPECT_EQ(serial.netMessages, sharded.netMessages);
    EXPECT_EQ(serial.netWaitCycles, sharded.netWaitCycles);
}

} // namespace
} // namespace dir2b
