/**
 * @file
 * Unit tests for the metrics-export layer: JSON escaping and
 * round-tripping, artifact schema stamping, counts/stat-group
 * serialization, and the payload comparison that ignores volatile
 * metadata.
 */

#include <cstdio>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "report/bench_cli.hh"
#include "report/report.hh"

namespace dir2b
{
namespace
{

TEST(Json, EscapesControlAndQuoteCharacters)
{
    const std::string nasty =
        "tab\there \"quoted\" back\\slash\nnewline \x01 bell\x07";
    const Json j(nasty);
    const std::string text = j.dump(0);
    EXPECT_EQ(text.find('\n'), std::string::npos);
    EXPECT_NE(text.find("\\t"), std::string::npos);
    EXPECT_NE(text.find("\\\""), std::string::npos);
    EXPECT_NE(text.find("\\\\"), std::string::npos);
    EXPECT_NE(text.find("\\u0001"), std::string::npos);
    EXPECT_NE(text.find("\\u0007"), std::string::npos);
    // Round trip restores the original bytes.
    EXPECT_EQ(Json::parse(text).asString(), nasty);
}

TEST(Json, NumbersRoundTrip)
{
    Json obj = Json::object();
    obj.set("u", 18446744073709551615ULL); // max uint64
    obj.set("i", -42);
    obj.set("d", 0.1);
    obj.set("tiny", 1e-300);
    obj.set("whole", 3.0);
    const Json back = Json::parse(obj.dump(2));
    EXPECT_EQ(back.at("u").asUint(), 18446744073709551615ULL);
    EXPECT_EQ(back.at("i").asInt(), -42);
    EXPECT_EQ(back.at("d").asDouble(), 0.1);
    EXPECT_EQ(back.at("tiny").asDouble(), 1e-300);
    EXPECT_EQ(back.at("whole").asDouble(), 3.0);
    EXPECT_TRUE(obj == back);
}

TEST(Json, StructuresRoundTripAndCompare)
{
    Json arr = Json::array();
    arr.push(1).push("two").push(Json()).push(true);
    Json obj = Json::object();
    obj.set("list", arr);
    obj.set("nested", Json::object().set("k", "v"));
    const Json back = Json::parse(obj.dump(2));
    EXPECT_TRUE(obj == back);
    EXPECT_EQ(back.at("list").size(), 4u);
    EXPECT_TRUE(back.at("list").at(2).isNull());
    EXPECT_EQ(back.at("nested").at("k").asString(), "v");
    // Compact form parses identically.
    EXPECT_TRUE(Json::parse(obj.dump(0)) == obj);
}

TEST(Json, ParseErrorsThrow)
{
    EXPECT_THROW(Json::parse("{"), std::runtime_error);
    EXPECT_THROW(Json::parse("[1,]2"), std::runtime_error);
    EXPECT_THROW(Json::parse("{\"a\": nul}"), std::runtime_error);
    EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
    EXPECT_THROW(Json::parse("12 34"), std::runtime_error);
}

TEST(Report, CountsRoundTripThroughJson)
{
    AccessCounts c;
    c.reads = 900;
    c.writes = 100;
    c.readHits = 800;
    c.readMisses = 100;
    c.writeHits = 90;
    c.writeMisses = 10;
    c.broadcasts = 17;
    c.broadcastCmds = 17 * 15;
    c.uselessCmds = 123;
    c.invalidations = 7;
    c.writebacks = 3;
    c.netMessages = 4242;

    const Json j = countsToJson(c);
    const Json back = Json::parse(j.dump(2));
    // Every field forEachField visits survives the round trip.
    AccessCounts::forEachField(
        c, [&back](const char *name, std::uint64_t v) {
            ASSERT_TRUE(back.contains(name)) << name;
            EXPECT_EQ(back.at(name).asUint(), v) << name;
        });
    EXPECT_DOUBLE_EQ(back.at("missRatio").asDouble(), c.missRatio());
    EXPECT_DOUBLE_EQ(back.at("uselessPerRef").asDouble(),
                     c.uselessPerRef());
}

TEST(Report, StatGroupRoundTripThroughJson)
{
    Counter evictions;
    evictions.inc(12);
    Mean latency;
    latency.sample(4.0);
    latency.sample(8.0);
    Histogram depth(2, 4);
    depth.sample(1);
    depth.sample(3);
    depth.sample(100); // overflow bucket

    StatGroup g("cache0");
    g.addCounter("evictions", &evictions, "lines replaced");
    g.addMean("latency", &latency, "cycles per access");
    g.addHistogram("queueDepth", &depth);

    const Json back = Json::parse(statGroupToJson(g).dump(2));
    EXPECT_EQ(back.at("group").asString(), "cache0");
    const Json &stats = back.at("stats");
    ASSERT_EQ(stats.size(), 3u);

    const Json &ctr = stats.at(0);
    EXPECT_EQ(ctr.at("kind").asString(), "counter");
    EXPECT_EQ(ctr.at("name").asString(), "evictions");
    EXPECT_EQ(ctr.at("desc").asString(), "lines replaced");
    EXPECT_EQ(ctr.at("value").asUint(), 12u);

    const Json &mean = stats.at(1);
    EXPECT_EQ(mean.at("kind").asString(), "mean");
    EXPECT_DOUBLE_EQ(mean.at("mean").asDouble(), 6.0);
    EXPECT_EQ(mean.at("samples").asUint(), 2u);

    const Json &hist = stats.at(2);
    EXPECT_EQ(hist.at("kind").asString(), "histogram");
    EXPECT_EQ(hist.at("samples").asUint(), 3u);
    EXPECT_EQ(hist.at("min").asUint(), 1u);
    EXPECT_EQ(hist.at("max").asUint(), 100u);
    EXPECT_EQ(hist.at("bucketWidth").asUint(), 2u);
    // 4 regular buckets + overflow.
    ASSERT_EQ(hist.at("buckets").size(), 5u);
    EXPECT_EQ(hist.at("buckets").at(0).asUint(), 1u); // value 1
    EXPECT_EQ(hist.at("buckets").at(1).asUint(), 1u); // value 3
    EXPECT_EQ(hist.at("buckets").at(4).asUint(), 1u); // overflow
}

TEST(Report, ArtifactCarriesSchemaAndMeta)
{
    Json cells = Json::array();
    cells.push(Json::object().set("section", "s").set("x", 1));
    Json a = makeSweepArtifact("bench_x",
                               Json::object().set("n", 8),
                               std::move(cells));
    EXPECT_EQ(a.at("schema").asString(), reportSchemaName);
    EXPECT_EQ(a.at("schema_version").asInt(), reportSchemaVersion);
    EXPECT_EQ(a.at("bench").asString(), "bench_x");
    EXPECT_EQ(a.at("cells").size(), 1u);
    EXPECT_FALSE(a.contains("meta"));

    stampMeta(a, 4, 12.5, true);
    ASSERT_TRUE(a.contains("meta"));
    EXPECT_EQ(a.at("meta").at("threads").asUint(), 4u);
    EXPECT_TRUE(a.at("meta").at("quick").asBool());
}

TEST(Report, PayloadComparisonIgnoresMeta)
{
    auto build = [](unsigned threads, double wall) {
        Json cells = Json::array();
        cells.push(Json::object().set("section", "s").set("v", 7));
        Json a = makeSweepArtifact("bench_y", Json(),
                                   std::move(cells));
        stampMeta(a, threads, wall, false);
        return a;
    };
    const Json a = build(1, 100.0);
    const Json b = build(16, 3.5);
    EXPECT_FALSE(a == b); // meta differs...
    EXPECT_TRUE(sameArtifactPayload(a, b)); // ...payload doesn't.

    Json c = build(1, 100.0);
    c.set("bench", "bench_z");
    EXPECT_FALSE(sameArtifactPayload(a, c));
}

namespace
{

/** Minimal valid sweep artifact with one cell carrying `extra`. */
Json
artifactWithCell(Json extra)
{
    Json cells = Json::array();
    Json c = Json::object();
    c.set("section", "run");
    for (const auto &m : extra.members())
        c.set(m.first, m.second);
    cells.push(std::move(c));
    Json a = makeSweepArtifact("bench_tr", Json(), std::move(cells));
    stampMeta(a, 1, 1.0, false);
    return a;
}

/** A complete v4 traceReplay object. */
Json
goodTraceReplay()
{
    Json t = Json::object();
    t.set("records", 1000);
    t.set("blocks", 2);
    t.set("blockRecords", 512);
    t.set("mappedBytes", 16160);
    t.set("batched", true);
    return t;
}

} // namespace

TEST(Report, ValidatorAcceptsCompleteTraceReplayObject)
{
    const Json a = artifactWithCell(
        Json::object().set("traceReplay", goodTraceReplay()));
    EXPECT_EQ(validateSweepArtifact(a), "");
}

TEST(Report, ValidatorRejectsIncompleteTraceReplayObject)
{
    for (const char *missing :
         {"records", "blocks", "blockRecords", "mappedBytes"}) {
        Json t = Json::object();
        for (const char *key :
             {"records", "blocks", "blockRecords", "mappedBytes"})
            if (std::string(key) != missing)
                t.set(key, 1);
        t.set("batched", false);
        const Json a = artifactWithCell(
            Json::object().set("traceReplay", std::move(t)));
        const std::string err = validateSweepArtifact(a);
        EXPECT_NE(err.find(missing), std::string::npos) << err;
    }
}

TEST(Report, ValidatorRequiresBooleanBatchedFlag)
{
    Json t = goodTraceReplay();
    t.set("batched", "yes");
    const Json a = artifactWithCell(
        Json::object().set("traceReplay", std::move(t)));
    const std::string err = validateSweepArtifact(a);
    EXPECT_NE(err.find("batched"), std::string::npos) << err;
}

TEST(Report, ValidatorRejectsTraceReplayBeforeV4)
{
    Json a = artifactWithCell(
        Json::object().set("traceReplay", goodTraceReplay()));
    a.set("schema_version", 3);
    const std::string err = validateSweepArtifact(a);
    EXPECT_NE(err.find("schema_version >= 4"), std::string::npos)
        << err;
}

TEST(Report, WriteAndReadArtifactFile)
{
    const std::string path =
        testing::TempDir() + "dir2b_report_roundtrip.json";
    Json cells = Json::array();
    cells.push(Json::object()
                   .set("section", "s")
                   .set("text", "line\none \"two\"")
                   .set("value", 0.25));
    Json a = makeSweepArtifact("bench_io", Json(), std::move(cells));
    stampMeta(a, 2, 1.0, false);
    writeArtifact(path, a);
    const Json back = readArtifact(path);
    EXPECT_TRUE(back == a);
    std::remove(path.c_str());
}

} // namespace
} // namespace dir2b
