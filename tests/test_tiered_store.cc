/**
 * @file
 * Differential and directed tests for the tiered page store
 * (util/tiered_store.hh): random access patterns against a plain
 * std::vector oracle at several RAM budgets, compression round-trips
 * on homogeneous and mixed pages, and eviction-then-reload identity
 * through the cold and disk tiers.
 */

#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/global_state.hh"
#include "core/two_bit_directory.hh"
#include "util/tiered_store.hh"

namespace dir2b
{
namespace
{

// Small pages (8 words) so a few KiB of budget spans many pages.
using SmallStore = TieredStore<std::uint64_t, 3>;

/** Random get/ref stream vs a dense std::vector oracle. */
void
differential(std::uint64_t budget, std::uint64_t space, int ops,
             std::uint32_t seed)
{
    SmallStore store(budget);
    std::vector<std::uint64_t> oracle(space, 0);
    std::mt19937_64 rng(seed);

    for (int i = 0; i < ops; ++i) {
        // Skewed index stream: half the traffic on a hot eighth of
        // the space, the rest uniform, so pages have unequal heat.
        std::uint64_t idx = rng() % space;
        if (rng() % 2)
            idx %= std::max<std::uint64_t>(space / 8, 1);
        if (rng() % 3 == 0) {
            const std::uint64_t v = rng();
            store.ref(idx) = v;
            oracle[idx] = v;
        } else {
            ASSERT_EQ(store.get(idx), oracle[idx])
                << "idx " << idx << " budget " << budget << " op " << i;
        }
    }
    // Full final sweep: every element, including never-touched ones.
    for (std::uint64_t idx = 0; idx < space; ++idx)
        ASSERT_EQ(store.get(idx), oracle[idx]) << "final idx " << idx;
}

TEST(TieredStore, DifferentialUnlimitedBudget)
{
    differential(/*budget=*/0, /*space=*/1 << 12, /*ops=*/20000, 1);
}

TEST(TieredStore, DifferentialTinyBudgetConstantEviction)
{
    // Budget of two raw pages over a 512-page space: nearly every
    // access demotes something, and the overflow must hit the disk
    // tier (or count an honest overrun if tmpfile is unavailable).
    const std::uint64_t budget = 2 * SmallStore::rawPageBytes;
    differential(budget, /*space=*/1 << 12, /*ops=*/20000, 2);
}

TEST(TieredStore, DifferentialMidBudget)
{
    differential(16 * SmallStore::rawPageBytes, 1 << 12, 20000, 3);
}

TEST(TieredStore, TinyBudgetReachesDiskTier)
{
    SmallStore store(2 * SmallStore::rawPageBytes);
    for (std::uint64_t p = 0; p < 256; ++p)
        store.ref(p * SmallStore::pageElems) = p + 1;
    const auto &st = store.stats();
    EXPECT_GT(st.compressions, 0u);
    if (st.diskUnavailable == 0) {
        EXPECT_GT(st.diskPageWrites, 0u);
        EXPECT_GT(store.diskPages(), 0u);
    } else {
        EXPECT_GT(st.budgetOverruns, 0u);
    }
    // Everything written is still readable, wherever it lives now.
    for (std::uint64_t p = 0; p < 256; ++p)
        EXPECT_EQ(store.get(p * SmallStore::pageElems), p + 1);
}

TEST(TieredStore, BudgetBoundsResidentBytes)
{
    const std::uint64_t budget = 4 * SmallStore::rawPageBytes;
    SmallStore store(budget);
    std::mt19937_64 rng(7);
    for (int i = 0; i < 5000; ++i)
        store.ref(rng() % (1 << 14)) = rng();
    if (store.stats().diskUnavailable == 0)
        EXPECT_LE(store.residentBytes(), budget);
    EXPECT_EQ(store.hotPages() + store.coldPages() + store.diskPages(),
              store.pageCount());
}

TEST(TieredStore, HomogeneousPageCompressionRoundTrip)
{
    // A page holding one repeated value must survive demotion and
    // reload exactly, and its compressed form must be tiny.
    SmallStore store(2 * SmallStore::rawPageBytes);
    const std::uint64_t v = 0x5555555555555555ULL; // all-Present1 words
    for (std::uint64_t i = 0; i < SmallStore::pageElems; ++i)
        store.ref(i) = v;
    // Touch enough other pages to force page 0 through the cold tier.
    for (std::uint64_t p = 1; p < 64; ++p)
        store.ref(p * SmallStore::pageElems) = p;
    EXPECT_GT(store.stats().compressions, 0u);
    EXPECT_LT(store.compressedBytes() + store.segmentBytes(),
              63 * SmallStore::rawPageBytes / 2);
    for (std::uint64_t i = 0; i < SmallStore::pageElems; ++i)
        EXPECT_EQ(store.get(i), v);
}

TEST(TieredStore, MixedPageCompressionRoundTrip)
{
    // An incompressible page (distinct value per word) falls back to
    // the raw-copy blob and still round-trips bit-exactly.
    SmallStore store(2 * SmallStore::rawPageBytes);
    std::mt19937_64 rng(11);
    std::vector<std::uint64_t> vals;
    for (std::uint64_t i = 0; i < SmallStore::pageElems; ++i) {
        vals.push_back(rng());
        store.ref(i) = vals.back();
    }
    for (std::uint64_t p = 1; p < 64; ++p)
        store.ref(p * SmallStore::pageElems) = p;
    for (std::uint64_t i = 0; i < SmallStore::pageElems; ++i)
        EXPECT_EQ(store.get(i), vals[i]);
}

TEST(TieredStore, EvictReloadEvictReloadIdentity)
{
    // Ping-pong two working sets through a one-set budget so the same
    // pages are demoted and promoted repeatedly, including rewrites
    // between round trips (the disk segment is append-only; stale
    // copies must never be served).
    SmallStore store(4 * SmallStore::rawPageBytes);
    const std::uint64_t setB = 64 * SmallStore::pageElems;
    for (int round = 0; round < 6; ++round) {
        for (std::uint64_t i = 0; i < 8 * SmallStore::pageElems; ++i) {
            const std::uint64_t want =
                round == 0 ? 0 : i * 31 + (round - 1);
            ASSERT_EQ(store.get(i), want) << "round " << round;
            store.ref(i) = i * 31 + round;
        }
        for (std::uint64_t i = 0; i < 8 * SmallStore::pageElems; ++i)
            store.ref(setB + i) = ~i + round;
    }
    EXPECT_GT(store.stats().decompressions, 0u);
}

TEST(TieredStore, UnlimitedBudgetNeverTiers)
{
    SmallStore store; // budget 0
    std::mt19937_64 rng(13);
    for (int i = 0; i < 5000; ++i)
        store.ref(rng() % (1 << 14)) = rng();
    EXPECT_EQ(store.stats().compressions, 0u);
    EXPECT_EQ(store.coldPages(), 0u);
    EXPECT_EQ(store.diskPages(), 0u);
    EXPECT_EQ(store.hotPages(), store.pageCount());
}

TEST(TieredStore, MoveTransfersAllTiers)
{
    SmallStore a(2 * SmallStore::rawPageBytes);
    for (std::uint64_t p = 0; p < 64; ++p)
        a.ref(p * SmallStore::pageElems) = p ^ 0xabcdef;
    SmallStore b(std::move(a));
    std::vector<SmallStore> vec;
    vec.push_back(std::move(b));
    for (std::uint64_t p = 0; p < 64; ++p)
        EXPECT_EQ(vec[0].get(p * SmallStore::pageElems), p ^ 0xabcdef);
}

TEST(TwoBitDirectoryTiered, BudgetedDirectoryMatchesUnlimited)
{
    // The directory's get/set semantics must be identical at any
    // budget — this is the property the golden digests rely on.
    TwoBitDirectory plain;
    TwoBitDirectory tiny(2048); // two 1 KiB pages
    std::mt19937_64 rng(17);
    for (int i = 0; i < 40000; ++i) {
        const Addr a = rng() % (1 << 22);
        if (rng() % 2) {
            const auto st = static_cast<GlobalState>(rng() % 4);
            plain.set(a, st);
            tiny.set(a, st);
        } else {
            ASSERT_EQ(plain.get(a), tiny.get(a)) << "addr " << a;
        }
    }
    EXPECT_EQ(plain.setstateCount(), tiny.setstateCount());
    EXPECT_EQ(plain.materialisedBits(), tiny.materialisedBits());
    EXPECT_GT(tiny.storeStats().compressions, 0u);
    EXPECT_EQ(tiny.ramBudgetBytes(), 2048u);
}

TEST(TwoBitDirectoryTiered, HugeSparseSpaceStaysWithinBudget)
{
    // 2^32 block addresses scattered across the space: materialises
    // thousands of pages yet stays within a 64 KiB resident budget
    // (pages are homogeneous, so the cold tier is almost free).
    TwoBitDirectory dir(64 * 1024);
    std::mt19937_64 rng(19);
    std::vector<Addr> touched;
    for (int i = 0; i < 4000; ++i) {
        const Addr a = rng() % (Addr{1} << 32);
        dir.set(a, GlobalState::Present1);
        touched.push_back(a);
    }
    if (dir.storeStats().diskUnavailable == 0)
        EXPECT_LE(dir.residentBytes(), 64u * 1024u);
    for (const Addr a : touched)
        EXPECT_EQ(dir.get(a), GlobalState::Present1);
}

} // namespace
} // namespace dir2b
