/**
 * @file
 * Cross-validation of the analytic tier against the simulator: the
 * two-bit directory-state Markov chain (model/sharing_chain) must
 * predict what the live protocol actually does under the same
 * uniform-reference model — state occupancies P(P1)/P(P*)/P(PM) and
 * the useless-command rate T_SUM.
 *
 * This closes the loop between the three methods the repository uses
 * (closed form, Markov chain, simulation), mirroring the paper's own
 * two-method comparison in §4.3.  Measured agreement at commit time:
 * T_SUM within ~3%, occupancies within a few points.
 */

#include <gtest/gtest.h>

#include <memory>

#include "model/sharing_chain.hh"
#include "proto/protocol_factory.hh"
#include "system/func_system.hh"
#include "trace/synthetic.hh"

namespace dir2b
{
namespace
{

struct Agreement
{
    TwoBitChainResult chain;
    RunResult sim;
};

Agreement
crossValidate(unsigned n, double q, double w)
{
    Agreement out;

    ChainParams cp;
    cp.n = n;
    cp.q = q;
    cp.w = w;
    cp.sharedBlocks = 16;
    cp.evictRate = evictRateFromGeometry(n, 128);
    out.chain = solveTwoBitChain(cp);

    ProtoConfig cfg;
    cfg.numProcs = n;
    cfg.cacheGeom.sets = 32;
    cfg.cacheGeom.ways = 4; // 128 blocks, matching evictRate's input
    cfg.numModules = 2;
    auto proto = makeProtocol("two_bit", cfg);

    SyntheticConfig scfg;
    scfg.numProcs = n;
    scfg.q = q;
    scfg.w = w;
    scfg.sharedBlocks = 16;
    scfg.sharedLocality = 0.0; // the chain's uniform-1/S assumption
    scfg.privateBlocks = 96;
    scfg.hotBlocks = 24;
    scfg.seed = 3;
    SyntheticStream stream(scfg);

    RunOptions opts;
    opts.numRefs = 300000;
    opts.sampleEvery = 64;
    opts.sharedBlocks = 16;
    out.sim = runFunctional(*proto, stream, opts);
    return out;
}

class ChainVsSim
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(ChainVsSim, OccupanciesAndOverheadAgree)
{
    const auto [q, w] = GetParam();
    const Agreement a = crossValidate(8, q, w);

    const double simP1 = a.sim.stateOccupancy[1];
    const double simStar = a.sim.stateOccupancy[2];
    const double simPM = a.sim.stateOccupancy[3];

    EXPECT_NEAR(a.chain.pPStar, simStar, 0.06);
    EXPECT_NEAR(a.chain.pPM, simPM, 0.06);
    EXPECT_NEAR(a.chain.pP1, simP1, 0.04);

    const double simTSum = a.sim.counts.uselessPerRef();
    ASSERT_GT(simTSum, 0.0);
    EXPECT_NEAR(a.chain.tSum / simTSum, 1.0, 0.15)
        << "chain tSum " << a.chain.tSum << " vs sim " << simTSum;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ChainVsSim,
    ::testing::Values(std::make_pair(0.02, 0.2),
                      std::make_pair(0.02, 0.4),
                      std::make_pair(0.05, 0.2),
                      std::make_pair(0.05, 0.4)),
    [](const ::testing::TestParamInfo<std::pair<double, double>> &i) {
        return "q" + std::to_string(static_cast<int>(
                         i.param.first * 100)) +
               "_w" + std::to_string(static_cast<int>(
                          i.param.second * 100));
    });

} // namespace
} // namespace dir2b
