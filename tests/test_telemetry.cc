/**
 * @file
 * Unit tests for the time-series telemetry layer (obs/telemetry.hh):
 * registry semantics, sampler boundary conditions, the dir2b.series
 * artifact + validator, and the tentpole guarantees — sampling never
 * perturbs simulation statistics (both tiers, serial and sharded),
 * and serial vs sharded runs emit byte-identical series.
 */

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "obs/telemetry.hh"
#include "obs/trace_recorder.hh"
#include "proto/protocol_factory.hh"
#include "report/report.hh"
#include "system/func_system.hh"
#include "system/func_telemetry.hh"
#include "timed/sharded_system.hh"
#include "timed/timed_system.hh"
#include "trace/synthetic.hh"

#ifndef DIR2B_FIXTURES
#define DIR2B_FIXTURES "tests/fixtures"
#endif

namespace dir2b
{
namespace
{

// ---------------------------------------------------------------------
// MetricRegistry.
// ---------------------------------------------------------------------

TEST(MetricRegistry, ThreeSourceShapesReadLive)
{
    MetricRegistry reg;
    Counter stat;
    std::uint64_t word = 7;
    std::uint64_t probed = 40;

    const auto a = reg.add("a.stat", MetricKind::Counter, &stat);
    const auto b = reg.add("b.word", MetricKind::Gauge, &word);
    const auto c = reg.add(
        "c.probe", MetricKind::Counter,
        +[](const void *ctx) {
            return *static_cast<const std::uint64_t *>(ctx) + 2;
        },
        &probed);

    ASSERT_EQ(reg.size(), 3u);
    EXPECT_EQ(reg.read(a), 0u);
    EXPECT_EQ(reg.read(b), 7u);
    EXPECT_EQ(reg.read(c), 42u);

    // Reads are live views, not snapshots.
    stat += 5;
    word = 8;
    probed = 50;
    EXPECT_EQ(reg.read(a), 5u);
    EXPECT_EQ(reg.read(b), 8u);
    EXPECT_EQ(reg.read(c), 52u);

    EXPECT_EQ(reg.kind(a), MetricKind::Counter);
    EXPECT_EQ(reg.kind(b), MetricKind::Gauge);
    EXPECT_STREQ(reg.name(c), "c.probe");
    EXPECT_EQ(reg.find("b.word"), b);
    EXPECT_EQ(reg.find("nope"), MetricRegistry::npos);
}

// ---------------------------------------------------------------------
// Sampler boundary conditions.
// ---------------------------------------------------------------------

TEST(TelemetrySampler, IntervalLargerThanRunYieldsOneFinalSample)
{
    TelemetrySampler s(SeriesDomain::Refs, 1000);
    std::uint64_t v = 0;
    s.registry().add("v", MetricKind::Counter, &v);

    for (std::uint64_t t = 1; t <= 37; ++t) {
        v = t;
        s.flushUpTo(t);
    }
    EXPECT_EQ(s.samples(), 0u); // no boundary reached yet
    s.finish(37);
    ASSERT_EQ(s.samples(), 1u);
    EXPECT_EQ(s.sampleT(0), 37u);
    EXPECT_EQ(s.sampleValue(0, 0), 37u);
}

TEST(TelemetrySampler, IntervalOfOneSamplesEveryCoordinate)
{
    TelemetrySampler s(SeriesDomain::Refs, 1);
    std::uint64_t v = 0;
    s.registry().add("v", MetricKind::Counter, &v);

    for (std::uint64_t t = 1; t <= 5; ++t) {
        v = t * 10;
        s.flushUpTo(t);
    }
    s.finish(5);
    ASSERT_EQ(s.samples(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(s.sampleT(i), i + 1);
        EXPECT_EQ(s.sampleValue(i, 0), (i + 1) * 10);
    }
}

TEST(TelemetrySampler, FinalPartialIntervalFlushesExactlyOnce)
{
    TelemetrySampler s(SeriesDomain::Refs, 10);
    std::uint64_t v = 0;
    s.registry().add("v", MetricKind::Counter, &v);

    v = 10;
    s.flushUpTo(10);
    v = 17;
    s.finish(17);
    ASSERT_EQ(s.samples(), 2u);
    EXPECT_EQ(s.sampleT(0), 10u);
    EXPECT_EQ(s.sampleT(1), 17u);
    EXPECT_EQ(s.sampleValue(1, 0), 17u);

    // finish() is idempotent and later flushes are no-ops.
    s.finish(17);
    s.flushUpTo(100);
    EXPECT_EQ(s.samples(), 2u);
}

TEST(TelemetrySampler, RunEndingExactlyOnBoundaryEmitsNoExtraSample)
{
    TelemetrySampler s(SeriesDomain::Refs, 10);
    std::uint64_t v = 0;
    s.registry().add("v", MetricKind::Counter, &v);

    v = 20;
    s.flushUpTo(20);
    EXPECT_EQ(s.samples(), 2u);
    s.finish(20);
    EXPECT_EQ(s.samples(), 2u) << "boundary landed exactly on finalT";
}

TEST(TelemetrySampler, NextBoundaryClampsAndAdvances)
{
    TelemetrySampler s(SeriesDomain::Ticks, 100);
    EXPECT_EQ(s.nextBoundary(), 100u);
    s.flushUpTo(250);
    EXPECT_EQ(s.nextBoundary(), 300u);
    EXPECT_EQ(s.samples(), 2u);
}

TEST(TelemetrySampler, RecorderSinkGetsCounterEvents)
{
    TraceRecorder rec(64);
    TelemetrySampler s(SeriesDomain::Ticks, 10);
    std::uint64_t v = 0;
    s.registry().add("v", MetricKind::Counter, &v);
    s.attachRecorder(&rec);

    v = 3;
    s.flushUpTo(10);
    v = 9;
    s.finish(25);

    ASSERT_EQ(rec.tracks().size(), 1u);
    EXPECT_EQ(rec.tracks()[0], "metrics");
    // 3 samples (10, 20, 25) x 1 metric.
    ASSERT_EQ(rec.size(), 3u);
    EXPECT_EQ(rec.at(0).type, TraceRecorder::Ev::Counter);
    EXPECT_EQ(rec.at(0).start, 10u);
    EXPECT_EQ(rec.at(0).arg0, 3u);
    EXPECT_EQ(rec.at(2).start, 25u);
    EXPECT_EQ(rec.at(2).arg0, 9u);
}

// ---------------------------------------------------------------------
// Artifact + validator.
// ---------------------------------------------------------------------

TelemetrySampler
tinySeries()
{
    TelemetrySampler s(SeriesDomain::Refs, 4);
    static std::uint64_t v;
    v = 0;
    s.registry().add("refs.completed", MetricKind::Counter, &v);
    for (std::uint64_t t = 1; t <= 10; ++t) {
        v = t;
        s.flushUpTo(t);
    }
    s.finish(10);
    return s;
}

TEST(SeriesArtifact, RoundTripsThroughValidator)
{
    const TelemetrySampler s = tinySeries();
    Json params = Json::object();
    params.set("refs", 10);
    const Json a = makeSeriesArtifact("test", std::move(params), s);

    EXPECT_EQ(validateSeriesArtifact(a), "");
    EXPECT_EQ(a.at("schema").asString(), seriesSchemaName);
    EXPECT_FALSE(a.contains("meta")) << "series artifacts carry no "
                                        "host-dependent meta block";
    EXPECT_EQ(a.at("series").at("samples").size(), 3u); // 4, 8, 10
    EXPECT_EQ(a.at("summary").at("finalT").asUint(), 10u);

    const Json reparsed = Json::parse(a.dump());
    EXPECT_EQ(validateSeriesArtifact(reparsed), "");
}

TEST(SeriesArtifact, ValidatorRejectsBrokenDocuments)
{
    const TelemetrySampler s = tinySeries();
    const Json good = makeSeriesArtifact("test", Json(), s);
    ASSERT_EQ(validateSeriesArtifact(good), "");

    Json badSchema = good;
    badSchema.set("schema", "dir2b.sweep");
    EXPECT_NE(validateSeriesArtifact(badSchema), "");

    Json badVersion = good;
    badVersion.set("schema_version", seriesSchemaVersion + 1);
    EXPECT_NE(validateSeriesArtifact(badVersion), "");

    Json withMeta = good;
    Json meta = Json::object();
    meta.set("threads", 1);
    withMeta.set("meta", std::move(meta));
    EXPECT_NE(validateSeriesArtifact(withMeta), "")
        << "a meta block would break byte-compare determinism checks";
}

TEST(SeriesArtifact, ProvenanceObjectMatchesSampler)
{
    const TelemetrySampler s = tinySeries();
    const Json p = seriesProvenanceJson(s);
    EXPECT_EQ(p.at("domain").asString(), "refs");
    EXPECT_EQ(p.at("interval").asUint(), 4u);
    EXPECT_EQ(p.at("metrics").asUint(), 1u);
    EXPECT_EQ(p.at("samples").asUint(), 3u);
}

TEST(Fixtures, SeriesFixturesValidateAsExpected)
{
    const std::string dir = DIR2B_FIXTURES;
    const Json good = readArtifact(dir + "/series_minimal_good.json");
    EXPECT_EQ(validateSeriesArtifact(good), "");

    const Json bad =
        readArtifact(dir + "/series_bad_nonmonotonic.json");
    const std::string err = validateSeriesArtifact(bad);
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("decreased"), std::string::npos) << err;
}

TEST(Fixtures, SweepSeriesProvenanceGatesOnSchemaV5)
{
    const std::string dir = DIR2B_FIXTURES;
    const Json v5 = readArtifact(dir + "/sweep_v5_series_good.json");
    EXPECT_EQ(validateSweepArtifact(v5), "");

    const Json v4 = readArtifact(dir + "/sweep_v4_series_too_old.json");
    const std::string err = validateSweepArtifact(v4);
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("schema_version >= 5"), std::string::npos)
        << err;
}

// ---------------------------------------------------------------------
// Do-no-harm + serial/sharded identity on the timed tier.
// ---------------------------------------------------------------------

std::uint64_t
fold(std::uint64_t h, std::uint64_t x)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (x >> (8 * i)) & 0xff;
        h *= 0x100000001b3ULL;
    }
    return h;
}

TimedConfig
timedConfig(TimedProto proto, TelemetrySampler *sampler)
{
    TimedConfig cfg;
    cfg.protocol = proto;
    cfg.numProcs = 4;
    cfg.numModules = 2;
    cfg.cacheGeom.sets = 16;
    cfg.cacheGeom.ways = 2;
    cfg.perBlockConcurrency = true;
    cfg.network = NetKind::Crossbar;
    cfg.sampler = sampler;
    return cfg;
}

SyntheticConfig
timedWorkload()
{
    SyntheticConfig scfg;
    scfg.numProcs = 4;
    scfg.q = 0.2;
    scfg.w = 0.3;
    scfg.sharedBlocks = 8;
    scfg.privateBlocks = 64;
    scfg.hotBlocks = 16;
    scfg.seed = 0xd16e57;
    return scfg;
}

std::uint64_t
digestTimedResult(const TimedRunResult &r)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    h = fold(h, r.finalTick);
    h = fold(h, r.refsCompleted);
    h = fold(h, r.eventsExecuted);
    h = fold(h, r.stolenCycles);
    h = fold(h, r.mrequestConversions);
    h = fold(h, r.netMessages);
    h = fold(h, r.broadcasts);
    h = fold(h, r.netWaitCycles);
    h = fold(h, r.latencyP50);
    h = fold(h, r.latencyP99);
    return h;
}

/** Run the fixed workload on either engine, optionally sampled. */
std::uint64_t
timedDigest(TimedProto proto, unsigned shards,
            TelemetrySampler *sampler)
{
    const TimedConfig cfg = timedConfig(proto, sampler);
    SyntheticStream stream(timedWorkload());
    auto src = [&](ProcId p) -> std::optional<MemRef> {
        return stream.nextFor(p);
    };
    if (shards <= 1) {
        TimedSystem sys(cfg);
        return digestTimedResult(sys.run(src, 400));
    }
    ShardedTimedSystem sys(cfg, shards);
    return digestTimedResult(sys.run(src, 400));
}

TEST(DoNoHarm, TimedSamplingOnAndOffProduceIdenticalDigests)
{
    for (TimedProto proto : {TimedProto::TwoBit, TimedProto::FullMap,
                             TimedProto::YenFu}) {
        for (unsigned shards : {1u, 4u}) {
            const auto off = timedDigest(proto, shards, nullptr);
            TelemetrySampler s(SeriesDomain::Ticks, 512);
            const auto on = timedDigest(proto, shards, &s);
            EXPECT_EQ(on, off)
                << "sampler perturbed the simulation (shards="
                << shards << ")";
            EXPECT_GT(s.samples(), 0u);
        }
    }
}

TEST(Identity, SerialAndShardedEmitByteIdenticalSeries)
{
    for (std::uint64_t interval : {64u, 512u, 1000000u}) {
        TelemetrySampler serial(SeriesDomain::Ticks, interval);
        TelemetrySampler sharded(SeriesDomain::Ticks, interval);
        timedDigest(TimedProto::TwoBit, 1, &serial);
        timedDigest(TimedProto::TwoBit, 4, &sharded);

        Json params = Json::object();
        params.set("refs", 400);
        Json a = makeSeriesArtifact("test", params, serial);
        Json b = makeSeriesArtifact("test", params, sharded);
        EXPECT_EQ(a.dump(), b.dump())
            << "interval " << interval
            << ": serial and sharded series differ";
        EXPECT_EQ(validateSeriesArtifact(a), "");
    }
}

TEST(Identity, TimedSeriesFinalSampleMatchesRunTotals)
{
    TelemetrySampler s(SeriesDomain::Ticks, 512);
    const TimedConfig cfg = timedConfig(TimedProto::TwoBit, &s);
    SyntheticStream stream(timedWorkload());
    TimedSystem sys(cfg);
    const TimedRunResult r = sys.run(
        [&](ProcId p) -> std::optional<MemRef> {
            return stream.nextFor(p);
        },
        400);

    ASSERT_GT(s.samples(), 1u);
    const std::size_t last = s.samples() - 1;
    EXPECT_EQ(s.sampleT(last), r.finalTick);
    const auto &reg = s.registry();
    EXPECT_EQ(s.sampleValue(last, reg.find("refs.completed")),
              r.refsCompleted);
    EXPECT_EQ(s.sampleValue(last, reg.find("net.messages")),
              r.netMessages);
    EXPECT_EQ(s.sampleValue(last, reg.find("net.broadcasts")),
              r.broadcasts);
    EXPECT_EQ(s.sampleValue(last, reg.find("cache.stolen_cycles")),
              r.stolenCycles);

    // Counters are monotone across samples (validator property, but
    // asserted here against the live engine too).
    const std::size_t msgs = reg.find("net.messages");
    for (std::size_t i = 1; i < s.samples(); ++i)
        EXPECT_LE(s.sampleValue(i - 1, msgs), s.sampleValue(i, msgs));
}

// ---------------------------------------------------------------------
// Do-no-harm on the functional tier.
// ---------------------------------------------------------------------

std::uint64_t
functionalDigest(TelemetrySampler *sampler)
{
    ProtoConfig cfg;
    cfg.numProcs = 4;
    cfg.cacheGeom.sets = 16;
    cfg.cacheGeom.ways = 2;
    cfg.numModules = 2;
    cfg.nonCacheableBase = sharedRegionBase;
    auto proto = makeProtocol("two_bit", cfg);

    if (sampler)
        registerFunctionalMetrics(sampler->registry(), *proto);

    SyntheticConfig scfg = timedWorkload();
    SyntheticStream stream(scfg);
    RunOptions opts;
    opts.numRefs = 4000;
    opts.sampler = sampler;
    const RunResult r = runFunctional(*proto, stream, opts);

    std::uint64_t h = 0xcbf29ce484222325ULL;
    AccessCounts::forEachField(
        r.counts,
        [&h](const char *, std::uint64_t v) { h = fold(h, v); });
    h = fold(h, r.sharedRefs);
    h = fold(h, r.sharedWrites);
    h = fold(h, r.sharedHits);
    return h;
}

TEST(DoNoHarm, FunctionalSamplingOnAndOffProduceIdenticalDigests)
{
    const auto off = functionalDigest(nullptr);
    TelemetrySampler s(SeriesDomain::Refs, 500);
    const auto on = functionalDigest(&s);
    EXPECT_EQ(on, off) << "sampler perturbed the functional run";

    // 4000 refs / 500 = 8 boundaries, the last exactly at finalT.
    ASSERT_EQ(s.samples(), 8u);
    EXPECT_EQ(s.sampleT(7), 4000u);
    const auto &reg = s.registry();
    EXPECT_EQ(s.sampleValue(7, reg.find("refs.completed")), 4000u);
    const std::size_t reads = reg.find("counts.reads");
    const std::size_t writes = reg.find("counts.writes");
    ASSERT_NE(reads, MetricRegistry::npos);
    EXPECT_EQ(s.sampleValue(7, reads) + s.sampleValue(7, writes),
              4000u);
}

} // namespace
} // namespace dir2b
