/**
 * @file
 * Tests for the functional system runner: measured model parameters
 * (q, w, h), state-occupancy sampling, and the Table 4-1 metric
 * arithmetic — the plumbing bench_sim_validation depends on.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/two_bit_protocol.hh"
#include "proto/protocol_factory.hh"
#include "system/func_system.hh"
#include "trace/synthetic.hh"
#include "trace/trace_io.hh"

namespace dir2b
{
namespace
{

ProtoConfig
config(ProcId n = 4)
{
    ProtoConfig cfg;
    cfg.numProcs = n;
    cfg.cacheGeom.sets = 16;
    cfg.cacheGeom.ways = 4;
    cfg.numModules = 2;
    return cfg;
}

TEST(FuncSystem, RunsExactlyRequestedReferences)
{
    auto proto = makeProtocol("two_bit", config());
    SyntheticConfig scfg;
    scfg.numProcs = 4;
    SyntheticStream stream(scfg);
    RunOptions opts;
    opts.numRefs = 1234;
    const RunResult r = runFunctional(*proto, stream, opts);
    EXPECT_EQ(r.counts.refs(), 1234u);
}

TEST(FuncSystem, StopsWhenStreamEnds)
{
    auto proto = makeProtocol("two_bit", config());
    VectorStream stream({{0, 1, false}, {1, 2, true}, {2, 3, false}});
    RunOptions opts;
    opts.numRefs = 1000000;
    const RunResult r = runFunctional(*proto, stream, opts);
    EXPECT_EQ(r.counts.refs(), 3u);
}

TEST(FuncSystem, MeasuredQAndWTrackTheStream)
{
    auto proto = makeProtocol("two_bit", config());
    SyntheticConfig scfg;
    scfg.numProcs = 4;
    scfg.q = 0.2;
    scfg.w = 0.35;
    scfg.seed = 9;
    SyntheticStream stream(scfg);
    RunOptions opts;
    opts.numRefs = 60000;
    const RunResult r = runFunctional(*proto, stream, opts);
    EXPECT_NEAR(r.measuredQ(opts.numRefs), 0.2, 0.01);
    EXPECT_NEAR(r.measuredW(), 0.35, 0.02);
}

TEST(FuncSystem, SharedHitRatioRisesWithLocality)
{
    auto run = [](double locality) {
        auto proto = makeProtocol("two_bit", config());
        SyntheticConfig scfg;
        scfg.numProcs = 4;
        scfg.q = 0.3;
        scfg.w = 0.2;
        scfg.sharedBlocks = 64;
        scfg.sharedLocality = locality;
        scfg.seed = 4;
        SyntheticStream stream(scfg);
        RunOptions opts;
        opts.numRefs = 40000;
        return runFunctional(*proto, stream, opts).measuredH();
    };
    const double h0 = run(0.0);
    const double h9 = run(0.9);
    EXPECT_GT(h9, h0 + 0.2);
}

TEST(FuncSystem, OccupancySamplingSumsToOne)
{
    auto proto = makeProtocol("two_bit", config());
    SyntheticConfig scfg;
    scfg.numProcs = 4;
    scfg.q = 0.3;
    scfg.sharedBlocks = 8;
    SyntheticStream stream(scfg);
    RunOptions opts;
    opts.numRefs = 20000;
    opts.sampleEvery = 50;
    opts.sharedBlocks = 8;
    const RunResult r = runFunctional(*proto, stream, opts);
    EXPECT_GT(r.stateSamples, 0u);
    double sum = 0.0;
    for (double p : r.stateOccupancy)
        sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // With writes flowing, PresentM must show up.
    EXPECT_GT(
        r.stateOccupancy[static_cast<int>(GlobalState::PresentM)], 0.0);
}

TEST(FuncSystem, TableSchemeSamplesIdenticalOccupancy)
{
    // The table-driven re-expression exposes its directory state
    // through the same sampler; on the same stream it must produce
    // exactly the occupancy profile of the hand-written scheme.
    auto run = [](const std::string &name) {
        auto proto = makeProtocol(name, config());
        SyntheticConfig scfg;
        scfg.numProcs = 4;
        scfg.q = 0.3;
        scfg.sharedBlocks = 8;
        scfg.seed = 11;
        SyntheticStream stream(scfg);
        RunOptions opts;
        opts.numRefs = 20000;
        opts.sampleEvery = 50;
        opts.sharedBlocks = 8;
        return runFunctional(*proto, stream, opts);
    };
    const RunResult hand = run("two_bit");
    const RunResult tab = run("two_bit_table");
    ASSERT_GT(tab.stateSamples, 0u);
    EXPECT_EQ(tab.stateSamples, hand.stateSamples);
    for (std::size_t s = 0; s < 4; ++s)
        EXPECT_DOUBLE_EQ(tab.stateOccupancy[s], hand.stateOccupancy[s])
            << "state " << s;
}

TEST(FuncSystem, PerCacheMetricMatchesDefinition)
{
    auto proto = makeProtocol("two_bit", config(4));
    SyntheticConfig scfg;
    scfg.numProcs = 4;
    scfg.q = 0.3;
    scfg.w = 0.5;
    scfg.sharedBlocks = 8;
    SyntheticStream stream(scfg);
    RunOptions opts;
    opts.numRefs = 10000;
    const RunResult r = runFunctional(*proto, stream, opts);
    const double tSum = static_cast<double>(r.counts.uselessCmds) /
                        static_cast<double>(r.counts.refs());
    EXPECT_NEAR(r.perCacheUselessPerRef, 3.0 * tSum, 1e-12);
}

TEST(FuncSystem, OracleCatchesInjectedCorruption)
{
    // White-box: run a two-bit system, then corrupt memory behind the
    // protocol's back and verify the next read trips the oracle.
    // (Achieved by replaying a mismatched trace against a *different*
    // protocol instance whose writes differ — the oracle must reject.)
    TwoBitProtocol proto(config());
    CoherenceOracle oracle;
    const Value v1 = oracle.freshValue();
    proto.access(0, 5, true, v1);
    oracle.onWrite(5, v1);
    // A second write the oracle does not see:
    proto.access(1, 5, true, oracle.freshValue());
    EXPECT_DEATH(oracle.onRead(5, proto.access(2, 5, false)),
                 "coherence violation");
}

TEST(FuncSystem, RefsPerProcessorBalanced)
{
    auto proto = makeProtocol("two_bit", config(4));
    SyntheticConfig scfg;
    scfg.numProcs = 4;
    SyntheticStream stream(scfg);
    RunOptions opts;
    opts.numRefs = 4000;
    runFunctional(*proto, stream, opts);
    for (ProcId p = 0; p < 4; ++p)
        EXPECT_EQ(proto->refsIssuedBy(p), 1000u);
}

} // namespace
} // namespace dir2b
