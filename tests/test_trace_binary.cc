/**
 * @file
 * Binary trace format tests: write/read round trips (including the
 * empty, single-record, exact-block-boundary and multi-block cases),
 * the structural guards (magic, version, endianness, truncation) and
 * the digest layers (trace_binary.hh, docs/TRACES.md).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "trace/synthetic.hh"
#include "trace/trace_binary.hh"
#include "util/random.hh"

namespace dir2b
{
namespace
{

/** Fresh temp path per test; removed on destruction. */
class TempTrace
{
  public:
    explicit TempTrace(const std::string &tag)
    {
        path_ = testing::TempDir() + "trace_binary_" + tag + ".d2t";
        std::remove(path_.c_str());
    }

    ~TempTrace() { std::remove(path_.c_str()); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Deterministic but irregular reference sequence. */
std::vector<MemRef>
someRefs(std::size_t n, std::uint64_t seed = 42)
{
    Rng rng(seed);
    std::vector<MemRef> refs;
    refs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        MemRef r;
        r.proc = static_cast<ProcId>(rng.range(5));
        r.addr = rng.range(std::uint64_t{1} << 40);
        r.write = rng.range(4) == 0;
        refs.push_back(r);
    }
    return refs;
}

void
writeAll(const std::string &path, const std::vector<MemRef> &refs,
         std::uint32_t blockRecords)
{
    TraceWriter w(path, blockRecords);
    w.append(refs.data(), refs.size());
    w.finish();
}

/** Round trip `n` records at block capacity `blockRecords` and check
 *  every header field, block shape and record against the source. */
void
roundTrip(std::size_t n, std::uint32_t blockRecords)
{
    TempTrace t("roundtrip");
    const std::vector<MemRef> refs = someRefs(n);
    writeAll(t.path(), refs, blockRecords);

    TraceReader reader(t.path());
    const TraceFileHeader &h = reader.header();
    EXPECT_EQ(h.version, traceFormatVersion);
    EXPECT_EQ(h.recordBytes, sizeof(TraceRecord));
    EXPECT_EQ(h.blockRecords, blockRecords);
    EXPECT_EQ(reader.totalRecords(), n);
    const std::size_t wantBlocks =
        (n + blockRecords - 1) / blockRecords;
    EXPECT_EQ(reader.numBlocks(), wantBlocks);

    std::size_t i = 0;
    for (std::size_t b = 0; b < reader.numBlocks(); ++b) {
        EXPECT_EQ(reader.blockHeader(b).firstIndex, i);
        for (const TraceRecord &rec : reader.block(b)) {
            ASSERT_LT(i, refs.size());
            EXPECT_EQ(rec.addr, refs[i].addr);
            EXPECT_EQ(rec.proc, refs[i].proc);
            EXPECT_EQ(rec.write(), refs[i].write);
            ++i;
        }
    }
    EXPECT_EQ(i, n);
    EXPECT_EQ(reader.verify(), h.fileDigest);
}

TEST(TraceBinary, RoundTripSingleRecord) { roundTrip(1, 8); }

TEST(TraceBinary, RoundTripPartialBlock) { roundTrip(5, 8); }

TEST(TraceBinary, RoundTripExactBlockBoundary) { roundTrip(16, 8); }

TEST(TraceBinary, RoundTripManyBlocksWithTail) { roundTrip(1003, 64); }

TEST(TraceBinary, RoundTripDefaultBlockSize)
{
    roundTrip(2000, traceDefaultBlockRecords);
}

TEST(TraceBinary, EmptyTrace)
{
    TempTrace t("empty");
    {
        TraceWriter w(t.path(), 8);
        w.finish();
        EXPECT_EQ(w.recordsWritten(), 0u);
        EXPECT_EQ(w.blocksWritten(), 0u);
    }
    TraceReader reader(t.path());
    EXPECT_EQ(reader.totalRecords(), 0u);
    EXPECT_EQ(reader.numBlocks(), 0u);
    EXPECT_EQ(reader.header().numProcs, 0u);
    EXPECT_EQ(reader.verify(), traceDigestSeed);
}

TEST(TraceBinary, HeaderRecordsProcCount)
{
    TempTrace t("procs");
    std::vector<MemRef> refs = someRefs(50);
    refs.push_back(MemRef{11, 0x1234, false});
    writeAll(t.path(), refs, 16);
    TraceReader reader(t.path());
    EXPECT_EQ(reader.header().numProcs, 12u);
}

TEST(TraceBinary, DestructorFinishes)
{
    TempTrace t("dtor");
    const std::vector<MemRef> refs = someRefs(30);
    {
        TraceWriter w(t.path(), 8);
        w.append(refs.data(), refs.size());
        // no finish(): the destructor must flush and patch.
    }
    TraceReader reader(t.path());
    EXPECT_EQ(reader.totalRecords(), 30u);
    reader.verify();
}

/** Property: the writer's digest equals a straight FNV-1a fold over
 *  the record bytes, independent of block capacity. */
TEST(TraceBinary, DigestIndependentOfBlockSize)
{
    const std::vector<MemRef> refs = someRefs(500, 7);
    std::vector<TraceRecord> raw;
    for (const MemRef &r : refs)
        raw.push_back(TraceRecord::fromRef(r));
    const std::uint64_t want =
        traceDigest(raw.data(), raw.size() * sizeof(TraceRecord));

    for (const std::uint32_t blockRecords : {1u, 7u, 100u, 512u}) {
        TempTrace t("digest");
        writeAll(t.path(), refs, blockRecords);
        TraceReader reader(t.path());
        EXPECT_EQ(reader.header().fileDigest, want);
        EXPECT_EQ(reader.verify(), want);
    }
}

// ------------------------------------------------------------- guards

/** Clobber `len` bytes at `off` in the file at `path`. */
void
clobber(const std::string &path, long off, const void *bytes,
        std::size_t len)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, off, SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(bytes, 1, len, f), len);
    std::fclose(f);
}

TEST(TraceBinaryDeath, RejectsMissingFile)
{
    EXPECT_DEATH(TraceReader("/nonexistent/no_such_trace.d2t"),
                 "cannot open trace");
}

TEST(TraceBinaryDeath, RejectsCorruptMagic)
{
    TempTrace t("badmagic");
    writeAll(t.path(), someRefs(20), 8);
    clobber(t.path(), 0, "NOTATRCE", 8);
    EXPECT_DEATH(TraceReader r(t.path()), "bad magic");
}

TEST(TraceBinaryDeath, RejectsUnsupportedVersion)
{
    TempTrace t("badversion");
    writeAll(t.path(), someRefs(20), 8);
    const std::uint32_t v = traceFormatVersion + 9;
    clobber(t.path(), 8, &v, sizeof(v));
    EXPECT_DEATH(TraceReader r(t.path()), "format version");
}

TEST(TraceBinaryDeath, RejectsBigEndianHeader)
{
    TempTrace t("bigendian");
    writeAll(t.path(), someRefs(20), 8);
    // The four endian-tag bytes as a big-endian writer would lay
    // them out.
    const unsigned char swapped[4] = {0x01, 0x02, 0x03, 0x04};
    clobber(t.path(), 12, swapped, sizeof(swapped));
    EXPECT_DEATH(TraceReader r(t.path()), "endianness tag");
}

TEST(TraceBinaryDeath, RejectsTruncatedFile)
{
    TempTrace t("truncated");
    writeAll(t.path(), someRefs(100), 16);
    ASSERT_EQ(::truncate(t.path().c_str(),
                         static_cast<long>(sizeof(TraceFileHeader) +
                                           sizeof(TraceBlockHeader) +
                                           5 * sizeof(TraceRecord))),
              0);
    EXPECT_DEATH(TraceReader r(t.path()), "truncated");
}

TEST(TraceBinaryDeath, RejectsFileShorterThanHeader)
{
    TempTrace t("stub");
    std::ofstream(t.path()) << "short";
    EXPECT_DEATH(TraceReader r(t.path()), "file too short");
}

TEST(TraceBinaryDeath, VerifyCatchesPayloadCorruption)
{
    TempTrace t("corrupt");
    writeAll(t.path(), someRefs(64), 16);
    // Flip one record byte in the third block; open still succeeds
    // (structure is intact), verify() must name block 2.
    const long off = static_cast<long>(
        sizeof(TraceFileHeader) +
        3 * sizeof(TraceBlockHeader) +
        (2 * 16 + 3) * sizeof(TraceRecord) + 1);
    const unsigned char junk = 0xa5;
    clobber(t.path(), off, &junk, 1);
    TraceReader reader(t.path());
    EXPECT_DEATH(reader.verify(), "block 2 digest mismatch");
}

TEST(TraceBinaryDeath, RejectsBrokenBlockChain)
{
    TempTrace t("chain");
    writeAll(t.path(), someRefs(64), 16);
    // Corrupt the second block header's firstIndex.
    const std::uint64_t bogus = 999;
    const long off = static_cast<long>(
        sizeof(TraceFileHeader) + sizeof(TraceBlockHeader) +
        16 * sizeof(TraceRecord) + 8);
    clobber(t.path(), off, &bogus, sizeof(bogus));
    EXPECT_DEATH(TraceReader r(t.path()), "starts at record 999");
}

TEST(TraceBinaryDeath, WriterRejectsZeroBlockCapacity)
{
    TempTrace t("zerocap");
    EXPECT_DEATH(TraceWriter w(t.path(), 0), "block size");
}

// --------------------------------------------------- replay frontends

TEST(TraceBinary, MmapStreamMatchesSource)
{
    TempTrace t("stream");
    const std::vector<MemRef> refs = someRefs(200, 3);
    writeAll(t.path(), refs, 32);
    TraceReader reader(t.path());
    MmapTraceStream stream(reader);
    for (const MemRef &want : refs) {
        const auto got = stream.next();
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(got->addr, want.addr);
        EXPECT_EQ(got->proc, want.proc);
        EXPECT_EQ(got->write, want.write);
    }
    EXPECT_FALSE(stream.next().has_value());
    stream.rewind();
    EXPECT_TRUE(stream.next().has_value());
}

TEST(TraceBinary, BatchStreamCoversEveryRecordOnce)
{
    TempTrace t("batches");
    const std::vector<MemRef> refs = someRefs(150, 9);
    writeAll(t.path(), refs, 32);
    TraceReader reader(t.path());
    TraceBatchStream batches(reader);
    std::size_t i = 0;
    for (AccessBatch b = batches.nextBatch(); !b.empty();
         b = batches.nextBatch())
        for (const TraceRecord &rec : b) {
            EXPECT_EQ(rec.addr, refs[i].addr);
            ++i;
        }
    EXPECT_EQ(i, refs.size());
    EXPECT_TRUE(batches.nextBatch().empty());
}

TEST(TraceBinary, ProcSourceSplitsByProcessor)
{
    TempTrace t("procsrc");
    const std::vector<MemRef> refs = someRefs(300, 11);
    writeAll(t.path(), refs, 64);
    TraceReader reader(t.path());
    TraceProcSource src(reader, 5);
    for (ProcId p = 0; p < 5; ++p) {
        for (const MemRef &want : refs) {
            if (want.proc != p)
                continue;
            const auto got = src.next(p);
            ASSERT_TRUE(got.has_value());
            EXPECT_EQ(got->addr, want.addr);
            EXPECT_EQ(got->write, want.write);
        }
        EXPECT_FALSE(src.next(p).has_value());
    }
}

TEST(TraceBinaryDeath, ProcSourceRejectsUndersizedSystem)
{
    TempTrace t("procovf");
    std::vector<MemRef> refs = someRefs(10);
    refs.push_back(MemRef{7, 0x40, true});
    writeAll(t.path(), refs, 16);
    TraceReader reader(t.path());
    EXPECT_DEATH(TraceProcSource s(reader, 4), "8 processors");
}

} // namespace
} // namespace dir2b
