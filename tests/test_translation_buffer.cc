/**
 * @file
 * Tests for the §4.4 translation-buffer enhancement: the raw buffer
 * and the enhanced protocol's broadcast elimination.
 */

#include <gtest/gtest.h>

#include "core/translation_buffer.hh"
#include "core/two_bit_tb_protocol.hh"
#include "trace/reference.hh"

namespace dir2b
{
namespace
{

ProtoConfig
config(ProcId n = 4, std::size_t tbCapacity = 64)
{
    ProtoConfig cfg;
    cfg.numProcs = n;
    cfg.cacheGeom.sets = 64;
    cfg.cacheGeom.ways = 4;
    cfg.numModules = 1;
    cfg.tbCapacity = tbCapacity;
    return cfg;
}

TEST(TranslationBuffer, MissThenInstallThenHit)
{
    TranslationBuffer tb(4);
    EXPECT_FALSE(tb.lookup(10).has_value());
    tb.installExact(10, {1, 2});
    auto h = tb.lookup(10);
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(*h, (std::vector<ProcId>{1, 2}));
    EXPECT_EQ(tb.hits(), 1u);
    EXPECT_EQ(tb.misses(), 1u);
    EXPECT_DOUBLE_EQ(tb.hitRatio(), 0.5);
}

TEST(TranslationBuffer, AddRemoveHolderMaintainsSet)
{
    TranslationBuffer tb(4);
    tb.installExact(10, {0});
    tb.addHolder(10, 2);
    tb.addHolder(10, 2); // duplicate is a no-op
    auto h = tb.lookup(10);
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(*h, (std::vector<ProcId>{0, 2}));
    tb.removeHolder(10, 0);
    h = tb.lookup(10);
    EXPECT_EQ(*h, std::vector<ProcId>{2});
}

TEST(TranslationBuffer, AddHolderToMissingEntryIsIgnored)
{
    TranslationBuffer tb(4);
    tb.addHolder(99, 1); // no entry: the set is unknown, stay unknown
    EXPECT_FALSE(tb.lookup(99).has_value());
}

TEST(TranslationBuffer, LruCapacityEviction)
{
    TranslationBuffer tb(2);
    tb.installExact(1, {0});
    tb.installExact(2, {0});
    tb.installExact(3, {0}); // evicts 1
    EXPECT_FALSE(tb.lookup(1).has_value());
    EXPECT_TRUE(tb.lookup(2).has_value());
    EXPECT_TRUE(tb.lookup(3).has_value());
}

TEST(TranslationBuffer, ZeroCapacityNeverStores)
{
    TranslationBuffer tb(0);
    tb.installExact(1, {0});
    EXPECT_FALSE(tb.lookup(1).has_value());
}

TEST(TwoBitTb, HitConvertsBroadcastToDirected)
{
    const ProcId n = 8;
    TwoBitTbProtocol p(config(n));
    const Addr a = sharedRegionBase;
    p.access(0, a, false); // Absent -> Present1; TB learns {0}
    p.access(1, a, false); // Present*; TB updates {0,1}
    p.access(2, a, true, 5); // write miss: TB hit -> directed

    const AccessCounts &d = p.lastDelta();
    EXPECT_EQ(d.broadcasts, 0u);
    EXPECT_EQ(d.directedCmds, 2u);
    EXPECT_EQ(d.invalidations, 2u);
    EXPECT_EQ(d.uselessCmds, 0u);
    EXPECT_EQ(d.tbHits, 1u);
}

TEST(TwoBitTb, QueryHitGoesDirectlyToOwner)
{
    const ProcId n = 8;
    TwoBitTbProtocol p(config(n));
    const Addr a = sharedRegionBase + 1;
    p.access(0, a, true, 9); // PresentM; TB learns {0}
    p.access(1, a, false);   // read miss on PresentM: directed purge

    const AccessCounts &d = p.lastDelta();
    EXPECT_EQ(d.broadcasts, 0u);
    EXPECT_EQ(d.directedCmds, 1u);
    EXPECT_EQ(d.purges, 1u);
    EXPECT_EQ(d.uselessCmds, 0u);
    EXPECT_EQ(p.access(1, a, false), 9u);
}

TEST(TwoBitTb, CapacityMissFallsBackToBroadcast)
{
    const ProcId n = 4;
    // Tiny buffer: one entry.
    TwoBitTbProtocol p(config(n, 1));
    const Addr a = sharedRegionBase;
    const Addr b = sharedRegionBase + 1;
    p.access(0, a, true, 1); // TB: {a -> {0}}
    p.access(0, b, true, 2); // TB: {b -> {0}}, a evicted
    p.access(1, a, false);   // read miss on PresentM: TB miss

    const AccessCounts &d = p.lastDelta();
    EXPECT_EQ(d.broadcasts, 1u);
    EXPECT_EQ(d.tbMisses, 1u);
    EXPECT_EQ(d.uselessCmds, n - 2u);
    EXPECT_EQ(p.access(1, a, false), 1u);
}

TEST(TwoBitTb, LargeBufferEliminatesAllUselessCommands)
{
    // With an unbounded buffer every broadcast-worthy event after the
    // first touch of a block is directed: the scheme behaves like the
    // full map, which is the paper's limiting claim.
    TwoBitTbProtocol p(config(4, 1 << 20));
    Rng rng(3);
    for (int i = 0; i < 3000; ++i) {
        const auto proc = static_cast<ProcId>(rng.range(4));
        const Addr a = sharedRegionBase + rng.range(8);
        p.access(proc, a, rng.chance(0.3), 1000u + i);
        p.checkInvariants();
    }
    EXPECT_EQ(p.counts().uselessCmds, 0u);
    EXPECT_EQ(p.counts().broadcasts, 0u);
    EXPECT_DOUBLE_EQ(p.tbHitRatio(), 1.0);
}

TEST(TwoBitTb, SmallBufferInterpolatesTowardFullMap)
{
    // The paper: "if a 90% hit ratio ... could be maintained, 90% of
    // the added overhead resulting from the broadcasts is eliminated."
    // Directional check: a larger buffer gives fewer useless commands.
    auto run = [](std::size_t capacity) {
        TwoBitTbProtocol p(config(4, capacity));
        Rng rng(11);
        for (int i = 0; i < 5000; ++i) {
            const auto proc = static_cast<ProcId>(rng.range(4));
            const Addr a = sharedRegionBase + rng.range(64);
            p.access(proc, a, rng.chance(0.3), 5000u + i);
        }
        return p.counts().uselessCmds;
    };
    const auto noTb = run(0);
    const auto smallTb = run(8);
    const auto bigTb = run(256);
    EXPECT_GT(noTb, smallTb);
    EXPECT_GT(smallTb, bigTb);
}

} // namespace
} // namespace dir2b
