/**
 * @file
 * Geometry/policy property sweep: every protocol must stay coherent
 * across processor counts (including the n=2 edge where n-2 = 0
 * useless commands on owner queries), replacement policies, cache
 * shapes (direct-mapped through high associativity) and module
 * counts.  Complements test_property.cc's workload sweep.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "proto/protocol_factory.hh"
#include "system/func_system.hh"
#include "trace/synthetic.hh"

namespace dir2b
{
namespace
{

struct GeomParam
{
    ProcId procs;
    std::size_t sets;
    std::size_t ways;
    ReplPolicyKind repl;
    ModuleId modules;
};

using Param = std::tuple<std::string, GeomParam>;

class GeometryProperty : public ::testing::TestWithParam<Param>
{
};

TEST_P(GeometryProperty, CoherentAcrossShapes)
{
    const auto &[protoName, g] = GetParam();

    ProtoConfig cfg;
    cfg.numProcs = g.procs;
    cfg.cacheGeom.sets = g.sets;
    cfg.cacheGeom.ways = g.ways;
    cfg.cacheGeom.repl = g.repl;
    cfg.numModules = g.modules;
    cfg.tbCapacity = 8;
    cfg.biasCapacity = 4;
    cfg.nonCacheableBase = sharedRegionBase;

    auto proto = makeProtocol(protoName, cfg);

    SyntheticConfig scfg;
    scfg.numProcs = g.procs;
    scfg.q = 0.2;
    scfg.w = 0.4;
    scfg.sharedBlocks = 10;
    scfg.privateBlocks = 3 * g.sets * g.ways; // force evictions
    scfg.hotBlocks = g.sets * g.ways / 2 + 1;
    scfg.seed = 77;
    SyntheticStream stream(scfg);

    RunOptions opts;
    opts.numRefs = 8000;
    opts.invariantEvery = 128;
    const RunResult r = runFunctional(*proto, stream, opts);

    EXPECT_EQ(r.counts.refs(), opts.numRefs);
    // Eviction traffic must actually have occurred (the sweep's
    // purpose): miss ratio bounded away from zero.
    EXPECT_GT(r.counts.misses(), opts.numRefs / 100);
    proto->checkInvariants();
}

const GeomParam geometries[] = {
    {2, 4, 1, ReplPolicyKind::Lru, 1},     // minimal: 2 procs, DM
    {4, 1, 4, ReplPolicyKind::Lru, 2},     // fully associative
    {4, 8, 2, ReplPolicyKind::Fifo, 3},    // FIFO replacement
    {4, 8, 2, ReplPolicyKind::Random, 2},  // random replacement
    {8, 16, 1, ReplPolicyKind::Lru, 5},    // direct-mapped, odd mods
    {16, 4, 2, ReplPolicyKind::Random, 4}, // many procs, tiny caches
};

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometryProperty,
    ::testing::Combine(
        ::testing::Values("two_bit", "two_bit_tb", "two_bit_wt",
                          "full_map", "full_map_local", "dup_dir",
                          "classical", "write_once", "illinois",
                          "software"),
        ::testing::ValuesIn(geometries)),
    [](const ::testing::TestParamInfo<Param> &info) {
        // No structured bindings here: a comma inside [] would split
        // the INSTANTIATE macro's arguments.
        const std::string &name = std::get<0>(info.param);
        const GeomParam &g = std::get<1>(info.param);
        return name + "_p" + std::to_string(g.procs) + "_s" +
               std::to_string(g.sets) + "x" + std::to_string(g.ways) +
               "_m" + std::to_string(g.modules) + "_r" +
               std::to_string(static_cast<int>(g.repl));
    });

TEST(EdgeCase, TwoProcessorOwnerQueryHasZeroUseless)
{
    // With n=2 a BROADQUERY reaches exactly the owner: n-2 = 0
    // useless commands — the boundary of the §4.2 formulas.
    ProtoConfig cfg;
    cfg.numProcs = 2;
    cfg.cacheGeom.sets = 8;
    cfg.cacheGeom.ways = 2;
    cfg.numModules = 1;
    auto proto = makeProtocol("two_bit", cfg);
    proto->access(0, 5, true, 1);
    proto->access(1, 5, false);
    EXPECT_EQ(proto->lastDelta().broadcasts, 1u);
    EXPECT_EQ(proto->lastDelta().broadcastCmds, 1u);
    EXPECT_EQ(proto->lastDelta().uselessCmds, 0u);
}

TEST(EdgeCase, SingleModuleAndManyModulesAgreeOnCounts)
{
    // The module count partitions the directory but must not change
    // protocol behaviour: identical traces give identical counters.
    auto run = [](ModuleId modules) {
        ProtoConfig cfg;
        cfg.numProcs = 4;
        cfg.cacheGeom.sets = 8;
        cfg.cacheGeom.ways = 2;
        cfg.numModules = modules;
        auto proto = makeProtocol("two_bit", cfg);
        SyntheticConfig scfg;
        scfg.numProcs = 4;
        scfg.q = 0.2;
        scfg.w = 0.4;
        scfg.seed = 5;
        SyntheticStream stream(scfg);
        RunOptions opts;
        opts.numRefs = 5000;
        return runFunctional(*proto, stream, opts).counts;
    };
    const AccessCounts one = run(1);
    const AccessCounts many = run(7);
    EXPECT_EQ(one.uselessCmds, many.uselessCmds);
    EXPECT_EQ(one.broadcasts, many.broadcasts);
    EXPECT_EQ(one.invalidations, many.invalidations);
    EXPECT_EQ(one.writebacks, many.writebacks);
    EXPECT_EQ(one.netMessages, many.netMessages);
}

} // namespace
} // namespace dir2b
