/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace dir2b
{
namespace
{

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    ++c;
    EXPECT_EQ(c.value(), 43u);
    c += 7;
    EXPECT_EQ(c.value(), 50u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Mean, ComputesRunningAverage)
{
    Mean m;
    EXPECT_DOUBLE_EQ(m.mean(), 0.0);
    m.sample(1.0);
    m.sample(2.0);
    m.sample(3.0);
    EXPECT_DOUBLE_EQ(m.mean(), 2.0);
    EXPECT_EQ(m.samples(), 3u);
    EXPECT_DOUBLE_EQ(m.sum(), 6.0);
}

TEST(Histogram, BucketsAndMoments)
{
    Histogram h(10, 4); // buckets [0,10), [10,20), [20,30), [30,40), of
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(35);
    h.sample(1000); // overflow
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.bucket(4), 1u); // overflow bucket
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_NEAR(h.mean(), (0 + 9 + 10 + 35 + 1000) / 5.0, 1e-9);
}

TEST(Histogram, Percentile)
{
    Histogram h(1, 100);
    for (std::uint64_t v = 0; v < 100; ++v)
        h.sample(v);
    EXPECT_LE(h.percentile(0.5), 51u);
    EXPECT_GE(h.percentile(0.5), 49u);
    EXPECT_EQ(h.percentile(1.0), 99u);
}

TEST(Histogram, PercentileShortcuts)
{
    Histogram h(1, 100);
    for (std::uint64_t v = 0; v < 100; ++v)
        h.sample(v);
    EXPECT_EQ(h.p50(), h.percentile(0.50));
    EXPECT_EQ(h.p95(), h.percentile(0.95));
    EXPECT_EQ(h.p99(), h.percentile(0.99));
    EXPECT_LE(h.p50(), h.p95());
    EXPECT_LE(h.p95(), h.p99());
    EXPECT_GE(h.p95(), 90u);
}

TEST(Histogram, PercentileOfEmptyIsZero)
{
    Histogram h(1, 8);
    EXPECT_EQ(h.p50(), 0u);
    EXPECT_EQ(h.p99(), 0u);
}

TEST(Histogram, MergeCombinesDistributions)
{
    Histogram a(1, 16);
    Histogram b(1, 16);
    for (std::uint64_t v = 0; v < 8; ++v)
        a.sample(v);
    for (std::uint64_t v = 8; v < 16; ++v)
        b.sample(v);

    Histogram whole(1, 16);
    for (std::uint64_t v = 0; v < 16; ++v)
        whole.sample(v);

    a.merge(b);
    EXPECT_EQ(a.samples(), whole.samples());
    EXPECT_EQ(a.min(), whole.min());
    EXPECT_EQ(a.max(), whole.max());
    EXPECT_DOUBLE_EQ(a.mean(), whole.mean());
    for (std::size_t i = 0; i <= 16; ++i)
        EXPECT_EQ(a.bucket(i), whole.bucket(i)) << "bucket " << i;
    EXPECT_EQ(a.p50(), whole.p50());
    EXPECT_EQ(a.p99(), whole.p99());
}

TEST(Histogram, MergeWithEmptyIsIdentity)
{
    Histogram a(2, 8);
    a.sample(3);
    a.sample(7);
    const auto samples = a.samples();
    const auto mn = a.min();
    const auto mx = a.max();

    Histogram empty(2, 8);
    a.merge(empty); // empty rhs: no-op
    EXPECT_EQ(a.samples(), samples);
    EXPECT_EQ(a.min(), mn);
    EXPECT_EQ(a.max(), mx);

    Histogram fresh(2, 8); // empty lhs adopts rhs min/max
    fresh.merge(a);
    EXPECT_EQ(fresh.samples(), samples);
    EXPECT_EQ(fresh.min(), mn);
    EXPECT_EQ(fresh.max(), mx);
}

TEST(Histogram, MergeEmptyIntoEmptyStaysEmpty)
{
    Histogram a(2, 8);
    Histogram b(2, 8);
    a.merge(b);
    EXPECT_EQ(a.samples(), 0u);
    EXPECT_EQ(a.min(), 0u);
    EXPECT_EQ(a.max(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.percentile(0.99), 0u);
}

TEST(Histogram, MergeSingleSampleIntoEmptyMatchesOriginal)
{
    Histogram single(1, 100);
    single.sample(7);

    Histogram merged(1, 100);
    merged.merge(single);
    EXPECT_EQ(merged.samples(), 1u);
    EXPECT_EQ(merged.min(), 7u);
    EXPECT_EQ(merged.max(), 7u);
    EXPECT_EQ(merged.mean(), 7.0);
    EXPECT_EQ(merged.percentile(1.0), 7u);
    // Percentiles of a one-sample distribution never exceed the
    // sample.
    EXPECT_LE(merged.p50(), 7u);
    EXPECT_LE(merged.p99(), 7u);
}

TEST(Histogram, MergeAccumulatesOverflowBucket)
{
    Histogram a(1, 4); // regular buckets [0,1)..[3,4), last = overflow
    Histogram b(1, 4);
    a.sample(100);
    b.sample(200);
    b.sample(300);
    a.merge(b);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_EQ(a.bucket(a.numBuckets() - 1), 3u);
    EXPECT_EQ(a.min(), 100u);
    EXPECT_EQ(a.max(), 300u);
    // The overflow bucket reports the true maximum, not a bucket edge.
    EXPECT_EQ(a.percentile(1.0), 300u);
}

TEST(Histogram, MergeIsCommutativeOnMoments)
{
    Histogram a(2, 8);
    Histogram b(2, 8);
    for (std::uint64_t v : {1u, 5u, 9u})
        a.sample(v);
    for (std::uint64_t v : {3u, 15u})
        b.sample(v);

    Histogram ab = a;
    ab.merge(b);
    Histogram ba = b;
    ba.merge(a);
    EXPECT_EQ(ab.samples(), ba.samples());
    EXPECT_EQ(ab.min(), ba.min());
    EXPECT_EQ(ab.max(), ba.max());
    EXPECT_EQ(ab.mean(), ba.mean());
    for (std::size_t i = 0; i < ab.numBuckets(); ++i)
        EXPECT_EQ(ab.bucket(i), ba.bucket(i));
    EXPECT_EQ(ab.p50(), ba.p50());
    EXPECT_EQ(ab.p99(), ba.p99());
}

#if GTEST_HAS_DEATH_TEST
TEST(HistogramDeathTest, MergeRejectsMismatchedGeometry)
{
    Histogram a(1, 8);
    Histogram b(2, 8);
    EXPECT_DEATH(a.merge(b), "merge");
}
#endif

TEST(Histogram, ResetClears)
{
    Histogram h(1, 8);
    h.sample(3);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucket(3), 0u);
}

TEST(StatGroup, DumpsAllKinds)
{
    Counter c;
    c.inc(5);
    Mean m;
    m.sample(2.5);
    Histogram h(1, 4);
    h.sample(2);

    StatGroup g("cache0");
    g.addCounter("hits", &c, "demand hits");
    g.addMean("latency", &m);
    g.addHistogram("burst", &h);

    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("cache0.hits"), std::string::npos);
    EXPECT_NE(out.find("5"), std::string::npos);
    EXPECT_NE(out.find("demand hits"), std::string::npos);
    EXPECT_NE(out.find("cache0.latency"), std::string::npos);
    EXPECT_NE(out.find("2.5"), std::string::npos);
    EXPECT_NE(out.find("cache0.burst"), std::string::npos);
}

} // namespace
} // namespace dir2b
