/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace dir2b
{
namespace
{

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    ++c;
    EXPECT_EQ(c.value(), 43u);
    c += 7;
    EXPECT_EQ(c.value(), 50u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Mean, ComputesRunningAverage)
{
    Mean m;
    EXPECT_DOUBLE_EQ(m.mean(), 0.0);
    m.sample(1.0);
    m.sample(2.0);
    m.sample(3.0);
    EXPECT_DOUBLE_EQ(m.mean(), 2.0);
    EXPECT_EQ(m.samples(), 3u);
    EXPECT_DOUBLE_EQ(m.sum(), 6.0);
}

TEST(Histogram, BucketsAndMoments)
{
    Histogram h(10, 4); // buckets [0,10), [10,20), [20,30), [30,40), of
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(35);
    h.sample(1000); // overflow
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.bucket(4), 1u); // overflow bucket
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_NEAR(h.mean(), (0 + 9 + 10 + 35 + 1000) / 5.0, 1e-9);
}

TEST(Histogram, Percentile)
{
    Histogram h(1, 100);
    for (std::uint64_t v = 0; v < 100; ++v)
        h.sample(v);
    EXPECT_LE(h.percentile(0.5), 51u);
    EXPECT_GE(h.percentile(0.5), 49u);
    EXPECT_EQ(h.percentile(1.0), 99u);
}

TEST(Histogram, ResetClears)
{
    Histogram h(1, 8);
    h.sample(3);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucket(3), 0u);
}

TEST(StatGroup, DumpsAllKinds)
{
    Counter c;
    c.inc(5);
    Mean m;
    m.sample(2.5);
    Histogram h(1, 4);
    h.sample(2);

    StatGroup g("cache0");
    g.addCounter("hits", &c, "demand hits");
    g.addMean("latency", &m);
    g.addHistogram("burst", &h);

    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("cache0.hits"), std::string::npos);
    EXPECT_NE(out.find("5"), std::string::npos);
    EXPECT_NE(out.find("demand hits"), std::string::npos);
    EXPECT_NE(out.find("cache0.latency"), std::string::npos);
    EXPECT_NE(out.find("2.5"), std::string::npos);
    EXPECT_NE(out.find("cache0.burst"), std::string::npos);
}

} // namespace
} // namespace dir2b
