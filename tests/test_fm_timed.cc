/**
 * @file
 * Directed tests for the timed full-map controllers: directed PURGE,
 * the eviction/purge race, spurious invalidations from stale presence
 * bits, and MREQUEST refusal when the requester's bit is gone.
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "timed/timed_system.hh"
#include "util/random.hh"

namespace dir2b
{
namespace
{

class Script
{
  public:
    explicit Script(std::vector<std::vector<MemRef>> perProc)
        : perProc_(std::move(perProc)), pos_(perProc_.size(), 0)
    {}

    ProcSource
    source()
    {
        return [this](ProcId p) -> std::optional<MemRef> {
            auto &q = perProc_.at(p);
            if (pos_[p] >= q.size())
                return std::nullopt;
            return q[pos_[p]++];
        };
    }

  private:
    std::vector<std::vector<MemRef>> perProc_;
    std::vector<std::size_t> pos_;
};

TimedConfig
config(ProcId n = 3, std::size_t sets = 16, std::size_t ways = 2)
{
    TimedConfig cfg;
    cfg.protocol = TimedProto::FullMap;
    cfg.numProcs = n;
    cfg.numModules = 1;
    cfg.cacheGeom.sets = sets;
    cfg.cacheGeom.ways = ways;
    return cfg;
}

TEST(FmTimed, ReadOfModifiedBlockUsesDirectedPurge)
{
    TimedSystem sys(config());
    Script script({
        {{0, 5, true}},
        {{1, 5, false}, {1, 5, false}},
        {},
    });
    const auto r = sys.run(script.source(), 100);
    EXPECT_EQ(r.refsCompleted, 3u);
    const auto &d = sys.dirCtrl(0).stats();
    // One purge at most (timing may order the read first), and never
    // any broadcast.
    EXPECT_LE(d.purges.value(), 1u);
    EXPECT_EQ(d.broadQueries.value(), 0u);
    EXPECT_EQ(d.broadInvs.value(), 0u);
    EXPECT_EQ(r.broadcasts, 0u);
}

TEST(FmTimed, WriteInvalidatesExactHolders)
{
    TimedSystem sys(config(4));
    Script script({
        {{0, 5, false}, {0, 9, false}},
        {{1, 5, false}, {1, 9, false}},
        {{2, 5, false}, {2, 9, false}},
        {{3, 5, true}},
    });
    const auto r = sys.run(script.source(), 100);
    EXPECT_EQ(r.refsCompleted, 7u);
    const auto &d = sys.dirCtrl(0).stats();
    // The write invalidated at most the three real holders of 5 and
    // nobody else; block 9's holders were untouched.
    EXPECT_LE(d.directedInvs.value(), 3u);
    EXPECT_EQ(r.broadcasts, 0u);
}

TEST(FmTimed, EvictionPurgeRaceConsumesEject)
{
    // Owner dirties a block, then evicts it (1-block cache) while a
    // second processor read-misses it: the controller must consume
    // the in-flight EJECT(write) as the PURGE's put.
    TimedConfig cfg = config(2, 1, 1);
    TimedSystem sys(cfg);
    Script script({
        {{0, 4, true}, {0, 12, false}},
        {{1, 4, false}},
    });
    const auto r = sys.run(script.source(), 100);
    EXPECT_EQ(r.refsCompleted, 3u);
    // Either ordering resolves; the machinery counters are bounded.
    const auto &d = sys.dirCtrl(0).stats();
    EXPECT_LE(d.putsConsumed.value() + d.putsAwaited.value(), 2u);
}

TEST(FmTimed, ConcurrentUpgradesSerialise)
{
    // The §3.2.5 scenario under the full map: directed INVALIDATE
    // replaces BROADINV, same conversion rule at the losing cache.
    TimedConfig cfg = config(3, 16, 2);
    cfg.dirLatency = 8;
    TimedSystem sys(cfg);
    const Addr a = 7;
    Script script({
        {{0, a, false}, {0, a, true}},
        {{1, a, false}, {1, a, true}},
        {{2, 9, false}, {2, 11, false}, {2, 13, false}},
    });
    const auto r = sys.run(script.source(), 100);
    EXPECT_EQ(r.refsCompleted, 7u);
    const auto &d = sys.dirCtrl(0).stats();
    EXPECT_EQ(d.grantsTrue.value(), 1u);
    EXPECT_EQ(r.mrequestConversions + r.grantsFalse + r.mreqDeleted,
              2u)
        << "the losing MREQUEST must be converted or refused";
}

TEST(FmTimed, HeavyRandomTrafficNoBroadcastsEver)
{
    TimedConfig cfg = config(4, 4, 2);
    cfg.numModules = 2;
    cfg.perBlockConcurrency = true;
    TimedSystem sys(cfg);
    std::vector<Rng> rngs;
    Rng seeder(9);
    for (int i = 0; i < 4; ++i)
        rngs.push_back(seeder.split());
    auto src = [&rngs](ProcId p) -> std::optional<MemRef> {
        Rng &rng = rngs[p];
        return MemRef{p, rng.range(24), rng.chance(0.4)};
    };
    const auto r = sys.run(src, 3000);
    EXPECT_EQ(r.refsCompleted, 12000u);
    EXPECT_EQ(r.broadcasts, 0u);
}

} // namespace
} // namespace dir2b
