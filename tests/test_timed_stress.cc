/**
 * @file
 * Stress tests for the timed tier: latency sweeps designed to open
 * every race window (§3.2.5 MREQUEST races, eviction/query races,
 * stale replies), with an aggregate assertion that the race machinery
 * actually fired somewhere in the sweep — a suite that never
 * exercises the races proves nothing.
 */

#include <gtest/gtest.h>

#include "timed/timed_system.hh"
#include "trace/synthetic.hh"

namespace dir2b
{
namespace
{

struct SweepTotals
{
    std::uint64_t conversions = 0;
    std::uint64_t mreqDeleted = 0;
    std::uint64_t putsConsumed = 0;
    std::uint64_t putsAwaited = 0;
    std::uint64_t grantsFalse = 0;
};

SweepTotals
runOne(Tick net, Tick mem, Tick dir, bool perBlock, std::uint64_t seed,
       std::uint64_t refsPerProc)
{
    TimedConfig cfg;
    cfg.numProcs = 4;
    cfg.numModules = 2;
    cfg.cacheGeom.sets = 4;
    cfg.cacheGeom.ways = 2; // tiny: constant eviction traffic
    cfg.netLatency = net;
    cfg.memLatency = mem;
    cfg.dirLatency = dir;
    cfg.perBlockConcurrency = perBlock;
    TimedSystem sys(cfg);

    SyntheticConfig scfg;
    scfg.numProcs = 4;
    scfg.q = 0.35;
    scfg.w = 0.5;
    scfg.sharedBlocks = 6;
    scfg.privateBlocks = 12;
    scfg.hotBlocks = 6;
    scfg.seed = seed;
    SyntheticStream stream(scfg);
    auto src = [&stream](ProcId p) -> std::optional<MemRef> {
        return stream.nextFor(p);
    };

    const auto r = sys.run(src, refsPerProc);
    EXPECT_EQ(r.refsCompleted, 4 * refsPerProc);

    SweepTotals t;
    t.conversions = r.mrequestConversions;
    t.mreqDeleted = r.mreqDeleted;
    t.putsConsumed = r.putsConsumed;
    t.putsAwaited = r.putsAwaited;
    t.grantsFalse = r.grantsFalse;
    return t;
}

TEST(TimedStress, LatencySweepStaysCoherentAndExercisesRaces)
{
    SweepTotals total;
    const Tick nets[] = {1, 2, 6};
    const Tick mems[] = {1, 4, 12};
    const Tick dirs[] = {1, 3};
    std::uint64_t seed = 100;
    for (Tick net : nets) {
        for (Tick mem : mems) {
            for (Tick dir : dirs) {
                for (bool perBlock : {false, true}) {
                    const auto t = runOne(net, mem, dir, perBlock,
                                          ++seed, 1500);
                    total.conversions += t.conversions;
                    total.mreqDeleted += t.mreqDeleted;
                    total.putsConsumed += t.putsConsumed;
                    total.putsAwaited += t.putsAwaited;
                    total.grantsFalse += t.grantsFalse;
                }
            }
        }
    }
    // The sweep must have hit the interesting paths: MREQUEST/BROADINV
    // races (conversions and/or deletions) and PresentM queries
    // resolved by later puts.
    EXPECT_GT(total.conversions + total.mreqDeleted +
                  total.grantsFalse, 0u)
        << "no MREQUEST race was ever exercised";
    EXPECT_GT(total.putsAwaited, 0u)
        << "no BROADQUERY ever waited for its put";
}

TEST(TimedStress, ExtremeLatencyAsymmetries)
{
    // Slow network, fast memory and vice versa; both directions of
    // the supply-window race.
    runOne(20, 1, 1, false, 7, 800);
    runOne(20, 1, 1, true, 7, 800);
    runOne(1, 30, 1, false, 8, 800);
    runOne(1, 30, 1, true, 8, 800);
    runOne(1, 1, 25, false, 9, 800);
    runOne(1, 1, 25, true, 9, 800);
}

TEST(TimedStress, ManyProcessorsSharedHotBlock)
{
    // Eight processors all hammering two shared blocks with writes:
    // maximal MREQUEST contention.
    TimedConfig cfg;
    cfg.numProcs = 8;
    cfg.numModules = 2;
    cfg.cacheGeom.sets = 8;
    cfg.cacheGeom.ways = 2;
    cfg.perBlockConcurrency = true;
    TimedSystem sys(cfg);

    SyntheticConfig scfg;
    scfg.numProcs = 8;
    scfg.q = 0.9;
    scfg.w = 0.5;
    scfg.sharedBlocks = 2;
    scfg.privateBlocks = 4;
    scfg.hotBlocks = 4;
    scfg.seed = 17;
    SyntheticStream stream(scfg);
    auto src = [&stream](ProcId p) -> std::optional<MemRef> {
        return stream.nextFor(p);
    };

    const auto r = sys.run(src, 1200);
    EXPECT_EQ(r.refsCompleted, 8u * 1200u);
    // With this contention level the §3.2.5 machinery must fire.
    EXPECT_GT(r.mrequestConversions + r.mreqDeleted + r.grantsFalse,
              0u);
}

TEST(TimedStress, SingleBlockTotalWarConverges)
{
    // Every processor alternates read/write on ONE block: the
    // pathological ping-pong.  Checks forward progress and coherence.
    TimedConfig cfg;
    cfg.numProcs = 4;
    cfg.numModules = 1;
    cfg.cacheGeom.sets = 2;
    cfg.cacheGeom.ways = 1;
    TimedSystem sys(cfg);

    std::vector<std::uint64_t> step(4, 0);
    auto src = [&step](ProcId p) -> std::optional<MemRef> {
        const bool write = (step[p]++ % 2) == 1;
        return MemRef{p, 42, write};
    };
    const auto r = sys.run(src, 500);
    EXPECT_EQ(r.refsCompleted, 2000u);
}

} // namespace
} // namespace dir2b
