/**
 * @file
 * Trace-replay throughput (google-benchmark): the BENCH_9 A/B.
 *
 * A synthetic workload is recorded once — as a text trace
 * (trace_io.hh) and as the binary block format (trace_binary.hh) —
 * then replayed through every frontend:
 *
 *   BM_ReplayTextParse     the status-quo per-record decode path
 *                          (istringstream per line)
 *   BM_ReplayMmapPerRecord MmapTraceStream::next() over the mapping
 *   BM_ReplayMmapBatched   whole-block AccessBatch spans
 *   BM_FuncReplayScalar    runFunctional over MmapTraceStream
 *   BM_FuncReplayBatched   runFunctionalBatched over block spans
 *
 * plus the table-engine dispatch A/B (BM_TableDispatch*) that
 * measures what the dense (state x event-class) row index buys over
 * the linear row scan.  The fixture defaults to 1M references so the
 * perf_smoke ctest entry stays fast; DIR2B_TRACE_REPLAY_REFS scales
 * it up (BENCH_9.json is recorded at 100M — see docs/PERFORMANCE.md).
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "proto/protocol_factory.hh"
#include "proto/table_engine.hh"
#include "system/func_system.hh"
#include "trace/synthetic.hh"
#include "trace/trace_binary.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"

namespace
{

using namespace dir2b;

/** Workload fixture: one recording shared by every benchmark. */
struct TraceFixture
{
    std::string textPath;
    std::string binPath;
    std::uint64_t refs = 0;
    ProcId procs = 8;

    static const TraceFixture &
    get()
    {
        static TraceFixture f;
        return f;
    }

  private:
    TraceFixture()
    {
        refs = 1000000;
        if (const char *env = std::getenv("DIR2B_TRACE_REPLAY_REFS"))
            refs = std::strtoull(env, nullptr, 10);
        const char *tmp = std::getenv("TMPDIR");
        const std::string dir = tmp && *tmp ? tmp : "/tmp";
        textPath = dir + "/dir2b_bench_replay.trc";
        binPath = dir + "/dir2b_bench_replay.d2t";

        SyntheticConfig scfg;
        scfg.numProcs = procs;
        scfg.q = 0.05;
        scfg.w = 0.3;
        SyntheticStream stream(scfg);

        std::ofstream text(textPath);
        TraceWriter bin(binPath);
        std::vector<MemRef> chunk;
        chunk.reserve(1 << 16);
        for (std::uint64_t n = 0; n < refs;) {
            chunk.clear();
            while (chunk.size() < chunk.capacity() && n < refs) {
                chunk.push_back(*stream.next());
                ++n;
            }
            writeTrace(text, chunk);
            bin.append(chunk.data(), chunk.size());
        }
        bin.finish();
    }
};

/** Cheap record consumer: decode cost must dominate, not work. */
inline std::uint64_t
fold(std::uint64_t h, ProcId proc, Addr addr, bool write)
{
    h ^= addr + proc + (write ? 1 : 0);
    h *= 0x100000001b3ULL;
    return h;
}

/** The per-record text decode path every sweep used before the
 *  binary format existed. */
void
BM_ReplayTextParse(benchmark::State &state)
{
    const TraceFixture &f = TraceFixture::get();
    std::uint64_t h = 0;
    for (auto _ : state) {
        std::ifstream in(f.textPath);
        const std::vector<MemRef> refs = readTrace(in);
        for (const MemRef &r : refs)
            h = fold(h, r.proc, r.addr, r.write);
    }
    benchmark::DoNotOptimize(h);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * f.refs));
}
BENCHMARK(BM_ReplayTextParse);

void
BM_ReplayMmapPerRecord(benchmark::State &state)
{
    const TraceFixture &f = TraceFixture::get();
    TraceReader reader(f.binPath);
    MmapTraceStream stream(reader);
    std::uint64_t h = 0;
    for (auto _ : state) {
        stream.rewind();
        while (const auto r = stream.next())
            h = fold(h, r->proc, r->addr, r->write);
    }
    benchmark::DoNotOptimize(h);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * f.refs));
}
BENCHMARK(BM_ReplayMmapPerRecord);

void
BM_ReplayMmapBatched(benchmark::State &state)
{
    const TraceFixture &f = TraceFixture::get();
    TraceReader reader(f.binPath);
    TraceBatchStream batches(reader);
    std::uint64_t h = 0;
    for (auto _ : state) {
        batches.rewind();
        for (AccessBatch b = batches.nextBatch(); !b.empty();
             b = batches.nextBatch())
            for (const TraceRecord &rec : b)
                h = fold(h, rec.proc, rec.addr, rec.write());
    }
    benchmark::DoNotOptimize(h);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * f.refs));
}
BENCHMARK(BM_ReplayMmapBatched);

ProtoConfig
replayProtoConfig(ProcId procs)
{
    ProtoConfig cfg;
    cfg.numProcs = procs;
    cfg.cacheGeom.sets = 32;
    cfg.cacheGeom.ways = 4;
    cfg.numModules = 4;
    cfg.nonCacheableBase = sharedRegionBase;
    return cfg;
}

/** Full functional tier fed one reference at a time. */
void
BM_FuncReplayScalar(benchmark::State &state)
{
    const TraceFixture &f = TraceFixture::get();
    TraceReader reader(f.binPath);
    std::uint64_t refs = 0;
    for (auto _ : state) {
        auto proto = makeProtocol("two_bit",
                                  replayProtoConfig(f.procs));
        MmapTraceStream stream(reader);
        RunOptions opts;
        opts.numRefs = f.refs;
        opts.checkCoherence = false;
        const RunResult r = runFunctional(*proto, stream, opts);
        refs += r.counts.refs();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(refs));
}
BENCHMARK(BM_FuncReplayScalar);

/** Full functional tier fed whole blocks. */
void
BM_FuncReplayBatched(benchmark::State &state)
{
    const TraceFixture &f = TraceFixture::get();
    TraceReader reader(f.binPath);
    std::uint64_t refs = 0;
    for (auto _ : state) {
        auto proto = makeProtocol("two_bit",
                                  replayProtoConfig(f.procs));
        TraceBatchStream batches(reader);
        RunOptions opts;
        opts.numRefs = f.refs;
        opts.checkCoherence = false;
        const RunResult r = runFunctionalBatched(*proto, batches,
                                                 opts);
        refs += r.counts.refs();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(refs));
}
BENCHMARK(BM_FuncReplayBatched);

/** Table-engine dispatch A/B: the dense (state x event-class) row
 *  index versus the original linear row scan, on the largest table
 *  (MOESI).  Identical behaviour is pinned by ctest -L lockstep. */
void
tableDispatch(benchmark::State &state, bool linear)
{
    auto proto = makeProtocol("moesi", replayProtoConfig(8));
    auto *table = dynamic_cast<TableProtocol *>(proto.get());
    table->useLinearDispatch(linear);

    SyntheticConfig scfg;
    scfg.numProcs = 8;
    scfg.q = 0.2;
    scfg.w = 0.3;
    SyntheticStream stream(scfg);

    std::uint64_t nonce = 1;
    for (auto _ : state) {
        const auto r = *stream.next();
        benchmark::DoNotOptimize(
            proto->access(r.proc, r.addr, r.write, ++nonce));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
BM_TableDispatchIndexed(benchmark::State &state)
{
    tableDispatch(state, false);
}
BENCHMARK(BM_TableDispatchIndexed);

void
BM_TableDispatchLinear(benchmark::State &state)
{
    tableDispatch(state, true);
}
BENCHMARK(BM_TableDispatchLinear);

} // namespace

#ifndef DIR2B_BUILD_TYPE
#define DIR2B_BUILD_TYPE "unknown"
#endif

int
main(int argc, char **argv)
{
    // Same stamping contract as bench_throughput.cc: record the
    // simulator's own build configuration so run_bench_baseline.sh
    // can gate on the code actually measured.
    benchmark::AddCustomContext("dir2b_build_type", DIR2B_BUILD_TYPE);
#ifdef __OPTIMIZE__
    benchmark::AddCustomContext("dir2b_optimized", "true");
#else
    benchmark::AddCustomContext("dir2b_optimized", "false");
#endif
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
