/**
 * @file
 * E8 + ablations: the timed (discrete-event) system of Figure 3-1.
 *
 * Three experiments the analytic tables cannot answer (the paper:
 * "Short of simulation, there are few alternatives to determine the
 * effects of this traffic"):
 *
 *  1. two-bit vs full-map end-to-end: execution time, average memory
 *     latency, network messages and stolen cache cycles for identical
 *     workloads, with destination-port contention enabled so the
 *     broadcasts actually congest something;
 *  2. the §3.2.5 controller design options: strictly serial vs
 *     per-block-concurrent ("multiprogrammed") controllers;
 *  3. the §4.4(a) duplicate cache directory in real time.
 *
 * Every run executes under the per-location coherence oracle.
 */

#include <cstdio>

#include "timed/timed_system.hh"
#include "trace/synthetic.hh"

namespace
{

using namespace dir2b;

TimedRunResult
run(TimedProto proto, ProcId n, double q, bool perBlock, bool snoop,
    std::uint64_t refsPerProc, NetKind net = NetKind::Crossbar)
{
    TimedConfig cfg;
    cfg.protocol = proto;
    cfg.numProcs = n;
    cfg.numModules = 4;
    cfg.cacheGeom.sets = 32;
    cfg.cacheGeom.ways = 4;
    cfg.perBlockConcurrency = perBlock;
    cfg.snoopFilter = snoop;
    cfg.network = net;
    TimedSystem sys(cfg);

    SyntheticConfig scfg;
    scfg.numProcs = n;
    scfg.q = q;
    scfg.w = 0.3;
    scfg.sharedBlocks = 16;
    scfg.privateBlocks = 96;
    scfg.hotBlocks = 24;
    scfg.sharedLocality = 0.9;
    scfg.seed = 31;
    auto stream = std::make_shared<SyntheticStream>(scfg);
    auto src = [stream](ProcId p) -> std::optional<MemRef> {
        return stream->nextFor(p);
    };
    return sys.run(src, refsPerProc);
}

void
protocolComparison()
{
    constexpr std::uint64_t refs = 20000;
    std::printf("1. two-bit vs full-map, end to end (port contention "
                "on, %llu refs/proc)\n\n",
                static_cast<unsigned long long>(refs));
    std::printf("%4s %8s | %10s %8s %10s %10s | %10s %8s %10s %10s\n",
                "n", "q", "2b cycles", "2b lat", "2b msgs",
                "2b stolen", "fm cycles", "fm lat", "fm msgs",
                "fm stolen");
    for (ProcId n : {4u, 8u, 16u}) {
        for (double q : {0.01, 0.05, 0.10}) {
            const auto tb = run(TimedProto::TwoBit, n, q, true, false,
                                refs);
            const auto fm = run(TimedProto::FullMap, n, q, true, false,
                                refs);
            std::printf(
                "%4u %8.2f | %10llu %8.1f %10llu %10llu | %10llu %8.1f "
                "%10llu %10llu\n",
                n, q, static_cast<unsigned long long>(tb.finalTick),
                tb.avgLatency,
                static_cast<unsigned long long>(tb.netMessages),
                static_cast<unsigned long long>(tb.stolenCycles),
                static_cast<unsigned long long>(fm.finalTick),
                fm.avgLatency,
                static_cast<unsigned long long>(fm.netMessages),
                static_cast<unsigned long long>(fm.stolenCycles));
        }
    }
    std::printf("\nThe message and stolen-cycle gaps grow with n and q "
                "— the same\ntrend Tables 4-1/4-2 predict analytically; "
                "execution time follows\nonce broadcasts queue at the "
                "destination ports.\n\n");

    std::printf("1b. Yen-Fu (full map + silent exclusive upgrades) on "
                "the same grid\n\n");
    std::printf("%4s %8s | %10s %10s %10s\n", "n", "q", "yf cycles",
                "yf msgs", "yf stolen");
    for (ProcId n : {4u, 8u, 16u}) {
        for (double q : {0.01, 0.05, 0.10}) {
            const auto yf = run(TimedProto::YenFu, n, q, true, false,
                                refs);
            std::printf("%4u %8.2f | %10llu %10llu %10llu\n", n, q,
                        static_cast<unsigned long long>(yf.finalTick),
                        static_cast<unsigned long long>(yf.netMessages),
                        static_cast<unsigned long long>(
                            yf.stolenCycles));
        }
    }
    std::printf("\nYen-Fu trims the full map's upgrade round trips "
                "(Sec. 2.4.3) at the\nprice of querying every "
                "sole-holder block on remote access.\n\n");
}

void
controllerAblation()
{
    constexpr std::uint64_t refs = 20000;
    std::printf("2. Sec. 3.2.5 controller options: serial vs "
                "per-block-concurrent\n\n");
    std::printf("%4s %8s | %14s %14s %10s\n", "n", "q",
                "serial cycles", "perblk cycles", "speedup");
    for (ProcId n : {4u, 8u, 16u}) {
        for (double q : {0.05, 0.10}) {
            const auto serial = run(TimedProto::TwoBit, n, q, false,
                                    false, refs);
            const auto perblk = run(TimedProto::TwoBit, n, q, true,
                                    false, refs);
            std::printf("%4u %8.2f | %14llu %14llu %9.2fx\n", n, q,
                        static_cast<unsigned long long>(
                            serial.finalTick),
                        static_cast<unsigned long long>(
                            perblk.finalTick),
                        static_cast<double>(serial.finalTick) /
                            static_cast<double>(perblk.finalTick));
        }
    }
    std::printf("\nThe paper predicted option 1 'could lead to "
                "important performance\ndegradation'; the "
                "multiprogrammed controller recovers it.\n\n");
}

void
snoopFilterTimed()
{
    constexpr std::uint64_t refs = 20000;
    std::printf("3. Sec. 4.4(a) duplicate cache directory, timed\n\n");
    std::printf("%4s | %12s %12s %12s\n", "n", "stolen", "filtered",
                "cycles");
    for (ProcId n : {8u, 16u}) {
        for (bool snoop : {false, true}) {
            const auto r = run(TimedProto::TwoBit, n, 0.10, true,
                               snoop, refs);
            std::printf("%4u%c| %12llu %12llu %12llu\n", n,
                        snoop ? '+' : ' ',
                        static_cast<unsigned long long>(r.stolenCycles),
                        static_cast<unsigned long long>(r.filteredCmds),
                        static_cast<unsigned long long>(r.finalTick));
        }
    }
    std::printf("\n('+' = with duplicate directory.)  Stolen cycles "
                "collapse to the\nactually-shared checks; messages and "
                "end-to-end time barely move —\nexactly the limitation "
                "the paper states for this enhancement.\n");
}

void
networkKindComparison()
{
    constexpr std::uint64_t refs = 20000;
    std::printf("4. interconnection-network kinds: why bus schemes "
                "broadcast freely\n\n");
    std::printf("%-10s %4s | %12s %12s %12s\n", "network", "n",
                "cycles", "messages", "wait cycles");
    struct Net { const char *name; NetKind kind; };
    const Net nets[] = {{"ideal", NetKind::Ideal},
                        {"crossbar", NetKind::Crossbar},
                        {"bus", NetKind::Bus}};
    for (const auto &net : nets) {
        for (ProcId n : {4u, 16u}) {
            const auto r = run(TimedProto::TwoBit, n, 0.10, true,
                               false, refs, net.kind);
            std::printf("%-10s %4u | %12llu %12llu %12llu\n",
                        net.name, n,
                        static_cast<unsigned long long>(r.finalTick),
                        static_cast<unsigned long long>(r.netMessages),
                        static_cast<unsigned long long>(
                            r.netWaitCycles));
        }
    }
    std::printf(
        "\nOn a shared bus a BROADINV is one transaction regardless "
        "of n — which\nis exactly why the Sec. 2.5 bus schemes can "
        "afford to broadcast on\nevery miss; but the bus itself "
        "serialises ALL traffic, capping the\nsystem.  On the "
        "crossbar (the paper's general interconnection network)\n"
        "fan-out costs n-1 messages and the two-bit overhead scales "
        "with n,\nwhile point-to-point traffic enjoys full "
        "parallelism — the trade-off\nSec. 3.1 describes.\n");
}

} // namespace

int
main()
{
    std::printf("E8: timed system experiments (discrete-event, "
                "oracle-checked)\n\n");
    protocolComparison();
    controllerAblation();
    snoopFilterTimed();
    networkKindComparison();
    return 0;
}
