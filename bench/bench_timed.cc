/**
 * @file
 * E8 + ablations: the timed (discrete-event) system of Figure 3-1.
 *
 * Three experiments the analytic tables cannot answer (the paper:
 * "Short of simulation, there are few alternatives to determine the
 * effects of this traffic"):
 *
 *  1. two-bit vs full-map (vs Yen-Fu) end-to-end: execution time,
 *     average memory latency, network messages and stolen cache cycles
 *     for identical workloads, with destination-port contention
 *     enabled so the broadcasts actually congest something;
 *  2. the §3.2.5 controller design options: strictly serial vs
 *     per-block-concurrent ("multiprogrammed") controllers;
 *  3. the §4.4(a) duplicate cache directory in real time;
 *  4. interconnection-network kinds (ideal/crossbar/bus).
 *
 * Every run executes under the per-location coherence oracle.  The
 * whole (section x axes) grid dispatches through the sweep pool and
 * exports one JSON cell per run, each carrying the request-latency
 * distribution (mean + p50/p95/p99 from the merged per-cache
 * histograms) alongside the scalar results.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "obs/telemetry.hh"
#include "report/bench_cli.hh"
#include "timed/sharded_system.hh"
#include "timed/timed_system.hh"
#include "trace/synthetic.hh"
#include "util/parallel.hh"

namespace
{

using namespace dir2b;

/** One grid cell's configuration. */
struct Spec
{
    const char *section;
    TimedProto proto;
    ProcId n;
    double q;
    bool perBlock;
    bool snoop;
    NetKind net;
};

/** One grid cell's outcome: scalars + the latency distribution. */
struct Cell
{
    TimedRunResult r;
    Json latency;
};

const char *
protoName(TimedProto p)
{
    switch (p) {
      case TimedProto::TwoBit: return "two_bit";
      case TimedProto::FullMap: return "full_map";
      case TimedProto::YenFu: return "yen_fu";
    }
    return "?";
}

const char *
netName(NetKind k)
{
    switch (k) {
      case NetKind::Ideal: return "ideal";
      case NetKind::Crossbar: return "crossbar";
      case NetKind::Bus: return "bus";
    }
    return "?";
}

Cell
runCell(const Spec &s, std::uint64_t refsPerProc, unsigned shards,
        std::uint64_t dirRamBudget, TelemetrySampler *sampler = nullptr)
{
    TimedConfig cfg;
    cfg.protocol = s.proto;
    cfg.numProcs = s.n;
    cfg.numModules = 4;
    cfg.cacheGeom.sets = 32;
    cfg.cacheGeom.ways = 4;
    cfg.perBlockConcurrency = s.perBlock;
    cfg.snoopFilter = s.snoop;
    cfg.network = s.net;
    cfg.dirRamBudget = dirRamBudget;
    cfg.sampler = sampler;

    SyntheticConfig scfg;
    scfg.numProcs = s.n;
    scfg.q = s.q;
    scfg.w = 0.3;
    scfg.sharedBlocks = 16;
    scfg.privateBlocks = 96;
    scfg.hotBlocks = 24;
    scfg.sharedLocality = 0.9;
    scfg.seed = 31;
    auto stream = std::make_shared<SyntheticStream>(scfg);
    auto src = [stream](ProcId p) -> std::optional<MemRef> {
        return stream->nextFor(p);
    };
    // Either engine: the statistics (and hence the artifact) are
    // bit-identical — --shards only changes how the work is run.
    Cell c;
    if (shards <= 1) {
        TimedSystem sys(cfg);
        c.r = sys.run(src, refsPerProc);
        c.latency = histogramSummaryJson(
            sys.mergedCacheHistogram(&CacheCtrlStats::latency));
        return c;
    }
    ShardedTimedSystem sys(cfg, shards);
    c.r = sys.run(src, refsPerProc);
    c.latency = histogramSummaryJson(
        sys.mergedCacheHistogram(&CacheCtrlStats::latency));
    return c;
}

constexpr ProcId kNs[3] = {4, 8, 16};
constexpr double kQs3[3] = {0.01, 0.05, 0.10};
constexpr double kQs2[2] = {0.05, 0.10};
constexpr TimedProto kProtos[3] = {TimedProto::TwoBit,
                                   TimedProto::FullMap,
                                   TimedProto::YenFu};
constexpr NetKind kNets[3] = {NetKind::Ideal, NetKind::Crossbar,
                              NetKind::Bus};

/** Grid layout: comparison 27, controller 12, snoop 4, network 6. */
constexpr std::size_t kComparisonBase = 0;   // proto*9 + n*3 + q
constexpr std::size_t kControllerBase = 27;  // mode*6 + n*2 + q
constexpr std::size_t kSnoopBase = 39;       // n*2 + snoop
constexpr std::size_t kNetworkBase = 43;     // net*2 + n(4/16)
constexpr std::size_t kCells = 49;

std::vector<Spec>
buildGrid()
{
    std::vector<Spec> grid;
    grid.reserve(kCells);
    for (TimedProto proto : kProtos)
        for (ProcId n : kNs)
            for (double q : kQs3)
                grid.push_back({"comparison", proto, n, q, true,
                                false, NetKind::Crossbar});
    for (bool perBlock : {false, true})
        for (ProcId n : kNs)
            for (double q : kQs2)
                grid.push_back({"controller", TimedProto::TwoBit, n, q,
                                perBlock, false, NetKind::Crossbar});
    for (ProcId n : {8u, 16u})
        for (bool snoop : {false, true})
            grid.push_back({"snoop", TimedProto::TwoBit, n, 0.10, true,
                            snoop, NetKind::Crossbar});
    for (NetKind net : kNets)
        for (ProcId n : {4u, 16u})
            grid.push_back({"network", TimedProto::TwoBit, n, 0.10,
                            true, false, net});
    return grid;
}

void
protocolComparison(const std::vector<Cell> &cells, std::uint64_t refs)
{
    auto at = [&](int pi, int ni, int qi) -> const TimedRunResult & {
        return cells[kComparisonBase +
                     static_cast<std::size_t>(pi * 9 + ni * 3 + qi)].r;
    };
    std::printf("1. two-bit vs full-map, end to end (port contention "
                "on, %llu refs/proc)\n\n",
                static_cast<unsigned long long>(refs));
    std::printf("%4s %8s | %10s %8s %10s %10s | %10s %8s %10s %10s\n",
                "n", "q", "2b cycles", "2b lat", "2b msgs",
                "2b stolen", "fm cycles", "fm lat", "fm msgs",
                "fm stolen");
    for (int ni = 0; ni < 3; ++ni) {
        for (int qi = 0; qi < 3; ++qi) {
            const auto &tb = at(0, ni, qi);
            const auto &fm = at(1, ni, qi);
            std::printf(
                "%4u %8.2f | %10llu %8.1f %10llu %10llu | %10llu %8.1f "
                "%10llu %10llu\n",
                kNs[ni], kQs3[qi],
                static_cast<unsigned long long>(tb.finalTick),
                tb.avgLatency,
                static_cast<unsigned long long>(tb.netMessages),
                static_cast<unsigned long long>(tb.stolenCycles),
                static_cast<unsigned long long>(fm.finalTick),
                fm.avgLatency,
                static_cast<unsigned long long>(fm.netMessages),
                static_cast<unsigned long long>(fm.stolenCycles));
        }
    }
    std::printf("\nThe message and stolen-cycle gaps grow with n and q "
                "— the same\ntrend Tables 4-1/4-2 predict analytically; "
                "execution time follows\nonce broadcasts queue at the "
                "destination ports.\n\n");

    std::printf("1b. Yen-Fu (full map + silent exclusive upgrades) on "
                "the same grid\n\n");
    std::printf("%4s %8s | %10s %10s %10s | %6s %6s %6s\n", "n", "q",
                "yf cycles", "yf msgs", "yf stolen", "p50", "p95",
                "p99");
    for (int ni = 0; ni < 3; ++ni) {
        for (int qi = 0; qi < 3; ++qi) {
            const auto &yf = at(2, ni, qi);
            std::printf("%4u %8.2f | %10llu %10llu %10llu | %6llu "
                        "%6llu %6llu\n",
                        kNs[ni], kQs3[qi],
                        static_cast<unsigned long long>(yf.finalTick),
                        static_cast<unsigned long long>(yf.netMessages),
                        static_cast<unsigned long long>(
                            yf.stolenCycles),
                        static_cast<unsigned long long>(yf.latencyP50),
                        static_cast<unsigned long long>(yf.latencyP95),
                        static_cast<unsigned long long>(yf.latencyP99));
        }
    }
    std::printf("\nYen-Fu trims the full map's upgrade round trips "
                "(Sec. 2.4.3) at the\nprice of querying every "
                "sole-holder block on remote access.\n\n");
}

void
controllerAblation(const std::vector<Cell> &cells)
{
    auto at = [&](int mode, int ni, int qi) -> const TimedRunResult & {
        return cells[kControllerBase +
                     static_cast<std::size_t>(mode * 6 + ni * 2 + qi)]
            .r;
    };
    std::printf("2. Sec. 3.2.5 controller options: serial vs "
                "per-block-concurrent\n\n");
    std::printf("%4s %8s | %14s %14s %10s | %10s %10s\n", "n", "q",
                "serial cycles", "perblk cycles", "speedup",
                "serial p99", "perblk p99");
    for (int ni = 0; ni < 3; ++ni) {
        for (int qi = 0; qi < 2; ++qi) {
            const auto &serial = at(0, ni, qi);
            const auto &perblk = at(1, ni, qi);
            std::printf(
                "%4u %8.2f | %14llu %14llu %9.2fx | %10llu %10llu\n",
                kNs[ni], kQs2[qi],
                static_cast<unsigned long long>(serial.finalTick),
                static_cast<unsigned long long>(perblk.finalTick),
                static_cast<double>(serial.finalTick) /
                    static_cast<double>(perblk.finalTick),
                static_cast<unsigned long long>(serial.latencyP99),
                static_cast<unsigned long long>(perblk.latencyP99));
        }
    }
    std::printf("\nThe paper predicted option 1 'could lead to "
                "important performance\ndegradation'; the "
                "multiprogrammed controller recovers it — and the\n"
                "latency tail (p99) shows where the serial "
                "controller's queueing bites.\n\n");
}

void
snoopFilterTimed(const std::vector<Cell> &cells)
{
    std::printf("3. Sec. 4.4(a) duplicate cache directory, timed\n\n");
    std::printf("%4s | %12s %12s %12s\n", "n", "stolen", "filtered",
                "cycles");
    for (int ni = 0; ni < 2; ++ni) {
        for (int si = 0; si < 2; ++si) {
            const auto &r =
                cells[kSnoopBase +
                      static_cast<std::size_t>(ni * 2 + si)]
                    .r;
            std::printf("%4u%c| %12llu %12llu %12llu\n",
                        ni == 0 ? 8u : 16u, si ? '+' : ' ',
                        static_cast<unsigned long long>(r.stolenCycles),
                        static_cast<unsigned long long>(r.filteredCmds),
                        static_cast<unsigned long long>(r.finalTick));
        }
    }
    std::printf("\n('+' = with duplicate directory.)  Stolen cycles "
                "collapse to the\nactually-shared checks; messages and "
                "end-to-end time barely move —\nexactly the limitation "
                "the paper states for this enhancement.\n\n");
}

void
networkKindComparison(const std::vector<Cell> &cells)
{
    std::printf("4. interconnection-network kinds: why bus schemes "
                "broadcast freely\n\n");
    std::printf("%-10s %4s | %12s %12s %12s\n", "network", "n",
                "cycles", "messages", "wait cycles");
    for (int ki = 0; ki < 3; ++ki) {
        for (int ni = 0; ni < 2; ++ni) {
            const auto &r =
                cells[kNetworkBase +
                      static_cast<std::size_t>(ki * 2 + ni)]
                    .r;
            std::printf("%-10s %4u | %12llu %12llu %12llu\n",
                        netName(kNets[ki]), ni == 0 ? 4u : 16u,
                        static_cast<unsigned long long>(r.finalTick),
                        static_cast<unsigned long long>(r.netMessages),
                        static_cast<unsigned long long>(
                            r.netWaitCycles));
        }
    }
    std::printf(
        "\nOn a shared bus a BROADINV is one transaction regardless "
        "of n — which\nis exactly why the Sec. 2.5 bus schemes can "
        "afford to broadcast on\nevery miss; but the bus itself "
        "serialises ALL traffic, capping the\nsystem.  On the "
        "crossbar (the paper's general interconnection network)\n"
        "fan-out costs n-1 messages and the two-bit overhead scales "
        "with n,\nwhile point-to-point traffic enjoys full "
        "parallelism — the trade-off\nSec. 3.1 describes.\n");
}

Json
cellJson(const Spec &s, const Cell &c)
{
    Json j = Json::object();
    j.set("section", s.section);
    j.set("protocol", protoName(s.proto));
    j.set("n", s.n);
    j.set("q", s.q);
    j.set("perBlock", s.perBlock);
    j.set("snoop", s.snoop);
    j.set("net", netName(s.net));
    const TimedRunResult &r = c.r;
    j.set("cycles", static_cast<unsigned long long>(r.finalTick));
    j.set("refs", static_cast<unsigned long long>(r.refsCompleted));
    j.set("messages", static_cast<unsigned long long>(r.netMessages));
    j.set("broadcasts", static_cast<unsigned long long>(r.broadcasts));
    j.set("netWaitCycles",
          static_cast<unsigned long long>(r.netWaitCycles));
    j.set("stolenCycles",
          static_cast<unsigned long long>(r.stolenCycles));
    j.set("filteredCmds",
          static_cast<unsigned long long>(r.filteredCmds));
    j.set("mreqConversions",
          static_cast<unsigned long long>(r.mrequestConversions));
    j.set("mreqDeleted",
          static_cast<unsigned long long>(r.mreqDeleted));
    j.set("putsConsumed",
          static_cast<unsigned long long>(r.putsConsumed));
    j.set("grantsFalse",
          static_cast<unsigned long long>(r.grantsFalse));
    j.set("latency", c.latency);
    if (hasDirStore(r.dirStore))
        j.set("dirStore", dirStoreJson(r.dirStore));
    return j;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions bo = parseBenchOptions(
        argc, argv, "bench_timed",
        "E8: timed system experiments (discrete-event, "
        "oracle-checked)");
    const WallTimer timer;
    const std::uint64_t refs = bo.scaleRefs(20000);

    const std::vector<Spec> grid = buildGrid();
    std::vector<Cell> cells(grid.size());
    // --series-out samples the first comparison cell (two_bit, n=4,
    // q=0.01): one cell keeps the artifact a single deterministic
    // series, and sampling never changes any cell's statistics.
    std::unique_ptr<TelemetrySampler> sampler;
    if (bo.seriesRequested())
        sampler = std::make_unique<TelemetrySampler>(
            SeriesDomain::Ticks, bo.resolvedSeriesInterval());
    parallelFor(
        0, grid.size(),
        [&](std::size_t i) {
            cells[i] = runCell(grid[i], refs, bo.shards,
                               bo.dirRamBudget,
                               i == 0 ? sampler.get() : nullptr);
        },
        bo.threads);

    std::printf("E8: timed system experiments (discrete-event, "
                "oracle-checked)\n\n");
    protocolComparison(cells, refs);
    controllerAblation(cells);
    snoopFilterTimed(cells);
    networkKindComparison(cells);

    Json params = Json::object();
    params.set("refs", static_cast<unsigned long long>(refs));
    params.set("modules", 4);
    params.set("w", 0.3);
    params.set("seed", 31);
    params.set("shards", bo.shards);
    params.set("dirRamBudget",
               static_cast<unsigned long long>(bo.dirRamBudget));
    if (sampler && !bo.seriesPath.empty()) {
        const Spec &s0 = grid[0];
        Json sp = Json::object();
        sp.set("protocol", protoName(s0.proto));
        sp.set("n", s0.n);
        sp.set("q", s0.q);
        sp.set("perBlock", s0.perBlock);
        sp.set("net", netName(s0.net));
        sp.set("refs", static_cast<unsigned long long>(refs));
        sp.set("seed", 31);
        sp.set("dirRamBudget",
               static_cast<unsigned long long>(bo.dirRamBudget));
        writeArtifact(bo.seriesPath,
                      makeSeriesArtifact("bench_timed", std::move(sp),
                                         *sampler));
        std::printf("wrote %s (%zu samples)\n", bo.seriesPath.c_str(),
                    sampler->samples());
    }

    Json out = Json::array();
    for (std::size_t i = 0; i < grid.size(); ++i) {
        Json c = cellJson(grid[i], cells[i]);
        if (i == 0 && sampler)
            c.set("series", seriesProvenanceJson(*sampler));
        out.push(std::move(c));
    }
    emitArtifact(bo, "bench_timed", std::move(params), std::move(out),
                 Json(), timer);
    return 0;
}
