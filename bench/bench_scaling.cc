/**
 * @file
 * E6: the §4.3 acceptability thresholds.
 *
 * The paper reads Table 4-1 through the rule of thumb that the scheme
 * remains acceptable while each cache receives less than one extra
 * command per own memory request ((n-1) T_SUM < 1.0, most of which
 * hides in the cache's idle cycles).  This bench sweeps n for each
 * sharing case with both the closed form and live simulation, and
 * reports the largest acceptable configuration — reproducing the
 * paper's conclusions: ~64 processors at low sharing, ~16 at moderate,
 * ~8 at high/write-intensive sharing.
 *
 * The (case x n) simulation grid — the expensive part — dispatches
 * through the sweep pool; model and network cells are closed-form.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "model/overhead_model.hh"
#include "model/traffic_model.hh"
#include "proto/protocol_factory.hh"
#include "report/bench_cli.hh"
#include "system/func_system.hh"
#include "trace/synthetic.hh"
#include "util/parallel.hh"

namespace
{

using namespace dir2b;

const SharingLevel kLevels[3] = {SharingLevel::Low,
                                 SharingLevel::Moderate,
                                 SharingLevel::High};
const unsigned kNs[6] = {2u, 4u, 8u, 16u, 32u, 64u};

double
simulatedOverhead(SharingLevel level, ProcId n, double w,
                  std::uint64_t refs)
{
    const SharingParams sp = sharingCase(level, n, w);

    ProtoConfig cfg;
    cfg.numProcs = n;
    cfg.cacheGeom.sets = 32;
    cfg.cacheGeom.ways = 4;
    cfg.numModules = 4;

    SyntheticConfig scfg;
    scfg.numProcs = n;
    scfg.q = sp.q;
    scfg.w = w;
    scfg.sharedBlocks = 16;
    scfg.privateBlocks = 96;
    scfg.hotBlocks = 24;
    // Locality tuned per case so the measured shared hit ratio lands
    // near the h each Sec. 4.3 case assumes (same values as E3).
    scfg.sharedLocality = level == SharingLevel::Low      ? 0.97
                          : level == SharingLevel::Moderate ? 0.93
                                                            : 0.85;
    scfg.seed = 99;

    auto proto = makeProtocol("two_bit", cfg);
    SyntheticStream stream(scfg);
    RunOptions opts;
    opts.numRefs = refs;
    const RunResult r = runFunctional(*proto, stream, opts);
    return r.perCacheUselessPerRef;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions bo = parseBenchOptions(
        argc, argv, "bench_scaling",
        "E6: Sec. 4.3 acceptability thresholds, model vs. simulation, "
        "plus network saturation");
    const WallTimer timer;
    constexpr double w = 0.2;
    const std::uint64_t refs = bo.scaleRefs(120000);

    // Model and simulation overheads for every (case, n) cell; the
    // simulations carry the cost, so they go through the pool.
    double model[3][6];
    double sim[3][6];
    for (int li = 0; li < 3; ++li)
        for (int ni = 0; ni < 6; ++ni)
            model[li][ni] =
                overhead(sharingCase(kLevels[li], kNs[ni], w)).perCache;
    parallelFor(
        0, 18,
        [&](std::size_t i) {
            sim[i / 6][i % 6] = simulatedOverhead(
                kLevels[i / 6], kNs[i % 6], w, refs);
        },
        bo.threads);

    std::printf(
        "E6: acceptability thresholds — per-cache extra commands per\n"
        "reference, (n-1)*T_SUM, w=%.1f; acceptable while < 1.0 "
        "(Sec. 4.3)\n\n",
        w);
    std::printf("%-10s", "n");
    for (unsigned n : kNs)
        std::printf(" %9u", n);
    std::printf("\n");

    for (int li = 0; li < 3; ++li) {
        const auto level = kLevels[li];
        std::printf("%-10s", toString(level).substr(0, 8).c_str());
        unsigned maxOk = 0;
        for (int ni = 0; ni < 6; ++ni) {
            std::printf(" %9.3f", model[li][ni]);
            if (model[li][ni] < 1.0)
                maxOk = kNs[ni];
        }
        std::printf("   acceptable to n=%u (model)\n", maxOk);

        std::printf("%-10s", "  (sim)");
        unsigned simOk = 0;
        for (int ni = 0; ni < 6; ++ni) {
            std::printf(" %9.3f", sim[li][ni]);
            if (sim[li][ni] < 1.0)
                simOk = kNs[ni];
        }
        std::printf("   acceptable to n=%u (sim)\n", simOk);
    }

    std::printf(
        "\nPaper's reading (Sec. 4.3): low sharing acceptable up to 64\n"
        "processors, moderate up to 16, high/write-intensive only to 8\n"
        "or fewer.  The rows above reproduce those boundaries; the\n"
        "simulation rows use measured workloads, so the crossover\n"
        "points (not the absolute cell values) are the comparison.\n");

    // The paper's future work ("the effect of the broadcasts on
    // traffic in the interconnection network ... will be investigated
    // in future studies"): an M/M/1 port model of the module network.
    double util[3][3];
    unsigned satN[3];
    for (int li = 0; li < 3; ++li) {
        for (int ni = 0; ni < 3; ++ni) {
            TrafficParams tp;
            tp.sharing =
                sharingCase(kLevels[li], kNs[ni + 2], w); // 8/16/32
            util[li][ni] = networkLoad(tp).utilisation;
        }
        TrafficParams sweep;
        sweep.sharing = sharingCase(kLevels[li], 8, w);
        satN[li] = saturationProcessorCount(sweep);
    }

    std::printf("\nNetwork saturation (M/M/1 port model, 4 modules, "
                "w=%.1f):\n", w);
    std::printf("%-10s %28s %22s\n", "",
                "port utilisation at n=8/16/32",
                "saturates beyond n=");
    for (int li = 0; li < 3; ++li) {
        std::printf("%-10s ",
                    toString(kLevels[li]).substr(0, 8).c_str());
        for (int ni = 0; ni < 3; ++ni)
            std::printf("%8.2f", util[li][ni]);
        std::printf("   %18u\n", satN[li]);
    }
    std::printf("\nThe broadcast share of the load is what separates "
                "the rows: the\nnetwork, not the stolen cache cycles, "
                "becomes the binding constraint\nfirst at high "
                "sharing — quantifying the concern Sec. 4.3 could "
                "only\nstate qualitatively.\n");

    Json params = Json::object();
    params.set("w", w);
    params.set("refs", static_cast<unsigned long long>(refs));
    params.set("modules", 4);
    Json cells = Json::array();
    for (int li = 0; li < 3; ++li) {
        for (int ni = 0; ni < 6; ++ni) {
            Json c = Json::object();
            c.set("section", "threshold");
            c.set("case", toString(kLevels[li]));
            c.set("n", kNs[ni]);
            c.set("modelOverhead", model[li][ni]);
            c.set("simOverhead", sim[li][ni]);
            cells.push(std::move(c));
        }
        Json net = Json::object();
        net.set("section", "network");
        net.set("case", toString(kLevels[li]));
        Json u = Json::object();
        u.set("n8", util[li][0]);
        u.set("n16", util[li][1]);
        u.set("n32", util[li][2]);
        net.set("portUtilisation", std::move(u));
        net.set("saturatesBeyondN", satN[li]);
        cells.push(std::move(net));
    }
    emitArtifact(bo, "bench_scaling", std::move(params),
                 std::move(cells), Json(), timer);
    return 0;
}
