/**
 * @file
 * E6: the §4.3 acceptability thresholds.
 *
 * The paper reads Table 4-1 through the rule of thumb that the scheme
 * remains acceptable while each cache receives less than one extra
 * command per own memory request ((n-1) T_SUM < 1.0, most of which
 * hides in the cache's idle cycles).  This bench sweeps n for each
 * sharing case with both the closed form and live simulation, and
 * reports the largest acceptable configuration — reproducing the
 * paper's conclusions: ~64 processors at low sharing, ~16 at moderate,
 * ~8 at high/write-intensive sharing.
 */

#include <cstdio>
#include <memory>

#include "model/overhead_model.hh"
#include "model/traffic_model.hh"
#include "proto/protocol_factory.hh"
#include "system/func_system.hh"
#include "trace/synthetic.hh"

namespace
{

using namespace dir2b;

double
simulatedOverhead(SharingLevel level, ProcId n, double w)
{
    const SharingParams sp = sharingCase(level, n, w);

    ProtoConfig cfg;
    cfg.numProcs = n;
    cfg.cacheGeom.sets = 32;
    cfg.cacheGeom.ways = 4;
    cfg.numModules = 4;

    SyntheticConfig scfg;
    scfg.numProcs = n;
    scfg.q = sp.q;
    scfg.w = w;
    scfg.sharedBlocks = 16;
    scfg.privateBlocks = 96;
    scfg.hotBlocks = 24;
    // Locality tuned per case so the measured shared hit ratio lands
    // near the h each Sec. 4.3 case assumes (same values as E3).
    scfg.sharedLocality = level == SharingLevel::Low      ? 0.97
                          : level == SharingLevel::Moderate ? 0.93
                                                            : 0.85;
    scfg.seed = 99;

    auto proto = makeProtocol("two_bit", cfg);
    SyntheticStream stream(scfg);
    RunOptions opts;
    opts.numRefs = 120000;
    const RunResult r = runFunctional(*proto, stream, opts);
    return r.perCacheUselessPerRef;
}

} // namespace

int
main()
{
    constexpr double w = 0.2;
    std::printf(
        "E6: acceptability thresholds — per-cache extra commands per\n"
        "reference, (n-1)*T_SUM, w=%.1f; acceptable while < 1.0 "
        "(Sec. 4.3)\n\n",
        w);
    std::printf("%-10s", "n");
    for (unsigned n : {2u, 4u, 8u, 16u, 32u, 64u})
        std::printf(" %9u", n);
    std::printf("\n");

    for (auto level : {SharingLevel::Low, SharingLevel::Moderate,
                       SharingLevel::High}) {
        std::printf("%-10s", toString(level).substr(0, 8).c_str());
        unsigned maxOk = 0;
        for (unsigned n : {2u, 4u, 8u, 16u, 32u, 64u}) {
            const double v = overhead(sharingCase(level, n, w)).perCache;
            std::printf(" %9.3f", v);
            if (v < 1.0)
                maxOk = n;
        }
        std::printf("   acceptable to n=%u (model)\n", maxOk);

        std::printf("%-10s", "  (sim)");
        unsigned simOk = 0;
        for (unsigned n : {2u, 4u, 8u, 16u, 32u, 64u}) {
            const double v = simulatedOverhead(level, n, w);
            std::printf(" %9.3f", v);
            if (v < 1.0)
                simOk = n;
        }
        std::printf("   acceptable to n=%u (sim)\n", simOk);
    }

    std::printf(
        "\nPaper's reading (Sec. 4.3): low sharing acceptable up to 64\n"
        "processors, moderate up to 16, high/write-intensive only to 8\n"
        "or fewer.  The rows above reproduce those boundaries; the\n"
        "simulation rows use measured workloads, so the crossover\n"
        "points (not the absolute cell values) are the comparison.\n");

    // The paper's future work ("the effect of the broadcasts on
    // traffic in the interconnection network ... will be investigated
    // in future studies"): an M/M/1 port model of the module network.
    std::printf("\nNetwork saturation (M/M/1 port model, 4 modules, "
                "w=%.1f):\n", w);
    std::printf("%-10s %28s %22s\n", "",
                "port utilisation at n=8/16/32",
                "saturates beyond n=");
    for (auto level : {SharingLevel::Low, SharingLevel::Moderate,
                       SharingLevel::High}) {
        TrafficParams tp;
        tp.sharing = sharingCase(level, 8, w);
        std::printf("%-10s ", toString(level).substr(0, 8).c_str());
        for (unsigned n : {8u, 16u, 32u}) {
            tp.sharing = sharingCase(level, n, w);
            const auto r = networkLoad(tp);
            std::printf("%8.2f", r.utilisation);
        }
        TrafficParams sweep;
        sweep.sharing = sharingCase(level, 8, w);
        std::printf("   %18u\n", saturationProcessorCount(sweep));
    }
    std::printf("\nThe broadcast share of the load is what separates "
                "the rows: the\nnetwork, not the stolen cache cycles, "
                "becomes the binding constraint\nfirst at high "
                "sharing — quantifying the concern Sec. 4.3 could "
                "only\nstate qualitatively.\n");
    return 0;
}
