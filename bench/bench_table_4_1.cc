/**
 * @file
 * E1: regenerate Table 4-1 — "Added overhead of two-bit scheme in
 * commands per memory reference" — from the §4.2 closed form, in the
 * paper's layout (three sharing cases x w rows x n columns).
 *
 * A second table prints the same quantity derived from first
 * principles by the two-bit directory-state Markov chain (no assumed
 * P(P1)/P(P*)/P(PM)), as an ablation of the paper's assumed state
 * probabilities.
 *
 * Both grids dispatch cell-by-cell through the sweep pool and can be
 * exported with --json (docs/METRICS.md).
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "model/overhead_model.hh"
#include "model/sharing_chain.hh"
#include "report/bench_cli.hh"
#include "util/parallel.hh"
#include "util/table.hh"

namespace
{

using namespace dir2b;

const SharingLevel kLevels[3] = {SharingLevel::Low,
                                 SharingLevel::Moderate,
                                 SharingLevel::High};

/** Flat (case, w, n) grid index helpers. */
struct Grid
{
    std::vector<double> ws;
    std::vector<unsigned> ns;

    std::size_t size() const { return 3 * ws.size() * ns.size(); }
    SharingLevel
    level(std::size_t i) const
    {
        return kLevels[i / (ws.size() * ns.size())];
    }
    double
    w(std::size_t i) const
    {
        return ws[(i / ns.size()) % ws.size()];
    }
    unsigned n(std::size_t i) const { return ns[i % ns.size()]; }
};

Grid
table41Grid()
{
    return Grid{table41WriteProbs(), table41ProcessorCounts()};
}

std::vector<double>
closedFormCells(const Grid &g, unsigned threads)
{
    std::vector<double> vals(g.size());
    parallelFor(
        0, g.size(),
        [&](std::size_t i) {
            SharingParams p = sharingCase(g.level(i), g.n(i), g.w(i));
            vals[i] = overhead(p).perCache;
        },
        threads);
    return vals;
}

std::vector<double>
chainCells(const Grid &g, unsigned threads)
{
    std::vector<double> vals(g.size());
    parallelFor(
        0, g.size(),
        [&](std::size_t i) {
            ChainParams cp;
            cp.n = g.n(i);
            cp.q = sharingCase(g.level(i), 4, 0.1).q;
            cp.w = g.w(i);
            cp.sharedBlocks = 16;
            cp.evictRate = evictRateFromGeometry(g.n(i), 128);
            vals[i] = solveTwoBitChain(cp).perCache;
        },
        threads);
    return vals;
}

void
printGrid(TextTable &t, const Grid &g, const std::vector<double> &vals,
          bool withQ)
{
    int caseNo = 1;
    std::size_t i = 0;
    for (auto level : kLevels) {
        std::string head = "case " + std::to_string(caseNo++) + ": " +
                           toString(level);
        if (withQ) {
            const double q = sharingCase(level, 4, 0.1).q;
            head += " (q=" + TextTable::num(q, 2) + ")";
        }
        t.addRow({std::move(head), "", "", "", "", ""});
        for (double w : g.ws) {
            std::vector<std::string> row{"  w = " + TextTable::num(w, 1)};
            for (std::size_t k = 0; k < g.ns.size(); ++k)
                row.push_back(TextTable::num(vals[i++]));
            t.addRow(std::move(row));
        }
        t.addRule();
    }
}

void
printClosedForm(const Grid &g, const std::vector<double> &vals)
{
    TextTable t({"", "n: 4", "8", "16", "32", "64"});
    t.setTitle("Table 4-1 (reproduction): added overhead of two-bit "
               "scheme,\n(n-1) * T_SUM commands per memory reference "
               "[closed form, Sec. 4.2]");
    printGrid(t, g, vals, false);
    t.print(std::cout);

    std::cout
        << "\nNotes vs. the printed paper:\n"
        << " * case 1, w=0.3, n=16: the paper prints 0.970; the formula\n"
        << "   gives 0.070 (the column is otherwise monotone 0.047 ->\n"
        << "   0.092), a typesetting error in the original.\n"
        << " * case 1, w=0.1, n=4: the paper prints 0.000 for 0.00097\n"
        << "   (truncation rather than rounding).\n";
}

void
printChainPrediction(const Grid &g, const std::vector<double> &vals)
{
    TextTable t({"", "n: 4", "8", "16", "32", "64"});
    t.setTitle("\nAblation: the same overhead predicted from first "
               "principles by the\ntwo-bit directory-state Markov chain "
               "(S=16 shared blocks, 128-block\ncaches; state "
               "probabilities emerge instead of being assumed)");
    printGrid(t, g, vals, true);
    t.print(std::cout);
}

TwoBitChainResult
moderateChainReference()
{
    // State-probability comparison for the moderate case: what the
    // paper assumed vs. what the chain predicts.
    ChainParams cp;
    cp.n = 16;
    cp.q = 0.05;
    cp.w = 0.2;
    cp.sharedBlocks = 16;
    cp.evictRate = evictRateFromGeometry(16, 128);
    return solveTwoBitChain(cp);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions bo = parseBenchOptions(
        argc, argv, "bench_table_4_1",
        "E1: Table 4-1 from the Sec. 4.2 closed form, plus the "
        "Markov-chain ablation");
    const WallTimer timer;

    const Grid g = table41Grid();
    const std::vector<double> closed = closedFormCells(g, bo.threads);
    const std::vector<double> chain = chainCells(g, bo.threads);

    printClosedForm(g, closed);
    printChainPrediction(g, chain);

    const auto r = moderateChainReference();
    std::cout << "\nState probabilities, moderate sharing (paper "
                 "assumption vs. chain, n=16, w=0.2):\n";
    std::printf("  P(P1):  paper 0.25   chain %.3f\n", r.pP1);
    std::printf("  P(P*):  paper 0.05   chain %.3f\n", r.pPStar);
    std::printf("  P(PM):  paper 0.10   chain %.3f\n", r.pPM);
    std::printf("  P(P* with zero copies) [the Sec. 3.1 anomaly]: %.4f\n",
                r.pStarEmpty);

    Json params = Json::object();
    params.set("sharedBlocks", 16);
    params.set("cacheBlocks", 128);
    Json cells = Json::array();
    auto pushCells = [&](const char *section,
                         const std::vector<double> &vals) {
        for (std::size_t i = 0; i < g.size(); ++i) {
            Json c = Json::object();
            c.set("section", section);
            c.set("case", toString(g.level(i)));
            c.set("w", g.w(i));
            c.set("n", g.n(i));
            c.set("perCache", vals[i]);
            cells.push(std::move(c));
        }
    };
    pushCells("closed_form", closed);
    pushCells("chain", chain);

    Json summary = Json::object();
    Json probs = Json::object();
    probs.set("pP1", r.pP1);
    probs.set("pPStar", r.pPStar);
    probs.set("pPM", r.pPM);
    probs.set("pStarEmpty", r.pStarEmpty);
    summary.set("chainStateProbs_n16_w02", std::move(probs));
    Json notes = Json::array();
    notes.push("paper prints 0.970 for 0.070 at case 1, w=0.3, n=16 "
               "(typesetting error)");
    notes.push("paper prints 0.000 for 0.00097 at case 1, w=0.1, n=4 "
               "(truncated, not rounded)");
    summary.set("paperErrata", std::move(notes));

    emitArtifact(bo, "bench_table_4_1", std::move(params),
                 std::move(cells), std::move(summary), timer);
    return 0;
}
