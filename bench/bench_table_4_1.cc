/**
 * @file
 * E1: regenerate Table 4-1 — "Added overhead of two-bit scheme in
 * commands per memory reference" — from the §4.2 closed form, in the
 * paper's layout (three sharing cases x w rows x n columns).
 *
 * A second table prints the same quantity derived from first
 * principles by the two-bit directory-state Markov chain (no assumed
 * P(P1)/P(P*)/P(PM)), as an ablation of the paper's assumed state
 * probabilities.
 */

#include <cstdio>
#include <iostream>

#include "model/overhead_model.hh"
#include "model/sharing_chain.hh"
#include "util/table.hh"

namespace
{

using namespace dir2b;

void
printClosedForm()
{
    TextTable t({"", "n: 4", "8", "16", "32", "64"});
    t.setTitle("Table 4-1 (reproduction): added overhead of two-bit "
               "scheme,\n(n-1) * T_SUM commands per memory reference "
               "[closed form, Sec. 4.2]");

    int caseNo = 1;
    for (auto level : {SharingLevel::Low, SharingLevel::Moderate,
                       SharingLevel::High}) {
        t.addRow({"case " + std::to_string(caseNo++) + ": " +
                      toString(level),
                  "", "", "", "", ""});
        for (double w : table41WriteProbs()) {
            std::vector<std::string> row{"  w = " + TextTable::num(w, 1)};
            for (double v : table41Row(level, w))
                row.push_back(TextTable::num(v));
            t.addRow(std::move(row));
        }
        t.addRule();
    }
    t.print(std::cout);

    std::cout
        << "\nNotes vs. the printed paper:\n"
        << " * case 1, w=0.3, n=16: the paper prints 0.970; the formula\n"
        << "   gives 0.070 (the column is otherwise monotone 0.047 ->\n"
        << "   0.092), a typesetting error in the original.\n"
        << " * case 1, w=0.1, n=4: the paper prints 0.000 for 0.00097\n"
        << "   (truncation rather than rounding).\n";
}

void
printChainPrediction()
{
    TextTable t({"", "n: 4", "8", "16", "32", "64"});
    t.setTitle("\nAblation: the same overhead predicted from first "
               "principles by the\ntwo-bit directory-state Markov chain "
               "(S=16 shared blocks, 128-block\ncaches; state "
               "probabilities emerge instead of being assumed)");

    int caseNo = 1;
    for (auto level : {SharingLevel::Low, SharingLevel::Moderate,
                       SharingLevel::High}) {
        // Match each case's q; w sweeps as in the table.
        const double q = sharingCase(level, 4, 0.1).q;
        t.addRow({"case " + std::to_string(caseNo++) + ": " +
                      toString(level) + " (q=" + TextTable::num(q, 2) +
                      ")",
                  "", "", "", "", ""});
        for (double w : table41WriteProbs()) {
            std::vector<std::string> row{"  w = " + TextTable::num(w, 1)};
            for (unsigned n : table41ProcessorCounts()) {
                ChainParams cp;
                cp.n = n;
                cp.q = q;
                cp.w = w;
                cp.sharedBlocks = 16;
                cp.evictRate = evictRateFromGeometry(n, 128);
                row.push_back(
                    TextTable::num(solveTwoBitChain(cp).perCache));
            }
            t.addRow(std::move(row));
        }
        t.addRule();
    }
    t.print(std::cout);

    // State-probability comparison for the moderate case: what the
    // paper assumed vs. what the chain predicts.
    std::cout << "\nState probabilities, moderate sharing (paper "
                 "assumption vs. chain, n=16, w=0.2):\n";
    ChainParams cp;
    cp.n = 16;
    cp.q = 0.05;
    cp.w = 0.2;
    cp.sharedBlocks = 16;
    cp.evictRate = evictRateFromGeometry(16, 128);
    const auto r = solveTwoBitChain(cp);
    std::printf("  P(P1):  paper 0.25   chain %.3f\n", r.pP1);
    std::printf("  P(P*):  paper 0.05   chain %.3f\n", r.pPStar);
    std::printf("  P(PM):  paper 0.10   chain %.3f\n", r.pPM);
    std::printf("  P(P* with zero copies) [the Sec. 3.1 anomaly]: %.4f\n",
                r.pStarEmpty);
}

} // namespace

int
main()
{
    printClosedForm();
    printChainPrediction();
    return 0;
}
