/**
 * @file
 * E7: the §2 spectrum of solutions, quantified.
 *
 * Every protocol of the paper's survey runs the same four workload
 * classes; we report the axes the paper argues qualitatively:
 * directory storage (bits/block), network messages, commands received
 * at caches (broadcast vs directed, useless fraction), invalidations,
 * writebacks/word-writes (write-through pressure), snoop checks (the
 * bus schemes' per-miss cost), and miss ratio.
 *
 * The software scheme runs only the synthetic workload (its
 * compile-time classification cannot express the other patterns'
 * cross-processor write sharing of "private" regions is fine — but
 * task migration is excluded by the scheme's own premise).
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "proto/protocol_factory.hh"
#include "system/func_system.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

namespace
{

using namespace dir2b;

std::unique_ptr<RefStream>
makeStream(const std::string &workload, ProcId n)
{
    if (workload == "synthetic") {
        SyntheticConfig cfg;
        cfg.numProcs = n;
        cfg.q = 0.05;
        cfg.w = 0.3;
        cfg.sharedBlocks = 16;
        cfg.privateBlocks = 96;
        cfg.hotBlocks = 24;
        cfg.seed = 11;
        return std::make_unique<SyntheticStream>(cfg);
    }
    WorkloadConfig cfg;
    cfg.numProcs = n;
    cfg.sharedBlocks = 16;
    cfg.privateBlocks = 64;
    cfg.privateFraction = 0.7;
    cfg.seed = 11;
    if (workload == "producer_consumer")
        return std::make_unique<ProducerConsumerWorkload>(cfg);
    if (workload == "migratory")
        return std::make_unique<MigratoryWorkload>(cfg);
    if (workload == "read_mostly")
        return std::make_unique<ReadMostlyWorkload>(cfg);
    if (workload == "lock")
        return std::make_unique<LockContentionWorkload>(cfg);
    return nullptr;
}

void
runWorkload(const std::string &workload)
{
    constexpr ProcId n = 8;
    constexpr std::uint64_t refs = 150000;

    std::printf("workload: %s (n=%u, %llu refs; per-1000-references "
                "rates)\n",
                workload.c_str(), n,
                static_cast<unsigned long long>(refs));
    std::printf("%-15s %5s %8s %8s %8s %8s %8s %8s %8s %8s\n",
                "protocol", "bits", "netMsg", "recvCmd", "useless",
                "inval", "wrBack", "wordWr", "snoop", "miss%");

    for (const auto &name : protocolNames()) {
        ProtoConfig cfg;
        cfg.numProcs = n;
        cfg.cacheGeom.sets = 32;
        cfg.cacheGeom.ways = 4;
        cfg.numModules = 4;
        cfg.tbCapacity = 32;
        cfg.biasCapacity = 16;
        cfg.nonCacheableBase = sharedRegionBase;

        auto proto = makeProtocol(name, cfg);
        auto stream = makeStream(workload, n);
        RunOptions opts;
        opts.numRefs = refs;
        const RunResult r = runFunctional(*proto, *stream, opts);

        const double k = 1000.0 / static_cast<double>(refs);
        const auto &c = r.counts;
        std::printf(
            "%-15s %5u %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f "
            "%7.2f%%\n",
            name.c_str(), proto->directoryBitsPerBlock(),
            c.netMessages * k, (c.broadcastCmds + c.directedCmds) * k,
            c.uselessCmds * k, c.invalidations * k, c.writebacks * k,
            c.wordWrites * k, c.snoopChecks * k, 100.0 * c.missRatio());
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("E7: the Sec. 2 spectrum quantified — all schemes on "
                "common workloads\n\n");
    for (const char *w :
         {"synthetic", "read_mostly", "producer_consumer", "migratory",
          "lock"}) {
        runWorkload(w);
    }
    std::printf(
        "Reading guide (the paper's qualitative claims, now measured):\n"
        " * full_map/dup_dir/two_bit_tb: zero useless commands;\n"
        " * two_bit: useless commands grow with sharing level but its\n"
        "   directory stays at 2 bits/block at any n;\n"
        " * classical: word-writes and invalidation traffic on every\n"
        "   store (the 'most damaging drawback');\n"
        " * write_once/illinois: snoop checks on every miss — cheap on\n"
        "   a bus, unavailable on a general interconnection network;\n"
        " * software: zero coherence traffic, but every shared access\n"
        "   is a memory round trip (miss%% includes them).\n");
    return 0;
}
