/**
 * @file
 * E7: the §2 spectrum of solutions, quantified.
 *
 * Every protocol of the paper's survey runs the same four workload
 * classes; we report the axes the paper argues qualitatively:
 * directory storage (bits/block), network messages, commands received
 * at caches (broadcast vs directed, useless fraction), invalidations,
 * writebacks/word-writes (write-through pressure), snoop checks (the
 * bus schemes' per-miss cost), and miss ratio.
 *
 * The software scheme runs only the synthetic workload (its
 * compile-time classification cannot express the other patterns'
 * cross-processor write sharing of "private" regions is fine — but
 * task migration is excluded by the scheme's own premise).
 *
 * The workload x protocol grid dispatches through the sweep pool
 * (--threads / DIR2B_THREADS); each cell owns its protocol, stream
 * and seed, so the tables and the --json artifact are identical at
 * any thread count.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "proto/protocol_factory.hh"
#include "report/bench_cli.hh"
#include "system/func_system.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"
#include "util/parallel.hh"

namespace
{

using namespace dir2b;

constexpr ProcId kProcs = 8;
constexpr std::uint64_t kFullRefs = 150000;

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "synthetic", "read_mostly", "producer_consumer", "migratory",
        "lock"};
    return names;
}

std::unique_ptr<RefStream>
makeStream(const std::string &workload, ProcId n)
{
    if (workload == "synthetic") {
        SyntheticConfig cfg;
        cfg.numProcs = n;
        cfg.q = 0.05;
        cfg.w = 0.3;
        cfg.sharedBlocks = 16;
        cfg.privateBlocks = 96;
        cfg.hotBlocks = 24;
        cfg.seed = 11;
        return std::make_unique<SyntheticStream>(cfg);
    }
    WorkloadConfig cfg;
    cfg.numProcs = n;
    cfg.sharedBlocks = 16;
    cfg.privateBlocks = 64;
    cfg.privateFraction = 0.7;
    cfg.seed = 11;
    if (workload == "producer_consumer")
        return std::make_unique<ProducerConsumerWorkload>(cfg);
    if (workload == "migratory")
        return std::make_unique<MigratoryWorkload>(cfg);
    if (workload == "read_mostly")
        return std::make_unique<ReadMostlyWorkload>(cfg);
    if (workload == "lock")
        return std::make_unique<LockContentionWorkload>(cfg);
    return nullptr;
}

struct Cell
{
    std::string workload;
    std::string protocol;
    unsigned bits = 0;
    AccessCounts counts;
};

Cell
runCell(const std::string &workload, const std::string &protocol,
        std::uint64_t refs)
{
    ProtoConfig cfg;
    cfg.numProcs = kProcs;
    cfg.cacheGeom.sets = 32;
    cfg.cacheGeom.ways = 4;
    cfg.numModules = 4;
    cfg.tbCapacity = 32;
    cfg.biasCapacity = 16;
    cfg.nonCacheableBase = sharedRegionBase;

    auto proto = makeProtocol(protocol, cfg);
    auto stream = makeStream(workload, kProcs);
    RunOptions opts;
    opts.numRefs = refs;
    const RunResult r = runFunctional(*proto, *stream, opts);

    Cell c;
    c.workload = workload;
    c.protocol = protocol;
    c.bits = proto->directoryBitsPerBlock();
    c.counts = r.counts;
    return c;
}

void
printWorkload(const std::string &workload,
              const std::vector<Cell> &cells, std::uint64_t refs)
{
    std::printf("workload: %s (n=%u, %llu refs; per-1000-references "
                "rates)\n",
                workload.c_str(), kProcs,
                static_cast<unsigned long long>(refs));
    std::printf("%-15s %5s %8s %8s %8s %8s %8s %8s %8s %8s\n",
                "protocol", "bits", "netMsg", "recvCmd", "useless",
                "inval", "wrBack", "wordWr", "snoop", "miss%");

    const double k = 1000.0 / static_cast<double>(refs);
    for (const Cell &cell : cells) {
        if (cell.workload != workload)
            continue;
        const auto &c = cell.counts;
        std::printf(
            "%-15s %5u %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f "
            "%7.2f%%\n",
            cell.protocol.c_str(), cell.bits, c.netMessages * k,
            (c.broadcastCmds + c.directedCmds) * k, c.uselessCmds * k,
            c.invalidations * k, c.writebacks * k, c.wordWrites * k,
            c.snoopChecks * k, 100.0 * c.missRatio());
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions bo = parseBenchOptions(
        argc, argv, "bench_protocol_comparison",
        "E7: all coherence schemes on common workloads (Sec. 2 "
        "spectrum)");
    const WallTimer timer;
    const std::uint64_t refs = bo.scaleRefs(kFullRefs);

    // One cell per (workload, protocol), in fixed grid order.
    const auto &workloads = workloadNames();
    const auto protocols = protocolNames();
    std::vector<Cell> cells(workloads.size() * protocols.size());
    parallelFor(
        0, cells.size(),
        [&](std::size_t i) {
            const std::string &w = workloads[i / protocols.size()];
            const std::string &p = protocols[i % protocols.size()];
            cells[i] = runCell(w, p, refs);
        },
        bo.threads);

    std::printf("E7: the Sec. 2 spectrum quantified — all schemes on "
                "common workloads\n\n");
    for (const auto &w : workloads)
        printWorkload(w, cells, refs);
    std::printf(
        "Reading guide (the paper's qualitative claims, now measured):\n"
        " * full_map/dup_dir/two_bit_tb: zero useless commands;\n"
        " * two_bit: useless commands grow with sharing level but its\n"
        "   directory stays at 2 bits/block at any n;\n"
        " * classical: word-writes and invalidation traffic on every\n"
        "   store (the 'most damaging drawback');\n"
        " * write_once/illinois: snoop checks on every miss — cheap on\n"
        "   a bus, unavailable on a general interconnection network;\n"
        " * software: zero coherence traffic, but every shared access\n"
        "   is a memory round trip (miss%% includes them).\n");

    Json params = Json::object();
    params.set("n", kProcs);
    params.set("refs", static_cast<unsigned long long>(refs));
    Json jcells = Json::array();
    for (const Cell &c : cells) {
        Json jc = Json::object();
        jc.set("section", "comparison");
        jc.set("workload", c.workload);
        jc.set("protocol", c.protocol);
        jc.set("dirBitsPerBlock", c.bits);
        jc.set("counts", countsToJson(c.counts));
        jcells.push(std::move(jc));
    }
    emitArtifact(bo, "bench_protocol_comparison", std::move(params),
                 std::move(jcells), Json(), timer);
    return 0;
}
