/**
 * @file
 * E4 + E5: the two §4.4 enhancements, measured.
 *
 * (a) Parallel cache controller (duplicate tag directory): broadcasts
 *     that miss in the duplicate steal no processor cycle, so the
 *     stolen-cycle count drops to the *useful* deliveries only —
 *     "from the viewpoint of the cache this is equivalent to the
 *     distributed full map scheme" — while network traffic is
 *     unchanged (the paper's stated limitation).
 *
 * (b) Translation buffer: sweeping its capacity trades hardware for a
 *     hit ratio H; the fraction of broadcast overhead eliminated
 *     should track H ("if a 90% hit ratio ... could be maintained,
 *     90% of the added overhead resulting from the broadcasts is
 *     eliminated").  We print capacity, measured H, remaining useless
 *     commands, and the elimination fraction vs. H.
 */

#include <cstdio>
#include <memory>

#include "core/two_bit_protocol.hh"
#include "core/two_bit_tb_protocol.hh"
#include "proto/protocol_factory.hh"
#include "system/func_system.hh"
#include "trace/synthetic.hh"

namespace
{

using namespace dir2b;

SyntheticConfig
workload(ProcId n)
{
    SyntheticConfig scfg;
    scfg.numProcs = n;
    scfg.q = 0.05;
    scfg.w = 0.3;
    scfg.sharedBlocks = 64; // enough blocks that a small TB thrashes
    scfg.privateBlocks = 96;
    scfg.hotBlocks = 24;
    scfg.seed = 7;
    return scfg;
}

ProtoConfig
system(ProcId n)
{
    ProtoConfig cfg;
    cfg.numProcs = n;
    cfg.cacheGeom.sets = 32;
    cfg.cacheGeom.ways = 4;
    cfg.numModules = 4;
    return cfg;
}

void
snoopFilterExperiment()
{
    constexpr ProcId n = 16;
    constexpr std::uint64_t refs = 200000;

    std::printf("E5 — enhancement (a): duplicate cache directory "
                "(parallel controller)\n");
    std::printf("moderate sharing, n=%u, %llu refs\n\n", n,
                static_cast<unsigned long long>(refs));
    std::printf("%-22s %14s %14s %14s\n", "config", "stolen cycles",
                "filtered", "net messages");

    for (bool filter : {false, true}) {
        ProtoConfig cfg = system(n);
        cfg.snoopFilter = filter;
        TwoBitProtocol proto(cfg);
        SyntheticStream stream(workload(n));
        RunOptions opts;
        opts.numRefs = refs;
        runFunctional(proto, stream, opts);
        std::printf("%-22s %14llu %14llu %14llu\n",
                    filter ? "with duplicate dir" : "plain two-bit",
                    static_cast<unsigned long long>(
                        proto.counts().stolenCycles),
                    static_cast<unsigned long long>(
                        proto.counts().filteredCmds),
                    static_cast<unsigned long long>(
                        proto.counts().netMessages));
    }
    std::printf("\nWith the duplicate directory the cache only loses a "
                "cycle when the\nbroadcast block is actually present; "
                "network traffic is unchanged\n(the limitation the "
                "paper notes for this enhancement).\n\n");
}

void
translationBufferExperiment()
{
    constexpr ProcId n = 16;
    constexpr std::uint64_t refs = 200000;

    // Baseline: plain two-bit overhead.
    ProtoConfig base = system(n);
    TwoBitProtocol plain(base);
    {
        SyntheticStream stream(workload(n));
        RunOptions opts;
        opts.numRefs = refs;
        runFunctional(plain, stream, opts);
    }
    const double baseline =
        static_cast<double>(plain.counts().uselessCmds);

    std::printf("E4 — enhancement (b): translation buffer sweep "
                "(n=%u, %llu refs)\n\n",
                n, static_cast<unsigned long long>(refs));
    std::printf("%-12s %10s %16s %18s %12s\n", "TB capacity",
                "hit ratio", "useless cmds", "eliminated frac",
                "broadcasts");
    std::printf("%-12s %10s %16.0f %18s %12llu\n", "none (base)", "-",
                baseline, "-",
                static_cast<unsigned long long>(
                    plain.counts().broadcasts));

    for (std::size_t cap : {2u, 4u, 8u, 16u, 32u, 64u, 256u}) {
        ProtoConfig cfg = system(n);
        cfg.tbCapacity = cap;
        TwoBitTbProtocol proto(cfg);
        SyntheticStream stream(workload(n));
        RunOptions opts;
        opts.numRefs = refs;
        runFunctional(proto, stream, opts);

        const double useless =
            static_cast<double>(proto.counts().uselessCmds);
        const double eliminated =
            baseline > 0 ? 1.0 - useless / baseline : 0.0;
        std::printf("%-12zu %10.3f %16.0f %18.3f %12llu\n", cap,
                    proto.tbHitRatio(), useless, eliminated,
                    static_cast<unsigned long long>(
                        proto.counts().broadcasts));
    }
    std::printf(
        "\nThe elimination fraction tracks the buffer hit ratio: at "
        "H~0.9 about\n90%% of the broadcast overhead disappears, and "
        "with a large enough\nbuffer the scheme approaches the full "
        "map (the paper's limiting claim).\n");
}

void
present1Ablation()
{
    // §3.2.1's design note: EJECT(k,olda,"read") "could be ignored ...
    // however keeping Present1, and allowing the transition from
    // Present1 to Absent, will reduce the number of broadcasts."  This
    // quantifies the claim: the same workloads with and without the
    // Present1 encoding (folded into Present*).
    constexpr ProcId n = 16;
    constexpr std::uint64_t refs = 200000;

    std::printf("\nAblation — the value of the Present1 encoding "
                "(n=%u, %llu refs)\n\n",
                n, static_cast<unsigned long long>(refs));
    std::printf("%-12s %-14s %12s %12s %14s\n", "sharing",
                "variant", "broadcasts", "useless", "mrequests");

    struct Case { const char *name; double q; double w; };
    const Case cases[] = {{"low", 0.01, 0.2}, {"moderate", 0.05, 0.2},
                          {"high", 0.10, 0.4}};
    for (const auto &c : cases) {
        for (const char *variant : {"two_bit", "two_bit_nop1"}) {
            ProtoConfig cfg = system(n);
            auto proto = makeProtocol(variant, cfg);
            SyntheticConfig scfg = workload(n);
            scfg.q = c.q;
            scfg.w = c.w;
            SyntheticStream stream(scfg);
            RunOptions opts;
            opts.numRefs = refs;
            runFunctional(*proto, stream, opts);
            std::printf("%-12s %-14s %12llu %12llu %14llu\n", c.name,
                        variant,
                        static_cast<unsigned long long>(
                            proto->counts().broadcasts),
                        static_cast<unsigned long long>(
                            proto->counts().uselessCmds),
                        static_cast<unsigned long long>(
                            proto->counts().mrequests));
        }
    }
    std::printf("\nWithout Present1, every first write to a "
                "once-read block needs a\nbroadcast (no free "
                "MGRANTED), and clean ejections can never reclaim\n"
                "Absent — both broadcast counts rise, vindicating the "
                "fourth state.\n");
}

} // namespace

int
main()
{
    snoopFilterExperiment();
    translationBufferExperiment();
    present1Ablation();
    return 0;
}
