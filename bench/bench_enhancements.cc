/**
 * @file
 * E4 + E5: the two §4.4 enhancements, measured.
 *
 * (a) Parallel cache controller (duplicate tag directory): broadcasts
 *     that miss in the duplicate steal no processor cycle, so the
 *     stolen-cycle count drops to the *useful* deliveries only —
 *     "from the viewpoint of the cache this is equivalent to the
 *     distributed full map scheme" — while network traffic is
 *     unchanged (the paper's stated limitation).
 *
 * (b) Translation buffer: sweeping its capacity trades hardware for a
 *     hit ratio H; the fraction of broadcast overhead eliminated
 *     should track H ("if a 90% hit ratio ... could be maintained,
 *     90% of the added overhead resulting from the broadcasts is
 *     eliminated").  We print capacity, measured H, remaining useless
 *     commands, and the elimination fraction vs. H.
 *
 * Plus the Present1 ablation (§3.2.1).  All sixteen simulation runs
 * across the three experiments are independent, fixed-seed cells and
 * dispatch through one sweep pool before anything is printed.
 */

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "core/two_bit_protocol.hh"
#include "core/two_bit_tb_protocol.hh"
#include "proto/protocol_factory.hh"
#include "report/bench_cli.hh"
#include "system/func_system.hh"
#include "trace/synthetic.hh"
#include "util/parallel.hh"

namespace
{

using namespace dir2b;

constexpr ProcId kProcs = 16;

SyntheticConfig
workload(ProcId n)
{
    SyntheticConfig scfg;
    scfg.numProcs = n;
    scfg.q = 0.05;
    scfg.w = 0.3;
    scfg.sharedBlocks = 64; // enough blocks that a small TB thrashes
    scfg.privateBlocks = 96;
    scfg.hotBlocks = 24;
    scfg.seed = 7;
    return scfg;
}

ProtoConfig
system(ProcId n)
{
    ProtoConfig cfg;
    cfg.numProcs = n;
    cfg.cacheGeom.sets = 32;
    cfg.cacheGeom.ways = 4;
    cfg.numModules = 4;
    return cfg;
}

/** Everything one run contributes to the tables and the artifact. */
struct RunCell
{
    AccessCounts counts;
    double tbHitRatio = 0.0;
};

RunCell
runProto(Protocol &proto, const SyntheticConfig &scfg,
         std::uint64_t refs)
{
    SyntheticStream stream(scfg);
    RunOptions opts;
    opts.numRefs = refs;
    runFunctional(proto, stream, opts);
    RunCell cell;
    cell.counts = proto.counts();
    return cell;
}

struct Present1Case
{
    const char *name;
    double q;
    double w;
};

const Present1Case kP1Cases[] = {{"low", 0.01, 0.2},
                                 {"moderate", 0.05, 0.2},
                                 {"high", 0.10, 0.4}};
const std::size_t kTbCaps[] = {2u, 4u, 8u, 16u, 32u, 64u, 256u};

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions bo = parseBenchOptions(
        argc, argv, "bench_enhancements",
        "E4 + E5: the Sec. 4.4 enhancements and the Present1 "
        "ablation");
    const WallTimer timer;
    const std::uint64_t refs = bo.scaleRefs(200000);

    constexpr std::size_t numCaps = std::size(kTbCaps);
    constexpr std::size_t numP1 = std::size(kP1Cases);

    // Slots: [0..1] snoop filter off/on; [2] TB baseline;
    // [3..3+numCaps) TB sweep; then the Present1 grid.
    std::vector<RunCell> cells(3 + numCaps + numP1 * 2);
    std::vector<std::function<RunCell()>> tasks;
    tasks.reserve(cells.size());

    for (bool filter : {false, true}) {
        tasks.push_back([filter, refs] {
            ProtoConfig cfg = system(kProcs);
            cfg.snoopFilter = filter;
            TwoBitProtocol proto(cfg);
            return runProto(proto, workload(kProcs), refs);
        });
    }
    tasks.push_back([refs] {
        TwoBitProtocol proto(system(kProcs));
        return runProto(proto, workload(kProcs), refs);
    });
    for (std::size_t cap : kTbCaps) {
        tasks.push_back([cap, refs] {
            ProtoConfig cfg = system(kProcs);
            cfg.tbCapacity = cap;
            TwoBitTbProtocol proto(cfg);
            RunCell cell = runProto(proto, workload(kProcs), refs);
            cell.tbHitRatio = proto.tbHitRatio();
            return cell;
        });
    }
    for (const auto &c : kP1Cases) {
        for (const char *variant : {"two_bit", "two_bit_nop1"}) {
            tasks.push_back([&c, variant, refs] {
                auto proto = makeProtocol(variant, system(kProcs));
                SyntheticConfig scfg = workload(kProcs);
                scfg.q = c.q;
                scfg.w = c.w;
                return runProto(*proto, scfg, refs);
            });
        }
    }

    parallelFor(
        0, tasks.size(), [&](std::size_t i) { cells[i] = tasks[i](); },
        bo.threads);

    // --- E5: duplicate cache directory ---
    std::printf("E5 — enhancement (a): duplicate cache directory "
                "(parallel controller)\n");
    std::printf("moderate sharing, n=%u, %llu refs\n\n", kProcs,
                static_cast<unsigned long long>(refs));
    std::printf("%-22s %14s %14s %14s\n", "config", "stolen cycles",
                "filtered", "net messages");
    for (int i = 0; i < 2; ++i) {
        const auto &c = cells[static_cast<std::size_t>(i)].counts;
        std::printf("%-22s %14llu %14llu %14llu\n",
                    i ? "with duplicate dir" : "plain two-bit",
                    static_cast<unsigned long long>(c.stolenCycles),
                    static_cast<unsigned long long>(c.filteredCmds),
                    static_cast<unsigned long long>(c.netMessages));
    }
    std::printf("\nWith the duplicate directory the cache only loses a "
                "cycle when the\nbroadcast block is actually present; "
                "network traffic is unchanged\n(the limitation the "
                "paper notes for this enhancement).\n\n");

    // --- E4: translation buffer sweep ---
    const RunCell &base = cells[2];
    const double baseline = static_cast<double>(base.counts.uselessCmds);
    std::printf("E4 — enhancement (b): translation buffer sweep "
                "(n=%u, %llu refs)\n\n",
                kProcs, static_cast<unsigned long long>(refs));
    std::printf("%-12s %10s %16s %18s %12s\n", "TB capacity",
                "hit ratio", "useless cmds", "eliminated frac",
                "broadcasts");
    std::printf("%-12s %10s %16.0f %18s %12llu\n", "none (base)", "-",
                baseline, "-",
                static_cast<unsigned long long>(base.counts.broadcasts));
    std::vector<double> eliminated(numCaps);
    for (std::size_t k = 0; k < numCaps; ++k) {
        const RunCell &cell = cells[3 + k];
        const double useless =
            static_cast<double>(cell.counts.uselessCmds);
        eliminated[k] = baseline > 0 ? 1.0 - useless / baseline : 0.0;
        std::printf("%-12zu %10.3f %16.0f %18.3f %12llu\n", kTbCaps[k],
                    cell.tbHitRatio, useless, eliminated[k],
                    static_cast<unsigned long long>(
                        cell.counts.broadcasts));
    }
    std::printf(
        "\nThe elimination fraction tracks the buffer hit ratio: at "
        "H~0.9 about\n90%% of the broadcast overhead disappears, and "
        "with a large enough\nbuffer the scheme approaches the full "
        "map (the paper's limiting claim).\n");

    // --- Present1 ablation ---
    std::printf("\nAblation — the value of the Present1 encoding "
                "(n=%u, %llu refs)\n\n",
                kProcs, static_cast<unsigned long long>(refs));
    std::printf("%-12s %-14s %12s %12s %14s\n", "sharing",
                "variant", "broadcasts", "useless", "mrequests");
    const std::size_t p1Base = 3 + numCaps;
    for (std::size_t ci = 0; ci < numP1; ++ci) {
        for (int vi = 0; vi < 2; ++vi) {
            const auto &c = cells[p1Base + ci * 2 +
                                  static_cast<std::size_t>(vi)].counts;
            std::printf("%-12s %-14s %12llu %12llu %14llu\n",
                        kP1Cases[ci].name,
                        vi ? "two_bit_nop1" : "two_bit",
                        static_cast<unsigned long long>(c.broadcasts),
                        static_cast<unsigned long long>(c.uselessCmds),
                        static_cast<unsigned long long>(c.mrequests));
        }
    }
    std::printf("\nWithout Present1, every first write to a "
                "once-read block needs a\nbroadcast (no free "
                "MGRANTED), and clean ejections can never reclaim\n"
                "Absent — both broadcast counts rise, vindicating the "
                "fourth state.\n");

    // --- artifact ---
    Json params = Json::object();
    params.set("n", kProcs);
    params.set("refs", static_cast<unsigned long long>(refs));
    Json jcells = Json::array();
    for (int i = 0; i < 2; ++i) {
        Json c = Json::object();
        c.set("section", "duplicate_dir");
        c.set("snoopFilter", i == 1);
        c.set("counts",
              countsToJson(cells[static_cast<std::size_t>(i)].counts));
        jcells.push(std::move(c));
    }
    {
        Json c = Json::object();
        c.set("section", "tb_sweep");
        c.set("tbCapacity", 0);
        c.set("counts", countsToJson(base.counts));
        jcells.push(std::move(c));
    }
    for (std::size_t k = 0; k < numCaps; ++k) {
        Json c = Json::object();
        c.set("section", "tb_sweep");
        c.set("tbCapacity",
              static_cast<unsigned long long>(kTbCaps[k]));
        c.set("tbHitRatio", cells[3 + k].tbHitRatio);
        c.set("eliminatedFraction", eliminated[k]);
        c.set("counts", countsToJson(cells[3 + k].counts));
        jcells.push(std::move(c));
    }
    for (std::size_t ci = 0; ci < numP1; ++ci) {
        for (int vi = 0; vi < 2; ++vi) {
            Json c = Json::object();
            c.set("section", "present1_ablation");
            c.set("case", kP1Cases[ci].name);
            c.set("q", kP1Cases[ci].q);
            c.set("w", kP1Cases[ci].w);
            c.set("variant", vi ? "two_bit_nop1" : "two_bit");
            c.set("counts",
                  countsToJson(
                      cells[p1Base + ci * 2 +
                            static_cast<std::size_t>(vi)].counts));
            jcells.push(std::move(c));
        }
    }
    emitArtifact(bo, "bench_enhancements", std::move(params),
                 std::move(jcells), Json(), timer);
    return 0;
}
