/**
 * @file
 * E9: engineering benchmarks (google-benchmark) — simulator throughput
 * for the hot paths: protocol access transactions per second for the
 * main schemes, the event-queue kernel, the analytic solvers, and the
 * packed directory.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "core/two_bit_directory.hh"
#include "model/overhead_model.hh"
#include "model/sharing_chain.hh"
#include "proto/protocol_factory.hh"
#include "sim/event_queue.hh"
#include "trace/synthetic.hh"

namespace
{

using namespace dir2b;

void
protocolThroughput(benchmark::State &state, const char *name)
{
    ProtoConfig cfg;
    cfg.numProcs = 8;
    cfg.cacheGeom.sets = 32;
    cfg.cacheGeom.ways = 4;
    cfg.numModules = 4;
    cfg.tbCapacity = 32;
    cfg.nonCacheableBase = sharedRegionBase;
    auto proto = makeProtocol(name, cfg);

    SyntheticConfig scfg;
    scfg.numProcs = 8;
    scfg.q = 0.05;
    scfg.w = 0.3;
    SyntheticStream stream(scfg);

    std::uint64_t nonce = 1;
    for (auto _ : state) {
        const auto r = *stream.next();
        benchmark::DoNotOptimize(
            proto->access(r.proc, r.addr, r.write, ++nonce));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
BM_TwoBitAccess(benchmark::State &state)
{
    protocolThroughput(state, "two_bit");
}
BENCHMARK(BM_TwoBitAccess);

void
BM_TwoBitTbAccess(benchmark::State &state)
{
    protocolThroughput(state, "two_bit_tb");
}
BENCHMARK(BM_TwoBitTbAccess);

void
BM_FullMapAccess(benchmark::State &state)
{
    protocolThroughput(state, "full_map");
}
BENCHMARK(BM_FullMapAccess);

void
BM_WriteOnceAccess(benchmark::State &state)
{
    protocolThroughput(state, "write_once");
}
BENCHMARK(BM_WriteOnceAccess);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            eq.schedule(static_cast<Tick>(i % 7), [] {});
        eq.run();
        eq.reset();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_TwoBitDirectorySetGet(benchmark::State &state)
{
    TwoBitDirectory dir;
    Addr a = 0;
    for (auto _ : state) {
        dir.set(a & 0xffff, GlobalState::PresentM);
        benchmark::DoNotOptimize(dir.get((a + 7) & 0xffff));
        ++a;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TwoBitDirectorySetGet);

void
BM_OverheadClosedForm(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            overhead(sharingCase(SharingLevel::Moderate, 16, 0.2)));
    }
}
BENCHMARK(BM_OverheadClosedForm);

void
BM_SolveTwoBitChain64(benchmark::State &state)
{
    ChainParams cp;
    cp.n = 64;
    cp.q = 0.05;
    cp.w = 0.2;
    cp.sharedBlocks = 16;
    cp.evictRate = evictRateFromGeometry(64, 128);
    for (auto _ : state)
        benchmark::DoNotOptimize(solveTwoBitChain(cp));
}
BENCHMARK(BM_SolveTwoBitChain64);

} // namespace

BENCHMARK_MAIN();
