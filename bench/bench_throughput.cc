/**
 * @file
 * E9: engineering benchmarks (google-benchmark) — simulator throughput
 * for the hot paths: protocol access transactions per second for the
 * main schemes, the event-queue kernel, the analytic solvers, and the
 * packed directory.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/two_bit_directory.hh"
#include "model/overhead_model.hh"
#include "model/sharing_chain.hh"
#include "obs/telemetry.hh"
#include "proto/protocol_factory.hh"
#include "sim/event_queue.hh"
#include "timed/sharded_system.hh"
#include "timed/timed_system.hh"
#include "trace/synthetic.hh"
#include "util/flat_map.hh"
#include "util/random.hh"

namespace
{

using namespace dir2b;

void
protocolThroughput(benchmark::State &state, const char *name)
{
    ProtoConfig cfg;
    cfg.numProcs = 8;
    cfg.cacheGeom.sets = 32;
    cfg.cacheGeom.ways = 4;
    cfg.numModules = 4;
    cfg.tbCapacity = 32;
    cfg.nonCacheableBase = sharedRegionBase;
    auto proto = makeProtocol(name, cfg);

    SyntheticConfig scfg;
    scfg.numProcs = 8;
    scfg.q = 0.05;
    scfg.w = 0.3;
    SyntheticStream stream(scfg);

    std::uint64_t nonce = 1;
    for (auto _ : state) {
        const auto r = *stream.next();
        benchmark::DoNotOptimize(
            proto->access(r.proc, r.addr, r.write, ++nonce));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
BM_TwoBitAccess(benchmark::State &state)
{
    protocolThroughput(state, "two_bit");
}
BENCHMARK(BM_TwoBitAccess);

void
BM_TwoBitTbAccess(benchmark::State &state)
{
    protocolThroughput(state, "two_bit_tb");
}
BENCHMARK(BM_TwoBitTbAccess);

void
BM_FullMapAccess(benchmark::State &state)
{
    protocolThroughput(state, "full_map");
}
BENCHMARK(BM_FullMapAccess);

void
BM_WriteOnceAccess(benchmark::State &state)
{
    protocolThroughput(state, "write_once");
}
BENCHMARK(BM_WriteOnceAccess);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            eq.schedule(static_cast<Tick>(i % 7), [] {});
        eq.run();
        eq.reset();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_EventQueueScheduleRun);

/**
 * One self-sustaining event chain: every fired event schedules its
 * successor at a delay drawn from the timed tier's characteristic mix
 * (cache hit 1, directory 2, network hop 4, memory 10, rare long
 * think window), with a capture sized like a real controller callback
 * (this-pointer plus a Message by value).
 */
struct KernelChurn
{
    EventQueue *eq;
    std::uint64_t idx;
    std::uint64_t *sink;

    void
    fire()
    {
        static constexpr Tick delays[] = {1, 4, 2, 10, 4, 1, 2, 4,
                                          1, 10, 4, 2, 1, 4, 100, 2};
        const Tick d = delays[idx & 15];
        ++idx;
        *sink += d;
        std::uint64_t pad[5] = {idx, idx + 1, idx + 2, idx + 3,
                                idx + 4};
        KernelChurn next = *this;
        eq->schedule(d, [next, pad]() mutable {
            benchmark::DoNotOptimize(pad);
            KernelChurn c = next;
            c.fire();
        });
    }
};

/**
 * Sustained schedule/fire mix: 64 live chains churn through the
 * kernel without ever draining it, which is what the timed tier
 * actually does (the burst bench above measures the empty/refill
 * corner instead).  This is the headline events/sec figure in
 * docs/PERFORMANCE.md and BENCH_4.json.
 */
void
BM_EventKernelChurn(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (int c = 0; c < 64; ++c) {
        KernelChurn chain{&eq, static_cast<std::uint64_t>(c) * 7,
                          &sink};
        chain.fire();
    }
    constexpr std::uint64_t batch = 4096;
    for (auto _ : state)
        eq.run(batch);
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventKernelChurn);

constexpr std::uint64_t
lcgNext(std::uint64_t x)
{
    return x * 6364136223846793005ULL + 1442695040888963407ULL;
}

/** Hit-heavy lookups over 4096 block-aligned keys (directory shape). */
template <typename Map>
void
mapLookupHit(benchmark::State &state)
{
    Map m;
    constexpr std::uint64_t n = 4096;
    for (std::uint64_t i = 0; i < n; ++i)
        m[i << 6] = i;
    std::uint64_t x = 0x1234;
    std::uint64_t sum = 0;
    for (auto _ : state) {
        x = lcgNext(x);
        const std::uint64_t key = ((x >> 33) & (n - 1)) << 6;
        sum += m.find(key)->second;
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
BM_FlatMapLookupHit(benchmark::State &state)
{
    mapLookupHit<FlatMap<std::uint64_t, std::uint64_t>>(state);
}
BENCHMARK(BM_FlatMapLookupHit);

void
BM_UnorderedMapLookupHit(benchmark::State &state)
{
    mapLookupHit<std::unordered_map<std::uint64_t, std::uint64_t>>(
        state);
}
BENCHMARK(BM_UnorderedMapLookupHit);

/** Busy-table churn: a small live set of open/close windows, the
 *  access pattern of DirCtrlBase::busy_ under per-block concurrency. */
template <typename Map>
void
mapChurn(benchmark::State &state)
{
    Map m;
    std::uint64_t x = 0x5678;
    std::uint64_t sum = 0;
    for (auto _ : state) {
        x = lcgNext(x);
        const std::uint64_t key = ((x >> 33) & 63) << 6;
        auto it = m.find(key);
        if (it == m.end()) {
            m[key] = x;
        } else {
            sum += it->second;
            m.erase(it);
        }
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
BM_FlatMapChurn(benchmark::State &state)
{
    mapChurn<FlatMap<std::uint64_t, std::uint64_t>>(state);
}
BENCHMARK(BM_FlatMapChurn);

void
BM_UnorderedMapChurn(benchmark::State &state)
{
    mapChurn<std::unordered_map<std::uint64_t, std::uint64_t>>(state);
}
BENCHMARK(BM_UnorderedMapChurn);

/** End-to-end timed tier: references retired per second through the
 *  full two-bit protocol with crossbar contention. */
void
BM_TimedTwoBitEndToEnd(benchmark::State &state)
{
    std::uint64_t refs = 0;
    for (auto _ : state) {
        TimedConfig cfg;
        cfg.protocol = TimedProto::TwoBit;
        cfg.numProcs = 4;
        cfg.numModules = 2;
        cfg.cacheGeom.sets = 16;
        cfg.cacheGeom.ways = 2;
        cfg.perBlockConcurrency = true;
        cfg.network = NetKind::Crossbar;
        TimedSystem sys(cfg);

        SyntheticConfig scfg;
        scfg.numProcs = 4;
        scfg.q = 0.2;
        scfg.w = 0.3;
        scfg.sharedBlocks = 8;
        scfg.privateBlocks = 64;
        scfg.hotBlocks = 16;
        scfg.seed = 0xbe7c4;
        SyntheticStream stream(scfg);

        const auto r = sys.run(
            [&](ProcId p) -> std::optional<MemRef> {
                return stream.nextFor(p);
            },
            400);
        refs += r.refsCompleted;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(refs));
}
BENCHMARK(BM_TimedTwoBitEndToEnd);

/**
 * The end-to-end run above with a telemetry sampler attached
 * (obs/telemetry.hh): the full 37-metric timed registry sampled every
 * Arg(0) ticks.  The delta against BM_TimedTwoBitEndToEnd is the
 * whole cost of time-series telemetry — boundary-clamped kernel
 * chunking plus registry snapshots; statistics stay bit-identical
 * (tests/test_telemetry.cc).
 */
void
BM_TimedTwoBitEndToEndSampled(benchmark::State &state)
{
    const auto interval = static_cast<std::uint64_t>(state.range(0));
    std::uint64_t refs = 0;
    std::uint64_t samples = 0;
    for (auto _ : state) {
        TimedConfig cfg;
        cfg.protocol = TimedProto::TwoBit;
        cfg.numProcs = 4;
        cfg.numModules = 2;
        cfg.cacheGeom.sets = 16;
        cfg.cacheGeom.ways = 2;
        cfg.perBlockConcurrency = true;
        cfg.network = NetKind::Crossbar;
        TelemetrySampler sampler(SeriesDomain::Ticks, interval);
        cfg.sampler = &sampler;
        TimedSystem sys(cfg);

        SyntheticConfig scfg;
        scfg.numProcs = 4;
        scfg.q = 0.2;
        scfg.w = 0.3;
        scfg.sharedBlocks = 8;
        scfg.privateBlocks = 64;
        scfg.hotBlocks = 16;
        scfg.seed = 0xbe7c4;
        SyntheticStream stream(scfg);

        const auto r = sys.run(
            [&](ProcId p) -> std::optional<MemRef> {
                return stream.nextFor(p);
            },
            400);
        refs += r.refsCompleted;
        samples += sampler.samples();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(refs));
    state.counters["samples_per_run"] = benchmark::Counter(
        static_cast<double>(samples) /
        static_cast<double>(state.iterations()));
}
BENCHMARK(BM_TimedTwoBitEndToEndSampled)->Arg(256)->Arg(64);

/**
 * Sharded end-to-end timed tier: the same protocol partitioned by
 * directory home across Arg(0) shards (docs/ARCHITECTURE.md), sized
 * up (16 procs / 8 modules) so each shard has real work.  Statistics
 * are bit-identical to serial at every shard count; this benchmark
 * measures what the parallel decomposition buys in refs/s — which is
 * hardware-dependent: on a single-core runner the epoch machinery is
 * pure overhead, the speedup only materialises with real cores (see
 * docs/PERFORMANCE.md).
 */
void
BM_TimedTwoBitSharded(benchmark::State &state)
{
    const unsigned shards = static_cast<unsigned>(state.range(0));
    std::uint64_t refs = 0;
    for (auto _ : state) {
        TimedConfig cfg;
        cfg.protocol = TimedProto::TwoBit;
        cfg.numProcs = 16;
        cfg.numModules = 8;
        cfg.cacheGeom.sets = 32;
        cfg.cacheGeom.ways = 4;
        cfg.perBlockConcurrency = true;
        cfg.network = NetKind::Crossbar;

        SyntheticConfig scfg;
        scfg.numProcs = 16;
        scfg.q = 0.2;
        scfg.w = 0.3;
        scfg.sharedBlocks = 8;
        scfg.privateBlocks = 64;
        scfg.hotBlocks = 16;
        scfg.seed = 0xbe7c4;
        SyntheticStream stream(scfg);

        const auto r = runTimedWorkload(
            cfg, shards, 0,
            [&](ProcId p) -> std::optional<MemRef> {
                return stream.nextFor(p);
            },
            1000);
        refs += r.refsCompleted;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(refs));
}
BENCHMARK(BM_TimedTwoBitSharded)->Arg(1)->Arg(2)->Arg(4);

void
BM_TwoBitDirectorySetGet(benchmark::State &state)
{
    TwoBitDirectory dir;
    Addr a = 0;
    for (auto _ : state) {
        dir.set(a & 0xffff, GlobalState::PresentM);
        benchmark::DoNotOptimize(dir.get((a + 7) & 0xffff));
        ++a;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TwoBitDirectorySetGet);

/**
 * Tiered directory under a RAM budget: set/get over a 4096-block
 * working set hash-scattered across 2^30 blocks, touching ~4096
 * distinct directory pages.  Arg(0) is the budget in KiB (0 =
 * unlimited — the all-hot PagedArray-equivalent baseline); shrinking
 * it forces the compress / spill / reload machinery onto the access
 * path, which is the refs/s cost the tiering trades for the memory
 * ceiling (docs/PERFORMANCE.md).
 */
void
BM_TieredDirectoryScatter(benchmark::State &state)
{
    const std::uint64_t budget =
        static_cast<std::uint64_t>(state.range(0)) << 10;
    TwoBitDirectory dir(budget);
    Rng rng(0x7e55ed);
    std::vector<Addr> addrs(4096);
    for (Addr &a : addrs)
        a = rng.range(std::uint64_t{1} << 30);
    std::size_t i = 0;
    for (auto _ : state) {
        const Addr a = addrs[i++ & 4095];
        dir.set(a, GlobalState::Present1);
        benchmark::DoNotOptimize(dir.get(a));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
    state.counters["residentKiB"] = static_cast<double>(
        dir.residentBytes() / 1024);
}
BENCHMARK(BM_TieredDirectoryScatter)->Arg(0)->Arg(512)->Arg(64);

/**
 * Quiescent-epoch fast-forward on a sparse long-horizon sharded run:
 * 4 processors with a 20000-cycle think time between references leave
 * the wheels idle for most of simulated time, and at any instant at
 * most one shard usually has work.  Arg(0) is the fastForward knob
 * (1 = on).  With it off, every gap costs bound-refinement epochs and
 * a 4-worker gang barrier each; with it on, exact bounds collapse the
 * gap to one epoch and single-active-shard epochs run inline on the
 * caller.  Statistics are bit-identical either way (the golden-digest
 * suite pins this); only wall clock moves — this pair is the A/B
 * BENCH_7 records.
 */
void
BM_TimedSparseFastForward(benchmark::State &state)
{
    const bool ff = state.range(0) != 0;
    std::uint64_t refs = 0;
    for (auto _ : state) {
        TimedConfig cfg;
        cfg.protocol = TimedProto::TwoBit;
        cfg.numProcs = 4;
        cfg.numModules = 4;
        cfg.cacheGeom.sets = 16;
        cfg.cacheGeom.ways = 2;
        cfg.perBlockConcurrency = true;
        cfg.network = NetKind::Crossbar;
        cfg.thinkTime = 20000;
        cfg.fastForward = ff;

        SyntheticConfig scfg;
        scfg.numProcs = 4;
        scfg.q = 0.2;
        scfg.w = 0.3;
        scfg.sharedBlocks = 8;
        scfg.privateBlocks = 64;
        scfg.hotBlocks = 16;
        scfg.seed = 0xbe7c4;
        SyntheticStream stream(scfg);

        const auto r = runTimedWorkload(
            cfg, /*shards=*/4, /*workers=*/4,
            [&](ProcId p) -> std::optional<MemRef> {
                return stream.nextFor(p);
            },
            2000);
        refs += r.refsCompleted;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(refs));
}
BENCHMARK(BM_TimedSparseFastForward)->Arg(1)->Arg(0);

void
BM_OverheadClosedForm(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            overhead(sharingCase(SharingLevel::Moderate, 16, 0.2)));
    }
}
BENCHMARK(BM_OverheadClosedForm);

void
BM_SolveTwoBitChain64(benchmark::State &state)
{
    ChainParams cp;
    cp.n = 64;
    cp.q = 0.05;
    cp.w = 0.2;
    cp.sharedBlocks = 16;
    cp.evictRate = evictRateFromGeometry(64, 128);
    for (auto _ : state)
        benchmark::DoNotOptimize(solveTwoBitChain(cp));
}
BENCHMARK(BM_SolveTwoBitChain64);

} // namespace

#ifndef DIR2B_BUILD_TYPE
#define DIR2B_BUILD_TYPE "unknown"
#endif

int
main(int argc, char **argv)
{
    // The benchmark JSON's library_build_type field describes the
    // INSTALLED google-benchmark library, which on some systems is a
    // debug build no matter how dir2b was compiled.  Stamp the
    // simulator's own configuration into the context so
    // tools/run_bench_baseline.sh can gate on what actually matters:
    // whether the simulator code being measured is optimised.
    benchmark::AddCustomContext("dir2b_build_type", DIR2B_BUILD_TYPE);
#ifdef __OPTIMIZE__
    benchmark::AddCustomContext("dir2b_optimized", "true");
#else
    benchmark::AddCustomContext("dir2b_optimized", "false");
#endif
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
