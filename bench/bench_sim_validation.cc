/**
 * @file
 * E3: validate Table 4-1 by simulation.
 *
 * For each sharing case and processor count, the identical synthetic
 * reference stream (the merged private/shared model of §4.2) is run
 * through the two-bit protocol and the full map.  We report:
 *
 *   - the *measured* extra commands per memory reference of the
 *     two-bit scheme (its useless broadcast deliveries — the full map
 *     sends none, which the run verifies);
 *   - the §4.2 closed form evaluated at the *measured* parameters
 *     (q, w, h and the time-average state occupancies P(P1), P(P*),
 *     P(PM) sampled from the live directory) — so the formula is
 *     checked against simulation without assuming the paper's
 *     probabilities.
 *
 * The last column is the ratio; values near 1.0 validate the model.
 *
 * The 12-cell (case x n) grid dispatches through the sweep pool; each
 * cell runs its two simulations back to back on fixed seeds, so the
 * report is identical at any thread count.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "model/overhead_model.hh"
#include "proto/protocol_factory.hh"
#include "report/bench_cli.hh"
#include "system/func_system.hh"
#include "trace/synthetic.hh"
#include "util/parallel.hh"

namespace
{

using namespace dir2b;

struct CaseSpec
{
    const char *name;
    double q;
    double w;
    /** Shared-stream locality, tuned so the measured shared hit
     *  ratio lands near the h of the corresponding §4.3 case. */
    double locality;
};

const CaseSpec cases[] = {
    {"low      (q=.01,w=.2)", 0.01, 0.2, 0.97},
    {"moderate (q=.05,w=.2)", 0.05, 0.2, 0.93},
    {"high     (q=.10,w=.4)", 0.10, 0.4, 0.85},
};

const unsigned procCounts[] = {4u, 8u, 16u, 32u};

struct CellResult
{
    SharingParams measured; ///< closed-form inputs at measured values
    double measuredOverhead = 0.0;
    double predicted = 0.0;
    std::uint64_t fmUseless = 0;
};

CellResult
runCell(const CaseSpec &cs, ProcId n, std::uint64_t refs)
{
    constexpr std::size_t sharedBlocks = 16;

    ProtoConfig cfg;
    cfg.numProcs = n;
    cfg.cacheGeom.sets = 32;
    cfg.cacheGeom.ways = 4; // 128 blocks, as in Table 4-2's caption
    cfg.numModules = 4;

    SyntheticConfig scfg;
    scfg.numProcs = n;
    scfg.q = cs.q;
    scfg.w = cs.w;
    scfg.sharedBlocks = sharedBlocks;
    scfg.privateBlocks = 96;
    scfg.hotBlocks = 24;
    scfg.sharedLocality = cs.locality;
    scfg.seed = 2026;

    RunOptions opts;
    opts.numRefs = refs;
    opts.checkCoherence = true;
    opts.sampleEvery = 64;
    opts.sharedBlocks = sharedBlocks;

    // Two-bit run (with state sampling).
    auto twoBit = makeProtocol("two_bit", cfg);
    SyntheticStream s1(scfg);
    const RunResult r2 = runFunctional(*twoBit, s1, opts);

    // Full-map run on the identical stream: must have zero useless.
    auto fullMap = makeProtocol("full_map", cfg);
    SyntheticStream s2(scfg);
    RunOptions fmOpts = opts;
    fmOpts.sampleEvery = 0;
    const RunResult rf = runFunctional(*fullMap, s2, fmOpts);

    CellResult res;
    res.measuredOverhead = r2.perCacheUselessPerRef;
    res.fmUseless = rf.counts.uselessCmds;

    // Closed form at the measured parameters.
    SharingParams &sp = res.measured;
    sp.n = n;
    sp.q = r2.measuredQ(refs);
    sp.w = r2.measuredW();
    sp.h = r2.measuredH();
    sp.pP1 = r2.stateOccupancy[static_cast<int>(GlobalState::Present1)];
    sp.pPStar =
        r2.stateOccupancy[static_cast<int>(GlobalState::PresentStar)];
    sp.pPM = r2.stateOccupancy[static_cast<int>(GlobalState::PresentM)];
    res.predicted = overhead(sp).perCache;
    return res;
}

void
printCell(const CaseSpec &cs, unsigned n, const CellResult &r)
{
    const SharingParams &sp = r.measured;
    std::printf(
        "%s  n=%2u  meas_q=%.3f w=%.2f h=%.3f  "
        "P1=%.2f P*=%.2f PM=%.2f | measured %8.4f  model %8.4f  "
        "ratio %.2f | fm useless %llu\n",
        cs.name, n, sp.q, sp.w, sp.h, sp.pP1, sp.pPStar, sp.pPM,
        r.measuredOverhead, r.predicted,
        r.predicted > 0 ? r.measuredOverhead / r.predicted : 0.0,
        static_cast<unsigned long long>(r.fmUseless));
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions bo = parseBenchOptions(
        argc, argv, "bench_sim_validation",
        "E3: Table 4-1 cross-checked by live simulation");
    const WallTimer timer;
    const std::uint64_t refs = bo.scaleRefs(200000);

    constexpr std::size_t numCases = std::size(cases);
    constexpr std::size_t numNs = std::size(procCounts);
    std::vector<CellResult> results(numCases * numNs);
    parallelFor(
        0, results.size(),
        [&](std::size_t i) {
            results[i] = runCell(cases[i / numNs],
                                 procCounts[i % numNs], refs);
        },
        bo.threads);

    std::printf(
        "E3: Table 4-1 validated by simulation — measured per-cache\n"
        "useless commands per reference ((n-1)*T_SUM) vs. the Sec. 4.2\n"
        "closed form evaluated at measured parameters.\n\n");
    for (std::size_t ci = 0; ci < numCases; ++ci) {
        for (std::size_t ni = 0; ni < numNs; ++ni)
            printCell(cases[ci], procCounts[ni],
                      results[ci * numNs + ni]);
        std::printf("\n");
    }
    std::printf("The full map sends zero useless commands in every run "
                "(last column),\nwhich is the baseline the overhead is "
                "measured against.\n");

    Json params = Json::object();
    params.set("refs", static_cast<unsigned long long>(refs));
    params.set("sharedBlocks", 16);
    params.set("seed", 2026);
    Json cellsJson = Json::array();
    for (std::size_t i = 0; i < results.size(); ++i) {
        const CaseSpec &cs = cases[i / numNs];
        const CellResult &r = results[i];
        Json c = Json::object();
        c.set("section", "validation");
        c.set("case", i / numNs == 0   ? "low"
                      : i / numNs == 1 ? "moderate"
                                       : "high");
        c.set("q", cs.q);
        c.set("w", cs.w);
        c.set("n", procCounts[i % numNs]);
        c.set("measuredOverhead", r.measuredOverhead);
        c.set("predictedOverhead", r.predicted);
        c.set("ratio", r.predicted > 0
                           ? r.measuredOverhead / r.predicted
                           : 0.0);
        c.set("fullMapUseless",
              static_cast<unsigned long long>(r.fmUseless));
        Json meas = Json::object();
        meas.set("q", r.measured.q);
        meas.set("w", r.measured.w);
        meas.set("h", r.measured.h);
        meas.set("pP1", r.measured.pP1);
        meas.set("pPStar", r.measured.pPStar);
        meas.set("pPM", r.measured.pPM);
        c.set("measuredParams", std::move(meas));
        cellsJson.push(std::move(c));
    }
    emitArtifact(bo, "bench_sim_validation", std::move(params),
                 std::move(cellsJson), Json(), timer);
    return 0;
}
