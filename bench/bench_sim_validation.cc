/**
 * @file
 * E3: validate Table 4-1 by simulation.
 *
 * For each sharing case and processor count, the identical synthetic
 * reference stream (the merged private/shared model of §4.2) is run
 * through the two-bit protocol and the full map.  We report:
 *
 *   - the *measured* extra commands per memory reference of the
 *     two-bit scheme (its useless broadcast deliveries — the full map
 *     sends none, which the run verifies);
 *   - the §4.2 closed form evaluated at the *measured* parameters
 *     (q, w, h and the time-average state occupancies P(P1), P(P*),
 *     P(PM) sampled from the live directory) — so the formula is
 *     checked against simulation without assuming the paper's
 *     probabilities.
 *
 * The last column is the ratio; values near 1.0 validate the model.
 */

#include <cstdio>
#include <memory>

#include "model/overhead_model.hh"
#include "proto/protocol_factory.hh"
#include "system/func_system.hh"
#include "trace/synthetic.hh"

namespace
{

using namespace dir2b;

struct CaseSpec
{
    const char *name;
    double q;
    double w;
    /** Shared-stream locality, tuned so the measured shared hit
     *  ratio lands near the h of the corresponding §4.3 case. */
    double locality;
};

const CaseSpec cases[] = {
    {"low      (q=.01,w=.2)", 0.01, 0.2, 0.97},
    {"moderate (q=.05,w=.2)", 0.05, 0.2, 0.93},
    {"high     (q=.10,w=.4)", 0.10, 0.4, 0.85},
};

void
runCell(const CaseSpec &cs, ProcId n, std::uint64_t refs)
{
    constexpr std::size_t sharedBlocks = 16;

    ProtoConfig cfg;
    cfg.numProcs = n;
    cfg.cacheGeom.sets = 32;
    cfg.cacheGeom.ways = 4; // 128 blocks, as in Table 4-2's caption
    cfg.numModules = 4;

    SyntheticConfig scfg;
    scfg.numProcs = n;
    scfg.q = cs.q;
    scfg.w = cs.w;
    scfg.sharedBlocks = sharedBlocks;
    scfg.privateBlocks = 96;
    scfg.hotBlocks = 24;
    scfg.sharedLocality = cs.locality;
    scfg.seed = 2026;

    RunOptions opts;
    opts.numRefs = refs;
    opts.checkCoherence = true;
    opts.sampleEvery = 64;
    opts.sharedBlocks = sharedBlocks;

    // Two-bit run (with state sampling).
    auto twoBit = makeProtocol("two_bit", cfg);
    SyntheticStream s1(scfg);
    const RunResult r2 = runFunctional(*twoBit, s1, opts);

    // Full-map run on the identical stream: must have zero useless.
    auto fullMap = makeProtocol("full_map", cfg);
    SyntheticStream s2(scfg);
    RunOptions fmOpts = opts;
    fmOpts.sampleEvery = 0;
    const RunResult rf = runFunctional(*fullMap, s2, fmOpts);

    const double measured = r2.perCacheUselessPerRef;

    // Closed form at the measured parameters.
    SharingParams sp;
    sp.n = n;
    sp.q = r2.measuredQ(refs);
    sp.w = r2.measuredW();
    sp.h = r2.measuredH();
    sp.pP1 = r2.stateOccupancy[static_cast<int>(GlobalState::Present1)];
    sp.pPStar =
        r2.stateOccupancy[static_cast<int>(GlobalState::PresentStar)];
    sp.pPM = r2.stateOccupancy[static_cast<int>(GlobalState::PresentM)];
    const double predicted = overhead(sp).perCache;

    std::printf(
        "%s  n=%2u  meas_q=%.3f w=%.2f h=%.3f  "
        "P1=%.2f P*=%.2f PM=%.2f | measured %8.4f  model %8.4f  "
        "ratio %.2f | fm useless %llu\n",
        cs.name, n, sp.q, sp.w, sp.h, sp.pP1, sp.pPStar, sp.pPM,
        measured, predicted,
        predicted > 0 ? measured / predicted : 0.0,
        static_cast<unsigned long long>(rf.counts.uselessCmds));
}

} // namespace

int
main()
{
    std::printf(
        "E3: Table 4-1 validated by simulation — measured per-cache\n"
        "useless commands per reference ((n-1)*T_SUM) vs. the Sec. 4.2\n"
        "closed form evaluated at measured parameters.\n\n");
    for (const auto &cs : cases) {
        for (ProcId n : {4u, 8u, 16u, 32u})
            runCell(cs, n, 200000);
        std::printf("\n");
    }
    std::printf("The full map sends zero useless commands in every run "
                "(last column),\nwhich is the baseline the overhead is "
                "measured against.\n");
    return 0;
}
