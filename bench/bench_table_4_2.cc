/**
 * @file
 * E2: regenerate Table 4-2 — "Added overhead derived from model in
 * [3]" — the Dubois-Briggs estimate (n-1) * T_R, with the paper's
 * parameters: cache size 128 blocks, 16 shared blocks, uniform 1/16
 * per-block reference probability.
 *
 * The 1982 model's internal equations are not reprinted in the paper,
 * so this is the reconstruction documented in DESIGN.md Sec. 5: a
 * single-block Markov chain over (copies, dirty) whose command rate
 * under a full map is T_R.  The paper's printed values are shown next
 * to ours; the comparison target is the *shape* (growth in n, q, w and
 * the acceptability boundaries), which the paper itself relies on when
 * it says the "two different methods of analysis agree well".
 *
 * The 60-cell grid dispatches through the sweep pool; the ordering
 * summary reuses the computed cells.  --json exports every cell with
 * both values (docs/METRICS.md).
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "model/sharing_chain.hh"
#include "report/bench_cli.hh"
#include "util/parallel.hh"
#include "util/table.hh"

namespace
{

using namespace dir2b;

// The paper's printed Table 4-2 for side-by-side display.
const double paper42[3][4][5] = {
    // q = 0.01
    {{0.007, 0.028, 0.091, 0.253, 0.599},
     {0.013, 0.046, 0.131, 0.315, 0.684},
     {0.017, 0.057, 0.152, 0.344, 0.730},
     {0.020, 0.065, 0.163, 0.360, 0.756}},
    // q = 0.05
    {{0.047, 0.175, 0.517, 1.312, 3.005},
     {0.079, 0.259, 0.682, 1.583, 3.425},
     {0.100, 0.308, 0.769, 1.724, 3.655},
     {0.114, 0.338, 0.819, 1.804, 3.786}},
    // q = 0.10
    {{0.095, 0.351, 1.036, 2.628, 6.018},
     {0.158, 0.518, 1.365, 3.170, 6.859},
     {0.200, 0.616, 1.540, 3.453, 7.319},
     {0.228, 0.676, 1.641, 3.613, 7.582}},
};

const double qs[3] = {0.01, 0.05, 0.10};
const double ws[4] = {0.1, 0.2, 0.3, 0.4};
const unsigned ns[5] = {4, 8, 16, 32, 64};

constexpr int kCells = 3 * 4 * 5;

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions bo = parseBenchOptions(
        argc, argv, "bench_table_4_2",
        "E2: Table 4-2 from the reconstructed Dubois-Briggs chain");
    const WallTimer timer;

    // Flat index i = ((qi * 4) + wi) * 5 + ni, matching the print
    // order; each cell solves its own chain.
    std::vector<double> cells(kCells);
    parallelFor(
        0, kCells,
        [&](std::size_t i) {
            ChainParams cp;
            cp.n = ns[i % 5];
            cp.q = qs[i / 20];
            cp.w = ws[(i / 5) % 4];
            cp.sharedBlocks = 16;
            cp.evictRate = evictRateFromGeometry(cp.n, 128);
            cells[i] = solveFullMapChain(cp).perCache;
        },
        bo.threads);
    auto ours = [&](int qi, int wi, int ni) {
        return cells[static_cast<std::size_t>((qi * 4 + wi) * 5 + ni)];
    };

    TextTable t({"", "n: 4", "8", "16", "32", "64"});
    t.setTitle(
        "Table 4-2 (reproduction): added overhead from the "
        "Dubois-Briggs model,\n(n-1) * T_R commands per memory "
        "reference [reconstructed chain;\ncache 128 blocks, S=16 "
        "shared blocks, uniform 1/16]\nEach cell: ours / paper");

    for (int qi = 0; qi < 3; ++qi) {
        t.addRow({"q = " + TextTable::num(qs[qi], 2), "", "", "", "",
                  ""});
        for (int wi = 0; wi < 4; ++wi) {
            std::vector<std::string> row{"  w = " +
                                         TextTable::num(ws[wi], 1)};
            for (int ni = 0; ni < 5; ++ni)
                row.push_back(TextTable::num(ours(qi, wi, ni)) + "/" +
                              TextTable::num(paper42[qi][wi][ni]));
            t.addRow(std::move(row));
        }
        t.addRule();
    }
    t.print(std::cout);

    // Shape agreement summary: correlation-style check of the two
    // tables' orderings.
    int agree = 0;
    int total = 0;
    for (int a = 0; a < kCells; ++a) {
        for (int b = a + 1; b < kCells; ++b) {
            const double oa = ours(a / 20, (a / 5) % 4, a % 5);
            const double ob = ours(b / 20, (b / 5) % 4, b % 5);
            const double pa = paper42[a / 20][(a / 5) % 4][a % 5];
            const double pb = paper42[b / 20][(b / 5) % 4][b % 5];
            if ((oa < ob) == (pa < pb))
                ++agree;
            ++total;
        }
    }
    std::printf("\nPairwise ordering agreement with the paper's table: "
                "%d/%d (%.1f%%)\n",
                agree, total, 100.0 * agree / total);
    std::printf("Acceptability reading (overhead < 1.0): q=0.01 OK "
                "through n=64: %s;\n  q=0.05 OK through n=16: %s; "
                "q=0.10 beyond n=8 exceeds 1.0 near n=16: %s\n",
                ours(0, 3, 4) < 1.0 ? "yes" : "no",
                ours(1, 3, 2) < 1.0 ? "yes" : "no",
                ours(2, 3, 2) > 0.5 ? "yes" : "no");

    Json params = Json::object();
    params.set("sharedBlocks", 16);
    params.set("cacheBlocks", 128);
    Json jcells = Json::array();
    for (int i = 0; i < kCells; ++i) {
        Json c = Json::object();
        c.set("section", "dubois_briggs");
        c.set("q", qs[i / 20]);
        c.set("w", ws[(i / 5) % 4]);
        c.set("n", ns[i % 5]);
        c.set("perCache", cells[static_cast<std::size_t>(i)]);
        c.set("paper", paper42[i / 20][(i / 5) % 4][i % 5]);
        jcells.push(std::move(c));
    }
    Json summary = Json::object();
    summary.set("orderingAgree", agree);
    summary.set("orderingTotal", total);
    emitArtifact(bo, "bench_table_4_2", std::move(params),
                 std::move(jcells), std::move(summary), timer);
    return 0;
}
