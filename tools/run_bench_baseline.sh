#!/bin/sh
# Regenerate the committed engineering-perf baseline (BENCH_4.json).
#
# Runs the google-benchmark suite in bench_throughput with JSON output
# and aggregate statistics so the artifact is stable enough to eyeball
# regressions against.  The committed baseline MUST be produced from
# the default build configuration — CMAKE_BUILD_TYPE=RelWithDebInfo,
# DIR2B_NATIVE=OFF, DIR2B_LTO=OFF — so numbers stay comparable across
# PRs (see docs/PERFORMANCE.md).  The artifact is informational, not a
# CI gate: machines differ; the trajectory matters, not the third
# digit.
#
# Usage: tools/run_bench_baseline.sh [build-dir] [out.json]

set -eu

build=${1:-build}
out=${2:-BENCH_4.json}

"$build/bench/bench_throughput" \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true \
    --benchmark_out="$out" \
    --benchmark_out_format=json

echo "wrote $out"
