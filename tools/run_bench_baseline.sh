#!/bin/sh
# Regenerate a committed engineering-perf baseline (BENCH_*.json).
#
# Runs the google-benchmark suite in bench_throughput with JSON output
# and aggregate statistics so the artifact is stable enough to eyeball
# regressions against.  The committed baseline MUST be produced from
# an optimised simulator build — this script configures a dedicated
# Release build tree (DIR2B_NATIVE=OFF, DIR2B_LTO=OFF so numbers stay
# comparable across machines) and then refuses to record unless the
# binary's own dir2b_build_type/dir2b_optimized context stamps confirm
# it.  The artifact is informational, not a CI gate: machines differ;
# the trajectory matters, not the third digit.
#
# Note on library_build_type: that JSON field describes the INSTALLED
# google-benchmark library, not the simulator.  On systems whose
# packaged libbenchmark is a debug build it reads "debug" no matter
# how dir2b is compiled; the timing loop it contributes is a few
# nanoseconds around each measured batch, so the committed baselines
# remain meaningful.  The gate below therefore checks the dir2b-side
# stamps, and additionally refuses a debug *library* unless
# DIR2B_ALLOW_DEBUG_BENCH_LIB=1 is set, so the exception is always a
# recorded, deliberate choice.
#
# Usage: tools/run_bench_baseline.sh [build-dir] [out.json] [target]
#   build-dir defaults to build-bench (created/configured on demand;
#   an existing tree is reconfigured to Release if needed).
#   target selects the benchmark binary (default bench_throughput;
#   BENCH_9.json is recorded from bench_trace_replay).

set -eu

build=${1:-build-bench}
out=${2:-BENCH_7.json}
target=${3:-bench_throughput}
src=$(dirname "$0")/..

cmake -S "$src" -B "$build" -DCMAKE_BUILD_TYPE=Release \
      -DDIR2B_NATIVE=OFF -DDIR2B_LTO=OFF >/dev/null
cmake --build "$build" --target "$target" -j >/dev/null

"$build/bench/$target" \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true \
    --benchmark_out="$out" \
    --benchmark_out_format=json

# Refuse to record an unoptimised run.  The stamps come from the
# binary itself (bench/bench_throughput.cc), so they reflect the code
# that was actually measured, not just this script's configure line.
dir2b_type=$(sed -n 's/.*"dir2b_build_type": "\([^"]*\)".*/\1/p' "$out")
dir2b_opt=$(sed -n 's/.*"dir2b_optimized": "\([^"]*\)".*/\1/p' "$out")
lib_type=$(sed -n 's/.*"library_build_type": "\([^"]*\)".*/\1/p' "$out")

if [ "$dir2b_type" != "Release" ] || [ "$dir2b_opt" != "true" ]; then
    rm -f "$out"
    echo "error: refusing to record baseline: simulator build is" \
         "'[${dir2b_type:-missing}] optimized=${dir2b_opt:-missing}'," \
         "need a Release build (rerun via this script)" >&2
    exit 1
fi
if [ "$lib_type" = "debug" ] &&
   [ "${DIR2B_ALLOW_DEBUG_BENCH_LIB:-0}" != "1" ]; then
    rm -f "$out"
    echo "error: installed google-benchmark library is a debug build" \
         "(library_build_type: \"debug\").  Install a release" \
         "libbenchmark, or set DIR2B_ALLOW_DEBUG_BENCH_LIB=1 to" \
         "record anyway (the dir2b simulator itself was verified" \
         "optimised; the library only adds fixed per-batch timing" \
         "overhead)" >&2
    exit 1
fi

echo "wrote $out (dir2b_build_type=$dir2b_type," \
     "library_build_type=${lib_type:-unknown})"
