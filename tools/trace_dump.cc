/**
 * @file
 * Run a timed workload with the trace recorder attached and emit a
 * dir2b.trace artifact (docs/TRACING.md) plus a per-phase latency
 * summary on stdout.
 *
 *   trace_dump [--out PATH] [--protocol tb|fm|yf] [--procs N]
 *              [--modules M] [--refs N] [--seed S] [--q Q]
 *              [--net ideal|crossbar|bus] [--per-block] [--snoop]
 *              [--capacity N] [--shards N] [--debug]
 *
 * The artifact is simultaneously a Chrome trace_event file: load it
 * straight into Perfetto (https://ui.perfetto.dev) or chrome://tracing
 * to see one track per cache and controller, phase spans (transaction,
 * await_grant, await_data, service, supply, await_acks, await_put) and
 * an instant per Table 3-1 command on the network track.
 *
 * With --debug, DIR2B_DEBUG protocol chatter is additionally routed
 * into a "log" track as instant events, so the textual story and the
 * timeline are one artifact.
 *
 * With --shards N > 1 the run uses the sharded engine (bit-identical
 * statistics; see src/timed/sharded_system.hh) with one recorder per
 * shard: the artifact renders each shard as its own "s<k>/..." group
 * of Perfetto tracks.  --debug needs the single global debug sink and
 * is therefore rejected alongside --shards.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/chrome_trace.hh"
#include "obs/telemetry.hh"
#include "obs/trace_recorder.hh"
#include "report/bench_cli.hh"
#include "report/report.hh"
#include "timed/sharded_system.hh"
#include "timed/timed_system.hh"
#include "trace/synthetic.hh"
#include "util/logging.hh"

namespace
{

using namespace dir2b;

[[noreturn]] void
fail(const std::string &msg)
{
    std::fprintf(stderr, "trace_dump: %s\n", msg.c_str());
    std::exit(1);
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "Run a timed workload with tracing and write a dir2b.trace\n"
        "artifact (Perfetto-loadable; see docs/TRACING.md).\n"
        "  --out PATH      artifact path (default: dir2b.trace)\n"
        "  --protocol P    tb | fm | yf (default: tb)\n"
        "  --procs N       processor-cache pairs (default: 4)\n"
        "  --modules M     controller-memory modules (default: 2)\n"
        "  --refs N        references per processor (default: 2000)\n"
        "  --seed S        synthetic workload seed (default: 31)\n"
        "  --q Q           shared-reference probability (default: 0.10)\n"
        "  --net KIND      ideal | crossbar | bus (default: crossbar)\n"
        "  --per-block     per-block-concurrent controllers (Sec. 3.2.5"
        " option 2)\n"
        "  --snoop         duplicate cache directories (Sec. 4.4a)\n"
        "  --capacity N    recorder ring capacity in events "
        "(default: 262144)\n"
        "  --shards N      home shards; N > 1 runs the sharded engine\n"
        "                  with one recorder (track group) per shard\n"
        "  --series-interval N\n"
        "                  sample the telemetry registry every N ticks\n"
        "                  (k/m/g suffixes) and render every metric as\n"
        "                  a Perfetto counter track in the artifact\n"
        "  --series-out PATH\n"
        "                  additionally write the samples as a\n"
        "                  dir2b.series artifact (default interval\n"
        "                  4096 if --series-interval is absent)\n"
        "  --debug         route DIR2B_DEBUG messages into a 'log' "
        "track (single shard only)\n",
        argv0);
}

/** Per-phase latency summary (merged across components); works on
 *  either engine — both expose the same histogram accessors. */
struct PhaseRow
{
    const char *name;
    Histogram h;
};

template <typename Sys>
std::vector<PhaseRow>
collectPhases(const Sys &sys)
{
    return {
        {"latency", sys.mergedCacheHistogram(&CacheCtrlStats::latency)},
        {"grant_wait",
         sys.mergedCacheHistogram(&CacheCtrlStats::grantWait)},
        {"data_wait",
         sys.mergedCacheHistogram(&CacheCtrlStats::dataWait)},
        {"queue_wait", sys.mergedDirHistogram(&DirCtrlStats::queueWait)},
        {"ack_wait", sys.mergedDirHistogram(&DirCtrlStats::ackWait)},
        {"put_wait", sys.mergedDirHistogram(&DirCtrlStats::putWait)},
    };
}

} // namespace

int
main(int argc, char **argv)
{
    std::string outPath = "dir2b.trace";
    std::string protoName = "tb";
    std::string netName = "crossbar";
    unsigned procs = 4;
    unsigned modules = 2;
    std::uint64_t refs = 2000;
    std::uint64_t seed = 31;
    double q = 0.10;
    bool perBlock = false;
    bool snoop = false;
    bool debug = false;
    unsigned shards = 1;
    std::size_t capacity = std::size_t(1) << 18;
    std::string seriesPath;
    std::uint64_t seriesInterval = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fail(std::string(flag) + " requires an argument");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--out") {
            outPath = value("--out");
        } else if (arg == "--protocol") {
            protoName = value("--protocol");
        } else if (arg == "--net") {
            netName = value("--net");
        } else if (arg == "--procs") {
            procs = static_cast<unsigned>(
                std::atoi(value("--procs").c_str()));
        } else if (arg == "--modules") {
            modules = static_cast<unsigned>(
                std::atoi(value("--modules").c_str()));
        } else if (arg == "--refs") {
            refs = static_cast<std::uint64_t>(
                std::atoll(value("--refs").c_str()));
        } else if (arg == "--seed") {
            seed = static_cast<std::uint64_t>(
                std::atoll(value("--seed").c_str()));
        } else if (arg == "--q") {
            q = std::atof(value("--q").c_str());
        } else if (arg == "--capacity") {
            capacity = static_cast<std::size_t>(
                std::atoll(value("--capacity").c_str()));
        } else if (arg == "--shards") {
            shards = static_cast<unsigned>(
                std::atoi(value("--shards").c_str()));
        } else if (arg == "--series-out") {
            seriesPath = value("--series-out");
        } else if (arg == "--series-interval") {
            seriesInterval = parseInterval(
                value("--series-interval").c_str(),
                "--series-interval");
        } else if (arg == "--per-block") {
            perBlock = true;
        } else if (arg == "--snoop") {
            snoop = true;
        } else if (arg == "--debug") {
            debug = true;
        } else {
            fail("unknown option '" + arg + "' (see --help)");
        }
    }
    if (procs == 0 || modules == 0 || capacity == 0)
        fail("--procs, --modules and --capacity must be positive");
    if (shards == 0)
        fail("--shards must be positive");
    if (shards > 1 && debug)
        fail("--debug needs the single global debug sink; "
             "use --shards 1");

    TimedConfig cfg;
    if (protoName == "tb")
        cfg.protocol = TimedProto::TwoBit;
    else if (protoName == "fm")
        cfg.protocol = TimedProto::FullMap;
    else if (protoName == "yf")
        cfg.protocol = TimedProto::YenFu;
    else
        fail("unknown --protocol '" + protoName + "' (tb|fm|yf)");
    if (netName == "ideal")
        cfg.network = NetKind::Ideal;
    else if (netName == "crossbar")
        cfg.network = NetKind::Crossbar;
    else if (netName == "bus")
        cfg.network = NetKind::Bus;
    else
        fail("unknown --net '" + netName + "' (ideal|crossbar|bus)");
    cfg.numProcs = procs;
    cfg.numModules = modules;
    cfg.cacheGeom.sets = 32;
    cfg.cacheGeom.ways = 4;
    cfg.perBlockConcurrency = perBlock;
    cfg.snoopFilter = snoop;

    if (!traceCompiledIn)
        std::fprintf(stderr,
                     "trace_dump: warning: built with -DDIR2B_TRACING="
                     "OFF — the trace will contain no events\n");

    // One recorder per shard (a single one when serial); the exporter
    // renders each as its own group of Perfetto tracks.
    std::vector<std::unique_ptr<TraceRecorder>> recs;
    std::vector<const TraceRecorder *> recPtrs;
    for (unsigned s = 0; s < shards; ++s) {
        recs.push_back(std::make_unique<TraceRecorder>(capacity));
        recPtrs.push_back(recs.back().get());
    }

    // The telemetry sampler mirrors every metric into a "metrics"
    // counter track: the serial engine shares the one recorder, the
    // sharded engine gets a dedicated extra recorder (the sampler is
    // global — it flushes at merge barriers, not inside any shard).
    std::unique_ptr<TelemetrySampler> sampler;
    if (seriesInterval || !seriesPath.empty()) {
        sampler = std::make_unique<TelemetrySampler>(
            SeriesDomain::Ticks,
            seriesInterval ? seriesInterval : 4096);
        if (shards <= 1) {
            sampler->attachRecorder(recs[0].get());
        } else {
            recs.push_back(std::make_unique<TraceRecorder>(capacity));
            recPtrs.push_back(recs.back().get());
            sampler->attachRecorder(recs.back().get());
        }
    }

    const WallTimer timer;

    SyntheticConfig scfg;
    scfg.numProcs = procs;
    scfg.q = q;
    scfg.w = 0.3;
    scfg.sharedBlocks = 16;
    scfg.privateBlocks = 96;
    scfg.hotBlocks = 24;
    scfg.sharedLocality = 0.9;
    scfg.seed = static_cast<std::uint32_t>(seed);
    auto stream = std::make_shared<SyntheticStream>(scfg);
    auto src = [stream](ProcId p) -> std::optional<MemRef> {
        return stream->nextFor(p);
    };

    TimedRunResult r;
    std::vector<PhaseRow> phases;
    cfg.sampler = sampler.get();
    if (shards <= 1) {
        cfg.tracer = recs[0].get();
        TimedSystem sys(cfg);
        if (debug) {
            TraceRecorder &rec = *recs[0];
            const std::uint32_t logTrk = rec.addTrack("log");
            setDebugSink([&rec, &sys, logTrk](const std::string &msg) {
                rec.note(sys.now(), logTrk, msg);
            });
        }
        r = sys.run(src, refs);
        setDebugSink(nullptr);
        phases = collectPhases(sys);
    } else {
        std::vector<TraceRecorder *> shardTracers;
        for (unsigned s = 0; s < shards; ++s)
            shardTracers.push_back(recs[s].get());
        ShardedTimedSystem sys(cfg, shards, shardTracers);
        r = sys.run(src, refs);
        phases = collectPhases(sys);
    }

    std::printf("trace_dump: %s n=%u m=%u q=%.2f net=%s refs=%llu "
                "shards=%u -> %llu ticks, %llu messages\n\n",
                protoName.c_str(), procs, modules, q, netName.c_str(),
                static_cast<unsigned long long>(refs), shards,
                static_cast<unsigned long long>(r.finalTick),
                static_cast<unsigned long long>(r.netMessages));
    std::printf("%-12s %10s %10s %6s %6s %6s %6s\n", "phase",
                "samples", "mean", "min", "p50", "p95", "p99");
    for (const PhaseRow &p : phases) {
        std::printf("%-12s %10llu %10.2f %6llu %6llu %6llu %6llu\n",
                    p.name,
                    static_cast<unsigned long long>(p.h.samples()),
                    p.h.mean(),
                    static_cast<unsigned long long>(p.h.min()),
                    static_cast<unsigned long long>(p.h.p50()),
                    static_cast<unsigned long long>(p.h.p95()),
                    static_cast<unsigned long long>(p.h.p99()));
    }
    std::uint64_t recRecorded = 0;
    std::uint64_t recDropped = 0;
    std::size_t recHeld = 0;
    std::size_t recTracks = 0;
    for (const auto &rp : recs) {
        recRecorded += rp->recorded();
        recDropped += rp->dropped();
        recHeld += rp->size();
        recTracks += rp->tracks().size();
    }
    std::printf("\nrecorder: %llu events recorded, %zu held, %llu "
                "dropped (ring wrap), %zu tracks\n",
                static_cast<unsigned long long>(recRecorded), recHeld,
                static_cast<unsigned long long>(recDropped),
                recTracks);

    // ---- artifact ----
    Json params = Json::object();
    params.set("protocol", protoName);
    params.set("procs", procs);
    params.set("modules", modules);
    params.set("refs", static_cast<unsigned long long>(refs));
    params.set("seed", static_cast<unsigned long long>(seed));
    params.set("q", q);
    params.set("net", netName);
    params.set("perBlock", perBlock);
    params.set("snoop", snoop);
    params.set("shards", shards);
    params.set("capacity",
               static_cast<unsigned long long>(capacity));

    Json phaseJson = Json::object();
    for (const PhaseRow &p : phases)
        phaseJson.set(p.name, histogramSummaryJson(p.h));
    Json summary = Json::object();
    summary.set("finalTick",
                static_cast<unsigned long long>(r.finalTick));
    summary.set("refsCompleted",
                static_cast<unsigned long long>(r.refsCompleted));
    summary.set("netMessages",
                static_cast<unsigned long long>(r.netMessages));
    summary.set("eventsRecorded",
                static_cast<unsigned long long>(recRecorded));
    summary.set("eventsDropped",
                static_cast<unsigned long long>(recDropped));
    summary.set("phases", std::move(phaseJson));

    Json meta = Json::object();
    meta.set("wall_ms", timer.elapsedMs());
    meta.set("threads", 1);
    meta.set("quick", false);

    std::ofstream out(outPath);
    if (!out)
        fail("cannot open '" + outPath + "' for writing");
    writeTraceArtifact(out, recPtrs, "trace_dump", params, summary,
                       meta);
    out << "\n";
    if (!out)
        fail("write to '" + outPath + "' failed");
    std::printf("wrote %s (load it at https://ui.perfetto.dev)\n",
                outPath.c_str());

    if (sampler && !seriesPath.empty()) {
        // Deterministic run configuration only — no shards/capacity —
        // so serial and sharded runs write byte-identical artifacts.
        Json sp = Json::object();
        sp.set("protocol", protoName);
        sp.set("procs", procs);
        sp.set("modules", modules);
        sp.set("refs", static_cast<unsigned long long>(refs));
        sp.set("seed", static_cast<unsigned long long>(seed));
        sp.set("q", q);
        sp.set("net", netName);
        sp.set("perBlock", perBlock);
        sp.set("snoop", snoop);
        writeArtifact(seriesPath,
                      makeSeriesArtifact("trace_dump", std::move(sp),
                                         *sampler));
        std::printf("wrote %s (%zu samples)\n", seriesPath.c_str(),
                    sampler->samples());
    }
    return 0;
}
