/**
 * @file
 * Artifact validator for CI and smoke tests.
 *
 *   check_artifact FILE [--cells N] [--bench NAME] [--compare OTHER]
 *
 * Checks that FILE parses as JSON and carries one of the dir2b
 * artifact schemas, dispatching on the "schema" discriminator:
 *
 *   dir2b.sweep / dir2b.check  - validateSweepArtifact() (report/)
 *   dir2b.trace                - validateTraceArtifact() (obs/)
 *   dir2b.series               - validateSeriesArtifact() (obs/)
 *
 * With --cells the cell count must equal N (sweep/check only — trace
 * artifacts have traceEvents, series artifacts samples); with --bench
 * the "bench" field must equal NAME; with --compare the two artifacts
 * must have equal payloads once the volatile "meta" block is excluded
 * — the determinism contract between --threads 1 and --threads N runs
 * (series artifacts carry no meta at all, so --compare there is full
 * document equality: the serial-vs-sharded identity check).
 * Exits 0 on success, 1 with a diagnostic on any violation.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/chrome_trace.hh"
#include "obs/telemetry.hh"
#include "report/report.hh"

namespace
{

using dir2b::Json;

[[noreturn]] void
fail(const std::string &msg)
{
    std::fprintf(stderr, "check_artifact: %s\n", msg.c_str());
    std::exit(1);
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s FILE [--cells N] [--bench NAME] [--compare OTHER]\n"
        "\n"
        "Validate a dir2b.sweep, dir2b.check, dir2b.trace or\n"
        "dir2b.series JSON artifact (see docs/METRICS.md,\n"
        "docs/CHECKING.md and docs/TRACING.md).\n"
        "  --cells N       require exactly N cells (sweep/check only)\n"
        "  --bench NAME    require the bench field to equal NAME\n"
        "  --compare OTHER require payload equality with artifact\n"
        "                  OTHER, ignoring the volatile meta block\n",
        argv0);
}

/** True when the artifact declares schema discriminator `name`. */
bool
hasSchema(const Json &a, const char *name)
{
    return a.isObject() && a.contains("schema") &&
           a.at("schema").isString() && a.at("schema").asString() == name;
}

bool
isTrace(const Json &a)
{
    return hasSchema(a, dir2b::traceSchemaName);
}

bool
isSeries(const Json &a)
{
    return hasSchema(a, dir2b::seriesSchemaName);
}

/** Schema checks shared by the primary and --compare artifacts. */
void
validate(const Json &a, const std::string &path)
{
    const std::string err =
        isTrace(a)    ? dir2b::validateTraceArtifact(a)
        : isSeries(a) ? dir2b::validateSeriesArtifact(a)
                      : dir2b::validateSweepArtifact(a);
    if (!err.empty())
        fail(path + ": " + err);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    std::string benchName;
    std::string comparePath;
    long long wantCells = -1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fail(std::string(flag) + " requires an argument");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--cells") {
            wantCells = std::atoll(value("--cells").c_str());
        } else if (arg == "--bench") {
            benchName = value("--bench");
        } else if (arg == "--compare") {
            comparePath = value("--compare");
        } else if (!arg.empty() && arg[0] == '-') {
            fail("unknown option '" + arg + "' (see --help)");
        } else if (path.empty()) {
            path = arg;
        } else {
            fail("unexpected extra argument '" + arg + "'");
        }
    }
    if (path.empty())
        fail("no artifact file given (see --help)");

    const Json a = dir2b::readArtifact(path);
    validate(a, path);

    if (isSeries(a)) {
        if (wantCells >= 0)
            fail(path + ": --cells does not apply to dir2b.series "
                        "artifacts");
        if (!benchName.empty() &&
            a.at("bench").asString() != benchName)
            fail(path + ": bench is '" + a.at("bench").asString() +
                 "', expected '" + benchName + "'");
        if (!comparePath.empty()) {
            const Json b = dir2b::readArtifact(comparePath);
            validate(b, comparePath);
            if (!dir2b::sameArtifactPayload(a, b))
                fail(path + " and " + comparePath + " differ");
        }
        std::printf("check_artifact: %s ok (%zu samples, %zu metrics, "
                    "bench %s)\n",
                    path.c_str(),
                    a.at("series").at("samples").size(),
                    a.at("series").at("metrics").size(),
                    a.at("bench").asString().c_str());
        return 0;
    }

    if (isTrace(a)) {
        if (wantCells >= 0)
            fail(path + ": --cells does not apply to dir2b.trace "
                        "artifacts");
        if (!benchName.empty() &&
            a.at("bench").asString() != benchName)
            fail(path + ": bench is '" + a.at("bench").asString() +
                 "', expected '" + benchName + "'");
        if (!comparePath.empty()) {
            const Json b = dir2b::readArtifact(comparePath);
            validate(b, comparePath);
            if (!dir2b::sameArtifactPayload(a, b))
                fail(path + " and " + comparePath +
                     " differ outside the meta block");
        }
        std::printf("check_artifact: %s ok (%zu trace events, "
                    "bench %s)\n",
                    path.c_str(), a.at("traceEvents").size(),
                    a.at("bench").asString().c_str());
        return 0;
    }

    const std::size_t cells = a.at("cells").size();
    if (wantCells >= 0 &&
        cells != static_cast<std::size_t>(wantCells))
        fail(path + ": expected " + std::to_string(wantCells) +
             " cells, found " + std::to_string(cells));
    if (!benchName.empty() && a.at("bench").asString() != benchName)
        fail(path + ": bench is '" + a.at("bench").asString() +
             "', expected '" + benchName + "'");

    if (!comparePath.empty()) {
        const Json b = dir2b::readArtifact(comparePath);
        validate(b, comparePath);
        if (!dir2b::sameArtifactPayload(a, b))
            fail(path + " and " + comparePath +
                 " differ outside the meta block");
    }

    std::printf("check_artifact: %s ok (%zu cells, bench %s)\n",
                path.c_str(), cells, a.at("bench").asString().c_str());
    return 0;
}
