/**
 * @file
 * Sweep-artifact validator for CI and smoke tests.
 *
 *   check_artifact FILE [--cells N] [--bench NAME] [--compare OTHER]
 *
 * Checks that FILE parses as JSON and carries the dir2b.sweep or
 * dir2b.check schema (schema discriminator, supported schema_version,
 * bench name, cells array whose every element is an object with a
 * "section" string, and a meta block).  With --cells the cell count must equal N; with
 * --bench the "bench" field must equal NAME; with --compare the two
 * artifacts must have equal payloads once the volatile "meta" block is
 * excluded — the determinism contract between --threads 1 and
 * --threads N runs.  Exits 0 on success, 1 with a diagnostic on any
 * violation.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "report/report.hh"

namespace
{

using dir2b::Json;

[[noreturn]] void
fail(const std::string &msg)
{
    std::fprintf(stderr, "check_artifact: %s\n", msg.c_str());
    std::exit(1);
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s FILE [--cells N] [--bench NAME] [--compare OTHER]\n"
        "\n"
        "Validate a dir2b.sweep or dir2b.check JSON artifact\n"
        "(see docs/METRICS.md and docs/CHECKING.md).\n"
        "  --cells N       require exactly N cells\n"
        "  --bench NAME    require the bench field to equal NAME\n"
        "  --compare OTHER require payload equality with artifact\n"
        "                  OTHER, ignoring the volatile meta block\n",
        argv0);
}

/** Schema checks shared by the primary and --compare artifacts. */
void
validate(const Json &a, const std::string &path)
{
    if (!a.isObject())
        fail(path + ": top level is not an object");
    for (const char *key : {"schema", "schema_version", "bench",
                            "cells", "meta"})
        if (!a.contains(key))
            fail(path + ": missing required field '" + key + "'");
    const std::string schema = a.at("schema").asString();
    if (schema != dir2b::reportSchemaName &&
        schema != dir2b::checkSchemaName)
        fail(path + ": schema is '" + schema + "', expected '" +
             dir2b::reportSchemaName + "' or '" +
             dir2b::checkSchemaName + "'");
    const auto version = a.at("schema_version").asInt();
    if (version < 1 || version > dir2b::reportSchemaVersion)
        fail(path + ": unsupported schema_version " +
             std::to_string(version));
    if (!a.at("cells").isArray())
        fail(path + ": 'cells' is not an array");
    std::size_t idx = 0;
    for (const Json &cell : a.at("cells").elements()) {
        if (!cell.isObject() || !cell.contains("section") ||
            !cell.at("section").isString())
            fail(path + ": cell " + std::to_string(idx) +
                 " lacks a 'section' string");
        ++idx;
    }
    const Json &meta = a.at("meta");
    if (!meta.isObject() || !meta.contains("threads") ||
        !meta.contains("wall_ms"))
        fail(path + ": malformed 'meta' block");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    std::string benchName;
    std::string comparePath;
    long long wantCells = -1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fail(std::string(flag) + " requires an argument");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--cells") {
            wantCells = std::atoll(value("--cells").c_str());
        } else if (arg == "--bench") {
            benchName = value("--bench");
        } else if (arg == "--compare") {
            comparePath = value("--compare");
        } else if (!arg.empty() && arg[0] == '-') {
            fail("unknown option '" + arg + "' (see --help)");
        } else if (path.empty()) {
            path = arg;
        } else {
            fail("unexpected extra argument '" + arg + "'");
        }
    }
    if (path.empty())
        fail("no artifact file given (see --help)");

    const Json a = dir2b::readArtifact(path);
    validate(a, path);

    const std::size_t cells = a.at("cells").size();
    if (wantCells >= 0 &&
        cells != static_cast<std::size_t>(wantCells))
        fail(path + ": expected " + std::to_string(wantCells) +
             " cells, found " + std::to_string(cells));
    if (!benchName.empty() && a.at("bench").asString() != benchName)
        fail(path + ": bench is '" + a.at("bench").asString() +
             "', expected '" + benchName + "'");

    if (!comparePath.empty()) {
        const Json b = dir2b::readArtifact(comparePath);
        validate(b, comparePath);
        if (!dir2b::sameArtifactPayload(a, b))
            fail(path + " and " + comparePath +
                 " differ outside the meta block");
    }

    std::printf("check_artifact: %s ok (%zu cells, bench %s)\n",
                path.c_str(), cells, a.at("bench").asString().c_str());
    return 0;
}
