/**
 * @file
 * Diff two google-benchmark JSON files (the committed BENCH_N.json
 * perf baselines; docs/PERFORMANCE.md).
 *
 *   bench_compare OLD.json NEW.json [--threshold PCT]
 *
 * Matches benchmarks by name — iteration entries and "_mean"
 * aggregates; stddev/median/cv aggregates are skipped — and prints a
 * per-benchmark table of real_time and items_per_second deltas (in
 * percent, positive real_time delta = NEW is slower).  Benchmarks
 * present in only one file are listed separately; an empty overlap is
 * reported and is not an error (baselines from different eras measure
 * different things).
 *
 * With --threshold PCT the exit code becomes 1 when any common
 * benchmark's real_time regressed (got slower) by more than PCT
 * percent — the CI guard shape.  Exit is 0 otherwise.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "report/report.hh"

namespace
{

using dir2b::Json;

[[noreturn]] void
fail(const std::string &msg)
{
    std::fprintf(stderr, "bench_compare: %s\n", msg.c_str());
    std::exit(2);
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s OLD.json NEW.json [--threshold PCT]\n"
        "\n"
        "Diff two google-benchmark JSON files by benchmark name and\n"
        "print per-benchmark real_time / items_per_second deltas.\n"
        "  --threshold PCT  exit 1 if any common benchmark's\n"
        "                   real_time regressed by more than PCT%%\n",
        argv0);
}

/** One comparable measurement. */
struct Entry
{
    double realTimeNs = 0.0;
    double itemsPerSecond = 0.0; ///< 0 = not reported
};

double
toNs(double t, const std::string &unit)
{
    if (unit == "ns")
        return t;
    if (unit == "us")
        return t * 1e3;
    if (unit == "ms")
        return t * 1e6;
    if (unit == "s")
        return t * 1e9;
    fail("unknown time_unit '" + unit + "'");
}

/**
 * name -> Entry for every iteration run and every "_mean" aggregate.
 * Aggregate means keep their "_mean"-suffixed name so repetition
 * files compare mean-to-mean, never mean-to-cv.
 */
std::map<std::string, Entry>
load(const std::string &path)
{
    const Json doc = dir2b::readArtifact(path);
    if (!doc.isObject() || !doc.contains("benchmarks") ||
        !doc.at("benchmarks").isArray())
        fail(path + ": not a google-benchmark JSON file "
                    "(no benchmarks array)");
    std::map<std::string, Entry> out;
    const Json &bs = doc.at("benchmarks");
    for (std::size_t i = 0; i < bs.size(); ++i) {
        const Json &b = bs.at(i);
        const std::string runType =
            b.contains("run_type") ? b.at("run_type").asString()
                                   : "iteration";
        if (runType == "aggregate" &&
            b.at("aggregate_name").asString() != "mean")
            continue;
        Entry e;
        e.realTimeNs = toNs(b.at("real_time").asDouble(),
                            b.at("time_unit").asString());
        if (b.contains("items_per_second"))
            e.itemsPerSecond = b.at("items_per_second").asDouble();
        out[b.at("name").asString()] = e;
    }
    return out;
}

double
deltaPct(double before, double after)
{
    return before != 0.0 ? 100.0 * (after - before) / before : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> paths;
    double threshold = -1.0; ///< < 0 = report only

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--threshold") {
            if (i + 1 >= argc)
                fail("--threshold requires an argument");
            threshold = std::atof(argv[++i]);
            if (threshold <= 0.0)
                fail("--threshold wants a positive percentage");
        } else if (!arg.empty() && arg[0] == '-') {
            fail("unknown option '" + arg + "' (see --help)");
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2)
        fail("expected exactly two files (see --help)");

    const auto oldRuns = load(paths[0]);
    const auto newRuns = load(paths[1]);

    std::vector<std::string> onlyOld;
    std::vector<std::string> onlyNew;
    for (const auto &kv : oldRuns)
        if (!newRuns.count(kv.first))
            onlyOld.push_back(kv.first);
    for (const auto &kv : newRuns)
        if (!oldRuns.count(kv.first))
            onlyNew.push_back(kv.first);

    std::printf("%-44s %12s %12s %8s %10s\n", "benchmark", "old", "new",
                "time", "items/s");
    std::printf("%-44s %12s %12s %8s %10s\n", "", "(ns)", "(ns)",
                "delta", "delta");
    std::size_t common = 0;
    double worst = 0.0;
    std::string worstName;
    for (const auto &kv : oldRuns) {
        const auto it = newRuns.find(kv.first);
        if (it == newRuns.end())
            continue;
        ++common;
        const Entry &a = kv.second;
        const Entry &b = it->second;
        const double dt = deltaPct(a.realTimeNs, b.realTimeNs);
        if (dt > worst) {
            worst = dt;
            worstName = kv.first;
        }
        char items[32] = "-";
        if (a.itemsPerSecond > 0.0 && b.itemsPerSecond > 0.0)
            std::snprintf(items, sizeof items, "%+8.1f%%",
                          deltaPct(a.itemsPerSecond,
                                   b.itemsPerSecond));
        std::printf("%-44s %12.0f %12.0f %+7.1f%% %10s\n",
                    kv.first.c_str(), a.realTimeNs, b.realTimeNs, dt,
                    items);
    }
    if (common == 0)
        std::printf("(no common benchmarks — %zu only in %s, %zu only "
                    "in %s)\n",
                    onlyOld.size(), paths[0].c_str(), onlyNew.size(),
                    paths[1].c_str());
    if (!onlyOld.empty()) {
        std::printf("\nonly in %s:\n", paths[0].c_str());
        for (const auto &n : onlyOld)
            std::printf("  %s\n", n.c_str());
    }
    if (!onlyNew.empty()) {
        std::printf("\nonly in %s:\n", paths[1].c_str());
        for (const auto &n : onlyNew)
            std::printf("  %s\n", n.c_str());
    }

    if (threshold > 0.0 && worst > threshold) {
        std::fprintf(stderr,
                     "bench_compare: FAIL: %s regressed %.1f%% "
                     "(> %.1f%% threshold)\n",
                     worstName.c_str(), worst, threshold);
        return 1;
    }
    if (threshold > 0.0)
        std::printf("\nno regression above %.1f%% across %zu common "
                    "benchmarks\n",
                    threshold, common);
    return 0;
}
