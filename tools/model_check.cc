/**
 * @file
 * Command-line driver for the two checking engines.
 *
 *   model_check [--quick] [--seeds N] [--refs N] [--no-timed]
 *               [--threads N] [--json OUT]
 *
 * Runs the exhaustive explorer over the default small-configuration
 * grid (every factory protocol plus the no-Present1 ablation at 2
 * caches x 1-2 blocks, including a direct-mapped replacement-pressure
 * cell) and a differential fuzz campaign, then writes a dir2b.check
 * JSON artifact and exits 0 iff no violation was found.  Both engines
 * dispatch through the shared worker pool; the artifact payload is
 * identical at any --threads value.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "check/check_report.hh"
#include "util/parallel.hh"

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--quick] [--seeds N] [--refs N] [--no-timed]\n"
        "          [--threads N] [--json OUT]\n"
        "\n"
        "Exhaustive small-configuration model check plus a\n"
        "differential fuzz campaign (see docs/CHECKING.md).\n"
        "  --quick      smaller fuzz campaign (CI smoke budget)\n"
        "  --seeds N    fuzz campaign size (default 16, quick 4)\n"
        "  --refs N     references per fuzz seed (default 4000)\n"
        "  --no-timed   skip the timed-tier lockstep run\n"
        "  --threads N  worker pool width (default: all cores)\n"
        "  --json OUT   write the dir2b.check artifact to OUT\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dir2b;

    bool quick = false;
    bool withTimed = true;
    std::uint64_t seeds = 0;
    std::uint64_t refs = 4000;
    unsigned threads = 0;
    std::string jsonPath;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg == "--no-timed") {
            withTimed = false;
        } else if (arg == "--seeds" && i + 1 < argc) {
            seeds = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--refs" && i + 1 < argc) {
            refs = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else {
            usage(argv[0]);
            return 1;
        }
    }
    if (seeds == 0)
        seeds = quick ? 4 : 16;
    if (threads)
        setDefaultThreadCount(threads);

    const auto t0 = std::chrono::steady_clock::now();

    const auto grid = defaultExplorerGrid();
    std::printf("model_check: exploring %zu cells...\n", grid.size());
    const auto explored = exploreGrid(grid);

    std::uint64_t states = 0;
    std::uint64_t transitions = 0;
    std::uint64_t violations = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        states += explored[i].statesVisited;
        transitions += explored[i].transitionsChecked;
        violations += explored[i].violations.size();
        if (!explored[i].violations.empty()) {
            std::printf("  VIOLATION %s (%u procs, %zu blocks): %s\n",
                        grid[i].protocol.c_str(), grid[i].numProcs,
                        grid[i].numBlocks,
                        explored[i].violations.front().detail.c_str());
            for (const auto &a : explored[i].trail)
                std::printf("    %s\n", toString(a).c_str());
        }
    }
    std::printf("model_check: %llu states, %llu transitions, "
                "%llu violation(s)\n",
                static_cast<unsigned long long>(states),
                static_cast<unsigned long long>(transitions),
                static_cast<unsigned long long>(violations));

    FuzzConfig fc;
    fc.numSeeds = seeds;
    fc.refsPerSeed = refs;
    fc.diff.withTimed = withTimed;
    std::printf("model_check: fuzzing %llu seeds x %llu refs "
                "(%zu schemes%s)...\n",
                static_cast<unsigned long long>(fc.numSeeds),
                static_cast<unsigned long long>(fc.refsPerSeed),
                functionalCheckProtocols().size(),
                withTimed ? " + timed tier" : "");
    const FuzzResult fuzzed = fuzzMany(fc);
    for (const auto &f : fuzzed.failures) {
        std::printf("  FAILURE seed %llu [%s] at step %zu (%s): %s\n",
                    static_cast<unsigned long long>(f.seedIndex),
                    f.failure.protocol.c_str(), f.failure.step,
                    f.failure.kind.c_str(), f.failure.detail.c_str());
    }
    std::printf("model_check: %llu fuzz failure(s)\n",
                static_cast<unsigned long long>(fuzzed.failures.size()));

    const double wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0).count();

    if (!jsonPath.empty()) {
        Json artifact = makeEngineArtifact("model_check", grid,
                                           explored, &fc, &fuzzed);
        stampMeta(artifact, threads ? threads : defaultThreadCount(),
                  wallMs, quick);
        writeArtifact(jsonPath, artifact);
        std::printf("model_check: artifact written to %s\n",
                    jsonPath.c_str());
    }

    return violations == 0 && fuzzed.failures.empty() ? 0 : 1;
}
