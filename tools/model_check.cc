/**
 * @file
 * Command-line driver for the two checking engines.
 *
 *   model_check [--quick] [--seeds N] [--refs N] [--no-timed]
 *               [--no-fuzz] [--protocol NAME] [--threads N]
 *               [--json OUT]
 *
 * Runs the exhaustive explorer over the default small-configuration
 * grid (every factory protocol plus the no-Present1 ablation at 2
 * caches x 1-2 blocks, including a direct-mapped replacement-pressure
 * cell) and a differential fuzz campaign, then writes a dir2b.check
 * JSON artifact and exits 0 iff no violation was found.  Both engines
 * dispatch through the shared worker pool; the artifact payload is
 * identical at any --threads value.
 *
 * --protocol restricts the grid to one scheme and --no-fuzz skips the
 * fuzz campaign; together they generate the committed per-protocol
 * model-check fixtures (tests/fixtures/moesi.check).  Table-driven
 * schemes additionally get row-coverage accounting: a row no grid cell
 * fires is reported dead and fails the run.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "check/check_report.hh"
#include "proto/protocol_factory.hh"
#include "proto/table_engine.hh"
#include "util/parallel.hh"

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--quick] [--seeds N] [--refs N] [--no-timed]\n"
        "          [--no-fuzz] [--protocol NAME] [--threads N]\n"
        "          [--json OUT]\n"
        "\n"
        "Exhaustive small-configuration model check plus a\n"
        "differential fuzz campaign (see docs/CHECKING.md).\n"
        "  --quick          smaller fuzz campaign (CI smoke budget)\n"
        "  --seeds N        fuzz campaign size (default 16, quick 4)\n"
        "  --refs N         references per fuzz seed (default 4000)\n"
        "  --no-timed       skip the timed-tier lockstep run\n"
        "  --no-fuzz        explorer only (fixture generation)\n"
        "  --protocol NAME  restrict the grid to one scheme\n"
        "  --threads N      worker pool width (default: all cores)\n"
        "  --json OUT       write the dir2b.check artifact to OUT\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dir2b;

    bool quick = false;
    bool withTimed = true;
    bool withFuzz = true;
    std::uint64_t seeds = 0;
    std::uint64_t refs = 4000;
    unsigned threads = 0;
    std::string jsonPath;
    std::string onlyProtocol;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg == "--no-timed") {
            withTimed = false;
        } else if (arg == "--no-fuzz") {
            withFuzz = false;
        } else if (arg == "--protocol" && i + 1 < argc) {
            onlyProtocol = argv[++i];
        } else if (arg == "--seeds" && i + 1 < argc) {
            seeds = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--refs" && i + 1 < argc) {
            refs = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else {
            usage(argv[0]);
            return 1;
        }
    }
    if (seeds == 0)
        seeds = quick ? 4 : 16;
    if (threads)
        setDefaultThreadCount(threads);

    const auto t0 = std::chrono::steady_clock::now();

    auto grid = defaultExplorerGrid();
    if (!onlyProtocol.empty()) {
        std::vector<ExplorerConfig> kept;
        for (const auto &c : grid)
            if (c.protocol == onlyProtocol)
                kept.push_back(c);
        if (kept.empty()) {
            std::fprintf(stderr,
                         "model_check: no grid cell for protocol "
                         "'%s'\n", onlyProtocol.c_str());
            return 1;
        }
        grid = std::move(kept);
    }
    std::printf("model_check: exploring %zu cells...\n", grid.size());
    const auto explored = exploreGrid(grid);

    std::uint64_t states = 0;
    std::uint64_t transitions = 0;
    std::uint64_t violations = 0;
    // Row coverage per table protocol, unioned over its grid cells
    // (evict rows need the replacement-pressure cell to fire).
    std::map<std::string, std::vector<std::uint64_t>> coverage;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        states += explored[i].statesVisited;
        transitions += explored[i].transitionsChecked;
        violations += explored[i].violations.size();
        if (!explored[i].violations.empty()) {
            std::printf("  VIOLATION %s (%u procs, %zu blocks): %s\n",
                        grid[i].protocol.c_str(), grid[i].numProcs,
                        grid[i].numBlocks,
                        explored[i].violations.front().detail.c_str());
            for (const auto &a : explored[i].trail)
                std::printf("    %s\n", toString(a).c_str());
        }
        if (explored[i].totalRows > 0) {
            auto &fired = coverage[grid[i].protocol];
            fired.resize(explored[i].totalRows, 0);
            for (std::size_t r = 0; r < explored[i].totalRows; ++r)
                fired[r] += explored[i].rowsFired[r];
        }
    }
    std::printf("model_check: %llu states, %llu transitions, "
                "%llu violation(s)\n",
                static_cast<unsigned long long>(states),
                static_cast<unsigned long long>(transitions),
                static_cast<unsigned long long>(violations));

    std::uint64_t deadRows = 0;
    for (const auto &[name, fired] : coverage) {
        std::uint64_t dead = 0;
        for (std::size_t r = 0; r < fired.size(); ++r)
            if (fired[r] == 0)
                ++dead;
        deadRows += dead;
        std::printf("model_check: %s row coverage %zu/%zu\n",
                    name.c_str(), fired.size() - dead, fired.size());
        if (dead == 0)
            continue;
        ProtoConfig pc;
        pc.numProcs = 2;
        const auto proto = makeProtocol(name, pc);
        const auto &table =
            dynamic_cast<const TableProtocol &>(*proto).table();
        for (std::size_t r = 0; r < fired.size(); ++r)
            if (fired[r] == 0)
                std::printf("  DEAD ROW %s\n",
                            describeRow(table, r).c_str());
    }

    FuzzResult fuzzed;
    FuzzConfig fc;
    fc.numSeeds = seeds;
    fc.refsPerSeed = refs;
    fc.diff.withTimed = withTimed;
    if (withFuzz) {
        std::printf("model_check: fuzzing %llu seeds x %llu refs "
                    "(%zu schemes%s)...\n",
                    static_cast<unsigned long long>(fc.numSeeds),
                    static_cast<unsigned long long>(fc.refsPerSeed),
                    functionalCheckProtocols().size(),
                    withTimed ? " + timed tier" : "");
        fuzzed = fuzzMany(fc);
        for (const auto &f : fuzzed.failures) {
            std::printf(
                "  FAILURE seed %llu [%s] at step %zu (%s): %s\n",
                static_cast<unsigned long long>(f.seedIndex),
                f.failure.protocol.c_str(), f.failure.step,
                f.failure.kind.c_str(), f.failure.detail.c_str());
        }
        std::printf(
            "model_check: %llu fuzz failure(s)\n",
            static_cast<unsigned long long>(fuzzed.failures.size()));
    }

    const double wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0).count();

    if (!jsonPath.empty()) {
        Json artifact = makeEngineArtifact(
            "model_check", grid, explored, withFuzz ? &fc : nullptr,
            withFuzz ? &fuzzed : nullptr);
        stampMeta(artifact, threads ? threads : defaultThreadCount(),
                  wallMs, quick);
        writeArtifact(jsonPath, artifact);
        std::printf("model_check: artifact written to %s\n",
                    jsonPath.c_str());
    }

    return violations == 0 && fuzzed.failures.empty() && deadRows == 0
               ? 0
               : 1;
}
