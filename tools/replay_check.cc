/**
 * @file
 * Re-run the differential check a fuzzer seed file describes.
 *
 *   replay_check SEEDFILE [--timed] [--expect-fail] [--json OUT]
 *
 * Loads the seed (configuration + minimized trace, see
 * docs/CHECKING.md), replays it through the recorded scheme list with
 * the full invariant suite, and reports the verdict.  Exit status is
 * 0 when the observed verdict matches the expectation: pass by
 * default, fail with --expect-fail (the mode used when archiving a
 * counterexample for a known bug).  With --json the verdict is also
 * written as a one-cell dir2b.check artifact.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "check/differ.hh"
#include "report/report.hh"
#include "util/parallel.hh"

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s SEEDFILE [--timed] [--expect-fail] [--json OUT]\n"
        "\n"
        "Replay a dir2b fuzzer seed file (see docs/CHECKING.md).\n"
        "  --timed        also drive the timed two-bit tier\n"
        "  --expect-fail  exit 0 only if the replay DOES fail\n"
        "  --json OUT     write the verdict as a dir2b.check artifact\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dir2b;

    std::string seedPath;
    std::string jsonPath;
    bool withTimed = false;
    bool expectFail = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--timed") {
            withTimed = true;
        } else if (arg == "--expect-fail") {
            expectFail = true;
        } else if (arg == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (seedPath.empty() && arg[0] != '-') {
            seedPath = arg;
        } else {
            usage(argv[0]);
            return 1;
        }
    }
    if (seedPath.empty()) {
        usage(argv[0]);
        return 1;
    }

    const auto t0 = std::chrono::steady_clock::now();
    const ReplaySeed seed = readSeedFile(seedPath);
    const auto verdict = replaySeed(seed, withTimed);
    const double wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0).count();

    std::printf("replay_check: %s: %zu references, %zu scheme(s)\n",
                seedPath.c_str(), seed.trace.size(),
                seed.protocols.empty()
                    ? functionalCheckProtocols().size()
                    : seed.protocols.size());
    if (verdict) {
        std::printf("FAIL [%s] at step %zu (%s): %s\n",
                    verdict->protocol.c_str(), verdict->step,
                    verdict->kind.c_str(), verdict->detail.c_str());
    } else {
        std::printf("OK: all schemes agree on every read and on the "
                    "final memory image\n");
    }

    if (!jsonPath.empty()) {
        Json cell = Json::object();
        cell.set("section", "replay");
        cell.set("seed_file", seedPath);
        cell.set("refs",
                 static_cast<unsigned long long>(seed.trace.size()));
        cell.set("failed", verdict.has_value());
        if (verdict) {
            cell.set("protocol", verdict->protocol);
            cell.set("kind", verdict->kind);
            cell.set("step",
                     static_cast<unsigned long long>(verdict->step));
            cell.set("detail", verdict->detail);
        }
        Json cells = Json::array();
        cells.push(std::move(cell));
        Json summary = Json::object();
        summary.set("ok", verdict.has_value() == expectFail);
        Json artifact = makeCheckArtifact("replay_check", Json(),
                                          std::move(cells),
                                          std::move(summary));
        stampMeta(artifact, 1, wallMs, false);
        writeArtifact(jsonPath, artifact);
    }

    return verdict.has_value() == expectFail ? 0 : 1;
}
