/**
 * @file
 * Binary-trace converter and inspector (docs/TRACES.md).
 *
 *   trace_pack pack   IN.trc  OUT.d2t [--buffer BYTES]
 *   trace_pack unpack IN.d2t  OUT.trc
 *   trace_pack info   FILE.d2t [--blocks]
 *   trace_pack verify FILE.d2t
 *
 * `pack` converts the line-oriented text format (trace_io.hh) into
 * the mmap-able block format (trace_binary.hh); `unpack` goes the
 * other way, so any binary trace can be eyeballed or diffed.  `info`
 * prints the file header (and with --blocks every block header with
 * its digests) without touching record payload; `verify` recomputes
 * every digest layer and fails loudly on the first corrupt block.
 * Exits 0 on success; structural problems are fatal with a
 * diagnostic naming the offending offset or block.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "report/bench_cli.hh"
#include "trace/trace_binary.hh"
#include "trace/trace_io.hh"
#include "util/logging.hh"

using namespace dir2b;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s MODE ...\n"
        "  pack IN.trc OUT.d2t [--buffer BYTES]\n"
        "      convert a text trace to the binary block format\n"
        "      (--buffer: writer block size, k/m/g suffixes;\n"
        "      default 1M = 64Ki records per block)\n"
        "  unpack IN.d2t OUT.trc\n"
        "      convert a binary trace back to text\n"
        "  info FILE.d2t [--blocks]\n"
        "      print the file header; --blocks adds per-block\n"
        "      headers and digests (never reads record payload)\n"
        "  verify FILE.d2t\n"
        "      recompute every block/running/file digest\n",
        argv0);
}

int
doPack(const std::string &in, const std::string &out,
       std::uint64_t bufferBytes)
{
    std::ifstream is(in);
    if (!is)
        DIR2B_FATAL("cannot open '", in, "'");
    const std::vector<MemRef> refs = readTrace(is);

    std::uint32_t blockRecords = traceDefaultBlockRecords;
    if (bufferBytes) {
        const std::uint64_t recs =
            std::max<std::uint64_t>(1,
                                    bufferBytes / sizeof(TraceRecord));
        blockRecords = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(recs, 1u << 28));
    }
    TraceWriter w(out, blockRecords);
    w.append(refs.data(), refs.size());
    w.finish();
    std::printf("packed %llu records into %llu blocks (digest "
                "%016llx): %s\n",
                static_cast<unsigned long long>(w.recordsWritten()),
                static_cast<unsigned long long>(w.blocksWritten()),
                static_cast<unsigned long long>(w.fileDigest()),
                out.c_str());
    return 0;
}

int
doUnpack(const std::string &in, const std::string &out)
{
    TraceReader reader(in);
    std::vector<MemRef> refs;
    refs.reserve(static_cast<std::size_t>(reader.totalRecords()));
    for (std::size_t b = 0; b < reader.numBlocks(); ++b)
        for (const TraceRecord &rec : reader.block(b))
            refs.push_back(rec.toRef());
    std::ofstream os(out);
    if (!os)
        DIR2B_FATAL("cannot open '", out, "' for writing");
    writeTrace(os, refs);
    std::printf("unpacked %zu records: %s\n", refs.size(),
                out.c_str());
    return 0;
}

int
doInfo(const std::string &in, bool blocks)
{
    TraceReader reader(in);
    const TraceFileHeader &h = reader.header();
    std::printf("%-16s %.8s\n", "magic", h.magic);
    std::printf("%-16s %u\n", "version", h.version);
    std::printf("%-16s %08x\n", "endianTag", h.endianTag);
    std::printf("%-16s %u\n", "recordBytes", h.recordBytes);
    std::printf("%-16s %u\n", "blockRecords", h.blockRecords);
    std::printf("%-16s %u\n", "numProcs", h.numProcs);
    std::printf("%-16s %llu\n", "totalRecords",
                static_cast<unsigned long long>(h.totalRecords));
    std::printf("%-16s %llu\n", "numBlocks",
                static_cast<unsigned long long>(h.numBlocks));
    std::printf("%-16s %016llx\n", "fileDigest",
                static_cast<unsigned long long>(h.fileDigest));
    std::printf("%-16s %zu\n", "mappedBytes", reader.mappedBytes());
    if (blocks) {
        std::printf("%8s %10s %12s %16s %16s\n", "block", "records",
                    "firstIndex", "blockDigest", "runningDigest");
        for (std::size_t b = 0; b < reader.numBlocks(); ++b) {
            const TraceBlockHeader &bh = reader.blockHeader(b);
            std::printf(
                "%8zu %10u %12llu %016llx %016llx\n", b, bh.records,
                static_cast<unsigned long long>(bh.firstIndex),
                static_cast<unsigned long long>(bh.blockDigest),
                static_cast<unsigned long long>(bh.runningDigest));
        }
    }
    return 0;
}

int
doVerify(const std::string &in)
{
    TraceReader reader(in);
    const std::uint64_t digest = reader.verify();
    std::printf("verified %llu records in %zu blocks (digest "
                "%016llx): %s\n",
                static_cast<unsigned long long>(reader.totalRecords()),
                reader.numBlocks(),
                static_cast<unsigned long long>(digest), in.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(argv[0]);
        return 1;
    }
    const std::string mode = argv[1];
    if (mode == "--help" || mode == "-h") {
        usage(argv[0]);
        return 0;
    }

    std::vector<std::string> paths;
    std::uint64_t bufferBytes = 0;
    bool blocks = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--buffer") {
            if (++i >= argc)
                DIR2B_FATAL("missing value for --buffer");
            bufferBytes = parseByteSize(argv[i], "--buffer");
        } else if (arg == "--blocks") {
            blocks = true;
        } else if (!arg.empty() && arg[0] == '-') {
            usage(argv[0]);
            DIR2B_FATAL("unknown option '", arg, "'");
        } else {
            paths.push_back(arg);
        }
    }

    if (mode == "pack") {
        if (paths.size() != 2)
            DIR2B_FATAL("pack wants IN.trc OUT.d2t");
        return doPack(paths[0], paths[1], bufferBytes);
    }
    if (mode == "unpack") {
        if (paths.size() != 2)
            DIR2B_FATAL("unpack wants IN.d2t OUT.trc");
        return doUnpack(paths[0], paths[1]);
    }
    if (mode == "info") {
        if (paths.size() != 1)
            DIR2B_FATAL("info wants FILE.d2t");
        return doInfo(paths[0], blocks);
    }
    if (mode == "verify") {
        if (paths.size() != 1)
            DIR2B_FATAL("verify wants FILE.d2t");
        return doVerify(paths[0]);
    }
    usage(argv[0]);
    DIR2B_FATAL("unknown mode '", mode, "'");
}
