/**
 * @file
 * Human-readable view of a dir2b.series artifact.
 *
 *   series_dump FILE [--metric NAME]... [--list] [--json]
 *               [--phase-threshold F]
 *
 * Prints a per-interval table — counters as per-interval deltas
 * (rates), gauges as sampled levels — followed by a phase-boundary
 * report: sample boundaries where some counter's rate changed by more
 * than the threshold (relative change against the larger of the two
 * rates, default 0.5) are flagged with the most-changed metric.  That
 * is usually enough to spot warm-up ending, a working set shifting,
 * or the directory store starting to spill.
 *
 * --metric NAME (repeatable) restricts the table's columns (exact
 * names; --list shows what the artifact carries).  The phase report
 * always scans every counter.  --json re-emits the derived view
 * (rates, phases) as machine-readable JSON on stdout.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/telemetry.hh"
#include "report/report.hh"

namespace
{

using dir2b::Json;

[[noreturn]] void
fail(const std::string &msg)
{
    std::fprintf(stderr, "series_dump: %s\n", msg.c_str());
    std::exit(1);
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s FILE [options]\n"
        "\n"
        "Print a dir2b.series time-series artifact (docs/METRICS.md)\n"
        "as a per-interval table plus a phase-boundary report.\n"
        "  --metric NAME        only this column (repeatable)\n"
        "  --list               list metric names and kinds, exit\n"
        "  --json               emit the derived view as JSON\n"
        "  --phase-threshold F  relative rate change that counts as a\n"
        "                       phase boundary (default 0.5)\n",
        argv0);
}

/** The artifact, decoded into flat vectors. */
struct Series
{
    std::string bench;
    std::string domain;
    std::uint64_t interval = 0;
    std::vector<std::string> names;
    std::vector<bool> isCounter;
    std::vector<std::uint64_t> t;           ///< per sample
    std::vector<std::uint64_t> v;           ///< samples x metrics
    std::size_t samples = 0;

    std::uint64_t
    value(std::size_t s, std::size_t m) const
    {
        return v[s * names.size() + m];
    }

    /** Counter delta over sample s (s=0: since zero); gauge level. */
    std::uint64_t
    cell(std::size_t s, std::size_t m) const
    {
        if (!isCounter[m])
            return value(s, m);
        return s ? value(s, m) - value(s - 1, m) : value(s, m);
    }
};

Series
decode(const Json &a)
{
    Series out;
    out.bench = a.at("bench").asString();
    const Json &ser = a.at("series");
    out.domain = ser.at("domain").asString();
    out.interval = ser.at("interval").asUint();
    const Json &metrics = ser.at("metrics");
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        out.names.push_back(metrics.at(i).at("name").asString());
        out.isCounter.push_back(
            metrics.at(i).at("kind").asString() == "counter");
    }
    const Json &rows = ser.at("samples");
    out.samples = rows.size();
    for (std::size_t s = 0; s < rows.size(); ++s) {
        const Json &row = rows.at(s);
        out.t.push_back(row.at(0).asUint());
        for (std::size_t m = 0; m < out.names.size(); ++m)
            out.v.push_back(row.at(m + 1).asUint());
    }
    return out;
}

/** One detected phase boundary. */
struct Phase
{
    std::size_t sample;   ///< the sample where the new rate holds
    std::size_t metric;   ///< most-changed counter
    std::uint64_t before; ///< rate over the previous interval
    std::uint64_t after;  ///< rate over this interval
    double change;        ///< relative change in [0,1]
};

/**
 * Scan every counter's per-interval rate for relative changes above
 * `threshold`.  Tiny rates (both sides < 16/interval) are ignored so
 * sparse counters don't flag noise.  Deterministic: pure integer
 * comparisons plus one final division for the report.
 */
std::vector<Phase>
detectPhases(const Series &s, double threshold)
{
    std::vector<Phase> out;
    for (std::size_t i = 1; i < s.samples; ++i) {
        Phase best{};
        bool found = false;
        for (std::size_t m = 0; m < s.names.size(); ++m) {
            if (!s.isCounter[m])
                continue;
            const std::uint64_t before = s.cell(i - 1, m);
            const std::uint64_t after = s.cell(i, m);
            const std::uint64_t hi = std::max(before, after);
            const std::uint64_t lo = std::min(before, after);
            if (hi < 16)
                continue;
            const double change =
                static_cast<double>(hi - lo) / static_cast<double>(hi);
            if (change < threshold)
                continue;
            if (!found || change > best.change) {
                best = {i, m, before, after, change};
                found = true;
            }
        }
        if (found)
            out.push_back(best);
    }
    return out;
}

void
printTable(const Series &s, const std::vector<std::size_t> &cols)
{
    std::vector<int> widths;
    std::printf("%12s", s.domain == "refs" ? "refs" : "tick");
    for (std::size_t m : cols) {
        const int w = std::max<int>(
            12, static_cast<int>(s.names[m].size()) + 2);
        widths.push_back(w);
        std::printf("%*s", w, s.names[m].c_str());
    }
    std::printf("\n");
    for (std::size_t i = 0; i < s.samples; ++i) {
        std::printf("%12llu",
                    static_cast<unsigned long long>(s.t[i]));
        for (std::size_t c = 0; c < cols.size(); ++c)
            std::printf("%*llu", widths[c],
                        static_cast<unsigned long long>(
                            s.cell(i, cols[c])));
        std::printf("\n");
    }
    std::printf("(counters shown as per-interval deltas, gauges as "
                "levels)\n");
}

Json
jsonView(const Series &s, const std::vector<std::size_t> &cols,
         const std::vector<Phase> &phases)
{
    Json out = Json::object();
    out.set("bench", s.bench);
    out.set("domain", s.domain);
    out.set("interval",
            static_cast<unsigned long long>(s.interval));
    Json jm = Json::array();
    for (std::size_t m : cols) {
        Json one = Json::object();
        one.set("name", s.names[m]);
        one.set("kind", s.isCounter[m] ? "counter" : "gauge");
        jm.push(std::move(one));
    }
    out.set("metrics", std::move(jm));
    Json rows = Json::array();
    for (std::size_t i = 0; i < s.samples; ++i) {
        Json row = Json::array();
        row.push(static_cast<unsigned long long>(s.t[i]));
        for (std::size_t m : cols)
            row.push(static_cast<unsigned long long>(s.cell(i, m)));
        rows.push(std::move(row));
    }
    out.set("rows", std::move(rows));
    Json jp = Json::array();
    for (const Phase &p : phases) {
        Json one = Json::object();
        one.set("t", static_cast<unsigned long long>(s.t[p.sample]));
        one.set("metric", s.names[p.metric]);
        one.set("before",
                static_cast<unsigned long long>(p.before));
        one.set("after", static_cast<unsigned long long>(p.after));
        one.set("change", p.change);
        jp.push(std::move(one));
    }
    out.set("phases", std::move(jp));
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    std::vector<std::string> wantMetrics;
    bool list = false;
    bool json = false;
    double threshold = 0.5;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fail(std::string(flag) + " requires an argument");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--metric") {
            wantMetrics.push_back(value("--metric"));
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--phase-threshold") {
            threshold = std::atof(value("--phase-threshold").c_str());
            if (threshold <= 0.0 || threshold > 1.0)
                fail("--phase-threshold wants a value in (0, 1]");
        } else if (!arg.empty() && arg[0] == '-') {
            fail("unknown option '" + arg + "' (see --help)");
        } else if (path.empty()) {
            path = arg;
        } else {
            fail("unexpected extra argument '" + arg + "'");
        }
    }
    if (path.empty())
        fail("no artifact file given (see --help)");

    const Json a = dir2b::readArtifact(path);
    const std::string err = dir2b::validateSeriesArtifact(a);
    if (!err.empty())
        fail(path + ": " + err);
    const Series s = decode(a);

    if (list) {
        for (std::size_t m = 0; m < s.names.size(); ++m)
            std::printf("%-32s %s\n", s.names[m].c_str(),
                        s.isCounter[m] ? "counter" : "gauge");
        return 0;
    }

    std::vector<std::size_t> cols;
    if (wantMetrics.empty()) {
        for (std::size_t m = 0; m < s.names.size(); ++m)
            cols.push_back(m);
    } else {
        for (const std::string &w : wantMetrics) {
            const auto it =
                std::find(s.names.begin(), s.names.end(), w);
            if (it == s.names.end())
                fail("no metric '" + w + "' in " + path +
                     " (try --list)");
            cols.push_back(static_cast<std::size_t>(
                it - s.names.begin()));
        }
    }

    const std::vector<Phase> phases = detectPhases(s, threshold);

    if (json) {
        std::printf("%s\n", jsonView(s, cols, phases).dump().c_str());
        return 0;
    }

    std::printf("# %s: %s-domain series, interval %llu, %zu samples, "
                "%zu metrics\n",
                s.bench.c_str(), s.domain.c_str(),
                static_cast<unsigned long long>(s.interval),
                s.samples, s.names.size());
    printTable(s, cols);
    if (phases.empty()) {
        std::printf("\nno phase boundaries above %.0f%% rate change\n",
                    100.0 * threshold);
    } else {
        std::printf("\nphase boundaries (>%.0f%% rate change):\n",
                    100.0 * threshold);
        for (const Phase &p : phases)
            std::printf("  t=%llu  %s rate %llu -> %llu (%+.0f%%)\n",
                        static_cast<unsigned long long>(s.t[p.sample]),
                        s.names[p.metric].c_str(),
                        static_cast<unsigned long long>(p.before),
                        static_cast<unsigned long long>(p.after),
                        100.0 *
                            (p.after >= p.before ? p.change
                                                 : -p.change));
    }
    return 0;
}
