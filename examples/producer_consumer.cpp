/**
 * @file
 * Example: a producer-consumer pipeline under four coherence schemes.
 *
 * One processor produces into a ring of shared buffer blocks; the
 * other processors consume.  This is the structured read-sharing
 * pattern the paper's introduction motivates ("processors used
 * cooperatively on a common application"), and it splits the schemes
 * cleanly:
 *
 *   - the two-bit scheme broadcasts on every producer write that hits
 *     consumer copies (Present* -> PresentM transitions);
 *   - the translation buffer recovers almost all of that (the buffer
 *     learns the consumer set);
 *   - the full map is the directed-message reference;
 *   - the classical scheme pays a broadcast for *every single write*.
 */

#include <cstdio>
#include <memory>

#include "proto/protocol_factory.hh"
#include "system/func_system.hh"
#include "trace/workloads.hh"

using namespace dir2b;

namespace
{

void
run(const char *name, ProcId n, std::uint64_t refs)
{
    ProtoConfig cfg;
    cfg.numProcs = n;
    cfg.cacheGeom.sets = 32;
    cfg.cacheGeom.ways = 4;
    cfg.numModules = 4;
    cfg.tbCapacity = 64;
    auto protocol = makeProtocol(name, cfg);

    WorkloadConfig wcfg;
    wcfg.numProcs = n;
    wcfg.sharedBlocks = 32;
    wcfg.privateBlocks = 64;
    wcfg.privateFraction = 0.5;
    wcfg.seed = 3;
    ProducerConsumerWorkload stream(wcfg);

    RunOptions opts;
    opts.numRefs = refs;
    const RunResult r = runFunctional(*protocol, stream, opts);

    const auto &c = r.counts;
    const double k = 1000.0 / static_cast<double>(refs);
    std::printf("  %-12s msgs/kref %8.1f  useless/kref %8.1f  "
                "inval/kref %6.1f  stolen/kref %8.1f\n",
                name, c.netMessages * k, c.uselessCmds * k,
                c.invalidations * k, c.stolenCycles * k);
}

} // namespace

int
main()
{
    constexpr std::uint64_t refs = 400000;
    std::printf("producer-consumer pipeline, 1 producer + (n-1) "
                "consumers, %llu refs\n\n",
                static_cast<unsigned long long>(refs));
    for (ProcId n : {4u, 8u, 16u}) {
        std::printf("n = %u processors:\n", n);
        for (const char *name :
             {"two_bit", "two_bit_tb", "full_map", "classical"}) {
            run(name, n, refs);
        }
        std::printf("\n");
    }
    std::printf(
        "Reading: the two-bit gap to full_map is the price of losing\n"
        "owner identities; two_bit_tb closes it; classical's message\n"
        "count dwarfs everyone because every store broadcasts.\n");
    return 0;
}
