/**
 * @file
 * dir2bsim — command-line driver for the dir2b simulator.
 *
 * Runs any of the nine protocols over a synthetic workload or a
 * recorded trace and dumps the full counter set; can also record
 * traces for replay, sweep a processor-count grid in parallel, and
 * export machine-readable JSON artifacts (docs/METRICS.md).  This is
 * the tool a user reaches for before writing code against the
 * library.
 *
 * Usage examples:
 *
 *   dir2bsim --protocol two_bit --procs 8 --refs 1000000
 *   dir2bsim --protocol full_map --q 0.1 --w 0.4 --refs 500000
 *   dir2bsim --protocol two_bit_tb --tb 64 --refs 200000
 *   dir2bsim --protocol two_bit --sweep-procs 2,4,8,16 --threads 4
 *   dir2bsim --protocol two_bit --json run.json
 *   dir2bsim --record /tmp/t.trc --refs 10000
 *   dir2bsim --trace /tmp/t.trc --protocol classical
 *   dir2bsim --timed --protocol tb --procs 8 --refs 20000
 *   dir2bsim --timed --shards 4 --protocol fm --refs 20000
 *   dir2bsim --list-protocols
 *
 * --timed switches from the functional tier to the discrete-event
 * tier (latencies, contention, the coherence oracle on every
 * completion); there --refs counts references PER PROCESSOR and
 * --shards N > 1 partitions the run by directory home across worker
 * threads with bit-identical statistics (docs/ARCHITECTURE.md).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "obs/telemetry.hh"
#include "proto/protocol_factory.hh"
#include "report/bench_cli.hh"
#include "report/report.hh"
#include "system/func_system.hh"
#include "system/func_telemetry.hh"
#include "timed/sharded_system.hh"
#include "trace/synthetic.hh"
#include "trace/trace_binary.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

using namespace dir2b;

namespace
{

struct Options
{
    std::string protocol = "two_bit";
    std::string tracePath;
    std::string recordPath;
    std::string traceInPath;
    std::string traceOutPath;
    std::uint64_t traceBufferBytes = 0; ///< 0 = format default
    bool procsSet = false;
    bool refsSet = false;
    std::string jsonPath;
    std::string seriesPath;
    std::uint64_t seriesInterval = 0; ///< 0 = sampling off
    bool progress = false;
    std::vector<ProcId> sweepProcs;
    unsigned threads = 0;
    ProcId procs = 4;
    std::size_t sets = 32;
    std::size_t ways = 4;
    ModuleId modules = 4;
    std::size_t tbCapacity = 0;
    std::size_t biasCapacity = 0;
    double q = 0.05;
    double w = 0.2;
    std::size_t sharedBlocks = 16;
    double locality = 0.9;
    std::uint64_t refs = 100000;
    std::uint64_t seed = 1;
    bool noOracle = false;
    bool invariants = false;
    bool analyze = false;
    bool timed = false;
    unsigned shards = 1;
    std::uint64_t dirRamBudget = 0;
    std::uint64_t spaceBlocks = 0;
    std::uint64_t think = 1;
    bool fastForward = true;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --protocol NAME     scheme to run (--list-protocols)\n"
        "  --procs N           processor-cache pairs (default 4)\n"
        "  --sets N --ways N   cache geometry (default 32x4)\n"
        "  --modules N         memory modules (default 4)\n"
        "  --tb N              translation-buffer entries/module\n"
        "  --bias N            BIAS filter entries (classical)\n"
        "  --q F --w F         sharing level and write fraction\n"
        "  --shared N          number of shared blocks (default 16)\n"
        "  --locality F        shared re-reference probability\n"
        "  --refs N            references to simulate\n"
        "  --seed N            workload seed\n"
        "  --trace FILE        replay a recorded text trace\n"
        "  --record FILE       record the workload as text instead of\n"
        "                      running\n"
        "  --trace-in FILE     mmap-replay a binary trace (zero-copy\n"
        "                      batched dispatch; docs/TRACES.md).\n"
        "                      Works with --timed and --shards too;\n"
        "                      results are bit-identical to the run\n"
        "                      that recorded the stream\n"
        "  --trace-out FILE    record the synthetic workload as a\n"
        "                      binary trace instead of running\n"
        "  --trace-buffer BYTES\n"
        "                      writer block size for --trace-out\n"
        "                      (suffixes k/m/g; default 1M = 64Ki\n"
        "                      records per block)\n"
        "  --json FILE         export results as a JSON artifact\n"
        "                      (schema: docs/METRICS.md)\n"
        "  --series-out FILE   record a dir2b.series time-series\n"
        "                      artifact (docs/METRICS.md); sampling\n"
        "                      never changes simulation results\n"
        "  --series-interval N sample every N refs (functional) or N\n"
        "                      ticks (--timed); suffixes k/m/g.\n"
        "                      Default 4096 when sampling is on\n"
        "  --progress          live progress line on stderr (refs/s,\n"
        "                      ETA, interval rates); implies sampling\n"
        "  --sweep-procs LIST  run once per comma-separated processor\n"
        "                      count (e.g. 2,4,8), cells in parallel\n"
        "  --threads N         sweep-pool width (default: the\n"
        "                      DIR2B_THREADS env var, else all cores)\n"
        "  --no-oracle         skip coherence checking (faster)\n"
        "  --analyze           print trace statistics, don't simulate\n"
        "  --invariants        deep-check structures every 1k refs\n"
        "  --timed             run the discrete-event tier instead\n"
        "                      (protocols tb|fm|yf; --refs is per\n"
        "                      processor there)\n"
        "  --shards N          with --timed: shard the run by home\n"
        "                      across N wheels/threads (default 1;\n"
        "                      statistics are bit-identical)\n"
        "  --dir-ram-budget BYTES\n"
        "                      total directory RAM budget (suffixes\n"
        "                      K/M/G); cold directory pages compress\n"
        "                      and spill to disk past it.  0 =\n"
        "                      unlimited.  Results are bit-identical\n"
        "                      at any budget\n"
        "  --space-blocks N    hash-scatter the synthetic working set\n"
        "                      over an N-block address space (0 =\n"
        "                      classic compact layout) — exercises\n"
        "                      huge sparse directories\n"
        "  --think N           with --timed: processor think time\n"
        "                      between references (default 1)\n"
        "  --no-fast-forward   with --timed --shards N: disable the\n"
        "                      quiescent-epoch fast-forward (A/B\n"
        "                      knob; statistics are identical)\n"
        "  --list-protocols    print registered protocol names\n",
        argv0);
}

Options
parse(int argc, char **argv)
{
    Options o;
    auto need = [&](int &i) -> const char * {
        if (++i >= argc)
            DIR2B_FATAL("missing value for ", argv[i - 1]);
        return argv[i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--protocol") {
            o.protocol = need(i);
        } else if (arg == "--procs") {
            o.procs = static_cast<ProcId>(std::atoi(need(i)));
            o.procsSet = true;
        } else if (arg == "--sets") {
            o.sets = static_cast<std::size_t>(std::atoll(need(i)));
        } else if (arg == "--ways") {
            o.ways = static_cast<std::size_t>(std::atoll(need(i)));
        } else if (arg == "--modules") {
            o.modules = static_cast<ModuleId>(std::atoi(need(i)));
        } else if (arg == "--tb") {
            o.tbCapacity = static_cast<std::size_t>(
                std::atoll(need(i)));
        } else if (arg == "--bias") {
            o.biasCapacity = static_cast<std::size_t>(
                std::atoll(need(i)));
        } else if (arg == "--q") {
            o.q = std::atof(need(i));
        } else if (arg == "--w") {
            o.w = std::atof(need(i));
        } else if (arg == "--shared") {
            o.sharedBlocks = static_cast<std::size_t>(
                std::atoll(need(i)));
        } else if (arg == "--locality") {
            o.locality = std::atof(need(i));
        } else if (arg == "--refs") {
            o.refs = static_cast<std::uint64_t>(std::atoll(need(i)));
            o.refsSet = true;
        } else if (arg == "--seed") {
            o.seed = static_cast<std::uint64_t>(std::atoll(need(i)));
        } else if (arg == "--trace") {
            o.tracePath = need(i);
        } else if (arg == "--record") {
            o.recordPath = need(i);
        } else if (arg == "--trace-in") {
            o.traceInPath = need(i);
        } else if (arg == "--trace-out") {
            o.traceOutPath = need(i);
        } else if (arg == "--trace-buffer") {
            o.traceBufferBytes = parseByteSize(need(i),
                                               "--trace-buffer");
        } else if (arg == "--json") {
            o.jsonPath = need(i);
        } else if (arg == "--series-out") {
            o.seriesPath = need(i);
        } else if (arg == "--series-interval") {
            o.seriesInterval = parseInterval(need(i),
                                             "--series-interval");
        } else if (arg == "--progress") {
            o.progress = true;
        } else if (arg == "--sweep-procs") {
            std::string list = need(i);
            for (std::size_t pos = 0; pos < list.size();) {
                const std::size_t comma = list.find(',', pos);
                const std::string tok = list.substr(
                    pos, comma == std::string::npos ? comma
                                                    : comma - pos);
                const int v = std::atoi(tok.c_str());
                if (v <= 0)
                    DIR2B_FATAL("--sweep-procs: bad count '", tok, "'");
                o.sweepProcs.push_back(static_cast<ProcId>(v));
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
            if (o.sweepProcs.empty())
                DIR2B_FATAL("--sweep-procs: empty list");
        } else if (arg == "--threads") {
            const long v = std::atol(need(i));
            if (v <= 0)
                DIR2B_FATAL("--threads wants a positive integer");
            o.threads = static_cast<unsigned>(v);
        } else if (arg == "--no-oracle") {
            o.noOracle = true;
        } else if (arg == "--timed") {
            o.timed = true;
        } else if (arg == "--shards") {
            const long v = std::atol(need(i));
            if (v <= 0)
                DIR2B_FATAL("--shards wants a positive integer");
            o.shards = static_cast<unsigned>(v);
        } else if (arg == "--dir-ram-budget") {
            o.dirRamBudget = parseByteSize(need(i),
                                           "--dir-ram-budget");
        } else if (arg == "--space-blocks") {
            o.spaceBlocks = static_cast<std::uint64_t>(
                std::strtoull(need(i), nullptr, 10));
        } else if (arg == "--think") {
            o.think = static_cast<std::uint64_t>(
                std::strtoull(need(i), nullptr, 10));
        } else if (arg == "--no-fast-forward") {
            o.fastForward = false;
        } else if (arg == "--analyze") {
            o.analyze = true;
        } else if (arg == "--invariants") {
            o.invariants = true;
        } else if (arg == "--list-protocols") {
            for (const auto &name : protocolNames())
                std::printf("%s\n", name.c_str());
            std::exit(0);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            std::exit(0);
        } else {
            usage(argv[0]);
            DIR2B_FATAL("unknown option '", arg, "'");
        }
    }
    if (o.threads)
        setDefaultThreadCount(o.threads);
    return o;
}

std::unique_ptr<RefStream>
makeStream(const Options &o, ProcId procs)
{
    if (!o.tracePath.empty()) {
        std::ifstream in(o.tracePath);
        if (!in)
            DIR2B_FATAL("cannot open trace '", o.tracePath, "'");
        return std::make_unique<VectorStream>(readTrace(in));
    }
    SyntheticConfig cfg;
    cfg.numProcs = procs;
    cfg.q = o.q;
    cfg.w = o.w;
    cfg.sharedBlocks = o.sharedBlocks;
    cfg.sharedLocality = o.locality;
    cfg.privateBlocks = 96;
    cfg.hotBlocks = 24;
    cfg.seed = o.seed;
    cfg.spaceBlocks = o.spaceBlocks;
    return std::make_unique<SyntheticStream>(cfg);
}

ProtoConfig
protoConfig(const Options &o, ProcId procs)
{
    ProtoConfig cfg;
    cfg.numProcs = procs;
    cfg.cacheGeom.sets = o.sets;
    cfg.cacheGeom.ways = o.ways;
    cfg.numModules = o.modules;
    cfg.tbCapacity = o.tbCapacity;
    cfg.biasCapacity = o.biasCapacity;
    cfg.nonCacheableBase = sharedRegionBase;
    cfg.dirRamBudget = o.dirRamBudget;
    return cfg;
}

Json
configJson(const Options &o)
{
    Json p = Json::object();
    p.set("protocol", o.protocol);
    p.set("sets", static_cast<unsigned long long>(o.sets));
    p.set("ways", static_cast<unsigned long long>(o.ways));
    p.set("modules", static_cast<unsigned>(o.modules));
    p.set("q", o.q);
    p.set("w", o.w);
    p.set("sharedBlocks",
          static_cast<unsigned long long>(o.sharedBlocks));
    p.set("locality", o.locality);
    p.set("refs", static_cast<unsigned long long>(o.refs));
    p.set("seed", static_cast<unsigned long long>(o.seed));
    p.set("dirRamBudget",
          static_cast<unsigned long long>(o.dirRamBudget));
    p.set("spaceBlocks",
          static_cast<unsigned long long>(o.spaceBlocks));
    return p;
}

/** Sampling is on when any series flag is given. */
bool
samplingRequested(const Options &o)
{
    return o.seriesInterval || !o.seriesPath.empty() || o.progress;
}

/** The sample interval, defaulting to 4096 domain units. */
std::uint64_t
effectiveInterval(const Options &o)
{
    return o.seriesInterval ? o.seriesInterval : 4096;
}

/**
 * Series params: the deterministic run configuration only.  Host
 * knobs (shards, threads) and bit-identical A/B knobs (fastForward)
 * are deliberately excluded so serial and sharded runs of the same
 * configuration emit byte-identical artifacts (docs/METRICS.md).
 */
Json
seriesParams(const Options &o)
{
    Json p = configJson(o);
    if (o.timed) {
        p.set("timed", true);
        p.set("think", static_cast<unsigned long long>(o.think));
    }
    return p;
}

void
writeSeries(const Options &o, const TelemetrySampler &s)
{
    if (o.seriesPath.empty())
        return;
    writeArtifact(o.seriesPath,
                  makeSeriesArtifact("dir2bsim", seriesParams(o), s));
    std::printf("wrote %s (%zu samples)\n", o.seriesPath.c_str(),
                s.samples());
}

/** The v4 "traceReplay" provenance object for a replayed cell. */
Json
traceReplayJson(const TraceReader &reader, bool batched)
{
    Json t = Json::object();
    t.set("records",
          static_cast<unsigned long long>(reader.totalRecords()));
    t.set("blocks",
          static_cast<unsigned long long>(reader.numBlocks()));
    t.set("blockRecords", reader.header().blockRecords);
    t.set("mappedBytes",
          static_cast<unsigned long long>(reader.mappedBytes()));
    t.set("batched", batched);
    return t;
}

/** --trace-out: record the workload as a binary trace and exit. */
int
recordBinary(const Options &o)
{
    if (!o.traceInPath.empty() || !o.recordPath.empty())
        DIR2B_FATAL("--trace-out excludes --trace-in/--record");
    auto stream = makeStream(o, o.procs);
    std::uint32_t blockRecords = traceDefaultBlockRecords;
    if (o.traceBufferBytes) {
        const std::uint64_t recs =
            std::max<std::uint64_t>(1, o.traceBufferBytes /
                                           sizeof(TraceRecord));
        blockRecords = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(recs, 1u << 28));
    }
    TraceWriter w(o.traceOutPath, blockRecords);
    for (std::uint64_t n = 0; n < o.refs; ++n) {
        const auto r = stream->next();
        if (!r)
            break;
        w.append(*r);
    }
    w.finish();
    std::printf("recorded %llu references (%llu blocks, digest "
                "%016llx) to %s\n",
                static_cast<unsigned long long>(w.recordsWritten()),
                static_cast<unsigned long long>(w.blocksWritten()),
                static_cast<unsigned long long>(w.fileDigest()),
                o.traceOutPath.c_str());
    return 0;
}

int
runSweep(const Options &o)
{
    if (!o.tracePath.empty())
        DIR2B_FATAL("--sweep-procs runs synthetic workloads only");
    if (samplingRequested(o))
        DIR2B_FATAL("--series-out/--series-interval/--progress sample "
                    "a single run, not a --sweep-procs grid");

    const auto start = std::chrono::steady_clock::now();
    struct Cell
    {
        unsigned bits = 0;
        RunResult result;
        DirStoreCounters dirStore;
    };
    std::vector<Cell> cells(o.sweepProcs.size());
    parallelFor(
        0, cells.size(),
        [&](std::size_t i) {
            const ProcId procs = o.sweepProcs[i];
            auto proto = makeProtocol(o.protocol,
                                      protoConfig(o, procs));
            auto stream = makeStream(o, procs);
            RunOptions opts;
            opts.numRefs = o.refs;
            opts.checkCoherence = !o.noOracle;
            opts.invariantEvery = o.invariants ? 1000 : 0;
            cells[i].result = runFunctional(*proto, *stream, opts);
            cells[i].bits = proto->directoryBitsPerBlock();
            cells[i].dirStore = proto->dirStoreCounters();
        },
        o.threads);

    std::printf("# dir2bsim sweep: protocol=%s refs/cell=%llu "
                "threads=%u\n",
                o.protocol.c_str(),
                static_cast<unsigned long long>(o.refs),
                o.threads ? o.threads : defaultThreadCount());
    std::printf("%6s %10s %10s %12s %12s %10s\n", "procs", "netMsg",
                "useless", "inval", "perCacheOvh", "miss%");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &c = cells[i].result.counts;
        std::printf("%6u %10llu %10llu %12llu %12.4f %9.2f%%\n",
                    o.sweepProcs[i],
                    static_cast<unsigned long long>(c.netMessages),
                    static_cast<unsigned long long>(c.uselessCmds),
                    static_cast<unsigned long long>(c.invalidations),
                    cells[i].result.perCacheUselessPerRef,
                    100.0 * c.missRatio());
    }

    if (!o.jsonPath.empty()) {
        Json jcells = Json::array();
        for (std::size_t i = 0; i < cells.size(); ++i) {
            Json c = Json::object();
            c.set("section", "sweep");
            c.set("procs", o.sweepProcs[i]);
            c.set("dirBitsPerBlock", cells[i].bits);
            c.set("result", runResultToJson(cells[i].result));
            if (hasDirStore(cells[i].dirStore))
                c.set("dirStore", dirStoreJson(cells[i].dirStore));
            jcells.push(std::move(c));
        }
        Json artifact = makeSweepArtifact("dir2bsim", configJson(o),
                                          std::move(jcells));
        const auto wall =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        stampMeta(artifact,
                  o.threads ? o.threads : defaultThreadCount(), wall,
                  false);
        writeArtifact(o.jsonPath, artifact);
        std::printf("wrote %s (%zu cells)\n", o.jsonPath.c_str(),
                    cells.size());
    }
    return 0;
}

int
runTimed(Options o)
{
    if (!o.tracePath.empty() || !o.recordPath.empty() || o.analyze)
        DIR2B_FATAL("--timed runs synthetic workloads or binary "
                    "trace replay (--trace-in) only");

    std::unique_ptr<TraceReader> reader;
    if (!o.traceInPath.empty())
        reader = std::make_unique<TraceReader>(o.traceInPath);
    ProcId procs = o.procs;
    if (reader && !o.procsSet && reader->header().numProcs)
        procs = static_cast<ProcId>(reader->header().numProcs);
    std::uint64_t refsPerProc = o.refs;
    if (reader && !o.refsSet)
        refsPerProc = reader->totalRecords() / std::max<ProcId>(1, procs);
    // Echo the effective replay geometry (possibly trace-derived) in
    // the artifact's params block.
    o.procs = procs;
    o.refs = refsPerProc;

    TimedConfig cfg;
    if (o.protocol == "two_bit" || o.protocol == "tb")
        cfg.protocol = TimedProto::TwoBit;
    else if (o.protocol == "full_map" || o.protocol == "fm")
        cfg.protocol = TimedProto::FullMap;
    else if (o.protocol == "yen_fu" || o.protocol == "yf")
        cfg.protocol = TimedProto::YenFu;
    else
        DIR2B_FATAL("--timed knows two_bit|full_map|yen_fu "
                    "(tb|fm|yf), not '", o.protocol, "'");
    cfg.numProcs = procs;
    cfg.numModules = o.modules;
    cfg.cacheGeom.sets = o.sets;
    cfg.cacheGeom.ways = o.ways;
    cfg.perBlockConcurrency = true;
    cfg.network = NetKind::Crossbar;
    cfg.dirRamBudget = o.dirRamBudget;
    cfg.thinkTime = o.think;
    cfg.fastForward = o.fastForward;

    SyntheticConfig scfg;
    scfg.numProcs = procs;
    scfg.q = o.q;
    scfg.w = o.w;
    scfg.sharedBlocks = o.sharedBlocks;
    scfg.sharedLocality = o.locality;
    scfg.privateBlocks = 96;
    scfg.hotBlocks = 24;
    scfg.seed = o.seed;
    scfg.spaceBlocks = o.spaceBlocks;
    SyntheticStream stream(scfg);
    std::unique_ptr<TraceProcSource> procSrc;
    if (reader)
        procSrc = std::make_unique<TraceProcSource>(*reader, procs);

    std::unique_ptr<TelemetrySampler> sampler;
    std::unique_ptr<ProgressMeter> meter;
    if (samplingRequested(o)) {
        sampler = std::make_unique<TelemetrySampler>(
            SeriesDomain::Ticks, effectiveInterval(o));
        if (o.progress) {
            meter = std::make_unique<ProgressMeter>(
                refsPerProc * procs);
            sampler->attachProgress(meter.get());
        }
        cfg.sampler = sampler.get();
    }

    const auto start = std::chrono::steady_clock::now();
    const TimedRunResult r = runTimedWorkload(
        cfg, o.shards, o.threads,
        [&](ProcId p) -> std::optional<MemRef> {
            return procSrc ? procSrc->next(p) : stream.nextFor(p);
        },
        refsPerProc);

    std::printf("# dir2bsim timed: protocol=%s procs=%u cache=%zux%zu "
                "modules=%u shards=%u refs/proc=%llu%s\n",
                o.protocol.c_str(), procs, o.sets, o.ways, o.modules,
                o.shards,
                static_cast<unsigned long long>(refsPerProc),
                reader ? " (binary trace replay)" : "");
    std::printf("%-24s %12llu\n", "cycles",
                static_cast<unsigned long long>(r.finalTick));
    std::printf("%-24s %12llu\n", "refsCompleted",
                static_cast<unsigned long long>(r.refsCompleted));
    std::printf("%-24s %12llu\n", "eventsExecuted",
                static_cast<unsigned long long>(r.eventsExecuted));
    std::printf("%-24s %12.2f\n", "avgLatency", r.avgLatency);
    std::printf("%-24s %12llu\n", "latencyP99",
                static_cast<unsigned long long>(r.latencyP99));
    std::printf("%-24s %12llu\n", "netMessages",
                static_cast<unsigned long long>(r.netMessages));
    std::printf("%-24s %12llu\n", "broadcasts",
                static_cast<unsigned long long>(r.broadcasts));
    std::printf("%-24s %12llu\n", "netWaitCycles",
                static_cast<unsigned long long>(r.netWaitCycles));
    std::printf("%-24s %12llu\n", "stolenCycles",
                static_cast<unsigned long long>(r.stolenCycles));
    if (o.shards > 1) {
        std::printf("%-24s %12llu\n", "epochs",
                    static_cast<unsigned long long>(r.epochs));
        std::printf("%-24s %12llu\n", "inlineEpochs",
                    static_cast<unsigned long long>(r.inlineEpochs));
        std::printf("%-24s %12llu\n", "shardEpochsSkipped",
                    static_cast<unsigned long long>(
                        r.shardEpochsSkipped));
    }
    if (hasDirStore(r.dirStore)) {
        const DirStoreCounters &d = r.dirStore;
        std::printf("%-24s %12llu\n", "dirResidentBytes",
                    static_cast<unsigned long long>(d.residentBytes));
        std::printf("%-24s %12llu\n", "dirCompressedBytes",
                    static_cast<unsigned long long>(
                        d.compressedBytes));
        std::printf("%-24s %12llu\n", "dirSegmentBytes",
                    static_cast<unsigned long long>(d.segmentBytes));
        std::printf("%-24s %6llu/%6llu/%6llu\n",
                    "dirPages (hot/cold/disk)",
                    static_cast<unsigned long long>(d.hotPages),
                    static_cast<unsigned long long>(d.coldPages),
                    static_cast<unsigned long long>(d.diskPages));
    }
    std::printf("# coherence: oracle checked %llu reads, "
                "%llu writes\n",
                static_cast<unsigned long long>(r.readsChecked),
                static_cast<unsigned long long>(r.writesRecorded));

    if (sampler)
        writeSeries(o, *sampler);

    if (!o.jsonPath.empty()) {
        Json cells = Json::array();
        Json c = Json::object();
        c.set("section", "timed");
        c.set("procs", procs);
        c.set("shards", o.shards);
        c.set("cycles", static_cast<unsigned long long>(r.finalTick));
        c.set("refs",
              static_cast<unsigned long long>(r.refsCompleted));
        c.set("messages",
              static_cast<unsigned long long>(r.netMessages));
        c.set("broadcasts",
              static_cast<unsigned long long>(r.broadcasts));
        c.set("netWaitCycles",
              static_cast<unsigned long long>(r.netWaitCycles));
        c.set("stolenCycles",
              static_cast<unsigned long long>(r.stolenCycles));
        c.set("avgLatency", r.avgLatency);
        c.set("latencyP50",
              static_cast<unsigned long long>(r.latencyP50));
        c.set("latencyP99",
              static_cast<unsigned long long>(r.latencyP99));
        c.set("epochs", static_cast<unsigned long long>(r.epochs));
        c.set("inlineEpochs",
              static_cast<unsigned long long>(r.inlineEpochs));
        c.set("shardEpochsSkipped",
              static_cast<unsigned long long>(r.shardEpochsSkipped));
        if (hasDirStore(r.dirStore))
            c.set("dirStore", dirStoreJson(r.dirStore));
        if (reader)
            c.set("traceReplay", traceReplayJson(*reader, false));
        if (sampler)
            c.set("series", seriesProvenanceJson(*sampler));
        cells.push(std::move(c));
        Json params = configJson(o);
        params.set("shards", o.shards);
        params.set("timed", true);
        params.set("think", static_cast<unsigned long long>(o.think));
        params.set("fastForward", o.fastForward);
        Json artifact = makeSweepArtifact("dir2bsim", std::move(params),
                                          std::move(cells));
        const auto wall =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        stampMeta(artifact,
                  o.threads ? o.threads : defaultThreadCount(), wall,
                  false);
        writeArtifact(o.jsonPath, artifact);
        std::printf("wrote %s (1 cell)\n", o.jsonPath.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);

    if (samplingRequested(o) &&
        (o.analyze || !o.recordPath.empty() || !o.traceOutPath.empty()))
        DIR2B_FATAL("--series-out/--series-interval/--progress need a "
                    "simulation run, not --analyze/--record/--trace-out");

    if (!o.traceOutPath.empty())
        return recordBinary(o);

    if (o.timed)
        return runTimed(o);

    if (!o.sweepProcs.empty()) {
        if (!o.traceInPath.empty())
            DIR2B_FATAL("--sweep-procs runs synthetic workloads only");
        return runSweep(o);
    }

    std::unique_ptr<TraceReader> reader;
    if (!o.traceInPath.empty()) {
        if (!o.tracePath.empty() || !o.recordPath.empty())
            DIR2B_FATAL("--trace-in excludes --trace/--record");
        reader = std::make_unique<TraceReader>(o.traceInPath);
    }
    ProcId procs = o.procs;
    if (reader && !o.procsSet && reader->header().numProcs)
        procs = static_cast<ProcId>(reader->header().numProcs);
    // Echo the effective replay geometry in params and printouts: a
    // bare --trace-in takes procs and refs from the trace header, and
    // the artifact must describe the run that actually happened.
    o.procs = procs;
    if (reader && !o.refsSet)
        o.refs = reader->totalRecords();

    if (o.analyze) {
        if (reader) {
            printTraceStats(std::cout, analyzeTrace(*reader));
        } else {
            auto stream = makeStream(o, procs);
            const auto refs = recordStream(*stream, o.refs);
            printTraceStats(std::cout, analyzeTrace(refs));
        }
        return 0;
    }

    if (!o.recordPath.empty()) {
        auto stream = makeStream(o, procs);
        std::ofstream out(o.recordPath);
        if (!out)
            DIR2B_FATAL("cannot open '", o.recordPath, "' for writing");
        writeTrace(out, recordStream(*stream, o.refs));
        std::printf("recorded %llu references to %s\n",
                    static_cast<unsigned long long>(o.refs),
                    o.recordPath.c_str());
        return 0;
    }

    const auto start = std::chrono::steady_clock::now();
    auto proto = makeProtocol(o.protocol, protoConfig(o, procs));

    RunOptions opts;
    opts.numRefs = reader && !o.refsSet ? reader->totalRecords()
                                        : o.refs;
    opts.checkCoherence = !o.noOracle;
    opts.invariantEvery = o.invariants ? 1000 : 0;
    std::unique_ptr<TelemetrySampler> sampler;
    std::unique_ptr<ProgressMeter> meter;
    if (samplingRequested(o)) {
        sampler = std::make_unique<TelemetrySampler>(
            SeriesDomain::Refs, effectiveInterval(o));
        registerFunctionalMetrics(sampler->registry(), *proto);
        if (o.progress) {
            meter = std::make_unique<ProgressMeter>(opts.numRefs);
            sampler->attachProgress(meter.get());
        }
        opts.sampler = sampler.get();
    }
    RunResult r;
    if (reader) {
        TraceBatchStream batches(*reader);
        r = runFunctionalBatched(*proto, batches, opts);
    } else {
        auto stream = makeStream(o, procs);
        r = runFunctional(*proto, *stream, opts);
    }

    std::printf("# dir2bsim: protocol=%s procs=%u cache=%zux%zu "
                "modules=%u refs=%llu%s\n",
                proto->name().c_str(), procs, o.sets, o.ways,
                o.modules,
                static_cast<unsigned long long>(r.counts.refs()),
                reader ? " (binary trace replay)" : "");
    AccessCounts::forEachField(
        r.counts, [](const char *name, std::uint64_t v) {
            if (v)
                std::printf("%-24s %12llu\n", name,
                            static_cast<unsigned long long>(v));
        });
    std::printf("%-24s %12.4f\n", "missRatio", r.counts.missRatio());
    std::printf("%-24s %12.4f\n", "uselessPerRef",
                r.counts.uselessPerRef());
    std::printf("%-24s %12.4f\n", "perCacheOverhead",
                r.perCacheUselessPerRef);
    std::printf("%-24s %12u\n", "dirBitsPerBlock",
                proto->directoryBitsPerBlock());
    const DirStoreCounters dirStore = proto->dirStoreCounters();
    if (hasDirStore(dirStore)) {
        std::printf("%-24s %12llu\n", "dirResidentBytes",
                    static_cast<unsigned long long>(
                        dirStore.residentBytes));
        std::printf("%-24s %12llu\n", "dirCompressedBytes",
                    static_cast<unsigned long long>(
                        dirStore.compressedBytes));
        std::printf("%-24s %12llu\n", "dirSegmentBytes",
                    static_cast<unsigned long long>(
                        dirStore.segmentBytes));
        std::printf("%-24s %6llu/%6llu/%6llu\n",
                    "dirPages (hot/cold/disk)",
                    static_cast<unsigned long long>(dirStore.hotPages),
                    static_cast<unsigned long long>(
                        dirStore.coldPages),
                    static_cast<unsigned long long>(
                        dirStore.diskPages));
    }
    if (!o.noOracle)
        std::printf("# coherence: every read verified\n");

    if (sampler)
        writeSeries(o, *sampler);

    if (!o.jsonPath.empty()) {
        Json cells = Json::array();
        Json c = Json::object();
        c.set("section", "run");
        c.set("procs", procs);
        c.set("dirBitsPerBlock", proto->directoryBitsPerBlock());
        c.set("result", runResultToJson(r));
        if (hasDirStore(dirStore))
            c.set("dirStore", dirStoreJson(dirStore));
        if (reader)
            c.set("traceReplay", traceReplayJson(*reader, true));
        if (sampler)
            c.set("series", seriesProvenanceJson(*sampler));
        cells.push(std::move(c));
        Json artifact = makeSweepArtifact("dir2bsim", configJson(o),
                                          std::move(cells));
        const auto wall =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        stampMeta(artifact,
                  o.threads ? o.threads : defaultThreadCount(), wall,
                  false);
        writeArtifact(o.jsonPath, artifact);
        std::printf("wrote %s (1 cell)\n", o.jsonPath.c_str());
    }
    return 0;
}
