/**
 * @file
 * Example: a guided tour of one block's life under the two-bit scheme.
 *
 * Drives a tiny hand-written reference sequence and narrates every
 * global-state transition of §3.2 — the executable version of the
 * paper's protocol walk-through.  Useful as a first read of the
 * protocol and as a template for poking at it interactively.
 */

#include <cstdio>

#include "core/two_bit_protocol.hh"
#include "trace/reference.hh"

using namespace dir2b;

namespace
{

TwoBitProtocol *gProto = nullptr;

void
step(const char *what, ProcId p, Addr a, bool write, const char *expect,
     Addr watch = invalidAddr)
{
    // Narrate the state of 'watch' (default: the accessed block) so
    // eviction steps can show the *victim's* transition.
    if (watch == invalidAddr)
        watch = a;
    const GlobalState before = gProto->globalState(watch);
    gProto->access(p, a, write, write ? 0xC0FFEE00 + p : 0);
    const GlobalState after = gProto->globalState(watch);
    const auto &d = gProto->lastDelta();
    std::printf("%-34s %-9s -> %-9s", what, toString(before).c_str(),
                toString(after).c_str());
    if (d.broadcasts)
        std::printf("  [broadcast: %llu cmds, %llu useless]",
                    static_cast<unsigned long long>(d.broadcastCmds),
                    static_cast<unsigned long long>(d.uselessCmds));
    if (d.writebacks)
        std::printf("  [write-back]");
    if (d.mrequests)
        std::printf("  [MREQUEST]");
    std::printf("\n    expecting: %s\n", expect);
}

} // namespace

int
main()
{
    ProtoConfig cfg;
    cfg.numProcs = 4;
    cfg.cacheGeom.sets = 1;
    cfg.cacheGeom.ways = 2; // tiny cache so we can force ejections
    cfg.numModules = 1;
    TwoBitProtocol proto(cfg);
    gProto = &proto;

    const Addr a = 0;
    const Addr b = 2; // same set as a (1-set cache)
    const Addr c = 4;

    std::printf("The life of block %llu under the two-bit directory "
                "(n=4):\n\n",
                static_cast<unsigned long long>(a));

    step("P0 reads a (miss)", 0, a, false,
         "Absent -> Present1, data from memory, no broadcast "
         "(Sec. 3.2.2 case 1)");
    step("P1 reads a (miss)", 1, a, false,
         "Present1 -> Present*, still no broadcast");
    step("P0 writes a (hit, clean)", 0, a, true,
         "MREQUEST; Present* forces BROADINV to n-1=3 caches, one "
         "useful (P1), two useless (Sec. 3.2.4 case 2)");
    step("P2 reads a (miss)", 2, a, false,
         "PresentM: BROADQUERY finds the owner P0, who writes back "
         "and keeps a clean copy -> Present* (Sec. 3.2.2 case 2)");
    step("P3 writes a (miss)", 3, a, true,
         "Present*: BROADINV invalidates P0 and P2 -> PresentM "
         "(Sec. 3.2.3 case 2)");
    step("P3 reads b (miss, evicts...)", 3, b, false,
         "b fills; note a was NOT evicted (2-way set): Absent -> "
         "Present1 for b");
    step("P3 reads c (miss, evicts a!)", 3, c, false,
         "the dirty copy of a is ejected: EJECT(write)+put, a -> "
         "Absent (Sec. 3.2.1 case 3)", a);
    step("P1 writes a (miss)", 1, a, true,
         "Absent again: plain fill, PresentM, no broadcast");

    // The anomaly: Present* that decays to zero copies.  Fresh system
    // so cache contents are predictable.
    std::printf("\nThe Present* anomaly (Sec. 3.1 footnote), on a "
                "fresh system:\n\n");
    TwoBitProtocol proto2(cfg);
    gProto = &proto2;
    const Addr z = 6;
    step("P0 reads z", 0, z, false, "Absent -> Present1");
    step("P1 reads z", 1, z, false, "Present1 -> Present*");
    step("P0 reads u", 0, 8, false, "fills P0's other way");
    step("P0 reads v (evicts z)", 0, 12, false,
         "clean eject from Present*: the map cannot count down", z);
    step("P1 reads u'", 1, 10, false, "fills P1's other way");
    step("P1 reads v' (evicts z)", 1, 14, false,
         "zero cached copies of z remain, state still Present*", z);
    step("P2 writes z (miss)", 2, z, true,
         "the broadcast goes to all 3 other caches and EVERY command "
         "is useless - the worst case (n-1) of T_WM");

    std::printf("\nDirectory bill: 2 bits/block, vs %u bits/block for "
                "the full map at n=4.\n",
                cfg.numProcs + 1);
    proto.checkInvariants();
    proto2.checkInvariants();
    std::printf("All invariants hold.\n");
    return 0;
}
