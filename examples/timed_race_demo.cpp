/**
 * @file
 * Example: the §3.2.5 synchronization scenario, replayed in real time.
 *
 * "Cache i and cache j hold copies of a.  'At the same time'
 *  processor i wants to execute STORE(a,d_i) and processor j wants to
 *  execute STORE(a,d_j)."
 *
 * This drives the timed tier (message latencies, queued controller)
 * through exactly that situation and prints what happened: one
 * processor wins the MREQUEST, the other's queued MREQUEST is deleted
 * while the BROADINV doubles as its MGRANTED(false), and it retries
 * as a write miss — the scenario table at the end of §3.2.5.
 */

#include <cstdio>
#include <iostream>
#include <optional>
#include <vector>

#include "timed/timed_system.hh"

using namespace dir2b;

int
main()
{
    TimedConfig cfg;
    cfg.numProcs = 3;
    cfg.numModules = 1;
    cfg.cacheGeom.sets = 16;
    cfg.cacheGeom.ways = 2;
    cfg.dirLatency = 8; // wide service window: both MREQUESTs queue
    TimedSystem sys(cfg);

    const Addr a = 7;
    // P0 and P1: read a (establishing two clean copies), then store.
    // P2 keeps the controller busy so the MREQUESTs pile up.
    std::vector<std::vector<MemRef>> scripts = {
        {{0, a, false}, {0, a, true}},
        {{1, a, false}, {1, a, true}},
        {{2, 9, false}, {2, 11, false}, {2, 13, false}},
    };
    std::vector<std::size_t> pos(3, 0);
    auto src = [&](ProcId p) -> std::optional<MemRef> {
        if (pos[p] >= scripts[p].size())
            return std::nullopt;
        return scripts[p][pos[p]++];
    };

    std::printf("Sec. 3.2.5: concurrent STOREs to a block held clean "
                "by two caches\n\n");
    const auto r = sys.run(src, 100);

    const auto &d = sys.dirCtrl(0).stats();
    std::printf("controller view:\n");
    std::printf("  MREQUESTs received            %llu\n",
                static_cast<unsigned long long>(d.mrequests.value()));
    std::printf("  MGRANTED(true) issued         %llu\n",
                static_cast<unsigned long long>(d.grantsTrue.value()));
    std::printf("  queued MREQUESTs deleted      %llu\n",
                static_cast<unsigned long long>(d.mreqDeleted.value()));
    std::printf("  MGRANTED(false) issued        %llu\n",
                static_cast<unsigned long long>(d.grantsFalse.value()));
    std::printf("  BROADINVs broadcast           %llu\n",
                static_cast<unsigned long long>(d.broadInvs.value()));

    std::printf("\ncache view:\n");
    for (ProcId p = 0; p < 2; ++p) {
        const auto &s = sys.cacheCtrl(p).stats();
        std::printf("  P%u: MREQUESTs %llu, BROADINV-as-MGRANTED(false) "
                    "conversions %llu\n",
                    p,
                    static_cast<unsigned long long>(s.mrequests.value()),
                    static_cast<unsigned long long>(
                        s.mrequestConversions.value()));
    }

    std::printf("\noutcome: %llu references completed in %llu cycles; "
                "the per-location\ncoherence oracle validated every "
                "read and the final memory state.\n",
                static_cast<unsigned long long>(r.refsCompleted),
                static_cast<unsigned long long>(r.finalTick));
    std::printf("\nThe losing store was not lost and was not granted "
                "twice: the delete-anywhere\nrequest queue plus the "
                "BROADINV-as-MGRANTED(false) rule serialised the two\n"
                "writers exactly as the paper's scenario prescribes.\n");

    std::printf("\nfull statistics dump:\n");
    sys.dumpStats(std::cout);
    return 0;
}
