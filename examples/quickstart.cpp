/**
 * @file
 * Quickstart: build a 4-processor two-bit directory system, run a
 * synthetic workload through it, and read the basic meters.
 *
 * This walks the three public layers most users need:
 *
 *   1. a Protocol (here the paper's two-bit scheme) built from a
 *      ProtoConfig;
 *   2. a reference stream (the merged private/shared model of §4.2);
 *   3. runFunctional(), which drives the protocol, verifies coherence
 *      on every read, and returns the measured counters.
 */

#include <cstdio>

#include "model/overhead_model.hh"
#include "proto/protocol_factory.hh"
#include "system/func_system.hh"
#include "trace/synthetic.hh"

using namespace dir2b;

int
main()
{
    // --- 1. the machine: 4 processors, 128-block caches, 4 modules.
    ProtoConfig cfg;
    cfg.numProcs = 4;
    cfg.cacheGeom.sets = 32;
    cfg.cacheGeom.ways = 4;
    cfg.numModules = 4;
    auto protocol = makeProtocol("two_bit", cfg);

    // --- 2. the workload: moderate sharing (q=5%, w=20%).
    SyntheticConfig workload;
    workload.numProcs = cfg.numProcs;
    workload.q = 0.05;
    workload.w = 0.2;
    workload.sharedBlocks = 16;
    workload.sharedLocality = 0.9;
    workload.seed = 1;
    SyntheticStream stream(workload);

    // --- 3. run one million references with the coherence oracle on.
    RunOptions opts;
    opts.numRefs = 1000000;
    opts.checkCoherence = true;
    const RunResult r = runFunctional(*protocol, stream, opts);

    const auto &c = r.counts;
    std::printf("dir2b quickstart: %llu references, %s protocol\n\n",
                static_cast<unsigned long long>(c.refs()),
                protocol->name().c_str());
    std::printf("  miss ratio            %.3f%%\n",
                100.0 * c.missRatio());
    std::printf("  broadcasts            %llu\n",
                static_cast<unsigned long long>(c.broadcasts));
    std::printf("  useless commands      %llu (%.4f per reference)\n",
                static_cast<unsigned long long>(c.uselessCmds),
                c.uselessPerRef());
    std::printf("  invalidations         %llu\n",
                static_cast<unsigned long long>(c.invalidations));
    std::printf("  write-backs           %llu\n",
                static_cast<unsigned long long>(c.writebacks));
    std::printf("  directory cost        %u bits/block (full map "
                "would need %u)\n\n",
                protocol->directoryBitsPerBlock(), cfg.numProcs + 1);

    // Compare the measured per-cache overhead with the paper's model.
    std::printf("  measured (n-1)*T_SUM  %.4f\n",
                r.perCacheUselessPerRef);
    SharingParams sp =
        sharingCase(SharingLevel::Moderate, cfg.numProcs, workload.w);
    std::printf("  Table 4-1 cell        %.4f (moderate sharing, "
                "w=%.1f, n=%u)\n",
                overhead(sp).perCache, workload.w, cfg.numProcs);
    std::printf("\nEvery read was checked against the last-writer "
                "oracle: the run is coherent.\n");
    return 0;
}
