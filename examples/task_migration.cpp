/**
 * @file
 * Example: process migration turns private data into shared data.
 *
 * §2.2 notes the software solution "is not sufficient by itself if we
 * allow process migration", and §4.2 says migration effects "could be
 * accounted for by adjusting the level of sharing".  This example
 * makes that concrete: tasks with purely private working sets migrate
 * between processors at a configurable period, and we measure how the
 * two-bit scheme's broadcast overhead rises as the migration interval
 * shrinks — private data dragged across caches behaves exactly like
 * writeable shared data.
 */

#include <cstdio>

#include "proto/protocol_factory.hh"
#include "system/func_system.hh"
#include "trace/workloads.hh"

using namespace dir2b;

namespace
{

void
runPeriod(std::uint64_t period, std::uint64_t refs)
{
    ProtoConfig cfg;
    cfg.numProcs = 4;
    cfg.cacheGeom.sets = 32;
    cfg.cacheGeom.ways = 4;
    cfg.numModules = 4;
    auto twoBit = makeProtocol("two_bit", cfg);
    auto fullMap = makeProtocol("full_map", cfg);

    WorkloadConfig wcfg;
    wcfg.numProcs = 4;
    wcfg.privateBlocks = 96;
    wcfg.privateWriteFrac = 0.3;
    wcfg.seed = 11;

    RunOptions opts;
    opts.numRefs = refs;

    TaskMigrationWorkload s1(wcfg, period);
    const RunResult r2 = runFunctional(*twoBit, s1, opts);
    TaskMigrationWorkload s2(wcfg, period);
    const RunResult rf = runFunctional(*fullMap, s2, opts);

    const double k = 1000.0 / static_cast<double>(refs);
    std::printf("  %9llu  %10llu  %10.1f %10.1f %10.2f | %10.1f\n",
                static_cast<unsigned long long>(period),
                static_cast<unsigned long long>(s1.migrations()),
                100.0 * r2.counts.missRatio(),
                r2.counts.broadcasts * k, r2.counts.uselessCmds * k,
                rf.counts.directedCmds * k);
}

} // namespace

int
main()
{
    constexpr std::uint64_t refs = 400000;
    std::printf("task migration: private working sets, gang-migrated "
                "every <period> refs\n(4 processors, %llu refs)\n\n",
                static_cast<unsigned long long>(refs));
    std::printf("  %9s  %10s  %10s %10s %10s | %10s\n", "period",
                "migrations", "miss%", "bcast/kref", "useless/kref",
                "fm cmd/kref");
    for (std::uint64_t period :
         {1000000ull, 100000ull, 20000ull, 5000ull, 1000ull, 250ull}) {
        runPeriod(period, refs);
    }
    std::printf(
        "\nNo data is ever *shared* here — yet migration alone drives\n"
        "broadcast traffic (dirty blocks queried out of the old cache,\n"
        "stale copies invalidated), exactly the effect the paper says\n"
        "to model as an increased level of sharing.  The full-map\n"
        "column shows the directed-command floor the translation\n"
        "buffer could recover.\n");
    return 0;
}
