/**
 * @file
 * Small dense linear-algebra support for the analytic models.
 *
 * The Markov chains behind Tables 4-1/4-2 have at most n+3 states
 * (n <= 64 processors), so a dense Gaussian elimination is the right
 * tool: exact, dependency-free and trivially testable.
 */

#ifndef DIR2B_MODEL_LINEAR_HH
#define DIR2B_MODEL_LINEAR_HH

#include <cstddef>
#include <vector>

namespace dir2b
{

/** Row-major dense matrix. */
class Matrix
{
  public:
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
    {}

    double &at(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    double at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<double> data_;
};

/**
 * Solve A x = b by Gaussian elimination with partial pivoting.
 * A is consumed (modified in place).  Panics on a singular system.
 */
std::vector<double> solveLinear(Matrix a, std::vector<double> b);

/**
 * Stationary distribution of a continuous-time chain with generator Q
 * (q[i][j] = rate i->j for i != j; diagonal ignored and rebuilt):
 * solves pi Q = 0 with sum(pi) = 1.
 */
std::vector<double> stationaryDistribution(const Matrix &rates);

} // namespace dir2b

#endif // DIR2B_MODEL_LINEAR_HH
