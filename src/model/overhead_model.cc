#include "model/overhead_model.hh"

#include "util/logging.hh"

namespace dir2b
{

OverheadBreakdown
overhead(const SharingParams &p)
{
    DIR2B_ASSERT(p.n >= 2, "overhead model needs at least two caches");
    const double n1 = static_cast<double>(p.n - 1);
    const double n2 = static_cast<double>(p.n - 2);
    const double presentAny = p.pP1 + p.pPM + p.pPStar;
    DIR2B_ASSERT(presentAny > 0.0,
                 "T_WH conditional probability needs P(P1)+P(PM)+P(P*)"
                 " > 0");

    OverheadBreakdown out;
    out.tRM = n2 * p.q * (1.0 - p.w) * (1.0 - p.h) * p.pPM;
    out.tWM = n2 * p.q * p.w * (1.0 - p.h) * (p.pPM + p.pP1) +
              n1 * p.q * p.w * (1.0 - p.h) * p.pPStar;
    out.tWH = n1 * p.q * p.w * p.h * p.pPStar / presentAny;
    out.tSUM = out.tRM + out.tWM + out.tWH;
    out.perCache = n1 * out.tSUM;
    return out;
}

SharingParams
sharingCase(SharingLevel level, unsigned n, double w)
{
    SharingParams p;
    p.n = n;
    p.w = w;
    switch (level) {
      case SharingLevel::Low:
        p.q = 0.01;
        p.h = 0.95;
        p.pP1 = 0.06;
        p.pPStar = 0.01;
        p.pPM = 0.03;
        break;
      case SharingLevel::Moderate:
        p.q = 0.05;
        p.h = 0.90;
        p.pP1 = 0.25;
        p.pPStar = 0.05;
        p.pPM = 0.10;
        break;
      case SharingLevel::High:
        p.q = 0.10;
        p.h = 0.80;
        p.pP1 = 0.35;
        p.pPStar = 0.10;
        p.pPM = 0.35;
        break;
    }
    return p;
}

std::string
toString(SharingLevel level)
{
    switch (level) {
      case SharingLevel::Low:
        return "low sharing";
      case SharingLevel::Moderate:
        return "moderate sharing";
      case SharingLevel::High:
        return "high sharing";
    }
    DIR2B_PANIC("unknown sharing level");
}

const std::vector<unsigned> &
table41ProcessorCounts()
{
    static const std::vector<unsigned> counts = {4, 8, 16, 32, 64};
    return counts;
}

const std::vector<double> &
table41WriteProbs()
{
    static const std::vector<double> probs = {0.1, 0.2, 0.3, 0.4};
    return probs;
}

std::vector<double>
table41Row(SharingLevel level, double w)
{
    std::vector<double> row;
    row.reserve(table41ProcessorCounts().size());
    for (unsigned n : table41ProcessorCounts())
        row.push_back(overhead(sharingCase(level, n, w)).perCache);
    return row;
}

} // namespace dir2b
