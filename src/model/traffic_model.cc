#include "model/traffic_model.hh"

#include <limits>

#include "util/logging.hh"

namespace dir2b
{

TrafficResult
networkLoad(const TrafficParams &p)
{
    DIR2B_ASSERT(p.modules > 0 && p.portServiceRate > 0.0,
                 "traffic model needs modules and a service rate");

    TrafficResult r;

    // Base protocol traffic per reference: a miss costs a REQUEST and
    // a data reply; a fraction of misses also writes a victim back
    // (EJECT + put); MREQUEST/MGRANTED pairs ride on shared write
    // hits.  Constants follow the message counting of src/proto.
    const auto &s = p.sharing;
    const double missMsgs = p.missRatio * (2.0 + 2.0 * p.writebackFrac);
    const double upgradeMsgs = 2.0 * s.q * s.w * s.h;
    r.baseMsgsPerRef = missMsgs + upgradeMsgs;

    // Broadcast overhead per reference: T_SUM counts the *useless*
    // deliveries; every broadcast also reaches its useful recipients,
    // so total broadcast deliveries per reference are bounded below by
    // T_SUM and above by T_SUM + (broadcast rate).  Use the exact
    // per-recipient count: each broadcasting transaction emits n-1
    // messages, and T_SUM already excludes the useful ones, so add
    // them back via the broadcast rate B = T_SUM / (n - 2) as a
    // first-order estimate (n > 2).
    const auto b = overhead(s);
    const double useful =
        s.n > 2 ? b.tSUM / static_cast<double>(s.n - 2) : 0.0;
    r.broadcastMsgsPerRef = b.tSUM + useful;

    // System-wide message rate, spread over the module ports.
    const double msgsPerCycle =
        static_cast<double>(s.n) * p.refsPerCycle *
        (r.baseMsgsPerRef + r.broadcastMsgsPerRef);
    r.portLoad = msgsPerCycle / static_cast<double>(p.modules);
    r.utilisation = r.portLoad / p.portServiceRate;
    r.saturated = r.utilisation >= 1.0;
    r.queueDelay =
        r.saturated
            ? std::numeric_limits<double>::infinity()
            : (1.0 / p.portServiceRate) / (1.0 - r.utilisation);

    // Guard against nonsense inputs producing negative loads.
    DIR2B_ASSERT(r.portLoad >= 0.0, "negative port load: check inputs");
    return r;
}

unsigned
saturationProcessorCount(TrafficParams p, unsigned limit)
{
    unsigned best = 0;
    for (unsigned n = 2; n <= limit; n *= 2) {
        p.sharing.n = n;
        const TrafficResult r = networkLoad(p);
        if (!r.saturated)
            best = n;
        else
            break;
    }
    return best;
}

} // namespace dir2b
