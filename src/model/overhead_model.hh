/**
 * @file
 * The paper's closed-form overhead model (§4.2) and Table 4-1.
 *
 * Extra commands per memory request incurred by the two-bit scheme
 * relative to the full map:
 *
 *   T_RM = (n-2) q (1-w)(1-h) P(PM)
 *   T_WM = (n-2) q w (1-h) (P(PM)+P(P1)) + (n-1) q w (1-h) P(P*)
 *   T_WH = (n-1) q w h P(P*) / (P(P1)+P(PM)+P(P*))
 *   T_SUM = T_RM + T_WM + T_WH
 *
 * and the per-cache overhead Table 4-1 reports is (n-1) T_SUM.  The
 * three sharing cases of §4.3 are provided as presets.
 */

#ifndef DIR2B_MODEL_OVERHEAD_MODEL_HH
#define DIR2B_MODEL_OVERHEAD_MODEL_HH

#include <string>
#include <vector>

namespace dir2b
{

/** Parameters of the §4.2 model. */
struct SharingParams
{
    /** Number of caches (n). */
    unsigned n = 4;
    /** Probability the next reference is to a shared block (q). */
    double q = 0.05;
    /** Probability a shared reference is a write (w). */
    double w = 0.2;
    /** Hit ratio of shared blocks (h). */
    double h = 0.90;
    /** Probability a shared block is in state Present1. */
    double pP1 = 0.25;
    /** Probability a shared block is in state Present*. */
    double pPStar = 0.05;
    /** Probability a shared block is in state PresentM. */
    double pPM = 0.10;
};

/** The four components of the overhead expression. */
struct OverheadBreakdown
{
    double tRM = 0.0;
    double tWM = 0.0;
    double tWH = 0.0;
    double tSUM = 0.0;
    /** The tabulated quantity (n-1) * T_SUM. */
    double perCache = 0.0;
};

/** Evaluate the §4.2 closed form. */
OverheadBreakdown overhead(const SharingParams &p);

/** §4.3's named sharing levels. */
enum class SharingLevel { Low, Moderate, High };

/** The preset (q, h, P(P1), P(P*), P(PM)) of a §4.3 case; n and w are
 *  filled with the given values. */
SharingParams sharingCase(SharingLevel level, unsigned n, double w);

/** Human-readable case name ("low sharing" etc.). */
std::string toString(SharingLevel level);

/** The processor counts Table 4-1 sweeps. */
const std::vector<unsigned> &table41ProcessorCounts();

/** The write probabilities Table 4-1 sweeps. */
const std::vector<double> &table41WriteProbs();

/** One row of Table 4-1: (n-1) T_SUM for each n at fixed case and w. */
std::vector<double> table41Row(SharingLevel level, double w);

} // namespace dir2b

#endif // DIR2B_MODEL_OVERHEAD_MODEL_HH
