/**
 * @file
 * Interconnection-network saturation model — the paper's stated
 * future work.
 *
 * §4.3: "Of more concern is the effect of the broadcasts on traffic in
 * the interconnection network. ... Short of simulation, there are few
 * alternatives to determine the effects of this traffic.  This will be
 * investigated in future studies, but we assume here that for values
 * of (n-1)T_SUM less than 1.0 this traffic is not prohibitive."
 *
 * This module supplies the missing analysis with the standard tool of
 * the era: an open M/M/1 approximation of each memory-module port.
 * Per memory reference a processor generates a base message load
 * (misses, write-backs, data transfers) plus the two-bit scheme's
 * broadcast commands; given a port service rate, the model yields
 * utilisation, mean queueing delay, and the processor count at which
 * the network saturates — making the paper's "not prohibitive below
 * 1.0" rule quantitative.  bench_timed's measured port-wait cycles
 * provide the simulation cross-check.
 */

#ifndef DIR2B_MODEL_TRAFFIC_MODEL_HH
#define DIR2B_MODEL_TRAFFIC_MODEL_HH

#include "model/overhead_model.hh"

namespace dir2b
{

/** Inputs of the network-load model. */
struct TrafficParams
{
    /** Sharing/overhead model parameters (n, q, w, h, P(*)). */
    SharingParams sharing{};
    /** Overall miss ratio of the reference stream. */
    double missRatio = 0.05;
    /** Fraction of misses causing a dirty write-back. */
    double writebackFrac = 0.3;
    /** References issued per processor per cycle (cache-hit speed). */
    double refsPerCycle = 0.5;
    /** Messages one network/module port can accept per cycle. */
    double portServiceRate = 1.0;
    /** Number of memory modules the load spreads over. */
    unsigned modules = 4;
};

/** Outputs of the network-load model. */
struct TrafficResult
{
    /** Messages per memory reference, without coherence overhead. */
    double baseMsgsPerRef = 0.0;
    /** Extra broadcast messages per reference (two-bit overhead). */
    double broadcastMsgsPerRef = 0.0;
    /** Offered load per port, in messages per cycle. */
    double portLoad = 0.0;
    /** Port utilisation rho (load / service); >= 1 means saturated. */
    double utilisation = 0.0;
    /** Mean M/M/1 queueing delay per message, in cycles (infinite
     *  when saturated). */
    double queueDelay = 0.0;
    /** True if the offered load exceeds the service rate. */
    bool saturated = false;
};

/** Evaluate the model for one configuration. */
TrafficResult networkLoad(const TrafficParams &p);

/**
 * Largest processor count (power-of-two sweep up to 'limit') for which
 * the network stays unsaturated, holding everything else fixed.
 */
unsigned saturationProcessorCount(TrafficParams p, unsigned limit = 256);

} // namespace dir2b

#endif // DIR2B_MODEL_TRAFFIC_MODEL_HH
