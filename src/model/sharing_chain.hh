/**
 * @file
 * Markov-chain models of a shared block's global state.
 *
 * Both Table 4-2 and the state-occupancy probabilities the paper
 * assumes in §4.3 derive from the stochastic evolution of one shared
 * block under the merged reference model: references arrive at rate
 * q/S per system memory reference, are writes with probability w, come
 * from a uniformly random processor (so a block with c copies is hit
 * by a holder with probability c/n), and each holder evicts the block
 * at rate evictRate per memory reference.
 *
 * Two chains over that process:
 *
 *  FullMapChain  states (c, clean) for c=0..n and (1, dirty); rewards
 *      are the *directed* commands a full map sends (invalidations and
 *      purges).  Its command rate is the Dubois-Briggs T_R, and
 *      (n-1) * T_R is the paper's Table 4-2 approximation of the
 *      two-bit overhead.  (The 1982 model's internals are not
 *      reprinted in the paper; this is our reconstruction — see
 *      DESIGN.md §5.)
 *
 *  TwoBitChain  states Absent, Present1, Present*(c) for c=0..n, and
 *      PresentM, following the *directory's* encoding including the
 *      "Present* with zero copies" anomaly.  Occupancies give P(P1),
 *      P(P*), P(PM) from first principles (the probabilities §4.3
 *      assumes), and rewards count the useless broadcast deliveries,
 *      giving an independent prediction of T_SUM.
 */

#ifndef DIR2B_MODEL_SHARING_CHAIN_HH
#define DIR2B_MODEL_SHARING_CHAIN_HH

#include <cstddef>
#include <vector>

namespace dir2b
{

/** Parameters of the single-block stochastic model. */
struct ChainParams
{
    /** Number of caches (n). */
    unsigned n = 4;
    /** Probability a reference is to a shared block (q). */
    double q = 0.05;
    /** Probability a shared reference is a write (w). */
    double w = 0.2;
    /** Number of shared blocks (S); per-block rate is q/S. */
    std::size_t sharedBlocks = 16;
    /**
     * Per-holder eviction rate per system memory reference.  Derived
     * from geometry via evictRateFromGeometry() unless set directly.
     */
    double evictRate = 0.0;
};

/**
 * Eviction-rate estimate from cache geometry: a specific holder's
 * processor issues the next reference with probability 1/n; with
 * probability replacementRate that reference replaces a line; the
 * victim is the block in question with probability 1/cacheBlocks.
 * Table 4-2's caption fixes cacheBlocks = 128.
 */
double evictRateFromGeometry(unsigned n, std::size_t cacheBlocks,
                             double replacementRate = 0.1);

/** Results of solving the full-map chain. */
struct FullMapChainResult
{
    /** Directed coherence commands per memory reference (T_R). */
    double tR = 0.0;
    /** The tabulated Table 4-2 quantity (n-1) * T_R. */
    double perCache = 0.0;
    /** Expected number of cached copies of a shared block. */
    double meanCopies = 0.0;
    /** Implied shared-block hit ratio (E[c]/n). */
    double hitRatio = 0.0;
    /** Stationary probability the block is dirty somewhere. */
    double pDirty = 0.0;
};

/** Solve the full-map (Dubois-Briggs) chain. */
FullMapChainResult solveFullMapChain(const ChainParams &p);

/** Results of solving the two-bit directory-state chain. */
struct TwoBitChainResult
{
    /** Stationary occupancies of the directory encoding. */
    double pAbsent = 0.0;
    double pP1 = 0.0;
    double pPStar = 0.0;
    double pPM = 0.0;
    /** Probability of the anomalous Present*-with-zero-copies state. */
    double pStarEmpty = 0.0;
    /** Useless broadcast deliveries per memory reference (predicted
     *  T_SUM, all S blocks combined). */
    double tSum = 0.0;
    /** The Table 4-1 quantity (n-1) * T_SUM. */
    double perCache = 0.0;
    /** Expected copies and hit ratio, as in the full-map chain. */
    double meanCopies = 0.0;
    double hitRatio = 0.0;
};

/** Solve the two-bit directory-state chain. */
TwoBitChainResult solveTwoBitChain(const ChainParams &p);

} // namespace dir2b

#endif // DIR2B_MODEL_SHARING_CHAIN_HH
