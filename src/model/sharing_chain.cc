#include "model/sharing_chain.hh"

#include "model/linear.hh"
#include "util/logging.hh"

namespace dir2b
{

double
evictRateFromGeometry(unsigned n, std::size_t cacheBlocks,
                      double replacementRate)
{
    DIR2B_ASSERT(n > 0 && cacheBlocks > 0,
                 "evictRateFromGeometry needs n, cacheBlocks > 0");
    return replacementRate /
           (static_cast<double>(n) * static_cast<double>(cacheBlocks));
}

namespace
{

void
validate(const ChainParams &p)
{
    DIR2B_ASSERT(p.n >= 2, "chain needs at least two caches");
    DIR2B_ASSERT(p.q >= 0.0 && p.q <= 1.0 && p.w >= 0.0 && p.w <= 1.0,
                 "chain probabilities out of range");
    DIR2B_ASSERT(p.sharedBlocks > 0, "chain needs shared blocks");
    DIR2B_ASSERT(p.evictRate >= 0.0, "negative eviction rate");
}

} // namespace

FullMapChainResult
solveFullMapChain(const ChainParams &p)
{
    validate(p);
    const double n = static_cast<double>(p.n);
    const double r = p.q / static_cast<double>(p.sharedBlocks);
    const double lam = p.evictRate;

    // States: 0..n -> (c copies, clean); n+1 -> (1 copy, dirty).
    const std::size_t dirty = p.n + 1;
    const std::size_t ns = p.n + 2;
    Matrix rates(ns, ns);

    for (unsigned c = 0; c <= p.n; ++c) {
        const double holderFrac = static_cast<double>(c) / n;
        // Read miss by a non-holder: one more clean copy, no command.
        if (c < p.n)
            rates.at(c, c + 1) += r * (1.0 - p.w) * (1.0 - holderFrac);
        // Any write collapses the block to (1, dirty): a holder write
        // invalidates the other c-1 copies, a non-holder write miss
        // invalidates all c (rewards are accumulated from pi below).
        rates.at(c, dirty) += r * p.w;
        // Eviction of one clean copy.
        if (c >= 1)
            rates.at(c, c - 1) += static_cast<double>(c) * lam;
    }
    // Dirty state (1 copy, modified).
    {
        const double holderFrac = 1.0 / n;
        // Read miss by a non-owner: purge (1 command) -> (2, clean).
        rates.at(dirty, 2) += r * (1.0 - p.w) * (1.0 - holderFrac);
        // Write miss by a non-owner: purge, stays dirty (self-loop:
        // no generator entry; its reward is added to cmdRate below).
        // Eviction: write-back, -> absent.
        rates.at(dirty, 0) += lam;
    }

    const auto pi = stationaryDistribution(rates);

    // Expected command rate per memory reference for ONE block: sum
    // over states of (rate x commands), including self-loop events
    // that the generator cannot carry.
    double cmdRate = 0.0;
    double meanCopies = 0.0;
    for (unsigned c = 0; c <= p.n; ++c) {
        const double holderFrac = static_cast<double>(c) / n;
        meanCopies += pi[c] * static_cast<double>(c);
        if (c >= 1) {
            // Write hit by holder invalidates c-1 others.
            cmdRate += pi[c] * r * p.w * holderFrac *
                       static_cast<double>(c - 1);
            // Write miss by non-holder invalidates c others.
            cmdRate += pi[c] * r * p.w * (1.0 - holderFrac) *
                       static_cast<double>(c);
        }
    }
    {
        const double holderFrac = 1.0 / n;
        meanCopies += pi[dirty] * 1.0;
        // Read miss on dirty: one purge.
        cmdRate += pi[dirty] * r * (1.0 - p.w) * (1.0 - holderFrac);
        // Write miss on dirty: one purge (self-loop event).
        cmdRate += pi[dirty] * r * p.w * (1.0 - holderFrac);
    }

    FullMapChainResult out;
    // Commands for one block, scaled to all S identical blocks.
    out.tR = cmdRate * static_cast<double>(p.sharedBlocks);
    out.perCache = (n - 1.0) * out.tR;
    out.meanCopies = meanCopies;
    out.hitRatio = meanCopies / n;
    out.pDirty = pi[dirty];
    return out;
}

TwoBitChainResult
solveTwoBitChain(const ChainParams &p)
{
    validate(p);
    const double n = static_cast<double>(p.n);
    const double r = p.q / static_cast<double>(p.sharedBlocks);
    const double lam = p.evictRate;

    // States: 0 = Absent; 1 = Present1 (c = 1);
    //         2 + c = Present* with c copies, c = 0..n;
    //         n + 3 = PresentM (c = 1).
    const std::size_t absent = 0;
    const std::size_t p1 = 1;
    auto star = [](unsigned c) { return static_cast<std::size_t>(2 + c); };
    const std::size_t pm = p.n + 3;
    const std::size_t ns = p.n + 4;
    Matrix rates(ns, ns);

    // Absent.
    rates.at(absent, p1) += r * (1.0 - p.w);
    rates.at(absent, pm) += r * p.w; // write miss, no broadcast

    // Present1 (one clean copy).
    {
        const double holderFrac = 1.0 / n;
        rates.at(p1, star(2)) += r * (1.0 - p.w) * (1.0 - holderFrac);
        rates.at(p1, pm) += r * p.w; // holder MREQUEST (free) or
                                     // non-holder write miss (n-2
                                     // useless); both land in PM
        rates.at(p1, absent) += lam; // EJECT reclaims Present1
    }

    // Present*(c), c = 0..n.
    for (unsigned c = 0; c <= p.n; ++c) {
        const double holderFrac = static_cast<double>(c) / n;
        if (c < p.n)
            rates.at(star(c), star(c + 1)) +=
                r * (1.0 - p.w) * (1.0 - holderFrac);
        rates.at(star(c), pm) += r * p.w; // BROADINV then PresentM
        if (c >= 1)
            rates.at(star(c), star(c - 1)) +=
                static_cast<double>(c) * lam; // clean eject, stays *
        // Note: Present* never returns to Absent except through PM.
    }

    // PresentM (one modified copy).
    {
        const double holderFrac = 1.0 / n;
        rates.at(pm, star(2)) += r * (1.0 - p.w) * (1.0 - holderFrac);
        // Write by non-owner: BROADQUERY(write), stays PM (self-loop).
        rates.at(pm, absent) += lam; // dirty eject + write-back
    }

    const auto pi = stationaryDistribution(rates);

    // Useless-command rate per memory reference for one block.
    double useless = 0.0;
    double meanCopies = 0.0;
    {
        // Present1: write miss by the non-holder -> n-2 useless.
        const double holderFrac = 1.0 / n;
        meanCopies += pi[p1];
        useless += pi[p1] * r * p.w * (1.0 - holderFrac) * (n - 2.0);
    }
    for (unsigned c = 0; c <= p.n; ++c) {
        const double holderFrac = static_cast<double>(c) / n;
        meanCopies += pi[star(c)] * static_cast<double>(c);
        // Write hit by a holder: BROADINV reaches n-1, c-1 useful.
        if (c >= 1) {
            useless += pi[star(c)] * r * p.w * holderFrac *
                       (n - static_cast<double>(c));
        }
        // Write miss by a non-holder: BROADINV reaches n-1, c useful.
        useless += pi[star(c)] * r * p.w * (1.0 - holderFrac) *
                   (n - 1.0 - static_cast<double>(c));
    }
    {
        const double holderFrac = 1.0 / n;
        meanCopies += pi[pm];
        // Read miss by non-owner: BROADQUERY, n-2 useless.
        useless += pi[pm] * r * (1.0 - p.w) * (1.0 - holderFrac) *
                   (n - 2.0);
        // Write miss by non-owner: BROADQUERY(write), n-2 useless.
        useless += pi[pm] * r * p.w * (1.0 - holderFrac) * (n - 2.0);
    }

    TwoBitChainResult out;
    out.pAbsent = pi[absent];
    out.pP1 = pi[p1];
    for (unsigned c = 0; c <= p.n; ++c)
        out.pPStar += pi[star(c)];
    out.pPM = pi[pm];
    out.pStarEmpty = pi[star(0)];
    out.tSum = useless * static_cast<double>(p.sharedBlocks);
    out.perCache = (n - 1.0) * out.tSum;
    out.meanCopies = meanCopies;
    out.hitRatio = meanCopies / n;
    return out;
}

} // namespace dir2b
