#include "model/linear.hh"

#include <cmath>

#include "util/logging.hh"

namespace dir2b
{

std::vector<double>
solveLinear(Matrix a, std::vector<double> b)
{
    const std::size_t n = a.rows();
    DIR2B_ASSERT(a.cols() == n && b.size() == n,
                 "solveLinear shape mismatch");

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot.
        std::size_t pivot = col;
        double best = std::fabs(a.at(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::fabs(a.at(r, col)) > best) {
                best = std::fabs(a.at(r, col));
                pivot = r;
            }
        }
        DIR2B_ASSERT(best > 1e-300, "singular system in solveLinear");
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(a.at(col, c), a.at(pivot, c));
            std::swap(b[col], b[pivot]);
        }

        // Eliminate below.
        for (std::size_t r = col + 1; r < n; ++r) {
            const double f = a.at(r, col) / a.at(col, col);
            if (f == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                a.at(r, c) -= f * a.at(col, c);
            b[r] -= f * b[col];
        }
    }

    // Back substitution.
    std::vector<double> x(n, 0.0);
    for (std::size_t ri = n; ri-- > 0;) {
        double acc = b[ri];
        for (std::size_t c = ri + 1; c < n; ++c)
            acc -= a.at(ri, c) * x[c];
        x[ri] = acc / a.at(ri, ri);
    }
    return x;
}

std::vector<double>
stationaryDistribution(const Matrix &rates)
{
    const std::size_t n = rates.rows();
    DIR2B_ASSERT(rates.cols() == n, "generator must be square");

    // Build Q^T with proper diagonals, then replace the last equation
    // by the normalisation sum(pi) = 1.
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        double out = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            const double r = rates.at(i, j);
            DIR2B_ASSERT(r >= 0.0, "negative rate in generator");
            a.at(j, i) += r; // Q^T
            out += r;
        }
        a.at(i, i) -= out;
    }
    std::vector<double> b(n, 0.0);
    for (std::size_t j = 0; j < n; ++j)
        a.at(n - 1, j) = 1.0;
    b[n - 1] = 1.0;

    auto pi = solveLinear(std::move(a), std::move(b));
    // Numerical guard: clamp tiny negatives and renormalise.
    double sum = 0.0;
    for (auto &p : pi) {
        if (p < 0.0 && p > -1e-9)
            p = 0.0;
        DIR2B_ASSERT(p >= 0.0, "negative stationary probability ", p);
        sum += p;
    }
    DIR2B_ASSERT(sum > 0.0, "degenerate stationary distribution");
    for (auto &p : pi)
        p /= sum;
    return pi;
}

} // namespace dir2b
