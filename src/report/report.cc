#include "report/report.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace dir2b
{

Json
countsToJson(const AccessCounts &c)
{
    Json j = Json::object();
    AccessCounts::forEachField(
        c, [&j](const char *name, std::uint64_t v) {
            j.set(name, Json(static_cast<unsigned long long>(v)));
        });
    j.set("missRatio", c.missRatio());
    j.set("uselessPerRef", c.uselessPerRef());
    return j;
}

Json
runResultToJson(const RunResult &r)
{
    Json j = Json::object();
    j.set("counts", countsToJson(r.counts));
    j.set("perCacheUselessPerRef", r.perCacheUselessPerRef);

    Json measured = Json::object();
    measured.set("sharedRefs",
                 static_cast<unsigned long long>(r.sharedRefs));
    measured.set("sharedWrites",
                 static_cast<unsigned long long>(r.sharedWrites));
    measured.set("sharedHits",
                 static_cast<unsigned long long>(r.sharedHits));
    measured.set("q", r.measuredQ(r.counts.refs()));
    measured.set("w", r.measuredW());
    measured.set("h", r.measuredH());
    j.set("measured", measured);

    if (r.stateSamples) {
        Json occ = Json::object();
        static const char *const names[4] = {"absent", "present1",
                                             "presentStar", "presentM"};
        for (int s = 0; s < 4; ++s)
            occ.set(names[s], r.stateOccupancy[static_cast<size_t>(s)]);
        occ.set("samples",
                static_cast<unsigned long long>(r.stateSamples));
        j.set("stateOccupancy", occ);
    }
    return j;
}

namespace
{

/** StatVisitor rendering each entry as one JSON object. */
class JsonStatVisitor : public StatVisitor
{
  public:
    Json out = Json::array();

    void
    onCounter(const std::string &name, const std::string &desc,
              const Counter &c) override
    {
        Json e = base("counter", name, desc);
        e.set("value", static_cast<unsigned long long>(c.value()));
        out.push(std::move(e));
    }

    void
    onMean(const std::string &name, const std::string &desc,
           const Mean &m) override
    {
        Json e = base("mean", name, desc);
        e.set("mean", m.mean());
        e.set("sum", m.sum());
        e.set("samples", static_cast<unsigned long long>(m.samples()));
        out.push(std::move(e));
    }

    void
    onHistogram(const std::string &name, const std::string &desc,
                const Histogram &h) override
    {
        Json e = base("histogram", name, desc);
        e.set("samples", static_cast<unsigned long long>(h.samples()));
        e.set("mean", h.mean());
        e.set("min", static_cast<unsigned long long>(h.min()));
        e.set("max", static_cast<unsigned long long>(h.max()));
        e.set("bucketWidth",
              static_cast<unsigned long long>(h.bucketWidth()));
        Json buckets = Json::array();
        for (std::size_t i = 0; i < h.numBuckets(); ++i)
            buckets.push(static_cast<unsigned long long>(h.bucket(i)));
        e.set("buckets", std::move(buckets));
        out.push(std::move(e));
    }

    void
    onDerived(const std::string &name, const std::string &desc,
              double value) override
    {
        Json e = base("derived", name, desc);
        e.set("value", value);
        out.push(std::move(e));
    }

  private:
    static Json
    base(const char *kind, const std::string &name,
         const std::string &desc)
    {
        Json e = Json::object();
        e.set("kind", kind);
        e.set("name", name);
        if (!desc.empty())
            e.set("desc", desc);
        return e;
    }
};

} // namespace

Json
statGroupToJson(const StatGroup &g)
{
    JsonStatVisitor v;
    g.visit(v);
    Json j = Json::object();
    j.set("group", g.name());
    j.set("stats", std::move(v.out));
    return j;
}

Json
makeSweepArtifact(const std::string &bench, Json params, Json cells,
                  Json summary)
{
    DIR2B_ASSERT(cells.isArray(), "artifact cells must be an array");
    Json j = Json::object();
    j.set("schema", reportSchemaName);
    j.set("schema_version", reportSchemaVersion);
    j.set("bench", bench);
    if (!params.isNull())
        j.set("params", std::move(params));
    j.set("cells", std::move(cells));
    if (!summary.isNull())
        j.set("summary", std::move(summary));
    return j;
}

Json
makeCheckArtifact(const std::string &tool, Json params, Json cells,
                  Json summary)
{
    DIR2B_ASSERT(cells.isArray(), "artifact cells must be an array");
    Json j = Json::object();
    j.set("schema", checkSchemaName);
    j.set("schema_version", reportSchemaVersion);
    j.set("bench", tool);
    if (!params.isNull())
        j.set("params", std::move(params));
    j.set("cells", std::move(cells));
    if (!summary.isNull())
        j.set("summary", std::move(summary));
    return j;
}

void
stampMeta(Json &artifact, unsigned threads, double wallMs, bool quick)
{
    Json meta = Json::object();
    meta.set("threads", threads);
    meta.set("wall_ms", wallMs);
    meta.set("quick", quick);
    artifact.set("meta", std::move(meta));
}

void
writeArtifact(const std::string &path, const Json &artifact)
{
    std::ofstream out(path);
    if (!out)
        DIR2B_FATAL("cannot open '", path, "' for writing");
    artifact.write(out, 2);
    out << "\n";
    if (!out)
        DIR2B_FATAL("write to '", path, "' failed");
}

Json
readArtifact(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        DIR2B_FATAL("cannot open '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        return Json::parse(buf.str());
    } catch (const std::exception &e) {
        DIR2B_FATAL("'", path, "': ", e.what());
    }
}

bool
sameArtifactPayload(const Json &a, const Json &b)
{
    if (!a.isObject() || !b.isObject())
        return a == b;
    auto strip = [](const Json &j) {
        Json out = Json::object();
        for (const auto &m : j.members())
            if (m.first != "meta")
                out.set(m.first, m.second);
        return out;
    };
    return strip(a) == strip(b);
}

} // namespace dir2b
