#include "report/report.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace dir2b
{

Json
countsToJson(const AccessCounts &c)
{
    Json j = Json::object();
    AccessCounts::forEachField(
        c, [&j](const char *name, std::uint64_t v) {
            j.set(name, Json(static_cast<unsigned long long>(v)));
        });
    j.set("missRatio", c.missRatio());
    j.set("uselessPerRef", c.uselessPerRef());
    return j;
}

Json
runResultToJson(const RunResult &r)
{
    Json j = Json::object();
    j.set("counts", countsToJson(r.counts));
    j.set("perCacheUselessPerRef", r.perCacheUselessPerRef);

    Json measured = Json::object();
    measured.set("sharedRefs",
                 static_cast<unsigned long long>(r.sharedRefs));
    measured.set("sharedWrites",
                 static_cast<unsigned long long>(r.sharedWrites));
    measured.set("sharedHits",
                 static_cast<unsigned long long>(r.sharedHits));
    measured.set("q", r.measuredQ(r.counts.refs()));
    measured.set("w", r.measuredW());
    measured.set("h", r.measuredH());
    j.set("measured", measured);

    if (r.stateSamples) {
        Json occ = Json::object();
        static const char *const names[4] = {"absent", "present1",
                                             "presentStar", "presentM"};
        for (int s = 0; s < 4; ++s)
            occ.set(names[s], r.stateOccupancy[static_cast<size_t>(s)]);
        occ.set("samples",
                static_cast<unsigned long long>(r.stateSamples));
        j.set("stateOccupancy", occ);
    }
    return j;
}

namespace
{

/** StatVisitor rendering each entry as one JSON object. */
class JsonStatVisitor : public StatVisitor
{
  public:
    Json out = Json::array();

    void
    onCounter(const std::string &name, const std::string &desc,
              const Counter &c) override
    {
        Json e = base("counter", name, desc);
        e.set("value", static_cast<unsigned long long>(c.value()));
        out.push(std::move(e));
    }

    void
    onMean(const std::string &name, const std::string &desc,
           const Mean &m) override
    {
        Json e = base("mean", name, desc);
        e.set("mean", m.mean());
        e.set("sum", m.sum());
        e.set("samples", static_cast<unsigned long long>(m.samples()));
        out.push(std::move(e));
    }

    void
    onHistogram(const std::string &name, const std::string &desc,
                const Histogram &h) override
    {
        Json e = base("histogram", name, desc);
        e.set("samples", static_cast<unsigned long long>(h.samples()));
        e.set("mean", h.mean());
        e.set("min", static_cast<unsigned long long>(h.min()));
        e.set("max", static_cast<unsigned long long>(h.max()));
        e.set("p50", static_cast<unsigned long long>(h.p50()));
        e.set("p95", static_cast<unsigned long long>(h.p95()));
        e.set("p99", static_cast<unsigned long long>(h.p99()));
        e.set("bucketWidth",
              static_cast<unsigned long long>(h.bucketWidth()));
        Json buckets = Json::array();
        for (std::size_t i = 0; i < h.numBuckets(); ++i)
            buckets.push(static_cast<unsigned long long>(h.bucket(i)));
        e.set("buckets", std::move(buckets));
        out.push(std::move(e));
    }

    void
    onDerived(const std::string &name, const std::string &desc,
              double value) override
    {
        Json e = base("derived", name, desc);
        e.set("value", value);
        out.push(std::move(e));
    }

  private:
    static Json
    base(const char *kind, const std::string &name,
         const std::string &desc)
    {
        Json e = Json::object();
        e.set("kind", kind);
        e.set("name", name);
        if (!desc.empty())
            e.set("desc", desc);
        return e;
    }
};

} // namespace

Json
statGroupToJson(const StatGroup &g)
{
    JsonStatVisitor v;
    g.visit(v);
    Json j = Json::object();
    j.set("group", g.name());
    j.set("stats", std::move(v.out));
    return j;
}

Json
histogramSummaryJson(const Histogram &h)
{
    Json j = Json::object();
    j.set("samples", static_cast<unsigned long long>(h.samples()));
    j.set("mean", h.mean());
    j.set("min", static_cast<unsigned long long>(h.min()));
    j.set("max", static_cast<unsigned long long>(h.max()));
    j.set("p50", static_cast<unsigned long long>(h.p50()));
    j.set("p95", static_cast<unsigned long long>(h.p95()));
    j.set("p99", static_cast<unsigned long long>(h.p99()));
    return j;
}

Json
dirStoreJson(const DirStoreCounters &c)
{
    auto u = [](std::uint64_t v) {
        return static_cast<unsigned long long>(v);
    };
    Json j = Json::object();
    j.set("ramBudgetBytes", u(c.ramBudgetBytes));
    j.set("residentBytes", u(c.residentBytes));
    j.set("compressedBytes", u(c.compressedBytes));
    j.set("segmentBytes", u(c.segmentBytes));
    j.set("hotPages", u(c.hotPages));
    j.set("coldPages", u(c.coldPages));
    j.set("diskPages", u(c.diskPages));
    j.set("compressions", u(c.compressions));
    j.set("decompressions", u(c.decompressions));
    j.set("diskPageWrites", u(c.diskPageWrites));
    j.set("diskPageReads", u(c.diskPageReads));
    return j;
}

namespace
{

/** v2 rule: percentile fields present and numeric on an object. */
std::string
checkPercentiles(const Json &obj, const std::string &where)
{
    for (const char *key : {"p50", "p95", "p99"}) {
        if (!obj.contains(key))
            return where + " lacks '" + key + "' (schema_version >= 2)";
        if (!obj.at(key).isNumber())
            return where + ": '" + key + "' is not numeric";
    }
    return "";
}

/** v3 rule: a "dirStore" object carries the complete counter set. */
std::string
checkDirStore(const Json &obj, const std::string &where)
{
    for (const char *key :
         {"ramBudgetBytes", "residentBytes", "compressedBytes",
          "segmentBytes", "hotPages", "coldPages", "diskPages",
          "compressions", "decompressions", "diskPageWrites",
          "diskPageReads"}) {
        if (!obj.contains(key))
            return where + " lacks '" + key +
                   "' (schema_version >= 3)";
        if (!obj.at(key).isNumber())
            return where + ": '" + key + "' is not numeric";
    }
    return "";
}

/** v4 rule: a "traceReplay" object carries complete provenance. */
std::string
checkTraceReplay(const Json &obj, const std::string &where)
{
    for (const char *key :
         {"records", "blocks", "blockRecords", "mappedBytes"}) {
        if (!obj.contains(key))
            return where + " lacks '" + key +
                   "' (schema_version >= 4)";
        if (!obj.at(key).isNumber())
            return where + ": '" + key + "' is not numeric";
    }
    if (!obj.contains("batched") ||
        obj.at("batched").kind() != Json::Kind::Bool)
        return where + " lacks a boolean 'batched'";
    return "";
}

/** v5 rule: a "series" object carries complete sampling provenance. */
std::string
checkSeries(const Json &obj, const std::string &where)
{
    if (!obj.contains("domain") || !obj.at("domain").isString() ||
        (obj.at("domain").asString() != "refs" &&
         obj.at("domain").asString() != "ticks"))
        return where + " lacks a 'domain' of \"refs\" or \"ticks\" "
                       "(schema_version >= 5)";
    for (const char *key : {"interval", "metrics", "samples"}) {
        if (!obj.contains(key))
            return where + " lacks '" + key +
                   "' (schema_version >= 5)";
        if (!obj.at(key).isNumber())
            return where + ": '" + key + "' is not numeric";
    }
    return "";
}

} // namespace

std::string
validateSweepArtifact(const Json &a)
{
    if (!a.isObject())
        return "top level is not an object";
    for (const char *key : {"schema", "schema_version", "bench",
                            "cells", "meta"})
        if (!a.contains(key))
            return std::string("missing required field '") + key + "'";
    if (!a.at("schema").isString())
        return "'schema' is not a string";
    const std::string schema = a.at("schema").asString();
    if (schema != reportSchemaName && schema != checkSchemaName)
        return "schema is '" + schema + "', expected '" +
               reportSchemaName + "' or '" + checkSchemaName + "'";
    if (!a.at("schema_version").isNumber())
        return "'schema_version' is not numeric";
    const auto version = a.at("schema_version").asInt();
    if (version < 1 || version > reportSchemaVersion)
        return "unsupported schema_version " + std::to_string(version);
    if (!a.at("cells").isArray())
        return "'cells' is not an array";

    std::size_t idx = 0;
    for (const Json &cell : a.at("cells").elements()) {
        const std::string where = "cell " + std::to_string(idx);
        if (!cell.isObject() || !cell.contains("section") ||
            !cell.at("section").isString())
            return where + " lacks a 'section' string";
        if (version >= 2) {
            // Distribution objects carry percentiles from v2 on: any
            // member named "latency", and any stat entry whose kind is
            // "histogram" (inside a "stats" array, statGroupToJson
            // shape).
            if (cell.contains("latency")) {
                if (!cell.at("latency").isObject())
                    return where + ": 'latency' is not an object";
                if (auto err = checkPercentiles(cell.at("latency"),
                                                where + " latency");
                    !err.empty())
                    return err;
            }
            if (cell.contains("stats") && cell.at("stats").isArray()) {
                for (const Json &s : cell.at("stats").elements()) {
                    if (!s.isObject() || !s.contains("kind") ||
                        !s.at("kind").isString() ||
                        s.at("kind").asString() != "histogram")
                        continue;
                    if (auto err = checkPercentiles(
                            s, where + " histogram stat");
                        !err.empty())
                        return err;
                }
            }
        }
        if (cell.contains("dirStore")) {
            if (version < 3)
                return where +
                       ": 'dirStore' needs schema_version >= 3";
            if (!cell.at("dirStore").isObject())
                return where + ": 'dirStore' is not an object";
            if (auto err = checkDirStore(cell.at("dirStore"),
                                         where + " dirStore");
                !err.empty())
                return err;
        }
        if (cell.contains("traceReplay")) {
            if (version < 4)
                return where +
                       ": 'traceReplay' needs schema_version >= 4";
            if (!cell.at("traceReplay").isObject())
                return where + ": 'traceReplay' is not an object";
            if (auto err = checkTraceReplay(cell.at("traceReplay"),
                                            where + " traceReplay");
                !err.empty())
                return err;
        }
        if (cell.contains("series")) {
            if (version < 5)
                return where + ": 'series' needs schema_version >= 5";
            if (!cell.at("series").isObject())
                return where + ": 'series' is not an object";
            if (auto err = checkSeries(cell.at("series"),
                                       where + " series");
                !err.empty())
                return err;
        }
        ++idx;
    }
    const Json &meta = a.at("meta");
    if (!meta.isObject() || !meta.contains("threads") ||
        !meta.contains("wall_ms"))
        return "malformed 'meta' block";
    return "";
}

Json
makeSweepArtifact(const std::string &bench, Json params, Json cells,
                  Json summary)
{
    DIR2B_ASSERT(cells.isArray(), "artifact cells must be an array");
    Json j = Json::object();
    j.set("schema", reportSchemaName);
    j.set("schema_version", reportSchemaVersion);
    j.set("bench", bench);
    if (!params.isNull())
        j.set("params", std::move(params));
    j.set("cells", std::move(cells));
    if (!summary.isNull())
        j.set("summary", std::move(summary));
    return j;
}

Json
makeCheckArtifact(const std::string &tool, Json params, Json cells,
                  Json summary)
{
    DIR2B_ASSERT(cells.isArray(), "artifact cells must be an array");
    Json j = Json::object();
    j.set("schema", checkSchemaName);
    j.set("schema_version", reportSchemaVersion);
    j.set("bench", tool);
    if (!params.isNull())
        j.set("params", std::move(params));
    j.set("cells", std::move(cells));
    if (!summary.isNull())
        j.set("summary", std::move(summary));
    return j;
}

void
stampMeta(Json &artifact, unsigned threads, double wallMs, bool quick)
{
    Json meta = Json::object();
    meta.set("threads", threads);
    meta.set("wall_ms", wallMs);
    meta.set("quick", quick);
    artifact.set("meta", std::move(meta));
}

void
writeArtifact(const std::string &path, const Json &artifact)
{
    std::ofstream out(path);
    if (!out)
        DIR2B_FATAL("cannot open '", path, "' for writing");
    artifact.write(out, 2);
    out << "\n";
    if (!out)
        DIR2B_FATAL("write to '", path, "' failed");
}

Json
readArtifact(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        DIR2B_FATAL("cannot open '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        return Json::parse(buf.str());
    } catch (const std::exception &e) {
        DIR2B_FATAL("'", path, "': ", e.what());
    }
}

bool
sameArtifactPayload(const Json &a, const Json &b)
{
    if (!a.isObject() || !b.isObject())
        return a == b;
    auto strip = [](const Json &j) {
        Json out = Json::object();
        for (const auto &m : j.members())
            if (m.first != "meta")
                out.set(m.first, m.second);
        return out;
    };
    return strip(a) == strip(b);
}

} // namespace dir2b
