/**
 * @file
 * Minimal JSON document model: build, serialize, parse.
 *
 * The report layer (src/report/report.hh) serializes sweep results to
 * machine-readable artifacts, and the smoke tooling parses them back
 * to validate structure — both on top of this one small value type.
 * No external dependency; the dialect is plain RFC 8259 with two
 * deliberate choices for reproducibility:
 *
 *  - object members keep insertion order (serialization is therefore
 *    deterministic: the same build sequence gives byte-identical
 *    text, which is what lets `--threads 1` and `--threads 16`
 *    artifacts be diffed directly);
 *  - doubles are written with the shortest round-trip representation
 *    (std::to_chars), integers as integers.
 */

#ifndef DIR2B_REPORT_JSON_HH
#define DIR2B_REPORT_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace dir2b
{

/** One JSON value: null, bool, number, string, array or object. */
class Json
{
  public:
    enum class Kind { Null, Bool, Int, Uint, Double, String, Array,
                      Object };

    Json() = default;
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    Json(int v) : kind_(Kind::Int), int_(v) {}
    Json(long v) : kind_(Kind::Int), int_(v) {}
    Json(long long v) : kind_(Kind::Int), int_(v) {}
    Json(unsigned v) : kind_(Kind::Uint), uint_(v) {}
    Json(unsigned long v) : kind_(Kind::Uint), uint_(v) {}
    Json(unsigned long long v) : kind_(Kind::Uint), uint_(v) {}
    Json(double v) : kind_(Kind::Double), double_(v) {}
    Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Json(const char *s) : kind_(Kind::String), str_(s) {}

    static Json object() { Json j; j.kind_ = Kind::Object; return j; }
    static Json array() { Json j; j.kind_ = Kind::Array; return j; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isString() const { return kind_ == Kind::String; }
    bool
    isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Uint ||
               kind_ == Kind::Double;
    }

    /** Append/replace a member (object only). */
    Json &set(const std::string &key, Json v);
    /** Append an element (array only). */
    Json &push(Json v);

    /** Elements of an array / members of an object. */
    std::size_t size() const;
    bool contains(const std::string &key) const;
    /** Member access; panics if absent or not an object/array. */
    const Json &at(const std::string &key) const;
    const Json &at(std::size_t i) const;
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return object_;
    }
    const std::vector<Json> &elements() const { return array_; }

    bool asBool() const;
    std::int64_t asInt() const;
    std::uint64_t asUint() const;
    double asDouble() const;
    const std::string &asString() const;

    /** Structural equality (numeric kinds compare by value). */
    bool operator==(const Json &o) const;
    bool operator!=(const Json &o) const { return !(*this == o); }

    /** Serialize; indent = 0 gives compact one-line output. */
    void write(std::ostream &os, int indent = 2) const;
    std::string dump(int indent = 2) const;

    /** Parse a complete document; throws std::runtime_error with a
     *  position on malformed input. */
    static Json parse(const std::string &text);

    /** Escape a string body per RFC 8259 (no surrounding quotes). */
    static std::string escape(const std::string &s);

  private:
    void writeIndented(std::ostream &os, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string str_;
    std::vector<Json> array_;
    std::vector<std::pair<std::string, Json>> object_;
};

} // namespace dir2b

#endif // DIR2B_REPORT_JSON_HH
