/**
 * @file
 * The common command line of the table benches.
 *
 * Every bench/ grid binary accepts the same knobs:
 *
 *   --threads N   pool width for the cell sweep (0/default: the
 *                 DIR2B_THREADS environment knob, else all cores)
 *   --json PATH   also emit the machine-readable artifact
 *                 (docs/METRICS.md) next to the text tables
 *   --quick       shrink per-cell reference counts ~10x for smoke
 *                 runs; the *grid* (cell count) is unchanged
 *   --shards N    timed-tier engine shards per run (default 1 =
 *                 serial; N > 1 runs each timed system sharded by
 *                 directory home — bit-identical statistics, see
 *                 src/timed/sharded_system.hh).  Benches without a
 *                 timed tier accept and ignore it.
 *   --dir-ram-budget BYTES
 *                 total directory RAM budget per run (suffixes K/M/G
 *                 accepted); cold directory pages compress and spill
 *                 past it (util/tiered_store.hh).  0 = unlimited.
 *                 Statistics are bit-identical at any budget; only
 *                 host memory and wall clock move.  Benches without a
 *                 two-bit directory accept and ignore it.
 *   --series-out PATH
 *                 record a dir2b.series telemetry artifact from one
 *                 designated cell (benches with a timed tier; others
 *                 accept and ignore it — see each bench's blurb)
 *   --series-interval N
 *                 sample every N ticks (suffixes k/m/g; default 4096
 *                 when --series-out is given)
 *
 * parseBenchOptions() also wires --threads into
 * setDefaultThreadCount() so nested library code sees the same width.
 */

#ifndef DIR2B_REPORT_BENCH_CLI_HH
#define DIR2B_REPORT_BENCH_CLI_HH

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>

#include "report/report.hh"
#include "util/parse_args.hh"

namespace dir2b
{

/** Parsed common bench options. */
struct BenchOptions
{
    unsigned threads = 0; ///< 0 = defaultThreadCount()
    std::string jsonPath; ///< empty = no artifact
    bool quick = false;
    unsigned shards = 1;  ///< timed-engine shards per run (1 = serial)
    std::uint64_t dirRamBudget = 0; ///< bytes; 0 = unlimited
    std::string seriesPath;           ///< empty = no series artifact
    std::uint64_t seriesInterval = 0; ///< 0 = default when sampling

    /** Telemetry sampling requested (either series flag). */
    bool
    seriesRequested() const
    {
        return seriesInterval != 0 || !seriesPath.empty();
    }

    /** The sample interval to use (default 4096 domain units). */
    std::uint64_t
    resolvedSeriesInterval() const
    {
        return seriesInterval ? seriesInterval : 4096;
    }

    /** Per-cell reference budget: full size, or ~1/10 under --quick
     *  (floored so tiny grids still exercise every code path). */
    std::uint64_t
    scaleRefs(std::uint64_t full) const
    {
        if (!quick)
            return full;
        return std::max<std::uint64_t>(full / 10, 2000);
    }

    /** The pool width the sweep will actually use. */
    unsigned resolvedThreads() const;
};

/**
 * Parse argv.  Unknown options are fatal; --help prints usage (with
 * `blurb` as the first line) and exits 0.
 */
BenchOptions parseBenchOptions(int argc, char **argv,
                               const std::string &bench,
                               const std::string &blurb);

/** Wall-clock timer for the meta block. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    double
    elapsedMs() const
    {
        const auto d = std::chrono::steady_clock::now() - start_;
        return std::chrono::duration<double, std::milli>(d).count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * If --json was given: assemble the artifact, stamp the meta block
 * and write it.  No-op otherwise.  `params`/`summary` may be Json().
 */
void emitArtifact(const BenchOptions &opts, const std::string &bench,
                  Json params, Json cells, Json summary,
                  const WallTimer &timer);

} // namespace dir2b

#endif // DIR2B_REPORT_BENCH_CLI_HH
