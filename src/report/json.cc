#include "report/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/logging.hh"

namespace dir2b
{

Json &
Json::set(const std::string &key, Json v)
{
    DIR2B_ASSERT(kind_ == Kind::Object, "Json::set on non-object");
    for (auto &m : object_) {
        if (m.first == key) {
            m.second = std::move(v);
            return *this;
        }
    }
    object_.emplace_back(key, std::move(v));
    return *this;
}

Json &
Json::push(Json v)
{
    DIR2B_ASSERT(kind_ == Kind::Array, "Json::push on non-array");
    array_.push_back(std::move(v));
    return *this;
}

std::size_t
Json::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return object_.size();
    return 0;
}

bool
Json::contains(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return false;
    for (const auto &m : object_)
        if (m.first == key)
            return true;
    return false;
}

const Json &
Json::at(const std::string &key) const
{
    DIR2B_ASSERT(kind_ == Kind::Object, "Json::at(key) on non-object");
    for (const auto &m : object_)
        if (m.first == key)
            return m.second;
    DIR2B_PANIC("Json: no member '", key, "'");
}

const Json &
Json::at(std::size_t i) const
{
    DIR2B_ASSERT(kind_ == Kind::Array, "Json::at(index) on non-array");
    DIR2B_ASSERT(i < array_.size(), "Json: index ", i, " out of range");
    return array_[i];
}

bool
Json::asBool() const
{
    DIR2B_ASSERT(kind_ == Kind::Bool, "Json::asBool on non-bool");
    return bool_;
}

std::int64_t
Json::asInt() const
{
    switch (kind_) {
      case Kind::Int: return int_;
      case Kind::Uint: return static_cast<std::int64_t>(uint_);
      case Kind::Double: return static_cast<std::int64_t>(double_);
      default: DIR2B_PANIC("Json::asInt on non-number");
    }
}

std::uint64_t
Json::asUint() const
{
    switch (kind_) {
      case Kind::Uint: return uint_;
      case Kind::Int:
        DIR2B_ASSERT(int_ >= 0, "Json::asUint on negative value");
        return static_cast<std::uint64_t>(int_);
      case Kind::Double: return static_cast<std::uint64_t>(double_);
      default: DIR2B_PANIC("Json::asUint on non-number");
    }
}

double
Json::asDouble() const
{
    switch (kind_) {
      case Kind::Double: return double_;
      case Kind::Int: return static_cast<double>(int_);
      case Kind::Uint: return static_cast<double>(uint_);
      default: DIR2B_PANIC("Json::asDouble on non-number");
    }
}

const std::string &
Json::asString() const
{
    DIR2B_ASSERT(kind_ == Kind::String, "Json::asString on non-string");
    return str_;
}

bool
Json::operator==(const Json &o) const
{
    if (isNumber() && o.isNumber()) {
        // Integer kinds compare exactly when both are integral.
        if (kind_ != Kind::Double && o.kind_ != Kind::Double) {
            const bool negA = kind_ == Kind::Int && int_ < 0;
            const bool negB = o.kind_ == Kind::Int && o.int_ < 0;
            if (negA != negB)
                return false;
            return negA ? int_ == o.int_ : asUint() == o.asUint();
        }
        return asDouble() == o.asDouble();
    }
    if (kind_ != o.kind_)
        return false;
    switch (kind_) {
      case Kind::Null: return true;
      case Kind::Bool: return bool_ == o.bool_;
      case Kind::String: return str_ == o.str_;
      case Kind::Array: return array_ == o.array_;
      case Kind::Object: return object_ == o.object_;
      default: return true; // numbers handled above
    }
}

std::string
Json::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

void
writeDouble(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; null keeps the artifact parseable.
        os << "null";
        return;
    }
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    std::string text(buf, res.ptr);
    // Keep numbers recognisably floating point for consumers that
    // distinguish 1 from 1.0.
    if (text.find('.') == std::string::npos &&
        text.find('e') == std::string::npos &&
        text.find("inf") == std::string::npos)
        text += ".0";
    os << text;
}

} // namespace

void
Json::writeIndented(std::ostream &os, int indent, int depth) const
{
    const std::string pad(static_cast<std::size_t>(indent) *
                              (static_cast<std::size_t>(depth) + 1),
                          ' ');
    const std::string closePad(
        static_cast<std::size_t>(indent) *
            static_cast<std::size_t>(depth),
        ' ');
    const char *nl = indent > 0 ? "\n" : "";
    const char *colon = indent > 0 ? ": " : ":";

    switch (kind_) {
      case Kind::Null: os << "null"; break;
      case Kind::Bool: os << (bool_ ? "true" : "false"); break;
      case Kind::Int: os << int_; break;
      case Kind::Uint: os << uint_; break;
      case Kind::Double: writeDouble(os, double_); break;
      case Kind::String: os << '"' << escape(str_) << '"'; break;
      case Kind::Array:
        if (array_.empty()) {
            os << "[]";
            break;
        }
        os << '[' << nl;
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (indent > 0)
                os << pad;
            array_[i].writeIndented(os, indent, depth + 1);
            if (i + 1 < array_.size())
                os << ',';
            os << nl;
        }
        if (indent > 0)
            os << closePad;
        os << ']';
        break;
      case Kind::Object:
        if (object_.empty()) {
            os << "{}";
            break;
        }
        os << '{' << nl;
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (indent > 0)
                os << pad;
            os << '"' << escape(object_[i].first) << '"' << colon;
            object_[i].second.writeIndented(os, indent, depth + 1);
            if (i + 1 < object_.size())
                os << ',';
            os << nl;
        }
        if (indent > 0)
            os << closePad;
        os << '}';
        break;
    }
}

void
Json::write(std::ostream &os, int indent) const
{
    writeIndented(os, indent, 0);
}

std::string
Json::dump(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

namespace
{

/** Recursive-descent parser over the whole document. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json
    document()
    {
        skipWs();
        Json v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("json parse error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(const char *lit)
    {
        std::size_t n = 0;
        while (lit[n])
            ++n;
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Json
    value()
    {
        switch (peek()) {
          case '{': return objectValue();
          case '[': return arrayValue();
          case '"': return Json(stringValue());
          case 't':
            if (consume("true"))
                return Json(true);
            fail("bad literal");
          case 'f':
            if (consume("false"))
                return Json(false);
            fail("bad literal");
          case 'n':
            if (consume("null"))
                return Json();
            fail("bad literal");
          default: return numberValue();
        }
    }

    Json
    objectValue()
    {
        expect('{');
        Json obj = Json::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        for (;;) {
            skipWs();
            const std::string key = stringValue();
            skipWs();
            expect(':');
            skipWs();
            obj.set(key, value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    Json
    arrayValue()
    {
        expect('[');
        Json arr = Json::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        for (;;) {
            skipWs();
            arr.push(value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string
    stringValue()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("short \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // Encode as UTF-8 (basic plane; surrogate pairs are
                // not produced by our writer).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default: fail("unknown escape");
            }
        }
    }

    Json
    numberValue()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        bool isDouble = false;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                isDouble = true;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            fail("expected a value");
        const std::string tok = text_.substr(start, pos_ - start);
        if (!isDouble) {
            if (tok[0] == '-') {
                std::int64_t v = 0;
                const auto res = std::from_chars(
                    tok.data(), tok.data() + tok.size(), v);
                if (res.ec == std::errc())
                    return Json(static_cast<long long>(v));
            } else {
                std::uint64_t v = 0;
                const auto res = std::from_chars(
                    tok.data(), tok.data() + tok.size(), v);
                if (res.ec == std::errc())
                    return Json(static_cast<unsigned long long>(v));
            }
        }
        double d = 0.0;
        const auto res =
            std::from_chars(tok.data(), tok.data() + tok.size(), d);
        if (res.ec != std::errc() || res.ptr != tok.data() + tok.size())
            fail("malformed number '" + tok + "'");
        return Json(d);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).document();
}

} // namespace dir2b
