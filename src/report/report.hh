/**
 * @file
 * Structured metrics export: the BENCH_*.json artifact schema.
 *
 * Every table bench (and dir2bsim) can serialize its sweep to a JSON
 * artifact so results are diffable across commits and machines.  The
 * layout (schema version 1, see docs/METRICS.md for field meanings):
 *
 *   {
 *     "schema": "dir2b.sweep",
 *     "schema_version": 1,
 *     "bench": "<binary name>",
 *     "params": { ...grid-wide configuration... },
 *     "cells":  [ { "section": ..., <axes>, <results> }, ... ],
 *     "summary": { ...cross-cell aggregates... },
 *     "meta":   { "threads": N, "wall_ms": T, "quick": B }
 *   }
 *
 * Everything outside "meta" is a pure function of the configuration —
 * a sweep at --threads 1 and --threads 16 emits byte-identical text
 * once "meta" is excluded (sameArtifactPayload() implements exactly
 * that comparison).  Cells appear in grid order, never in completion
 * order.
 */

#ifndef DIR2B_REPORT_REPORT_HH
#define DIR2B_REPORT_REPORT_HH

#include <string>

#include "core/two_bit_directory.hh"
#include "proto/counts.hh"
#include "report/json.hh"
#include "sim/stats.hh"
#include "system/func_system.hh"

namespace dir2b
{

/** Version of the artifact layout; bump on any incompatible change
 *  and record the change in docs/METRICS.md.
 *  v2: histogram stat entries and "latency" summary objects carry
 *  p50/p95/p99 percentile fields.
 *  v3: cells produced by a TieredStore-backed directory may carry a
 *  "dirStore" object (resident/compressed/segment bytes, per-tier
 *  page counts and tier-movement counters); when present it must be
 *  complete.  Timed cells may also carry epoch accounting (epochs /
 *  inlineEpochs / shardEpochsSkipped).
 *  v4: cells produced by replaying a binary trace (docs/TRACES.md)
 *  may carry a "traceReplay" provenance object (records, blocks,
 *  blockRecords, mappedBytes, batched flag); when present it must be
 *  complete.
 *  v5: cells whose run was telemetry-sampled (obs/telemetry.hh) may
 *  carry a "series" provenance object (domain, interval, metrics,
 *  samples) pointing at the companion dir2b.series artifact; when
 *  present it must be complete. */
constexpr int reportSchemaVersion = 5;

/** The "schema" discriminator string. */
constexpr const char *reportSchemaName = "dir2b.sweep";

/** Discriminator of correctness-tooling artifacts (model checker,
 *  differential fuzzer, replay tool); same envelope as dir2b.sweep,
 *  different cell vocabulary (see docs/CHECKING.md). */
constexpr const char *checkSchemaName = "dir2b.check";

/** Every AccessCounts field (raw counters) plus the derived ratios. */
Json countsToJson(const AccessCounts &c);

/** A full functional-tier run: counts + measured model parameters +
 *  state occupancies. */
Json runResultToJson(const RunResult &r);

/** A StatGroup: every entry with its kind, value(s) and description. */
Json statGroupToJson(const StatGroup &g);

/** Compact distribution summary (samples/mean/min/max/p50/p95/p99) —
 *  the shape sweep cells use for latency objects. */
Json histogramSummaryJson(const Histogram &h);

/** The v3 "dirStore" cell object: tiered directory-storage counters
 *  (budget, per-tier bytes and page counts, tier movement). */
Json dirStoreJson(const DirStoreCounters &c);

/** True when `c` reflects an actual TieredStore-backed directory —
 *  the emit-or-omit test drivers use so non-two-bit cells keep their
 *  pre-v3 shape. */
inline bool
hasDirStore(const DirStoreCounters &c)
{
    return c.ramBudgetBytes || c.hotPages || c.coldPages ||
           c.diskPages;
}

/**
 * Structural validation of a parsed dir2b.sweep / dir2b.check
 * document.  Returns "" when valid, else a one-line description of
 * the first problem.  Shared by tools/check_artifact and the fixture
 * tests; dir2b.trace documents have their own validator in
 * obs/chrome_trace.hh.
 */
std::string validateSweepArtifact(const Json &doc);

/**
 * Assemble a schema-stamped artifact.  `params` and `summary` may be
 * null Json() when a bench has nothing grid-wide to record; `cells`
 * must be an array.
 */
Json makeSweepArtifact(const std::string &bench, Json params,
                       Json cells, Json summary = Json());

/** Same envelope, stamped with the dir2b.check schema — used by the
 *  model checker, the fuzzer and replay_check. */
Json makeCheckArtifact(const std::string &tool, Json params,
                       Json cells, Json summary = Json());

/** Attach the volatile (non-deterministic) block.  Only fields in
 *  here may differ between runs of the same configuration. */
void stampMeta(Json &artifact, unsigned threads, double wallMs,
               bool quick);

/** Serialize to `path`; DIR2B_FATAL on I/O failure. */
void writeArtifact(const std::string &path, const Json &artifact);

/** Parse an artifact file; DIR2B_FATAL on I/O or parse failure. */
Json readArtifact(const std::string &path);

/** Deterministic-payload equality: compare everything except "meta". */
bool sameArtifactPayload(const Json &a, const Json &b);

} // namespace dir2b

#endif // DIR2B_REPORT_REPORT_HH
