#include "report/bench_cli.hh"

#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"
#include "util/parallel.hh"

namespace dir2b
{

unsigned
BenchOptions::resolvedThreads() const
{
    return threads ? threads : defaultThreadCount();
}

BenchOptions
parseBenchOptions(int argc, char **argv, const std::string &bench,
                  const std::string &blurb)
{
    BenchOptions o;
    auto usage = [&]() {
        std::printf(
            "%s\n\n"
            "usage: %s [--threads N] [--json PATH] [--quick] "
            "[--shards N] [--dir-ram-budget BYTES]\n"
            "  --threads N   sweep-pool width (default: DIR2B_THREADS\n"
            "                env var, else all hardware threads)\n"
            "  --json PATH   also write the machine-readable artifact\n"
            "                (schema: docs/METRICS.md)\n"
            "  --quick       ~10x fewer references per cell; same grid\n"
            "  --shards N    shard each timed run N ways (default 1;\n"
            "                statistics are bit-identical either way)\n"
            "  --dir-ram-budget BYTES\n"
            "                directory RAM budget per run (K/M/G\n"
            "                suffixes; 0 = unlimited); statistics are\n"
            "                bit-identical at any budget\n"
            "  --series-out PATH\n"
            "                record a dir2b.series telemetry artifact\n"
            "                from one designated cell (timed benches)\n"
            "  --series-interval N\n"
            "                sample every N ticks (k/m/g suffixes;\n"
            "                default 4096 with --series-out)\n",
            blurb.c_str(), bench.c_str());
    };
    auto need = [&](int &i) -> const char * {
        if (++i >= argc)
            DIR2B_FATAL("missing value for ", argv[i - 1]);
        return argv[i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads") {
            const long v = std::atol(need(i));
            if (v <= 0)
                DIR2B_FATAL("--threads wants a positive integer");
            o.threads = static_cast<unsigned>(v);
        } else if (arg == "--json") {
            o.jsonPath = need(i);
        } else if (arg == "--quick") {
            o.quick = true;
        } else if (arg == "--shards") {
            const long v = std::atol(need(i));
            if (v <= 0)
                DIR2B_FATAL("--shards wants a positive integer");
            o.shards = static_cast<unsigned>(v);
        } else if (arg == "--dir-ram-budget") {
            o.dirRamBudget = parseByteSize(need(i),
                                           "--dir-ram-budget");
        } else if (arg == "--series-out") {
            o.seriesPath = need(i);
        } else if (arg == "--series-interval") {
            o.seriesInterval = parseInterval(need(i),
                                             "--series-interval");
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            DIR2B_FATAL("unknown option '", arg, "'");
        }
    }
    if (o.threads)
        setDefaultThreadCount(o.threads);
    return o;
}

void
emitArtifact(const BenchOptions &opts, const std::string &bench,
             Json params, Json cells, Json summary,
             const WallTimer &timer)
{
    if (opts.jsonPath.empty())
        return;
    Json artifact = makeSweepArtifact(bench, std::move(params),
                                      std::move(cells),
                                      std::move(summary));
    stampMeta(artifact, opts.resolvedThreads(), timer.elapsedMs(),
              opts.quick);
    writeArtifact(opts.jsonPath, artifact);
    std::printf("wrote %s (%zu cells)\n", opts.jsonPath.c_str(),
                artifact.at("cells").size());
}

} // namespace dir2b
