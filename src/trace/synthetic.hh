/**
 * @file
 * The Dubois-Briggs-style synthetic reference model of §4.1/§4.2.
 *
 * Each processor's reference stream is the merge of:
 *
 *  - with probability q, a reference to one of S writeable shared
 *    blocks (uniform across them, matching Table 4-2's "probability
 *    that a shared block reference is to a particular shared block is
 *    1/S"); the reference is a write with probability w;
 *
 *  - with probability 1-q, a reference to the processor's private
 *    working set of P blocks.  Private locality is a two-level model:
 *    with probability hotFraction the reference goes to a small hot
 *    subset, giving realistic high private hit ratios without tying
 *    the generator to a specific cache geometry.  Private writes occur
 *    with probability privateWriteFrac.
 *
 * The *shared* hit ratio h and the global-state occupancies P(P1),
 * P(P*), P(PM) are therefore emergent quantities; experiments measure
 * them and feed the measurements back into the closed-form overhead
 * model, which is how bench_sim_validation cross-checks Table 4-1
 * without assuming the paper's probabilities hold by fiat.
 */

#ifndef DIR2B_TRACE_SYNTHETIC_HH
#define DIR2B_TRACE_SYNTHETIC_HH

#include <cstddef>
#include <vector>

#include "trace/reference.hh"
#include "util/random.hh"

namespace dir2b
{

/** Parameters of the merged private/shared reference model. */
struct SyntheticConfig
{
    /** Number of processors. */
    ProcId numProcs = 4;
    /** Probability a reference is to a writeable shared block (q). */
    double q = 0.05;
    /** Probability a shared reference is a write (w). */
    double w = 0.2;
    /** Number of writeable shared blocks (S). */
    std::size_t sharedBlocks = 16;
    /**
     * Temporal locality of the shared stream: probability that a
     * shared reference re-references the processor's previous shared
     * block instead of drawing uniformly.  0 reproduces the pure
     * uniform-1/S model of Table 4-2; higher values raise the shared
     * hit ratio h toward the levels §4.3 assumes.
     */
    double sharedLocality = 0.0;
    /** Private working-set size per processor, in blocks. */
    std::size_t privateBlocks = 256;
    /** Fraction of private references to the hot subset. */
    double hotFraction = 0.9;
    /** Size of the hot subset, in blocks. */
    std::size_t hotBlocks = 32;
    /** Probability a private reference is a write. */
    double privateWriteFrac = 0.25;
    /** Random seed. */
    std::uint64_t seed = 42;
    /**
     * When nonzero, hash-scatter every emitted block address
     * uniformly over [0, spaceBlocks) instead of the compact
     * shared/private region layout — the knob that lets a small
     * working set exercise a billion-block directory (tiered-store
     * experiments sweep this to 2^32).  The scatter is a fixed
     * SplitMix64 permutation, so streams stay deterministic and the
     * locality structure (which blocks recur) is unchanged; only
     * WHERE the blocks land moves.  Distinct classic addresses can
     * collide after the modulo, so keep spaceBlocks well above the
     * total working set.  0 (the default) emits the classic layout —
     * all checked-in digests use it.  Region-based classification
     * (the software scheme's nonCacheableBase) does not apply to
     * scattered addresses.
     */
    std::uint64_t spaceBlocks = 0;
};

/** Infinite merged-stream generator; round-robin across processors. */
class SyntheticStream : public RefStream
{
  public:
    explicit SyntheticStream(const SyntheticConfig &cfg);

    std::optional<MemRef> next() override;

    /**
     * Generate the next reference for a specific processor.  All
     * mutable state is per-processor, so concurrent calls for
     * DISTINCT processors are safe (the sharded timed engine issues
     * from one thread per shard).
     */
    MemRef nextFor(ProcId p);

    const SyntheticConfig &config() const { return cfg_; }

    /** Fraction of emitted references that went to shared blocks. */
    double measuredSharedFraction() const;

  private:
    /** Apply the spaceBlocks scatter (identity when the knob is 0). */
    Addr scatter(Addr a) const;

    SyntheticConfig cfg_;
    std::vector<Rng> rngs_;
    std::vector<Addr> lastShared_;
    ProcId turn_ = 0;
    /** Per-processor tallies (no cross-thread sharing in nextFor). */
    std::vector<std::uint64_t> total_;
    std::vector<std::uint64_t> shared_;
};

} // namespace dir2b

#endif // DIR2B_TRACE_SYNTHETIC_HH
