/**
 * @file
 * Structured multiprocessor workload generators.
 *
 * The paper's analysis covers uniform random sharing; these generators
 * exercise the *structured* sharing patterns its introduction
 * motivates ("processors used cooperatively on a common application")
 * and the process-migration effect §2.2/§4.2 mentions.  Each produces
 * a merged reference stream like SyntheticStream and is used by the
 * protocol-comparison bench and the examples.
 *
 *   ProducerConsumer  one producer writes a ring of shared buffer
 *                     blocks; consumers read each block after it is
 *                     produced.  Read-sharing dominated.
 *   Migratory         blocks accessed in read-modify-write bursts by
 *                     one processor at a time, rotating — the classic
 *                     lock-protected-data pattern where ownership
 *                     migrates.
 *   LockContention    all processors hammer a handful of lock blocks
 *                     with read-test-then-write sequences; worst case
 *                     for broadcast schemes.
 *   ReadMostly        shared blocks read by everyone, written rarely;
 *                     best case for Present*-style read sharing.
 *   TaskMigration     private working sets, but tasks periodically
 *                     migrate to another processor, dragging their
 *                     blocks along — the effect the paper says can be
 *                     "accounted for by adjusting the level of
 *                     sharing".
 */

#ifndef DIR2B_TRACE_WORKLOADS_HH
#define DIR2B_TRACE_WORKLOADS_HH

#include <cstddef>
#include <string>
#include <vector>

#include "trace/reference.hh"
#include "util/random.hh"

namespace dir2b
{

/** Shared knobs for the structured workloads. */
struct WorkloadConfig
{
    ProcId numProcs = 4;
    /** Shared blocks involved in the pattern. */
    std::size_t sharedBlocks = 16;
    /** Private working-set blocks per processor (background refs). */
    std::size_t privateBlocks = 64;
    /** Fraction of references that are background private traffic. */
    double privateFraction = 0.8;
    /** Probability a private reference is a write. */
    double privateWriteFrac = 0.25;
    std::uint64_t seed = 42;
};

/** Base: round-robin across processors with background private refs. */
class Workload : public RefStream
{
  public:
    explicit Workload(const WorkloadConfig &cfg);

    std::optional<MemRef> next() override;

    virtual std::string name() const = 0;

  protected:
    /** Next *shared-pattern* reference for processor p. */
    virtual MemRef sharedRef(ProcId p, Rng &rng) = 0;

    WorkloadConfig cfg_;
    std::vector<Rng> rngs_;

  private:
    ProcId turn_ = 0;
};

/** One writer, n-1 readers over a ring of buffer blocks. */
class ProducerConsumerWorkload : public Workload
{
  public:
    explicit ProducerConsumerWorkload(const WorkloadConfig &cfg)
        : Workload(cfg)
    {}

    std::string name() const override { return "producer_consumer"; }

  protected:
    MemRef sharedRef(ProcId p, Rng &rng) override;

  private:
    std::uint64_t produceCursor_ = 0;
    std::vector<std::uint64_t> consumeCursor_ =
        std::vector<std::uint64_t>(cfg_.numProcs, 0);
};

/** Rotating read-modify-write ownership of shared blocks. */
class MigratoryWorkload : public Workload
{
  public:
    explicit MigratoryWorkload(const WorkloadConfig &cfg,
                               std::size_t burstLength = 4)
        : Workload(cfg), burst_(burstLength)
    {}

    std::string name() const override { return "migratory"; }

  protected:
    MemRef sharedRef(ProcId p, Rng &rng) override;

  private:
    std::size_t burst_;
    std::vector<std::uint64_t> phase_ =
        std::vector<std::uint64_t>(cfg_.numProcs, 0);
};

/** All processors test-and-set a few lock blocks. */
class LockContentionWorkload : public Workload
{
  public:
    explicit LockContentionWorkload(const WorkloadConfig &cfg,
                                    std::size_t locks = 2)
        : Workload(cfg), locks_(locks ? locks : 1)
    {}

    std::string name() const override { return "lock_contention"; }

  protected:
    MemRef sharedRef(ProcId p, Rng &rng) override;

  private:
    std::size_t locks_;
    std::vector<bool> pendingWrite_ =
        std::vector<bool>(cfg_.numProcs, false);
    std::vector<Addr> lastLock_ = std::vector<Addr>(cfg_.numProcs, 0);
};

/** Widely read, rarely written shared data. */
class ReadMostlyWorkload : public Workload
{
  public:
    explicit ReadMostlyWorkload(const WorkloadConfig &cfg,
                                double writeFrac = 0.02)
        : Workload(cfg), writeFrac_(writeFrac)
    {}

    std::string name() const override { return "read_mostly"; }

  protected:
    MemRef sharedRef(ProcId p, Rng &rng) override;

  private:
    double writeFrac_;
};

/**
 * Private working sets with periodic task migration: every 'period'
 * references a task hops to the next processor and re-touches its
 * working set from the new home, turning private data into de facto
 * shared data.
 */
class TaskMigrationWorkload : public RefStream
{
  public:
    TaskMigrationWorkload(const WorkloadConfig &cfg,
                          std::uint64_t period = 2000);

    std::optional<MemRef> next() override;

    std::string name() const { return "task_migration"; }

    /** Number of migrations that have occurred. */
    std::uint64_t migrations() const { return migrations_; }

  private:
    WorkloadConfig cfg_;
    std::uint64_t period_;
    std::vector<Rng> rngs_;
    /** task -> processor currently running it. */
    std::vector<ProcId> placement_;
    ProcId turn_ = 0;
    std::uint64_t issued_ = 0;
    std::uint64_t migrations_ = 0;
};

} // namespace dir2b

#endif // DIR2B_TRACE_WORKLOADS_HH
