#include "trace/reference.hh"

#include <sstream>

namespace dir2b
{

std::string
toString(const MemRef &r)
{
    std::ostringstream os;
    os << "P" << r.proc << " " << (r.write ? "W" : "R") << " 0x"
       << std::hex << r.addr;
    return os.str();
}

} // namespace dir2b
