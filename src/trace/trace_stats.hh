/**
 * @file
 * Reference-stream analysis.
 *
 * Computes, from any trace or recorded stream, the parameters the
 * paper's models need: the shared-reference fraction q, the shared
 * write fraction w, per-processor balance, block popularity and the
 * degree of read/write sharing (how many distinct processors touch or
 * write each block).  dir2bsim exposes this as --analyze, and it is
 * how a user fits Table 4-1's model to their own workload.
 */

#ifndef DIR2B_TRACE_TRACE_STATS_HH
#define DIR2B_TRACE_TRACE_STATS_HH

#include <cstdint>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "trace/reference.hh"

namespace dir2b
{

/** Aggregate statistics of one reference sequence. */
struct TraceStats
{
    std::uint64_t refs = 0;
    std::uint64_t writes = 0;
    std::uint64_t sharedRefs = 0;   ///< refs at/above sharedRegionBase
    std::uint64_t sharedWrites = 0;
    std::uint64_t distinctBlocks = 0;
    /** Blocks referenced by >= 2 distinct processors. */
    std::uint64_t readSharedBlocks = 0;
    /** Blocks written by one processor and touched by another —
     *  the references that *require* a coherence mechanism. */
    std::uint64_t writeSharedBlocks = 0;
    /** References per processor. */
    std::vector<std::uint64_t> perProc;
    /** Largest single-block share of all references. */
    double hottestBlockFrac = 0.0;

    /** The model's q, as realised by this trace. */
    double
    q() const
    {
        return refs ? static_cast<double>(sharedRefs) / refs : 0.0;
    }

    /** The model's w, as realised by this trace. */
    double
    w() const
    {
        return sharedRefs
                   ? static_cast<double>(sharedWrites) / sharedRefs
                   : 0.0;
    }

    /** Overall write fraction. */
    double
    writeFrac() const
    {
        return refs ? static_cast<double>(writes) / refs : 0.0;
    }
};

class TraceReader;

/**
 * Incremental accumulator behind analyzeTrace: add() one reference at
 * a time (any order of calls a trace delivers), finish() to close the
 * per-block aggregation.  Lets the mmap reader stream statistics over
 * billion-reference traces without materialising a MemRef vector.
 */
class TraceStatsBuilder
{
  public:
    void add(ProcId proc, Addr addr, bool write);
    TraceStats finish() const;

  private:
    struct BlockInfo
    {
        std::uint64_t refs = 0;
        bool manyTouchers = false;
        bool manyWriters = false;
        ProcId firstToucher = invalidProc;
        ProcId firstWriter = invalidProc;
    };

    TraceStats partial_;
    std::unordered_map<Addr, BlockInfo> blocks_;
};

/** Analyse a recorded reference sequence. */
TraceStats analyzeTrace(const std::vector<MemRef> &refs);

/** Analyse a binary trace block by block, zero-copy. */
TraceStats analyzeTrace(const TraceReader &reader);

/** Human-readable report. */
void printTraceStats(std::ostream &os, const TraceStats &s);

} // namespace dir2b

#endif // DIR2B_TRACE_TRACE_STATS_HH
