/**
 * @file
 * Reference-stream analysis.
 *
 * Computes, from any trace or recorded stream, the parameters the
 * paper's models need: the shared-reference fraction q, the shared
 * write fraction w, per-processor balance, block popularity and the
 * degree of read/write sharing (how many distinct processors touch or
 * write each block).  dir2bsim exposes this as --analyze, and it is
 * how a user fits Table 4-1's model to their own workload.
 */

#ifndef DIR2B_TRACE_TRACE_STATS_HH
#define DIR2B_TRACE_TRACE_STATS_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "trace/reference.hh"

namespace dir2b
{

/** Aggregate statistics of one reference sequence. */
struct TraceStats
{
    std::uint64_t refs = 0;
    std::uint64_t writes = 0;
    std::uint64_t sharedRefs = 0;   ///< refs at/above sharedRegionBase
    std::uint64_t sharedWrites = 0;
    std::uint64_t distinctBlocks = 0;
    /** Blocks referenced by >= 2 distinct processors. */
    std::uint64_t readSharedBlocks = 0;
    /** Blocks written by one processor and touched by another —
     *  the references that *require* a coherence mechanism. */
    std::uint64_t writeSharedBlocks = 0;
    /** References per processor. */
    std::vector<std::uint64_t> perProc;
    /** Largest single-block share of all references. */
    double hottestBlockFrac = 0.0;

    /** The model's q, as realised by this trace. */
    double
    q() const
    {
        return refs ? static_cast<double>(sharedRefs) / refs : 0.0;
    }

    /** The model's w, as realised by this trace. */
    double
    w() const
    {
        return sharedRefs
                   ? static_cast<double>(sharedWrites) / sharedRefs
                   : 0.0;
    }

    /** Overall write fraction. */
    double
    writeFrac() const
    {
        return refs ? static_cast<double>(writes) / refs : 0.0;
    }
};

/** Analyse a recorded reference sequence. */
TraceStats analyzeTrace(const std::vector<MemRef> &refs);

/** Human-readable report. */
void printTraceStats(std::ostream &os, const TraceStats &s);

} // namespace dir2b

#endif // DIR2B_TRACE_TRACE_STATS_HH
