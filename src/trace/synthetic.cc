#include "trace/synthetic.hh"

#include "util/logging.hh"

namespace dir2b
{

namespace
{

/** SplitMix64 finalizer: the fixed permutation behind the
 *  SyntheticConfig::spaceBlocks scatter. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

SyntheticStream::SyntheticStream(const SyntheticConfig &cfg) : cfg_(cfg)
{
    if (cfg_.numProcs == 0)
        DIR2B_FATAL("synthetic stream needs at least one processor");
    if (cfg_.q < 0.0 || cfg_.q > 1.0 || cfg_.w < 0.0 || cfg_.w > 1.0)
        DIR2B_FATAL("synthetic stream probabilities must be in [0,1]");
    if (cfg_.sharedBlocks == 0)
        DIR2B_FATAL("synthetic stream needs at least one shared block");
    if (cfg_.hotBlocks > cfg_.privateBlocks)
        DIR2B_FATAL("hot subset larger than the private working set");

    Rng seeder(cfg_.seed);
    rngs_.reserve(cfg_.numProcs);
    for (ProcId p = 0; p < cfg_.numProcs; ++p)
        rngs_.push_back(seeder.split());
    lastShared_.assign(cfg_.numProcs, invalidAddr);
    total_.assign(cfg_.numProcs, 0);
    shared_.assign(cfg_.numProcs, 0);
}

Addr
SyntheticStream::scatter(Addr a) const
{
    if (!cfg_.spaceBlocks)
        return a;
    return static_cast<Addr>(mix64(a) % cfg_.spaceBlocks);
}

MemRef
SyntheticStream::nextFor(ProcId p)
{
    DIR2B_ASSERT(p < cfg_.numProcs, "nextFor unknown processor ", p);
    Rng &rng = rngs_[p];
    ++total_[p];

    if (rng.chance(cfg_.q)) {
        // Writeable shared block: re-reference the previous one with
        // probability sharedLocality, else uniform over the S blocks.
        ++shared_[p];
        Addr a;
        if (lastShared_[p] != invalidAddr &&
            rng.chance(cfg_.sharedLocality)) {
            a = lastShared_[p];
        } else {
            a = sharedRegionBase + rng.range(cfg_.sharedBlocks);
        }
        lastShared_[p] = a;
        return MemRef{p, scatter(a), rng.chance(cfg_.w)};
    }

    // Private block with two-level locality.
    Addr offset;
    if (cfg_.hotBlocks > 0 && rng.chance(cfg_.hotFraction))
        offset = rng.range(cfg_.hotBlocks);
    else
        offset = rng.range(cfg_.privateBlocks);
    const Addr a = scatter(privateRegionBase(p) + offset);
    return MemRef{p, a, rng.chance(cfg_.privateWriteFrac)};
}

std::optional<MemRef>
SyntheticStream::next()
{
    const MemRef r = nextFor(turn_);
    turn_ = static_cast<ProcId>((turn_ + 1) % cfg_.numProcs);
    return r;
}

double
SyntheticStream::measuredSharedFraction()
    const
{
    std::uint64_t total = 0;
    std::uint64_t shared = 0;
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        total += total_[p];
        shared += shared_[p];
    }
    return total ? static_cast<double>(shared) /
                       static_cast<double>(total)
                 : 0.0;
}

} // namespace dir2b
