/**
 * @file
 * Trace recording and replay.
 *
 * Text format, one reference per line:  `<proc> <R|W> <hex-addr>`
 * with `#` comments and blank lines ignored.  Traces make runs
 * portable across protocols (replay the identical stream through every
 * scheme) and debuggable (failing property-test streams can be dumped
 * and replayed).
 */

#ifndef DIR2B_TRACE_TRACE_IO_HH
#define DIR2B_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/reference.hh"

namespace dir2b
{

/** Serialise a reference sequence. */
void writeTrace(std::ostream &os, const std::vector<MemRef> &refs);

/** Parse a trace; fatal on malformed input. */
std::vector<MemRef> readTrace(std::istream &is);

/** Parse a single trace line; returns false for blanks/comments. */
bool parseTraceLine(const std::string &line, MemRef &out);

/** Replay a recorded reference vector as a stream. */
class VectorStream : public RefStream
{
  public:
    explicit VectorStream(std::vector<MemRef> refs)
        : refs_(std::move(refs))
    {}

    std::optional<MemRef>
    next() override
    {
        if (pos_ >= refs_.size())
            return std::nullopt;
        return refs_[pos_++];
    }

    void rewind() { pos_ = 0; }
    std::size_t size() const { return refs_.size(); }

  private:
    std::vector<MemRef> refs_;
    std::size_t pos_ = 0;
};

/** Record the first n references of any stream into a vector. */
std::vector<MemRef> recordStream(RefStream &src, std::size_t n);

} // namespace dir2b

#endif // DIR2B_TRACE_TRACE_IO_HH
