#include "trace/trace_binary.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/logging.hh"

namespace dir2b
{

std::uint64_t
traceDigest(const void *p, std::size_t n, std::uint64_t h)
{
    const auto *b = static_cast<const std::uint8_t *>(p);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= b[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

// ---------------------------------------------------------------- writer

TraceWriter::TraceWriter(const std::string &path,
                         std::uint32_t blockRecords)
    : path_(path), blockRecords_(blockRecords)
{
    if (blockRecords_ == 0)
        DIR2B_FATAL("trace '", path_, "': block size must be >= 1 record");
    f_ = std::fopen(path_.c_str(), "wb");
    if (!f_)
        DIR2B_FATAL("cannot open trace '", path_,
                    "' for writing: ", std::strerror(errno));
    buf_.reserve(blockRecords_);

    // Reserve the header slot; finish() patches the real totals in.
    TraceFileHeader h{};
    if (std::fwrite(&h, sizeof(h), 1, f_) != 1)
        DIR2B_FATAL("trace '", path_, "': header write failed");
}

TraceWriter::~TraceWriter()
{
    if (!finished_)
        finish();
}

void
TraceWriter::append(const MemRef *refs, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        append(refs[i]);
}

void
TraceWriter::flushBlock()
{
    if (buf_.empty())
        return;
    const std::size_t bytes = buf_.size() * sizeof(TraceRecord);

    TraceBlockHeader h{};
    h.magic = traceBlockMagic;
    h.records = static_cast<std::uint32_t>(buf_.size());
    h.firstIndex = totalRecords_;
    h.blockDigest = traceDigest(buf_.data(), bytes);
    runningDigest_ = traceDigest(buf_.data(), bytes, runningDigest_);
    h.runningDigest = runningDigest_;

    if (std::fwrite(&h, sizeof(h), 1, f_) != 1 ||
        std::fwrite(buf_.data(), 1, bytes, f_) != bytes)
        DIR2B_FATAL("trace '", path_,
                    "': block write failed: ", std::strerror(errno));

    totalRecords_ += buf_.size();
    ++numBlocks_;
    buf_.clear();
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    flushBlock();

    TraceFileHeader h{};
    std::memcpy(h.magic, traceMagic, sizeof(h.magic));
    h.version = traceFormatVersion;
    h.endianTag = traceEndianTag;
    h.headerBytes = sizeof(TraceFileHeader);
    h.recordBytes = sizeof(TraceRecord);
    h.blockRecords = blockRecords_;
    h.numProcs = numProcs_;
    h.totalRecords = totalRecords_;
    h.numBlocks = numBlocks_;
    h.fileDigest = runningDigest_;

    if (std::fseek(f_, 0, SEEK_SET) != 0 ||
        std::fwrite(&h, sizeof(h), 1, f_) != 1)
        DIR2B_FATAL("trace '", path_, "': header patch failed: ",
                    std::strerror(errno));
    if (std::fclose(f_) != 0)
        DIR2B_FATAL("trace '", path_, "': close failed: ",
                    std::strerror(errno));
    f_ = nullptr;
    finished_ = true;
}

// ---------------------------------------------------------------- reader

TraceReader::TraceReader(const std::string &path) : path_(path)
{
    const int fd = ::open(path_.c_str(), O_RDONLY);
    if (fd < 0)
        DIR2B_FATAL("cannot open trace '", path_,
                    "': ", std::strerror(errno));
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        DIR2B_FATAL("cannot stat trace '", path_,
                    "': ", std::strerror(errno));
    }
    mapBytes_ = static_cast<std::size_t>(st.st_size);
    if (mapBytes_ < sizeof(TraceFileHeader)) {
        ::close(fd);
        DIR2B_FATAL("trace '", path_, "': file too short (", mapBytes_,
                    " bytes) to hold a trace header — truncated or not "
                    "a dir2b binary trace");
    }
    void *m = ::mmap(nullptr, mapBytes_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (m == MAP_FAILED)
        DIR2B_FATAL("cannot mmap trace '", path_,
                    "': ", std::strerror(errno));
    map_ = static_cast<const std::uint8_t *>(m);
    header_ = reinterpret_cast<const TraceFileHeader *>(map_);

    if (std::memcmp(header_->magic, traceMagic, sizeof(traceMagic)) != 0)
        DIR2B_FATAL("trace '", path_, "': bad magic — not a dir2b "
                    "binary trace (tools/trace_pack converts text "
                    "traces)");
    if (header_->endianTag != traceEndianTag)
        DIR2B_FATAL("trace '", path_, "': endianness tag 0x", std::hex,
                    header_->endianTag, " != 0x", traceEndianTag,
                    " — written on a big-endian host; the format is "
                    "little-endian only");
    if (header_->version != traceFormatVersion)
        DIR2B_FATAL("trace '", path_, "': format version ",
                    header_->version, " unsupported (this build reads "
                    "version ", traceFormatVersion, ")");
    if (header_->headerBytes != sizeof(TraceFileHeader) ||
        header_->recordBytes != sizeof(TraceRecord))
        DIR2B_FATAL("trace '", path_, "': header/record geometry ",
                    header_->headerBytes, "/", header_->recordBytes,
                    " != ", sizeof(TraceFileHeader), "/",
                    sizeof(TraceRecord));
    if (header_->blockRecords == 0)
        DIR2B_FATAL("trace '", path_, "': zero block capacity");

    // Walk the block chain: structure is validated up front (counts,
    // bounds, index continuity), payload is not touched.
    blocks_.reserve(header_->numBlocks);
    std::size_t off = sizeof(TraceFileHeader);
    std::uint64_t records = 0;
    for (std::uint64_t b = 0; b < header_->numBlocks; ++b) {
        if (off + sizeof(TraceBlockHeader) > mapBytes_)
            DIR2B_FATAL("trace '", path_, "': truncated at block ", b,
                        " header (offset ", off, " of ", mapBytes_,
                        " bytes)");
        const auto *h =
            reinterpret_cast<const TraceBlockHeader *>(map_ + off);
        if (h->magic != traceBlockMagic)
            DIR2B_FATAL("trace '", path_, "': block ", b,
                        " has bad magic — corrupt or truncated file");
        if (h->records == 0 || h->records > header_->blockRecords)
            DIR2B_FATAL("trace '", path_, "': block ", b, " claims ",
                        h->records, " records (capacity ",
                        header_->blockRecords, ")");
        if (h->firstIndex != records)
            DIR2B_FATAL("trace '", path_, "': block ", b,
                        " starts at record ", h->firstIndex,
                        ", expected ", records);
        off += sizeof(TraceBlockHeader);
        const std::size_t payload =
            std::size_t{h->records} * sizeof(TraceRecord);
        if (off + payload > mapBytes_)
            DIR2B_FATAL("trace '", path_, "': truncated inside block ",
                        b, " payload");
        off += payload;
        records += h->records;
        blocks_.push_back(h);
    }
    if (records != header_->totalRecords)
        DIR2B_FATAL("trace '", path_, "': blocks hold ", records,
                    " records but the header claims ",
                    header_->totalRecords);
}

TraceReader::~TraceReader()
{
    if (map_)
        ::munmap(const_cast<std::uint8_t *>(map_), mapBytes_);
}

std::uint64_t
TraceReader::verify() const
{
    std::uint64_t running = traceDigestSeed;
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
        const TraceBlockHeader *h = blocks_[b];
        const std::size_t bytes =
            std::size_t{h->records} * sizeof(TraceRecord);
        const std::uint64_t blockDigest = traceDigest(h + 1, bytes);
        if (blockDigest != h->blockDigest)
            DIR2B_FATAL("trace '", path_, "': block ", b,
                        " digest mismatch (payload corrupt): 0x",
                        std::hex, blockDigest, " != 0x",
                        h->blockDigest);
        running = traceDigest(h + 1, bytes, running);
        if (running != h->runningDigest)
            DIR2B_FATAL("trace '", path_, "': block ", b,
                        " running digest mismatch");
    }
    if (running != header_->fileDigest)
        DIR2B_FATAL("trace '", path_, "': file digest mismatch: 0x",
                    std::hex, running, " != 0x", header_->fileDigest);
    return running;
}

// ---------------------------------------------------------- proc source

TraceProcSource::TraceProcSource(const TraceReader &r, ProcId numProcs)
    : reader_(&r), cursors_(numProcs)
{
    if (r.header().numProcs > numProcs)
        DIR2B_FATAL("trace '", r.path(), "' references ",
                    r.header().numProcs, " processors but the system "
                    "has ", numProcs);
}

std::optional<MemRef>
TraceProcSource::next(ProcId p)
{
    Cursor &c = cursors_.at(p);
    while (c.block < reader_->numBlocks()) {
        const AccessBatch b = reader_->block(c.block);
        while (c.pos < b.count) {
            const TraceRecord &rec = b.recs[c.pos++];
            if (rec.proc == p)
                return rec.toRef();
        }
        ++c.block;
        c.pos = 0;
    }
    return std::nullopt;
}

} // namespace dir2b
