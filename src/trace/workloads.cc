#include "trace/workloads.hh"

#include "util/logging.hh"

namespace dir2b
{

Workload::Workload(const WorkloadConfig &cfg) : cfg_(cfg)
{
    if (cfg_.numProcs == 0)
        DIR2B_FATAL("workload needs at least one processor");
    if (cfg_.sharedBlocks == 0)
        DIR2B_FATAL("workload needs at least one shared block");
    Rng seeder(cfg_.seed);
    rngs_.reserve(cfg_.numProcs);
    for (ProcId p = 0; p < cfg_.numProcs; ++p)
        rngs_.push_back(seeder.split());
}

std::optional<MemRef>
Workload::next()
{
    const ProcId p = turn_;
    turn_ = static_cast<ProcId>((turn_ + 1) % cfg_.numProcs);
    Rng &rng = rngs_[p];

    if (cfg_.privateBlocks > 0 && rng.chance(cfg_.privateFraction)) {
        const Addr a = privateRegionBase(p) +
                       rng.range(cfg_.privateBlocks);
        return MemRef{p, a, rng.chance(cfg_.privateWriteFrac)};
    }
    return sharedRef(p, rng);
}

MemRef
ProducerConsumerWorkload::sharedRef(ProcId p, Rng &)
{
    const std::size_t ring = cfg_.sharedBlocks;
    if (p == 0 || cfg_.numProcs == 1) {
        // Producer: write the next buffer slot.
        const Addr a = sharedRegionBase + (produceCursor_++ % ring);
        return MemRef{p, a, true};
    }
    // Consumer: read slots in order, trailing the producer.
    auto &cur = consumeCursor_[p];
    if (cur + ring / 2 > produceCursor_ && produceCursor_ > 0)
        cur = produceCursor_ > ring ? produceCursor_ - ring : 0;
    const Addr a = sharedRegionBase + (cur++ % ring);
    return MemRef{p, a, false};
}

MemRef
MigratoryWorkload::sharedRef(ProcId p, Rng &)
{
    // Each processor owns block b during its turn of the rotation and
    // performs read-then-write bursts on it; ownership of each block
    // rotates with the per-processor phase counter.
    auto &ph = phase_[p];
    const std::uint64_t step = ph++;
    const std::uint64_t round = step / (2 * burst_);
    const Addr a = sharedRegionBase +
                   ((round + p) % cfg_.sharedBlocks);
    // Within a burst: alternate read (test) and write (update).
    const bool write = (step % 2) == 1;
    return MemRef{p, a, write};
}

MemRef
LockContentionWorkload::sharedRef(ProcId p, Rng &rng)
{
    // Read-test-then-write: a read of a lock block is followed by a
    // write to the same block (test-and-set acquiring the lock).
    if (pendingWrite_[p]) {
        pendingWrite_[p] = false;
        return MemRef{p, lastLock_[p], true};
    }
    const Addr a = sharedRegionBase + rng.range(locks_);
    lastLock_[p] = a;
    pendingWrite_[p] = true;
    return MemRef{p, a, false};
}

MemRef
ReadMostlyWorkload::sharedRef(ProcId p, Rng &rng)
{
    const Addr a = sharedRegionBase + rng.range(cfg_.sharedBlocks);
    return MemRef{p, a, rng.chance(writeFrac_)};
}

TaskMigrationWorkload::TaskMigrationWorkload(const WorkloadConfig &cfg,
                                             std::uint64_t period)
    : cfg_(cfg), period_(period)
{
    if (cfg_.numProcs == 0)
        DIR2B_FATAL("workload needs at least one processor");
    if (period_ == 0)
        DIR2B_FATAL("migration period must be positive");
    Rng seeder(cfg_.seed);
    rngs_.reserve(cfg_.numProcs);
    placement_.reserve(cfg_.numProcs);
    for (ProcId t = 0; t < cfg_.numProcs; ++t) {
        rngs_.push_back(seeder.split());
        placement_.push_back(t);
    }
}

std::optional<MemRef>
TaskMigrationWorkload::next()
{
    if (++issued_ % period_ == 0) {
        // All tasks hop to the next processor simultaneously (a gang
        // reschedule); their working sets stay put in memory.
        for (auto &home : placement_)
            home = static_cast<ProcId>((home + 1) % cfg_.numProcs);
        ++migrations_;
    }

    const ProcId task = turn_;
    turn_ = static_cast<ProcId>((turn_ + 1) % cfg_.numProcs);
    Rng &rng = rngs_[task];

    // The task references *its own* working set (named by task id)
    // from whichever processor it currently runs on.
    const Addr a = privateRegionBase(task) +
                   rng.range(cfg_.privateBlocks ? cfg_.privateBlocks
                                                : 1);
    return MemRef{placement_[task], a,
                  rng.chance(cfg_.privateWriteFrac)};
}

} // namespace dir2b
