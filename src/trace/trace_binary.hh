/**
 * @file
 * Zero-copy binary trace format (ROADMAP item 2's substrate).
 *
 * The text format in trace_io.hh decodes one reference at a time
 * through an istringstream — fine for debugging, hopeless for the
 * billion-reference workload-zoo sweeps.  This file defines the
 * `.d2t` binary format those sweeps stream instead:
 *
 *   [TraceFileHeader]                               64 bytes
 *   [TraceBlockHeader][TraceRecord x records] ...   repeated
 *
 * All fields are little-endian, all structs are fixed-width PODs, and
 * every block starts at a 16-byte-aligned offset, so an mmap()ed file
 * IS the record array: TraceReader hands out whole blocks as
 * AccessBatch spans with zero per-record parsing.  Integrity comes in
 * layers — a magic/version/endianness guard in the file header,
 * per-block record counts and FNV-1a digests (plus a running digest,
 * so corruption is localised to a block), and a whole-file digest in
 * the header that TraceReader::verify() recomputes.
 *
 * Writers never see this layout: TraceWriter buffers one block of
 * records and emits header+payload together, patching the file header
 * on finish().  tools/trace_pack converts text <-> binary and dumps
 * headers/digests; dir2bsim records with --trace-out and replays with
 * --trace-in (functional tier via batched dispatch, timed tier via
 * per-processor cursors).  Replay is bit-identical to the run that
 * recorded the stream — tests/test_trace_replay.cc holds all seven
 * timed golden digests and the pinned table-engine digests to that.
 */

#ifndef DIR2B_TRACE_TRACE_BINARY_HH
#define DIR2B_TRACE_TRACE_BINARY_HH

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/reference.hh"

namespace dir2b
{

/** FNV-1a offset basis (the digest chain's seed). */
constexpr std::uint64_t traceDigestSeed = 0xcbf29ce484222325ULL;

/** Fold `n` raw bytes into an FNV-1a digest. */
std::uint64_t traceDigest(const void *p, std::size_t n,
                          std::uint64_t h = traceDigestSeed);

/** One reference, as stored on disk.  16 bytes, naturally aligned. */
struct TraceRecord
{
    Addr addr = 0;
    ProcId proc = 0;
    /** Bit 0: write.  Remaining bits reserved (must be zero). */
    std::uint32_t flags = 0;

    bool write() const { return flags & 1u; }

    MemRef
    toRef() const
    {
        return MemRef{proc, addr, write()};
    }

    static TraceRecord
    fromRef(const MemRef &r)
    {
        return TraceRecord{r.addr, r.proc, r.write ? 1u : 0u};
    }
};

static_assert(sizeof(TraceRecord) == 16, "record layout is the format");

/** Eight-byte file magic: "DIR2BTRC". */
constexpr char traceMagic[8] = {'D', 'I', 'R', '2', 'B', 'T', 'R', 'C'};

/** Format version this build reads and writes. */
constexpr std::uint32_t traceFormatVersion = 1;

/** Byte-order tag as written by a little-endian host; a big-endian
 *  writer would store these four bytes reversed, which the reader
 *  rejects. */
constexpr std::uint32_t traceEndianTag = 0x01020304;

/** Per-block header magic ("D2TB"). */
constexpr std::uint32_t traceBlockMagic = 0x42543244;

/** Records per block by default: 64 Ki records = 1 MiB of payload. */
constexpr std::uint32_t traceDefaultBlockRecords = 1u << 16;

/** File header; 64 bytes, patched in place by TraceWriter::finish(). */
struct TraceFileHeader
{
    char magic[8];             ///< traceMagic
    std::uint32_t version;     ///< traceFormatVersion
    std::uint32_t endianTag;   ///< traceEndianTag (byte-order guard)
    std::uint32_t headerBytes; ///< sizeof(TraceFileHeader)
    std::uint32_t recordBytes; ///< sizeof(TraceRecord)
    std::uint32_t blockRecords; ///< capacity of every non-final block
    std::uint32_t numProcs;    ///< max ProcId seen + 1 (0 for empty)
    std::uint64_t totalRecords;
    std::uint64_t numBlocks;
    /** FNV-1a over every record's bytes, in file order. */
    std::uint64_t fileDigest;
    std::uint64_t reserved;
};

static_assert(sizeof(TraceFileHeader) == 64, "header layout is the format");

/** Block header; 32 bytes, immediately followed by `records` records. */
struct TraceBlockHeader
{
    std::uint32_t magic;   ///< traceBlockMagic
    std::uint32_t records; ///< records in this block (> 0)
    std::uint64_t firstIndex; ///< global index of the first record
    /** FNV-1a over this block's record bytes (seeded fresh). */
    std::uint64_t blockDigest;
    /** FNV-1a over all record bytes from the file start through this
     *  block — corruption is localised to the first bad block. */
    std::uint64_t runningDigest;
};

static_assert(sizeof(TraceBlockHeader) == 32, "header layout is the format");

/** A span of trace records decoded as one unit — the batch the
 *  replay frontends dispatch instead of one reference at a time. */
struct AccessBatch
{
    const TraceRecord *recs = nullptr;
    std::size_t count = 0;

    const TraceRecord *begin() const { return recs; }
    const TraceRecord *end() const { return recs + count; }
    bool empty() const { return count == 0; }
};

/**
 * Buffered block-at-a-time writer.  Records accumulate in memory
 * until a block fills, then header+payload are written with their
 * digests; finish() (or the destructor) flushes the tail block and
 * patches the file header with the totals.  Fatal on I/O errors.
 */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path,
                         std::uint32_t blockRecords =
                             traceDefaultBlockRecords);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void
    append(const MemRef &r)
    {
        buf_.push_back(TraceRecord::fromRef(r));
        if (r.proc >= numProcs_)
            numProcs_ = r.proc + 1;
        if (buf_.size() == blockRecords_)
            flushBlock();
    }

    void append(const MemRef *refs, std::size_t n);

    /** Flush the tail block and patch the file header.  Idempotent;
     *  no appends are allowed afterwards. */
    void finish();

    std::uint64_t recordsWritten() const { return totalRecords_; }
    std::uint64_t blocksWritten() const { return numBlocks_; }
    /** Whole-file digest (valid after finish()). */
    std::uint64_t fileDigest() const { return runningDigest_; }

  private:
    void flushBlock();

    std::string path_;
    std::FILE *f_ = nullptr;
    std::uint32_t blockRecords_;
    std::vector<TraceRecord> buf_;
    std::uint64_t totalRecords_ = 0;
    std::uint64_t numBlocks_ = 0;
    std::uint64_t runningDigest_ = traceDigestSeed;
    std::uint32_t numProcs_ = 0;
    bool finished_ = false;
};

/**
 * mmap-backed reader.  The constructor maps the file read-only,
 * validates the magic/version/endianness/geometry guards and walks
 * every block header (bounds, counts, index continuity) — but never
 * touches record payload, so opening a billion-reference trace is
 * O(blocks).  block(i) returns the i-th record span straight out of
 * the mapping.  Fatal on any structural problem.
 */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    const TraceFileHeader &header() const { return *header_; }
    const std::string &path() const { return path_; }
    std::uint64_t totalRecords() const { return header_->totalRecords; }
    std::size_t numBlocks() const { return blocks_.size(); }
    std::size_t mappedBytes() const { return mapBytes_; }

    const TraceBlockHeader &
    blockHeader(std::size_t i) const
    {
        return *blocks_.at(i);
    }

    /** The i-th block's records, zero-copy out of the mapping. */
    AccessBatch
    block(std::size_t i) const
    {
        const TraceBlockHeader *h = blocks_.at(i);
        return AccessBatch{
            reinterpret_cast<const TraceRecord *>(h + 1), h->records};
    }

    /** Recompute every block digest, the running chain and the file
     *  digest; fatal (naming the first bad block) on any mismatch.
     *  Returns the file digest. */
    std::uint64_t verify() const;

  private:
    std::string path_;
    const std::uint8_t *map_ = nullptr;
    std::size_t mapBytes_ = 0;
    const TraceFileHeader *header_ = nullptr;
    std::vector<const TraceBlockHeader *> blocks_;
};

/** Sequential batch cursor over a reader (the replay frontends' input). */
class TraceBatchStream
{
  public:
    explicit TraceBatchStream(const TraceReader &r) : reader_(&r) {}

    /** Next block span, or an empty batch at end of trace. */
    AccessBatch
    nextBatch()
    {
        if (block_ >= reader_->numBlocks())
            return {};
        return reader_->block(block_++);
    }

    void rewind() { block_ = 0; }

  private:
    const TraceReader *reader_;
    std::size_t block_ = 0;
};

/** One-record-at-a-time RefStream over a reader: the compatibility
 *  (and A/B baseline) path — every consumer of the old VectorStream
 *  interface works unchanged, just without the text parse. */
class MmapTraceStream : public RefStream
{
  public:
    explicit MmapTraceStream(const TraceReader &r) : reader_(&r) {}

    std::optional<MemRef>
    next() override
    {
        while (pos_ >= batch_.count) {
            if (block_ >= reader_->numBlocks())
                return std::nullopt;
            batch_ = reader_->block(block_++);
            pos_ = 0;
        }
        return batch_.recs[pos_++].toRef();
    }

    void
    rewind()
    {
        block_ = 0;
        batch_ = {};
        pos_ = 0;
    }

  private:
    const TraceReader *reader_;
    AccessBatch batch_{};
    std::size_t block_ = 0;
    std::size_t pos_ = 0;
};

/**
 * Per-processor replay cursors for the timed tier: next(p) returns
 * processor p's subsequence of the merged trace, in trace order.
 * Each cursor only mutates its own state over the shared read-only
 * mapping, so concurrent next() calls for DISTINCT processors are
 * safe — exactly the contract SyntheticStream::nextFor gives the
 * sharded engine.
 */
class TraceProcSource
{
  public:
    TraceProcSource(const TraceReader &r, ProcId numProcs);

    std::optional<MemRef> next(ProcId p);

  private:
    struct Cursor
    {
        std::size_t block = 0;
        std::size_t pos = 0;
        /** Pad to a cache line: distinct procs advance concurrently. */
        char pad[64 - 2 * sizeof(std::size_t)];
    };

    const TraceReader *reader_;
    std::vector<Cursor> cursors_;
};

} // namespace dir2b

#endif // DIR2B_TRACE_TRACE_BINARY_HH
