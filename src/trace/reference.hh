/**
 * @file
 * Memory-reference records and the stream abstraction.
 *
 * A reference is the paper's LOAD(a,d)/STORE(a,d) with the displacement
 * dropped (coherence is block-granular).  Streams deliver the merged,
 * system-wide reference sequence the §4.2 model reasons about: "the
 * stream of memory references is the merging of a stream of references
 * to private or read-only shared blocks with a stream of references to
 * writeable shared blocks".
 */

#ifndef DIR2B_TRACE_REFERENCE_HH
#define DIR2B_TRACE_REFERENCE_HH

#include <optional>
#include <string>

#include "util/types.hh"

namespace dir2b
{

/** One memory reference. */
struct MemRef
{
    ProcId proc = 0;
    Addr addr = 0;
    bool write = false;

    bool
    operator==(const MemRef &o) const
    {
        return proc == o.proc && addr == o.addr && write == o.write;
    }
};

/** Render "P3 W 0x2a" for traces and failure messages. */
std::string toString(const MemRef &r);

/** Abstract source of a merged reference stream. */
class RefStream
{
  public:
    virtual ~RefStream() = default;

    /** Next reference, or nullopt when the stream ends. */
    virtual std::optional<MemRef> next() = 0;
};

/** Base address of the shared-writeable region used by the synthetic
 *  generators (and by the software scheme's classification). */
constexpr Addr sharedRegionBase = 1ULL << 40;

/** Base address of processor p's private region. */
constexpr Addr
privateRegionBase(ProcId p)
{
    return (1ULL << 20) * (p + 1);
}

} // namespace dir2b

#endif // DIR2B_TRACE_REFERENCE_HH
