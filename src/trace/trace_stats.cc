#include "trace/trace_stats.hh"

#include <algorithm>
#include <iomanip>
#include <unordered_map>

namespace dir2b
{

TraceStats
analyzeTrace(const std::vector<MemRef> &refs)
{
    TraceStats s;

    struct BlockInfo
    {
        std::uint64_t refs = 0;
        bool manyTouchers = false;
        bool manyWriters = false;
        ProcId firstToucher = invalidProc;
        ProcId firstWriter = invalidProc;
    };
    std::unordered_map<Addr, BlockInfo> blocks;

    for (const MemRef &r : refs) {
        ++s.refs;
        if (r.proc >= s.perProc.size())
            s.perProc.resize(r.proc + 1, 0);
        ++s.perProc[r.proc];
        if (r.write)
            ++s.writes;
        if (r.addr >= sharedRegionBase) {
            ++s.sharedRefs;
            if (r.write)
                ++s.sharedWrites;
        }

        BlockInfo &b = blocks[r.addr];
        ++b.refs;
        if (b.firstToucher == invalidProc)
            b.firstToucher = r.proc;
        else if (b.firstToucher != r.proc)
            b.manyTouchers = true;
        if (r.write) {
            if (b.firstWriter == invalidProc)
                b.firstWriter = r.proc;
            else if (b.firstWriter != r.proc)
                b.manyWriters = true;
        }
    }

    s.distinctBlocks = blocks.size();
    std::uint64_t hottest = 0;
    for (const auto &[a, b] : blocks) {
        hottest = std::max(hottest, b.refs);
        if (b.manyTouchers)
            ++s.readSharedBlocks;
        // Write-shared: somebody wrote it and somebody else touched it.
        if (b.firstWriter != invalidProc &&
            (b.manyWriters || b.manyTouchers)) {
            ++s.writeSharedBlocks;
        }
    }
    if (s.refs)
        s.hottestBlockFrac =
            static_cast<double>(hottest) / static_cast<double>(s.refs);
    return s;
}

void
printTraceStats(std::ostream &os, const TraceStats &s)
{
    os << "references          " << s.refs << "\n"
       << "writes              " << s.writes << " ("
       << std::fixed << std::setprecision(3) << s.writeFrac() << ")\n"
       << "shared refs (q)     " << s.sharedRefs << " (" << s.q()
       << ")\n"
       << "shared writes (w)   " << s.sharedWrites << " (" << s.w()
       << ")\n"
       << "distinct blocks     " << s.distinctBlocks << "\n"
       << "read-shared blocks  " << s.readSharedBlocks << "\n"
       << "write-shared blocks " << s.writeSharedBlocks << "\n"
       << "hottest block share " << s.hottestBlockFrac << "\n";
    os << "per-processor refs ";
    for (std::size_t p = 0; p < s.perProc.size(); ++p)
        os << " P" << p << "=" << s.perProc[p];
    os << "\n";
}

} // namespace dir2b
