#include "trace/trace_stats.hh"

#include <algorithm>
#include <iomanip>

#include "trace/trace_binary.hh"

namespace dir2b
{

void
TraceStatsBuilder::add(ProcId proc, Addr addr, bool write)
{
    TraceStats &s = partial_;
    ++s.refs;
    if (proc >= s.perProc.size())
        s.perProc.resize(proc + 1, 0);
    ++s.perProc[proc];
    if (write)
        ++s.writes;
    if (addr >= sharedRegionBase) {
        ++s.sharedRefs;
        if (write)
            ++s.sharedWrites;
    }

    BlockInfo &b = blocks_[addr];
    ++b.refs;
    if (b.firstToucher == invalidProc)
        b.firstToucher = proc;
    else if (b.firstToucher != proc)
        b.manyTouchers = true;
    if (write) {
        if (b.firstWriter == invalidProc)
            b.firstWriter = proc;
        else if (b.firstWriter != proc)
            b.manyWriters = true;
    }
}

TraceStats
TraceStatsBuilder::finish() const
{
    TraceStats s = partial_;
    s.distinctBlocks = blocks_.size();
    std::uint64_t hottest = 0;
    for (const auto &[a, b] : blocks_) {
        hottest = std::max(hottest, b.refs);
        if (b.manyTouchers)
            ++s.readSharedBlocks;
        // Write-shared: somebody wrote it and somebody else touched it.
        if (b.firstWriter != invalidProc &&
            (b.manyWriters || b.manyTouchers)) {
            ++s.writeSharedBlocks;
        }
    }
    if (s.refs)
        s.hottestBlockFrac =
            static_cast<double>(hottest) / static_cast<double>(s.refs);
    return s;
}

TraceStats
analyzeTrace(const std::vector<MemRef> &refs)
{
    TraceStatsBuilder b;
    for (const MemRef &r : refs)
        b.add(r.proc, r.addr, r.write);
    return b.finish();
}

TraceStats
analyzeTrace(const TraceReader &reader)
{
    TraceStatsBuilder b;
    for (std::size_t i = 0; i < reader.numBlocks(); ++i) {
        const AccessBatch batch = reader.block(i);
        for (const TraceRecord &rec : batch)
            b.add(rec.proc, rec.addr, rec.write());
    }
    return b.finish();
}

void
printTraceStats(std::ostream &os, const TraceStats &s)
{
    os << "references          " << s.refs << "\n"
       << "writes              " << s.writes << " ("
       << std::fixed << std::setprecision(3) << s.writeFrac() << ")\n"
       << "shared refs (q)     " << s.sharedRefs << " (" << s.q()
       << ")\n"
       << "shared writes (w)   " << s.sharedWrites << " (" << s.w()
       << ")\n"
       << "distinct blocks     " << s.distinctBlocks << "\n"
       << "read-shared blocks  " << s.readSharedBlocks << "\n"
       << "write-shared blocks " << s.writeSharedBlocks << "\n"
       << "hottest block share " << s.hottestBlockFrac << "\n";
    os << "per-processor refs ";
    for (std::size_t p = 0; p < s.perProc.size(); ++p)
        os << " P" << p << "=" << s.perProc[p];
    os << "\n";
}

} // namespace dir2b
