#include "trace/trace_io.hh"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace dir2b
{

void
writeTrace(std::ostream &os, const std::vector<MemRef> &refs)
{
    os << "# dir2b trace: <proc> <R|W> <hex-addr>\n";
    for (const auto &r : refs) {
        os << r.proc << " " << (r.write ? "W" : "R") << " " << std::hex
           << r.addr << std::dec << "\n";
    }
}

bool
parseTraceLine(const std::string &line, MemRef &out)
{
    std::string trimmed = line;
    const auto first = trimmed.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return false;
    if (trimmed[first] == '#')
        return false;

    std::istringstream is(trimmed);
    std::uint64_t proc;
    std::string rw;
    std::string addr;
    if (!(is >> proc >> rw >> addr))
        DIR2B_FATAL("malformed trace line: '", line, "'");
    if (rw != "R" && rw != "W" && rw != "r" && rw != "w")
        DIR2B_FATAL("trace line has bad R/W field: '", line, "'");

    out.proc = static_cast<ProcId>(proc);
    out.write = (rw == "W" || rw == "w");
    out.addr = std::stoull(addr, nullptr, 16);
    return true;
}

std::vector<MemRef>
readTrace(std::istream &is)
{
    std::vector<MemRef> refs;
    std::string line;
    while (std::getline(is, line)) {
        MemRef r;
        if (parseTraceLine(line, r))
            refs.push_back(r);
    }
    return refs;
}

std::vector<MemRef>
recordStream(RefStream &src, std::size_t n)
{
    std::vector<MemRef> refs;
    refs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        auto r = src.next();
        if (!r)
            break;
        refs.push_back(*r);
    }
    return refs;
}

} // namespace dir2b
