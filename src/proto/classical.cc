#include "proto/classical.hh"

#include "util/logging.hh"

namespace dir2b
{

ClassicalProtocol::ClassicalProtocol(const ProtoConfig &cfg)
    : Protocol("classical", cfg)
{
    bias_.reserve(cfg.numProcs);
    for (ProcId p = 0; p < cfg.numProcs; ++p)
        bias_.emplace_back(cfg.biasCapacity);
}

std::uint64_t
ClassicalProtocol::biasAbsorbed() const
{
    std::uint64_t total = 0;
    for (const auto &b : bias_)
        total += b.absorbed();
    return total;
}

Value
ClassicalProtocol::doAccess(ProcId k, Addr a, bool write, Value wval)
{
    CacheArray &c = caches_[k];
    bias_[k].onLocalReference(a);

    if (!write) {
        if (CacheLine *l = c.lookup(a)) {
            ++counts_.readHits;
            return l->value;
        }
        ++counts_.readMisses;
        // Memory is always current; evictions are silent (clean).
        CacheLine &victim = c.victimFor(a);
        if (victim.valid()) {
            DIR2B_ASSERT(!victim.dirty(),
                         "write-through cache holds a dirty line");
            c.invalidate(victim.addr);
        }
        const Value v = mem_.read(a);
        ++counts_.memReads;
        ++counts_.dataTransfers;
        ++counts_.netMessages;
        c.fill(a, LineState::Shared, v);
        return v;
    }

    // Store: write through to memory and broadcast the invalidation
    // address on the cache invalidation line.
    CacheLine *l = c.lookup(a);
    if (l) {
        ++counts_.writeHits;
        l->value = wval;
    } else {
        ++counts_.writeMisses;
        if (cfg_.writeAllocate) {
            CacheLine &victim = c.victimFor(a);
            if (victim.valid())
                c.invalidate(victim.addr);
            c.fill(a, LineState::Shared, wval);
            ++counts_.dataTransfers;
            ++counts_.netMessages;
        }
    }

    // The word goes to memory on every store (write-through).
    mem_.write(a, wval);
    ++counts_.memWrites;
    ++counts_.wordWrites;
    ++counts_.netMessages;

    // Broadcast invalidation to all other caches.
    ++counts_.broadcasts;
    for (ProcId i = 0; i < cfg_.numProcs; ++i) {
        if (i == k)
            continue;
        ++counts_.broadcastCmds;
        ++counts_.netMessages;
        if (bias_[i].onInvalidate(a)) {
            // Absorbed: the block was already invalidated and not
            // re-referenced since; no cache directory cycle.
            ++counts_.filteredCmds;
            DIR2B_ASSERT(!caches_[i].peek(a),
                         "BIAS filter absorbed an invalidation for a "
                         "resident block");
            continue;
        }
        CacheLine *remote = caches_[i].lookup(a, false);
        deliverCmd(i, remote != nullptr);
        if (remote) {
            caches_[i].invalidate(a);
            ++counts_.invalidations;
        }
    }
    return wval;
}

void
ClassicalProtocol::checkInvariants() const
{
    // Write-through: no cache may ever hold a dirty line, and every
    // cached copy must equal memory.
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        caches_[p].forEachValid([&](const CacheLine &l) {
            DIR2B_ASSERT(!l.dirty(), "dirty line in write-through cache ",
                         p);
            DIR2B_ASSERT(l.value == mem_.peek(l.addr),
                         "stale copy of block ", l.addr, " in cache ", p);
        });
    }
}

} // namespace dir2b
