/**
 * @file
 * Static, software-enforced solution (paper §2.2).
 *
 * Every memory block carries a compile/link-time tag: code, private
 * data, or public (shared-writeable) data.  Public blocks are *never
 * cached* — "on a cache miss to a public block, no loading in the
 * cache takes place, and hence the public data is always up-to-date in
 * main memory".  Private and read-only blocks are cached write-back
 * with no coherence mechanism at all.
 *
 * The tag is modelled by ProtoConfig::nonCacheableBase: blocks at or
 * above it are public.  The classification contract — a private block
 * is only ever written by one processor — is asserted at runtime so
 * that a generator violating the software scheme's premise fails loudly
 * instead of silently producing incoherent results (the contract is
 * what "software enforced" means).
 */

#ifndef DIR2B_PROTO_SOFTWARE_HH
#define DIR2B_PROTO_SOFTWARE_HH

#include <unordered_map>

#include "proto/protocol.hh"

namespace dir2b
{

/** Functional-tier static software scheme. */
class SoftwareProtocol : public Protocol
{
  public:
    explicit SoftwareProtocol(const ProtoConfig &cfg);

    unsigned directoryBitsPerBlock() const override { return 0; }

    void checkInvariants() const override;

    /** True if block a is tagged public (shared-writeable). */
    bool
    isPublic(Addr a) const
    {
        return a >= cfg_.nonCacheableBase;
    }

  protected:
    Value doAccess(ProcId k, Addr a, bool write, Value wval) override;

  private:
    /** First (and only legal) writer of each private block. */
    std::unordered_map<Addr, ProcId> privateWriter_;
};

} // namespace dir2b

#endif // DIR2B_PROTO_SOFTWARE_HH
