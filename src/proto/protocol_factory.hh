/**
 * @file
 * Construction of functional protocols by name.
 *
 * The eight schemes of the paper's spectrum (§2-§4.4), keyed by the
 * names used throughout the benches, tests and examples:
 *
 *   "two_bit"         the paper's contribution (§3)
 *   "two_bit_tb"      two-bit + translation buffer (§4.4)
 *   "two_bit_wt"      write-through two-bit variant (§2.4's other
 *                     branch: the map as an invalidation filter over
 *                     the classical scheme)
 *   "full_map"        Censier-Feautrier n+1-bit map (§2.4.2)
 *   "full_map_local"  Yen-Fu full map + exclusive-clean (§2.4.3)
 *   "dup_dir"         Tang duplicated cache directories (§2.4.1)
 *   "classical"       broadcast write-through (§2.3)
 *   "write_once"      Goodman bus scheme (§2.5)
 *   "illinois"        Papamarcos-Patel bus scheme (ref [5])
 *   "software"        static software-enforced scheme (§2.2)
 */

#ifndef DIR2B_PROTO_PROTOCOL_FACTORY_HH
#define DIR2B_PROTO_PROTOCOL_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "proto/protocol.hh"

namespace dir2b
{

/** Instantiate a protocol by name; fatal on an unknown name. */
std::unique_ptr<Protocol> makeProtocol(const std::string &name,
                                       const ProtoConfig &cfg);

/** All registered protocol names, in the order listed above. */
std::vector<std::string> protocolNames();

} // namespace dir2b

#endif // DIR2B_PROTO_PROTOCOL_FACTORY_HH
