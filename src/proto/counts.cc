#include "proto/counts.hh"

namespace dir2b
{

// Single source of truth for the field list; keeps the arithmetic and
// the stat names in sync by construction.
#define DIR2B_COUNT_FIELDS(X)                                               \
    X(reads)                                                                \
    X(writes)                                                               \
    X(readHits)                                                             \
    X(readMisses)                                                           \
    X(writeHits)                                                            \
    X(writeMisses)                                                          \
    X(writeHitsClean)                                                       \
    X(requests)                                                             \
    X(mrequests)                                                            \
    X(ejects)                                                               \
    X(setstates)                                                            \
    X(broadcasts)                                                           \
    X(broadcastCmds)                                                        \
    X(uselessCmds)                                                          \
    X(directedCmds)                                                         \
    X(invalidations)                                                        \
    X(purges)                                                               \
    X(writebacks)                                                           \
    X(memReads)                                                             \
    X(memWrites)                                                            \
    X(cacheTransfers)                                                       \
    X(dataTransfers)                                                        \
    X(wordWrites)                                                           \
    X(stolenCycles)                                                         \
    X(snoopChecks)                                                          \
    X(filteredCmds)                                                         \
    X(dirUpdates)                                                           \
    X(dirSearches)                                                          \
    X(tbHits)                                                               \
    X(tbMisses)                                                             \
    X(netMessages)

AccessCounts &
AccessCounts::operator+=(const AccessCounts &o)
{
#define X(f) f += o.f;
    DIR2B_COUNT_FIELDS(X)
#undef X
    return *this;
}

AccessCounts
AccessCounts::operator-(const AccessCounts &o) const
{
    AccessCounts r = *this;
#define X(f) r.f -= o.f;
    DIR2B_COUNT_FIELDS(X)
#undef X
    return r;
}

void
AccessCounts::forEachField(
    const AccessCounts &c,
    const std::function<void(const char *, std::uint64_t)> &fn)
{
#define X(f) fn(#f, c.f);
    DIR2B_COUNT_FIELDS(X)
#undef X
}

#undef DIR2B_COUNT_FIELDS

} // namespace dir2b
