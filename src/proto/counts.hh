/**
 * @file
 * Command and traffic accounting for the functional protocol tier.
 *
 * The paper's evaluation (§4.2) counts "extra cache commands" — the
 * broadcast deliveries that reach caches holding no copy of the block
 * and therefore do pure overhead work.  AccessCounts captures that
 * quantity (uselessCmds) together with every other event class the
 * experiments report, using one consistent convention across all eight
 * protocols:
 *
 *  - a broadcast reaching n-1 caches contributes n-1 broadcastCmds, of
 *    which those at caches without a copy are uselessCmds;
 *  - a directed command (full-map INVALIDATE/PURGE) contributes one
 *    directedCmds and must hit a real copy;
 *  - every block movement (memory or cache-to-cache) is a dataTransfer;
 *  - netMessages counts each point-to-point delivery on the network.
 */

#ifndef DIR2B_PROTO_COUNTS_HH
#define DIR2B_PROTO_COUNTS_HH

#include <cstdint>
#include <functional>
#include <string>

namespace dir2b
{

/** Event counters accumulated over a run (or a single access delta). */
struct AccessCounts
{
    // Reference classification.
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t readHits = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeHits = 0;
    std::uint64_t writeMisses = 0;
    /** Write hits on clean lines (the paper's §3.2.4 situation). */
    std::uint64_t writeHitsClean = 0;

    // Coherence transactions.
    std::uint64_t requests = 0;    ///< REQUEST commands issued
    std::uint64_t mrequests = 0;   ///< MREQUEST commands issued
    std::uint64_t ejects = 0;      ///< EJECT notifications issued
    std::uint64_t setstates = 0;   ///< directory SETSTATE operations

    // Commands reaching caches.
    std::uint64_t broadcasts = 0;     ///< broadcast operations
    std::uint64_t broadcastCmds = 0;  ///< deliveries of those broadcasts
    std::uint64_t uselessCmds = 0;    ///< deliveries that found no copy
    std::uint64_t directedCmds = 0;   ///< full-map style directed cmds
    std::uint64_t invalidations = 0;  ///< cache copies invalidated
    std::uint64_t purges = 0;         ///< owner downgrades/flushes

    // Data movement.
    std::uint64_t writebacks = 0;      ///< dirty data returned to memory
    std::uint64_t memReads = 0;        ///< block fetches from memory
    std::uint64_t memWrites = 0;       ///< block writes to memory
    std::uint64_t cacheTransfers = 0;  ///< cache-to-cache supplies
    std::uint64_t dataTransfers = 0;   ///< all get/put block movements
    std::uint64_t wordWrites = 0;      ///< write-through word traffic

    // Overheads at caches.
    std::uint64_t stolenCycles = 0;  ///< cache cycles taken by remote cmds
    std::uint64_t snoopChecks = 0;   ///< bus-scheme per-miss tag checks
    std::uint64_t filteredCmds = 0;  ///< absorbed by BIAS/snoop filters

    // Scheme-specific bookkeeping.
    std::uint64_t dirUpdates = 0;   ///< Tang central-copy update msgs
    std::uint64_t dirSearches = 0;  ///< Tang per-request directory scans
    std::uint64_t tbHits = 0;       ///< translation-buffer hits (§4.4)
    std::uint64_t tbMisses = 0;     ///< translation-buffer misses

    std::uint64_t netMessages = 0;  ///< total point-to-point deliveries

    /** Total references. */
    std::uint64_t refs() const { return reads + writes; }

    /** Total misses. */
    std::uint64_t misses() const { return readMisses + writeMisses; }

    /** Overall miss ratio. */
    double
    missRatio() const
    {
        return refs() ? static_cast<double>(misses()) / refs() : 0.0;
    }

    /** The paper's T_SUM estimate: extra commands per memory request. */
    double
    uselessPerRef() const
    {
        return refs() ? static_cast<double>(uselessCmds) / refs() : 0.0;
    }

    AccessCounts &operator+=(const AccessCounts &o);
    AccessCounts operator-(const AccessCounts &o) const;

    /**
     * Visit every field with its name (for uniform stat dumps).
     * The visitor receives (name, value).
     */
    static void forEachField(
        const AccessCounts &c,
        const std::function<void(const char *, std::uint64_t)> &fn);
};

} // namespace dir2b

#endif // DIR2B_PROTO_COUNTS_HH
