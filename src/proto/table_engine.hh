/**
 * @file
 * Table-driven coherence protocol interpreter.
 *
 * ROADMAP item 1: protocols as data, not code.  A TransitionTable is a
 * list of rows (state, event class, guard) -> (ordered action list,
 * next state) over a fixed action vocabulary, in the style of
 * BlackParrot's BedRock microcode engine (arXiv:2211.06390) and the
 * Guarded Action Language coherence models (arXiv:1803.10323).  The
 * TableProtocol interpreter executes any validated table as a
 * functional-tier Protocol, so a new scheme is a new table — the
 * exhaustive explorer can enumerate its rows directly, the
 * differential fuzzer gets cross-interpreter lockstep for free, and
 * the §4.2 command accounting comes from the shared action
 * implementations instead of per-scheme bespoke code.
 *
 * The table's state is the per-block directory state, stored in the
 * same TwoBitDirectory tiered store as the paper's scheme (at most
 * four states, the economy constraint of the title); holder sets and
 * owners are derived from the cache arrays, which is the functional
 * tier's model of whatever presence bits the scheme would keep in
 * hardware (dirBitsFixed/dirBitsPerProc report the true cost).
 *
 * Bit-identity contract: the tables in proto/table_defs.cc reproduce
 * the hand-written two_bit and full_map schemes *exactly* — every
 * counter bump, every deliverCmd, every replacement-policy touch in
 * the same order — which the lockstep differ (check/differ.hh)
 * enforces access by access.
 */

#ifndef DIR2B_PROTO_TABLE_ENGINE_HH
#define DIR2B_PROTO_TABLE_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "proto/protocol.hh"

namespace dir2b
{

/** How the interpreter classifies one transaction (or sub-event). */
enum class EventClass : std::uint8_t
{
    ReadHit,        ///< LOAD, requester holds a valid copy
    WriteHitDirty,  ///< STORE, requester's copy is already modified
    WriteHitClean,  ///< STORE, requester's copy is clean (§3.2.4)
    ReadMiss,       ///< LOAD, no copy (§3.2.2)
    WriteMiss,      ///< STORE, no copy (§3.2.3)
    EvictClean,     ///< replacement/flush of a clean victim (§3.2.1)
    EvictDirty,     ///< replacement/flush of a modified victim
};

constexpr unsigned numEventClasses = 7;

/** Row guard, evaluated against the block the event addresses.
 *  Rows matching (state, event) are tried in declaration order; the
 *  first whose guard holds fires. */
enum class TableGuard : std::uint8_t
{
    /** Matches unconditionally. */
    Always,
    /** No cache other than the requester holds a valid copy. */
    OtherHoldersNone,
    /** At least one other cache holds a valid copy. */
    OtherHoldersSome,
    /** The (unique) remote owner copy is dirty (M/O). */
    OwnerDirty,
    /** The remote owner copy is clean (Exclusive). */
    OwnerClean,
};

/** §4.2 counters a row may bump explicitly (Bump action argument).
 *  Compound actions (ReadMem, WritebackLine, the Send* family) bump
 *  their own counters internally, exactly as the hand-written
 *  protocols do. */
enum class TableCounter : std::uint8_t
{
    Requests,       ///< REQUEST commands issued
    MRequests,      ///< MREQUEST commands issued
    Ejects,         ///< EJECT notifications issued
    NetMessages,    ///< point-to-point deliveries
    DataTransfers,  ///< get/put block movements
    Invalidations,  ///< cache copies invalidated
    Purges,         ///< owner downgrades/flushes
};

constexpr unsigned numTableCounters = 7;

/** The fixed action vocabulary. */
enum class ActionOp : std::uint8_t
{
    /** Bump one §4.2 counter (arg = TableCounter). */
    Bump,
    /** data := memory[a]; counts a memory read. */
    ReadMem,
    /** Write the current line's (victim's) dirty data back to memory:
     *  put + memory write (dataTransfers, netMessages, memWrites,
     *  writebacks). */
    WritebackLine,
    /** Fill the requester's cache with the block (arg = LineState);
     *  data for loads, the store value for writes.  Counts nothing —
     *  precede with Bump(DataTransfers)/Bump(NetMessages) for the
     *  get(k,a). */
    FillLine,
    /** Rewrite the current line's local state (arg = LineState). */
    SetLine,
    /** line.value := the store value (the paper's st(a,b_k)). */
    WriteLine,
    /** Invalidate the current block in the requester's cache. */
    DropLine,
    /** SETSTATE(a, arg): update the 2-bit map entry and count it. */
    SetDirState,
    /** BROADINV(a, k): broadcast to the n-1 other caches, invalidate
     *  every (clean) copy found; useless deliveries counted. */
    SendBroadInv,
    /** BROADQUERY(a, "read"): the dirty owner puts the block, memory
     *  is written back, the owner keeps a clean Shared copy. */
    SendBroadQueryRead,
    /** BROADQUERY(a, "write"): as above but the owner invalidates. */
    SendBroadQueryWrite,
    /** Directed INVALIDATE(a, p) to every other cache holding a clean
     *  copy (ascending p); always useful. */
    SendInvHolders,
    /** Directed PURGE(a, owner, "read"): owner puts + write-back,
     *  keeps a clean Shared copy. */
    SendPurgeRead,
    /** Directed PURGE(a, owner, "write"): owner puts + write-back,
     *  then invalidates. */
    SendPurgeWrite,
    /** Directed downgrade of the remote owner: cache-to-cache supply
     *  (no write-back); a dirty owner becomes Owned, a clean
     *  (Exclusive) owner becomes Shared. */
    SendDowngradeOwner,
    /** Directed fetch-and-invalidate of the remote owner:
     *  cache-to-cache supply (no write-back), owner drops its copy. */
    SendFetchInvOwner,
    /** Re-classify the access and dispatch again (transient-state
     *  retry).  Must be the last action of its row; the interpreter
     *  bounds retries and fatals on livelock. */
    Stall,
};

constexpr unsigned numActionOps = 17;

/** One action: opcode plus its immediate argument. */
struct TableAction
{
    ActionOp op = ActionOp::Bump;
    std::uint8_t arg = 0;
};

/** One transition row. */
struct TableRow
{
    /** Directory state this row fires in (index into stateNames). */
    std::uint8_t state = 0;
    EventClass event = EventClass::ReadHit;
    TableGuard guard = TableGuard::Always;
    /** Executed in order. */
    std::vector<TableAction> actions;
    /** Directory state after the row: must equal the argument of the
     *  row's last SetDirState action, or `state` when there is none
     *  (validated). */
    std::uint8_t next = 0;
};

/** Structural invariant bounds for one directory state, checked by
 *  TableProtocol::checkInvariants() and the explorer. */
struct StateConstraint
{
    std::size_t minHolders = 0;
    std::size_t maxHolders = SIZE_MAX;
    std::size_t minModified = 0;
    std::size_t maxModified = 0;
};

/** A complete declarative protocol. */
struct TransitionTable
{
    /** Scheme name the factory registers ("two_bit_table", ...). */
    std::string name;
    /** Directory state names; at most 4 (the two-bit economy bound),
     *  index 0 is the initial (uncached) state. */
    std::vector<std::string> stateNames;
    /** Per-state structural bounds (same size as stateNames). */
    std::vector<StateConstraint> constraints;
    std::vector<TableRow> rows;
    /** Directory storage cost metadata: bits per block =
     *  dirBitsFixed + dirBitsPerProc * n. */
    unsigned dirBitsFixed = 2;
    unsigned dirBitsPerProc = 0;

    /** All structural problems, as "row N: ..." messages; empty means
     *  the table is executable. */
    std::vector<std::string> validate() const;

    /** Whether any row handles an eviction event — this is what makes
     *  replacement (and therefore flushCache) executable, so
     *  Protocol::supportsFlush() is answered from here. */
    bool handlesEvict() const;
};

/** Render row `i` of `t` as "(state, event, guard) -> next" for
 *  diagnostics and coverage reports. */
std::string describeRow(const TransitionTable &t, std::size_t i);

std::string toString(EventClass e);
std::string toString(TableGuard g);
std::string toString(ActionOp op);

/**
 * The interpreter: executes any validated TransitionTable as a
 * functional-tier Protocol.  Directory state lives in per-module
 * TwoBitDirectory tiered stores, so table-driven schemes compose with
 * --dir-ram-budget and report dirStoreCounters() with zero
 * scheme-specific code.
 */
class TableProtocol : public Protocol
{
  public:
    /** Fatals (with every validation message) on an invalid table. */
    TableProtocol(const TransitionTable &table, const ProtoConfig &cfg);

    unsigned
    directoryBitsPerBlock() const override
    {
        return table_.dirBitsFixed +
               table_.dirBitsPerProc * cfg_.numProcs;
    }

    DirStoreCounters dirStoreCounters() const override;

    /** Generic: census every cached block against the per-state
     *  constraints; panics on violation. */
    void checkInvariants() const override;

    /** Executable whenever the table has eviction rows: each valid
     *  line is ejected through the same rows replacement uses. */
    void flushCache(ProcId p) override;
    bool supportsFlush() const override { return table_.handlesEvict(); }

    /** Directory state of block a (index into table().stateNames). */
    std::uint8_t
    dirStateOf(Addr a) const
    {
        return static_cast<std::uint8_t>(dirFor(a).get(a));
    }

    const TransitionTable &table() const { return table_; }

    /** Fire count per table row (row coverage; the explorer unions
     *  these to report unreachable rows). */
    const std::vector<std::uint64_t> &rowHits() const { return rowHits_; }

    /**
     * A/B knob for the dispatch microbench and equivalence tests:
     * true falls back to the pre-index linear row scan.  Both paths
     * fire the same row for every (state, event, guard) query — the
     * dense index only skips rows that could never match.
     */
    void useLinearDispatch(bool on) { linearDispatch_ = on; }

  protected:
    Value doAccess(ProcId k, Addr a, bool write, Value wval) override;

  private:
    TwoBitDirectory &dirFor(Addr a) { return dirs_[addrMap_.home(a)]; }
    const TwoBitDirectory &
    dirFor(Addr a) const
    {
        return dirs_[addrMap_.home(a)];
    }

    /** Holders of `a` other than `k` (ascending ProcId). */
    std::size_t otherHolders(Addr a, ProcId k) const;
    /** The remote owner of `a`: the unique other holder whose copy is
     *  not merely Shared (E/M/O), or invalidProc. */
    ProcId remoteOwner(Addr a, ProcId k) const;

    bool guardHolds(TableGuard g, Addr a, ProcId k) const;
    const TableRow *findRow(std::uint8_t state, EventClass ev, Addr a,
                            ProcId k) const;

    /** Classify a LOAD/STORE by `k` against its cache (touches
     *  replacement state exactly like the hand-written schemes:
     *  only the initial classification touches). */
    EventClass classify(ProcId k, Addr a, bool write, bool touch,
                        CacheLine *&line);

    /** Dispatch one event; returns the transaction's result value.
     *  `depth` bounds Stall retries. */
    Value dispatch(ProcId k, Addr a, bool write, Value wval,
                   EventClass ev, CacheLine *line, unsigned depth);

    /** Run the eviction rows for a valid victim line. */
    void evictLine(ProcId k, CacheLine &victim);

    std::size_t
    slotIndex(std::uint8_t state, EventClass ev) const
    {
        return std::size_t{state} * numEventClasses +
               static_cast<std::size_t>(ev);
    }

    /** One (state, event-class) slot of the dispatch index: a span of
     *  candidate row ids in dispatchRows_, declaration-ordered. */
    struct DispatchSlot
    {
        std::uint32_t off = 0;
        std::uint32_t len = 0;
    };

    TransitionTable table_;
    std::vector<TwoBitDirectory> dirs_;
    std::vector<std::uint64_t> rowHits_;
    /** Dense (state x event-class) first-row index, compiled at
     *  registration from the validated table. */
    std::vector<DispatchSlot> dispatchSlots_;
    std::vector<std::uint16_t> dispatchRows_;
    bool linearDispatch_ = false;
};

} // namespace dir2b

#endif // DIR2B_PROTO_TABLE_ENGINE_HH
