#include "proto/protocol.hh"

#include "util/logging.hh"

namespace dir2b
{

Protocol::Protocol(std::string name, const ProtoConfig &cfg)
    : cfg_(cfg),
      addrMap_(cfg.numModules),
      name_(std::move(name)),
      recvCmds_(cfg.numProcs, 0),
      recvUseless_(cfg.numProcs, 0),
      refsBy_(cfg.numProcs, 0)
{
    if (cfg_.numProcs < 1)
        DIR2B_FATAL("protocol '", name_, "' needs at least one processor");
    caches_.reserve(cfg_.numProcs);
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        CacheGeometry g = cfg_.cacheGeom;
        g.seed = g.seed * 0x9e3779b9ULL + p + 1;
        caches_.emplace_back(g);
    }
}

Value
Protocol::access(ProcId k, Addr a, bool write, Value wval)
{
    DIR2B_ASSERT(k < cfg_.numProcs, "access from unknown processor ", k);
    const AccessCounts before = counts_;
    if (write)
        ++counts_.writes;
    else
        ++counts_.reads;
    ++refsBy_[k];

    const Value result = doAccess(k, a, write, wval);

    lastDelta_ = counts_ - before;
    return result;
}

void
Protocol::deliverCmd(ProcId p, bool useful, bool stealsCycle)
{
    if (stealsCycle)
        ++counts_.stolenCycles;
    else
        ++counts_.filteredCmds;
    ++recvCmds_[p];
    if (!useful) {
        ++counts_.uselessCmds;
        ++recvUseless_[p];
    }
}

void
Protocol::flushCache(ProcId)
{
    DIR2B_FATAL("protocol '", name_, "' does not implement flushCache");
}

std::vector<ProcId>
Protocol::holders(Addr a) const
{
    std::vector<ProcId> out;
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        if (caches_[p].peek(a))
            out.push_back(p);
    }
    return out;
}

} // namespace dir2b
