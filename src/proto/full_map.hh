/**
 * @file
 * Full distributed map (Censier & Feautrier 1978; paper §2.4.2).
 *
 * Each memory block carries a presence bit per cache plus one modified
 * bit (n+1 bits).  The directory therefore always knows the exact
 * holder set: commands are *directed* — INVALIDATE(a,i) to each actual
 * holder, PURGE(a,i,rw) to the actual owner — and no cache ever
 * receives a useless command.  This is the baseline against which the
 * paper measures the two-bit scheme's extra broadcast overhead, and
 * the reference point for invariants: every directed command we send
 * is asserted to hit a real copy.
 */

#ifndef DIR2B_PROTO_FULL_MAP_HH
#define DIR2B_PROTO_FULL_MAP_HH

#include "net/message.hh"
#include "proto/protocol.hh"
#include "util/bitset.hh"
#include "util/flat_map.hh"

namespace dir2b
{

/** One full-map directory entry: presence vector + modified bit. */
struct FullMapEntry
{
    DynBitset present;
    bool modified = false;

    explicit FullMapEntry(std::size_t n) : present(n) {}
};

/** Functional-tier full-map directory protocol. */
class FullMapProtocol : public Protocol
{
  public:
    explicit FullMapProtocol(const ProtoConfig &cfg);

    unsigned
    directoryBitsPerBlock() const override
    {
        return static_cast<unsigned>(cfg_.numProcs) + 1;
    }

    void checkInvariants() const override;

    /** §2.2 context-switch flush with exact bit clearing. */
    void flushCache(ProcId p) override;
    bool supportsFlush() const override { return true; }

    /** Directory entry for block a (Absent-equivalent if missing). */
    const FullMapEntry *entry(Addr a) const;

  protected:
    explicit FullMapProtocol(const std::string &name,
                             const ProtoConfig &cfg);

    Value doAccess(ProcId k, Addr a, bool write, Value wval) override;

    /**
     * Hook: the Tang duplicated-directory variant reports every
     * directory-relevant cache change to the central controller and
     * searches all duplicates per request; the plain full map does
     * neither.
     */
    virtual void onDirectoryTouch(Addr) {}
    virtual void onCacheChange(ProcId) {}

    FullMapEntry &entryFor(Addr a);

    /** Directed INVALIDATE to every holder except 'except'. */
    void invalidateHolders(Addr a, FullMapEntry &e, ProcId except);

    /** Directed PURGE(a, owner, rw); returns the owner's data. */
    Value purgeOwner(Addr a, FullMapEntry &e, RW rw);

    /** §3.2.1-equivalent replacement with exact bit clearing. */
    void replaceVictim(ProcId k, Addr a);

  private:
    FlatMap<Addr, FullMapEntry> map_;
};

} // namespace dir2b

#endif // DIR2B_PROTO_FULL_MAP_HH
