/**
 * @file
 * Goodman's write-once bus protocol (1983; paper §2.5).
 *
 * The paper reads write-once as "a decentralization of the cache
 * directory duplication method with the addition of an added local
 * state, while at the same time taking advantage of the broadcast
 * feature of the classical solution".  Local states:
 *
 *   Invalid, Valid (clean, possibly shared), Reserved (written exactly
 *   once, written through, memory current, sole copy), Dirty (written
 *   more than once, memory stale, sole copy).
 *
 * Every miss is a bus transaction observed by *all* other caches —
 * the per-miss snooping cost the two-bit scheme avoids ("these signals
 * are only necessary in the case of actual sharing ... and not on
 * every cache miss as in the bus schemes", §3.1).  We count those tag
 * checks as snoopChecks; caches are assumed to have the duplicate
 * (dual-ported) tag directory Goodman proposed, so a snoop steals a
 * processor cycle only when action is required.
 *
 * Transitions follow Archibald & Baer's own later survey (ACM TOCS
 * 1986) where the ISCA text leaves detail open.
 */

#ifndef DIR2B_PROTO_WRITE_ONCE_HH
#define DIR2B_PROTO_WRITE_ONCE_HH

#include "proto/protocol.hh"

namespace dir2b
{

/** Functional-tier write-once protocol. */
class WriteOnceProtocol : public Protocol
{
  public:
    explicit WriteOnceProtocol(const ProtoConfig &cfg)
        : Protocol("write_once", cfg)
    {}

    /** Bus schemes keep no per-memory-block directory state. */
    unsigned directoryBitsPerBlock() const override { return 0; }

    void checkInvariants() const override;

  protected:
    Value doAccess(ProcId k, Addr a, bool write, Value wval) override;

  private:
    /** Write back and drop the victim frame for block a, if valid. */
    void replaceVictim(ProcId k, Addr a);

    /** All other caches observe one bus transaction. */
    void snoop() { counts_.snoopChecks += cfg_.numProcs - 1; }
};

} // namespace dir2b

#endif // DIR2B_PROTO_WRITE_ONCE_HH
