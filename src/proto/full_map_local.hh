/**
 * @file
 * Full map with added local state (Yen & Fu 1982; paper §2.4.3).
 *
 * Extends the Censier-Feautrier map with a local *exclusive-clean*
 * state: a cache that is known to hold the only copy of an unmodified
 * block may write it "without first consulting the global table".
 * The cost is that the directory's modified bit can be stale — a
 * sole-holder block may have been silently upgraded — so any remote
 * request for a block with exactly one presence bit must query the
 * owner regardless of the modified bit (the "additional
 * synchronization problems (not fully resolved in [10])" the paper
 * alludes to; in this atomic tier the query resolves them).
 *
 * Relative to the plain full map this trades MREQUEST round trips on
 * write hits against extra owner queries on remote accesses to
 * sole-holder blocks — measured head-to-head in bench_protocol_comparison.
 */

#ifndef DIR2B_PROTO_FULL_MAP_LOCAL_HH
#define DIR2B_PROTO_FULL_MAP_LOCAL_HH

#include "net/message.hh"
#include "proto/protocol.hh"
#include "util/bitset.hh"
#include "util/flat_map.hh"

namespace dir2b
{

/** Directory entry: presence vector; modified bit may be stale when
 *  exactly one presence bit is set. */
struct LocalMapEntry
{
    DynBitset present;
    /** True if the directory *knows* the block is modified.  With one
     *  presence bit set the truth may be "more modified" than this. */
    bool modified = false;

    explicit LocalMapEntry(std::size_t n) : present(n) {}
};

/** Functional-tier Yen-Fu protocol (full map + exclusive-clean). */
class FullMapLocalProtocol : public Protocol
{
  public:
    explicit FullMapLocalProtocol(const ProtoConfig &cfg);

    unsigned
    directoryBitsPerBlock() const override
    {
        return static_cast<unsigned>(cfg_.numProcs) + 1;
    }

    void checkInvariants() const override;

    /** Silent Exclusive->Modified upgrades performed (the scheme's
     *  whole point; zero messages each). */
    std::uint64_t silentUpgrades() const { return silentUpgrades_; }

  protected:
    Value doAccess(ProcId k, Addr a, bool write, Value wval) override;

  private:
    LocalMapEntry &entryFor(Addr a);

    /** Query the sole holder: returns its data, writing back if it had
     *  silently modified the block; downgrades (rw=Read) or
     *  invalidates (rw=Write) the holder's copy. */
    Value querySoleHolder(Addr a, LocalMapEntry &e, RW rw);

    void invalidateHolders(Addr a, LocalMapEntry &e, ProcId except);
    void replaceVictim(ProcId k, Addr a);

    FlatMap<Addr, LocalMapEntry> map_;
    std::uint64_t silentUpgrades_ = 0;
};

} // namespace dir2b

#endif // DIR2B_PROTO_FULL_MAP_LOCAL_HH
