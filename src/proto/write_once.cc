#include "proto/write_once.hh"

#include "util/logging.hh"

namespace dir2b
{

void
WriteOnceProtocol::replaceVictim(ProcId k, Addr a)
{
    CacheLine &victim = caches_[k].victimFor(a);
    if (!victim.valid())
        return;
    if (victim.dirty()) {
        mem_.write(victim.addr, victim.value);
        ++counts_.memWrites;
        ++counts_.writebacks;
        ++counts_.dataTransfers;
        ++counts_.netMessages;
    }
    // Valid and Reserved lines are clean in memory: silent drop.
    caches_[k].invalidate(victim.addr);
}

Value
WriteOnceProtocol::doAccess(ProcId k, Addr a, bool write, Value wval)
{
    CacheArray &c = caches_[k];
    CacheLine *l = c.lookup(a);

    if (!write) {
        if (l) {
            ++counts_.readHits;
            return l->value;
        }
        ++counts_.readMisses;
        replaceVictim(k, a);

        // Bus read: everyone snoops; a Dirty owner supplies and writes
        // back; Reserved/owners downgrade to Valid.
        snoop();
        ++counts_.netMessages;
        Value v = 0;
        bool supplied = false;
        for (ProcId i = 0; i < cfg_.numProcs; ++i) {
            if (i == k)
                continue;
            CacheLine *r = caches_[i].lookup(a, false);
            if (!r)
                continue;
            if (r->dirty()) {
                DIR2B_ASSERT(!supplied, "two dirty copies of ", a);
                v = r->value;
                supplied = true;
                ++counts_.stolenCycles;
                ++counts_.purges;
                ++counts_.cacheTransfers;
                ++counts_.dataTransfers;
                ++counts_.netMessages;
                mem_.write(a, v);
                ++counts_.memWrites;
                ++counts_.writebacks;
                r->state = LineState::Shared;
            } else if (r->state == LineState::Reserved) {
                // Memory is current; the copy merely loses reservation.
                ++counts_.stolenCycles;
                r->state = LineState::Shared;
            }
        }
        if (!supplied) {
            v = mem_.read(a);
            ++counts_.memReads;
        }
        ++counts_.dataTransfers;
        ++counts_.netMessages;
        c.fill(a, LineState::Shared, v);
        return v;
    }

    // Store.
    if (l) {
        switch (l->state) {
          case LineState::Modified:
            ++counts_.writeHits;
            l->value = wval;
            return wval;
          case LineState::Reserved:
            // Second write: Dirty, no bus traffic.
            ++counts_.writeHits;
            l->state = LineState::Modified;
            l->value = wval;
            return wval;
          case LineState::Shared: {
            // The eponymous write-once: write the word through and let
            // the bus invalidate every other copy.
            ++counts_.writeHits;
            ++counts_.writeHitsClean;
            snoop();
            l->state = LineState::Reserved;
            l->value = wval;
            mem_.write(a, wval);
            ++counts_.memWrites;
            ++counts_.wordWrites;
            ++counts_.netMessages;
            for (ProcId i = 0; i < cfg_.numProcs; ++i) {
                if (i == k)
                    continue;
                if (caches_[i].peek(a)) {
                    ++counts_.stolenCycles;
                    caches_[i].invalidate(a);
                    ++counts_.invalidations;
                }
            }
            return wval;
          }
          default:
            DIR2B_PANIC("write-once line in impossible state ",
                        toString(l->state));
        }
    }

    // Write miss: read-with-invalidate; the block arrives Dirty.
    ++counts_.writeMisses;
    replaceVictim(k, a);
    snoop();
    ++counts_.netMessages;
    bool supplied = false;
    for (ProcId i = 0; i < cfg_.numProcs; ++i) {
        if (i == k)
            continue;
        CacheLine *r = caches_[i].lookup(a, false);
        if (!r)
            continue;
        ++counts_.stolenCycles;
        if (r->dirty()) {
            DIR2B_ASSERT(!supplied, "two dirty copies of ", a);
            supplied = true;
            ++counts_.purges;
            ++counts_.cacheTransfers;
            ++counts_.dataTransfers;
            ++counts_.netMessages;
        }
        caches_[i].invalidate(a);
        ++counts_.invalidations;
    }
    if (!supplied) {
        mem_.read(a);
        ++counts_.memReads;
    }
    ++counts_.dataTransfers;
    ++counts_.netMessages;
    c.fill(a, LineState::Modified, wval);
    return wval;
}

void
WriteOnceProtocol::checkInvariants() const
{
    std::unordered_map<Addr, std::pair<unsigned, unsigned>> seen;
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        caches_[p].forEachValid([&](const CacheLine &l) {
            auto &[copies, owners] = seen[l.addr];
            ++copies;
            if (l.state == LineState::Modified ||
                l.state == LineState::Reserved) {
                ++owners;
            }
            if (l.state != LineState::Modified) {
                // Valid and Reserved copies match memory (write-through
                // on the first write keeps memory current).
                DIR2B_ASSERT(l.value == mem_.peek(l.addr),
                             "clean write-once copy of ", l.addr,
                             " differs from memory");
            }
        });
    }
    for (const auto &[a, co] : seen) {
        const auto [copies, owners] = co;
        DIR2B_ASSERT(owners <= 1, "block ", a, " has ", owners,
                     " Reserved/Dirty owners");
        if (owners == 1)
            DIR2B_ASSERT(copies == 1, "owned block ", a, " has ", copies,
                         " copies");
    }
}

} // namespace dir2b
