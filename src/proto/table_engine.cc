#include "proto/table_engine.hh"

#include <sstream>
#include <unordered_map>

#include "util/logging.hh"

namespace dir2b
{

std::string
toString(EventClass e)
{
    switch (e) {
      case EventClass::ReadHit:
        return "ReadHit";
      case EventClass::WriteHitDirty:
        return "WriteHitDirty";
      case EventClass::WriteHitClean:
        return "WriteHitClean";
      case EventClass::ReadMiss:
        return "ReadMiss";
      case EventClass::WriteMiss:
        return "WriteMiss";
      case EventClass::EvictClean:
        return "EvictClean";
      case EventClass::EvictDirty:
        return "EvictDirty";
    }
    return "event#" + std::to_string(static_cast<unsigned>(e));
}

std::string
toString(TableGuard g)
{
    switch (g) {
      case TableGuard::Always:
        return "Always";
      case TableGuard::OtherHoldersNone:
        return "OtherHoldersNone";
      case TableGuard::OtherHoldersSome:
        return "OtherHoldersSome";
      case TableGuard::OwnerDirty:
        return "OwnerDirty";
      case TableGuard::OwnerClean:
        return "OwnerClean";
    }
    return "guard#" + std::to_string(static_cast<unsigned>(g));
}

std::string
toString(ActionOp op)
{
    switch (op) {
      case ActionOp::Bump:
        return "Bump";
      case ActionOp::ReadMem:
        return "ReadMem";
      case ActionOp::WritebackLine:
        return "WritebackLine";
      case ActionOp::FillLine:
        return "FillLine";
      case ActionOp::SetLine:
        return "SetLine";
      case ActionOp::WriteLine:
        return "WriteLine";
      case ActionOp::DropLine:
        return "DropLine";
      case ActionOp::SetDirState:
        return "SetDirState";
      case ActionOp::SendBroadInv:
        return "SendBroadInv";
      case ActionOp::SendBroadQueryRead:
        return "SendBroadQueryRead";
      case ActionOp::SendBroadQueryWrite:
        return "SendBroadQueryWrite";
      case ActionOp::SendInvHolders:
        return "SendInvHolders";
      case ActionOp::SendPurgeRead:
        return "SendPurgeRead";
      case ActionOp::SendPurgeWrite:
        return "SendPurgeWrite";
      case ActionOp::SendDowngradeOwner:
        return "SendDowngradeOwner";
      case ActionOp::SendFetchInvOwner:
        return "SendFetchInvOwner";
      case ActionOp::Stall:
        return "Stall";
    }
    return "op#" + std::to_string(static_cast<unsigned>(op));
}

namespace
{

std::string
stateName(const TransitionTable &t, std::uint8_t s)
{
    if (s < t.stateNames.size())
        return t.stateNames[s];
    return "#" + std::to_string(static_cast<unsigned>(s));
}

/** Highest LineState value (cache_types.hh). */
constexpr auto maxLineState =
    static_cast<std::uint8_t>(LineState::Owned);

} // namespace

std::string
describeRow(const TransitionTable &t, std::size_t i)
{
    if (i >= t.rows.size())
        return "row " + std::to_string(i) + " (out of range)";
    const TableRow &r = t.rows[i];
    std::ostringstream os;
    os << "(" << stateName(t, r.state) << ", " << toString(r.event)
       << ", " << toString(r.guard) << ") -> " << stateName(t, r.next);
    return os.str();
}

bool
TransitionTable::handlesEvict() const
{
    for (const TableRow &r : rows) {
        if (r.event == EventClass::EvictClean ||
            r.event == EventClass::EvictDirty)
            return true;
    }
    return false;
}

std::vector<std::string>
TransitionTable::validate() const
{
    std::vector<std::string> msgs;
    auto rowMsg = [&](std::size_t i, const std::string &what) {
        msgs.push_back("row " + std::to_string(i) + " " +
                       describeRow(*this, i) + ": " + what);
    };

    if (stateNames.empty() || stateNames.size() > 4) {
        msgs.push_back("table '" + name + "': " +
                       std::to_string(stateNames.size()) +
                       " states (a two-bit map holds 1..4)");
    }
    if (constraints.size() != stateNames.size()) {
        msgs.push_back("table '" + name + "': " +
                       std::to_string(constraints.size()) +
                       " state constraints for " +
                       std::to_string(stateNames.size()) + " states");
    }
    const auto nStates = static_cast<std::uint8_t>(stateNames.size());

    for (std::size_t i = 0; i < rows.size(); ++i) {
        const TableRow &r = rows[i];
        if (static_cast<unsigned>(r.event) >= numEventClasses)
            rowMsg(i, "unknown event class " +
                          std::to_string(static_cast<unsigned>(r.event)));
        if (static_cast<unsigned>(r.guard) > 4)
            rowMsg(i, "unknown guard " +
                          std::to_string(static_cast<unsigned>(r.guard)));
        if (r.state >= nStates)
            rowMsg(i, "undefined state " +
                          std::to_string(static_cast<unsigned>(r.state)));
        if (r.next >= nStates)
            rowMsg(i, "undefined next-state " +
                          std::to_string(static_cast<unsigned>(r.next)));

        for (std::size_t j = 0; j < i; ++j) {
            const TableRow &p = rows[j];
            if (p.state != r.state || p.event != r.event)
                continue;
            if (p.guard == r.guard) {
                rowMsg(i, "duplicate of row " + std::to_string(j));
                break;
            }
            if (p.guard == TableGuard::Always) {
                rowMsg(i, "unreachable: row " + std::to_string(j) +
                              " matches Always first");
                break;
            }
        }

        bool sawSetDir = false;
        std::uint8_t lastSetDir = 0;
        for (std::size_t j = 0; j < r.actions.size(); ++j) {
            const TableAction &a = r.actions[j];
            const std::string where =
                "action " + std::to_string(j) + " (" +
                toString(a.op) + ")";
            if (static_cast<unsigned>(a.op) >= numActionOps) {
                rowMsg(i, where + ": not in the action vocabulary");
                continue;
            }
            switch (a.op) {
              case ActionOp::Bump:
                if (a.arg >= numTableCounters)
                    rowMsg(i, where + ": unknown counter " +
                                  std::to_string(a.arg));
                break;
              case ActionOp::FillLine:
                if (a.arg > maxLineState)
                    rowMsg(i, where + ": unknown line state " +
                                  std::to_string(a.arg));
                else if (a.arg ==
                         static_cast<std::uint8_t>(LineState::Invalid))
                    rowMsg(i, where + ": FillLine(Invalid) — use "
                                      "DropLine to remove a copy");
                break;
              case ActionOp::SetLine:
                if (a.arg > maxLineState)
                    rowMsg(i, where + ": unknown line state " +
                                  std::to_string(a.arg));
                break;
              case ActionOp::SetDirState:
                if (a.arg >= nStates) {
                    rowMsg(i, where + ": undefined target state " +
                                  std::to_string(a.arg));
                } else {
                    sawSetDir = true;
                    lastSetDir = a.arg;
                }
                break;
              case ActionOp::Stall:
                if (j + 1 != r.actions.size())
                    rowMsg(i, where + ": Stall must be the last "
                                      "action of its row");
                break;
              default:
                break;
            }
        }

        // The declared next state must be the one the actions leave in
        // the directory: tables stay honest about their own effects.
        if (sawSetDir) {
            if (lastSetDir != r.next && r.next < nStates)
                rowMsg(i, "declares next state '" +
                              stateName(*this, r.next) +
                              "' but the last SetDirState writes '" +
                              stateName(*this, lastSetDir) + "'");
        } else if (r.next != r.state) {
            rowMsg(i, "changes state without a SetDirState action");
        }
    }
    return msgs;
}

TableProtocol::TableProtocol(const TransitionTable &table,
                             const ProtoConfig &cfg)
    : Protocol(table.name, cfg),
      table_(table),
      dirs_(makeTwoBitDirectories(cfg.numModules, cfg.dirRamBudget)),
      rowHits_(table.rows.size(), 0)
{
    const auto problems = table_.validate();
    if (!problems.empty()) {
        std::ostringstream os;
        for (const std::string &m : problems)
            os << "\n  " << m;
        DIR2B_FATAL("transition table '", table_.name, "' is invalid:",
                    os.str());
    }
    // The duplicate tag directory of §4.4(a) redirects broadcast
    // deliveries; the shared action implementations model the plain
    // interconnect only.
    DIR2B_ASSERT(!cfg.snoopFilter, "table-driven protocol '",
                 table_.name, "' does not support the snoop filter");

    // Compile the validated table into a dense (state x event-class)
    // dispatch index: each slot lists its candidate rows in
    // declaration order, so findRow() evaluates guards over exactly
    // the rows the linear scan would have reached — same first match,
    // no scan over the rest of the table.
    dispatchSlots_.assign(
        table_.stateNames.size() * numEventClasses, {});
    for (unsigned pass = 0; pass < 2; ++pass) {
        for (std::size_t i = 0; i < table_.rows.size(); ++i) {
            const TableRow &r = table_.rows[i];
            DispatchSlot &slot = dispatchSlots_[slotIndex(
                r.state, r.event)];
            if (pass == 0) {
                ++slot.len;
            } else {
                dispatchRows_[slot.off + slot.len++] =
                    static_cast<std::uint16_t>(i);
            }
        }
        if (pass == 0) {
            std::uint32_t off = 0;
            for (DispatchSlot &slot : dispatchSlots_) {
                slot.off = off;
                off += slot.len;
                slot.len = 0;
            }
            dispatchRows_.resize(table_.rows.size());
        }
    }
}

DirStoreCounters
TableProtocol::dirStoreCounters() const
{
    DirStoreCounters c;
    for (const TwoBitDirectory &d : dirs_)
        c.add(d);
    return c;
}

std::size_t
TableProtocol::otherHolders(Addr a, ProcId k) const
{
    std::size_t n = 0;
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        if (p == k)
            continue;
        const CacheLine *l = caches_[p].peek(a);
        if (l && l->valid())
            ++n;
    }
    return n;
}

ProcId
TableProtocol::remoteOwner(Addr a, ProcId k) const
{
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        if (p == k)
            continue;
        const CacheLine *l = caches_[p].peek(a);
        if (l && l->valid() && l->state != LineState::Shared)
            return p;
    }
    return invalidProc;
}

bool
TableProtocol::guardHolds(TableGuard g, Addr a, ProcId k) const
{
    switch (g) {
      case TableGuard::Always:
        return true;
      case TableGuard::OtherHoldersNone:
        return otherHolders(a, k) == 0;
      case TableGuard::OtherHoldersSome:
        return otherHolders(a, k) > 0;
      case TableGuard::OwnerDirty:
      case TableGuard::OwnerClean: {
        const ProcId p = remoteOwner(a, k);
        if (p == invalidProc)
            return false;
        const bool dirty = caches_[p].peek(a)->dirty();
        return g == TableGuard::OwnerDirty ? dirty : !dirty;
      }
    }
    return false;
}

const TableRow *
TableProtocol::findRow(std::uint8_t state, EventClass ev, Addr a,
                       ProcId k) const
{
    if (linearDispatch_) {
        // The pre-index reference path, kept as the A/B baseline for
        // bench_trace_replay's dispatch microbench and the
        // equivalence test in test_table_engine.cc.
        for (const TableRow &r : table_.rows) {
            if (r.state == state && r.event == ev &&
                guardHolds(r.guard, a, k))
                return &r;
        }
        return nullptr;
    }
    const DispatchSlot slot = dispatchSlots_[slotIndex(state, ev)];
    for (std::uint32_t i = 0; i < slot.len; ++i) {
        const TableRow &r = table_.rows[dispatchRows_[slot.off + i]];
        if (guardHolds(r.guard, a, k))
            return &r;
    }
    return nullptr;
}

EventClass
TableProtocol::classify(ProcId k, Addr a, bool write, bool touch,
                        CacheLine *&line)
{
    line = caches_[k].lookup(a, touch);
    if (line) {
        if (!write)
            return EventClass::ReadHit;
        return line->dirty() ? EventClass::WriteHitDirty
                             : EventClass::WriteHitClean;
    }
    return write ? EventClass::WriteMiss : EventClass::ReadMiss;
}

namespace
{

/** Per-dispatch interpreter registers. */
struct ExecCtx
{
    ProcId proc = 0;
    Addr addr = 0;
    bool write = false;
    Value wval = 0;
    /** Requester's line (hits), the victim (evictions), or the filled
     *  line after FillLine. */
    CacheLine *line = nullptr;
    /** Block data in flight (ReadMem / owner supplies). */
    Value data = 0;
    bool stalled = false;
};

} // namespace

void
TableProtocol::evictLine(ProcId k, CacheLine &victim)
{
    const Addr olda = victim.addr;
    const EventClass ev = victim.dirty() ? EventClass::EvictDirty
                                         : EventClass::EvictClean;
    dispatch(k, olda, false, 0, ev, &victim, 0);
}

Value
TableProtocol::doAccess(ProcId k, Addr a, bool write, Value wval)
{
    CacheLine *line = nullptr;
    const EventClass ev = classify(k, a, write, true, line);

    // Reference classification is the interpreter's, not the table's:
    // every scheme counts hits and misses the same way.
    switch (ev) {
      case EventClass::ReadHit:
        ++counts_.readHits;
        break;
      case EventClass::WriteHitDirty:
        ++counts_.writeHits;
        break;
      case EventClass::WriteHitClean:
        ++counts_.writeHits;
        ++counts_.writeHitsClean;
        break;
      case EventClass::ReadMiss:
        ++counts_.readMisses;
        break;
      case EventClass::WriteMiss:
        ++counts_.writeMisses;
        break;
      default:
        break;
    }

    return dispatch(k, a, write, wval, ev, line, 0);
}

Value
TableProtocol::dispatch(ProcId k, Addr a, bool write, Value wval,
                        EventClass ev, CacheLine *line, unsigned depth)
{
    // Replacement precedes the miss transaction (§3.2.1): the victim
    // runs through the same eviction rows flushCache uses.
    if (ev == EventClass::ReadMiss || ev == EventClass::WriteMiss) {
        CacheLine &victim = caches_[k].victimFor(a);
        if (victim.valid())
            evictLine(k, victim);
    }

    const std::uint8_t state = dirStateOf(a);
    const TableRow *row = findRow(state, ev, a, k);
    if (!row) {
        DIR2B_FATAL("table '", table_.name, "' has no row for (",
                    stateName(table_, state), ", ", toString(ev),
                    ") at block ", a, " from cache ", k,
                    ": directory/cache disagreement or incomplete "
                    "table");
    }
    ++rowHits_[static_cast<std::size_t>(row - table_.rows.data())];

    ExecCtx ctx;
    ctx.proc = k;
    ctx.addr = a;
    ctx.write = write;
    ctx.wval = wval;
    ctx.line = line;

    for (const TableAction &act : row->actions) {
        switch (act.op) {
          case ActionOp::Bump:
            switch (static_cast<TableCounter>(act.arg)) {
              case TableCounter::Requests:
                ++counts_.requests;
                break;
              case TableCounter::MRequests:
                ++counts_.mrequests;
                break;
              case TableCounter::Ejects:
                ++counts_.ejects;
                break;
              case TableCounter::NetMessages:
                ++counts_.netMessages;
                break;
              case TableCounter::DataTransfers:
                ++counts_.dataTransfers;
                break;
              case TableCounter::Invalidations:
                ++counts_.invalidations;
                break;
              case TableCounter::Purges:
                ++counts_.purges;
                break;
            }
            break;

          case ActionOp::ReadMem:
            ctx.data = mem_.read(ctx.addr);
            ++counts_.memReads;
            break;

          case ActionOp::WritebackLine:
            DIR2B_ASSERT(ctx.line, "WritebackLine with no line");
            ++counts_.dataTransfers;
            ++counts_.netMessages;
            mem_.write(ctx.addr, ctx.line->value);
            ++counts_.memWrites;
            ++counts_.writebacks;
            break;

          case ActionOp::FillLine:
            ctx.line = &caches_[k].fill(
                ctx.addr, static_cast<LineState>(act.arg),
                ctx.write ? ctx.wval : ctx.data);
            break;

          case ActionOp::SetLine:
            DIR2B_ASSERT(ctx.line, "SetLine with no line");
            ctx.line->state = static_cast<LineState>(act.arg);
            break;

          case ActionOp::WriteLine:
            DIR2B_ASSERT(ctx.line, "WriteLine with no line");
            ctx.line->value = ctx.wval;
            break;

          case ActionOp::DropLine:
            caches_[k].invalidate(ctx.addr);
            ctx.line = nullptr;
            break;

          case ActionOp::SetDirState:
            dirFor(ctx.addr).set(ctx.addr,
                                 static_cast<GlobalState>(act.arg));
            ++counts_.setstates;
            break;

          case ActionOp::SendBroadInv: {
            ++counts_.broadcasts;
            for (ProcId i = 0; i < cfg_.numProcs; ++i) {
                if (i == k)
                    continue;
                ++counts_.broadcastCmds;
                ++counts_.netMessages;
                CacheLine *l = caches_[i].lookup(ctx.addr, false);
                deliverCmd(i, l != nullptr);
                if (l) {
                    DIR2B_ASSERT(!l->dirty(),
                                 "BROADINV found a dirty copy of ",
                                 ctx.addr, " in cache ", i,
                                 " while the directory said clean");
                    caches_[i].invalidate(ctx.addr);
                    ++counts_.invalidations;
                }
            }
            break;
          }

          case ActionOp::SendBroadQueryRead:
          case ActionOp::SendBroadQueryWrite: {
            const bool isRead = act.op == ActionOp::SendBroadQueryRead;
            ++counts_.broadcasts;
            bool found = false;
            for (ProcId i = 0; i < cfg_.numProcs; ++i) {
                if (i == k)
                    continue;
                ++counts_.broadcastCmds;
                ++counts_.netMessages;
                CacheLine *l = caches_[i].lookup(ctx.addr, false);
                const bool owner = l && l->dirty();
                deliverCmd(i, owner);
                if (!owner)
                    continue;
                DIR2B_ASSERT(!found, "two owners of modified block ",
                             ctx.addr);
                found = true;
                ctx.data = l->value;
                ++counts_.purges;
                ++counts_.dataTransfers;
                ++counts_.netMessages;
                mem_.write(ctx.addr, ctx.data);
                ++counts_.memWrites;
                ++counts_.writebacks;
                if (isRead) {
                    l->state = LineState::Shared;
                } else {
                    caches_[i].invalidate(ctx.addr);
                    ++counts_.invalidations;
                }
            }
            DIR2B_ASSERT(found, "BROADQUERY(", ctx.addr,
                         ") found no owner: directory/cache "
                         "disagreement");
            break;
          }

          case ActionOp::SendInvHolders: {
            for (ProcId p = 0; p < cfg_.numProcs; ++p) {
                if (p == k)
                    continue;
                CacheLine *l = caches_[p].lookup(ctx.addr, false);
                if (!l || l->dirty())
                    continue;
                ++counts_.directedCmds;
                ++counts_.netMessages;
                deliverCmd(p, true);
                caches_[p].invalidate(ctx.addr);
                ++counts_.invalidations;
            }
            break;
          }

          case ActionOp::SendPurgeRead:
          case ActionOp::SendPurgeWrite: {
            const bool isRead = act.op == ActionOp::SendPurgeRead;
            const ProcId owner = remoteOwner(ctx.addr, k);
            DIR2B_ASSERT(owner != invalidProc, "PURGE(", ctx.addr,
                         ") found no owner");
            CacheLine *l = caches_[owner].lookup(ctx.addr, false);
            DIR2B_ASSERT(l && l->dirty(), "owner of ", ctx.addr,
                         " has no dirty copy");
            ++counts_.directedCmds;
            ++counts_.netMessages;
            deliverCmd(owner, true);
            ++counts_.purges;
            ctx.data = l->value;
            ++counts_.dataTransfers;
            ++counts_.netMessages;
            mem_.write(ctx.addr, ctx.data);
            ++counts_.memWrites;
            ++counts_.writebacks;
            if (isRead) {
                l->state = LineState::Shared;
            } else {
                caches_[owner].invalidate(ctx.addr);
                ++counts_.invalidations;
            }
            break;
          }

          case ActionOp::SendDowngradeOwner: {
            const ProcId owner = remoteOwner(ctx.addr, k);
            DIR2B_ASSERT(owner != invalidProc, "downgrade of ",
                         ctx.addr, " found no owner");
            CacheLine *l = caches_[owner].lookup(ctx.addr, false);
            ++counts_.directedCmds;
            ++counts_.netMessages;
            deliverCmd(owner, true);
            ctx.data = l->value;
            // Cache-to-cache supply: no write-back, memory stays as
            // it is — the point of the Owned state.
            ++counts_.cacheTransfers;
            ++counts_.dataTransfers;
            ++counts_.netMessages;
            l->state = l->dirty() ? LineState::Owned
                                  : LineState::Shared;
            break;
          }

          case ActionOp::SendFetchInvOwner: {
            const ProcId owner = remoteOwner(ctx.addr, k);
            DIR2B_ASSERT(owner != invalidProc, "fetch-inv of ",
                         ctx.addr, " found no owner");
            CacheLine *l = caches_[owner].lookup(ctx.addr, false);
            ++counts_.directedCmds;
            ++counts_.netMessages;
            deliverCmd(owner, true);
            ++counts_.purges;
            ctx.data = l->value;
            ++counts_.cacheTransfers;
            ++counts_.dataTransfers;
            ++counts_.netMessages;
            caches_[owner].invalidate(ctx.addr);
            ++counts_.invalidations;
            break;
          }

          case ActionOp::Stall:
            ctx.stalled = true;
            break;
        }
        if (ctx.stalled)
            break;
    }

    if (ctx.stalled) {
        DIR2B_ASSERT(depth < 8, "table '", table_.name,
                     "' stalled 8 times on block ", a,
                     " from cache ", k, ": transition livelock");
        CacheLine *retryLine = nullptr;
        const EventClass retry =
            classify(k, a, write, false, retryLine);
        return dispatch(k, a, write, wval, retry, retryLine,
                        depth + 1);
    }

    if (write)
        return wval;
    if (ev == EventClass::ReadHit) {
        DIR2B_ASSERT(ctx.line, "read hit lost its line");
        return ctx.line->value;
    }
    return ctx.data;
}

void
TableProtocol::flushCache(ProcId p)
{
    DIR2B_ASSERT(table_.handlesEvict(), "table '", table_.name,
                 "' has no eviction rows: flush unsupported");
    // Collect first: eviction mutates the array under iteration.
    std::vector<CacheLine> lines;
    caches_[p].forEachValid(
        [&](const CacheLine &l) { lines.push_back(l); });
    for (CacheLine &l : lines)
        evictLine(p, l);
}

void
TableProtocol::checkInvariants() const
{
    // Census every cached block, then check the per-state bounds the
    // table declares.  This is the generic form of the hand-written
    // schemes' directory-vs-cache cross-checks.
    std::unordered_map<Addr, std::pair<std::size_t, std::size_t>> seen;
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        caches_[p].forEachValid([&](const CacheLine &l) {
            auto &[holders, modified] = seen[l.addr];
            ++holders;
            if (l.dirty())
                ++modified;
        });
    }
    for (const auto &[a, hm] : seen) {
        const auto [holders, modified] = hm;
        const std::uint8_t st = dirStateOf(a);
        DIR2B_ASSERT(st < table_.stateNames.size(),
                     "block ", a, " has directory state ",
                     static_cast<unsigned>(st), " outside table '",
                     table_.name, "'");
        const StateConstraint &c = table_.constraints[st];
        DIR2B_ASSERT(holders >= c.minHolders &&
                         holders <= c.maxHolders,
                     "block ", a, " is ", stateName(table_, st),
                     " but has ", holders, " holder(s)");
        DIR2B_ASSERT(modified >= c.minModified &&
                         modified <= c.maxModified,
                     "block ", a, " is ", stateName(table_, st),
                     " but has ", modified, " modified cop(y/ies)");
    }
}

} // namespace dir2b
