/**
 * @file
 * Cache directory duplication (Tang 1976; paper §2.4.1).
 *
 * A *central* memory controller holds a duplicate of every cache's tag
 * directory.  The information content equals the full map — the holder
 * set is always exactly known, so commands are directed and never
 * useless — but the organisation differs in two measurable ways:
 *
 *  1. every global-state query must search all n duplicate directories
 *     (counted as dirSearches; in hardware this is the processing-power
 *     problem the paper highlights);
 *  2. every cache directory change (fill, invalidation, eviction,
 *     state change) must be transmitted to the central controller to
 *     keep its duplicates current (counted as dirUpdates; this is the
 *     controller-bottleneck traffic).
 *
 * In the timed tier the central controller also serialises *all*
 * requests (no per-module distribution is possible), which is the
 * paper's expansibility objection.
 */

#ifndef DIR2B_PROTO_DUP_DIR_HH
#define DIR2B_PROTO_DUP_DIR_HH

#include "proto/full_map.hh"

namespace dir2b
{

/** Functional-tier Tang duplicated-directory protocol. */
class DupDirProtocol : public FullMapProtocol
{
  public:
    explicit DupDirProtocol(const ProtoConfig &cfg)
        : FullMapProtocol("dup_dir", cfg)
    {}

    /**
     * The duplicates replicate each cache's tag store at the
     * controller.  Per memory block the map costs nothing — the cost
     * scales with total cache capacity instead — so we report the
     * equivalent: one presence bit per cache plus the modified bit,
     * which is what the duplicates encode per cached block.
     */
    unsigned
    directoryBitsPerBlock() const override
    {
        return static_cast<unsigned>(cfg_.numProcs) + 1;
    }

  protected:
    void
    onDirectoryTouch(Addr) override
    {
        // Every consultation scans all n duplicate directories.
        counts_.dirSearches += cfg_.numProcs;
    }

    void
    onCacheChange(ProcId) override
    {
        // The change is mirrored into the central duplicate.
        ++counts_.dirUpdates;
        ++counts_.netMessages;
    }
};

} // namespace dir2b

#endif // DIR2B_PROTO_DUP_DIR_HH
