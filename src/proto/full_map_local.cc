#include "proto/full_map_local.hh"

#include "util/logging.hh"

namespace dir2b
{

FullMapLocalProtocol::FullMapLocalProtocol(const ProtoConfig &cfg)
    : Protocol("full_map_local", cfg)
{}

LocalMapEntry &
FullMapLocalProtocol::entryFor(Addr a)
{
    return map_.tryEmplace(a, cfg_.numProcs).first->second;
}

Value
FullMapLocalProtocol::querySoleHolder(Addr a, LocalMapEntry &e, RW rw)
{
    DIR2B_ASSERT(e.present.count() == 1, "querySoleHolder with ",
                 e.present.count(), " holders");
    const auto owner = static_cast<ProcId>(e.present.findFirst());
    CacheLine *l = caches_[owner].lookup(a, false);
    DIR2B_ASSERT(l, "sole holder of ", a, " has no copy");

    // Directed query; always useful (a real copy is there).
    ++counts_.directedCmds;
    ++counts_.netMessages;
    deliverCmd(owner, true);

    Value data = l->value;
    if (l->dirty()) {
        // The silent upgrade materialises here: write back now.
        ++counts_.purges;
        ++counts_.dataTransfers;
        ++counts_.netMessages;
        mem_.write(a, data);
        ++counts_.memWrites;
        ++counts_.writebacks;
    } else {
        // Clean: memory is current; owner just acknowledges.
        data = mem_.read(a);
        ++counts_.memReads;
    }
    e.modified = false;

    if (rw == RW::Read) {
        l->state = LineState::Shared;
    } else {
        caches_[owner].invalidate(a);
        ++counts_.invalidations;
        e.present.reset(owner);
    }
    return data;
}

void
FullMapLocalProtocol::invalidateHolders(Addr a, LocalMapEntry &e,
                                        ProcId except)
{
    for (std::size_t i = e.present.findFirst(); i < e.present.size();
         i = e.present.findNext(i)) {
        const auto p = static_cast<ProcId>(i);
        if (p == except)
            continue;
        ++counts_.directedCmds;
        ++counts_.netMessages;
        deliverCmd(p, true);
        const bool had = caches_[p].invalidate(a);
        DIR2B_ASSERT(had, "INVALIDATE(", a, ",", p,
                     ") sent to a cache without a copy");
        ++counts_.invalidations;
        e.present.reset(i);
    }
}

void
FullMapLocalProtocol::replaceVictim(ProcId k, Addr a)
{
    CacheLine &victim = caches_[k].victimFor(a);
    if (!victim.valid())
        return;

    const Addr olda = victim.addr;
    LocalMapEntry &e = entryFor(olda);
    ++counts_.ejects;
    ++counts_.netMessages;
    DIR2B_ASSERT(e.present.test(k), "eject of unmapped block ", olda);

    if (victim.dirty()) {
        ++counts_.dataTransfers;
        ++counts_.netMessages;
        mem_.write(olda, victim.value);
        ++counts_.memWrites;
        ++counts_.writebacks;
        e.modified = false;
    }
    e.present.reset(k);
    ++counts_.setstates;
    caches_[k].invalidate(olda);
}

Value
FullMapLocalProtocol::doAccess(ProcId k, Addr a, bool write, Value wval)
{
    CacheArray &c = caches_[k];

    if (CacheLine *l = c.lookup(a)) {
        if (!write) {
            ++counts_.readHits;
            return l->value;
        }
        if (l->dirty()) {
            ++counts_.writeHits;
            l->value = wval;
            return wval;
        }
        if (l->state == LineState::Exclusive) {
            // The scheme's payoff: write proceeds with no global
            // transaction at all.
            ++counts_.writeHits;
            ++counts_.writeHitsClean;
            ++silentUpgrades_;
            l->state = LineState::Modified;
            l->value = wval;
            return wval;
        }

        // Shared clean copy: full-map style MREQUEST.
        ++counts_.writeHits;
        ++counts_.writeHitsClean;
        ++counts_.mrequests;
        counts_.netMessages += 2;
        LocalMapEntry &e = entryFor(a);
        invalidateHolders(a, e, k);
        e.modified = true;
        ++counts_.setstates;
        l->state = LineState::Modified;
        l->value = wval;
        return wval;
    }

    if (write)
        ++counts_.writeMisses;
    else
        ++counts_.readMisses;
    replaceVictim(k, a);
    ++counts_.requests;
    ++counts_.netMessages;

    LocalMapEntry &e = entryFor(a);
    Value v = 0;

    if (!write) {
        if (e.present.none()) {
            // Absent: grant exclusive-clean so later writes are free.
            v = mem_.read(a);
            ++counts_.memReads;
            e.present.set(k);
            ++counts_.setstates;
            ++counts_.dataTransfers;
            ++counts_.netMessages;
            c.fill(a, LineState::Exclusive, v);
            return v;
        }
        if (e.present.count() == 1) {
            // Sole holder: may have silently modified; query it.
            v = querySoleHolder(a, e, RW::Read);
        } else {
            v = mem_.read(a);
            ++counts_.memReads;
        }
        e.present.set(k);
        ++counts_.setstates;
        ++counts_.dataTransfers;
        ++counts_.netMessages;
        c.fill(a, LineState::Shared, v);
        // Downgrade any former exclusive holder's local state: the
        // querySoleHolder path already set it Shared; multi-holder
        // blocks are Shared by construction.
        return v;
    }

    if (e.present.count() == 1) {
        v = querySoleHolder(a, e, RW::Write);
    } else {
        invalidateHolders(a, e, k);
        v = mem_.read(a);
        ++counts_.memReads;
    }
    e.present.set(k);
    e.modified = true;
    ++counts_.setstates;
    ++counts_.dataTransfers;
    ++counts_.netMessages;
    c.fill(a, LineState::Modified, wval);
    return wval;
}

void
FullMapLocalProtocol::checkInvariants() const
{
    for (const auto &[a, e] : map_) {
        std::size_t copies = 0;
        std::size_t dirty = 0;
        for (std::size_t i = e.present.findFirst(); i < e.present.size();
             i = e.present.findNext(i)) {
            const CacheLine *l = caches_[i].peek(a);
            DIR2B_ASSERT(l, "presence bit set for cache ", i, " block ",
                         a, " but no copy exists");
            ++copies;
            if (l->dirty())
                ++dirty;
            if (copies > 1) {
                DIR2B_ASSERT(l->state == LineState::Shared,
                             "multi-holder block ", a,
                             " with non-shared copy in cache ", i);
            }
        }
        DIR2B_ASSERT(dirty <= 1, "block ", a, " dirty in ", dirty,
                     " caches");
        // A dirty or exclusive copy is only legal for a sole holder.
        if (dirty == 1)
            DIR2B_ASSERT(copies == 1, "dirty block ", a, " with ",
                         copies, " copies");
        // e.modified may under-report (silent upgrades) but must never
        // over-report.
        if (e.modified)
            DIR2B_ASSERT(dirty == 1 && copies == 1,
                         "directory claims modified for block ", a,
                         " but caches disagree");
    }
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        caches_[p].forEachValid([&](const CacheLine &l) {
            auto it = map_.find(l.addr);
            DIR2B_ASSERT(it != map_.end() && it->second.present.test(p),
                         "cache ", p, " holds ", l.addr,
                         " without a presence bit");
        });
    }
}

} // namespace dir2b
