#include "proto/table_defs.hh"

namespace dir2b
{
namespace
{

// Row-building shorthand: tables should read like the paper's case
// analysis, not like C++.
using E = EventClass;
using G = TableGuard;
using C = TableCounter;

TableAction
bump(C c)
{
    return {ActionOp::Bump, static_cast<std::uint8_t>(c)};
}

TableAction
act(ActionOp op)
{
    return {op, 0};
}

TableAction
fill(LineState s)
{
    return {ActionOp::FillLine, static_cast<std::uint8_t>(s)};
}

TableAction
setLine(LineState s)
{
    return {ActionOp::SetLine, static_cast<std::uint8_t>(s)};
}

TableAction
setDir(std::uint8_t s)
{
    return {ActionOp::SetDirState, s};
}

TableRow
row(std::uint8_t state, E ev, std::vector<TableAction> actions,
    std::uint8_t next)
{
    return {state, ev, G::Always, std::move(actions), next};
}

TableRow
rowIf(std::uint8_t state, E ev, G guard,
      std::vector<TableAction> actions, std::uint8_t next)
{
    return {state, ev, guard, std::move(actions), next};
}

/** Exactly-one-holder, clean. */
constexpr StateConstraint one{1, 1, 0, 0};
/** Any number of clean holders (broadcast schemes cannot count down). */
constexpr StateConstraint anyClean{0, SIZE_MAX, 0, 0};
/** At least one holder, all clean. */
constexpr StateConstraint someClean{1, SIZE_MAX, 0, 0};
/** No holders at all. */
constexpr StateConstraint none{0, 0, 0, 0};
/** Exactly one holder, modified. */
constexpr StateConstraint oneDirty{1, 1, 1, 1};

TransitionTable
buildTwoBit()
{
    // States are the §3.1 global states, indices = GlobalState values.
    enum : std::uint8_t { A, P1, PS, PM };
    TransitionTable t;
    t.name = "two_bit_table";
    t.stateNames = {"Absent", "Present1", "Present*", "PresentM"};
    t.constraints = {none, one, anyClean, oneDirty};
    t.dirBitsFixed = 2;
    t.dirBitsPerProc = 0;
    t.rows = {
        // Hits never touch the directory.
        row(P1, E::ReadHit, {}, P1),
        row(PS, E::ReadHit, {}, PS),
        row(PM, E::ReadHit, {}, PM),
        row(PM, E::WriteHitDirty, {act(ActionOp::WriteLine)}, PM),

        // §3.2.4 write hit on a clean copy: MREQUEST + MGRANTED;
        // Present1 grants without a broadcast (the payoff of keeping
        // Present1 distinct), Present* must BROADINV first.
        row(P1, E::WriteHitClean,
            {bump(C::MRequests), bump(C::NetMessages),
             bump(C::NetMessages), setDir(PM),
             setLine(LineState::Modified), act(ActionOp::WriteLine)},
            PM),
        row(PS, E::WriteHitClean,
            {bump(C::MRequests), bump(C::NetMessages),
             bump(C::NetMessages), act(ActionOp::SendBroadInv),
             setDir(PM), setLine(LineState::Modified),
             act(ActionOp::WriteLine)},
            PM),

        // §3.2.2 read miss: REQUEST, then memory or BROADQUERY.
        row(A, E::ReadMiss,
            {bump(C::Requests), bump(C::NetMessages),
             act(ActionOp::ReadMem), setDir(P1),
             bump(C::DataTransfers), bump(C::NetMessages),
             fill(LineState::Shared)},
            P1),
        row(P1, E::ReadMiss,
            {bump(C::Requests), bump(C::NetMessages),
             act(ActionOp::ReadMem), setDir(PS),
             bump(C::DataTransfers), bump(C::NetMessages),
             fill(LineState::Shared)},
            PS),
        row(PS, E::ReadMiss,
            {bump(C::Requests), bump(C::NetMessages),
             act(ActionOp::ReadMem), setDir(PS),
             bump(C::DataTransfers), bump(C::NetMessages),
             fill(LineState::Shared)},
            PS),
        row(PM, E::ReadMiss,
            {bump(C::Requests), bump(C::NetMessages),
             act(ActionOp::SendBroadQueryRead), setDir(PS),
             bump(C::DataTransfers), bump(C::NetMessages),
             fill(LineState::Shared)},
            PS),

        // §3.2.3 write miss.
        row(A, E::WriteMiss,
            {bump(C::Requests), bump(C::NetMessages),
             act(ActionOp::ReadMem), setDir(PM),
             bump(C::DataTransfers), bump(C::NetMessages),
             fill(LineState::Modified)},
            PM),
        row(P1, E::WriteMiss,
            {bump(C::Requests), bump(C::NetMessages),
             act(ActionOp::SendBroadInv), act(ActionOp::ReadMem),
             setDir(PM), bump(C::DataTransfers),
             bump(C::NetMessages), fill(LineState::Modified)},
            PM),
        row(PS, E::WriteMiss,
            {bump(C::Requests), bump(C::NetMessages),
             act(ActionOp::SendBroadInv), act(ActionOp::ReadMem),
             setDir(PM), bump(C::DataTransfers),
             bump(C::NetMessages), fill(LineState::Modified)},
            PM),
        row(PM, E::WriteMiss,
            {bump(C::Requests), bump(C::NetMessages),
             act(ActionOp::SendBroadQueryWrite), setDir(PM),
             bump(C::DataTransfers), bump(C::NetMessages),
             fill(LineState::Modified)},
            PM),

        // §3.2.1 replacement: only Present1 can be reclaimed on a
        // clean eject (Present* cannot count down, footnote 2).
        row(P1, E::EvictClean,
            {bump(C::Ejects), bump(C::NetMessages), setDir(A),
             act(ActionOp::DropLine)},
            A),
        row(PS, E::EvictClean,
            {bump(C::Ejects), bump(C::NetMessages),
             act(ActionOp::DropLine)},
            PS),
        row(PM, E::EvictDirty,
            {bump(C::Ejects), bump(C::NetMessages),
             act(ActionOp::WritebackLine), setDir(A),
             act(ActionOp::DropLine)},
            A),
    };
    return t;
}

TransitionTable
buildFullMap()
{
    // The n+1-bit map's 2-bit summary: presence bits are modelled by
    // the cache arrays themselves (SendInvHolders/SendPurge* derive
    // the exact holder set); dirBitsPerProc reports the true cost.
    enum : std::uint8_t { U, S, M };
    TransitionTable t;
    t.name = "full_map_table";
    t.stateNames = {"Uncached", "Shared", "Modified"};
    t.constraints = {none, someClean, oneDirty};
    t.dirBitsFixed = 1;   // the modified bit
    t.dirBitsPerProc = 1; // one presence bit per cache
    t.rows = {
        row(S, E::ReadHit, {}, S),
        row(M, E::ReadHit, {}, M),
        row(M, E::WriteHitDirty, {act(ActionOp::WriteLine)}, M),

        // Write hit on a clean copy: directed INVALIDATEs to the
        // exactly-known other holders, no broadcast ever.
        row(S, E::WriteHitClean,
            {bump(C::MRequests), bump(C::NetMessages),
             bump(C::NetMessages), act(ActionOp::SendInvHolders),
             setDir(M), setLine(LineState::Modified),
             act(ActionOp::WriteLine)},
            M),

        row(U, E::ReadMiss,
            {bump(C::Requests), bump(C::NetMessages),
             act(ActionOp::ReadMem), setDir(S),
             bump(C::DataTransfers), bump(C::NetMessages),
             fill(LineState::Shared)},
            S),
        row(S, E::ReadMiss,
            {bump(C::Requests), bump(C::NetMessages),
             act(ActionOp::ReadMem), setDir(S),
             bump(C::DataTransfers), bump(C::NetMessages),
             fill(LineState::Shared)},
            S),
        row(M, E::ReadMiss,
            {bump(C::Requests), bump(C::NetMessages),
             act(ActionOp::SendPurgeRead), setDir(S),
             bump(C::DataTransfers), bump(C::NetMessages),
             fill(LineState::Shared)},
            S),

        row(U, E::WriteMiss,
            {bump(C::Requests), bump(C::NetMessages),
             act(ActionOp::ReadMem), setDir(M),
             bump(C::DataTransfers), bump(C::NetMessages),
             fill(LineState::Modified)},
            M),
        row(S, E::WriteMiss,
            {bump(C::Requests), bump(C::NetMessages),
             act(ActionOp::SendInvHolders), act(ActionOp::ReadMem),
             setDir(M), bump(C::DataTransfers),
             bump(C::NetMessages), fill(LineState::Modified)},
            M),
        row(M, E::WriteMiss,
            {bump(C::Requests), bump(C::NetMessages),
             act(ActionOp::SendPurgeWrite), setDir(M),
             bump(C::DataTransfers), bump(C::NetMessages),
             fill(LineState::Modified)},
            M),

        // Replacement: the map tracks every holder exactly, so each
        // eject updates the presence bits (one SETSTATE, always).
        rowIf(S, E::EvictClean, G::OtherHoldersNone,
              {bump(C::Ejects), bump(C::NetMessages), setDir(U),
               act(ActionOp::DropLine)},
              U),
        rowIf(S, E::EvictClean, G::Always,
              {bump(C::Ejects), bump(C::NetMessages), setDir(S),
               act(ActionOp::DropLine)},
              S),
        row(M, E::EvictDirty,
            {bump(C::Ejects), bump(C::NetMessages),
             act(ActionOp::WritebackLine), setDir(U),
             act(ActionOp::DropLine)},
            U),
    };
    return t;
}

TransitionTable
buildMoesi()
{
    // Directory MOESI: E and M share one directory state (a silent
    // E->M upgrade is invisible to the home node), the fourth state is
    // Owned — a dirty owner coexisting with clean sharers, supplying
    // the block cache-to-cache with no write-back on read misses.
    // Four states, so the 2-bit economy still holds at the directory;
    // the owner/sharer distinction lives in the caches' line states.
    enum : std::uint8_t { I, S, EM, O };
    TransitionTable t;
    t.name = "moesi";
    t.stateNames = {"Invalid", "Shared", "ExclMod", "Owned"};
    t.constraints = {none, someClean, {1, 1, 0, 1}, {1, SIZE_MAX, 1, 1}};
    t.dirBitsFixed = 2;   // four directory states
    t.dirBitsPerProc = 1; // presence bits for directed commands
    t.rows = {
        row(S, E::ReadHit, {}, S),
        row(EM, E::ReadHit, {}, EM),
        row(O, E::ReadHit, {}, O),

        row(EM, E::WriteHitDirty, {act(ActionOp::WriteLine)}, EM),
        // The owner writes again: reclaim exclusivity from the
        // sharers (directed), silently when none remain.
        rowIf(O, E::WriteHitDirty, G::OtherHoldersSome,
              {bump(C::MRequests), bump(C::NetMessages),
               bump(C::NetMessages), act(ActionOp::SendInvHolders),
               setDir(EM), setLine(LineState::Modified),
               act(ActionOp::WriteLine)},
              EM),
        rowIf(O, E::WriteHitDirty, G::Always,
              {setDir(EM), setLine(LineState::Modified),
               act(ActionOp::WriteLine)},
              EM),

        // Silent E->M upgrade: the MOESI payoff for Exclusive.
        row(EM, E::WriteHitClean,
            {setLine(LineState::Modified), act(ActionOp::WriteLine)},
            EM),
        rowIf(S, E::WriteHitClean, G::OtherHoldersSome,
              {bump(C::MRequests), bump(C::NetMessages),
               bump(C::NetMessages), act(ActionOp::SendInvHolders),
               setDir(EM), setLine(LineState::Modified),
               act(ActionOp::WriteLine)},
              EM),
        rowIf(S, E::WriteHitClean, G::Always,
              {bump(C::MRequests), bump(C::NetMessages),
               bump(C::NetMessages), setDir(EM),
               setLine(LineState::Modified), act(ActionOp::WriteLine)},
              EM),
        // A sharer writes while a dirty owner exists: fetch-inv the
        // owner (our clean copy already holds the same data — the
        // invariant the checker enforces), invalidate the rest.
        row(O, E::WriteHitClean,
            {bump(C::MRequests), bump(C::NetMessages),
             bump(C::NetMessages), act(ActionOp::SendFetchInvOwner),
             act(ActionOp::SendInvHolders), setDir(EM),
             setLine(LineState::Modified), act(ActionOp::WriteLine)},
            EM),

        // Read misses: first reader gets Exclusive; a dirty owner
        // supplies cache-to-cache and becomes Owned (no write-back).
        row(I, E::ReadMiss,
            {bump(C::Requests), bump(C::NetMessages),
             act(ActionOp::ReadMem), setDir(EM),
             bump(C::DataTransfers), bump(C::NetMessages),
             fill(LineState::Exclusive)},
            EM),
        row(S, E::ReadMiss,
            {bump(C::Requests), bump(C::NetMessages),
             act(ActionOp::ReadMem), setDir(S),
             bump(C::DataTransfers), bump(C::NetMessages),
             fill(LineState::Shared)},
            S),
        rowIf(EM, E::ReadMiss, G::OwnerDirty,
              {bump(C::Requests), bump(C::NetMessages),
               act(ActionOp::SendDowngradeOwner), setDir(O),
               bump(C::DataTransfers), bump(C::NetMessages),
               fill(LineState::Shared)},
              O),
        rowIf(EM, E::ReadMiss, G::Always,
              {bump(C::Requests), bump(C::NetMessages),
               act(ActionOp::SendDowngradeOwner), setDir(S),
               bump(C::DataTransfers), bump(C::NetMessages),
               fill(LineState::Shared)},
              S),
        row(O, E::ReadMiss,
            {bump(C::Requests), bump(C::NetMessages),
             act(ActionOp::SendDowngradeOwner), setDir(O),
             bump(C::DataTransfers), bump(C::NetMessages),
             fill(LineState::Shared)},
            O),

        // Write misses: fetch-inv any owner cache-to-cache, directed
        // invalidates for sharers, never a broadcast.
        row(I, E::WriteMiss,
            {bump(C::Requests), bump(C::NetMessages),
             act(ActionOp::ReadMem), setDir(EM),
             bump(C::DataTransfers), bump(C::NetMessages),
             fill(LineState::Modified)},
            EM),
        row(S, E::WriteMiss,
            {bump(C::Requests), bump(C::NetMessages),
             act(ActionOp::SendInvHolders), act(ActionOp::ReadMem),
             setDir(EM), bump(C::DataTransfers),
             bump(C::NetMessages), fill(LineState::Modified)},
            EM),
        row(EM, E::WriteMiss,
            {bump(C::Requests), bump(C::NetMessages),
             act(ActionOp::SendFetchInvOwner), setDir(EM),
             bump(C::DataTransfers), bump(C::NetMessages),
             fill(LineState::Modified)},
            EM),
        row(O, E::WriteMiss,
            {bump(C::Requests), bump(C::NetMessages),
             act(ActionOp::SendFetchInvOwner),
             act(ActionOp::SendInvHolders), setDir(EM),
             bump(C::DataTransfers), bump(C::NetMessages),
             fill(LineState::Modified)},
            EM),

        // Replacement.  An evicting owner with live sharers writes
        // back and leaves them Shared (memory is current again).
        rowIf(S, E::EvictClean, G::OtherHoldersNone,
              {bump(C::Ejects), bump(C::NetMessages), setDir(I),
               act(ActionOp::DropLine)},
              I),
        rowIf(S, E::EvictClean, G::Always,
              {bump(C::Ejects), bump(C::NetMessages),
               act(ActionOp::DropLine)},
              S),
        row(EM, E::EvictClean,
            {bump(C::Ejects), bump(C::NetMessages), setDir(I),
             act(ActionOp::DropLine)},
            I),
        row(O, E::EvictClean,
            {bump(C::Ejects), bump(C::NetMessages),
             act(ActionOp::DropLine)},
            O),
        row(EM, E::EvictDirty,
            {bump(C::Ejects), bump(C::NetMessages),
             act(ActionOp::WritebackLine), setDir(I),
             act(ActionOp::DropLine)},
            I),
        rowIf(O, E::EvictDirty, G::OtherHoldersNone,
              {bump(C::Ejects), bump(C::NetMessages),
               act(ActionOp::WritebackLine), setDir(I),
               act(ActionOp::DropLine)},
              I),
        rowIf(O, E::EvictDirty, G::Always,
              {bump(C::Ejects), bump(C::NetMessages),
               act(ActionOp::WritebackLine), setDir(S),
               act(ActionOp::DropLine)},
              S),
    };
    return t;
}

} // namespace

const TransitionTable &
twoBitTable()
{
    static const TransitionTable t = buildTwoBit();
    return t;
}

const TransitionTable &
fullMapTable()
{
    static const TransitionTable t = buildFullMap();
    return t;
}

const TransitionTable &
moesiTable()
{
    static const TransitionTable t = buildMoesi();
    return t;
}

} // namespace dir2b
