#include "proto/illinois.hh"

#include "util/logging.hh"

namespace dir2b
{

void
IllinoisProtocol::replaceVictim(ProcId k, Addr a)
{
    CacheLine &victim = caches_[k].victimFor(a);
    if (!victim.valid())
        return;
    if (victim.dirty()) {
        mem_.write(victim.addr, victim.value);
        ++counts_.memWrites;
        ++counts_.writebacks;
        ++counts_.dataTransfers;
        ++counts_.netMessages;
    }
    caches_[k].invalidate(victim.addr);
}

Value
IllinoisProtocol::doAccess(ProcId k, Addr a, bool write, Value wval)
{
    CacheArray &c = caches_[k];
    CacheLine *l = c.lookup(a);

    if (!write) {
        if (l) {
            ++counts_.readHits;
            return l->value;
        }
        ++counts_.readMisses;
        replaceVictim(k, a);
        snoop();
        ++counts_.netMessages;

        // Prefer a cache supplier; a Modified owner writes back too.
        Value v = 0;
        bool supplied = false;
        for (ProcId i = 0; i < cfg_.numProcs && !supplied; ++i) {
            if (i == k)
                continue;
            CacheLine *r = caches_[i].lookup(a, false);
            if (!r)
                continue;
            supplied = true;
            v = r->value;
            ++counts_.stolenCycles;
            ++counts_.cacheTransfers;
            ++counts_.dataTransfers;
            ++counts_.netMessages;
            if (r->dirty()) {
                ++counts_.purges;
                mem_.write(a, v);
                ++counts_.memWrites;
                ++counts_.writebacks;
            }
            r->state = LineState::Shared;
        }
        // Any remaining holders also observe the read and downgrade.
        for (ProcId i = 0; i < cfg_.numProcs; ++i) {
            if (i == k)
                continue;
            if (CacheLine *r = caches_[i].lookup(a, false)) {
                if (r->state == LineState::Exclusive)
                    r->state = LineState::Shared;
            }
        }
        const bool exclusiveFill = !supplied;
        if (!supplied) {
            v = mem_.read(a);
            ++counts_.memReads;
        }
        ++counts_.dataTransfers;
        ++counts_.netMessages;
        c.fill(a, exclusiveFill ? LineState::Exclusive
                                : LineState::Shared, v);
        return v;
    }

    // Store.
    if (l) {
        switch (l->state) {
          case LineState::Modified:
            ++counts_.writeHits;
            l->value = wval;
            return wval;
          case LineState::Exclusive:
            // Silent upgrade: no bus transaction at all.
            ++counts_.writeHits;
            ++counts_.writeHitsClean;
            l->state = LineState::Modified;
            l->value = wval;
            return wval;
          case LineState::Shared: {
            // Bus invalidation.
            ++counts_.writeHits;
            ++counts_.writeHitsClean;
            snoop();
            ++counts_.netMessages;
            for (ProcId i = 0; i < cfg_.numProcs; ++i) {
                if (i == k)
                    continue;
                if (caches_[i].peek(a)) {
                    ++counts_.stolenCycles;
                    caches_[i].invalidate(a);
                    ++counts_.invalidations;
                }
            }
            l->state = LineState::Modified;
            l->value = wval;
            return wval;
          }
          default:
            DIR2B_PANIC("illinois line in impossible state ",
                        toString(l->state));
        }
    }

    // Write miss: read-for-ownership.
    ++counts_.writeMisses;
    replaceVictim(k, a);
    snoop();
    ++counts_.netMessages;
    bool supplied = false;
    for (ProcId i = 0; i < cfg_.numProcs; ++i) {
        if (i == k)
            continue;
        CacheLine *r = caches_[i].lookup(a, false);
        if (!r)
            continue;
        ++counts_.stolenCycles;
        if (!supplied) {
            supplied = true;
            ++counts_.cacheTransfers;
            ++counts_.dataTransfers;
            ++counts_.netMessages;
            if (r->dirty())
                ++counts_.purges;
            // Ownership transfers; no write-back is needed since the
            // requester immediately dirties the block.
        }
        caches_[i].invalidate(a);
        ++counts_.invalidations;
    }
    if (!supplied) {
        mem_.read(a);
        ++counts_.memReads;
    }
    ++counts_.dataTransfers;
    ++counts_.netMessages;
    c.fill(a, LineState::Modified, wval);
    return wval;
}

void
IllinoisProtocol::checkInvariants() const
{
    std::unordered_map<Addr, std::pair<unsigned, unsigned>> seen;
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        caches_[p].forEachValid([&](const CacheLine &l) {
            auto &[copies, exclusive] = seen[l.addr];
            ++copies;
            if (l.state == LineState::Modified ||
                l.state == LineState::Exclusive) {
                ++exclusive;
            }
            if (l.state == LineState::Exclusive) {
                DIR2B_ASSERT(l.value == mem_.peek(l.addr),
                             "Exclusive copy of ", l.addr,
                             " differs from memory");
            }
        });
    }
    for (const auto &[a, ce] : seen) {
        const auto [copies, exclusive] = ce;
        DIR2B_ASSERT(exclusive <= 1, "block ", a, " has ", exclusive,
                     " M/E owners");
        if (exclusive == 1)
            DIR2B_ASSERT(copies == 1, "M/E block ", a, " has ", copies,
                         " copies");
    }
}

} // namespace dir2b
