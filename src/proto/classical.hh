/**
 * @file
 * The classical broadcast solution (paper §2.3).
 *
 * Write-through caches; every store broadcasts the written block
 * address to all other caches, which invalidate a matching copy.  Main
 * memory is therefore always current and misses are always serviced
 * from memory.  Used by the dual-processor IBM 370/168 and 3033.
 *
 * The scheme needs no directory at all (directoryBitsPerBlock() == 0)
 * but pays with invalidation traffic proportional to the *entire*
 * write stream — the degradation the paper calls "the most damaging
 * drawback".  An optional per-cache BIAS memory absorbs repeated
 * invalidations for the same block (§2.3's Bean et al. reference).
 */

#ifndef DIR2B_PROTO_CLASSICAL_HH
#define DIR2B_PROTO_CLASSICAL_HH

#include <vector>

#include "cache/bias_filter.hh"
#include "proto/protocol.hh"

namespace dir2b
{

/** Functional-tier classical write-through broadcast protocol. */
class ClassicalProtocol : public Protocol
{
  public:
    explicit ClassicalProtocol(const ProtoConfig &cfg);

    unsigned directoryBitsPerBlock() const override { return 0; }

    void checkInvariants() const override;

    /** Invalidations absorbed by the BIAS filters. */
    std::uint64_t biasAbsorbed() const;

  protected:
    Value doAccess(ProcId k, Addr a, bool write, Value wval) override;

  private:
    std::vector<BiasFilter> bias_;
};

} // namespace dir2b

#endif // DIR2B_PROTO_CLASSICAL_HH
