#include "proto/protocol_factory.hh"

#include "core/two_bit_protocol.hh"
#include "core/two_bit_tb_protocol.hh"
#include "core/two_bit_wt_protocol.hh"
#include "proto/classical.hh"
#include "proto/dup_dir.hh"
#include "proto/full_map.hh"
#include "proto/full_map_local.hh"
#include "proto/illinois.hh"
#include "proto/software.hh"
#include "proto/table_defs.hh"
#include "proto/table_engine.hh"
#include "proto/write_once.hh"
#include "util/logging.hh"

namespace dir2b
{

std::unique_ptr<Protocol>
makeProtocol(const std::string &name, const ProtoConfig &cfg)
{
    if (name == "two_bit")
        return std::make_unique<TwoBitProtocol>(cfg);
    if (name == "two_bit_nop1") {
        ProtoConfig ablated = cfg;
        ablated.noPresent1 = true;
        return std::make_unique<TwoBitProtocol>("two_bit_nop1",
                                                ablated);
    }
    if (name == "two_bit_tb")
        return std::make_unique<TwoBitTbProtocol>(cfg);
    if (name == "two_bit_wt")
        return std::make_unique<TwoBitWtProtocol>(cfg);
    if (name == "full_map")
        return std::make_unique<FullMapProtocol>(cfg);
    if (name == "full_map_local")
        return std::make_unique<FullMapLocalProtocol>(cfg);
    if (name == "dup_dir")
        return std::make_unique<DupDirProtocol>(cfg);
    if (name == "classical")
        return std::make_unique<ClassicalProtocol>(cfg);
    if (name == "write_once")
        return std::make_unique<WriteOnceProtocol>(cfg);
    if (name == "illinois")
        return std::make_unique<IllinoisProtocol>(cfg);
    if (name == "software")
        return std::make_unique<SoftwareProtocol>(cfg);
    // Table-driven protocols: same interpreter, different data.
    if (name == "two_bit_table")
        return std::make_unique<TableProtocol>(twoBitTable(), cfg);
    if (name == "full_map_table")
        return std::make_unique<TableProtocol>(fullMapTable(), cfg);
    if (name == "moesi")
        return std::make_unique<TableProtocol>(moesiTable(), cfg);
    DIR2B_FATAL("unknown protocol '", name, "'");
}

std::vector<std::string>
protocolNames()
{
    return {"two_bit",    "two_bit_tb", "two_bit_wt",
            "full_map",   "full_map_local", "dup_dir",
            "classical",  "write_once", "illinois", "software",
            "two_bit_table", "full_map_table", "moesi"};
}

} // namespace dir2b
