#include "proto/software.hh"

#include "util/logging.hh"

namespace dir2b
{

SoftwareProtocol::SoftwareProtocol(const ProtoConfig &cfg)
    : Protocol("software", cfg)
{
    if (cfg.nonCacheableBase == invalidAddr)
        DIR2B_WARN("software protocol with no public region configured; "
                   "all blocks are treated as private");
}

Value
SoftwareProtocol::doAccess(ProcId k, Addr a, bool write, Value wval)
{
    if (isPublic(a)) {
        // Public data bypasses the cache entirely: always a memory
        // round trip, never any coherence command.
        ++counts_.netMessages;
        if (write) {
            ++counts_.writeMisses;
            mem_.write(a, wval);
            ++counts_.memWrites;
            ++counts_.wordWrites;
            return wval;
        }
        ++counts_.readMisses;
        ++counts_.memReads;
        return mem_.read(a);
    }

    // Private / read-only blocks: plain uniprocessor write-back cache.
    CacheArray &c = caches_[k];

    // Classification contract: once some processor has written a
    // private block, no *other* processor may touch it (else it was
    // really public and the compiler mis-tagged it).
    if (write) {
        auto [it, fresh] = privateWriter_.try_emplace(a, k);
        if (!fresh && it->second != k) {
            DIR2B_PANIC("software-scheme contract violated: private "
                        "block ", a, " written by processors ",
                        it->second, " and ", k);
        }
    } else if (auto it = privateWriter_.find(a);
               it != privateWriter_.end() && it->second != k) {
        DIR2B_PANIC("software-scheme contract violated: private block ",
                    a, " written by processor ", it->second,
                    " and read by processor ", k);
    }

    if (CacheLine *l = c.lookup(a)) {
        if (!write) {
            ++counts_.readHits;
            return l->value;
        }
        ++counts_.writeHits;
        l->state = LineState::Modified;
        l->value = wval;
        return wval;
    }

    if (write)
        ++counts_.writeMisses;
    else
        ++counts_.readMisses;

    CacheLine &victim = c.victimFor(a);
    if (victim.valid()) {
        if (victim.dirty()) {
            mem_.write(victim.addr, victim.value);
            ++counts_.memWrites;
            ++counts_.writebacks;
            ++counts_.dataTransfers;
            ++counts_.netMessages;
        }
        c.invalidate(victim.addr);
    }

    const Value v = mem_.read(a);
    ++counts_.memReads;
    ++counts_.dataTransfers;
    ++counts_.netMessages;
    c.fill(a, write ? LineState::Modified : LineState::Shared,
           write ? wval : v);
    return write ? wval : v;
}

void
SoftwareProtocol::checkInvariants() const
{
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        caches_[p].forEachValid([&](const CacheLine &l) {
            DIR2B_ASSERT(!isPublic(l.addr), "public block ", l.addr,
                         " found cached in cache ", p);
        });
    }
}

} // namespace dir2b
