/**
 * @file
 * Abstract interface of the functional (transaction-atomic) protocol
 * tier.
 *
 * Each Protocol owns the complete memory-system state of one
 * multiprocessor: n private caches, the backing store, and whatever
 * directory structure the scheme requires.  A call to access() performs
 * one LOAD or STORE *as an atomic transaction* — the serialisation the
 * paper's controller enforces ("only one request at a time will be
 * serviced", §3.2.5 option 1) — and accounts every command and data
 * transfer the scheme would put on the interconnection network.
 *
 * Timing-level concurrency (queued controllers, races between
 * MREQUESTs and BROADINVs, in-flight ejects) is the subject of the
 * timed tier in src/timed/; this tier is for exact command counting,
 * coherence oracles and protocol comparison, which is precisely the
 * setting of the paper's own evaluation model (§4.2).
 */

#ifndef DIR2B_PROTO_PROTOCOL_HH
#define DIR2B_PROTO_PROTOCOL_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/cache_array.hh"
#include "core/two_bit_directory.hh"
#include "memory/address_map.hh"
#include "memory/backing_store.hh"
#include "proto/counts.hh"
#include "util/types.hh"

namespace dir2b
{

/** Configuration shared by every functional protocol. */
struct ProtoConfig
{
    /** Number of processor-cache pairs (the paper's n). */
    ProcId numProcs = 4;
    /** Geometry of each private cache. */
    CacheGeometry cacheGeom{};
    /** Number of memory modules (directory is distributed over them). */
    ModuleId numModules = 4;
    /** Classical scheme: capacity of the per-cache BIAS filter. */
    std::size_t biasCapacity = 0;
    /** Classical scheme: write-allocate on write miss. */
    bool writeAllocate = false;
    /** Two-bit + translation buffer: TB entries per module (0 = none). */
    std::size_t tbCapacity = 0;
    /** Two-bit: duplicate each cache's tag directory so broadcast
     *  checks for absent blocks steal no cache cycle (§4.4 a). */
    bool snoopFilter = false;
    /** Two-bit ablation: drop the Present1 encoding (fold it into
     *  Present*), isolating the value of the paper's §3.2.1/§3.2.4
     *  claim that keeping Present1 "will reduce the number of
     *  broadcasts". */
    bool noPresent1 = false;
    /** Software scheme: blocks at or above this address are tagged
     *  shared-writeable and are never cached. */
    Addr nonCacheableBase = invalidAddr;
    /** Total directory RAM budget in bytes, split evenly across the
     *  modules; beyond it cold directory pages compress and spill to
     *  disk (util/tiered_store.hh).  0 = unlimited (no tiering).
     *  Results are bit-identical at any budget. */
    std::uint64_t dirRamBudget = 0;
};

/** Base class of every functional coherence protocol. */
class Protocol
{
  public:
    Protocol(std::string name, const ProtoConfig &cfg);
    virtual ~Protocol() = default;

    Protocol(const Protocol &) = delete;
    Protocol &operator=(const Protocol &) = delete;

    /**
     * Execute one memory reference as an atomic transaction.
     *
     * @param k     issuing processor
     * @param a     block address
     * @param write true for STORE, false for LOAD
     * @param wval  block contents after a STORE (ignored for LOAD)
     * @return the value read (LOAD) or now stored (STORE)
     */
    Value access(ProcId k, Addr a, bool write, Value wval = 0);

    /** Scheme name ("two_bit", "full_map", ...). */
    const std::string &name() const { return name_; }

    /** Cumulative event counts. */
    const AccessCounts &counts() const { return counts_; }

    /** Counts delta of the most recent access() call. */
    const AccessCounts &lastDelta() const { return lastDelta_; }

    /** Per-cache view: commands received from other caches' activity. */
    std::uint64_t
    cmdsReceivedBy(ProcId p) const
    {
        return recvCmds_.at(p);
    }

    /** Per-cache view: useless commands received. */
    std::uint64_t
    uselessReceivedBy(ProcId p) const
    {
        return recvUseless_.at(p);
    }

    /** References issued by processor p. */
    std::uint64_t refsIssuedBy(ProcId p) const { return refsBy_.at(p); }

    /** Caches whose array currently holds a valid copy of block a. */
    std::vector<ProcId> holders(Addr a) const;

    /** Current memory contents of block a (oracle support). */
    Value memValue(Addr a) const { return mem_.peek(a); }

    /** Read-only view of processor p's cache. */
    const CacheArray &cache(ProcId p) const { return caches_.at(p); }

    /** Backing store (for traffic counters). */
    const BackingStore &memory() const { return mem_; }

    ProcId numProcs() const { return cfg_.numProcs; }
    const ProtoConfig &config() const { return cfg_; }

    /**
     * Directory storage cost in bits per memory block — the economy
     * axis of the paper's comparison (2 vs n+1).
     */
    virtual unsigned directoryBitsPerBlock() const = 0;

    /**
     * Aggregated tiered directory-storage counters across this
     * system's modules (the "dirStore" object of the dir2b.sweep v3
     * schema).  Schemes without a TieredStore-backed directory return
     * all zeros; drivers test hasDirStore() before emitting.
     */
    virtual DirStoreCounters dirStoreCounters() const { return {}; }

    /**
     * Deep consistency check between the directory structures and the
     * cache arrays; panics on violation.  Tests call this after every
     * access.
     */
    virtual void checkInvariants() const = 0;

    /**
     * Flush processor p's cache: write every dirty line back and drop
     * every copy, updating the directory — the §2.2 context-switch
     * operation ("cache flush and possibly writebacks at context
     * switch").  Counted as EJECTs.  Not every scheme supports it;
     * the default fatals.
     */
    virtual void flushCache(ProcId p);

    /**
     * Whether flushCache is implemented for this scheme.  Lets generic
     * drivers (the state-space explorer's action alphabet, tooling)
     * query capability instead of keeping a scheme-name list that goes
     * stale when a protocol gains flush support.
     */
    virtual bool supportsFlush() const { return false; }

  protected:
    /** Scheme-specific transaction body. */
    virtual Value doAccess(ProcId k, Addr a, bool write, Value wval) = 0;

    /** Record a command delivery at cache p (stolen cycle accounting
     *  and the per-cache received-command view).  stealsCycle is
     *  false when a duplicate tag directory absorbed the check. */
    void deliverCmd(ProcId p, bool useful, bool stealsCycle = true);

    ProtoConfig cfg_;
    AddressMap addrMap_;
    std::vector<CacheArray> caches_;
    BackingStore mem_;
    AccessCounts counts_;

  private:
    std::string name_;
    AccessCounts lastDelta_;
    std::vector<std::uint64_t> recvCmds_;
    std::vector<std::uint64_t> recvUseless_;
    std::vector<std::uint64_t> refsBy_;
};

} // namespace dir2b

#endif // DIR2B_PROTO_PROTOCOL_HH
