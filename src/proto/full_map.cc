#include "proto/full_map.hh"

#include "util/logging.hh"

namespace dir2b
{

FullMapProtocol::FullMapProtocol(const ProtoConfig &cfg)
    : Protocol("full_map", cfg)
{}

FullMapProtocol::FullMapProtocol(const std::string &name,
                                 const ProtoConfig &cfg)
    : Protocol(name, cfg)
{}

FullMapEntry &
FullMapProtocol::entryFor(Addr a)
{
    onDirectoryTouch(a);
    return map_.tryEmplace(a, cfg_.numProcs).first->second;
}

const FullMapEntry *
FullMapProtocol::entry(Addr a) const
{
    auto it = map_.find(a);
    return it == map_.end() ? nullptr : &it->second;
}

void
FullMapProtocol::invalidateHolders(Addr a, FullMapEntry &e, ProcId except)
{
    for (std::size_t i = e.present.findFirst(); i < e.present.size();
         i = e.present.findNext(i)) {
        const auto p = static_cast<ProcId>(i);
        if (p == except)
            continue;
        // INVALIDATE(a, p): directed, always useful.
        ++counts_.directedCmds;
        ++counts_.netMessages;
        deliverCmd(p, true);
        const bool had = caches_[p].invalidate(a);
        DIR2B_ASSERT(had, "full map sent INVALIDATE(", a, ",", p,
                     ") to a cache without a copy");
        ++counts_.invalidations;
        e.present.reset(i);
        onCacheChange(p);
    }
}

Value
FullMapProtocol::purgeOwner(Addr a, FullMapEntry &e, RW rw)
{
    DIR2B_ASSERT(e.modified && e.present.count() == 1,
                 "purgeOwner on a block that is not PresentM");
    const auto owner = static_cast<ProcId>(e.present.findFirst());
    CacheLine *l = caches_[owner].lookup(a, false);
    DIR2B_ASSERT(l && l->dirty(), "full map owner of ", a,
                 " has no dirty copy");

    // PURGE(a, owner, rw): directed, always useful.
    ++counts_.directedCmds;
    ++counts_.netMessages;
    deliverCmd(owner, true);
    ++counts_.purges;

    const Value data = l->value;
    // put(b_owner, a) + write-back at the controller.
    ++counts_.dataTransfers;
    ++counts_.netMessages;
    mem_.write(a, data);
    ++counts_.memWrites;
    ++counts_.writebacks;

    if (rw == RW::Read) {
        l->state = LineState::Shared;
    } else {
        caches_[owner].invalidate(a);
        ++counts_.invalidations;
        e.present.reset(owner);
    }
    e.modified = false;
    onCacheChange(owner);
    return data;
}

void
FullMapProtocol::replaceVictim(ProcId k, Addr a)
{
    CacheLine &victim = caches_[k].victimFor(a);
    if (!victim.valid())
        return;

    const Addr olda = victim.addr;
    FullMapEntry &e = entryFor(olda);
    ++counts_.ejects;
    ++counts_.netMessages;
    DIR2B_ASSERT(e.present.test(k), "ejecting ", olda,
                 " but the presence bit for cache ", k, " is clear");

    if (victim.dirty()) {
        DIR2B_ASSERT(e.modified, "dirty eject of ", olda,
                     " but directory modified bit is clear");
        ++counts_.dataTransfers;
        ++counts_.netMessages;
        mem_.write(olda, victim.value);
        ++counts_.memWrites;
        ++counts_.writebacks;
        e.modified = false;
    }
    e.present.reset(k);
    ++counts_.setstates;
    caches_[k].invalidate(olda);
    onCacheChange(k);
}

void
FullMapProtocol::flushCache(ProcId k)
{
    std::vector<CacheLine> lines;
    caches_[k].forEachValid(
        [&](const CacheLine &l) { lines.push_back(l); });

    for (const CacheLine &l : lines) {
        FullMapEntry &e = entryFor(l.addr);
        ++counts_.ejects;
        ++counts_.netMessages;
        if (l.dirty()) {
            ++counts_.dataTransfers;
            ++counts_.netMessages;
            mem_.write(l.addr, l.value);
            ++counts_.memWrites;
            ++counts_.writebacks;
            e.modified = false;
        }
        e.present.reset(k);
        ++counts_.setstates;
        caches_[k].invalidate(l.addr);
        onCacheChange(k);
    }
}

Value
FullMapProtocol::doAccess(ProcId k, Addr a, bool write, Value wval)
{
    CacheArray &c = caches_[k];

    if (CacheLine *l = c.lookup(a)) {
        if (!write) {
            ++counts_.readHits;
            return l->value;
        }
        if (l->dirty()) {
            ++counts_.writeHits;
            l->value = wval;
            return wval;
        }

        // Write hit on a clean line: consult the map; invalidate the
        // other holders (exactly known) and set the modified bit.
        ++counts_.writeHits;
        ++counts_.writeHitsClean;
        ++counts_.mrequests;
        counts_.netMessages += 2; // MREQUEST + MGRANTED
        FullMapEntry &e = entryFor(a);
        DIR2B_ASSERT(e.present.test(k) && !e.modified,
                     "write hit on clean copy of ", a,
                     " but the directory disagrees");
        invalidateHolders(a, e, k);
        e.modified = true;
        ++counts_.setstates;
        l->state = LineState::Modified;
        l->value = wval;
        onCacheChange(k);
        return wval;
    }

    if (write)
        ++counts_.writeMisses;
    else
        ++counts_.readMisses;
    replaceVictim(k, a);
    ++counts_.requests;
    ++counts_.netMessages;

    FullMapEntry &e = entryFor(a);
    Value v = 0;

    if (!write) {
        if (e.modified) {
            v = purgeOwner(a, e, RW::Read);
        } else {
            v = mem_.read(a);
            ++counts_.memReads;
        }
        e.present.set(k);
        ++counts_.setstates;
        ++counts_.dataTransfers;
        ++counts_.netMessages;
        c.fill(a, LineState::Shared, v);
        onCacheChange(k);
        return v;
    }

    if (e.modified) {
        v = purgeOwner(a, e, RW::Write);
    } else {
        invalidateHolders(a, e, k);
        v = mem_.read(a);
        ++counts_.memReads;
    }
    e.present.set(k);
    e.modified = true;
    ++counts_.setstates;
    ++counts_.dataTransfers;
    ++counts_.netMessages;
    c.fill(a, LineState::Modified, wval);
    onCacheChange(k);
    return wval;
}

void
FullMapProtocol::checkInvariants() const
{
    // Directory -> caches: every presence bit set must correspond to a
    // valid copy; the modified bit implies exactly one dirty holder.
    for (const auto &[a, e] : map_) {
        std::size_t copies = 0;
        for (std::size_t i = e.present.findFirst(); i < e.present.size();
             i = e.present.findNext(i)) {
            const CacheLine *l = caches_[i].peek(a);
            DIR2B_ASSERT(l, "presence bit set for cache ", i, " block ",
                         a, " but no copy exists");
            DIR2B_ASSERT(l->dirty() == (e.modified),
                         "dirtiness mismatch for block ", a, " cache ",
                         i);
            ++copies;
        }
        if (e.modified) {
            DIR2B_ASSERT(copies == 1, "modified block ", a, " has ",
                         copies, " presence bits");
        }
    }
    // Caches -> directory: every valid line must be mapped.
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        caches_[p].forEachValid([&](const CacheLine &l) {
            auto it = map_.find(l.addr);
            DIR2B_ASSERT(it != map_.end() && it->second.present.test(p),
                         "cache ", p, " holds ", l.addr,
                         " without a presence bit");
        });
    }
}

} // namespace dir2b
