/**
 * @file
 * The shipped transition tables for the table-driven engine.
 *
 * Two of these re-express hand-written schemes as data and are held to
 * bit-identical behaviour by the cross-interpreter lockstep differ
 * (check/differ.hh):
 *
 *   twoBitTable()   the paper's §3 two-bit broadcast scheme
 *                   (= core/two_bit_protocol.cc, counter for counter);
 *   fullMapTable()  the Censier-Feautrier full map
 *                   (= proto/full_map.cc, counter for counter).
 *
 * The third is the proof that new protocols are now data only:
 *
 *   moesiTable()    a directory MOESI with an Owned state and
 *                   cache-to-cache supply — zero interpreter changes,
 *                   26 rows.
 *
 * See docs/TABLE_ENGINE.md for the row format and how to add another.
 */

#ifndef DIR2B_PROTO_TABLE_DEFS_HH
#define DIR2B_PROTO_TABLE_DEFS_HH

#include "proto/table_engine.hh"

namespace dir2b
{

/** The two-bit directory scheme as a table ("two_bit_table"). */
const TransitionTable &twoBitTable();

/** The full-map directory scheme as a table ("full_map_table"). */
const TransitionTable &fullMapTable();

/** Directory MOESI, new protocol purely as data ("moesi"). */
const TransitionTable &moesiTable();

} // namespace dir2b

#endif // DIR2B_PROTO_TABLE_DEFS_HH
