/**
 * @file
 * The Illinois scheme (Papamarcos & Patel, ISCA 1984; paper ref [5]).
 *
 * The contemporaneous "low overhead" bus protocol the paper cites as
 * the other state-of-the-art snooping solution — today's MESI.  Local
 * states: Invalid, Shared, Exclusive (clean, sole copy), Modified.
 * Distinctive features versus write-once: an exclusive-clean fill when
 * no other cache holds the block (making later writes bus-free), and
 * cache-to-cache supply of clean blocks.
 *
 * As with write-once, the structural cost is that every bus
 * transaction is snooped by all other caches (snoopChecks), which is
 * exactly the per-miss broadcast the two-bit directory avoids on
 * general interconnection networks.
 */

#ifndef DIR2B_PROTO_ILLINOIS_HH
#define DIR2B_PROTO_ILLINOIS_HH

#include "proto/protocol.hh"

namespace dir2b
{

/** Functional-tier Illinois (MESI) protocol. */
class IllinoisProtocol : public Protocol
{
  public:
    explicit IllinoisProtocol(const ProtoConfig &cfg)
        : Protocol("illinois", cfg)
    {}

    unsigned directoryBitsPerBlock() const override { return 0; }

    void checkInvariants() const override;

  protected:
    Value doAccess(ProcId k, Addr a, bool write, Value wval) override;

  private:
    void replaceVictim(ProcId k, Addr a);
    void snoop() { counts_.snoopChecks += cfg_.numProcs - 1; }
};

} // namespace dir2b

#endif // DIR2B_PROTO_ILLINOIS_HH
