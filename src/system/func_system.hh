/**
 * @file
 * Functional-tier system runner.
 *
 * Drives a Protocol with a RefStream, optionally checking the
 * coherence oracle and the protocol's structural invariants, and
 * measures the quantities the paper's model is parameterised by:
 * the realised shared-reference fraction q, shared write fraction w,
 * shared-block hit ratio h, and the time-average occupancies of the
 * four global states P(P1), P(P*), P(PM) over the shared region —
 * which bench_sim_validation feeds back into the §4.2 closed form to
 * cross-check the measured broadcast overhead.
 */

#ifndef DIR2B_SYSTEM_FUNC_SYSTEM_HH
#define DIR2B_SYSTEM_FUNC_SYSTEM_HH

#include <array>
#include <cstdint>

#include "check/oracle.hh"
#include "core/global_state.hh"
#include "proto/protocol.hh"
#include "trace/reference.hh"

namespace dir2b
{

class TelemetrySampler;

/** Knobs of one functional run. */
struct RunOptions
{
    /** Number of references to execute. */
    std::uint64_t numRefs = 100000;
    /** Verify every read against the last-writer oracle. */
    bool checkCoherence = true;
    /** Call Protocol::checkInvariants() every N references (0 = off). */
    std::uint64_t invariantEvery = 0;
    /** Sample global-state occupancy every N references (0 = off). */
    std::uint64_t sampleEvery = 0;
    /** Extent of the shared region for occupancy sampling. */
    std::size_t sharedBlocks = 0;
    /** Optional time-series sampler (obs/telemetry.hh), snapshotting
     *  every sampler->interval() completed references.  The caller
     *  registers metrics (system/func_telemetry.hh) before the run.
     *  Sampling never perturbs results. */
    TelemetrySampler *sampler = nullptr;
};

/** Measurements of one functional run. */
struct RunResult
{
    AccessCounts counts;

    // Realised model parameters over the shared region.
    std::uint64_t sharedRefs = 0;
    std::uint64_t sharedWrites = 0;
    std::uint64_t sharedHits = 0;

    /** Time-average occupancy of each GlobalState over the shared
     *  blocks (two-bit protocols only; zeros otherwise). */
    std::array<double, 4> stateOccupancy{};
    std::uint64_t stateSamples = 0;

    /** Average over caches of useless commands received per own
     *  reference — the quantity Table 4-1 reports as (n-1)*T_SUM. */
    double perCacheUselessPerRef = 0.0;

    double measuredQ(std::uint64_t total) const
    {
        return total ? static_cast<double>(sharedRefs) / total : 0.0;
    }
    double
    measuredW() const
    {
        return sharedRefs ? static_cast<double>(sharedWrites) /
                                sharedRefs
                          : 0.0;
    }
    double
    measuredH() const
    {
        return sharedRefs ? static_cast<double>(sharedHits) /
                                sharedRefs
                          : 0.0;
    }
};

/** Execute a run; fatal/panic on any coherence or invariant failure. */
RunResult runFunctional(Protocol &proto, RefStream &stream,
                        const RunOptions &opts);

class TraceBatchStream;

/**
 * Batched replay frontend: execute a run from whole record blocks of
 * an mmap'ed binary trace (trace/trace_binary.hh), dispatching each
 * AccessBatch span through one tight loop instead of the per-record
 * virtual stream path.  Semantics (oracle, invariants, sampling,
 * counters) are shared with runFunctional — replaying the trace that
 * recorded a stream yields bit-identical results.
 */
RunResult runFunctionalBatched(Protocol &proto, TraceBatchStream &batches,
                               const RunOptions &opts);

} // namespace dir2b

#endif // DIR2B_SYSTEM_FUNC_SYSTEM_HH
