#include "system/func_telemetry.hh"

#include "obs/telemetry.hh"
#include "proto/protocol.hh"

namespace dir2b
{

namespace
{

const Protocol &
proto(const void *ctx)
{
    return *static_cast<const Protocol *>(ctx);
}

} // namespace

void
registerFunctionalMetrics(MetricRegistry &reg, const Protocol &p)
{
    const AccessCounts &c = p.counts();
    const auto counter = MetricKind::Counter;
    const auto gauge = MetricKind::Gauge;

    // Progress coordinate (also the sample domain, but having it as a
    // metric keeps series self-describing and rate tools uniform).
    reg.add("refs.completed", counter,
            +[](const void *ctx) { return proto(ctx).counts().refs(); },
            &p);

    // Reference classification.
    reg.add("counts.reads", counter, &c.reads);
    reg.add("counts.writes", counter, &c.writes);
    reg.add("counts.read_hits", counter, &c.readHits);
    reg.add("counts.read_misses", counter, &c.readMisses);
    reg.add("counts.write_hits", counter, &c.writeHits);
    reg.add("counts.write_misses", counter, &c.writeMisses);
    reg.add("counts.write_hits_clean", counter, &c.writeHitsClean);

    // Coherence transactions.
    reg.add("counts.requests", counter, &c.requests);
    reg.add("counts.mrequests", counter, &c.mrequests);
    reg.add("counts.ejects", counter, &c.ejects);
    reg.add("counts.setstates", counter, &c.setstates);

    // Commands reaching caches.  useless_cmds over refs is the §4.2
    // useless-command rate, now time-resolved.
    reg.add("counts.broadcasts", counter, &c.broadcasts);
    reg.add("counts.broadcast_cmds", counter, &c.broadcastCmds);
    reg.add("counts.useless_cmds", counter, &c.uselessCmds);
    reg.add("counts.directed_cmds", counter, &c.directedCmds);
    reg.add("counts.invalidations", counter, &c.invalidations);
    reg.add("counts.purges", counter, &c.purges);

    // Data movement and cache-side overheads.
    reg.add("counts.writebacks", counter, &c.writebacks);
    reg.add("counts.mem_reads", counter, &c.memReads);
    reg.add("counts.mem_writes", counter, &c.memWrites);
    reg.add("counts.cache_transfers", counter, &c.cacheTransfers);
    reg.add("counts.data_transfers", counter, &c.dataTransfers);
    reg.add("counts.stolen_cycles", counter, &c.stolenCycles);
    reg.add("counts.filtered_cmds", counter, &c.filteredCmds);
    reg.add("counts.net_messages", counter, &c.netMessages);

    // Tiered directory storage (all-zero for protocols without one).
    reg.add("dirstore.resident_bytes", gauge,
            +[](const void *ctx) {
                return proto(ctx).dirStoreCounters().residentBytes;
            },
            &p);
    reg.add("dirstore.compressed_bytes", gauge,
            +[](const void *ctx) {
                return proto(ctx).dirStoreCounters().compressedBytes;
            },
            &p);
    reg.add("dirstore.segment_bytes", gauge,
            +[](const void *ctx) {
                return proto(ctx).dirStoreCounters().segmentBytes;
            },
            &p);
    reg.add("dirstore.hot_pages", gauge,
            +[](const void *ctx) {
                return proto(ctx).dirStoreCounters().hotPages;
            },
            &p);
    reg.add("dirstore.cold_pages", gauge,
            +[](const void *ctx) {
                return proto(ctx).dirStoreCounters().coldPages;
            },
            &p);
    reg.add("dirstore.disk_pages", gauge,
            +[](const void *ctx) {
                return proto(ctx).dirStoreCounters().diskPages;
            },
            &p);
    reg.add("dirstore.compressions", counter,
            +[](const void *ctx) {
                return proto(ctx).dirStoreCounters().compressions;
            },
            &p);
    reg.add("dirstore.decompressions", counter,
            +[](const void *ctx) {
                return proto(ctx).dirStoreCounters().decompressions;
            },
            &p);
}

} // namespace dir2b
