/**
 * @file
 * Functional-tier metric registration for the telemetry sampler.
 *
 * The functional tier's statistics all live in one place — the
 * protocol's cumulative AccessCounts (plain uint64 fields, stable for
 * the protocol's lifetime) plus the tiered directory-storage counters
 * of the two-bit schemes — so registration is a flat list of word
 * sources plus a handful of probes.  The sample domain is completed
 * references (RunOptions::sampler flushes after every reference), so
 * a boundary at N refs snapshots the counts after exactly the first
 * N references, batched or scalar frontend alike.
 */

#ifndef DIR2B_SYSTEM_FUNC_TELEMETRY_HH
#define DIR2B_SYSTEM_FUNC_TELEMETRY_HH

namespace dir2b
{

class MetricRegistry;
class Protocol;

/** Register the functional metric set (docs/METRICS.md) against
 *  `proto`, which must outlive every read of `reg`. */
void registerFunctionalMetrics(MetricRegistry &reg,
                               const Protocol &proto);

} // namespace dir2b

#endif // DIR2B_SYSTEM_FUNC_TELEMETRY_HH
