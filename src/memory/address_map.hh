/**
 * @file
 * Block-to-module interleaving.
 *
 * Figure 3-1 shows main memory split into modules M_1..M_m, each with
 * its own controller K_j holding the directory entries for the blocks
 * in that module ("each controller is responsible only for the blocks
 * pertaining to its module").  Low-order block-interleaving spreads
 * consecutive blocks across modules, the standard choice for avoiding
 * module hot-spots.
 */

#ifndef DIR2B_MEMORY_ADDRESS_MAP_HH
#define DIR2B_MEMORY_ADDRESS_MAP_HH

#include "util/logging.hh"
#include "util/types.hh"

namespace dir2b
{

/** Maps block addresses to their home memory module. */
class AddressMap
{
  public:
    explicit AddressMap(ModuleId modules) : modules_(modules)
    {
        if (modules == 0)
            DIR2B_FATAL("system needs at least one memory module");
    }

    /** Home module (directory controller) of block a. */
    ModuleId
    home(Addr a) const
    {
        return static_cast<ModuleId>(a % modules_);
    }

    ModuleId modules() const { return modules_; }

  private:
    ModuleId modules_;
};

} // namespace dir2b

#endif // DIR2B_MEMORY_ADDRESS_MAP_HH
