/**
 * @file
 * Sparse backing store modelling main-memory block contents.
 *
 * Blocks are born with initialValue(a) and only materialise on the
 * first write-back, so arbitrarily large address spaces cost nothing.
 */

#ifndef DIR2B_MEMORY_BACKING_STORE_HH
#define DIR2B_MEMORY_BACKING_STORE_HH

#include "sim/stats.hh"
#include "util/flat_map.hh"
#include "util/types.hh"

namespace dir2b
{

/** Main-memory contents plus read/write traffic counters. */
class BackingStore
{
  public:
    /** Fetch the current contents of block a. */
    Value
    read(Addr a)
    {
        ++reads_;
        return peek(a);
    }

    /** Write block a back to memory. */
    void
    write(Addr a, Value v)
    {
        ++writes_;
        data_[a] = v;
    }

    /** Contents without touching the traffic counters (for oracles). */
    Value
    peek(Addr a) const
    {
        auto it = data_.find(a);
        return it != data_.end() ? it->second : initialValue(a);
    }

    std::uint64_t reads() const { return reads_.value(); }
    std::uint64_t writes() const { return writes_.value(); }

  private:
    FlatMap<Addr, Value> data_;
    Counter reads_;
    Counter writes_;
};

} // namespace dir2b

#endif // DIR2B_MEMORY_BACKING_STORE_HH
