/**
 * @file
 * The timed multiprocessor of Figure 3-1: n processor-cache pairs and
 * m controller-memory modules on an interconnection network, running
 * the two-bit directory protocol with real latencies.
 *
 * Processors are blocking (one outstanding reference, thinkTime
 * between references) and draw their streams from a per-processor
 * source; the per-location coherence oracle checks every completion
 * and the end state.
 */

#ifndef DIR2B_TIMED_TIMED_SYSTEM_HH
#define DIR2B_TIMED_TIMED_SYSTEM_HH

#include <functional>
#include <memory>
#include <optional>
#include <ostream>
#include <vector>

#include "core/two_bit_directory.hh"
#include "sim/event_queue.hh"
#include "timed/cache_ctrl.hh"
#include "timed/dir_ctrl_base.hh"
#include "timed/timed_config.hh"
#include "timed/timed_net.hh"
#include "timed/timed_oracle.hh"
#include "timed/timed_telemetry.hh"
#include "trace/reference.hh"

namespace dir2b
{

/**
 * Per-processor reference source: returns the next reference for
 * processor p, or nullopt when p's stream ends.  The MemRef::proc
 * field must equal p.
 */
using ProcSource = std::function<std::optional<MemRef>(ProcId)>;

/** Aggregate results of a timed run. */
struct TimedRunResult
{
    Tick finalTick = 0;
    std::uint64_t refsCompleted = 0;
    std::uint64_t eventsExecuted = 0;
    double avgLatency = 0.0;
    std::uint64_t stolenCycles = 0;
    std::uint64_t filteredCmds = 0;
    std::uint64_t mrequestConversions = 0;
    std::uint64_t mreqDeleted = 0;
    std::uint64_t putsConsumed = 0;
    std::uint64_t putsAwaited = 0;
    std::uint64_t grantsFalse = 0;
    std::uint64_t netMessages = 0;
    std::uint64_t broadcasts = 0;
    std::uint64_t netWaitCycles = 0;
    std::uint64_t readsChecked = 0;
    std::uint64_t writesRecorded = 0;
    /** Request-latency percentiles over all caches (merged). */
    Tick latencyP50 = 0;
    Tick latencyP95 = 0;
    Tick latencyP99 = 0;
    /** Tiered directory-storage counters (two-bit scheme; zeros for
     *  schemes whose directory is not the tiered 2-bit map). */
    DirStoreCounters dirStore;
    /** Sharded-engine epoch accounting (zeros for a serial run). */
    std::uint64_t epochs = 0;
    /** Epochs with one active shard, run inline on the caller thread
     *  by the quiescent-epoch fast-forward. */
    std::uint64_t inlineEpochs = 0;
    /** Shard-epochs skipped because the shard's exact next-event
     *  bound was at or beyond the horizon. */
    std::uint64_t shardEpochsSkipped = 0;
};

/** A complete timed two-bit multiprocessor. */
class TimedSystem
{
  public:
    explicit TimedSystem(const TimedConfig &cfg);
    ~TimedSystem();

    TimedSystem(const TimedSystem &) = delete;
    TimedSystem &operator=(const TimedSystem &) = delete;

    /**
     * Run every processor against the source until streams end (or a
     * per-processor cap).  Panics on any coherence violation; fatal
     * on livelock (event budget exhausted).
     */
    TimedRunResult run(const ProcSource &source,
                       std::uint64_t refsPerProc);

    const TwoBitCacheCtrl &cacheCtrl(ProcId p) const
    {
        return *caches_.at(p);
    }
    const TimedDirCtrl &dirCtrl(ModuleId m) const
    {
        return *dirs_.at(m);
    }
    const TimedNetwork &network() const { return *net_; }
    const TimedConfig &config() const { return cfg_; }

    /** Current simulated time (the trace/debug hook's clock). */
    Tick now() const { return eq_.now(); }

    /** Merge one per-cache histogram across every cache. */
    Histogram
    mergedCacheHistogram(Histogram CacheCtrlStats::*h) const
    {
        Histogram out = caches_.at(0)->stats().*h;
        for (std::size_t p = 1; p < caches_.size(); ++p)
            out.merge(caches_[p]->stats().*h);
        return out;
    }

    /** Merge one per-controller histogram across every module. */
    Histogram
    mergedDirHistogram(Histogram DirCtrlStats::*h) const
    {
        Histogram out = dirs_.at(0)->stats().*h;
        for (std::size_t m = 1; m < dirs_.size(); ++m)
            out.merge(dirs_[m]->stats().*h);
        return out;
    }

    /**
     * Dump every component's statistics in the gem5-style
     * "group.stat value # description" format (caches, controllers,
     * network), via the StatGroup framework.
     */
    void dumpStats(std::ostream &os) const;

  private:
    void issueNext(ProcId p);

    TimedConfig cfg_;
    EventQueue eq_;
    std::unique_ptr<TimedNetwork> net_;
    std::vector<std::unique_ptr<TwoBitCacheCtrl>> caches_;
    std::vector<std::unique_ptr<TimedDirCtrl>> dirs_;
    TimedOracle oracle_;
    ProcSource source_;
    std::vector<std::uint64_t> remaining_;
    std::uint64_t completed_ = 0;
    /** Probe context for cfg_.sampler (lives as long as the run). */
    TimedTelemetryView telemetryView_;
};

} // namespace dir2b

#endif // DIR2B_TIMED_TIMED_SYSTEM_HH
