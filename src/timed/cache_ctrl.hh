/**
 * @file
 * Timed cache controller for the two-bit directory protocol.
 *
 * One controller per processor-cache pair (C_k).  The cache is
 * blocking (one outstanding processor request — the 1984 design
 * point), but it must service incoming BROADINV/BROADQUERY commands
 * at any time, including *while waiting for its own transaction* —
 * that concurrency is where the paper's synchronization scenario
 * (§3.2.5) lives:
 *
 *   "Upon receipt of BROADINV(i,a), cache j should invalidate its
 *    copy of a and in effect treat BROADINV as an MGRANTED(j,false).
 *    Processor j's next action will therefore be a
 *    REQUEST(j,a,'write')."
 *
 * which is exactly what convertToWriteMiss() implements.
 */

#ifndef DIR2B_TIMED_CACHE_CTRL_HH
#define DIR2B_TIMED_CACHE_CTRL_HH

#include <functional>
#include <optional>

#include "cache/cache_array.hh"
#include "cache/snoop_filter.hh"
#include "obs/trace_recorder.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "timed/timed_config.hh"
#include "timed/timed_net.hh"
#include "trace/reference.hh"

namespace dir2b
{

/** Per-cache statistics of the timed tier. */
struct CacheCtrlStats
{
    Counter readHits;
    Counter writeHits;
    Counter readMisses;
    Counter writeMisses;
    Counter mrequests;
    Counter mrequestConversions; ///< BROADINV treated as MGRANTED(false)
    Counter staleGrantsIgnored;
    Counter stolenCycles;  ///< remote commands that cost a cache cycle
    Counter filteredCmds;  ///< absorbed by the duplicate directory
    Counter invalidationsApplied;
    Counter queriesAnswered;
    Counter writebacksSent;
    Histogram latency{1, 64};   ///< request latency in cycles
    Histogram grantWait{2, 64}; ///< MREQUEST -> MGRANTED/conversion
    Histogram dataWait{2, 64};  ///< REQUEST -> get(data)
};

/** Timed two-bit cache controller. */
class TwoBitCacheCtrl
{
  public:
    using Done = std::function<void(Value)>;

    TwoBitCacheCtrl(ProcId id, const TimedConfig &cfg, EventQueue &eq,
                    TimedNetwork &net);

    /**
     * Begin one LOAD/STORE.  Exactly one may be outstanding; the done
     * callback fires with the read (or stored) value when the
     * transaction completes.
     */
    void processorRequest(const MemRef &ref, Value wval, Done done);

    virtual ~TwoBitCacheCtrl() = default;

    /** Incoming network message (connected by the system builder). */
    virtual void receive(unsigned src, const Message &msg);

    bool idle() const { return !txn_.has_value(); }

    const CacheCtrlStats &stats() const { return stats_; }
    const CacheArray &cache() const { return cache_; }

    /** Drain hook for final conservation checks. */
    void forEachValidLine(
        const std::function<void(const CacheLine &)> &fn) const
    {
        cache_.forEachValid(fn);
    }

  protected:
    /** Completing: the outcome is decided and the completion callback
     *  is scheduled; incoming commands must no longer convert or
     *  re-answer this transaction. */
    enum class Phase { AwaitGrant, AwaitData, Completing };

    struct Txn
    {
        Phase phase;
        MemRef ref;
        Value wval;
        Done done;
        Tick start;
        /** Trace span label for the whole transaction (literal). */
        const char *op = nullptr;
        /** Start of the current wait sub-phase (grant/data). */
        Tick phaseStart = 0;
    };

    unsigned homeEndpoint(Addr a) const;
    void sendToHome(Addr a, Message msg);
    void complete(Value v);
    void startMiss();
    void convertToWriteMiss();

    /**
     * Protocol hook: attempt a write hit on a clean line without any
     * global transaction.  The Yen-Fu controller upgrades Exclusive
     * lines silently here; the base schemes always go to MREQUEST.
     * @return true if the write completed locally.
     */
    virtual bool tryLocalWrite(CacheLine *, Value) { return false; }

    /** Protocol hook: local state for a read-miss fill (Yen-Fu fills
     *  Exclusive when the controller grants sole ownership). */
    virtual LineState
    readFillState(const Message &) const
    {
        return LineState::Shared;
    }

    void sendInvAck(Addr a);
    void onGetData(const Message &msg);
    void onMGranted(const Message &msg);
    void onBroadInv(const Message &msg);
    void onBroadQuery(const Message &msg);

    /** Fill keeping the duplicate directory in sync. */
    void fillLine(Addr a, LineState st, Value v);
    /** Invalidate keeping the duplicate directory in sync. */
    void dropLine(Addr a);

    ProcId id_;
    const TimedConfig &cfg_;
    EventQueue &eq_;
    TimedNetwork &net_;
    CacheArray cache_;
    std::optional<SnoopFilter> snoop_;
    std::optional<Txn> txn_;
    CacheCtrlStats stats_;
    TraceRecorder *trc_ = nullptr;
    std::uint32_t trk_ = 0; ///< this cache's trace track
};

} // namespace dir2b

#endif // DIR2B_TIMED_CACHE_CTRL_HH
