/**
 * @file
 * Shared end-of-run logic of the timed engines.
 *
 * The serial TimedSystem and the sharded ShardedTimedSystem must agree
 * bit-for-bit on everything digestable — final-state auditing, result
 * aggregation, histogram merging, and stats dumping — so those passes
 * live here as free functions over the flat controller tables both
 * engines keep (caches indexed by processor, directory controllers by
 * module, regardless of which shard owns them).
 */

#ifndef DIR2B_TIMED_TIMED_AUDIT_HH
#define DIR2B_TIMED_TIMED_AUDIT_HH

#include <memory>
#include <ostream>
#include <vector>

#include "timed/timed_system.hh"

namespace dir2b
{

/** Merge one per-cache histogram across every cache, in proc order. */
Histogram
mergedCacheHistogram(
    const std::vector<std::unique_ptr<TwoBitCacheCtrl>> &caches,
    Histogram CacheCtrlStats::*h);

/** Merge one per-controller histogram across every module. */
Histogram
mergedDirHistogram(
    const std::vector<std::unique_ptr<TimedDirCtrl>> &dirs,
    Histogram DirCtrlStats::*h);

/**
 * Final conservation pass at quiesce: at most one dirty copy per
 * block, clean copies equal memory, and every written block ends at
 * the newest version the oracle recorded.  Block a's home module is
 * a % dirs.size().
 */
void auditTimedFinalState(
    const std::vector<std::unique_ptr<TwoBitCacheCtrl>> &caches,
    const std::vector<std::unique_ptr<TimedDirCtrl>> &dirs,
    const TimedOracle &oracle);

/**
 * Fold per-component statistics into a TimedRunResult.  The caller
 * supplies the engine-level totals (final tick, events, network
 * counters); this fills the controller sums, the latency average and
 * the merged percentiles — iterating in proc/module order so the
 * floating-point sums are identical for both engines.
 */
TimedRunResult aggregateTimedResult(
    const std::vector<std::unique_ptr<TwoBitCacheCtrl>> &caches,
    const std::vector<std::unique_ptr<TimedDirCtrl>> &dirs,
    const TimedOracle &oracle, Tick finalTick,
    std::uint64_t refsCompleted, std::uint64_t eventsExecuted,
    std::uint64_t netMessages, std::uint64_t broadcasts,
    std::uint64_t netWaitCycles);

/** gem5-style "group.stat value # description" dump of every cache
 *  and controller. */
void dumpTimedStats(
    std::ostream &os,
    const std::vector<std::unique_ptr<TwoBitCacheCtrl>> &caches,
    const std::vector<std::unique_ptr<TimedDirCtrl>> &dirs);

} // namespace dir2b

#endif // DIR2B_TIMED_TIMED_AUDIT_HH
