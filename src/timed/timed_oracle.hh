/**
 * @file
 * Coherence checker for the timed tier.
 *
 * With messages in flight, "the most recently written value" is only
 * defined up to the per-block write serialisation the directory
 * enforces.  The checker therefore verifies per-location coherence in
 * its standard formal sense (per-location sequential consistency):
 *
 *  1. every read returns a value that was actually written to that
 *     block (or its initial contents) — no fabrication, no
 *     cross-block leakage;
 *  2. per (processor, block), the sequence of observed versions is
 *     monotonically non-decreasing — a processor never sees a write
 *     and then travels back in time (this permits the paper's
 *     ack-free invalidation broadcasts, where a remote stale copy may
 *     be read for a few more cycles before the BROADINV lands, but
 *     forbids any ordering inversion);
 *  3. a processor's read after its own write observes a version at
 *     least as new as that write;
 *  4. at quiesce, the final contents of every block (memory, or the
 *     unique dirty copy) equal the newest version.
 *
 * Versions are assigned in completion order, which matches the
 * per-block grant order of the serialising controller.
 */

#ifndef DIR2B_TIMED_TIMED_ORACLE_HH
#define DIR2B_TIMED_TIMED_ORACLE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "util/logging.hh"
#include "util/types.hh"

namespace dir2b
{

/** Per-location-SC checker fed by processor-visible completions. */
class TimedOracle
{
  public:
    /** Produce a unique value for the next write. */
    Value
    freshValue()
    {
        return ++nonce_ * 0x9e3779b97f4a7c15ULL + 1;
    }

    /** A write of v to block a completed at processor p. */
    void
    onWriteComplete(ProcId p, Addr a, Value v)
    {
        auto &blk = blocks_[a];
        const std::uint64_t seq = ++blk.lastSeq;
        blk.seqOf[v] = seq;
        lastSeen_[key(p, a)] = seq;
        ++writes_;
    }

    /** A read of block a returning v completed at processor p. */
    void
    onReadComplete(ProcId p, Addr a, Value v)
    {
        ++reads_;
        const std::uint64_t seq = seqOf(a, v);
        auto &seen = lastSeen_[key(p, a)];
        if (seq < seen) {
            DIR2B_PANIC("per-location coherence violation: processor ",
                        p, " read version ", seq, " of block ", a,
                        " after having observed version ", seen);
        }
        seen = seq;
    }

    /** End-of-run check: the final value of block a is the newest. */
    void
    checkFinal(Addr a, Value v) const
    {
        auto it = blocks_.find(a);
        const std::uint64_t last = it == blocks_.end() ? 0
                                                       : it->second.lastSeq;
        const std::uint64_t seq = seqOf(a, v);
        if (seq != last) {
            DIR2B_PANIC("conservation violation: block ", a,
                        " finishes at version ", seq,
                        " but the newest write was version ", last);
        }
    }

    std::uint64_t readsChecked() const { return reads_; }
    std::uint64_t writesRecorded() const { return writes_; }

    /** Visit every block that has been written (for final checks). */
    void
    forEachWrittenBlock(const std::function<void(Addr)> &fn) const
    {
        for (const auto &[a, hist] : blocks_)
            fn(a);
    }

  private:
    struct BlockHistory
    {
        std::uint64_t lastSeq = 0;
        std::unordered_map<Value, std::uint64_t> seqOf;
    };

    static std::uint64_t
    key(ProcId p, Addr a)
    {
        return (static_cast<std::uint64_t>(p) << 48) ^ a;
    }

    std::uint64_t
    seqOf(Addr a, Value v) const
    {
        auto it = blocks_.find(a);
        if (it == blocks_.end()) {
            if (v != initialValue(a))
                DIR2B_PANIC("read of block ", a, " returned ", v,
                            " which was never written (initial is ",
                            initialValue(a), ")");
            return 0;
        }
        if (v == initialValue(a))
            return 0;
        auto sit = it->second.seqOf.find(v);
        if (sit == it->second.seqOf.end())
            DIR2B_PANIC("read of block ", a, " returned ", v,
                        " which was never written to it");
        return sit->second;
    }

    std::unordered_map<Addr, BlockHistory> blocks_;
    std::unordered_map<std::uint64_t, std::uint64_t> lastSeen_;
    Value nonce_ = 0;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

} // namespace dir2b

#endif // DIR2B_TIMED_TIMED_ORACLE_HH
