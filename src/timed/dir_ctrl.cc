#include "timed/dir_ctrl.hh"

#include <vector>

#include "util/logging.hh"

namespace dir2b
{

void
TwoBitDirCtrl::process(const Message &msg)
{
    switch (msg.kind) {
      case MsgKind::Request:
        processRequest(msg);
        return;
      case MsgKind::MRequest:
        processMRequest(msg);
        return;
      case MsgKind::Eject:
        processEject(msg);
        return;
      default:
        DIR2B_PANIC("two-bit controller cannot process ",
                    toString(msg));
    }
}

void
TwoBitDirCtrl::finishRequest(ProcId k, Addr a, RW rw, Value data,
                             bool writeBack)
{
    dir_.set(a, rw == RW::Read
                    ? (dir_.get(a) == GlobalState::Absent
                           ? GlobalState::Present1
                           : GlobalState::PresentStar)
                    : GlobalState::PresentM);
    supplyData(k, a, data, writeBack);
}

void
TwoBitDirCtrl::onPutResolved(Addr a, ProcId requester, RW rw,
                             const Message &answer)
{
    // §3.2.2/§3.2.3: write back the owner's data and forward it.  If
    // the put was really the owner's ejection, the requester ends up
    // with the only copy, so a read can take the exact Present1 state
    // instead of the lossy Present*.
    if (answer.kind == MsgKind::Eject && rw == RW::Read) {
        dir_.set(a, GlobalState::Absent); // finishRequest -> Present1
    }
    finishRequest(requester, a, rw, answer.data, true);
}

void
TwoBitDirCtrl::broadcastInvalidate(Addr a, ProcId except,
                                   std::function<void()> onAcked)
{
    ++stats_.broadInvs;

    // Delete queued MREQUEST(j, a), j != except: the BROADINV below
    // doubles as their MGRANTED(j, false) (§3.2.5's scenario,
    // "Deletes MREQUEST(j,a) from the queue").  In-flight ones are
    // caught by the ack barrier.
    deleteQueuedMRequests(a, except);

    Message inv;
    inv.kind = MsgKind::BroadInv;
    inv.proc = except;
    inv.addr = a;
    std::vector<unsigned> dsts;
    dsts.reserve(cfg_.numProcs - 1);
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        if (p != except)
            dsts.push_back(p);
    }
    awaitAcks(a, except, static_cast<unsigned>(dsts.size()),
              std::move(onAcked));
    DIR2B_TRC(trc_, instant(eq_.now(), trk_, "broadinv_fanout", a,
                            dsts.size()));
    net_.broadcast(endpoint(), dsts, inv);
}

void
TwoBitDirCtrl::processRequest(const Message &msg)
{
    ++stats_.requests;
    const Addr a = msg.addr;
    const ProcId k = msg.proc;
    const GlobalState st = dir_.get(a);

    if (st == GlobalState::PresentM) {
        // The modified copy lives in some unknown cache — unless its
        // EJECT(write) already sits in our queue (the eviction race),
        // in which case it *is* the put.
        Message put;
        if (consumeQueuedPut(a, put)) {
            finishRequest(k, a, msg.rw, put.data, true);
            return;
        }
        ++stats_.broadQueries;
        Message q;
        q.kind = MsgKind::BroadQuery;
        q.proc = k;
        q.addr = a;
        q.rw = msg.rw;
        std::vector<unsigned> dsts;
        for (ProcId p = 0; p < cfg_.numProcs; ++p) {
            if (p != k)
                dsts.push_back(p);
        }
        awaitPut(a, k, msg.rw);
        DIR2B_TRC(trc_, instant(eq_.now(), trk_, "broadquery_fanout", a,
                                dsts.size()));
        net_.broadcast(endpoint(), dsts, q);
        return;
    }

    if (msg.rw == RW::Write && isPresentClean(st)) {
        // Invalidate every copy and only then supply the block; the
        // ack barrier also flushes stale MREQUESTs out of the queue.
        broadcastInvalidate(a, k, [this, k, a] {
            finishRequest(k, a, RW::Write, mem_.read(a), false);
        });
        return;
    }
    finishRequest(k, a, msg.rw, mem_.read(a), false);
}

void
TwoBitDirCtrl::processMRequest(const Message &msg)
{
    ++stats_.mrequests;
    const Addr a = msg.addr;
    const ProcId k = msg.proc;

    auto grant = [this, k, a](bool yes) {
        Message reply;
        reply.kind = MsgKind::MGranted;
        reply.proc = k;
        reply.addr = a;
        reply.granted = yes;
        if (yes) {
            dir_.set(a, GlobalState::PresentM);
            ++stats_.grantsTrue;
        } else {
            ++stats_.grantsFalse;
        }
        net_.send(endpoint(), k, reply);
    };

    switch (dir_.get(a)) {
      case GlobalState::Present1:
        // The single copy is the requester's: grant, no broadcast —
        // the payoff for keeping Present1 encoded (§3.2.4 case 1).
        grant(true);
        break;
      case GlobalState::PresentStar:
        // Grant only after every other copy is dead and every stale
        // MREQUEST has been deleted (ack barrier).
        broadcastInvalidate(a, k, [grant] { grant(true); });
        break;
      default:
        // The requester's copy was invalidated while this MREQUEST
        // was in flight; by FIFO it has already seen the BROADINV and
        // converted, so this refusal will be ignored as stale.
        grant(false);
        break;
    }
}

void
TwoBitDirCtrl::processEject(const Message &msg)
{
    if (msg.rw == RW::Read) {
        // Deliberately ignored (see the class comment).
        ++stats_.ejectsIgnored;
        return;
    }
    // A dirty ejection that did not race a query: write back, reclaim.
    const GlobalState st = dir_.get(msg.addr);
    DIR2B_ASSERT(st == GlobalState::PresentM, "EJECT(write) for block ",
                 msg.addr, " in state ", toString(st));
    mem_.write(msg.addr, msg.data);
    dir_.set(msg.addr, GlobalState::Absent);
    ++stats_.ejectsData;
}

} // namespace dir2b
