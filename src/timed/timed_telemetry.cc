#include "timed/timed_telemetry.hh"

#include "core/two_bit_directory.hh"
#include "obs/telemetry.hh"
#include "sim/event_queue.hh"
#include "timed/cache_ctrl.hh"
#include "timed/dir_ctrl_base.hh"
#include "timed/timed_net.hh"

namespace dir2b
{

namespace
{

const TimedTelemetryView &
view(const void *ctx)
{
    return *static_cast<const TimedTelemetryView *>(ctx);
}

/** Sum one CacheCtrlStats counter over every cache. */
template <Counter CacheCtrlStats::*M>
std::uint64_t
cacheSum(const void *ctx)
{
    std::uint64_t s = 0;
    for (const auto &c : *view(ctx).caches)
        s += (c->stats().*M).value();
    return s;
}

/** Sum one DirCtrlStats counter over every controller. */
template <Counter DirCtrlStats::*M>
std::uint64_t
dirSum(const void *ctx)
{
    std::uint64_t s = 0;
    for (const auto &d : *view(ctx).dirs)
        s += (d->stats().*M).value();
    return s;
}

/** Aggregate the tiered directory-storage counters (two-bit scheme;
 *  all-zero for protocols without a tiered directory). */
DirStoreCounters
dirStoreAgg(const void *ctx)
{
    DirStoreCounters c;
    for (const auto &d : *view(ctx).dirs)
        if (const TwoBitDirectory *tb = d->twoBitDir())
            c.add(*tb);
    return c;
}

} // namespace

void
registerTimedMetrics(MetricRegistry &reg, const TimedTelemetryView &v)
{
    const void *ctx = &v;
    const auto counter = MetricKind::Counter;
    const auto gauge = MetricKind::Gauge;

    // Progress: completed references (ProgressMeter reads this name).
    reg.add("refs.completed", counter,
            +[](const void *c) {
                std::uint64_t s = 0;
                for (const std::uint64_t *p : view(c).completed)
                    s += *p;
                return s;
            },
            ctx);

    // Event-kernel occupancy.
    reg.add("kernel.executed", counter,
            +[](const void *c) {
                std::uint64_t s = 0;
                for (const EventQueue *q : view(c).queues)
                    s += q->executed();
                return s;
            },
            ctx);
    reg.add("kernel.pending", gauge,
            +[](const void *c) {
                std::uint64_t s = 0;
                for (const EventQueue *q : view(c).queues)
                    s += q->pending();
                return s;
            },
            ctx);

    // Network utilisation.  Message counts sum over the per-engine
    // networks; contention cycles come from the single network that
    // owns them.
    reg.add("net.messages", counter,
            +[](const void *c) {
                std::uint64_t s = 0;
                for (const TimedNetwork *n : view(c).nets)
                    s += n->messagesSent();
                return s;
            },
            ctx);
    reg.add("net.broadcasts", counter,
            +[](const void *c) {
                std::uint64_t s = 0;
                for (const TimedNetwork *n : view(c).nets)
                    s += n->broadcastsSent();
                return s;
            },
            ctx);
    reg.add("net.data_messages", counter,
            +[](const void *c) {
                std::uint64_t s = 0;
                for (const TimedNetwork *n : view(c).nets)
                    s += n->dataMessages();
                return s;
            },
            ctx);
    reg.add("net.port_wait_cycles", counter,
            +[](const void *c) {
                return view(c).contention->portWaitCycles();
            },
            ctx);
    reg.add("net.bus_busy_cycles", counter,
            +[](const void *c) {
                return view(c).contention->busBusyCycles();
            },
            ctx);

    // Per-cache protocol activity (summed over caches).
    reg.add("cache.read_hits", counter,
            &cacheSum<&CacheCtrlStats::readHits>, ctx);
    reg.add("cache.write_hits", counter,
            &cacheSum<&CacheCtrlStats::writeHits>, ctx);
    reg.add("cache.read_misses", counter,
            &cacheSum<&CacheCtrlStats::readMisses>, ctx);
    reg.add("cache.write_misses", counter,
            &cacheSum<&CacheCtrlStats::writeMisses>, ctx);
    reg.add("cache.mrequests", counter,
            &cacheSum<&CacheCtrlStats::mrequests>, ctx);
    reg.add("cache.mrequest_conversions", counter,
            &cacheSum<&CacheCtrlStats::mrequestConversions>, ctx);
    reg.add("cache.invalidations_applied", counter,
            &cacheSum<&CacheCtrlStats::invalidationsApplied>, ctx);
    reg.add("cache.queries_answered", counter,
            &cacheSum<&CacheCtrlStats::queriesAnswered>, ctx);
    reg.add("cache.writebacks_sent", counter,
            &cacheSum<&CacheCtrlStats::writebacksSent>, ctx);
    reg.add("cache.stolen_cycles", counter,
            &cacheSum<&CacheCtrlStats::stolenCycles>, ctx);
    reg.add("cache.filtered_cmds", counter,
            &cacheSum<&CacheCtrlStats::filteredCmds>, ctx);

    // Controller activity (summed over modules).  grants_false is the
    // §4.2 useless-command numerator: MGRANTED(false) round trips that
    // did no sharing work.
    reg.add("dir.requests", counter,
            &dirSum<&DirCtrlStats::requests>, ctx);
    reg.add("dir.mrequests", counter,
            &dirSum<&DirCtrlStats::mrequests>, ctx);
    reg.add("dir.broad_invs", counter,
            &dirSum<&DirCtrlStats::broadInvs>, ctx);
    reg.add("dir.broad_queries", counter,
            &dirSum<&DirCtrlStats::broadQueries>, ctx);
    reg.add("dir.directed_invs", counter,
            &dirSum<&DirCtrlStats::directedInvs>, ctx);
    reg.add("dir.purges", counter, &dirSum<&DirCtrlStats::purges>,
            ctx);
    reg.add("dir.grants_true", counter,
            &dirSum<&DirCtrlStats::grantsTrue>, ctx);
    reg.add("dir.grants_false", counter,
            &dirSum<&DirCtrlStats::grantsFalse>, ctx);
    reg.add("dir.mreq_deleted", counter,
            &dirSum<&DirCtrlStats::mreqDeleted>, ctx);
    reg.add("dir.queue_depth", gauge,
            +[](const void *c) {
                std::uint64_t s = 0;
                for (const auto &d : *view(c).dirs)
                    s += d->queueDepth();
                return s;
            },
            ctx);

    // Tiered directory storage: occupancy gauges + movement counters.
    reg.add("dirstore.resident_bytes", gauge,
            +[](const void *c) { return dirStoreAgg(c).residentBytes; },
            ctx);
    reg.add("dirstore.compressed_bytes", gauge,
            +[](const void *c) {
                return dirStoreAgg(c).compressedBytes;
            },
            ctx);
    reg.add("dirstore.segment_bytes", gauge,
            +[](const void *c) { return dirStoreAgg(c).segmentBytes; },
            ctx);
    reg.add("dirstore.hot_pages", gauge,
            +[](const void *c) { return dirStoreAgg(c).hotPages; },
            ctx);
    reg.add("dirstore.cold_pages", gauge,
            +[](const void *c) { return dirStoreAgg(c).coldPages; },
            ctx);
    reg.add("dirstore.disk_pages", gauge,
            +[](const void *c) { return dirStoreAgg(c).diskPages; },
            ctx);
    reg.add("dirstore.compressions", counter,
            +[](const void *c) { return dirStoreAgg(c).compressions; },
            ctx);
    reg.add("dirstore.decompressions", counter,
            +[](const void *c) {
                return dirStoreAgg(c).decompressions;
            },
            ctx);
}

} // namespace dir2b
