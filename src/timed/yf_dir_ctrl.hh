/**
 * @file
 * Timed Yen-Fu directory controller (full map + exclusive-clean;
 * paper §2.4.3).
 *
 * Because caches may silently upgrade an exclusive-clean copy, the
 * controller's modified bit would always be suspect for sole-holder
 * blocks — so this design drops it entirely and keeps only the
 * presence vector, with the rule:
 *
 *   sole holder      => possibly modified  => PURGE on remote access
 *                       (the purge is answered dirty OR clean);
 *   multiple holders => all copies clean   => directed INVALIDATEs.
 *
 * This is the resolution of the synchronization problems the paper
 * says were "not fully resolved in [10]": every race reduces to the
 * machinery already proven for the other controllers (put
 * consumption — here including clean EJECT(read)s — plus the INVACK
 * barrier), and a PURGE(write) that catches a pending MREQUEST
 * converts it exactly like a BROADINV.
 */

#ifndef DIR2B_TIMED_YF_DIR_CTRL_HH
#define DIR2B_TIMED_YF_DIR_CTRL_HH

#include "timed/dir_ctrl_base.hh"
#include "util/bitset.hh"
#include "util/flat_map.hh"

namespace dir2b
{

/** Timed Yen-Fu directory controller. */
class YfDirCtrl : public TimedDirCtrl
{
  public:
    YfDirCtrl(ModuleId id, const TimedConfig &cfg, EventQueue &eq,
              TimedNetwork &net)
        : TimedDirCtrl(id, cfg, eq, net)
    {}

  protected:
    void process(const Message &msg) override;
    void onPutResolved(Addr a, ProcId requester, RW rw,
                       const Message &answer) override;
    bool ejectReadAnswersWait() const override { return true; }

  private:
    DynBitset &entryFor(Addr a);

    void processRequest(const Message &msg);
    void processMRequest(const Message &msg);
    void processEject(const Message &msg);

    /** Directed PURGE(a, requester, rw) to the sole holder. */
    void purgeSoleHolder(Addr a, ProcId requester, RW rw);

    void invalidateHolders(Addr a, DynBitset &e, ProcId except,
                           std::function<void()> onAcked);

    FlatMap<Addr, DynBitset> map_;
};

} // namespace dir2b

#endif // DIR2B_TIMED_YF_DIR_CTRL_HH
