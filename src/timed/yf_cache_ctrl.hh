/**
 * @file
 * Timed cache controller for the Yen-Fu scheme (full map + local
 * exclusive-clean state; paper §2.4.3).
 *
 * The paper notes the scheme's synchronization problems were "not
 * fully resolved in [10]"; this controller resolves them:
 *
 *  - a read-miss fill may arrive as *exclusive-clean* (the controller
 *    grants it when no other cache holds the block);
 *  - a write hit on an Exclusive line upgrades silently — no
 *    MREQUEST, no messages (the scheme's entire payoff);
 *  - consequently the controller cannot trust its modified bit for
 *    sole-holder blocks and PURGEs them on any remote request; the
 *    purge must be answered whether the copy turned out dirty or
 *    clean (PutData with granted = wasDirty), and a PURGE(write) that
 *    catches a pending MREQUEST converts it exactly like a BROADINV
 *    (§3.2.5's rule transplanted).
 */

#ifndef DIR2B_TIMED_YF_CACHE_CTRL_HH
#define DIR2B_TIMED_YF_CACHE_CTRL_HH

#include "timed/cache_ctrl.hh"

namespace dir2b
{

/** Timed Yen-Fu cache controller. */
class YfCacheCtrl : public TwoBitCacheCtrl
{
  public:
    using TwoBitCacheCtrl::TwoBitCacheCtrl;

    void receive(unsigned src, const Message &msg) override;

    /** Silent Exclusive -> Modified upgrades performed. */
    std::uint64_t silentUpgrades() const { return silentUpgrades_; }

  protected:
    bool
    tryLocalWrite(CacheLine *l, Value wval) override
    {
        if (l->state != LineState::Exclusive)
            return false;
        l->state = LineState::Modified;
        l->value = wval;
        ++silentUpgrades_;
        return true;
    }

    LineState
    readFillState(const Message &msg) const override
    {
        return msg.granted ? LineState::Exclusive : LineState::Shared;
    }

  private:
    /** PURGE(a, requester, rw): must be answered dirty OR clean. */
    void onPurge(const Message &msg);

    std::uint64_t silentUpgrades_ = 0;
};

} // namespace dir2b

#endif // DIR2B_TIMED_YF_CACHE_CTRL_HH
