#include "timed/cache_ctrl.hh"

#include "util/logging.hh"

namespace dir2b
{

TwoBitCacheCtrl::TwoBitCacheCtrl(ProcId id, const TimedConfig &cfg,
                                 EventQueue &eq, TimedNetwork &net)
    : id_(id), cfg_(cfg), eq_(eq), net_(net), cache_([&] {
          CacheGeometry g = cfg.cacheGeom;
          g.seed = g.seed * 0x9e3779b9ULL + id + 1;
          return g;
      }())
{
    if (cfg.snoopFilter)
        snoop_.emplace();
#if DIR2B_TRACE
    if ((trc_ = cfg.tracer))
        trk_ = trc_->addTrack("cache" + std::to_string(id));
#endif
}

unsigned
TwoBitCacheCtrl::homeEndpoint(Addr a) const
{
    return cfg_.numProcs + static_cast<unsigned>(a % cfg_.numModules);
}

void
TwoBitCacheCtrl::sendToHome(Addr a, Message msg)
{
    net_.send(id_, homeEndpoint(a), msg);
}

void
TwoBitCacheCtrl::fillLine(Addr a, LineState st, Value v)
{
    cache_.fill(a, st, v);
    if (snoop_)
        snoop_->insert(a);
}

void
TwoBitCacheCtrl::dropLine(Addr a)
{
    if (cache_.invalidate(a) && snoop_)
        snoop_->erase(a);
}

void
TwoBitCacheCtrl::complete(Value v)
{
    DIR2B_ASSERT(txn_, "completing with no transaction");
    DIR2B_TRC(trc_, end(eq_.now(), trk_, txn_->op));
    stats_.latency.sample(eq_.now() - txn_->start);
    Done done = std::move(txn_->done);
    txn_.reset();
    done(v);
}

void
TwoBitCacheCtrl::processorRequest(const MemRef &ref, Value wval,
                                  Done done)
{
    DIR2B_DEBUG("t=", eq_.now(), " C", id_, " proc ", toString(ref));
    DIR2B_ASSERT(!txn_, "cache ", id_, " already has an outstanding "
                 "transaction");
    DIR2B_ASSERT(ref.proc == id_, "reference routed to wrong cache");
    txn_ = Txn{Phase::AwaitData, ref, wval, std::move(done), eq_.now()};

    CacheLine *l = cache_.lookup(ref.addr);
    if (l) {
        if (!ref.write) {
            ++stats_.readHits;
            txn_->op = "read_hit";
            DIR2B_TRC(trc_, begin(eq_.now(), trk_, txn_->op, ref.addr));
            txn_->phase = Phase::Completing;
            const Value v = l->value;
            eq_.schedule(cfg_.cacheLatency, [this, v] { complete(v); });
            return;
        }
        if (l->dirty()) {
            ++stats_.writeHits;
            txn_->op = "write_hit";
            DIR2B_TRC(trc_, begin(eq_.now(), trk_, txn_->op, ref.addr));
            txn_->phase = Phase::Completing;
            l->value = wval;
            eq_.schedule(cfg_.cacheLatency,
                         [this, wval] { complete(wval); });
            return;
        }
        if (tryLocalWrite(l, wval)) {
            // Silent upgrade (Yen-Fu): no global transaction at all.
            ++stats_.writeHits;
            txn_->op = "write_hit";
            DIR2B_TRC(trc_, begin(eq_.now(), trk_, txn_->op, ref.addr));
            txn_->phase = Phase::Completing;
            eq_.schedule(cfg_.cacheLatency,
                         [this, wval] { complete(wval); });
            return;
        }

        // §3.2.4: write hit on an unmodified block -> MREQUEST.
        ++stats_.writeHits;
        ++stats_.mrequests;
        txn_->op = "upgrade";
        txn_->phaseStart = eq_.now();
        DIR2B_TRC(trc_, begin(eq_.now(), trk_, txn_->op, ref.addr));
        DIR2B_TRC(trc_, begin(eq_.now(), trk_, "await_grant", ref.addr));
        txn_->phase = Phase::AwaitGrant;
        Message m;
        m.kind = MsgKind::MRequest;
        m.proc = id_;
        m.addr = ref.addr;
        sendToHome(ref.addr, m);
        return;
    }

    if (ref.write) {
        ++stats_.writeMisses;
        txn_->op = "write_miss";
    } else {
        ++stats_.readMisses;
        txn_->op = "read_miss";
    }
    DIR2B_TRC(trc_, begin(eq_.now(), trk_, txn_->op, ref.addr));
    startMiss();
}

void
TwoBitCacheCtrl::startMiss()
{
    const MemRef &ref = txn_->ref;

    // §3.2.1 replacement.
    CacheLine &victim = cache_.victimFor(ref.addr);
    if (victim.valid()) {
        Message ej;
        ej.kind = MsgKind::Eject;
        ej.proc = id_;
        ej.addr = victim.addr;
        if (victim.dirty()) {
            ej.rw = RW::Write;
            ej.data = victim.value;
            ++stats_.writebacksSent;
        } else {
            ej.rw = RW::Read;
        }
        sendToHome(victim.addr, ej);
        dropLine(victim.addr);
    }

    Message rq;
    rq.kind = MsgKind::Request;
    rq.proc = id_;
    rq.addr = ref.addr;
    rq.rw = ref.write ? RW::Write : RW::Read;
    txn_->phase = Phase::AwaitData;
    txn_->phaseStart = eq_.now();
    DIR2B_TRC(trc_, begin(eq_.now(), trk_, "await_data", ref.addr));
    sendToHome(ref.addr, rq);
}

void
TwoBitCacheCtrl::convertToWriteMiss()
{
    // The paper's rule: treat the BROADINV as MGRANTED(k, false); the
    // processor's next action is REQUEST(k, a, "write").  Our copy was
    // just invalidated, so the frame is free and no EJECT is needed.
    ++stats_.mrequestConversions;
    stats_.grantWait.sample(eq_.now() - txn_->phaseStart);
    DIR2B_TRC(trc_, end(eq_.now(), trk_, "await_grant"));
    DIR2B_TRC(trc_, instant(eq_.now(), trk_, "convert_to_write_miss",
                            txn_->ref.addr));
    Message rq;
    rq.kind = MsgKind::Request;
    rq.proc = id_;
    rq.addr = txn_->ref.addr;
    rq.rw = RW::Write;
    txn_->phase = Phase::AwaitData;
    txn_->phaseStart = eq_.now();
    DIR2B_TRC(trc_,
              begin(eq_.now(), trk_, "await_data", txn_->ref.addr));
    sendToHome(txn_->ref.addr, rq);
}

void
TwoBitCacheCtrl::receive(unsigned, const Message &msg)
{
    DIR2B_DEBUG("t=", eq_.now(), " C", id_, " recv ", toString(msg));
    switch (msg.kind) {
      case MsgKind::GetData:
        onGetData(msg);
        return;
      case MsgKind::MGranted:
        onMGranted(msg);
        return;
      case MsgKind::BroadInv:
        onBroadInv(msg);
        return;
      case MsgKind::BroadQuery:
        onBroadQuery(msg);
        return;
      default:
        DIR2B_PANIC("cache ", id_, " received unexpected ",
                    toString(msg));
    }
}

void
TwoBitCacheCtrl::onGetData(const Message &msg)
{
    DIR2B_ASSERT(txn_ && txn_->phase == Phase::AwaitData &&
                     txn_->ref.addr == msg.addr,
                 "cache ", id_, " got unsolicited data for block ",
                 msg.addr);
    stats_.dataWait.sample(eq_.now() - txn_->phaseStart);
    DIR2B_TRC(trc_, end(eq_.now(), trk_, "await_data"));
    const bool write = txn_->ref.write;
    const Value v = write ? txn_->wval : msg.data;
    fillLine(msg.addr,
             write ? LineState::Modified : readFillState(msg), v);
    txn_->phase = Phase::Completing;
    eq_.schedule(cfg_.cacheLatency, [this, v] { complete(v); });
}

void
TwoBitCacheCtrl::onMGranted(const Message &msg)
{
    if (!txn_ || txn_->phase != Phase::AwaitGrant ||
        txn_->ref.addr != msg.addr) {
        // Stale reply: the BROADINV that raced us already converted
        // this transaction into a write miss.
        ++stats_.staleGrantsIgnored;
        DIR2B_TRC(trc_,
                  instant(eq_.now(), trk_, "stale_grant", msg.addr));
        return;
    }
    stats_.grantWait.sample(eq_.now() - txn_->phaseStart);
    DIR2B_TRC(trc_, end(eq_.now(), trk_, "await_grant"));
    DIR2B_ASSERT(msg.granted,
                 "MGRANTED(false) while still holding a valid copy of ",
                 msg.addr, ": the BROADINV must arrive first (FIFO)");
    CacheLine *l = cache_.lookup(msg.addr, false);
    DIR2B_ASSERT(l && !l->dirty(), "grant for block ", msg.addr,
                 " without a clean local copy");
    l->state = LineState::Modified;
    l->value = txn_->wval;
    // Leave AwaitGrant *now*: a Purge/Invalidate arriving during the
    // one-cycle completion window must not convert this transaction
    // (the write is already serialised at the controller).
    txn_->phase = Phase::Completing;
    const Value v = txn_->wval;
    eq_.schedule(cfg_.cacheLatency, [this, v] { complete(v); });
}

void
TwoBitCacheCtrl::onBroadInv(const Message &msg)
{
    // The parameter k of BROADINV(a,k) names the cache that must NOT
    // invalidate; the network already excludes it, but check anyway
    // (§3.2.4: "If it were not there cache k would invalidate the
    // block it wants to modify!").
    if (msg.proc == id_)
        return;

    // Every recipient acknowledges after taking its action (sent at
    // the end of this handler); the ack necessarily follows any
    // converted REQUEST on our FIFO link to the controller, which is
    // what lets the controller flush our stale MREQUEST.
    if (snoop_ && !snoop_->check(msg.addr)) {
        DIR2B_ASSERT(!cache_.peek(msg.addr),
                     "duplicate directory out of sync: filter absorbed "
                     "BROADINV for resident block ", msg.addr);
        ++stats_.filteredCmds;
        DIR2B_TRC(trc_,
                  instant(eq_.now(), trk_, "filtered", msg.addr));
        sendInvAck(msg.addr);
        return;
    }
    ++stats_.stolenCycles;

    if (txn_ && txn_->phase == Phase::AwaitGrant &&
        txn_->ref.addr == msg.addr) {
        // §3.2.5: treat as MGRANTED(id_, false).
        dropLine(msg.addr);
        ++stats_.invalidationsApplied;
        convertToWriteMiss();
        sendInvAck(msg.addr);
        return;
    }

    CacheLine *l = cache_.lookup(msg.addr, false);
    if (l) {
        DIR2B_ASSERT(!l->dirty(), "BROADINV hit a dirty copy of ",
                     msg.addr, " in cache ", id_);
        dropLine(msg.addr);
        ++stats_.invalidationsApplied;
        DIR2B_TRC(trc_,
                  instant(eq_.now(), trk_, "invalidated", msg.addr));
    }
    sendInvAck(msg.addr);
}

void
TwoBitCacheCtrl::sendInvAck(Addr a)
{
    Message ack;
    ack.kind = MsgKind::InvAck;
    ack.proc = id_;
    ack.addr = a;
    sendToHome(a, ack);
}

void
TwoBitCacheCtrl::onBroadQuery(const Message &msg)
{
    if (msg.proc == id_)
        return;

    if (snoop_ && !snoop_->check(msg.addr)) {
        DIR2B_ASSERT(!cache_.peek(msg.addr),
                     "duplicate directory out of sync: filter absorbed "
                     "BROADQUERY for resident block ", msg.addr);
        ++stats_.filteredCmds;
        return;
    }
    ++stats_.stolenCycles;

    CacheLine *l = cache_.lookup(msg.addr, false);
    if (!l || !l->dirty()) {
        // Not the owner: the broadcast was a (useless) check.  A block
        // we ejected moments ago is the EJECT-in-flight race; the
        // controller consumes our put when it arrives.
        return;
    }

    ++stats_.queriesAnswered;
    DIR2B_TRC(trc_, instant(eq_.now(), trk_, "query_answered",
                            msg.addr, msg.rw == RW::Write));
    Message put;
    put.kind = MsgKind::PutData;
    put.proc = id_;
    put.addr = msg.addr;
    put.data = l->value;
    sendToHome(msg.addr, put);

    if (msg.rw == RW::Read) {
        // §3.2.2: reset the modified bit, keep a clean copy.
        l->state = LineState::Shared;
    } else {
        // §3.2.3: reset the valid bit.
        dropLine(msg.addr);
        ++stats_.invalidationsApplied;
    }
}

} // namespace dir2b
