/**
 * @file
 * Deferring network proxy for one shard of a sharded timed run.
 *
 * Every cross-entity message in the timed tier travels at least
 * TimedConfig::netLatency ticks, and a shard epoch executes strictly
 * less than one lookahead (= netLatency) beyond the global minimum
 * next-event tick — so no message sent during an epoch can be
 * delivered within it, on ANY shard.  That is the conservative-PDES
 * argument that lets a ShardNet defer every send to the barrier: it
 * books the sender-side statistics and trace instants exactly as the
 * serial network would (the sender's clock reads the same tick), logs
 * the message in the shard's side-effect table, and leaves capacity
 * claiming + delivery scheduling to the barrier's serial-order replay
 * (ShardedTimedSystem::mergeEpoch), which reproduces the serial
 * engine's contention resolution and tie-break keys bit-for-bit.
 */

#ifndef DIR2B_TIMED_SHARD_NET_HH
#define DIR2B_TIMED_SHARD_NET_HH

#include <vector>

#include "timed/timed_net.hh"

namespace dir2b
{

/** One deferred side effect of a shard epoch (consumed at the
 *  barrier, in serial event order). */
struct ShardExternal
{
    enum class Kind : std::uint8_t
    {
        /** A point-to-point send (also each leg of a non-bus
         *  broadcast, exactly as the serial network fans out). */
        Send,
        /** A bus broadcast: one shared-medium transaction delivering
         *  to every listed destination in the same slot. */
        BusBroadcast,
        /** A processor-visible completion awaiting its oracle check
         *  (checks must replay in global completion order). */
        Completion,
    };

    Kind kind = Kind::Send;
    /* Send / BusBroadcast */
    unsigned src = 0;
    unsigned dst = 0;
    Message msg{};
    std::vector<unsigned> dsts; ///< BusBroadcast fan-out, in send order
    /* Completion */
    ProcId proc = 0;
    Addr addr = 0;
    Value value = 0;
    bool isWrite = false;
};

/** TimedNetwork that defers delivery to the epoch barrier. */
class ShardNet final : public TimedNetwork
{
  public:
    ShardNet(EventQueue &eq, unsigned endpoints, Tick latency,
             NetKind kind, TraceRecorder *trc,
             std::vector<ShardExternal> &externals)
        : TimedNetwork(eq, endpoints, latency, kind, trc),
          externals_(externals)
    {
    }

    void
    send(unsigned src, unsigned dst, Message msg) override
    {
        // The destination may live on another shard, so unlike the
        // serial network only the endpoint RANGE is checked here;
        // deliver() re-checks the handler on the owning shard.
        DIR2B_ASSERT(dst < handlers_.size(),
                     "send to unknown endpoint ", dst);
        ++messages_;
        if (msg.kind == MsgKind::GetData ||
            msg.kind == MsgKind::PutData)
            ++dataMsgs_;
        DIR2B_TRC(trc_, instant(eq_.now(), trk_, mnemonic(msg.kind),
                                msg.addr, src, dst));

        eq_.logExternalCall(
            static_cast<std::uint32_t>(externals_.size()));
        ShardExternal ex;
        ex.kind = ShardExternal::Kind::Send;
        ex.src = src;
        ex.dst = dst;
        ex.msg = msg;
        externals_.push_back(std::move(ex));
    }

    void
    broadcast(unsigned src, const std::vector<unsigned> &dsts,
              Message msg) override
    {
        ++broadcasts_;
        msg.broadcast = true;

        if (kind_ == NetKind::Bus) {
            // One bus transaction, every listener in the same slot —
            // logged as a single record so the barrier claims the bus
            // once, exactly like the serial broadcast.
            for (unsigned dst : dsts) {
                DIR2B_ASSERT(dst < handlers_.size(),
                             "broadcast to unknown endpoint ", dst);
                ++messages_;
                DIR2B_TRC(trc_, instant(eq_.now(), trk_,
                                        mnemonic(msg.kind), msg.addr,
                                        src, dst));
            }
            eq_.logExternalCall(
                static_cast<std::uint32_t>(externals_.size()));
            ShardExternal ex;
            ex.kind = ShardExternal::Kind::BusBroadcast;
            ex.src = src;
            ex.msg = msg;
            ex.dsts = dsts;
            externals_.push_back(std::move(ex));
            return;
        }

        for (unsigned dst : dsts)
            send(src, dst, msg);
    }

  private:
    std::vector<ShardExternal> &externals_;
};

} // namespace dir2b

#endif // DIR2B_TIMED_SHARD_NET_HH
