#include "timed/timed_system.hh"

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "sim/stats.hh"

#include "timed/dir_ctrl.hh"
#include "timed/fm_cache_ctrl.hh"
#include "timed/fm_dir_ctrl.hh"
#include "timed/yf_cache_ctrl.hh"
#include "timed/yf_dir_ctrl.hh"
#include "util/logging.hh"

namespace dir2b
{

TimedSystem::TimedSystem(const TimedConfig &cfg) : cfg_(cfg)
{
    if (cfg_.numProcs == 0 || cfg_.numModules == 0)
        DIR2B_FATAL("timed system needs processors and modules");

    const unsigned endpoints = cfg_.numProcs + cfg_.numModules;
    net_ = std::make_unique<TimedNetwork>(eq_, endpoints,
                                          cfg_.netLatency,
                                          cfg_.network, cfg_.tracer);

    caches_.reserve(cfg_.numProcs);
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        switch (cfg_.protocol) {
          case TimedProto::FullMap:
            caches_.push_back(std::make_unique<FmCacheCtrl>(
                p, cfg_, eq_, *net_));
            break;
          case TimedProto::YenFu:
            caches_.push_back(std::make_unique<YfCacheCtrl>(
                p, cfg_, eq_, *net_));
            break;
          case TimedProto::TwoBit:
            caches_.push_back(std::make_unique<TwoBitCacheCtrl>(
                p, cfg_, eq_, *net_));
            break;
        }
        TwoBitCacheCtrl *cc = caches_.back().get();
        net_->connect(p, [cc](unsigned src, const Message &m) {
            cc->receive(src, m);
        });
    }

    dirs_.reserve(cfg_.numModules);
    for (ModuleId m = 0; m < cfg_.numModules; ++m) {
        switch (cfg_.protocol) {
          case TimedProto::FullMap:
            dirs_.push_back(std::make_unique<FmDirCtrl>(
                m, cfg_, eq_, *net_));
            break;
          case TimedProto::YenFu:
            dirs_.push_back(std::make_unique<YfDirCtrl>(
                m, cfg_, eq_, *net_));
            break;
          case TimedProto::TwoBit:
            dirs_.push_back(std::make_unique<TwoBitDirCtrl>(
                m, cfg_, eq_, *net_));
            break;
        }
        TimedDirCtrl *dc = dirs_.back().get();
        net_->connect(cfg_.numProcs + m,
                      [dc](unsigned src, const Message &msg) {
                          dc->receive(src, msg);
                      });
    }
}

TimedSystem::~TimedSystem() = default;

void
TimedSystem::issueNext(ProcId p)
{
    if (remaining_[p] == 0)
        return;
    auto ref = source_(p);
    if (!ref)
        return;
    DIR2B_ASSERT(ref->proc == p, "source produced reference for ",
                 ref->proc, " when asked for ", p);
    --remaining_[p];

    const bool isWrite = ref->write;
    const Addr a = ref->addr;
    const Value wval = isWrite ? oracle_.freshValue() : 0;

    caches_[p]->processorRequest(*ref, wval,
                                 [this, p, a, isWrite, wval](Value v) {
        if (isWrite) {
            DIR2B_ASSERT(v == wval, "write completion value mismatch");
            oracle_.onWriteComplete(p, a, v);
        } else {
            oracle_.onReadComplete(p, a, v);
        }
        ++completed_;
        eq_.schedule(cfg_.thinkTime, [this, p] { issueNext(p); });
    });
}

TimedRunResult
TimedSystem::run(const ProcSource &source, std::uint64_t refsPerProc)
{
    source_ = source;
    remaining_.assign(cfg_.numProcs, refsPerProc);

    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        // Stagger the first issues by one tick to avoid an artificial
        // fully-synchronous start (the §3.2.5 races still occur).
        eq_.scheduleAt(p % 3, [this, p] { issueNext(p); });
    }

    if (!eq_.run(cfg_.maxEvents)) {
        DIR2B_FATAL("timed run exceeded ", cfg_.maxEvents,
                    " events: protocol livelock? (",
                    completed_, " refs completed)");
    }

    for (ModuleId m = 0; m < cfg_.numModules; ++m) {
        DIR2B_ASSERT(dirs_[m]->quiesced(), "controller ", m,
                     " did not quiesce: ", dirs_[m]->stuckReport());
    }
    checkFinalState();

    TimedRunResult r;
    r.finalTick = eq_.now();
    r.refsCompleted = completed_;
    r.eventsExecuted = eq_.executed();
    r.netMessages = net_->messagesSent();
    r.broadcasts = net_->broadcastsSent();
    r.netWaitCycles = net_->portWaitCycles();
    r.readsChecked = oracle_.readsChecked();
    r.writesRecorded = oracle_.writesRecorded();

    double latSum = 0.0;
    std::uint64_t latCount = 0;
    for (const auto &cc : caches_) {
        const auto &s = cc->stats();
        r.stolenCycles += s.stolenCycles.value();
        r.filteredCmds += s.filteredCmds.value();
        r.mrequestConversions += s.mrequestConversions.value();
        latSum += s.latency.mean() *
                  static_cast<double>(s.latency.samples());
        latCount += s.latency.samples();
    }
    r.avgLatency = latCount ? latSum / static_cast<double>(latCount)
                            : 0.0;
    for (const auto &dc : dirs_) {
        const auto &s = dc->stats();
        r.mreqDeleted += s.mreqDeleted.value();
        r.putsConsumed += s.putsConsumed.value();
        r.putsAwaited += s.putsAwaited.value();
        r.grantsFalse += s.grantsFalse.value();
    }
    const Histogram lat =
        mergedCacheHistogram(&CacheCtrlStats::latency);
    r.latencyP50 = lat.p50();
    r.latencyP95 = lat.p95();
    r.latencyP99 = lat.p99();
    return r;
}

void
TimedSystem::dumpStats(std::ostream &os) const
{
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        const CacheCtrlStats &s = caches_[p]->stats();
        StatGroup g("cache" + std::to_string(p));
        g.addCounter("read_hits", &s.readHits);
        g.addCounter("write_hits", &s.writeHits);
        g.addCounter("read_misses", &s.readMisses);
        g.addCounter("write_misses", &s.writeMisses);
        g.addCounter("mrequests", &s.mrequests);
        g.addCounter("mreq_conversions", &s.mrequestConversions,
                     "BROADINV treated as MGRANTED(false)");
        g.addCounter("stale_grants_ignored", &s.staleGrantsIgnored);
        g.addCounter("stolen_cycles", &s.stolenCycles,
                     "cache cycles taken by remote commands");
        g.addCounter("filtered_cmds", &s.filteredCmds,
                     "absorbed by the duplicate directory");
        g.addCounter("invalidations", &s.invalidationsApplied);
        g.addCounter("queries_answered", &s.queriesAnswered);
        g.addCounter("writebacks", &s.writebacksSent);
        g.addHistogram("latency", &s.latency,
                       "request latency, cycles");
        g.addHistogram("grant_wait", &s.grantWait,
                       "MREQUEST to grant/conversion, cycles");
        g.addHistogram("data_wait", &s.dataWait,
                       "REQUEST to data arrival, cycles");
        g.dump(os);
    }
    for (ModuleId m = 0; m < cfg_.numModules; ++m) {
        const DirCtrlStats &s = dirs_[m]->stats();
        StatGroup g("ctrl" + std::to_string(m));
        g.addCounter("requests", &s.requests);
        g.addCounter("mrequests", &s.mrequests);
        g.addCounter("ejects_data", &s.ejectsData);
        g.addCounter("ejects_ignored", &s.ejectsIgnored);
        g.addCounter("broad_invs", &s.broadInvs);
        g.addCounter("broad_queries", &s.broadQueries);
        g.addCounter("directed_invs", &s.directedInvs);
        g.addCounter("purges", &s.purges);
        g.addCounter("grants_true", &s.grantsTrue);
        g.addCounter("grants_false", &s.grantsFalse);
        g.addCounter("mreq_deleted", &s.mreqDeleted,
                     "stale MREQUESTs deleted from the queue");
        g.addCounter("puts_consumed", &s.putsConsumed,
                     "queued EJECT(write) used as put()");
        g.addCounter("puts_awaited", &s.putsAwaited);
        g.addHistogram("queue_depth", &s.queueDepth);
        g.addHistogram("queue_wait", &s.queueWait,
                       "command queue residency, cycles");
        g.addHistogram("ack_wait", &s.ackWait,
                       "invalidation-ack barrier wait, cycles");
        g.addHistogram("put_wait", &s.putWait,
                       "query to answering put, cycles");
        g.dump(os);
    }
}

void
TimedSystem::checkFinalState()
{
    // Gather the unique dirty copy (if any) per block; clean copies
    // must equal memory at quiesce (every downgrade wrote back).
    std::unordered_map<Addr, Value> dirty;
    std::unordered_map<Addr, unsigned> dirtyCount;

    auto memValue = [&](Addr a) {
        const auto m = static_cast<ModuleId>(a % cfg_.numModules);
        return dirs_[m]->memory().peek(a);
    };

    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        caches_[p]->forEachValidLine([&](const CacheLine &l) {
            if (l.dirty()) {
                dirty[l.addr] = l.value;
                ++dirtyCount[l.addr];
            } else {
                DIR2B_ASSERT(l.value == memValue(l.addr),
                             "clean copy of block ", l.addr,
                             " in cache ", p,
                             " differs from memory at quiesce");
            }
        });
    }
    for (const auto &[a, n] : dirtyCount) {
        DIR2B_ASSERT(n == 1, "block ", a, " dirty in ", n,
                     " caches at quiesce");
    }

    // Every written block's end value (dirty copy, else memory) must
    // be the newest version the oracle recorded.
    oracle_.forEachWrittenBlock([&](Addr a) {
        const auto it = dirty.find(a);
        oracle_.checkFinal(a, it != dirty.end() ? it->second
                                                : memValue(a));
    });
}

} // namespace dir2b
