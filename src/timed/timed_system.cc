#include "timed/timed_system.hh"

#include "sim/stats.hh"

#include "timed/dir_ctrl.hh"
#include "timed/timed_audit.hh"
#include "timed/fm_cache_ctrl.hh"
#include "timed/fm_dir_ctrl.hh"
#include "timed/yf_cache_ctrl.hh"
#include "timed/yf_dir_ctrl.hh"
#include "obs/telemetry.hh"
#include "util/logging.hh"

namespace dir2b
{

TimedSystem::TimedSystem(const TimedConfig &cfg) : cfg_(cfg)
{
    if (cfg_.numProcs == 0 || cfg_.numModules == 0)
        DIR2B_FATAL("timed system needs processors and modules");

    const unsigned endpoints = cfg_.numProcs + cfg_.numModules;
    net_ = std::make_unique<TimedNetwork>(eq_, endpoints,
                                          cfg_.netLatency,
                                          cfg_.network, cfg_.tracer);

    caches_.reserve(cfg_.numProcs);
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        switch (cfg_.protocol) {
          case TimedProto::FullMap:
            caches_.push_back(std::make_unique<FmCacheCtrl>(
                p, cfg_, eq_, *net_));
            break;
          case TimedProto::YenFu:
            caches_.push_back(std::make_unique<YfCacheCtrl>(
                p, cfg_, eq_, *net_));
            break;
          case TimedProto::TwoBit:
            caches_.push_back(std::make_unique<TwoBitCacheCtrl>(
                p, cfg_, eq_, *net_));
            break;
        }
        TwoBitCacheCtrl *cc = caches_.back().get();
        net_->connect(p, [cc](unsigned src, const Message &m) {
            cc->receive(src, m);
        });
    }

    dirs_.reserve(cfg_.numModules);
    for (ModuleId m = 0; m < cfg_.numModules; ++m) {
        switch (cfg_.protocol) {
          case TimedProto::FullMap:
            dirs_.push_back(std::make_unique<FmDirCtrl>(
                m, cfg_, eq_, *net_));
            break;
          case TimedProto::YenFu:
            dirs_.push_back(std::make_unique<YfDirCtrl>(
                m, cfg_, eq_, *net_));
            break;
          case TimedProto::TwoBit:
            dirs_.push_back(std::make_unique<TwoBitDirCtrl>(
                m, cfg_, eq_, *net_));
            break;
        }
        TimedDirCtrl *dc = dirs_.back().get();
        net_->connect(cfg_.numProcs + m,
                      [dc](unsigned src, const Message &msg) {
                          dc->receive(src, msg);
                      });
    }
}

TimedSystem::~TimedSystem() = default;

void
TimedSystem::issueNext(ProcId p)
{
    if (remaining_[p] == 0)
        return;
    auto ref = source_(p);
    if (!ref)
        return;
    DIR2B_ASSERT(ref->proc == p, "source produced reference for ",
                 ref->proc, " when asked for ", p);
    --remaining_[p];

    const bool isWrite = ref->write;
    const Addr a = ref->addr;
    const Value wval = isWrite ? oracle_.freshValue() : 0;

    caches_[p]->processorRequest(*ref, wval,
                                 [this, p, a, isWrite, wval](Value v) {
        if (isWrite) {
            DIR2B_ASSERT(v == wval, "write completion value mismatch");
            oracle_.onWriteComplete(p, a, v);
        } else {
            oracle_.onReadComplete(p, a, v);
        }
        ++completed_;
        eq_.schedule(cfg_.thinkTime, [this, p] { issueNext(p); });
    });
}

TimedRunResult
TimedSystem::run(const ProcSource &source, std::uint64_t refsPerProc)
{
    source_ = source;
    remaining_.assign(cfg_.numProcs, refsPerProc);

    TelemetrySampler *sampler = cfg_.sampler;
    if (sampler) {
        telemetryView_.caches = &caches_;
        telemetryView_.dirs = &dirs_;
        telemetryView_.queues = {&eq_};
        telemetryView_.nets = {net_.get()};
        telemetryView_.contention = net_.get();
        telemetryView_.completed = {&completed_};
        registerTimedMetrics(sampler->registry(), telemetryView_);
    }

    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        // Stagger the first issues by one tick to avoid an artificial
        // fully-synchronous start (the §3.2.5 races still occur).
        eq_.scheduleAt(p % 3, [this, p] { issueNext(p); });
    }

    if (!sampler) {
        if (!eq_.run(cfg_.maxEvents)) {
            DIR2B_FATAL("timed run exceeded ", cfg_.maxEvents,
                        " events: protocol livelock? (",
                        completed_, " refs completed)");
        }
    } else {
        // Boundary-clamped chunks: before executing anything at or
        // past tick `next`, every sampling boundary <= next is exact
        // (all events below it executed, none at or above), so flush
        // them; then run the kernel up to the next boundary at most.
        std::uint64_t budget = cfg_.maxEvents;
        for (;;) {
            const Tick next = eq_.nextTickExact();
            if (next == maxTick)
                break;
            sampler->flushUpTo(next);
            if (!eq_.runUntil(sampler->nextBoundary(), budget)) {
                DIR2B_FATAL("timed run exceeded ", cfg_.maxEvents,
                            " events: protocol livelock? (",
                            completed_, " refs completed)");
            }
        }
    }

    for (ModuleId m = 0; m < cfg_.numModules; ++m) {
        DIR2B_ASSERT(dirs_[m]->quiesced(), "controller ", m,
                     " did not quiesce: ", dirs_[m]->stuckReport());
    }
    auditTimedFinalState(caches_, dirs_, oracle_);

    if (sampler)
        sampler->finish(eq_.now());

    return aggregateTimedResult(caches_, dirs_, oracle_, eq_.now(),
                                completed_, eq_.executed(),
                                net_->messagesSent(),
                                net_->broadcastsSent(),
                                net_->portWaitCycles());
}

void
TimedSystem::dumpStats(std::ostream &os) const
{
    dumpTimedStats(os, caches_, dirs_);
}

} // namespace dir2b
