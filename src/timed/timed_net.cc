#include "timed/timed_net.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dir2b
{

TimedNetwork::TimedNetwork(EventQueue &eq, unsigned endpoints,
                           Tick latency, NetKind kind,
                           TraceRecorder *trc)
    : eq_(eq),
      latency_(latency),
      kind_(kind),
      handlers_(endpoints),
      portFreeAt_(endpoints, 0)
{
#if DIR2B_TRACE
    if ((trc_ = trc))
        trk_ = trc_->addTrack("net");
#else
    (void)trc;
#endif
}

void
TimedNetwork::connect(unsigned ep, Handler handler)
{
    DIR2B_ASSERT(ep < handlers_.size(), "connect to unknown endpoint ",
                 ep);
    handlers_[ep] = std::move(handler);
}

Tick
TimedNetwork::claimDeliveryAt(unsigned dst, Tick sentAt)
{
    Tick deliverAt = sentAt + latency_;
    switch (kind_) {
      case NetKind::Ideal:
        break;
      case NetKind::Crossbar: {
        const Tick free = portFreeAt_[dst];
        if (free > deliverAt) {
            portWait_.inc(free - deliverAt);
            deliverAt = free;
        }
        portFreeAt_[dst] = deliverAt + 1;
        break;
      }
      case NetKind::Bus: {
        if (busFreeAt_ > deliverAt) {
            portWait_.inc(busFreeAt_ - deliverAt);
            deliverAt = busFreeAt_;
        }
        busFreeAt_ = deliverAt + 1;
        ++busBusy_;
        break;
      }
    }
    return deliverAt;
}

void
TimedNetwork::send(unsigned src, unsigned dst, Message msg)
{
    DIR2B_ASSERT(dst < handlers_.size() && handlers_[dst],
                 "send to unconnected endpoint ", dst);
    ++messages_;
    if (msg.kind == MsgKind::GetData || msg.kind == MsgKind::PutData)
        ++dataMsgs_;
    DIR2B_TRC(trc_, instant(eq_.now(), trk_, mnemonic(msg.kind),
                            msg.addr, src, dst));

    const Tick deliverAt = claimDeliveryAt(dst, eq_.now());
    eq_.scheduleAt(deliverAt, [this, src, dst, msg] {
        handlers_[dst](src, msg);
    });
}

void
TimedNetwork::broadcast(unsigned src, const std::vector<unsigned> &dsts,
                        Message msg)
{
    ++broadcasts_;
    msg.broadcast = true;

    if (kind_ == NetKind::Bus) {
        // A shared medium delivers a broadcast in ONE bus transaction:
        // every listener observes the same slot — the free fan-out
        // that makes the §2.5 bus schemes viable, and that a general
        // interconnection network does not offer.
        const Tick deliverAt = claimDeliveryAt(0, eq_.now());
        for (unsigned dst : dsts) {
            DIR2B_ASSERT(dst < handlers_.size() && handlers_[dst],
                         "broadcast to unconnected endpoint ", dst);
            ++messages_;
            DIR2B_TRC(trc_, instant(eq_.now(), trk_,
                                    mnemonic(msg.kind), msg.addr, src,
                                    dst));
            eq_.scheduleAt(deliverAt, [this, src, dst, msg] {
                handlers_[dst](src, msg);
            });
        }
        return;
    }

    for (unsigned dst : dsts)
        send(src, dst, msg);
}

} // namespace dir2b
