/**
 * @file
 * Timed cache controller for the full-map protocol.
 *
 * The processor-side machinery (blocking transactions, MREQUEST
 * conversion, eviction protocol, acks) is identical to the two-bit
 * cache controller; the only difference is that coherence commands
 * arrive *directed* — INVALIDATE(a,i) instead of BROADINV(a,k) and
 * PURGE(a,i,rw) instead of BROADQUERY(a,rw) — with the same cache-side
 * semantics, including the treat-INVALIDATE-as-MGRANTED(false)
 * conversion rule.  A spurious directed command (stale presence bit
 * at the controller) finds no copy and is a harmless acknowledged
 * no-op.
 */

#ifndef DIR2B_TIMED_FM_CACHE_CTRL_HH
#define DIR2B_TIMED_FM_CACHE_CTRL_HH

#include "timed/cache_ctrl.hh"

namespace dir2b
{

/** Timed full-map cache controller. */
class FmCacheCtrl : public TwoBitCacheCtrl
{
  public:
    using TwoBitCacheCtrl::TwoBitCacheCtrl;

    void
    receive(unsigned src, const Message &msg) override
    {
        switch (msg.kind) {
          case MsgKind::Invalidate: {
            // Same semantics as a BROADINV that happens to be
            // addressed precisely.
            Message inv = msg;
            inv.kind = MsgKind::BroadInv;
            TwoBitCacheCtrl::receive(src, inv);
            return;
          }
          case MsgKind::Purge: {
            Message q = msg;
            q.kind = MsgKind::BroadQuery;
            TwoBitCacheCtrl::receive(src, q);
            return;
          }
          default:
            TwoBitCacheCtrl::receive(src, msg);
            return;
        }
    }
};

} // namespace dir2b

#endif // DIR2B_TIMED_FM_CACHE_CTRL_HH
