/**
 * @file
 * The timed multiprocessor of Figure 3-1, partitioned by directory
 * home into independently clocked shards (conservative parallel
 * discrete-event simulation).
 *
 * Shard s owns memory modules m with m % S == s and processors p with
 * p % S == s: exactly the paper's observation that controller K_j
 * owns its M_j slice of the global map, so all same-home directory
 * work is shard-local and only network messages cross shards.  Each
 * shard gets its own EventQueue timing wheel, its own controllers,
 * its own deferring network proxy (ShardNet) and optionally its own
 * TraceRecorder; shards advance concurrently between barriers.
 *
 * Lookahead.  Every message travels >= TimedConfig::netLatency ticks
 * (the Ideal/Crossbar/Bus models only ever ADD contention delay), so
 * with the global minimum next-event tick at T no send can be
 * delivered before T + netLatency: the epoch horizon.  Each epoch
 * every shard executes its events with when < horizon, deferring all
 * sends and oracle completions; the barrier then injects deliveries —
 * all at or beyond the horizon — and the loop repeats.
 *
 * Determinism (the headline property; tests/test_golden_digest pins
 * it): a sharded run is BIT-IDENTICAL to the serial run, at any shard
 * or worker count.  The serial engine fires same-tick events in
 * schedule order (a global sequence number); that order is an
 * emergent whole-history property, so instead of approximating it the
 * barrier REPLAYS it.  Every shard logs, per fired event, the calls
 * it made (EpochLog).  The barrier runs a single-threaded S-way merge
 * over these logs in (tick, key) order — which, inductively, IS the
 * serial execution order — and re-enacts each call exactly as the
 * serial engine would have:
 *
 *  - a schedule call draws the next key from the global counter and
 *    re-keys the child node in its shard's wheel (a no-op if the
 *    child already fired: relative order within a shard is serial
 *    order restricted to that shard, which needs no correction);
 *  - a network send draws the next key, claims capacity against a
 *    shared replay network in serial order (so crossbar port queues
 *    and bus occupancy resolve identically), and injects the delivery
 *    into the destination shard's wheel under that key;
 *  - an oracle completion is checked in serial completion order, so
 *    the per-location-SC monotonicity checks see the same sequence a
 *    serial run feeds them.
 *
 * The induction grounds in the initial per-processor kicks, which are
 * injected with the serial keys 0..P-1 before the first epoch.  Write
 * values come from per-shard disjoint nonce streams; values never
 * influence control flow, timing or digests (the oracle maps them to
 * version numbers), so this is digest-neutral.
 */

#ifndef DIR2B_TIMED_SHARDED_SYSTEM_HH
#define DIR2B_TIMED_SHARDED_SYSTEM_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "timed/shard_net.hh"
#include "timed/timed_system.hh"

namespace dir2b
{

/** A sharded timed multiprocessor; drop-in for TimedSystem. */
class ShardedTimedSystem
{
  public:
    /**
     * @param cfg          same knobs as the serial TimedSystem
     * @param numShards    shard count (>= 1; may exceed the module
     *                     count, leaving some shards cache-only)
     * @param shardTracers optional per-shard recorders: shard s's
     *                     controllers and network record onto
     *                     shardTracers[s] (cfg.tracer is ignored)
     * @param workers      worker threads for the epoch loop
     *                     (0 = min(defaultThreadCount(), numShards))
     */
    ShardedTimedSystem(const TimedConfig &cfg, unsigned numShards,
                       std::vector<TraceRecorder *> shardTracers = {},
                       unsigned workers = 0);
    ~ShardedTimedSystem();

    ShardedTimedSystem(const ShardedTimedSystem &) = delete;
    ShardedTimedSystem &operator=(const ShardedTimedSystem &) = delete;

    /**
     * Run every processor against the source until streams end (or a
     * per-processor cap), exactly like TimedSystem::run.
     *
     * The source must tolerate concurrent calls for DISTINCT
     * processors (SyntheticStream::nextFor satisfies this); calls for
     * one processor are always serialised on its owning shard.
     */
    TimedRunResult run(const ProcSource &source,
                       std::uint64_t refsPerProc);

    const TwoBitCacheCtrl &cacheCtrl(ProcId p) const
    {
        return *caches_.at(p);
    }
    const TimedDirCtrl &dirCtrl(ModuleId m) const
    {
        return *dirs_.at(m);
    }
    const TimedConfig &config() const { return cfg_; }
    unsigned numShards() const { return numShards_; }

    /** Merge one per-cache histogram across every cache (all
     *  shards, in processor order — identical to the serial merge). */
    Histogram mergedCacheHistogram(Histogram CacheCtrlStats::*h) const;

    /** Merge one per-controller histogram across every module. */
    Histogram mergedDirHistogram(Histogram DirCtrlStats::*h) const;

    /** gem5-style statistics dump (same format as TimedSystem). */
    void dumpStats(std::ostream &os) const;

  private:
    struct Shard;

    unsigned shardOfProc(ProcId p) const { return p % numShards_; }
    unsigned shardOfModule(ModuleId m) const { return m % numShards_; }
    unsigned
    shardOfEndpoint(unsigned ep) const
    {
        return ep < cfg_.numProcs
                   ? shardOfProc(ep)
                   : shardOfModule(ep - cfg_.numProcs);
    }

    /** Per-shard disjoint unique write values (digest-neutral). */
    Value freshValue(Shard &sh);

    void issueNext(ProcId p);

    /** The barrier: serial-order replay of one epoch's logs. */
    void mergeEpoch();

    TimedConfig cfg_;
    unsigned numShards_;
    unsigned workers_;

    std::vector<std::unique_ptr<Shard>> shards_;
    /** Flat tables in proc/module order (owners vary by shard). */
    std::vector<std::unique_ptr<TwoBitCacheCtrl>> caches_;
    std::vector<std::unique_ptr<TimedDirCtrl>> dirs_;

    /** Shared contention state for the barrier's serial-order claim
     *  replay (its EventQueue never runs). */
    EventQueue replayEq_;
    std::unique_ptr<TimedNetwork> replayNet_;

    TimedOracle oracle_;
    ProcSource source_;
    std::vector<std::uint64_t> remaining_;

    /** The serial engine's schedule counter, re-enacted. */
    std::uint64_t nextKey_ = 0;
    /** Provisional-key base of the epoch being merged. */
    std::uint64_t epochKeyBase_ = 0;

    /** Merge scratch (reused across epochs). */
    std::vector<std::size_t> cursor_;
    std::vector<std::unordered_map<std::uint64_t, std::uint64_t>>
        resolved_;

    /** Per-shard next-event bounds of the current epoch (scratch). */
    std::vector<Tick> bounds_;
    /** Probe context for cfg_.sampler (lives as long as the run). */
    TimedTelemetryView telemetryView_;
    /** Quiescent-epoch fast-forward accounting (see TimedRunResult). */
    std::uint64_t epochs_ = 0;
    std::uint64_t inlineEpochs_ = 0;
    std::uint64_t shardEpochsSkipped_ = 0;
};

/**
 * Run a timed workload on the right engine for the shard count:
 * the serial TimedSystem when shards <= 1 (cfg.tracer honoured),
 * else a ShardedTimedSystem (per-shard tracers, workers as given).
 */
TimedRunResult runTimedWorkload(const TimedConfig &cfg, unsigned shards,
                                unsigned workers,
                                const ProcSource &source,
                                std::uint64_t refsPerProc);

} // namespace dir2b

#endif // DIR2B_TIMED_SHARDED_SYSTEM_HH
