/**
 * @file
 * Configuration of the timed (discrete-event) tier.
 *
 * The functional tier executes transactions atomically; this tier
 * models the system of Figure 3-1 with real message latencies and the
 * controller design options of §3.2.5:
 *
 *   option 1 — "allow the controller to treat only one command at a
 *              time" (perBlockConcurrency = false);
 *   option 2 — "oblige the controller to treat commands related to a
 *              given block only one at a time" (the multiprogrammed
 *              controller; perBlockConcurrency = true).
 *
 * All latencies are in cycles of the global event clock.
 */

#ifndef DIR2B_TIMED_TIMED_CONFIG_HH
#define DIR2B_TIMED_TIMED_CONFIG_HH

#include <cstdint>

#include "cache/cache_array.hh"
#include "util/types.hh"

namespace dir2b
{

class TraceRecorder;
class TelemetrySampler;

/** Interconnection-network model of the timed tier. */
enum class NetKind
{
    /** Fixed latency, infinite bandwidth. */
    Ideal,
    /** Point-to-point with one delivery per destination port per
     *  cycle (a crossbar-like general interconnection network);
     *  a broadcast costs n-1 independent messages — the paper's
     *  costing of the two-bit scheme. */
    Crossbar,
    /** One shared medium: every transaction serialises on the bus,
     *  but a broadcast occupies it only once (free fan-out) — the
     *  property that makes the §2.5 bus schemes viable. */
    Bus,
};

/** Which coherence scheme the timed system runs. */
enum class TimedProto
{
    /** The paper's two-bit broadcast directory. */
    TwoBit,
    /** The Censier-Feautrier full-map baseline (directed commands). */
    FullMap,
    /** The Yen-Fu extension: full map + silent exclusive-clean
     *  upgrades (§2.4.3), with its synchronization problems resolved
     *  (see timed/yf_dir_ctrl.hh). */
    YenFu,
};

/** Knobs of a timed run. */
struct TimedConfig
{
    /** Coherence scheme. */
    TimedProto protocol = TimedProto::TwoBit;
    /** Processor-cache pairs (P_k - C_k). */
    ProcId numProcs = 4;
    /** Memory-controller/module pairs (K_j - M_j). */
    ModuleId numModules = 2;
    /** Geometry of each private cache. */
    CacheGeometry cacheGeom{};

    /** Point-to-point network latency per message. */
    Tick netLatency = 4;
    /** Memory-module access time (read or write of one block). */
    Tick memLatency = 10;
    /** One cache directory cycle. */
    Tick cacheLatency = 1;
    /** Controller occupancy per dispatched command. */
    Tick dirLatency = 2;
    /** Processor think time between references. */
    Tick thinkTime = 1;

    /** §3.2.5 option 2: per-block concurrency in the controller. */
    bool perBlockConcurrency = false;
    /** §4.4 (a): duplicate tag directories at the caches. */
    bool snoopFilter = false;
    /** Interconnection-network contention model. */
    NetKind network = NetKind::Ideal;

    /** Safety net against protocol livelock. */
    std::uint64_t maxEvents = 200000000ULL;

    /** Total directory RAM budget in bytes, split evenly across the
     *  modules (two-bit scheme; util/tiered_store.hh).  0 = unlimited.
     *  Results are bit-identical at any budget. */
    std::uint64_t dirRamBudget = 0;

    /** Quiescent-epoch fast-forward in the sharded engine: use exact
     *  next-event bounds to jump idle gaps and run single-active-shard
     *  epochs inline instead of through the worker gang.  Pure
     *  wall-clock optimisation — statistics are bit-identical either
     *  way; off exists only for A/B measurement. */
    bool fastForward = true;

    /**
     * Optional trace recorder (src/obs).  When non-null and the build
     * compiles instrumentation (DIR2B_TRACE), every controller and the
     * network register a track and record phase spans and Table 3-1
     * command instants.  Recording never perturbs simulation state:
     * results are bit-identical with or without a recorder attached.
     */
    TraceRecorder *tracer = nullptr;

    /**
     * Optional time-series sampler (obs/telemetry.hh).  When non-null
     * the engine registers the timed metric set in its registry and
     * snapshots it every sampler->interval() ticks, at points where
     * the simulation state is exact for the boundary — the serial
     * engine between kernel chunks, the sharded engine at merge-replay
     * barriers — so serial and sharded runs emit byte-identical
     * series.  Sampling never perturbs simulation statistics.
     */
    TelemetrySampler *sampler = nullptr;
};

} // namespace dir2b

#endif // DIR2B_TIMED_TIMED_CONFIG_HH
