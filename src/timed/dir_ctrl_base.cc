#include "timed/dir_ctrl_base.hh"

#include <sstream>

#include "util/logging.hh"

namespace dir2b
{

TimedDirCtrl::TimedDirCtrl(ModuleId id, const TimedConfig &cfg,
                           EventQueue &eq, TimedNetwork &net)
    : id_(id), cfg_(cfg), eq_(eq), net_(net)
{
#if DIR2B_TRACE
    if ((trc_ = cfg.tracer)) {
        trk_ = trc_->addTrack("ctrl" + std::to_string(id));
        busyTrk_ = trc_->addTrack("ctrl" + std::to_string(id) +
                                  ".busy");
    }
#endif
}

void
TimedDirCtrl::noteQueueDepth()
{
    DIR2B_TRC(trc_, counter(eq_.now(), trk_, "queue_depth",
                            queue_.size()));
}

std::string
TimedDirCtrl::stuckReport() const
{
    std::ostringstream os;
    os << "controller " << id_ << ": queue=[";
    for (const auto &q : queue_)
        os << " " << toString(q.msg);
    os << " ] busy=[";
    for (const auto &[a, b] : busy_) {
        const char *kind = b.kind == Busy::Kind::AwaitingPut
                               ? "awaiting put"
                           : b.kind == Busy::Kind::AwaitingAcks
                               ? "awaiting acks"
                               : "supplying";
        os << " " << a << "(" << kind << ", req " << b.requester << ")";
    }
    os << " ]";
    return os.str();
}

void
TimedDirCtrl::receive(unsigned, const Message &msg)
{
    if (msg.kind == MsgKind::InvAck) {
        processInvAck(msg);
        return;
    }

    // Puts (and the equivalent in-flight EJECT-with-data) that answer
    // an outstanding query bypass the queue entirely: in the strictly
    // serial controller the query blocks everything, so its answer
    // must not queue behind itself.
    if (auto it = busy_.find(msg.addr);
        it != busy_.end() && it->second.kind == Busy::Kind::AwaitingPut) {
        const bool answers =
            msg.kind == MsgKind::PutData ||
            (msg.kind == MsgKind::Eject &&
             (msg.rw == RW::Write || ejectReadAnswersWait()));
        if (answers) {
            DIR2B_DEBUG("t=", eq_.now(), " K", id_,
                        " put answers wait: ", toString(msg));
            ++stats_.putsAwaited;
            stats_.putWait.sample(eq_.now() - it->second.since);
            DIR2B_TRC(trc_, complete(it->second.since, eq_.now(),
                                     busyTrk_, "await_put", msg.addr,
                                     it->second.requester));
            const ProcId requester = it->second.requester;
            const RW rw = it->second.rw;
            busy_.erase(it);
            onPutResolved(msg.addr, requester, rw, msg);
            scheduleDispatch();
            return;
        }
    } else if (msg.kind == MsgKind::PutData) {
        DIR2B_PANIC("controller ", id_, " received unsolicited ",
                    toString(msg));
    }

    queue_.push_back(Queued{msg, eq_.now()});
    stats_.queueDepth.sample(queue_.size());
    noteQueueDepth();
    scheduleDispatch();
}

void
TimedDirCtrl::processInvAck(const Message &msg)
{
    auto it = busy_.find(msg.addr);
    DIR2B_ASSERT(it != busy_.end() &&
                     it->second.kind == Busy::Kind::AwaitingAcks,
                 "unsolicited INVACK for block ", msg.addr);

    // The acking cache's possible stale MREQUEST preceded this ack on
    // its FIFO link, so if one exists it is in the queue now: delete
    // it (its sender has already converted to a write miss).
    for (auto qit = queue_.begin(); qit != queue_.end();) {
        if (qit->msg.kind == MsgKind::MRequest &&
            qit->msg.addr == msg.addr && qit->msg.proc == msg.proc) {
            qit = queue_.erase(qit);
            ++stats_.mreqDeleted;
            DIR2B_TRC(trc_, instant(eq_.now(), trk_, "mreq_deleted",
                                    msg.addr, msg.proc));
            noteQueueDepth();
        } else {
            ++qit;
        }
    }

    DIR2B_ASSERT(it->second.acksRemaining > 0, "ack underflow");
    if (--it->second.acksRemaining == 0) {
        stats_.ackWait.sample(eq_.now() - it->second.since);
        DIR2B_TRC(trc_, complete(it->second.since, eq_.now(), busyTrk_,
                                 "await_acks", msg.addr,
                                 it->second.requester));
        auto done = std::move(it->second.onAcked);
        busy_.erase(it);
        done();
        scheduleDispatch();
    }
}

void
TimedDirCtrl::scheduleDispatch()
{
    if (dispatchScheduled_)
        return;
    dispatchScheduled_ = true;
    const Tick when = busyUntil_ > eq_.now() ? busyUntil_ - eq_.now()
                                             : 0;
    eq_.schedule(when, [this] {
        dispatchScheduled_ = false;
        dispatch();
    });
}

void
TimedDirCtrl::dispatch()
{
    if (eq_.now() < busyUntil_) {
        scheduleDispatch();
        return;
    }
    if (queue_.empty())
        return;

    // §3.2.5 option 1: strictly serial — while any transaction is in
    // flight, nothing else is serviced.  Option 2: only commands for
    // blocks with an active transaction are held back.
    auto it = queue_.begin();
    if (!cfg_.perBlockConcurrency) {
        if (!busy_.empty())
            return;
    } else {
        while (it != queue_.end() && busy_.count(it->msg.addr))
            ++it;
        if (it == queue_.end())
            return;
    }

    const Message msg = it->msg;
    stats_.queueWait.sample(eq_.now() - it->at);
    queue_.erase(it);
    busyUntil_ = eq_.now() + cfg_.dirLatency;
    // The service span is the controller-occupancy window; naming it
    // by the command makes the Table 3-1 mix visible per track.
    DIR2B_TRC(trc_, complete(eq_.now(), busyUntil_, trk_,
                             mnemonic(msg.kind), msg.addr, msg.proc));
    noteQueueDepth();
    DIR2B_DEBUG("t=", eq_.now(), " K", id_, " process ", toString(msg));
    process(msg);
    if (!queue_.empty())
        scheduleDispatch();
}

void
TimedDirCtrl::supplyData(ProcId k, Addr a, Value data, bool writeBack,
                         bool exclusiveGrant)
{
    if (writeBack)
        mem_.write(a, data);

    Message get;
    get.kind = MsgKind::GetData;
    get.proc = k;
    get.addr = a;
    get.data = data;
    get.granted = exclusiveGrant;

    // The block stays busy for the memory-access window; only once
    // the data has left the module may another transaction for it be
    // dispatched.  FIFO link order then guarantees the new holder has
    // its copy before any later invalidation or query reaches it.
    Busy b;
    b.kind = Busy::Kind::Supplying;
    b.requester = k;
    b.since = eq_.now();
    busy_[a] = std::move(b);
    // A DES knows the window's end up front: record the span now.
    DIR2B_TRC(trc_, complete(eq_.now(), eq_.now() + cfg_.memLatency,
                             busyTrk_, "supply", a, k));
    const unsigned dst = k;
    eq_.schedule(cfg_.memLatency, [this, dst, get, a] {
        net_.send(endpoint(), dst, get);
        busy_.erase(a);
        scheduleDispatch();
    });
}

void
TimedDirCtrl::awaitPut(Addr a, ProcId requester, RW rw)
{
    Busy b;
    b.kind = Busy::Kind::AwaitingPut;
    b.requester = requester;
    b.rw = rw;
    b.since = eq_.now();
    busy_[a] = std::move(b);
}

void
TimedDirCtrl::awaitAcks(Addr a, ProcId requester, unsigned count,
                        std::function<void()> onAcked)
{
    DIR2B_ASSERT(count > 0, "awaitAcks with nothing to wait for");
    Busy b;
    b.kind = Busy::Kind::AwaitingAcks;
    b.requester = requester;
    b.acksRemaining = count;
    b.onAcked = std::move(onAcked);
    b.since = eq_.now();
    busy_[a] = std::move(b);
}

bool
TimedDirCtrl::consumeQueuedPut(Addr a, Message &out)
{
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->msg.kind == MsgKind::Eject && it->msg.addr == a &&
            (it->msg.rw == RW::Write || ejectReadAnswersWait())) {
            out = it->msg;
            queue_.erase(it);
            ++stats_.putsConsumed;
            DIR2B_TRC(trc_, instant(eq_.now(), trk_, "put_consumed", a,
                                    out.proc));
            noteQueueDepth();
            return true;
        }
    }
    return false;
}

unsigned
TimedDirCtrl::deleteQueuedMRequests(Addr a, ProcId except)
{
    unsigned deleted = 0;
    for (auto it = queue_.begin(); it != queue_.end();) {
        if (it->msg.kind == MsgKind::MRequest && it->msg.addr == a &&
            it->msg.proc != except) {
            it = queue_.erase(it);
            ++deleted;
        } else {
            ++it;
        }
    }
    stats_.mreqDeleted.inc(deleted);
    if (deleted) {
        DIR2B_TRC(trc_,
                  instant(eq_.now(), trk_, "mreq_deleted", a, deleted));
        noteQueueDepth();
    }
    return deleted;
}

} // namespace dir2b
