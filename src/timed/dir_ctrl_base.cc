#include "timed/dir_ctrl_base.hh"

#include <sstream>

#include "util/logging.hh"

namespace dir2b
{

TimedDirCtrl::TimedDirCtrl(ModuleId id, const TimedConfig &cfg,
                           EventQueue &eq, TimedNetwork &net)
    : id_(id), cfg_(cfg), eq_(eq), net_(net)
{}

std::string
TimedDirCtrl::stuckReport() const
{
    std::ostringstream os;
    os << "controller " << id_ << ": queue=[";
    for (const auto &m : queue_)
        os << " " << toString(m);
    os << " ] busy=[";
    for (const auto &[a, b] : busy_) {
        const char *kind = b.kind == Busy::Kind::AwaitingPut
                               ? "awaiting put"
                           : b.kind == Busy::Kind::AwaitingAcks
                               ? "awaiting acks"
                               : "supplying";
        os << " " << a << "(" << kind << ", req " << b.requester << ")";
    }
    os << " ]";
    return os.str();
}

void
TimedDirCtrl::receive(unsigned, const Message &msg)
{
    if (msg.kind == MsgKind::InvAck) {
        processInvAck(msg);
        return;
    }

    // Puts (and the equivalent in-flight EJECT-with-data) that answer
    // an outstanding query bypass the queue entirely: in the strictly
    // serial controller the query blocks everything, so its answer
    // must not queue behind itself.
    if (auto it = busy_.find(msg.addr);
        it != busy_.end() && it->second.kind == Busy::Kind::AwaitingPut) {
        const bool answers =
            msg.kind == MsgKind::PutData ||
            (msg.kind == MsgKind::Eject &&
             (msg.rw == RW::Write || ejectReadAnswersWait()));
        if (answers) {
            DIR2B_DEBUG("t=", eq_.now(), " K", id_,
                        " put answers wait: ", toString(msg));
            ++stats_.putsAwaited;
            const ProcId requester = it->second.requester;
            const RW rw = it->second.rw;
            busy_.erase(it);
            onPutResolved(msg.addr, requester, rw, msg);
            scheduleDispatch();
            return;
        }
    } else if (msg.kind == MsgKind::PutData) {
        DIR2B_PANIC("controller ", id_, " received unsolicited ",
                    toString(msg));
    }

    queue_.push_back(msg);
    stats_.queueDepth.sample(queue_.size());
    scheduleDispatch();
}

void
TimedDirCtrl::processInvAck(const Message &msg)
{
    auto it = busy_.find(msg.addr);
    DIR2B_ASSERT(it != busy_.end() &&
                     it->second.kind == Busy::Kind::AwaitingAcks,
                 "unsolicited INVACK for block ", msg.addr);

    // The acking cache's possible stale MREQUEST preceded this ack on
    // its FIFO link, so if one exists it is in the queue now: delete
    // it (its sender has already converted to a write miss).
    for (auto qit = queue_.begin(); qit != queue_.end();) {
        if (qit->kind == MsgKind::MRequest && qit->addr == msg.addr &&
            qit->proc == msg.proc) {
            qit = queue_.erase(qit);
            ++stats_.mreqDeleted;
        } else {
            ++qit;
        }
    }

    DIR2B_ASSERT(it->second.acksRemaining > 0, "ack underflow");
    if (--it->second.acksRemaining == 0) {
        auto done = std::move(it->second.onAcked);
        busy_.erase(it);
        done();
        scheduleDispatch();
    }
}

void
TimedDirCtrl::scheduleDispatch()
{
    if (dispatchScheduled_)
        return;
    dispatchScheduled_ = true;
    const Tick when = busyUntil_ > eq_.now() ? busyUntil_ - eq_.now()
                                             : 0;
    eq_.schedule(when, [this] {
        dispatchScheduled_ = false;
        dispatch();
    });
}

void
TimedDirCtrl::dispatch()
{
    if (eq_.now() < busyUntil_) {
        scheduleDispatch();
        return;
    }
    if (queue_.empty())
        return;

    // §3.2.5 option 1: strictly serial — while any transaction is in
    // flight, nothing else is serviced.  Option 2: only commands for
    // blocks with an active transaction are held back.
    auto it = queue_.begin();
    if (!cfg_.perBlockConcurrency) {
        if (!busy_.empty())
            return;
    } else {
        while (it != queue_.end() && busy_.count(it->addr))
            ++it;
        if (it == queue_.end())
            return;
    }

    const Message msg = *it;
    queue_.erase(it);
    busyUntil_ = eq_.now() + cfg_.dirLatency;
    DIR2B_DEBUG("t=", eq_.now(), " K", id_, " process ", toString(msg));
    process(msg);
    if (!queue_.empty())
        scheduleDispatch();
}

void
TimedDirCtrl::supplyData(ProcId k, Addr a, Value data, bool writeBack,
                         bool exclusiveGrant)
{
    if (writeBack)
        mem_.write(a, data);

    Message get;
    get.kind = MsgKind::GetData;
    get.proc = k;
    get.addr = a;
    get.data = data;
    get.granted = exclusiveGrant;

    // The block stays busy for the memory-access window; only once
    // the data has left the module may another transaction for it be
    // dispatched.  FIFO link order then guarantees the new holder has
    // its copy before any later invalidation or query reaches it.
    Busy b;
    b.kind = Busy::Kind::Supplying;
    b.requester = k;
    busy_[a] = std::move(b);
    const unsigned dst = k;
    eq_.schedule(cfg_.memLatency, [this, dst, get, a] {
        net_.send(endpoint(), dst, get);
        busy_.erase(a);
        scheduleDispatch();
    });
}

void
TimedDirCtrl::awaitPut(Addr a, ProcId requester, RW rw)
{
    Busy b;
    b.kind = Busy::Kind::AwaitingPut;
    b.requester = requester;
    b.rw = rw;
    busy_[a] = std::move(b);
}

void
TimedDirCtrl::awaitAcks(Addr a, ProcId requester, unsigned count,
                        std::function<void()> onAcked)
{
    DIR2B_ASSERT(count > 0, "awaitAcks with nothing to wait for");
    Busy b;
    b.kind = Busy::Kind::AwaitingAcks;
    b.requester = requester;
    b.acksRemaining = count;
    b.onAcked = std::move(onAcked);
    busy_[a] = std::move(b);
}

bool
TimedDirCtrl::consumeQueuedPut(Addr a, Message &out)
{
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->kind == MsgKind::Eject && it->addr == a &&
            (it->rw == RW::Write || ejectReadAnswersWait())) {
            out = *it;
            queue_.erase(it);
            ++stats_.putsConsumed;
            return true;
        }
    }
    return false;
}

unsigned
TimedDirCtrl::deleteQueuedMRequests(Addr a, ProcId except)
{
    unsigned deleted = 0;
    for (auto it = queue_.begin(); it != queue_.end();) {
        if (it->kind == MsgKind::MRequest && it->addr == a &&
            it->proc != except) {
            it = queue_.erase(it);
            ++deleted;
        } else {
            ++it;
        }
    }
    stats_.mreqDeleted.inc(deleted);
    return deleted;
}

} // namespace dir2b
