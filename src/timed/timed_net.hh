/**
 * @file
 * Timed interconnection network.
 *
 * Endpoints are numbered 0..numProcs-1 for caches and
 * numProcs..numProcs+numModules-1 for memory controllers.  Delivery
 * preserves per-(source, destination) FIFO order — the property the
 * protocols rely on (e.g. a get(k,a) sent before a BROADINV(a,i) from
 * the same controller must arrive at cache k first).  With constant
 * latency and a FIFO-stable event queue that order holds by
 * construction; optional port contention serialises deliveries into
 * each destination at one message per cycle, which keeps FIFO per
 * (src,dst) because each message's delivery time is monotone in send
 * order.
 *
 * A broadcast is modelled as fan-out to the n-1 point-to-point links,
 * exactly as the two-bit paper costs it.
 */

#ifndef DIR2B_TIMED_TIMED_NET_HH
#define DIR2B_TIMED_TIMED_NET_HH

#include <functional>
#include <vector>

#include "net/message.hh"
#include "obs/trace_recorder.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "timed/timed_config.hh"
#include "util/types.hh"

namespace dir2b
{

/** Timed network with selectable contention model (NetKind). */
class TimedNetwork
{
  public:
    using Handler = std::function<void(unsigned src, const Message &)>;

    /** @param trc optional trace recorder: every message becomes an
     *  instant event (paper mnemonic, src/dst endpoints) on a "net"
     *  track. */
    TimedNetwork(EventQueue &eq, unsigned endpoints, Tick latency,
                 NetKind kind, TraceRecorder *trc = nullptr);

    /** Virtual so a sharded run can substitute a deferring proxy
     *  (timed/shard_net.hh) without touching the controllers. */
    virtual ~TimedNetwork() = default;

    /** Register the receiver of endpoint ep. */
    void connect(unsigned ep, Handler handler);

    /** Send one message; delivered after the network latency. */
    virtual void send(unsigned src, unsigned dst, Message msg);

    /** Fan a message out to every listed destination. */
    virtual void broadcast(unsigned src,
                           const std::vector<unsigned> &dsts,
                           Message msg);

    /**
     * Claim transmission capacity for a message sent at sentAt;
     * returns the delivery tick and accrues contention statistics.
     * The serial send path calls this with sentAt = now(); the
     * sharded barrier replays the epoch's sends through it in serial
     * order against a shared replay instance, so port and bus
     * contention resolve exactly as in a serial run.
     */
    Tick claimDeliveryAt(unsigned dst, Tick sentAt);

    /** Invoke dst's handler directly (a replayed delivery firing). */
    void
    deliver(unsigned src, unsigned dst, const Message &msg)
    {
        DIR2B_ASSERT(dst < handlers_.size() && handlers_[dst],
                     "deliver to unconnected endpoint ", dst);
        handlers_[dst](src, msg);
    }

    std::uint64_t messagesSent() const { return messages_.value(); }
    std::uint64_t broadcastsSent() const { return broadcasts_.value(); }
    std::uint64_t dataMessages() const { return dataMsgs_.value(); }

    /** Total cycles messages spent queued for busy ports/the bus. */
    std::uint64_t portWaitCycles() const { return portWait_.value(); }

    /** Bus occupancy in cycles (Bus kind only). */
    std::uint64_t busBusyCycles() const { return busBusy_.value(); }

  protected:
    EventQueue &eq_;
    Tick latency_;
    NetKind kind_;
    TraceRecorder *trc_ = nullptr;
    std::uint32_t trk_ = 0;
    std::vector<Handler> handlers_;
    std::vector<Tick> portFreeAt_;
    Tick busFreeAt_ = 0;
    Counter messages_;
    Counter broadcasts_;
    Counter dataMsgs_;
    Counter portWait_;
    Counter busBusy_;
};

} // namespace dir2b

#endif // DIR2B_TIMED_TIMED_NET_HH
