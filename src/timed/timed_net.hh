/**
 * @file
 * Timed interconnection network.
 *
 * Endpoints are numbered 0..numProcs-1 for caches and
 * numProcs..numProcs+numModules-1 for memory controllers.  Delivery
 * preserves per-(source, destination) FIFO order — the property the
 * protocols rely on (e.g. a get(k,a) sent before a BROADINV(a,i) from
 * the same controller must arrive at cache k first).  With constant
 * latency and a FIFO-stable event queue that order holds by
 * construction; optional port contention serialises deliveries into
 * each destination at one message per cycle, which keeps FIFO per
 * (src,dst) because each message's delivery time is monotone in send
 * order.
 *
 * A broadcast is modelled as fan-out to the n-1 point-to-point links,
 * exactly as the two-bit paper costs it.
 */

#ifndef DIR2B_TIMED_TIMED_NET_HH
#define DIR2B_TIMED_TIMED_NET_HH

#include <functional>
#include <vector>

#include "net/message.hh"
#include "obs/trace_recorder.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "timed/timed_config.hh"
#include "util/types.hh"

namespace dir2b
{

/** Timed network with selectable contention model (NetKind). */
class TimedNetwork
{
  public:
    using Handler = std::function<void(unsigned src, const Message &)>;

    /** @param trc optional trace recorder: every message becomes an
     *  instant event (paper mnemonic, src/dst endpoints) on a "net"
     *  track. */
    TimedNetwork(EventQueue &eq, unsigned endpoints, Tick latency,
                 NetKind kind, TraceRecorder *trc = nullptr);

    /** Register the receiver of endpoint ep. */
    void connect(unsigned ep, Handler handler);

    /** Send one message; delivered after the network latency. */
    void send(unsigned src, unsigned dst, Message msg);

    /** Fan a message out to every listed destination. */
    void broadcast(unsigned src, const std::vector<unsigned> &dsts,
                   Message msg);

    std::uint64_t messagesSent() const { return messages_.value(); }
    std::uint64_t broadcastsSent() const { return broadcasts_.value(); }
    std::uint64_t dataMessages() const { return dataMsgs_.value(); }

    /** Total cycles messages spent queued for busy ports/the bus. */
    std::uint64_t portWaitCycles() const { return portWait_.value(); }

    /** Bus occupancy in cycles (Bus kind only). */
    std::uint64_t busBusyCycles() const { return busBusy_.value(); }

  private:
    /** Claim transmission capacity; returns the delivery tick. */
    Tick claimSlot(unsigned dst);

    EventQueue &eq_;
    Tick latency_;
    NetKind kind_;
    TraceRecorder *trc_ = nullptr;
    std::uint32_t trk_ = 0;
    std::vector<Handler> handlers_;
    std::vector<Tick> portFreeAt_;
    Tick busFreeAt_ = 0;
    Counter messages_;
    Counter broadcasts_;
    Counter dataMsgs_;
    Counter portWait_;
    Counter busBusy_;
};

} // namespace dir2b

#endif // DIR2B_TIMED_TIMED_NET_HH
