#include "timed/yf_cache_ctrl.hh"

#include "util/logging.hh"

namespace dir2b
{

void
YfCacheCtrl::receive(unsigned src, const Message &msg)
{
    switch (msg.kind) {
      case MsgKind::Purge:
        onPurge(msg);
        return;
      case MsgKind::Invalidate: {
        // Directed invalidation with BROADINV semantics (only ever
        // sent to holders of multi-copy — hence clean — blocks).
        Message inv = msg;
        inv.kind = MsgKind::BroadInv;
        TwoBitCacheCtrl::receive(src, inv);
        return;
      }
      default:
        TwoBitCacheCtrl::receive(src, msg);
        return;
    }
}

void
YfCacheCtrl::onPurge(const Message &msg)
{
    if (snoop_ && !snoop_->check(msg.addr)) {
        DIR2B_ASSERT(!cache_.peek(msg.addr),
                     "duplicate directory out of sync on PURGE of ",
                     msg.addr);
        // Copy gone: our EJECT is in flight and will answer.
        ++stats_.filteredCmds;
        return;
    }
    ++stats_.stolenCycles;

    CacheLine *l = cache_.lookup(msg.addr, false);
    if (!l) {
        // Raced our ejection; the in-flight EJECT answers the purge
        // (clean EJECT(read)s answer too — ejectReadAnswersWait()).
        return;
    }

    // Answer whether dirty or clean: the controller cannot know which
    // (the silent upgrade is invisible to it).
    ++stats_.queriesAnswered;
    Message put;
    put.kind = MsgKind::PutData;
    put.proc = id_;
    put.addr = msg.addr;
    put.data = l->value;
    put.granted = l->dirty(); // "was dirty": controller writes back
    sendToHome(msg.addr, put);

    if (msg.rw == RW::Read) {
        // Downgrade: exclusive (clean or silently dirtied) -> Shared.
        l->state = LineState::Shared;
    } else {
        dropLine(msg.addr);
        ++stats_.invalidationsApplied;
        if (txn_ && txn_->phase == Phase::AwaitGrant &&
            txn_->ref.addr == msg.addr) {
            // §3.2.5 transplanted: the purge doubles as
            // MGRANTED(false) for our pending upgrade.
            convertToWriteMiss();
        }
    }
}

} // namespace dir2b
