#include "timed/sharded_system.hh"

#include <algorithm>

#include "timed/dir_ctrl.hh"
#include "timed/fm_cache_ctrl.hh"
#include "timed/fm_dir_ctrl.hh"
#include "timed/timed_audit.hh"
#include "timed/yf_cache_ctrl.hh"
#include "timed/yf_dir_ctrl.hh"
#include "obs/telemetry.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace dir2b
{

/** One home shard: a private wheel, config (its own tracer slot),
 *  deferring network, epoch log and side-effect table. */
struct ShardedTimedSystem::Shard
{
    unsigned index = 0;
    EventQueue eq;
    TimedConfig cfg;
    std::vector<ShardExternal> externals;
    std::unique_ptr<ShardNet> net;
    EpochLog log;
    std::uint64_t valueNonce = 0;
    std::uint64_t completed = 0;
    bool budgetBlown = false;
};

ShardedTimedSystem::ShardedTimedSystem(
    const TimedConfig &cfg, unsigned numShards,
    std::vector<TraceRecorder *> shardTracers, unsigned workers)
    : cfg_(cfg), numShards_(numShards ? numShards : 1)
{
    if (cfg_.numProcs == 0 || cfg_.numModules == 0)
        DIR2B_FATAL("timed system needs processors and modules");

    workers_ = std::min<unsigned>(
        workers ? workers : defaultThreadCount(), numShards_);
    if (workers_ < 1)
        workers_ = 1;

    const unsigned endpoints = cfg_.numProcs + cfg_.numModules;
    shards_.reserve(numShards_);
    for (unsigned s = 0; s < numShards_; ++s) {
        auto sh = std::make_unique<Shard>();
        sh->index = s;
        sh->cfg = cfg_;
        sh->cfg.tracer =
            s < shardTracers.size() ? shardTracers[s] : nullptr;
        sh->net = std::make_unique<ShardNet>(
            sh->eq, endpoints, cfg_.netLatency, cfg_.network,
            sh->cfg.tracer, sh->externals);
        shards_.push_back(std::move(sh));
    }

    caches_.reserve(cfg_.numProcs);
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        Shard &sh = *shards_[shardOfProc(p)];
        switch (cfg_.protocol) {
          case TimedProto::FullMap:
            caches_.push_back(std::make_unique<FmCacheCtrl>(
                p, sh.cfg, sh.eq, *sh.net));
            break;
          case TimedProto::YenFu:
            caches_.push_back(std::make_unique<YfCacheCtrl>(
                p, sh.cfg, sh.eq, *sh.net));
            break;
          case TimedProto::TwoBit:
            caches_.push_back(std::make_unique<TwoBitCacheCtrl>(
                p, sh.cfg, sh.eq, *sh.net));
            break;
        }
        TwoBitCacheCtrl *cc = caches_.back().get();
        sh.net->connect(p, [cc](unsigned src, const Message &m) {
            cc->receive(src, m);
        });
    }

    dirs_.reserve(cfg_.numModules);
    for (ModuleId m = 0; m < cfg_.numModules; ++m) {
        Shard &sh = *shards_[shardOfModule(m)];
        switch (cfg_.protocol) {
          case TimedProto::FullMap:
            dirs_.push_back(std::make_unique<FmDirCtrl>(
                m, sh.cfg, sh.eq, *sh.net));
            break;
          case TimedProto::YenFu:
            dirs_.push_back(std::make_unique<YfDirCtrl>(
                m, sh.cfg, sh.eq, *sh.net));
            break;
          case TimedProto::TwoBit:
            dirs_.push_back(std::make_unique<TwoBitDirCtrl>(
                m, sh.cfg, sh.eq, *sh.net));
            break;
        }
        TimedDirCtrl *dc = dirs_.back().get();
        sh.net->connect(cfg_.numProcs + m,
                        [dc](unsigned src, const Message &msg) {
                            dc->receive(src, msg);
                        });
    }

    replayNet_ = std::make_unique<TimedNetwork>(
        replayEq_, endpoints, cfg_.netLatency, cfg_.network, nullptr);
    cursor_.resize(numShards_);
    resolved_.resize(numShards_);
}

ShardedTimedSystem::~ShardedTimedSystem() = default;

Value
ShardedTimedSystem::freshValue(Shard &sh)
{
    // Disjoint per-shard nonce streams (shard s draws s+1, s+1+S,
    // s+1+2S, ...): unique across the run without synchronisation.
    // Values never steer control flow or statistics — the oracle maps
    // them to version numbers — so differing from the serial engine's
    // nonce order is digest-neutral.
    const std::uint64_t nonce =
        sh.index + 1 + sh.valueNonce++ * numShards_;
    return nonce * 0x9e3779b97f4a7c15ULL + 1;
}

void
ShardedTimedSystem::issueNext(ProcId p)
{
    if (remaining_[p] == 0)
        return;
    auto ref = source_(p);
    if (!ref)
        return;
    DIR2B_ASSERT(ref->proc == p, "source produced reference for ",
                 ref->proc, " when asked for ", p);
    --remaining_[p];

    Shard &sh = *shards_[shardOfProc(p)];
    const bool isWrite = ref->write;
    const Addr a = ref->addr;
    const Value wval = isWrite ? freshValue(sh) : 0;

    caches_[p]->processorRequest(
        *ref, wval, [this, &sh, p, a, isWrite, wval](Value v) {
            if (isWrite)
                DIR2B_ASSERT(v == wval,
                             "write completion value mismatch");
            // Oracle checks replay at the barrier in global
            // completion order (same-tick completions of one block on
            // different shards would otherwise race the version
            // counter).
            sh.eq.logExternalCall(
                static_cast<std::uint32_t>(sh.externals.size()));
            ShardExternal ex;
            ex.kind = ShardExternal::Kind::Completion;
            ex.proc = p;
            ex.addr = a;
            ex.value = v;
            ex.isWrite = isWrite;
            sh.externals.push_back(ex);
            ++sh.completed;
            sh.eq.schedule(cfg_.thinkTime, [this, p] { issueNext(p); });
        });
}

TimedRunResult
ShardedTimedSystem::run(const ProcSource &source,
                        std::uint64_t refsPerProc)
{
    source_ = source;
    remaining_.assign(cfg_.numProcs, refsPerProc);

    TelemetrySampler *sampler = cfg_.sampler;
    if (sampler) {
        telemetryView_.caches = &caches_;
        telemetryView_.dirs = &dirs_;
        telemetryView_.queues.clear();
        telemetryView_.nets.clear();
        telemetryView_.completed.clear();
        for (const auto &shp : shards_) {
            telemetryView_.queues.push_back(&shp->eq);
            telemetryView_.nets.push_back(shp->net.get());
            telemetryView_.completed.push_back(&shp->completed);
        }
        telemetryView_.contention = replayNet_.get();
        registerTimedMetrics(sampler->registry(), telemetryView_);
    }

    // The induction base: the initial kicks carry the exact keys
    // (0..P-1) the serial engine's schedule loop assigns them.
    nextKey_ = 0;
    for (ProcId p = 0; p < cfg_.numProcs; ++p) {
        shards_[shardOfProc(p)]->eq.scheduleAtKeyed(
            p % 3, nextKey_++, [this, p] { issueNext(p); });
    }

    const Tick lookahead = cfg_.netLatency;
    DIR2B_ASSERT(lookahead >= 1,
                 "sharded run needs netLatency >= 1 for lookahead");

    const bool ff = cfg_.fastForward;
    bounds_.assign(numShards_, maxTick);

    ShardGang gang(workers_);
    for (;;) {
        // Quiescent-epoch fast-forward: the exact per-shard bounds
        // jump an idle gap in a single epoch, where the bucket-start
        // lower bounds would spend several refinement epochs (each a
        // full gang barrier executing nothing) discovering the same
        // gap.  Horizon safety is unchanged — every send from a tick
        // in [mn, horizon) still delivers at or beyond mn + lookahead.
        Tick mn = maxTick;
        for (unsigned s = 0; s < numShards_; ++s) {
            bounds_[s] = ff ? shards_[s]->eq.nextTickExact()
                            : shards_[s]->eq.nextTickLowerBound();
            mn = std::min(mn, bounds_[s]);
        }
        if (mn == maxTick)
            break; // every wheel drained and nothing in flight

        // Merge-replay barrier = sampling point.  Every event below
        // mn has executed and been merged (mn is the global minimum
        // pending tick), and nothing at or beyond the previous —
        // boundary-clamped — horizon has, so each boundary <= mn sees
        // exactly the serial engine's state.  Clamping the next
        // horizon to nextBoundary() keeps that invariant for the
        // following epoch; progress is preserved because after the
        // flush the next boundary lies strictly beyond mn.
        if (sampler)
            sampler->flushUpTo(mn);
        Tick horizon =
            mn > maxTick - lookahead ? maxTick : mn + lookahead;
        if (sampler)
            horizon = std::min(horizon, sampler->nextBoundary());

        unsigned active = 0;
        for (unsigned s = 0; s < numShards_; ++s)
            active += bounds_[s] < horizon;
        ++epochs_;
        shardEpochsSkipped_ += numShards_ - active;

        std::uint64_t executedSoFar = 0;
        for (const auto &shp : shards_)
            executedSoFar += shp->eq.executed();
        const std::uint64_t epochBudget =
            cfg_.maxEvents > executedSoFar
                ? cfg_.maxEvents - executedSoFar
                : 0;

        epochKeyBase_ = nextKey_;
        auto epochBody = [&](unsigned s) {
            Shard &sh = *shards_[s];
            sh.log.clear();
            sh.externals.clear();
            sh.budgetBlown = false;
            // An exact bound at or beyond the horizon proves the
            // shard executes nothing this epoch; skip its wheel walk.
            if (ff && bounds_[s] >= horizon)
                return;
            sh.eq.beginEpoch(&sh.log, epochKeyBase_);
            std::uint64_t budget = epochBudget;
            sh.budgetBlown = !sh.eq.runUntil(horizon, budget);
            sh.eq.endEpoch();
        };
        if (ff && active <= 1) {
            // One live shard: run it inline on this thread instead of
            // round-tripping through the worker gang — on sparse
            // long-horizon runs this is most epochs, and the handoff
            // is the dominant cost.
            ++inlineEpochs_;
            for (unsigned s = 0; s < numShards_; ++s)
                epochBody(s);
        } else {
            gang.run(numShards_, epochBody);
        }

        bool blown = false;
        std::uint64_t executedNow = 0;
        std::uint64_t completedNow = 0;
        for (const auto &shp : shards_) {
            blown = blown || shp->budgetBlown;
            executedNow += shp->eq.executed();
            completedNow += shp->completed;
        }
        if (blown || executedNow > cfg_.maxEvents) {
            DIR2B_FATAL("timed run exceeded ", cfg_.maxEvents,
                        " events: protocol livelock? (", completedNow,
                        " refs completed)");
        }

        mergeEpoch();
    }

    for (ModuleId m = 0; m < cfg_.numModules; ++m) {
        DIR2B_ASSERT(dirs_[m]->quiesced(), "controller ", m,
                     " did not quiesce: ", dirs_[m]->stuckReport());
    }
    auditTimedFinalState(caches_, dirs_, oracle_);

    Tick finalTick = 0;
    std::uint64_t events = 0;
    std::uint64_t completed = 0;
    std::uint64_t messages = 0;
    std::uint64_t broadcasts = 0;
    for (const auto &shp : shards_) {
        finalTick = std::max(finalTick, shp->eq.now());
        events += shp->eq.executed();
        completed += shp->completed;
        messages += shp->net->messagesSent();
        broadcasts += shp->net->broadcastsSent();
    }
    if (sampler)
        sampler->finish(finalTick);

    TimedRunResult r = aggregateTimedResult(
        caches_, dirs_, oracle_, finalTick, completed, events,
        messages, broadcasts, replayNet_->portWaitCycles());
    r.epochs = epochs_;
    r.inlineEpochs = inlineEpochs_;
    r.shardEpochsSkipped = shardEpochsSkipped_;
    return r;
}

void
ShardedTimedSystem::mergeEpoch()
{
    std::fill(cursor_.begin(), cursor_.end(), std::size_t{0});
    for (auto &m : resolved_)
        m.clear();

    // S-way merge in (tick, final key) order — inductively, the
    // serial execution order.  A provisional head's final key is
    // always already resolved: its creating event lives earlier in
    // the same shard's log.
    for (;;) {
        unsigned best = numShards_;
        Tick bestTick = 0;
        std::uint64_t bestKey = 0;
        for (unsigned s = 0; s < numShards_; ++s) {
            const auto &execs = shards_[s]->log.execs;
            if (cursor_[s] >= execs.size())
                continue;
            const EpochLog::Exec &e = execs[cursor_[s]];
            std::uint64_t k = e.key;
            if (k >= epochKeyBase_) {
                const auto it = resolved_[s].find(e.id);
                DIR2B_ASSERT(it != resolved_[s].end(),
                             "in-epoch event fired before its "
                             "creating call was merged");
                k = it->second;
            }
            if (best == numShards_ || e.tick < bestTick ||
                (e.tick == bestTick && k < bestKey)) {
                best = s;
                bestTick = e.tick;
                bestKey = k;
            }
        }
        if (best == numShards_)
            break;

        Shard &sh = *shards_[best];
        const EpochLog::Exec &e = sh.log.execs[cursor_[best]];
        for (std::uint32_t ci = 0; ci < e.numCalls; ++ci) {
            const EpochLog::Call &c = sh.log.calls[e.firstCall + ci];
            if (c.kind == EpochLog::CallKind::Schedule) {
                // Re-enact the serial schedule call: draw the key the
                // serial engine would have handed out and re-key the
                // child (a no-op when the child already fired — its
                // shard-local order was already serial-consistent).
                const std::uint64_t key = nextKey_++;
                resolved_[best].emplace(c.childId, key);
                sh.eq.rewriteKey(c.nodeIdx, c.childId, key);
                continue;
            }
            ShardExternal &ex = sh.externals[c.aux];
            switch (ex.kind) {
              case ShardExternal::Kind::Send: {
                const std::uint64_t key = nextKey_++;
                const Tick at =
                    replayNet_->claimDeliveryAt(ex.dst, e.tick);
                Shard &dsh = *shards_[shardOfEndpoint(ex.dst)];
                TimedNetwork *dn = dsh.net.get();
                const unsigned src = ex.src;
                const unsigned dst = ex.dst;
                const Message msg = ex.msg;
                dsh.eq.scheduleAtKeyed(at, key,
                                       [dn, src, dst, msg] {
                                           dn->deliver(src, dst, msg);
                                       });
                break;
              }
              case ShardExternal::Kind::BusBroadcast: {
                // One bus transaction; every listener gets the same
                // slot, keys drawn in the serial fan-out order.
                const Tick at = replayNet_->claimDeliveryAt(0, e.tick);
                for (unsigned dst : ex.dsts) {
                    const std::uint64_t key = nextKey_++;
                    Shard &dsh = *shards_[shardOfEndpoint(dst)];
                    TimedNetwork *dn = dsh.net.get();
                    const unsigned src = ex.src;
                    const Message msg = ex.msg;
                    dsh.eq.scheduleAtKeyed(at, key,
                                           [dn, src, dst, msg] {
                                               dn->deliver(src, dst,
                                                           msg);
                                           });
                }
                break;
              }
              case ShardExternal::Kind::Completion:
                if (ex.isWrite)
                    oracle_.onWriteComplete(ex.proc, ex.addr,
                                            ex.value);
                else
                    oracle_.onReadComplete(ex.proc, ex.addr, ex.value);
                break;
            }
        }
        ++cursor_[best];
    }

    // Keys order the overflow heaps; restore their invariants after
    // the batch of rewrites.
    for (const auto &shp : shards_)
        shp->eq.rebuildOverflowHeap();
}

Histogram
ShardedTimedSystem::mergedCacheHistogram(
    Histogram CacheCtrlStats::*h) const
{
    return dir2b::mergedCacheHistogram(caches_, h);
}

Histogram
ShardedTimedSystem::mergedDirHistogram(Histogram DirCtrlStats::*h) const
{
    return dir2b::mergedDirHistogram(dirs_, h);
}

void
ShardedTimedSystem::dumpStats(std::ostream &os) const
{
    dumpTimedStats(os, caches_, dirs_);
}

TimedRunResult
runTimedWorkload(const TimedConfig &cfg, unsigned shards,
                 unsigned workers, const ProcSource &source,
                 std::uint64_t refsPerProc)
{
    if (shards <= 1) {
        TimedSystem sys(cfg);
        return sys.run(source, refsPerProc);
    }
    ShardedTimedSystem sys(cfg, shards, {}, workers);
    return sys.run(source, refsPerProc);
}

} // namespace dir2b
