#include "timed/yf_dir_ctrl.hh"

#include "util/logging.hh"

namespace dir2b
{

DynBitset &
YfDirCtrl::entryFor(Addr a)
{
    return map_.tryEmplace(a, cfg_.numProcs).first->second;
}

void
YfDirCtrl::process(const Message &msg)
{
    switch (msg.kind) {
      case MsgKind::Request:
        processRequest(msg);
        return;
      case MsgKind::MRequest:
        processMRequest(msg);
        return;
      case MsgKind::Eject:
        processEject(msg);
        return;
      default:
        DIR2B_PANIC("yen-fu controller cannot process ", toString(msg));
    }
}

void
YfDirCtrl::invalidateHolders(Addr a, DynBitset &e, ProcId except,
                             std::function<void()> onAcked)
{
    unsigned sent = 0;
    for (std::size_t i = e.findFirst(); i < e.size();
         i = e.findNext(i)) {
        const auto p = static_cast<ProcId>(i);
        if (p == except)
            continue;
        Message inv;
        inv.kind = MsgKind::Invalidate;
        inv.proc = except;
        inv.addr = a;
        net_.send(endpoint(), p, inv);
        ++stats_.directedInvs;
        ++sent;
        e.reset(i);
    }
    if (sent == 0) {
        onAcked();
        return;
    }
    DIR2B_TRC(trc_, instant(eq_.now(), trk_, "inv_fanout", a, sent));
    deleteQueuedMRequests(a, except);
    awaitAcks(a, except, sent, std::move(onAcked));
}

void
YfDirCtrl::purgeSoleHolder(Addr a, ProcId requester, RW rw)
{
    DynBitset &e = entryFor(a);
    const auto owner = static_cast<ProcId>(e.findFirst());
    DIR2B_ASSERT(owner < cfg_.numProcs && owner != requester,
                 "bad sole holder for block ", a);
    Message purge;
    purge.kind = MsgKind::Purge;
    purge.proc = requester;
    purge.addr = a;
    purge.rw = rw;
    ++stats_.purges;
    awaitPut(a, requester, rw);
    DIR2B_TRC(trc_, instant(eq_.now(), trk_, "purge_owner", a, owner));
    net_.send(endpoint(), owner, purge);
}

void
YfDirCtrl::processRequest(const Message &msg)
{
    ++stats_.requests;
    const Addr a = msg.addr;
    const ProcId k = msg.proc;
    DynBitset &e = entryFor(a);

    // A stale own bit (clean eject consumed elsewhere) cannot occur:
    // the cache's EJECT precedes its re-REQUEST on the same FIFO link.
    DIR2B_ASSERT(!e.test(k), "requester ", k,
                 " still has a presence bit for block ", a);

    const std::size_t holders = e.count();

    if (holders == 1) {
        // Sole holder: possibly silently modified -> query it, for
        // reads and writes alike.  An in-flight ejection (dirty or
        // clean!) doubles as the answer.
        Message put;
        if (consumeQueuedPut(a, put)) {
            // The ejection already in our queue is the answer; the
            // resolution path handles dirty and clean ejects alike.
            onPutResolved(a, k, msg.rw, put);
            return;
        }
        purgeSoleHolder(a, k, msg.rw);
        return;
    }

    if (msg.rw == RW::Write) {
        if (holders > 0) {
            invalidateHolders(a, e, k, [this, k, a] {
                DynBitset &entry = entryFor(a);
                entry.clear();
                entry.set(k);
                supplyData(k, a, mem_.read(a), false);
            });
            return;
        }
        e.set(k);
        supplyData(k, a, mem_.read(a), false);
        return;
    }

    // Read with 0 or >= 2 holders: memory is current.
    const bool exclusive = holders == 0;
    e.set(k);
    supplyData(k, a, mem_.read(a), false, exclusive);
}

void
YfDirCtrl::processMRequest(const Message &msg)
{
    ++stats_.mrequests;
    const Addr a = msg.addr;
    const ProcId k = msg.proc;
    DynBitset &e = entryFor(a);

    auto grant = [this, k, a](bool yes) {
        Message reply;
        reply.kind = MsgKind::MGranted;
        reply.proc = k;
        reply.addr = a;
        reply.granted = yes;
        if (yes)
            ++stats_.grantsTrue;
        else
            ++stats_.grantsFalse;
        net_.send(endpoint(), k, reply);
    };

    if (!e.test(k)) {
        // An INVALIDATE or PURGE(write) raced this upgrade; the cache
        // has converted (or will, by FIFO).
        grant(false);
        return;
    }
    if (e.count() == 1) {
        grant(true);
        return;
    }
    invalidateHolders(a, e, k, [grant] { grant(true); });
}

void
YfDirCtrl::processEject(const Message &msg)
{
    DynBitset &e = entryFor(msg.addr);
    if (!e.test(msg.proc)) {
        // Raced an INVALIDATE; nothing left to do.
        ++stats_.ejectsIgnored;
        return;
    }
    e.reset(msg.proc);
    if (msg.rw == RW::Write) {
        // Possibly a silent upgrade materialising: write it back.
        mem_.write(msg.addr, msg.data);
        ++stats_.ejectsData;
    } else {
        ++stats_.ejectsApplied;
    }
}

void
YfDirCtrl::onPutResolved(Addr a, ProcId requester, RW rw,
                         const Message &answer)
{
    DynBitset &e = entryFor(a);
    const auto owner = static_cast<ProcId>(e.findFirst());
    DIR2B_ASSERT(owner < cfg_.numProcs, "put resolved for block ", a,
                 " with no holder");

    Value data;
    bool writeBack;
    bool ownerGone;
    if (answer.kind == MsgKind::Eject) {
        ownerGone = true;
        if (answer.rw == RW::Write) {
            data = answer.data;
            writeBack = true;
        } else {
            // Clean exclusive copy ejected: memory is current.
            data = mem_.read(a);
            writeBack = false;
        }
    } else {
        // PutData; granted marks "was dirty" (the silent upgrade).
        ownerGone = rw == RW::Write;
        data = answer.data;
        writeBack = answer.granted;
    }

    if (ownerGone)
        e.reset(owner);
    if (rw == RW::Write) {
        e.clear();
        e.set(requester);
        supplyData(requester, a, data, writeBack);
        return;
    }
    e.set(requester);
    // If the old owner vanished, the requester is sole: grant
    // exclusive-clean so its own later writes are free.
    supplyData(requester, a, data, writeBack, e.count() == 1);
}

} // namespace dir2b
