/**
 * @file
 * Timed full-map (Censier-Feautrier) directory controller.
 *
 * The n+1-bit baseline on the same TimedDirCtrl machinery: presence
 * vector + modified bit per block, directed INVALIDATE/PURGE instead
 * of broadcasts.  Two timed-tier realities relax the map's exactness
 * without harming safety:
 *
 *  - when an owner's in-flight EJECT(write) is consumed as the put()
 *    response, the owner's bit is cleared (the eject is
 *    distinguishable from a PURGE reply);
 *  - a PURGE answered by an EJECT leaves no stale state, but a holder
 *    whose clean EJECT(read) races an INVALIDATE may briefly have a
 *    stale presence bit; the resulting spurious INVALIDATE is a
 *    harmless no-op at the cache (acknowledged like any other).
 *
 * Invalidations are acknowledged, closing the in-flight-MREQUEST race
 * exactly as in the two-bit controller (see TimedDirCtrl).
 */

#ifndef DIR2B_TIMED_FM_DIR_CTRL_HH
#define DIR2B_TIMED_FM_DIR_CTRL_HH

#include "timed/dir_ctrl_base.hh"
#include "util/bitset.hh"
#include "util/flat_map.hh"

namespace dir2b
{

/** Timed full-map directory controller. */
class FmDirCtrl : public TimedDirCtrl
{
  public:
    FmDirCtrl(ModuleId id, const TimedConfig &cfg, EventQueue &eq,
              TimedNetwork &net)
        : TimedDirCtrl(id, cfg, eq, net)
    {}

    /** Directory entry: presence vector + modified bit. */
    struct Entry
    {
        DynBitset present;
        bool modified = false;

        explicit Entry(std::size_t n) : present(n) {}
    };

    /** Entry for block a (empty if never touched). */
    const Entry *entry(Addr a) const;

  protected:
    void process(const Message &msg) override;
    void onPutResolved(Addr a, ProcId requester, RW rw,
                       const Message &answer) override;

  private:
    Entry &entryFor(Addr a);

    void processRequest(const Message &msg);
    void processMRequest(const Message &msg);
    void processEject(const Message &msg);

    /** Directed INVALIDATE to every holder except 'except'; stale
     *  'except' bits are cleared silently.  Runs onAcked when every
     *  recipient confirmed (immediately if there were none). */
    void invalidateHolders(Addr a, Entry &e, ProcId except,
                           std::function<void()> onAcked);

    /** Supply data for a REQUEST and update the entry. */
    void finishRequest(ProcId k, Addr a, RW rw, Value data,
                       bool writeBack);

    FlatMap<Addr, Entry> map_;
};

} // namespace dir2b

#endif // DIR2B_TIMED_FM_DIR_CTRL_HH
