/**
 * @file
 * Timed-tier metric registration for the telemetry sampler.
 *
 * Both timed engines expose the same components — caches, directory
 * controllers, event kernel(s), network(s) — just in different
 * multiplicities: the serial TimedSystem has one kernel and one
 * network, the sharded engine one of each per shard plus the shared
 * replay network that owns contention state.  TimedTelemetryView
 * normalises that difference into pointer lists, and
 * registerTimedMetrics() registers ONE metric set (same names, same
 * order) whose probes sum across the lists — which is why a serial
 * and a sharded run emit byte-identical series: at every sampling
 * boundary both have executed exactly the events with tick below the
 * boundary, so every summed counter agrees.
 */

#ifndef DIR2B_TIMED_TIMED_TELEMETRY_HH
#define DIR2B_TIMED_TIMED_TELEMETRY_HH

#include <cstdint>
#include <memory>
#include <vector>

namespace dir2b
{

class EventQueue;
class MetricRegistry;
class TimedDirCtrl;
class TimedNetwork;
class TwoBitCacheCtrl;

/**
 * Borrowed pointers into a timed engine, filled by the engine at the
 * start of run() and kept alive (as an engine member) for the whole
 * run so registered probes can read through it.
 */
struct TimedTelemetryView
{
    /** Flat cache table in processor order. */
    const std::vector<std::unique_ptr<TwoBitCacheCtrl>> *caches =
        nullptr;
    /** Flat controller table in module order. */
    const std::vector<std::unique_ptr<TimedDirCtrl>> *dirs = nullptr;
    /** Every event kernel (one serial; one per shard sharded). */
    std::vector<const EventQueue *> queues;
    /** Every message-counting network (shard nets count sends at
     *  send time, so their sums match the serial network). */
    std::vector<const TimedNetwork *> nets;
    /** The network that owns contention state (port wait / bus busy):
     *  the one network serially, the replay network sharded. */
    const TimedNetwork *contention = nullptr;
    /** Per-engine completed-reference counters. */
    std::vector<const std::uint64_t *> completed;
};

/** Register the timed metric set (docs/METRICS.md) against `view`.
 *  `view` must outlive every read of `reg`. */
void registerTimedMetrics(MetricRegistry &reg,
                          const TimedTelemetryView &view);

} // namespace dir2b

#endif // DIR2B_TIMED_TIMED_TELEMETRY_HH
