#include "timed/timed_audit.hh"

#include <string>
#include <unordered_map>

#include "sim/stats.hh"
#include "util/logging.hh"

namespace dir2b
{

Histogram
mergedCacheHistogram(
    const std::vector<std::unique_ptr<TwoBitCacheCtrl>> &caches,
    Histogram CacheCtrlStats::*h)
{
    Histogram out = caches.at(0)->stats().*h;
    for (std::size_t p = 1; p < caches.size(); ++p)
        out.merge(caches[p]->stats().*h);
    return out;
}

Histogram
mergedDirHistogram(
    const std::vector<std::unique_ptr<TimedDirCtrl>> &dirs,
    Histogram DirCtrlStats::*h)
{
    Histogram out = dirs.at(0)->stats().*h;
    for (std::size_t m = 1; m < dirs.size(); ++m)
        out.merge(dirs[m]->stats().*h);
    return out;
}

void
auditTimedFinalState(
    const std::vector<std::unique_ptr<TwoBitCacheCtrl>> &caches,
    const std::vector<std::unique_ptr<TimedDirCtrl>> &dirs,
    const TimedOracle &oracle)
{
    // Gather the unique dirty copy (if any) per block; clean copies
    // must equal memory at quiesce (every downgrade wrote back).
    std::unordered_map<Addr, Value> dirty;
    std::unordered_map<Addr, unsigned> dirtyCount;

    auto memValue = [&](Addr a) {
        const auto m = static_cast<ModuleId>(a % dirs.size());
        return dirs[m]->memory().peek(a);
    };

    for (ProcId p = 0; p < static_cast<ProcId>(caches.size());
         ++p) {
        caches[p]->forEachValidLine([&](const CacheLine &l) {
            if (l.dirty()) {
                dirty[l.addr] = l.value;
                ++dirtyCount[l.addr];
            } else {
                DIR2B_ASSERT(l.value == memValue(l.addr),
                             "clean copy of block ", l.addr,
                             " in cache ", p,
                             " differs from memory at quiesce");
            }
        });
    }
    for (const auto &[a, n] : dirtyCount) {
        DIR2B_ASSERT(n == 1, "block ", a, " dirty in ", n,
                     " caches at quiesce");
    }

    // Every written block's end value (dirty copy, else memory) must
    // be the newest version the oracle recorded.
    oracle.forEachWrittenBlock([&](Addr a) {
        const auto it = dirty.find(a);
        oracle.checkFinal(a, it != dirty.end() ? it->second
                                               : memValue(a));
    });
}

TimedRunResult
aggregateTimedResult(
    const std::vector<std::unique_ptr<TwoBitCacheCtrl>> &caches,
    const std::vector<std::unique_ptr<TimedDirCtrl>> &dirs,
    const TimedOracle &oracle, Tick finalTick,
    std::uint64_t refsCompleted, std::uint64_t eventsExecuted,
    std::uint64_t netMessages, std::uint64_t broadcasts,
    std::uint64_t netWaitCycles)
{
    TimedRunResult r;
    r.finalTick = finalTick;
    r.refsCompleted = refsCompleted;
    r.eventsExecuted = eventsExecuted;
    r.netMessages = netMessages;
    r.broadcasts = broadcasts;
    r.netWaitCycles = netWaitCycles;
    r.readsChecked = oracle.readsChecked();
    r.writesRecorded = oracle.writesRecorded();

    double latSum = 0.0;
    std::uint64_t latCount = 0;
    for (const auto &cc : caches) {
        const auto &s = cc->stats();
        r.stolenCycles += s.stolenCycles.value();
        r.filteredCmds += s.filteredCmds.value();
        r.mrequestConversions += s.mrequestConversions.value();
        latSum += s.latency.mean() *
                  static_cast<double>(s.latency.samples());
        latCount += s.latency.samples();
    }
    r.avgLatency = latCount ? latSum / static_cast<double>(latCount)
                            : 0.0;
    for (const auto &dc : dirs) {
        const auto &s = dc->stats();
        r.mreqDeleted += s.mreqDeleted.value();
        r.putsConsumed += s.putsConsumed.value();
        r.putsAwaited += s.putsAwaited.value();
        r.grantsFalse += s.grantsFalse.value();
        if (const TwoBitDirectory *dir = dc->twoBitDir())
            r.dirStore.add(*dir);
    }
    const Histogram lat =
        mergedCacheHistogram(caches, &CacheCtrlStats::latency);
    r.latencyP50 = lat.p50();
    r.latencyP95 = lat.p95();
    r.latencyP99 = lat.p99();
    return r;
}

void
dumpTimedStats(
    std::ostream &os,
    const std::vector<std::unique_ptr<TwoBitCacheCtrl>> &caches,
    const std::vector<std::unique_ptr<TimedDirCtrl>> &dirs)
{
    for (ProcId p = 0; p < static_cast<ProcId>(caches.size());
         ++p) {
        const CacheCtrlStats &s = caches[p]->stats();
        StatGroup g("cache" + std::to_string(p));
        g.addCounter("read_hits", &s.readHits);
        g.addCounter("write_hits", &s.writeHits);
        g.addCounter("read_misses", &s.readMisses);
        g.addCounter("write_misses", &s.writeMisses);
        g.addCounter("mrequests", &s.mrequests);
        g.addCounter("mreq_conversions", &s.mrequestConversions,
                     "BROADINV treated as MGRANTED(false)");
        g.addCounter("stale_grants_ignored", &s.staleGrantsIgnored);
        g.addCounter("stolen_cycles", &s.stolenCycles,
                     "cache cycles taken by remote commands");
        g.addCounter("filtered_cmds", &s.filteredCmds,
                     "absorbed by the duplicate directory");
        g.addCounter("invalidations", &s.invalidationsApplied);
        g.addCounter("queries_answered", &s.queriesAnswered);
        g.addCounter("writebacks", &s.writebacksSent);
        g.addHistogram("latency", &s.latency,
                       "request latency, cycles");
        g.addHistogram("grant_wait", &s.grantWait,
                       "MREQUEST to grant/conversion, cycles");
        g.addHistogram("data_wait", &s.dataWait,
                       "REQUEST to data arrival, cycles");
        g.dump(os);
    }
    for (ModuleId m = 0; m < static_cast<ModuleId>(dirs.size());
         ++m) {
        const DirCtrlStats &s = dirs[m]->stats();
        StatGroup g("ctrl" + std::to_string(m));
        g.addCounter("requests", &s.requests);
        g.addCounter("mrequests", &s.mrequests);
        g.addCounter("ejects_data", &s.ejectsData);
        g.addCounter("ejects_ignored", &s.ejectsIgnored);
        g.addCounter("broad_invs", &s.broadInvs);
        g.addCounter("broad_queries", &s.broadQueries);
        g.addCounter("directed_invs", &s.directedInvs);
        g.addCounter("purges", &s.purges);
        g.addCounter("grants_true", &s.grantsTrue);
        g.addCounter("grants_false", &s.grantsFalse);
        g.addCounter("mreq_deleted", &s.mreqDeleted,
                     "stale MREQUESTs deleted from the queue");
        g.addCounter("puts_consumed", &s.putsConsumed,
                     "queued EJECT(write) used as put()");
        g.addCounter("puts_awaited", &s.putsAwaited);
        g.addHistogram("queue_depth", &s.queueDepth);
        g.addHistogram("queue_wait", &s.queueWait,
                       "command queue residency, cycles");
        g.addHistogram("ack_wait", &s.ackWait,
                       "invalidation-ack barrier wait, cycles");
        g.addHistogram("put_wait", &s.putWait,
                       "query to answering put, cycles");
        g.dump(os);
    }
}

} // namespace dir2b
