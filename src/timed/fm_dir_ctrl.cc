#include "timed/fm_dir_ctrl.hh"

#include "util/logging.hh"

namespace dir2b
{

FmDirCtrl::Entry &
FmDirCtrl::entryFor(Addr a)
{
    return map_.tryEmplace(a, cfg_.numProcs).first->second;
}

const FmDirCtrl::Entry *
FmDirCtrl::entry(Addr a) const
{
    auto it = map_.find(a);
    return it == map_.end() ? nullptr : &it->second;
}

void
FmDirCtrl::process(const Message &msg)
{
    switch (msg.kind) {
      case MsgKind::Request:
        processRequest(msg);
        return;
      case MsgKind::MRequest:
        processMRequest(msg);
        return;
      case MsgKind::Eject:
        processEject(msg);
        return;
      default:
        DIR2B_PANIC("full-map controller cannot process ",
                    toString(msg));
    }
}

void
FmDirCtrl::finishRequest(ProcId k, Addr a, RW rw, Value data,
                         bool writeBack)
{
    Entry &e = entryFor(a);
    if (rw == RW::Write) {
        e.present.clear();
        e.modified = true;
    } else {
        e.modified = false;
    }
    e.present.set(k);
    supplyData(k, a, data, writeBack);
}

void
FmDirCtrl::onPutResolved(Addr a, ProcId requester, RW rw,
                         const Message &answer)
{
    Entry &e = entryFor(a);
    DIR2B_ASSERT(e.modified, "put resolved for clean block ", a);
    const auto owner = static_cast<ProcId>(e.present.findFirst());

    if (answer.kind == MsgKind::Eject || rw == RW::Write) {
        // The owner ejected its copy, or PURGE(write) invalidated it.
        e.present.reset(owner);
    }
    // PURGE(read): the owner kept a clean copy; its bit stays.
    e.modified = false;
    finishRequest(requester, a, rw, answer.data, true);
}

void
FmDirCtrl::invalidateHolders(Addr a, Entry &e, ProcId except,
                             std::function<void()> onAcked)
{
    // Stale 'except' bits (the requester re-acquiring a block whose
    // clean eject is still in flight) are cleared silently.
    unsigned sent = 0;
    for (std::size_t i = e.present.findFirst(); i < e.present.size();
         i = e.present.findNext(i)) {
        const auto p = static_cast<ProcId>(i);
        if (p == except)
            continue;
        Message inv;
        inv.kind = MsgKind::Invalidate;
        inv.proc = except;
        inv.addr = a;
        net_.send(endpoint(), p, inv);
        ++stats_.directedInvs;
        ++sent;
        e.present.reset(i);
    }
    if (sent == 0) {
        onAcked();
        return;
    }
    DIR2B_TRC(trc_, instant(eq_.now(), trk_, "inv_fanout", a, sent));
    // Queued stale MREQUESTs die now; in-flight ones at ack time.
    deleteQueuedMRequests(a, except);
    awaitAcks(a, except, sent, std::move(onAcked));
}

void
FmDirCtrl::processRequest(const Message &msg)
{
    ++stats_.requests;
    const Addr a = msg.addr;
    const ProcId k = msg.proc;
    Entry &e = entryFor(a);

    if (e.modified) {
        Message put;
        if (consumeQueuedPut(a, put)) {
            // The owner's eviction write-back doubles as the put.
            e.present.reset(e.present.findFirst());
            e.modified = false;
            finishRequest(k, a, msg.rw, put.data, true);
            return;
        }
        // Directed PURGE to the exact owner — the full map's whole
        // advantage over the two-bit broadcast.
        const auto owner = static_cast<ProcId>(e.present.findFirst());
        DIR2B_ASSERT(owner < cfg_.numProcs, "modified block ", a,
                     " with empty presence vector");
        Message purge;
        purge.kind = MsgKind::Purge;
        purge.proc = k;
        purge.addr = a;
        purge.rw = msg.rw;
        ++stats_.purges;
        awaitPut(a, k, msg.rw);
        DIR2B_TRC(trc_,
                  instant(eq_.now(), trk_, "purge_owner", a, owner));
        net_.send(endpoint(), owner, purge);
        return;
    }

    if (msg.rw == RW::Write) {
        invalidateHolders(a, e, k, [this, k, a] {
            finishRequest(k, a, RW::Write, mem_.read(a), false);
        });
        return;
    }
    finishRequest(k, a, msg.rw, mem_.read(a), false);
}

void
FmDirCtrl::processMRequest(const Message &msg)
{
    ++stats_.mrequests;
    const Addr a = msg.addr;
    const ProcId k = msg.proc;
    Entry &e = entryFor(a);

    auto grant = [this, k, a](bool yes) {
        Message reply;
        reply.kind = MsgKind::MGranted;
        reply.proc = k;
        reply.addr = a;
        reply.granted = yes;
        if (yes) {
            entryFor(a).modified = true;
            ++stats_.grantsTrue;
        } else {
            ++stats_.grantsFalse;
        }
        net_.send(endpoint(), k, reply);
    };

    if (!e.present.test(k) || e.modified) {
        // The requester's bit is gone: an INVALIDATE raced the
        // MREQUEST; the cache has converted (or will, by FIFO).
        grant(false);
        return;
    }
    if (e.present.count() == 1) {
        grant(true);
        return;
    }
    invalidateHolders(a, e, k, [grant] { grant(true); });
}

void
FmDirCtrl::processEject(const Message &msg)
{
    Entry &e = entryFor(msg.addr);

    if (msg.rw == RW::Read) {
        // Exact bookkeeping — the full map's economy of later
        // commands; ignore if the bit already fell to a racing
        // INVALIDATE.
        if (e.present.test(msg.proc)) {
            e.present.reset(msg.proc);
            ++stats_.ejectsApplied;
        } else {
            ++stats_.ejectsIgnored;
        }
        return;
    }

    DIR2B_ASSERT(e.modified && e.present.test(msg.proc),
                 "EJECT(write) for block ", msg.addr,
                 " from non-owner cache ", msg.proc);
    mem_.write(msg.addr, msg.data);
    e.present.reset(msg.proc);
    e.modified = false;
    ++stats_.ejectsData;
}

} // namespace dir2b
