/**
 * @file
 * Shared machinery of timed memory controllers (K_j of Figure 3-1).
 *
 * Both the two-bit controller and the full-map baseline need the same
 * §3.2.5 infrastructure:
 *
 *  - a request queue with delete-anywhere logic;
 *  - the serial / per-block-concurrent dispatch disciplines;
 *  - per-block busy windows: AwaitingPut (a query's data response is
 *    outstanding), AwaitingAcks (invalidations are being confirmed),
 *    and Supplying (the data has not left the module yet);
 *  - consumption of an in-flight EJECT(write) as the put() response
 *    (the eviction/query race);
 *  - stale-MREQUEST deletion at INVACK time (a cache's MREQUEST
 *    always precedes its ack on the same FIFO link, so the ack
 *    barrier flushes every stale upgrade before anything else can be
 *    dispatched for the block).
 *
 * Subclasses implement process() for their command set and keep their
 * own directory state; onPutResolved() finishes a query.
 */

#ifndef DIR2B_TIMED_DIR_CTRL_BASE_HH
#define DIR2B_TIMED_DIR_CTRL_BASE_HH

#include <functional>
#include <list>
#include <string>

#include "memory/backing_store.hh"
#include "obs/trace_recorder.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "timed/timed_config.hh"
#include "timed/timed_net.hh"
#include "util/flat_map.hh"

namespace dir2b
{

class TwoBitDirectory;

/** Statistics shared by every timed controller. */
struct DirCtrlStats
{
    Counter requests;
    Counter mrequests;
    Counter ejectsData;      ///< EJECT(write) write-backs applied
    Counter ejectsIgnored;   ///< EJECT(read) notifications dropped
    Counter ejectsApplied;   ///< EJECT(read) presence-bit clears (fm)
    Counter broadInvs;       ///< BROADINV broadcasts (two-bit)
    Counter broadQueries;    ///< BROADQUERY broadcasts (two-bit)
    Counter directedInvs;    ///< INVALIDATE directed sends (full map)
    Counter purges;          ///< PURGE directed sends (full map)
    Counter grantsTrue;
    Counter grantsFalse;
    Counter mreqDeleted;     ///< stale MREQUESTs deleted from queue
    Counter putsConsumed;    ///< queued EJECT(write) used as put()
    Counter putsAwaited;     ///< queries resolved by a later put
    Histogram queueDepth{1, 32};
    Histogram queueWait{4, 64}; ///< cycles a command sat queued
    Histogram ackWait{2, 64};   ///< invalidation-ack barrier wait
    Histogram putWait{4, 64};   ///< query -> answering put wait
};

/** Abstract timed memory controller. */
class TimedDirCtrl
{
  public:
    TimedDirCtrl(ModuleId id, const TimedConfig &cfg, EventQueue &eq,
                 TimedNetwork &net);
    virtual ~TimedDirCtrl() = default;

    /** Incoming network message. */
    void receive(unsigned src, const Message &msg);

    const DirCtrlStats &stats() const { return stats_; }
    const BackingStore &memory() const { return mem_; }

    /** True when no request is queued or in flight. */
    bool quiesced() const { return queue_.empty() && busy_.empty(); }

    /** Commands currently queued (telemetry gauge). */
    std::size_t queueDepth() const { return queue_.size(); }

    /** Render queued and in-flight work (diagnostics). */
    std::string stuckReport() const;

    /** The tiered 2-bit directory, when this controller has one
     *  (aggregation hook for TimedRunResult::dirStore). */
    virtual const TwoBitDirectory *twoBitDir() const { return nullptr; }

  protected:
    /** One block's active transaction. */
    struct Busy
    {
        enum class Kind { Supplying, AwaitingPut, AwaitingAcks };
        Kind kind;
        ProcId requester;
        RW rw;
        unsigned acksRemaining = 0;
        std::function<void()> onAcked;
        Tick since = 0; ///< when this busy window opened
    };

    /** Dispatch target: handle one dequeued command. */
    virtual void process(const Message &msg) = 0;

    /**
     * A put answered a waiting query.  'answer' is the raw message:
     * a PutData from the queried owner, or the owner's in-flight
     * EJECT (write — with data — always; read only for protocols
     * whose queried holder may be clean, see ejectReadAnswersWait()).
     */
    virtual void onPutResolved(Addr a, ProcId requester, RW rw,
                               const Message &answer) = 0;

    /**
     * Whether a clean EJECT(read) can answer an outstanding query.
     * False for the two-bit and full-map controllers (they only query
     * dirty owners); true for Yen-Fu, whose queried sole holder may
     * hold a clean exclusive copy and eject it while the query is in
     * flight.
     */
    virtual bool ejectReadAnswersWait() const { return false; }

    unsigned endpoint() const { return cfg_.numProcs + id_; }

    /** Memory access + busy supply window + GetData send.  The
     *  subclass updates its directory state before calling this.
     *  exclusiveGrant marks the fill exclusive-clean (Yen-Fu). */
    void supplyData(ProcId k, Addr a, Value data, bool writeBack,
                    bool exclusiveGrant = false);

    /** Enter the AwaitingPut busy state for block a. */
    void awaitPut(Addr a, ProcId requester, RW rw);

    /** Enter the AwaitingAcks busy state for block a. */
    void awaitAcks(Addr a, ProcId requester, unsigned count,
                   std::function<void()> onAcked);

    /** Pull a queued EJECT for block a out of the queue, if any
     *  (write always; read only under ejectReadAnswersWait()). */
    bool consumeQueuedPut(Addr a, Message &out);

    /** Delete queued MREQUEST(j != except, a); returns count. */
    unsigned deleteQueuedMRequests(Addr a, ProcId except);

    void scheduleDispatch();

    ModuleId id_;
    const TimedConfig &cfg_;
    EventQueue &eq_;
    TimedNetwork &net_;
    BackingStore mem_;
    DirCtrlStats stats_;
    TraceRecorder *trc_ = nullptr;
    std::uint32_t trk_ = 0;     ///< service-span track ("ctrlN")
    std::uint32_t busyTrk_ = 0; ///< busy-window track ("ctrlN.busy")

  private:
    /** A queued command, stamped with its arrival tick so dispatch
     *  can attribute queue residency. */
    struct Queued
    {
        Message msg;
        Tick at;
    };

    void dispatch();
    void processInvAck(const Message &msg);
    void noteQueueDepth();

    std::list<Queued> queue_;
    FlatMap<Addr, Busy> busy_;
    Tick busyUntil_ = 0;
    bool dispatchScheduled_ = false;
};

} // namespace dir2b

#endif // DIR2B_TIMED_DIR_CTRL_BASE_HH
