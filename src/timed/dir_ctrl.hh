/**
 * @file
 * Timed memory-controller (directory) for the two-bit scheme.
 *
 * The controller of §3.2.5 on top of the shared TimedDirCtrl
 * machinery: a 2-bit/block map, BROADINV/BROADQUERY broadcasts, the
 * delete-anywhere queue, and both arbitration options.
 *
 * EJECT(k, a, "read") notifications are accepted but deliberately not
 * acted upon, per the paper's own note that they "could be ignored ...
 * and the protocols to follow still be correct"; in a timed system a
 * late-arriving clean EJECT could otherwise reclaim a Present1 block
 * that a different cache has since re-acquired.  Present1 therefore
 * means "at most one clean copy", which keeps the MREQUEST fast path
 * sound.
 */

#ifndef DIR2B_TIMED_DIR_CTRL_HH
#define DIR2B_TIMED_DIR_CTRL_HH

#include "core/two_bit_directory.hh"
#include "timed/dir_ctrl_base.hh"

namespace dir2b
{

/** Timed two-bit directory controller. */
class TwoBitDirCtrl : public TimedDirCtrl
{
  public:
    TwoBitDirCtrl(ModuleId id, const TimedConfig &cfg, EventQueue &eq,
                  TimedNetwork &net)
        : TimedDirCtrl(id, cfg, eq, net),
          dir_(perModuleDirBudget(cfg.dirRamBudget, cfg.numModules))
    {}

    const TwoBitDirectory &directory() const { return dir_; }
    const TwoBitDirectory *twoBitDir() const override { return &dir_; }

  protected:
    void process(const Message &msg) override;
    void onPutResolved(Addr a, ProcId requester, RW rw,
                       const Message &answer) override;

  private:
    void processRequest(const Message &msg);
    void processMRequest(const Message &msg);
    void processEject(const Message &msg);

    /** Supply data for a REQUEST and set the post-transaction state. */
    void finishRequest(ProcId k, Addr a, RW rw, Value data,
                       bool writeBack);

    /** BROADINV(a, except): queue deletion, broadcast, ack barrier. */
    void broadcastInvalidate(Addr a, ProcId except,
                             std::function<void()> onAcked);

    TwoBitDirectory dir_;
};

} // namespace dir2b

#endif // DIR2B_TIMED_DIR_CTRL_HH
