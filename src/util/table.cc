#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace dir2b
{

TextTable::TextTable(std::vector<std::string> header)
    : width_(header.size())
{
    rows_.push_back(Row{std::move(header), false});
    addRule();
}

void
TextTable::addRow(std::vector<std::string> row)
{
    DIR2B_ASSERT(row.size() == width_, "table row width ", row.size(),
                 " != header width ", width_);
    rows_.push_back(Row{std::move(row), false});
}

void
TextTable::addRule()
{
    rows_.push_back(Row{{}, true});
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(width_, 0);
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    if (!title_.empty())
        os << title_ << "\n";

    for (const auto &row : rows_) {
        if (row.rule) {
            for (std::size_t c = 0; c < width_; ++c) {
                os << std::string(widths[c] + (c ? 2 : 0), '-');
            }
            os << "\n";
            continue;
        }
        for (std::size_t c = 0; c < width_; ++c) {
            if (c)
                os << "  ";
            os << std::setw(static_cast<int>(widths[c]))
               << (c == 0 ? std::left : std::right) << row.cells[c];
            os << std::resetiosflags(std::ios::adjustfield);
        }
        os << "\n";
    }
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

} // namespace dir2b
