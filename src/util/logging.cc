#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace dir2b
{

namespace
{

LogLevel globalLevel = LogLevel::Warn;

} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Inform)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace detail

} // namespace dir2b
