#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace dir2b
{

namespace
{

LogLevel globalLevel = LogLevel::Warn;
DebugSink globalDebugSink;

} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

void
setDebugSink(DebugSink sink)
{
    globalDebugSink = std::move(sink);
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Inform)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

bool
debugEnabled()
{
    return globalLevel >= LogLevel::Debug ||
           static_cast<bool>(globalDebugSink);
}

void
debugImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
    if (globalDebugSink)
        globalDebugSink(msg);
}

} // namespace detail

} // namespace dir2b
